package leaky_test

import (
	"testing"

	leaky "repro"
)

// TestDefenseShimsByteIdentical proves the deprecated defense helpers
// are byte-identical to the new registry/spec path at two seeds, so
// callers can migrate in either direction without results moving.
func TestDefenseShimsByteIdentical(t *testing.T) {
	m := leaky.Gold6226()
	const bits = 24
	for _, seed := range []uint64{1, 2} {
		// Residual error: the deprecated probe against a hand-defended
		// model vs the same stealthy eviction scenario declared through
		// the spec path with the registered defense applied by Build.
		// CalibBits 30 is the deprecated helper's frozen preamble length.
		old := leaky.DefenseResidualError(leaky.EqualizePaths(m), bits, seed)
		res, err := leaky.ChannelSpec{
			Mechanism: leaky.MechanismEviction,
			Stealthy:  true,
			Defense:   leaky.DefenseEqualizePaths,
			Seed:      seed,
			CalibBits: 30,
		}.Transmit(leaky.Alternating(bits))
		if err != nil {
			t.Fatal(err)
		}
		if res.ErrorRate != old {
			t.Errorf("seed %d: spec-path residual %v != deprecated helper %v", seed, res.ErrorRate, old)
		}

		// Performance cost: the deprecated two-model form vs the
		// registered-defense form.
		d, err := leaky.ResolveDefense(leaky.DefenseEqualizePaths)
		if err != nil {
			t.Fatal(err)
		}
		if a, b := leaky.DefenseCost(m, leaky.EqualizePaths(m), seed), leaky.DefensePerformanceCost(m, d, seed); a != b {
			t.Errorf("seed %d: DefenseCost %v != DefensePerformanceCost %v", seed, a, b)
		}

		// The deprecated model transforms are the registry's transforms.
		if leaky.EqualizePaths(m) != d.Apply(m) {
			t.Errorf("seed-independent: EqualizePaths diverges from the registry transform")
		}
	}
}
