package leaky_test

// The benchmark harness: one benchmark per table and figure of the
// paper's evaluation section. Each benchmark regenerates its artifact at
// a reduced-but-representative scale and reports the headline metrics
// through b.ReportMetric, so `go test -bench=. -benchmem` doubles as the
// reproduction run. EXPERIMENTS.md records paper-vs-measured values.

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	leaky "repro"
	"repro/internal/stats"
)

func opts() leaky.ExperimentOpts { return leaky.ExperimentOpts{Bits: 120, Seed: 1} }

func BenchmarkTableI_Models(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(leaky.Models()) != 4 {
			b.Fatal("catalog wrong")
		}
	}
}

func BenchmarkFigure2_PathHistogram(b *testing.B) {
	for i := 0; i < b.N; i++ {
		data, _ := leaky.Figure2(opts())
		b.ReportMetric(stats.Mean(data.DSB), "DSB-cycles")
		b.ReportMetric(stats.Mean(data.LSD), "LSD-cycles")
		b.ReportMetric(stats.Mean(data.MITE), "MITE-cycles")
	}
}

func BenchmarkFigure4_LCPIssue(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := leaky.Figure4(opts())
		b.ReportMetric(rows[0].IPC, "mixed-IPC")
		b.ReportMetric(rows[1].IPC, "ordered-IPC")
	}
}

func BenchmarkTableII_MTEvictionPatterns(b *testing.B) {
	o := opts()
	o.Bits = 60
	for i := 0; i < b.N; i++ {
		res, _ := leaky.TableII(o)
		var worst float64
		for _, r := range res {
			if r.ErrorRate > worst {
				worst = r.ErrorRate
			}
		}
		b.ReportMetric(worst*100, "worst-err-%")
	}
}

func BenchmarkTableIII_CovertMatrix(b *testing.B) {
	o := opts()
	o.Bits = 80
	for i := 0; i < b.N; i++ {
		res, _ := leaky.TableIII(o)
		var maxRate float64
		for _, r := range res {
			if r.RateKbps > maxRate {
				maxRate = r.RateKbps
			}
		}
		b.ReportMetric(maxRate, "best-Kbps")
	}
}

func BenchmarkTableIV_SlowSwitch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _ := leaky.TableIV(opts())
		b.ReportMetric(res[0].RateKbps, "G6226-Kbps")
		b.ReportMetric(res[1].RateKbps, "E2288G-Kbps")
	}
}

func BenchmarkTableV_PowerChannels(b *testing.B) {
	o := opts()
	o.Bits = 60 // 5 power bits after scaling
	for i := 0; i < b.N; i++ {
		res, _ := leaky.TableV(o)
		b.ReportMetric(res[0].RateKbps, "evict-Kbps")
		b.ReportMetric(res[1].RateKbps, "misalign-Kbps")
	}
}

func BenchmarkTableVI_SGX(b *testing.B) {
	o := opts()
	o.Bits = 48
	for i := 0; i < b.N; i++ {
		res, _ := leaky.TableVI(o)
		var maxRate float64
		for _, r := range res {
			if r.RateKbps > maxRate {
				maxRate = r.RateKbps
			}
		}
		b.ReportMetric(maxRate, "best-Kbps")
	}
}

func BenchmarkTableVII_SpectreMissRates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _ := leaky.TableVII(opts())
		for _, r := range res {
			if r.Channel == leaky.SpectreFrontend {
				b.ReportMetric(r.L1MissRate*100, "frontend-miss-%")
				b.ReportMetric(r.Accuracy*100, "frontend-acc-%")
			}
		}
	}
}

func BenchmarkFigure8_DSweep(b *testing.B) {
	o := opts()
	o.Bits = 40
	for i := 0; i < b.N; i++ {
		pts, _ := leaky.Figure8(o)
		b.ReportMetric(pts[0].RateKbps, "G6226-d1-Kbps")
		b.ReportMetric(pts[5].RateKbps, "G6226-d6-Kbps")
	}
}

func BenchmarkFigure9_PowerHistogram(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d, _ := leaky.Figure9(opts())
		b.ReportMetric(stats.Mean(d.LSD), "LSD-W")
		b.ReportMetric(stats.Mean(d.DSB), "DSB-W")
		b.ReportMetric(stats.Mean(d.MITE), "MITE-W")
	}
}

func BenchmarkFigure10_Microcode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		obs, _ := leaky.Figure10(opts())
		b.ReportMetric(obs[0].Ratio(), "patch1-ratio")
		b.ReportMetric(obs[1].Ratio(), "patch2-ratio")
	}
}

func BenchmarkFigure11_CNNTraces(b *testing.B) {
	for i := 0; i < b.N; i++ {
		traces, _ := leaky.Figure11(opts())
		b.ReportMetric(float64(len(traces)), "victims")
	}
}

func BenchmarkFigure12_Distances(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cnn, gb, _ := leaky.Figure12(opts())
		b.ReportMetric(cnn.Intra, "cnn-intra")
		b.ReportMetric(cnn.Inter, "cnn-inter")
		b.ReportMetric(gb.Inter, "geekbench-inter")
	}
}

// runnerBench measures the registry runner end-to-end on a cheap artifact
// subset; comparing the Serial and Parallel variants shows the worker
// pool's wall-clock win without changing any output byte.
func runnerBench(b *testing.B, workers int) {
	b.Helper()
	patterns := []string{"tableI", "figure2", "figure4", "tableIV", "figure10"}
	o := leaky.ExperimentOpts{Bits: 60, Seed: 1, Samples: 30}
	for i := 0; i < b.N; i++ {
		results, err := leaky.RunExperiments(patterns, o, workers)
		if err != nil {
			b.Fatal(err)
		}
		if len(results) != len(patterns) {
			b.Fatalf("ran %d artifacts, want %d", len(results), len(patterns))
		}
	}
}

func BenchmarkRunner_FastSubsetSerial(b *testing.B)    { runnerBench(b, 1) }
func BenchmarkRunner_FastSubsetParallel4(b *testing.B) { runnerBench(b, 4) }

// serveBench measures the daemon's artifact endpoint end-to-end over
// HTTP. The first request simulates and fills the cache; every
// subsequent iteration is a cache hit, which is the hot path a deployed
// leakyfed serves under heavy traffic.
func BenchmarkServe_ArtifactCacheHit(b *testing.B) {
	srv := leaky.NewServer(leaky.ServeConfig{Opts: leaky.ExperimentOpts{Bits: 60, Seed: 1, Samples: 30}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	url := ts.URL + "/v1/artifacts/tableIV"
	warm, err := http.Get(url)
	if err != nil {
		b.Fatal(err)
	}
	warm.Body.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Get(url)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
	b.ReportMetric(float64(srv.Metrics().CacheHits.Load()), "cache-hits")
	if srv.Metrics().CacheMisses.Load() != 1 {
		b.Fatalf("benchmark re-simulated: %d misses", srv.Metrics().CacheMisses.Load())
	}
}

func BenchmarkAblation_Defenses(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base := leaky.XeonE2288G()
		baseErr := leaky.DefenseResidualError(base, 60, 1)
		defErr := leaky.DefenseResidualError(leaky.EqualizePaths(base), 60, 1)
		cost := leaky.DefenseCost(leaky.Gold6226(), leaky.EqualizePaths(leaky.Gold6226()), 1)
		b.ReportMetric(baseErr*100, "baseline-err-%")
		b.ReportMetric(defErr*100, "defended-err-%")
		b.ReportMetric(cost, "slowdown-x")
	}
}
