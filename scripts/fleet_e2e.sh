#!/usr/bin/env bash
# fleet_e2e.sh — end-to-end test of the persistent store + sweep fleet.
#
# Boots a 1-coordinator + 2-worker leakyfed fleet on localhost (each
# worker with its own -cache-dir), sweeps a shard through the
# coordinator, then kills and restarts every node over the same cache
# dirs and re-runs the sweep. Asserts, via /metrics counters, that the
# warm re-run performed zero simulations (every row came off the
# workers' disks) and that the two responses are byte-identical.
#
# Usage: scripts/fleet_e2e.sh [port-base]   (default 18080)
set -euo pipefail

BASE=${1:-18080}
COORD_PORT=$BASE
W1_PORT=$((BASE + 1))
W2_PORT=$((BASE + 2))
FILTER='mech=eviction,thread=nonmt,sink=timing,sgx=false'
BODY=$(printf '{"filter": "%s", "opts": {"bits": 16, "seed": 3}}' "$FILTER")

workdir=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$workdir"' EXIT

echo "== build"
go build -o "$workdir/leakyfed" ./cmd/leakyfed

wait_healthy() { # port
    for _ in $(seq 1 100); do
        curl -fs "http://127.0.0.1:$1/healthz" >/dev/null 2>&1 && return 0
        sleep 0.1
    done
    echo "node on port $1 never became healthy" >&2
    return 1
}

metric() { # port name -> value
    curl -fs "http://127.0.0.1:$1/metrics" | awk -v m="$2" '$1 == m {print $2}'
}

boot_fleet() {
    "$workdir/leakyfed" -addr "127.0.0.1:$W1_PORT" -cache-dir "$workdir/w1" -workers 2 &
    "$workdir/leakyfed" -addr "127.0.0.1:$W2_PORT" -cache-dir "$workdir/w2" -workers 2 &
    "$workdir/leakyfed" -addr "127.0.0.1:$COORD_PORT" \
        -fleet "http://127.0.0.1:$W1_PORT,http://127.0.0.1:$W2_PORT" &
    wait_healthy $W1_PORT
    wait_healthy $W2_PORT
    wait_healthy $COORD_PORT
}

sweep() { # outfile
    curl -fs -X POST "http://127.0.0.1:$COORD_PORT/v1/sweeps" \
        -H 'Content-Type: application/json' -d "$BODY" -o "$1"
}

echo "== boot fleet (cold stores)"
boot_fleet

echo "== cold sweep through the coordinator"
sweep "$workdir/cold.ndjson"
grep -q '"report"' "$workdir/cold.ndjson" || { echo "no report line in cold sweep" >&2; exit 1; }

cold_misses=$(( $(metric $W1_PORT leakyfed_cache_misses_total) + $(metric $W2_PORT leakyfed_cache_misses_total) ))
[ "$cold_misses" -gt 0 ] || { echo "cold sweep simulated nothing; e2e proves nothing" >&2; exit 1; }
scatters=$(metric $COORD_PORT leakyfed_fleet_scatters_total)
[ "$scatters" -gt 0 ] || { echo "coordinator scattered no shards" >&2; exit 1; }
echo "   cold: $cold_misses simulations across workers, $scatters shards scattered"

echo "== lint a live coordinator scrape (fleet + store families)"
curl -fs "http://127.0.0.1:$COORD_PORT/metrics" | go run ./cmd/promlint

echo "== kill every node"
kill $(jobs -p) 2>/dev/null || true
wait 2>/dev/null || true

echo "== restart the fleet over the same cache dirs"
boot_fleet

echo "== warm sweep after restart"
sweep "$workdir/warm.ndjson"
cmp "$workdir/cold.ndjson" "$workdir/warm.ndjson" || {
    echo "warm sweep is not byte-identical to the cold one" >&2; exit 1
}

warm_misses=$(( $(metric $W1_PORT leakyfed_cache_misses_total) + $(metric $W2_PORT leakyfed_cache_misses_total) ))
[ "$warm_misses" -eq 0 ] || { echo "restarted fleet simulated $warm_misses specs, want 0" >&2; exit 1; }
store_hits=$(( $(metric $W1_PORT leakyfed_store_hits_total) + $(metric $W2_PORT leakyfed_store_hits_total) ))
[ "$store_hits" -gt 0 ] || { echo "restarted workers served nothing from their stores" >&2; exit 1; }
merged=$(metric $COORD_PORT leakyfed_fleet_merged_rows_total)
[ "$merged" -gt 0 ] || { echo "restarted coordinator merged no rows" >&2; exit 1; }

echo "PASS: warm re-run byte-identical, 0 simulations, $store_hits store hits, $merged rows merged"
