package contract

// Mechanism labels which known channel family a divergence belongs to,
// in the vocabulary of the ChannelSpec scenario space. A counterexample
// outside the known families is Unknown — a candidate new mechanism.
type Mechanism string

const (
	// Misalignment is the LSD family: lock state or LSD-delivered
	// micro-op counts diverge (paper Sections IV-G, V-B).
	Misalignment Mechanism = "misalignment"
	// SlowSwitch is the decode-switch family: switch events, their
	// cost, switch-buffer state, or LCP predecode stalls diverge
	// (Section IV-H, V-E).
	SlowSwitch Mechanism = "slowswitch"
	// Eviction is the DSB/i-cache occupancy family: delivery-path
	// micro-op counts or fill/evict/miss activity diverge
	// (Sections IV-F, V-A).
	Eviction Mechanism = "eviction"
	// BPU is the branch-predictor family: only mispredict counts
	// diverge. The predictor's PHT/BTB/GHR persist across protocol
	// phases like any other frontend structure, so secret-trained
	// predictor state is a real (if out-of-paper) leak the fuzzer can
	// surface; classifying it keeps such counterexamples from masking
	// genuinely novel ones.
	BPU Mechanism = "bpu"
	// Unknown is a divergence in timing or energy alone, with no known
	// structure implicated.
	Unknown Mechanism = "unknown"
)

// families groups observables by mechanism, in tie-break priority
// order: LSD evidence is the most specific (its divergences always drag
// complementary DSB counts along), switch evidence next (layout changes
// also perturb fill patterns), occupancy last.
var families = []struct {
	mech   Mechanism
	fields map[string]bool
}{
	{Misalignment, map[string]bool{"uops_lsd": true, "lsd_locked": true}},
	{SlowSwitch, map[string]bool{
		"switches": true, "switch_cycles": true, "lcp_stall_cycles": true,
		"sw_hits": true, "sw_conflicts": true, "sw_inserts": true,
	}},
	{Eviction, map[string]bool{
		"uops_dsb": true, "uops_mite": true, "dsb_lines": true, "l1i_misses": true,
	}},
	// Last on purpose: trained-predictor divergences ride along with
	// every eviction-style pair (the warmed arm predicts the probe's
	// first traversal), so BPU only wins when mispredicts diverge in
	// strictly more windows than any structural family.
	{BPU, map[string]bool{"mispredicts": true}},
}

// Classify attributes a leak between two probe traces to a mechanism:
// the family whose observables diverge in the most windows, ties going
// to the more specific family. Traces that diverge only in timing,
// energy, stalls, or branch prediction classify as Unknown.
func Classify(a, b Trace) Mechanism {
	n := min(len(a), len(b))
	counts := make([]int, len(families))
	for i := 0; i < n; i++ {
		for fi, fam := range families {
			for _, f := range fields {
				if fam.fields[f.name] && f.get(a[i]) != f.get(b[i]) {
					counts[fi]++
					break
				}
			}
		}
	}
	best, bestCount := Unknown, 0
	for fi, fam := range families {
		if counts[fi] > bestCount {
			best, bestCount = fam.mech, counts[fi]
		}
	}
	return best
}
