// Package contract defines the frontend leakage contract: the
// observables an attacker-visible window of execution exposes, recorded
// per retired micro-op window from the deterministic simulator. Two
// executions of the same public code diverge in their contract traces
// only if some secret-dependent microarchitectural state survived into
// them — exactly the definition of a frontend leak, and the oracle the
// coverage-guided fuzzer (internal/leakfuzz) checks candidate programs
// against. The style follows Geier et al.'s leakage-contract fuzzing:
// the contract is deliberately conservative, so a divergence is a
// counterexample worth minimizing, not yet a calibrated channel.
package contract

import (
	"fmt"
	"math"

	"repro/internal/cpu"
	"repro/internal/frontend"
	"repro/internal/isa"
)

// Params configures trace recording.
type Params struct {
	// WindowUOps is the retired-micro-op quantum per observation.
	WindowUOps int
	// MaxCycles bounds one program segment (runaway guard).
	MaxCycles uint64
}

// DefaultParams returns the contract defaults: 16-uop windows (four
// retire cycles on the modeled 4-wide machines) and a generous runaway
// budget.
func DefaultParams() Params {
	return Params{WindowUOps: 16, MaxCycles: 50_000_000}
}

// Observation is the contract's view of one retired instruction window:
// everything a frontend attacker can in principle resolve about it.
// Cycle and energy fields are deltas over the window; occupancy fields
// are absolute at window close. All values come from the deterministic
// simulator core (no TSC noise), so equality is exact.
type Observation struct {
	Cycles uint64 `json:"cycles"`
	// Energy is the package energy accrued over the window, in
	// watt-cycles (the RAPL channel's measurement surface, unquantized).
	Energy float64 `json:"energy"`

	// Delivery-path micro-op counts: which path fed the window.
	UOpsLSD  uint64 `json:"uops_lsd"`
	UOpsDSB  uint64 `json:"uops_dsb"`
	UOpsMITE uint64 `json:"uops_mite"`

	// Switch events and their cost (the decode-switch channel).
	Switches     uint64  `json:"switches"`
	SwitchCycles float64 `json:"switch_cycles"`
	SwHits       uint64  `json:"sw_hits"`
	SwConflicts  uint64  `json:"sw_conflicts"`
	SwInserts    uint64  `json:"sw_inserts"`

	// Stall accounting.
	StallCycles    uint64  `json:"stall_cycles"`
	LCPStallCycles float64 `json:"lcp_stall_cycles"`

	// Fetch-adjacent structure events.
	L1IMisses   uint64 `json:"l1i_misses"`
	Mispredicts uint64 `json:"mispredicts"`

	// Structure occupancy: DSB fill/evict activity over the window (a
	// delta, so occupancy left over from the secret phase only registers
	// when the probe actually interacts with it) and the LSD lock state
	// at window close.
	DSBLines  int  `json:"dsb_lines"`
	LSDLocked bool `json:"lsd_locked"`
}

// Trace is the contract trace of one program: its observation windows in
// order.
type Trace []Observation

// Divergence describes the first point where two traces differ.
type Divergence struct {
	Window int    `json:"window"` // -1: trace lengths differ
	Field  string `json:"field"`
	A      string `json:"a_value,omitempty"`
	B      string `json:"b_value,omitempty"`
}

func (d Divergence) String() string {
	if d.Window < 0 {
		return fmt.Sprintf("trace length: %s vs %s", d.A, d.B)
	}
	return fmt.Sprintf("window %d %s: %s vs %s", d.Window, d.Field, d.A, d.B)
}

// fields enumerates every observable in comparison order. The order is
// mechanism-specific first (LSD, DSB, switch) so the first diverging
// field names the leaking structure rather than the downstream timing
// symptom.
var fields = []struct {
	name string
	get  func(o Observation) string
}{
	{"uops_lsd", func(o Observation) string { return fmt.Sprint(o.UOpsLSD) }},
	{"lsd_locked", func(o Observation) string { return fmt.Sprint(o.LSDLocked) }},
	{"uops_dsb", func(o Observation) string { return fmt.Sprint(o.UOpsDSB) }},
	{"uops_mite", func(o Observation) string { return fmt.Sprint(o.UOpsMITE) }},
	{"dsb_lines", func(o Observation) string { return fmt.Sprint(o.DSBLines) }},
	{"switches", func(o Observation) string { return fmt.Sprint(o.Switches) }},
	{"switch_cycles", func(o Observation) string { return fmt.Sprint(quantize(o.SwitchCycles)) }},
	{"sw_hits", func(o Observation) string { return fmt.Sprint(o.SwHits) }},
	{"sw_conflicts", func(o Observation) string { return fmt.Sprint(o.SwConflicts) }},
	{"sw_inserts", func(o Observation) string { return fmt.Sprint(o.SwInserts) }},
	{"lcp_stall_cycles", func(o Observation) string { return fmt.Sprint(quantize(o.LCPStallCycles)) }},
	{"l1i_misses", func(o Observation) string { return fmt.Sprint(o.L1IMisses) }},
	{"mispredicts", func(o Observation) string { return fmt.Sprint(o.Mispredicts) }},
	{"stall_cycles", func(o Observation) string { return fmt.Sprint(o.StallCycles) }},
	{"cycles", func(o Observation) string { return fmt.Sprint(o.Cycles) }},
	{"energy", func(o Observation) string { return fmt.Sprint(quantize(o.Energy)) }},
}

// quantize rounds a float observable to millicycle precision before
// comparison. The float observables are deltas of cumulative sums, so
// two arms whose prep phases accrued different totals see their probe
// deltas differ by accumulation-order noise (~1e-12 relative) even when
// the probe behaved identically; physical divergences are whole penalty
// fractions, orders of magnitude above the quantum.
func quantize(v float64) float64 {
	q := math.Round(v*1000) / 1000
	if q == 0 {
		return 0 // collapse -0
	}
	return q
}

// Compare returns the first divergence between two traces, if any.
func Compare(a, b Trace) (Divergence, bool) {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		for _, f := range fields {
			if va, vb := f.get(a[i]), f.get(b[i]); va != vb {
				return Divergence{Window: i, Field: f.name, A: va, B: vb}, true
			}
		}
	}
	if len(a) != len(b) {
		return Divergence{Window: -1, Field: "windows", A: fmt.Sprint(len(a)), B: fmt.Sprint(len(b))}, true
	}
	return Divergence{}, false
}

// Executor runs instruction sequences on a private simulated core and
// records contract traces. It is fully deterministic: the TSC/noise
// paths are never touched, so two executors built with the same model
// and seed produce identical traces for identical programs — and a
// Clone mid-program replays byte-identically.
type Executor struct {
	core *cpu.Core
	p    Params

	// Baselines for the open observation window.
	winRetired uint64
	baseCycle  uint64
	baseEnergy float64
	baseCtr    frontend.ThreadCounters
	baseSw     frontend.SwitchStats
	baseLines  int
}

// NewExecutor builds an executor for the model. The seed feeds the
// core's RNG; the contract path never draws from it, so any seed yields
// the same traces — it exists so fuzzing can double-check that claim.
func NewExecutor(m cpu.Model, seed uint64) *Executor {
	return NewExecutorWith(m, seed, DefaultParams())
}

// NewExecutorWith is NewExecutor with explicit contract parameters.
func NewExecutorWith(m cpu.Model, seed uint64, p Params) *Executor {
	if p.WindowUOps <= 0 {
		p.WindowUOps = DefaultParams().WindowUOps
	}
	if p.MaxCycles == 0 {
		p.MaxCycles = DefaultParams().MaxCycles
	}
	return &Executor{core: cpu.NewCore(m, seed), p: p}
}

// Core exposes the underlying core (tests, coverage features).
func (e *Executor) Core() *cpu.Core { return e.core }

// Clone deep-copies the executor, including a program in flight. The
// clone's subsequent observations are byte-identical to the original's.
func (e *Executor) Clone() *Executor {
	c := *e
	c.core = e.core.Clone()
	return &c
}

// Run executes insts on thread 0 to completion without recording —
// state preparation (a sender phase whose own timing the attacker does
// not see).
func (e *Executor) Run(insts []isa.Inst) {
	if len(insts) == 0 {
		return
	}
	e.core.FE.DrainTransients(0)
	e.core.Enqueue(0, isa.NewSeqStream(insts), nil)
	e.core.RunUntilIdle(e.p.MaxCycles)
}

// Observe executes insts on thread 0 and returns its contract trace.
func (e *Executor) Observe(insts []isa.Inst) Trace {
	e.Start(insts)
	var tr Trace
	for {
		o, ok := e.StepWindow()
		if !ok {
			return tr
		}
		tr = append(tr, o)
	}
}

// Start enqueues insts on thread 0 and opens the first observation
// window. Drive it with StepWindow.
func (e *Executor) Start(insts []isa.Inst) {
	if !e.core.Idle() {
		panic("contract: Start on a busy executor")
	}
	// Phase boundaries serialize the pipeline (a context switch between
	// victim and attacker): transient stall debt and delivery-source
	// history die here, so a divergence can only come from state that
	// genuinely survives in a frontend structure.
	e.core.FE.DrainTransients(0)
	e.core.Enqueue(0, isa.NewSeqStream(insts), nil)
	e.openWindow()
}

// openWindow snapshots the baselines the next observation is a delta
// against.
func (e *Executor) openWindow() {
	e.winRetired = e.core.Retired(0)
	e.baseCycle = e.core.Cycle()
	e.baseEnergy = e.core.PM.TrueEnergy()
	e.baseCtr = e.core.FE.Ctr[0]
	e.baseSw = e.core.FE.SwitchBufferStats()
	e.baseLines = e.core.FE.DSB.TotalLines()
}

// StepWindow advances the program until WindowUOps micro-ops retire or
// the program completes, and returns the closed window's observation.
// ok=false once the program is done and every retired micro-op has been
// attributed to a window.
func (e *Executor) StepWindow() (Observation, bool) {
	start := e.core.Cycle()
	target := e.winRetired + uint64(e.p.WindowUOps)
	for e.core.Retired(0) < target {
		if e.core.Idle() {
			// Program complete: flush the partial window, if any.
			if e.core.Retired(0) == e.winRetired {
				return Observation{}, false
			}
			break
		}
		e.core.Step()
		if e.core.Cycle()-start > e.p.MaxCycles {
			panic(fmt.Sprintf("contract: window exceeded %d cycles", e.p.MaxCycles))
		}
	}
	o := e.observe()
	e.openWindow()
	return o, true
}

// observe closes the current window against its baselines.
func (e *Executor) observe() Observation {
	ctr := e.core.FE.Ctr[0]
	sw := e.core.FE.SwitchBufferStats()
	return Observation{
		Cycles:         e.core.Cycle() - e.baseCycle,
		Energy:         e.core.PM.TrueEnergy() - e.baseEnergy,
		UOpsLSD:        ctr.UOpsLSD - e.baseCtr.UOpsLSD,
		UOpsDSB:        ctr.UOpsDSB - e.baseCtr.UOpsDSB,
		UOpsMITE:       ctr.UOpsMITE - e.baseCtr.UOpsMITE,
		Switches:       ctr.SwitchCount - e.baseCtr.SwitchCount,
		SwitchCycles:   ctr.SwitchCycles - e.baseCtr.SwitchCycles,
		SwHits:         sw.Hits - e.baseSw.Hits,
		SwConflicts:    sw.Conflicts - e.baseSw.Conflicts,
		SwInserts:      sw.Inserts - e.baseSw.Inserts,
		StallCycles:    ctr.StallCycles - e.baseCtr.StallCycles,
		LCPStallCycles: ctr.LCPStallCycles - e.baseCtr.LCPStallCycles,
		L1IMisses:      ctr.L1IMisses - e.baseCtr.L1IMisses,
		Mispredicts:    ctr.Mispredicts - e.baseCtr.Mispredicts,
		DSBLines:       e.core.FE.DSB.TotalLines() - e.baseLines,
		LSDLocked:      e.core.FE.LSDFor(0).Locked(),
	}
}

// Pair is a secret-pair: one public program whose execution follows
// secret bit 0 or 1. The Prep phases may differ (they are the
// secret-dependent victim); the Probe phase must be identical public
// code — any probe-trace divergence is a leak through surviving
// microarchitectural state.
type Pair struct {
	Prep0, Prep1 []isa.Inst
	Probe        []isa.Inst
}

// Check runs both halves of the pair on fresh executors and compares
// the probe traces. ok=true means a divergence (a leak) was found.
func Check(m cpu.Model, seed uint64, p Params, pair Pair) (Divergence, bool) {
	_, _, d, ok := CheckTraces(m, seed, p, pair)
	return d, ok
}

// CheckTraces is Check returning both probe traces as well, for
// coverage extraction and reporting.
func CheckTraces(m cpu.Model, seed uint64, p Params, pair Pair) (t0, t1 Trace, d Divergence, leak bool) {
	e0 := NewExecutorWith(m, seed, p)
	e0.Run(pair.Prep0)
	t0 = e0.Observe(pair.Probe)
	e1 := NewExecutorWith(m, seed, p)
	e1.Run(pair.Prep1)
	t1 = e1.Observe(pair.Probe)
	d, leak = Compare(t0, t1)
	return t0, t1, d, leak
}
