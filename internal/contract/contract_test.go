package contract

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/isa"
)

func loop(blocks []*isa.Block, iters int) []isa.Inst {
	return isa.Collect(isa.NewLoopStream(blocks, iters))
}

func model() cpu.Model { return cpu.Gold6226() }

// TestDeterminism pins the contract's foundation: traces depend only on
// the program, never on the seed — the executor drives raw cycle counts
// with no TSC noise.
func TestDeterminism(t *testing.T) {
	blocks := isa.MixChain(7, 4, true)
	prog := loop(blocks, 20)
	a := NewExecutor(model(), 1).Observe(prog)
	b := NewExecutor(model(), 99).Observe(prog)
	if d, leak := Compare(a, b); leak {
		t.Fatalf("identical programs diverged across seeds: %s", d)
	}
	if len(a) == 0 {
		t.Fatal("empty trace for a real program")
	}
}

// TestNonLeakingPairIsEquivalent pins that the contract does not cry
// wolf: a secret that only changes how LONG the same loop runs leaves
// no persistent frontend state, so the probe traces must be identical.
func TestNonLeakingPairIsEquivalent(t *testing.T) {
	prep := isa.MixChain(11, 4, true)
	probe := isa.MixChain(3, 4, true)
	pair := Pair{
		Prep0: loop(prep, 8),
		Prep1: loop(prep, 9), // secret = iteration count only
		Probe: loop(probe, 5),
	}
	if d, leak := Check(model(), 1, DefaultParams(), pair); leak {
		t.Fatalf("iteration-count secret flagged as a leak: %s", d)
	}
}

// The three sanity anchors: the contract must re-derive the paper's
// known channels as probe-trace divergences with the right mechanism.

func TestAnchorEvictionChannel(t *testing.T) {
	probeBlocks := isa.MixChain(20, 6, true)
	pair := Pair{
		// Secret bit = whether the victim executed the probe's own code
		// (warming its DSB/L1I footprint) or an identically-shaped chain
		// in a different set.
		Prep0: loop(isa.MixChain(13, 6, true), 3),
		Prep1: loop(probeBlocks, 3),
		// Single pass so the LSD never engages: the signal is purely
		// which path delivers the probe's first traversal.
		Probe: loop(probeBlocks, 1),
	}
	t0, t1, d, leak := CheckTraces(model(), 1, DefaultParams(), pair)
	if !leak {
		t.Fatal("DSB eviction channel not visible in the contract")
	}
	if mech := Classify(t0, t1); mech != Eviction {
		t.Fatalf("classified %q, want %q (divergence: %s)", mech, Eviction, d)
	}
}

func TestAnchorMisalignmentChannel(t *testing.T) {
	pair := Pair{
		// Secret bit = whether the victim's chain was misaligned,
		// poisoning the shared alignment tracker.
		Prep0: loop(isa.MixChain(9, 4, true), 10),
		Prep1: loop(isa.MixChain(9, 4, false), 10),
		// The probe loop locks the LSD immediately on a clean tracker
		// but must first age out the poison otherwise.
		Probe: loop(isa.MixChain(5, 3, true), 40),
	}
	t0, t1, d, leak := CheckTraces(model(), 1, DefaultParams(), pair)
	if !leak {
		t.Fatal("LSD misalignment channel not visible in the contract")
	}
	if mech := Classify(t0, t1); mech != Misalignment {
		t.Fatalf("classified %q, want %q (divergence: %s)", mech, Misalignment, d)
	}
}

func TestAnchorSlowSwitchChannel(t *testing.T) {
	// r is chosen so the probe loop's two transition points (DSB->MITE
	// at the first LCP add, MITE->DSB at the tail) map to distinct
	// switch-buffer slots; a power-of-two r makes them alias and the
	// buffer thrashes identically in both arms.
	const r = 14
	start := isa.AddrForSet(6, 4)
	ordered := func() []*isa.Block {
		b := []*isa.Block{isa.LCPBlock(start, r, false)}
		isa.ChainLoop(b)
		return b
	}
	scrambler := []*isa.Block{isa.LCPBlock(isa.AddrForSet(24, 10), r, true)}
	isa.ChainLoop(scrambler)

	shared := loop(ordered(), 5)
	pair := Pair{
		// Both arms run the same ordered-issue LCP loop, training the
		// switch buffer on the probe's transition points; the secret arm 0
		// then runs a mixed-issue loop elsewhere, whose dense transition
		// points conflict-evict those entries. Only switch-buffer state
		// differs when the probe runs.
		Prep0: append(append([]isa.Inst(nil), shared...), loop(scrambler, 3)...),
		Prep1: shared,
		Probe: loop(ordered(), 6),
	}
	t0, t1, d, leak := CheckTraces(model(), 1, DefaultParams(), pair)
	if !leak {
		t.Fatal("decode-switch channel not visible in the contract")
	}
	if mech := Classify(t0, t1); mech != SlowSwitch {
		t.Fatalf("classified %q, want %q (divergence: %s)", mech, SlowSwitch, d)
	}
}

// TestMidStreamCloneReplaysIdentically is the acceptance criterion for
// the clone-completeness fix: snapshot an executor mid-program and the
// clone's remaining observations must be byte-identical.
func TestMidStreamCloneReplaysIdentically(t *testing.T) {
	prog := loop(isa.MixChain(20, 6, true), 12)
	e := NewExecutor(model(), 1)
	e.Run(loop(isa.MixChain(9, 4, false), 5)) // dirty the machine first

	full := e.Clone().Observe(prog)

	e.Start(prog)
	var head Trace
	for i := 0; i < 3; i++ {
		o, ok := e.StepWindow()
		if !ok {
			t.Fatal("program finished before the mid-stream snapshot")
		}
		head = append(head, o)
	}
	snap := e.Clone()

	finish := func(x *Executor) Trace {
		tr := append(Trace(nil), head...)
		for {
			o, ok := x.StepWindow()
			if !ok {
				return tr
			}
			tr = append(tr, o)
		}
	}
	orig := finish(e)
	clone := finish(snap)

	if d, diff := Compare(orig, clone); diff {
		t.Fatalf("clone diverged from original: %s", d)
	}
	if d, diff := Compare(orig, full); diff {
		t.Fatalf("stepwise trace diverged from one-shot trace: %s", d)
	}
}

// TestCompareFindsFirstDivergence pins Compare's reporting.
func TestCompareFindsFirstDivergence(t *testing.T) {
	a := Trace{{Cycles: 10}, {Cycles: 20, UOpsDSB: 4}}
	b := Trace{{Cycles: 10}, {Cycles: 20, UOpsDSB: 5}}
	d, leak := Compare(a, b)
	if !leak || d.Window != 1 || d.Field != "uops_dsb" {
		t.Fatalf("divergence = %+v, leak = %v", d, leak)
	}
	if _, leak := Compare(a, a); leak {
		t.Fatal("identical traces diverged")
	}
	if d, leak := Compare(a, a[:1]); !leak || d.Window != -1 {
		t.Fatalf("length mismatch not reported: %+v %v", d, leak)
	}
}
