package isa

import (
	"testing"
	"testing/quick"
)

func TestMixBlockShape(t *testing.T) {
	b := MixBlock(0x1000)
	if got := b.Bytes(); got != 25 {
		t.Errorf("MixBlock bytes = %d, want 25 (4 mov + 1 jmp per Section IV-D)", got)
	}
	if got := b.UOps(); got != 5 {
		t.Errorf("MixBlock uops = %d, want 5", got)
	}
	if got := len(b.Insts); got != 5 {
		t.Errorf("MixBlock insts = %d, want 5", got)
	}
	last := b.Insts[len(b.Insts)-1]
	if last.Kind != Jmp || !last.Taken {
		t.Errorf("MixBlock must end in a taken jmp, got %v", last.Kind)
	}
	for _, in := range b.Insts[:4] {
		if in.Kind != Mov {
			t.Errorf("expected mov, got %v", in.Kind)
		}
	}
}

func TestMixBlockFitsOneWindow(t *testing.T) {
	// An aligned mix block must not exceed a 32-byte window and must not
	// exceed 6 micro-ops: the two Section IV-D requirements.
	b := MixBlock(AddrForSet(5, 0))
	if b.Bytes() > WindowBytes {
		t.Errorf("block bytes %d exceed window %d", b.Bytes(), WindowBytes)
	}
	if b.UOps() > 6 {
		t.Errorf("block uops %d exceed DSB line capacity 6", b.UOps())
	}
	first := Window(b.Start())
	lastEnd := Window(b.Insts[len(b.Insts)-1].End() - 1)
	if first != lastEnd {
		t.Errorf("aligned block spans windows %d..%d", first, lastEnd)
	}
}

func TestMisalignedBlockSpansTwoWindows(t *testing.T) {
	b := MixBlock(MisalignedAddrForSet(5, 0))
	if !b.Misaligned() {
		t.Fatal("block at +16 offset should report misaligned")
	}
	first := Window(b.Start())
	lastEnd := Window(b.Insts[len(b.Insts)-1].End() - 1)
	if lastEnd != first+1 {
		t.Errorf("misaligned block should span exactly 2 windows, spans %d..%d", first, lastEnd)
	}
}

func TestAlignedBlockNotMisaligned(t *testing.T) {
	if MixBlock(AddrForSet(3, 2)).Misaligned() {
		t.Error("aligned block reports misaligned")
	}
}

func TestAddrForSetMapping(t *testing.T) {
	for set := 0; set < DSBSets; set++ {
		for way := 0; way < DSBWays+2; way++ {
			a := AddrForSet(set, way)
			if got := DSBSet(a); got != set {
				t.Fatalf("AddrForSet(%d,%d) maps to set %d", set, way, got)
			}
			if a%WindowBytes != 0 {
				t.Fatalf("AddrForSet(%d,%d) = %#x not window aligned", set, way, a)
			}
		}
	}
}

func TestAddrForSetDistinctTags(t *testing.T) {
	seen := map[uint64]bool{}
	for way := 0; way < 16; way++ {
		a := AddrForSet(7, way)
		if seen[a] {
			t.Fatalf("duplicate address for way %d", way)
		}
		seen[a] = true
	}
}

func TestAddrForSetProperty(t *testing.T) {
	f := func(set, way uint8) bool {
		s := int(set) % DSBSets
		w := int(way) % 64
		return DSBSet(AddrForSet(s, w)) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddrForSetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range set")
		}
	}()
	AddrForSet(DSBSets, 0)
}

func TestChainLoopTargets(t *testing.T) {
	blocks := MixChain(4, 3, true)
	for i, b := range blocks {
		want := blocks[(i+1)%3].Start()
		got := b.Insts[len(b.Insts)-1].Target
		if got != want {
			t.Errorf("block %d jmp target = %#x, want %#x", i, got, want)
		}
	}
}

func TestMixChainSetCollision(t *testing.T) {
	blocks := MixChain(9, 8, true)
	for i, b := range blocks {
		if got := DSBSet(b.Start()); got != 9 {
			t.Errorf("block %d maps to set %d, want 9", i, got)
		}
	}
}

func TestMixChainMixed(t *testing.T) {
	blocks := MixChainMixed(2, 5, 3)
	if len(blocks) != 8 {
		t.Fatalf("got %d blocks, want 8", len(blocks))
	}
	for i := 0; i < 5; i++ {
		if blocks[i].Misaligned() {
			t.Errorf("block %d should be aligned", i)
		}
	}
	for i := 5; i < 8; i++ {
		if !blocks[i].Misaligned() {
			t.Errorf("block %d should be misaligned", i)
		}
	}
}

func TestLCPBlockMixedPattern(t *testing.T) {
	b := LCPBlock(0x2000, 16, true)
	if got := len(b.Insts); got != 33 {
		t.Fatalf("mixed LCP block insts = %d, want 33 (32 adds + jmp)", got)
	}
	for i := 0; i < 32; i++ {
		wantLCP := i%2 == 1
		if b.Insts[i].HasLCP() != wantLCP {
			t.Errorf("inst %d LCP = %v, want %v", i, b.Insts[i].HasLCP(), wantLCP)
		}
	}
}

func TestLCPBlockOrderedPattern(t *testing.T) {
	b := LCPBlock(0x2000, 16, false)
	for i := 0; i < 16; i++ {
		if b.Insts[i].HasLCP() {
			t.Errorf("inst %d should be a normal add", i)
		}
	}
	for i := 16; i < 32; i++ {
		if !b.Insts[i].HasLCP() {
			t.Errorf("inst %d should carry an LCP", i)
		}
	}
}

func TestNopBlock(t *testing.T) {
	b := NopBlock(0x3000, 100)
	if got := len(b.Insts); got != 101 {
		t.Fatalf("NopBlock insts = %d, want 101", got)
	}
	if got := b.UOps(); got != 101 {
		t.Errorf("NopBlock uops = %d, want 101", got)
	}
	// The paper's fingerprinting loop (100 nops) must exceed the 64-uop
	// LSD capacity but fit in the DSB.
	if b.UOps() <= 64 {
		t.Error("100-nop loop should exceed LSD capacity")
	}
}

func TestLoadBlock(t *testing.T) {
	b := LoadBlock(0x4000, []uint64{0x100, 0x200})
	if len(b.Insts) != 3 {
		t.Fatalf("LoadBlock insts = %d, want 3", len(b.Insts))
	}
	if b.Insts[0].MemAddr != 0x100 || b.Insts[1].MemAddr != 0x200 {
		t.Error("LoadBlock data addresses wrong")
	}
}

func TestInstHelpers(t *testing.T) {
	j := Inst{Addr: 10, Len: 2, Kind: Jmp}
	if !j.IsBranch() {
		t.Error("jmp should be a branch")
	}
	if j.End() != 12 {
		t.Errorf("End = %d, want 12", j.End())
	}
	l := Inst{Kind: AddLCP}
	if !l.HasLCP() {
		t.Error("AddLCP should report LCP")
	}
	if (Inst{Kind: Mov}).IsBranch() {
		t.Error("mov is not a branch")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{Mov: "mov", Add: "add", AddLCP: "add66", Jmp: "jmp", Nop: "nop", Load: "load", Store: "store"} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestSetTargetPanicsWithoutJmp(t *testing.T) {
	b := &Block{Insts: []Inst{{Kind: Mov, Len: 6, UOps: 1}}}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b.SetTarget(0x1234)
}
