package isa

import "testing"

func TestLoopStreamCount(t *testing.T) {
	blocks := MixChain(0, 4, true)
	s := NewLoopStream(blocks, 3)
	n := 0
	for {
		_, ok := s.Next()
		if !ok {
			break
		}
		n++
	}
	if want := 4 * 5 * 3; n != want {
		t.Errorf("LoopStream yielded %d insts, want %d", n, want)
	}
}

func TestLoopStreamFinalBranchNotTaken(t *testing.T) {
	blocks := MixChain(0, 2, true)
	s := NewLoopStream(blocks, 2)
	var insts []Inst
	for {
		in, ok := s.Next()
		if !ok {
			break
		}
		insts = append(insts, in)
	}
	last := insts[len(insts)-1]
	if last.Kind != Jmp {
		t.Fatalf("last inst is %v, want jmp", last.Kind)
	}
	if last.Taken {
		t.Error("final loop back-edge must be not taken (loop exit)")
	}
	// All other jumps taken.
	for i, in := range insts[:len(insts)-1] {
		if in.Kind == Jmp && !in.Taken {
			t.Errorf("intermediate jmp %d not taken", i)
		}
	}
}

func TestLoopStreamUOpsMatchBlocks(t *testing.T) {
	blocks := MixChain(3, 8, true)
	want := 0
	for _, b := range blocks {
		want += b.UOps()
	}
	got := CountUOps(NewLoopStream(blocks, 1))
	if got != want {
		t.Errorf("stream uops = %d, want %d", got, want)
	}
}

func TestLoopStreamPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty blocks")
		}
	}()
	NewLoopStream(nil, 1)
}

func TestSeqStream(t *testing.T) {
	insts := MixBlock(0x100).Insts
	s := NewSeqStream(insts)
	for i := range insts {
		in, ok := s.Next()
		if !ok {
			t.Fatalf("stream ended early at %d", i)
		}
		if in.Addr != insts[i].Addr {
			t.Errorf("inst %d addr mismatch", i)
		}
	}
	if _, ok := s.Next(); ok {
		t.Error("stream should be exhausted")
	}
}

func TestConcat(t *testing.T) {
	a := NewSeqStream(MixBlock(0x100).Insts)
	b := NewSeqStream(MixBlock(0x200).Insts)
	s := Concat(a, b)
	n := 0
	for {
		_, ok := s.Next()
		if !ok {
			break
		}
		n++
	}
	if n != 10 {
		t.Errorf("concat yielded %d, want 10", n)
	}
}

func TestConcatEmpty(t *testing.T) {
	s := Concat()
	if _, ok := s.Next(); ok {
		t.Error("empty concat should be exhausted")
	}
}

func TestFuncStream(t *testing.T) {
	n := 0
	s := FuncStream(func() (Inst, bool) {
		if n >= 3 {
			return Inst{}, false
		}
		n++
		return Inst{Kind: Nop, UOps: 1, Len: 1}, true
	})
	if got := CountUOps(s); got != 3 {
		t.Errorf("FuncStream uops = %d, want 3", got)
	}
}
