// Package isa models the minimal slice of the x86-64 instruction set that
// the Leaky Frontends attacks depend on: instruction byte lengths (which
// determine 32-byte-window and DSB-set mapping), micro-op counts, length
// changing prefixes (LCPs), and direct jumps.
//
// The paper's attack primitive is the "instruction mix block": 4 mov
// instructions plus 1 jmp, 25 bytes and 5 micro-ops in total, chosen so a
// block fits in one 32-byte window, decodes to at most 6 micro-ops (one
// DSB line), and avoids backend port contention (Section IV-D). This
// package builds those blocks, lays them out at virtual addresses that
// collide in a chosen DSB set (Figure 3), and produces the dynamic
// instruction streams that the frontend simulator consumes.
package isa

import "fmt"

// Kind enumerates the instruction flavours the simulator distinguishes.
type Kind uint8

const (
	// Mov is a register-register mov: 1 fused micro-op, no memory traffic.
	Mov Kind = iota
	// Add is a register add: 1 micro-op.
	Add
	// AddLCP is an add carrying a 0x66 operand-size-override prefix, a
	// length changing prefix that stalls the MITE predecoder (Section IV-H).
	AddLCP
	// Jmp is an unconditional direct jump: 1 micro-op on port 6.
	Jmp
	// Nop is a single-byte nop: decodes to 1 micro-op, retires without
	// using an execution port (Section XI-A's receiver uses these).
	Nop
	// Load is a simple load; used only by cache-channel baselines.
	Load
	// Store is a simple store; used only by cache-channel baselines.
	Store
	// Pause is the x86 spin-wait hint: it stalls delivery for a fixed
	// window. Cross-thread covert-channel protocols use it between
	// encode steps to synchronize sender and receiver (Section V-A's
	// repeated encode/decode step pattern).
	Pause
)

// String returns the mnemonic for the kind.
func (k Kind) String() string {
	switch k {
	case Mov:
		return "mov"
	case Add:
		return "add"
	case AddLCP:
		return "add66"
	case Jmp:
		return "jmp"
	case Nop:
		return "nop"
	case Load:
		return "load"
	case Store:
		return "store"
	case Pause:
		return "pause"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Inst is one dynamic instruction instance. Addr/Len place it in the
// virtual address space (and hence in fetch windows and DSB sets); UOps is
// the number of micro-ops it decodes into.
type Inst struct {
	Addr   uint64
	Target uint64 // branch target when taken
	Len    uint8
	UOps   uint8
	Kind   Kind
	Taken  bool // dynamic branch outcome for this instance
	// MemAddr is the data address touched by Load/Store instructions.
	MemAddr uint64
}

// IsBranch reports whether the instruction redirects fetch when taken.
func (i Inst) IsBranch() bool { return i.Kind == Jmp }

// HasLCP reports whether the instruction carries a length changing prefix.
func (i Inst) HasLCP() bool { return i.Kind == AddLCP }

// End returns the address one past the instruction's last byte.
func (i Inst) End() uint64 { return i.Addr + uint64(i.Len) }

// Geometry of the frontend structures as documented in the paper
// (Section IV-B) and Intel's optimization manual. These constants are the
// address-layout contract between code placement and DSB indexing.
const (
	// WindowBytes is the 32-byte instruction window tracked per DSB line.
	WindowBytes = 32
	// DSBSets is the number of sets in the DSB.
	DSBSets = 32
	// DSBWays is the DSB associativity.
	DSBWays = 8
	// MisalignOffset is the half-window offset used to misalign blocks
	// (Section IV-G: "offset the initial address ... by 16 bytes").
	MisalignOffset = 16
)

// codeBase is the base virtual address for generated code regions. The
// value mirrors the addresses in the paper's Figure 3 (0x41_8000 region).
const codeBase = 0x0041_8000

// Window returns the 32-byte window index of an address.
func Window(addr uint64) uint64 { return addr / WindowBytes }

// DSBSet returns the (unpartitioned) DSB set an address maps to:
// addr[9:5] per the paper's reverse engineering.
func DSBSet(addr uint64) int { return int((addr >> 5) & (DSBSets - 1)) }

// AddrForSet returns an aligned start address whose addr[9:5] equals set,
// with distinct tags per way so that `way` values 0..k produce addresses
// that collide in the set without aliasing each other.
func AddrForSet(set, way int) uint64 {
	if set < 0 || set >= DSBSets {
		panic(fmt.Sprintf("isa: set %d out of range", set))
	}
	if way < 0 {
		panic("isa: negative way")
	}
	return codeBase + uint64(way)<<10 | uint64(set)<<5
}

// MisalignedAddrForSet returns AddrForSet(set, way) offset by half a
// window, producing a block that spans two windows (Section IV-G).
func MisalignedAddrForSet(set, way int) uint64 {
	return AddrForSet(set, way) + MisalignOffset
}

// Block is a short straight-line instruction sequence ending in a jmp.
type Block struct {
	Insts []Inst
}

// Start returns the address of the block's first instruction.
func (b *Block) Start() uint64 {
	if len(b.Insts) == 0 {
		panic("isa: empty block")
	}
	return b.Insts[0].Addr
}

// UOps returns the total micro-op count of the block.
func (b *Block) UOps() int {
	n := 0
	for _, in := range b.Insts {
		n += int(in.UOps)
	}
	return n
}

// Bytes returns the total byte length of the block.
func (b *Block) Bytes() int {
	n := 0
	for _, in := range b.Insts {
		n += int(in.Len)
	}
	return n
}

// Misaligned reports whether the block starts at a half-window offset and
// therefore spans two 32-byte windows.
func (b *Block) Misaligned() bool {
	start := b.Start()
	return start%WindowBytes != 0 && Window(start) != Window(b.Insts[len(b.Insts)-1].End()-1)
}

// SetTarget points the block's terminating jmp at target.
func (b *Block) SetTarget(target uint64) {
	last := &b.Insts[len(b.Insts)-1]
	if last.Kind != Jmp {
		panic("isa: block does not end in jmp")
	}
	last.Target = target
}

// MixBlock builds the canonical instruction mix block of Section IV-D: 4
// mov plus 1 jmp, 25 bytes, 5 micro-ops, starting at start.
func MixBlock(start uint64) *Block {
	lens := []uint8{6, 6, 6, 5}
	insts := make([]Inst, 0, 5)
	addr := start
	for _, l := range lens {
		insts = append(insts, Inst{Addr: addr, Len: l, UOps: 1, Kind: Mov})
		addr += uint64(l)
	}
	insts = append(insts, Inst{Addr: addr, Len: 2, UOps: 1, Kind: Jmp, Taken: true})
	return &Block{Insts: insts}
}

// NopBlock builds a block of n single-byte nops plus a terminating jmp,
// the receiver loop of the fingerprinting side channel (Section XI-A).
func NopBlock(start uint64, n int) *Block { return NopBlockLen(start, n, 1) }

// NopBlockLen builds a nop block with nopLen-byte nop encodings (x86 has
// canonical nops from 1 to 15 bytes; 2-byte xchg-style nops keep each
// 32-byte window within the DSB's per-window micro-op budget, matching
// the paper's claim that the 100-nop receiver loop fits in the DSB).
func NopBlockLen(start uint64, n, nopLen int) *Block {
	if nopLen < 1 || nopLen > 15 {
		panic("isa: nop length out of range")
	}
	insts := make([]Inst, 0, n+1)
	addr := start
	for i := 0; i < n; i++ {
		insts = append(insts, Inst{Addr: addr, Len: uint8(nopLen), UOps: 1, Kind: Nop})
		addr += uint64(nopLen)
	}
	insts = append(insts, Inst{Addr: addr, Len: 2, UOps: 1, Kind: Jmp, Taken: true})
	return &Block{Insts: insts}
}

// LCPBlock builds the Figure 4 loop body: 2r add instructions followed by
// a jmp. With mixed=true the adds alternate normal/LCP ("mixed issue");
// otherwise r normal adds are followed by r LCP adds ("ordered issue").
func LCPBlock(start uint64, r int, mixed bool) *Block {
	const (
		addLen    = 3 // add r64, imm8
		addLCPLen = 4 // 0x66-prefixed add
	)
	insts := make([]Inst, 0, 2*r+1)
	addr := start
	emit := func(k Kind) {
		l := uint8(addLen)
		if k == AddLCP {
			l = addLCPLen
		}
		insts = append(insts, Inst{Addr: addr, Len: l, UOps: 1, Kind: k})
		addr += uint64(l)
	}
	if mixed {
		for i := 0; i < r; i++ {
			emit(Add)
			emit(AddLCP)
		}
	} else {
		for i := 0; i < r; i++ {
			emit(Add)
		}
		for i := 0; i < r; i++ {
			emit(AddLCP)
		}
	}
	insts = append(insts, Inst{Addr: addr, Len: 2, UOps: 1, Kind: Jmp, Taken: true})
	return &Block{Insts: insts}
}

// PauseBlock builds a block with n pause instructions plus a terminating
// jmp, the synchronization pad between covert-channel protocol steps.
func PauseBlock(start uint64, n int) *Block {
	insts := make([]Inst, 0, n+1)
	addr := start
	for i := 0; i < n; i++ {
		insts = append(insts, Inst{Addr: addr, Len: 2, UOps: 1, Kind: Pause})
		addr += 2
	}
	insts = append(insts, Inst{Addr: addr, Len: 2, UOps: 1, Kind: Jmp, Taken: true})
	return &Block{Insts: insts}
}

// LoadBlock builds a block of n loads touching the given data addresses,
// plus a terminating jmp. Used by the cache-channel Spectre baselines.
func LoadBlock(start uint64, dataAddrs []uint64) *Block {
	insts := make([]Inst, 0, len(dataAddrs)+1)
	addr := start
	for _, da := range dataAddrs {
		insts = append(insts, Inst{Addr: addr, Len: 4, UOps: 1, Kind: Load, MemAddr: da})
		addr += 4
	}
	insts = append(insts, Inst{Addr: addr, Len: 2, UOps: 1, Kind: Jmp, Taken: true})
	return &Block{Insts: insts}
}

// ChainLoop links each block's jmp to the next block's start and the last
// block back to the first, forming the closed chain of Figure 3 that the
// LSD can lock onto.
func ChainLoop(blocks []*Block) {
	if len(blocks) == 0 {
		return
	}
	for i, b := range blocks {
		b.SetTarget(blocks[(i+1)%len(blocks)].Start())
	}
}

// MixChain builds and chain-loops count mix blocks that all map to the
// given DSB set. Blocks are aligned when aligned is true, and misaligned
// by 16 bytes otherwise.
func MixChain(set, count int, aligned bool) []*Block {
	blocks := make([]*Block, count)
	for w := 0; w < count; w++ {
		if aligned {
			blocks[w] = MixBlock(AddrForSet(set, w))
		} else {
			blocks[w] = MixBlock(MisalignedAddrForSet(set, w))
		}
	}
	ChainLoop(blocks)
	return blocks
}

// MixChainMixed builds a chain of nAligned aligned followed by nMisaligned
// misaligned mix blocks, all mapping to the same DSB set, reproducing the
// {aligned + misaligned} access pairs of Section IV-G.
func MixChainMixed(set, nAligned, nMisaligned int) []*Block {
	blocks := make([]*Block, 0, nAligned+nMisaligned)
	way := 0
	for i := 0; i < nAligned; i++ {
		blocks = append(blocks, MixBlock(AddrForSet(set, way)))
		way++
	}
	for i := 0; i < nMisaligned; i++ {
		blocks = append(blocks, MixBlock(MisalignedAddrForSet(set, way)))
		way++
	}
	ChainLoop(blocks)
	return blocks
}
