package isa

// Stream is a dynamic instruction stream: the sequence of instruction
// instances a hardware thread executes, in program order. The frontend
// simulator pulls from a Stream as it fetches.
type Stream interface {
	// Next returns the next dynamic instruction, or ok=false when the
	// stream is exhausted.
	Next() (Inst, bool)
}

// LoopStream yields the instructions of a chained block sequence a fixed
// number of iterations. Every terminating jmp is taken except the final
// jmp of the final iteration, which is not taken (the loop exits), exactly
// the branch pattern that ends LSD streaming in the paper (Section IV).
type LoopStream struct {
	flat  []Inst
	iters int
	pos   int
	iter  int
}

// NewLoopStream builds a stream that executes the blocks in order, iters
// times. It panics if blocks is empty or iters < 1.
func NewLoopStream(blocks []*Block, iters int) *LoopStream {
	if len(blocks) == 0 {
		panic("isa: NewLoopStream with no blocks")
	}
	return NewFlatLoopStream(Flatten(blocks), iters)
}

// Flatten concatenates a chained block group's instructions into one
// contiguous slice. Channels flatten their block layouts once at
// construction and wrap the result with NewFlatLoopStream per bit,
// instead of re-flattening on every stream build.
func Flatten(blocks []*Block) []Inst {
	n := 0
	for _, b := range blocks {
		n += len(b.Insts)
	}
	flat := make([]Inst, 0, n)
	for _, b := range blocks {
		flat = append(flat, b.Insts...)
	}
	return flat
}

// NewFlatLoopStream is NewLoopStream over a pre-flattened instruction
// sequence. The stream reads flat but never writes it (the final
// back-edge's Taken flip happens on a copy), so one flattened layout can
// back any number of streams, sequentially or concurrently.
func NewFlatLoopStream(flat []Inst, iters int) *LoopStream {
	if len(flat) == 0 {
		panic("isa: NewFlatLoopStream with no instructions")
	}
	if iters < 1 {
		panic("isa: NewFlatLoopStream with iters < 1")
	}
	return &LoopStream{flat: flat, iters: iters}
}

// Next implements Stream.
func (s *LoopStream) Next() (Inst, bool) {
	if s.iter >= s.iters {
		return Inst{}, false
	}
	in := s.flat[s.pos]
	s.pos++
	if s.pos == len(s.flat) {
		s.pos = 0
		s.iter++
		if s.iter == s.iters && in.Kind == Jmp {
			// Loop exit: final back-edge not taken.
			in.Taken = false
		}
	}
	return in, true
}

// SeqStream yields a fixed instruction slice once.
type SeqStream struct {
	insts []Inst
	pos   int
}

// NewSeqStream wraps insts in a Stream.
func NewSeqStream(insts []Inst) *SeqStream { return &SeqStream{insts: insts} }

// Next implements Stream.
func (s *SeqStream) Next() (Inst, bool) {
	if s.pos >= len(s.insts) {
		return Inst{}, false
	}
	in := s.insts[s.pos]
	s.pos++
	return in, true
}

// ConcatStream chains multiple streams end to end.
type ConcatStream struct {
	streams []Stream
	idx     int
}

// Concat returns a stream yielding each input stream in turn.
func Concat(streams ...Stream) *ConcatStream { return &ConcatStream{streams: streams} }

// Next implements Stream.
func (s *ConcatStream) Next() (Inst, bool) {
	for s.idx < len(s.streams) {
		if in, ok := s.streams[s.idx].Next(); ok {
			return in, true
		}
		s.idx++
	}
	return Inst{}, false
}

// CloneableStream is a Stream that can snapshot its position: the
// returned stream continues from exactly the same point, independently.
// A simulator holding a cloneable stream mid-delivery can therefore be
// deep-cloned and replayed byte-for-byte (the contract executor's
// mid-stream snapshots). All the package's data-backed streams implement
// it; FuncStream — an arbitrary generator whose state lives in the
// closure — cannot.
type CloneableStream interface {
	Stream
	// CloneStream returns an independent continuation of the stream.
	CloneStream() Stream
}

// CloneStream implements CloneableStream. The flat instruction slice is
// immutable and shared; the position is copied.
func (s *LoopStream) CloneStream() Stream {
	c := *s
	return &c
}

// CloneStream implements CloneableStream. The instruction slice is
// immutable and shared; the position is copied.
func (s *SeqStream) CloneStream() Stream {
	c := *s
	return &c
}

// CloneStream implements CloneableStream. Every sub-stream must itself
// be cloneable; CloneStream panics otherwise.
func (s *ConcatStream) CloneStream() Stream {
	c := &ConcatStream{streams: make([]Stream, len(s.streams)), idx: s.idx}
	for i, sub := range s.streams {
		cs, ok := sub.(CloneableStream)
		if !ok {
			panic("isa: ConcatStream.CloneStream over a non-cloneable sub-stream")
		}
		c.streams[i] = cs.CloneStream()
	}
	return c
}

// FuncStream adapts a generator function to the Stream interface. The
// victim workload generators use this to produce phase-dependent streams.
type FuncStream func() (Inst, bool)

// Next implements Stream.
func (f FuncStream) Next() (Inst, bool) { return f() }

// Collect drains a finite stream into a flat instruction slice — the
// dynamic instruction sequence it would deliver, loop back-edges
// resolved. The contract executor and the leakage fuzzer materialize
// program phases this way. It consumes the stream.
func Collect(s Stream) []Inst {
	var insts []Inst
	for {
		in, ok := s.Next()
		if !ok {
			return insts
		}
		insts = append(insts, in)
	}
}

// CountUOps drains a copy-free count of the total micro-ops a finite
// stream would deliver. Intended for tests; it consumes the stream.
func CountUOps(s Stream) int {
	n := 0
	for {
		in, ok := s.Next()
		if !ok {
			return n
		}
		n += int(in.UOps)
	}
}
