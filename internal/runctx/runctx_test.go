package runctx

import (
	"context"
	"testing"
)

func TestZeroValueIsBackground(t *testing.T) {
	var c Ctx
	if c.Err() != nil {
		t.Error("zero Ctx reports cancelled")
	}
	if c.Context() == nil {
		t.Error("zero Ctx returns nil context")
	}
	// Step on the zero value must be a no-op that allows progress.
	for i := 0; i < 3; i++ {
		if err := c.Step("stage", i, 3); err != nil {
			t.Fatalf("zero Ctx Step = %v", err)
		}
	}
}

func TestStepReportsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var events []Event
	c := New(ctx, func(ev Event) { events = append(events, ev) }).WithArtifact("tableX")

	if err := c.Step("warmup", 0, 2); err != nil {
		t.Fatalf("pre-cancel Step = %v", err)
	}
	cancel()
	if err := c.Step("warmup", 1, 2); err != context.Canceled {
		t.Fatalf("post-cancel Step = %v, want context.Canceled", err)
	}
	// Both steps ticked (cancellation is checked after emitting).
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	for i, ev := range events {
		if ev.Artifact != "tableX" || ev.Stage != "warmup" || ev.Done != i || ev.Total != 2 {
			t.Errorf("event %d = %+v", i, ev)
		}
	}
}

func TestWithArtifactDoesNotMutateParent(t *testing.T) {
	var last Event
	base := New(context.Background(), func(ev Event) { last = ev })
	derived := base.WithArtifact("figure9")
	base.Tick("s", 1, 1)
	if last.Artifact != "" {
		t.Errorf("parent picked up artifact %q", last.Artifact)
	}
	derived.Tick("s", 1, 1)
	if last.Artifact != "figure9" || derived.Artifact() != "figure9" {
		t.Errorf("derived artifact = %q", last.Artifact)
	}
}
