package runctx

import (
	"sync/atomic"
	"testing"
	"time"
)

// TestNonBlockingSlowSink proves a stalled consumer cannot block the
// simulation loop: with the delivery goroutine wedged and the buffer
// full, every further Step returns immediately (events drop instead of
// queueing), so a slow HTTP client can never hold a simulation slot
// hostage.
func TestNonBlockingSlowSink(t *testing.T) {
	release := make(chan struct{})
	var delivered atomic.Int64
	blocking := func(Event) {
		<-release // wedge the consumer until the loop has finished
		delivered.Add(1)
	}
	sink, stop := NonBlocking(blocking, 4)
	rc := New(nil, sink)

	const steps = 10_000
	start := time.Now()
	for i := 0; i < steps; i++ {
		if err := rc.Step("inner loop", i, steps); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	elapsed := time.Since(start)
	// The wedged sink has delivered nothing, yet the loop is done. The
	// bound is generous — the point is "milliseconds, not wedged".
	if elapsed > 5*time.Second {
		t.Fatalf("simulation loop took %v behind a wedged sink", elapsed)
	}
	if n := delivered.Load(); n != 0 {
		t.Fatalf("wedged sink delivered %d events mid-loop", n)
	}

	close(release)
	stop()
	// After stop, the buffered prefix (first event blocked in the sink
	// + up to 4 queued) has drained; everything else was dropped.
	n := delivered.Load()
	if n == 0 || n > 5 {
		t.Fatalf("delivered %d events after drain, want 1..5", n)
	}
	sink(Event{Stage: "late"}) // post-stop ticks drop silently
	if m := delivered.Load(); m != n {
		t.Errorf("post-stop tick was delivered (%d -> %d)", n, m)
	}
}

// TestNonBlockingDelivers proves the decoupling is not lossy when the
// consumer keeps up: a fast sink sees events in order.
func TestNonBlockingDelivers(t *testing.T) {
	var got []Event
	done := make(chan struct{})
	sink, stop := NonBlocking(func(ev Event) {
		got = append(got, ev) // single delivery goroutine: no race
		if len(got) == 3 {
			close(done)
		}
	}, 0)
	sink(Event{Stage: "a", Done: 1})
	sink(Event{Stage: "b", Done: 2})
	sink(Event{Stage: "c", Done: 3})
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("events not delivered")
	}
	stop()
	if len(got) != 3 || got[0].Stage != "a" || got[2].Stage != "c" {
		t.Fatalf("delivered %+v", got)
	}
	if s, st := NonBlocking(nil, 0); s != nil {
		t.Error("NonBlocking(nil) should return a nil sink")
	} else {
		st() // stop on the nil wrapper is a no-op
	}
}
