package runctx

import "sync"

// NonBlocking decouples a slow sink from the simulation loop: events
// queue on a bounded buffer drained by one goroutine, and when the
// buffer is full new events are dropped rather than blocking the
// producer. Progress is advisory — every consumer already throttles or
// samples it — so dropping under pressure is correct, while blocking
// would let a stalled HTTP client hold a simulation slot hostage.
//
// The returned stop function waits for queued events to drain and the
// delivery goroutine to exit; after stop returns, sink is never called
// again. buffer <= 0 means 64.
func NonBlocking(sink Sink, buffer int) (Sink, func()) {
	if sink == nil {
		return nil, func() {}
	}
	if buffer <= 0 {
		buffer = 64
	}
	ch := make(chan Event, buffer)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ev := range ch {
			sink(ev)
		}
	}()
	var once sync.Once
	stop := func() {
		once.Do(func() { close(ch) })
		<-done
	}
	var mu sync.Mutex
	closed := false
	return func(ev Event) {
			// The closed flag makes a post-stop tick a silent drop instead of
			// a send on a closed channel. Ticks arrive from simulation
			// goroutines that can outlive the consumer (detached flights).
			mu.Lock()
			defer mu.Unlock()
			if closed {
				return
			}
			select {
			case ch <- ev:
			default: // buffer full: drop, never block the simulation
			}
		}, func() {
			mu.Lock()
			closed = true
			mu.Unlock()
			stop()
		}
}
