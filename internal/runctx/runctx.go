// Package runctx threads cancellation, progress reporting, and tracing
// through the simulation stack. A Ctx pairs a context.Context with a
// progress sink; the expensive inner loops — covert-channel bit loops,
// fingerprint trace sampling, Spectre chunk leaks, experiment sweeps —
// call Step once per unit of work, which emits a progress tick and
// reports whether the run has been cancelled. Checkpoints never touch
// the simulation's RNG or timing state, so a run that is not cancelled
// is byte-identical with or without a context attached; cancellation
// only ever discards work, it cannot change completed results.
//
// Tracing rides the same discipline: StartSpan opens an internal/obs
// span when the underlying context carries a trace and is a no-op
// otherwise. Spans record wall-clock timing only — never simulation
// state — so a traced run's artifact bytes are identical to an
// untraced run's (the serving layer proves this byte-for-byte in its
// tests).
//
// The zero Ctx is valid: it is never cancelled, discards progress, and
// traces nothing, so context-free callers (tests, the public
// convenience API) pass Background() and pay two nil checks per
// checkpoint.
package runctx

import (
	"context"

	"repro/internal/obs"
)

// Event is one progress tick from inside a running artifact.
type Event struct {
	// Artifact is the registry name of the artifact reporting progress
	// (set by the experiment runner; empty for bare simulation calls).
	Artifact string `json:"artifact,omitempty"`
	// Stage names the inner loop, e.g. "MT Eviction-Based @ Gold 6226".
	Stage string `json:"stage,omitempty"`
	// Done counts completed units of the stage; Total is the stage's
	// size, or <= 0 when unknown in advance.
	Done  int `json:"done"`
	Total int `json:"total"`
}

// Sink receives progress events. A sink may be called concurrently from
// multiple artifact goroutines and must be safe for concurrent use; it
// should return quickly (throttle expensive handling inside the sink).
type Sink func(Event)

// Ctx carries a cancellation context and a progress sink down the
// simulation stack. Values are immutable and copied by value; deriving
// (WithArtifact) never mutates the parent.
type Ctx struct {
	ctx      context.Context
	sink     Sink
	artifact string
}

// New builds a Ctx from a context and a progress sink. Either may be
// nil: a nil ctx never cancels, a nil sink discards progress.
func New(ctx context.Context, sink Sink) Ctx {
	return Ctx{ctx: ctx, sink: sink}
}

// Background returns the never-cancelled, progress-discarding Ctx
// (equivalent to the zero value).
func Background() Ctx { return Ctx{} }

// Context returns the underlying context, never nil.
func (c Ctx) Context() context.Context {
	if c.ctx == nil {
		return context.Background()
	}
	return c.ctx
}

// WithArtifact returns a copy whose progress events carry the artifact
// name.
func (c Ctx) WithArtifact(name string) Ctx {
	c.artifact = name
	return c
}

// Artifact returns the artifact name progress events are attributed to.
func (c Ctx) Artifact() string { return c.artifact }

// Err reports the cancellation state: nil while the run may continue,
// context.Canceled or context.DeadlineExceeded once it must stop.
func (c Ctx) Err() error {
	if c.ctx == nil {
		return nil
	}
	return c.ctx.Err()
}

// Tick emits a progress event without checking for cancellation.
func (c Ctx) Tick(stage string, done, total int) {
	if c.sink != nil {
		c.sink(Event{Artifact: c.artifact, Stage: stage, Done: done, Total: total})
	}
}

// Step is the cooperative checkpoint inner loops call once per unit of
// work: it emits a progress tick and returns the cancellation state.
// A non-nil return means the caller must unwind immediately, discarding
// partial work; by construction every completed unit before the
// checkpoint is identical to an uncancelled run's.
func (c Ctx) Step(stage string, done, total int) error {
	c.Tick(stage, done, total)
	return c.Err()
}

// StartSpan opens a trace span named name under the context's current
// span and returns the derived Ctx (for nested spans) plus the span to
// End. When the underlying context carries no trace — the zero Ctx,
// and every untraced run — it returns the receiver unchanged and a nil
// span whose End is a no-op, so call sites stay unconditional. Spans
// are called at stage boundaries (a calibration preamble, a whole
// transmit loop), never per unit of work, so tracing adds no per-bit
// cost.
func (c Ctx) StartSpan(name string, attrs ...obs.Attr) (Ctx, *obs.Span) {
	if c.ctx == nil {
		return c, nil
	}
	ctx, span := obs.Start(c.ctx, name, attrs...)
	if span == nil {
		return c, nil
	}
	c.ctx = ctx
	return c, span
}
