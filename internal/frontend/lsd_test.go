package frontend

import (
	"testing"

	"repro/internal/isa"
)

// observeLoop feeds the LSD `iters` passes over the chained blocks, as if
// delivered by the frontend, with every window DSB-resident.
func observeLoop(l *LSD, blocks []*isa.Block, iters int) {
	s := isa.NewLoopStream(blocks, iters)
	for {
		in, ok := s.Next()
		if !ok {
			return
		}
		l.Observe(in, func(uint64) bool { return true })
	}
}

func TestLSDLockAfterStableIterations(t *testing.T) {
	p := DefaultParams()
	l := NewLSD(p, true, nil)
	blocks := isa.MixChain(2, 4, true)
	observeLoop(l, blocks, 4)
	if !l.Locked() {
		t.Fatal("LSD should lock after stable iterations")
	}
	if l.LockedHead() != blocks[0].Start() {
		t.Errorf("head = %#x, want %#x", l.LockedHead(), blocks[0].Start())
	}
}

func TestLSDCapacityLimit(t *testing.T) {
	p := DefaultParams()
	l := NewLSD(p, true, nil)
	// 14 blocks x 5 uops = 70 > 64: never locks (multi-set chain so the
	// window-slot rule isn't what rejects it).
	blocks := make([]*isa.Block, 14)
	for i := range blocks {
		blocks[i] = isa.MixBlock(isa.AddrForSet(i, 0))
	}
	isa.ChainLoop(blocks)
	observeLoop(l, blocks, 6)
	if l.Locked() {
		t.Error("loop above 64 uops must not lock")
	}
}

func TestLSDDisabled(t *testing.T) {
	p := DefaultParams()
	l := NewLSD(p, false, nil)
	observeLoop(l, isa.MixChain(2, 4, true), 6)
	if l.Locked() {
		t.Error("disabled LSD locked")
	}
}

func TestLSDInBodyWindows(t *testing.T) {
	l := NewLSD(DefaultParams(), true, nil)
	blocks := isa.MixChain(2, 4, true)
	observeLoop(l, blocks, 4)
	if !l.Locked() {
		t.Fatal("precondition: locked")
	}
	for _, b := range blocks {
		if !l.InBody(isa.Window(b.Start())) {
			t.Errorf("window of %#x should be in body", b.Start())
		}
	}
	if l.InBody(isa.Window(isa.AddrForSet(17, 9))) {
		t.Error("unrelated window reported in body")
	}
}

func TestLSDNotifyEvictionFlushesBodyWindow(t *testing.T) {
	l := NewLSD(DefaultParams(), true, nil)
	blocks := isa.MixChain(2, 4, true)
	observeLoop(l, blocks, 4)
	l.NotifyEviction(isa.Window(blocks[1].Start()))
	if l.Locked() {
		t.Error("eviction of a body window must flush the lock (inclusive hierarchy)")
	}
	if l.Flushes() == 0 {
		t.Error("flush not counted")
	}
}

func TestLSDNotifyEvictionIgnoresForeignWindow(t *testing.T) {
	l := NewLSD(DefaultParams(), true, nil)
	observeLoop(l, isa.MixChain(2, 4, true), 4)
	l.NotifyEviction(isa.Window(isa.AddrForSet(30, 3)))
	if !l.Locked() {
		t.Error("eviction outside the body must not flush")
	}
}

func TestLSDLoopExit(t *testing.T) {
	l := NewLSD(DefaultParams(), true, nil)
	observeLoop(l, isa.MixChain(2, 4, true), 4)
	l.LoopExit()
	if l.Locked() {
		t.Error("LoopExit left LSD locked")
	}
}

func TestLSDResidencyRequired(t *testing.T) {
	// A loop whose windows are not all DSB-resident cannot lock: the LSD
	// is inclusive in the DSB.
	l := NewLSD(DefaultParams(), true, nil)
	s := isa.NewLoopStream(isa.MixChain(2, 4, true), 6)
	for {
		in, ok := s.Next()
		if !ok {
			break
		}
		l.Observe(in, func(uint64) bool { return false })
	}
	if l.Locked() {
		t.Error("locked without DSB residency")
	}
}

func TestAlignTrackerSaturationAndDecay(t *testing.T) {
	a := NewAlignTracker(3)
	for i := 0; i < 10; i++ {
		a.Note()
	}
	if a.Level() != 3 {
		t.Errorf("level = %d, want cap 3", a.Level())
	}
	a.Decay()
	a.Decay()
	if a.Level() != 1 || !a.Poisoned() {
		t.Errorf("level = %d, want 1", a.Level())
	}
	a.Decay()
	a.Decay() // extra decay is a no-op at 0
	if a.Poisoned() || a.Level() != 0 {
		t.Error("tracker should be clean")
	}
}

func TestSwitchBufferLearning(t *testing.T) {
	b := newSwitchBuffer(8)
	addr := uint64(0x2000)
	if b.cost(addr) {
		t.Error("first occurrence should be unlearned")
	}
	if b.cost(addr) {
		t.Error("second occurrence should still be unlearned")
	}
	if !b.cost(addr) {
		t.Error("third occurrence should be learned")
	}
	b.reset()
	if b.cost(addr) {
		t.Error("reset should forget")
	}
}

func TestSwitchBufferConflictsDefeatLearning(t *testing.T) {
	b := newSwitchBuffer(4)
	// More distinct transition points than entries, hitting the same slot.
	addrs := []uint64{0x1000, 0x1008, 0x1010, 0x1018, 0x1020, 0x1028, 0x1030, 0x1038, 0x1040}
	learned := 0
	for round := 0; round < 10; round++ {
		for _, a := range addrs {
			if b.cost(a) {
				learned++
			}
		}
	}
	if learned > 20 {
		t.Errorf("dense transition pattern learned %d times; conflicts should defeat learning", learned)
	}
}
