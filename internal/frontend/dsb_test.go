package frontend

import (
	"testing"

	"repro/internal/isa"
)

func newDSB() *DSB { return NewDSB(DefaultParams()) }

// windowForSet returns the window index of an aligned block in the given
// DSB set and way.
func windowForSet(set, way int) uint64 { return isa.Window(isa.AddrForSet(set, way)) }

func TestDSBFillLookup(t *testing.T) {
	d := newDSB()
	w := windowForSet(3, 0)
	if d.Lookup(0, w) {
		t.Error("cold lookup should miss")
	}
	d.Fill(0, w, 5)
	if !d.Lookup(0, w) {
		t.Error("filled window should hit")
	}
	if s := d.Stats(); s.Hits != 1 || s.Misses != 1 || s.Fills != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestDSBEightWaysFit(t *testing.T) {
	// Figure 3: 8 one-line windows mapping to the same set co-reside.
	d := newDSB()
	for way := 0; way < 8; way++ {
		if ev := d.Fill(0, windowForSet(9, way), 5); len(ev) != 0 {
			t.Fatalf("way %d fill evicted %v", way, ev)
		}
	}
	for way := 0; way < 8; way++ {
		if !d.Contains(0, windowForSet(9, way)) {
			t.Fatalf("way %d missing", way)
		}
	}
}

func TestDSBNinthWayEvicts(t *testing.T) {
	// Section IV-F: extending the chain from 8 to 9 same-set blocks
	// forces a DSB eviction.
	d := newDSB()
	for way := 0; way < 8; way++ {
		d.Fill(0, windowForSet(9, way), 5)
	}
	ev := d.Fill(0, windowForSet(9, 8), 5)
	if len(ev) != 1 {
		t.Fatalf("9th fill evicted %d windows, want 1", len(ev))
	}
	if ev[0].Window != windowForSet(9, 0) {
		t.Errorf("evicted window %#x, want LRU way 0", ev[0].Window)
	}
}

func TestDSBMultiLineWindow(t *testing.T) {
	// A window with 13-18 micro-ops occupies 3 of the set's 8 lines.
	d := newDSB()
	d.Fill(0, windowForSet(1, 0), 16)
	if got := d.OccupiedLines(0, windowForSet(1, 0)); got != 3 {
		t.Errorf("occupied lines = %d, want 3", got)
	}
	// Three 3-line windows fill 9 > 8 lines: third fill evicts.
	d.Fill(0, windowForSet(1, 1), 16)
	ev := d.Fill(0, windowForSet(1, 2), 16)
	if len(ev) == 0 {
		t.Error("third 3-line window should evict")
	}
}

func TestDSBUncacheableWindow(t *testing.T) {
	// More than 18 micro-ops per window is not cacheable.
	d := newDSB()
	if ev := d.Fill(0, windowForSet(2, 0), 19); ev != nil {
		t.Error("uncacheable fill should be dropped")
	}
	if d.Contains(0, windowForSet(2, 0)) {
		t.Error("uncacheable window should not be resident")
	}
}

func TestDSBPerThreadEntries(t *testing.T) {
	d := newDSB()
	w := windowForSet(4, 0)
	d.Fill(0, w, 5)
	if d.Contains(1, w) {
		t.Error("thread 1 should not hit thread 0's window")
	}
}

func TestDSBPartitionIndexing(t *testing.T) {
	d := newDSB()
	w := windowForSet(20, 0) // set 20 unpartitioned
	if got := d.SetIndex(0, w); got != 20 {
		t.Errorf("unpartitioned index = %d, want 20", got)
	}
	d.SetPartitioned(true)
	// Partitioned: thread 0 gets sets 0-15, thread 1 gets 16-31.
	if got := d.SetIndex(0, w); got != 4 {
		t.Errorf("thread 0 partitioned index = %d, want 4 (20 mod 16)", got)
	}
	if got := d.SetIndex(1, w); got != 20 {
		t.Errorf("thread 1 partitioned index = %d, want 20", got)
	}
}

func TestDSBPartitionEvictsRelocatedWindows(t *testing.T) {
	// Section IV-B / V-A: thread 0's windows in the upper half-set region
	// are lost when the DSB partitions; lower-half windows survive.
	d := newDSB()
	wLow := windowForSet(5, 0)   // survives for thread 0
	wHigh := windowForSet(21, 0) // relocated => invalidated
	d.Fill(0, wLow, 5)
	d.Fill(0, wHigh, 5)
	ev := d.SetPartitioned(true)
	if !d.Contains(0, wLow) {
		t.Error("set-5 window should survive partitioning for thread 0")
	}
	if d.Contains(0, wHigh) {
		t.Error("set-21 window should be invalidated for thread 0")
	}
	found := false
	for _, e := range ev {
		if e.Window == wHigh && e.Thread == 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("eviction list %v missing the relocated window", ev)
	}
}

func TestDSBUnpartitionRestoresFullIndexing(t *testing.T) {
	d := newDSB()
	d.SetPartitioned(true)
	wHigh := windowForSet(21, 0)
	d.Fill(1, wHigh, 5) // thread 1, partitioned set 21
	ev := d.SetPartitioned(false)
	// Window 21 for thread 1: partitioned index 21, unpartitioned 21: survives.
	if !d.Contains(1, wHigh) {
		t.Errorf("thread 1 set-21 window should survive unpartitioning (evicted: %v)", ev)
	}
	if d.Partitioned() {
		t.Error("should be unpartitioned")
	}
}

func TestDSBPartitionIdempotent(t *testing.T) {
	d := newDSB()
	d.Fill(0, windowForSet(5, 0), 5)
	if ev := d.SetPartitioned(false); ev != nil {
		t.Error("no-op partition change should evict nothing")
	}
	if d.Stats().Partitions != 0 {
		t.Error("no-op toggle counted")
	}
}

func TestDSBPartitionedCapacityHalvesForSameIndexBlocks(t *testing.T) {
	// Under partitioning a thread still has 8 ways per set but only half
	// the sets: two address groups 16 sets apart now collide.
	d := newDSB()
	d.SetPartitioned(true)
	// Sets 4 and 20 both index to thread-0 set 4 when partitioned.
	for way := 0; way < 4; way++ {
		d.Fill(0, windowForSet(4, way), 5)
		d.Fill(0, windowForSet(20, way), 5)
	}
	if got := d.OccupiedLines(0, windowForSet(4, 0)); got != 8 {
		t.Errorf("partitioned set occupancy = %d, want 8 (two groups collide)", got)
	}
}

func TestDSBInvalidateThread(t *testing.T) {
	d := newDSB()
	d.Fill(0, windowForSet(1, 0), 5)
	d.Fill(1, windowForSet(2, 0), 5)
	d.InvalidateThread(0)
	if d.Contains(0, windowForSet(1, 0)) {
		t.Error("thread 0 window should be gone")
	}
	if !d.Contains(1, windowForSet(2, 0)) {
		t.Error("thread 1 window should remain")
	}
}
