package frontend

import "repro/internal/isa"

// LSD models the Loop Stream Detector (Section IV-A): when the same
// micro-op loop streams repeatedly and fits the detector's limits, the
// LSD replays it directly from the IDQ, shutting down the rest of the
// frontend. A loop qualifies when
//
//   - its body is at most LSDCapacityUOps micro-ops (64 on the paper's
//     machines),
//   - it touches at most LSDWindowSlots distinct 32-byte windows
//     (misaligned blocks consume two windows each, Section IV-G),
//   - it contains at most LSDMaxCrossings window-crossing instructions,
//   - and it repeats identically for LSDLockIterations iterations.
//
// The LSD is inclusive in the DSB: eviction of any body window flushes
// the lock (Section IV-F), as does a DSB repartition or a loop exit.
type LSD struct {
	p       Params
	enabled bool
	align   *AlignTracker

	// Candidate-loop tracking.
	head      uint64
	tracking  bool
	uops      int
	windows   []uint64
	crossings int
	lastSig   loopSig
	stable    int

	locked        bool
	lockedSig     loopSig
	lockedWindows []uint64

	locks   uint64
	flushes uint64
}

// loopSig summarizes one observed loop iteration for stability comparison.
type loopSig struct {
	head      uint64
	uops      int
	windows   int
	crossings int
}

// AlignTracker is the frontend's shared misalignment-tracking state. The
// paper observes that misaligned instruction blocks "generate collisions
// in the LSD" (Section IV-G) and that a sender thread's misaligned
// accesses redirect the *receiver* thread's delivery from LSD to DSB
// (Section V-B) — so the tracker is modelled as a structure shared by both
// hardware threads' detectors. Each window-crossing instruction poisons
// it; each completed fully-aligned loop iteration ages one entry out; a
// loop can only lock while the tracker is clean.
type AlignTracker struct {
	poison int
	cap    int
}

// NewAlignTracker builds a tracker that saturates at cap stale entries.
func NewAlignTracker(cap int) *AlignTracker { return &AlignTracker{cap: cap} }

// Note records one misaligned (window-crossing) instruction.
func (a *AlignTracker) Note() {
	if a.poison < a.cap {
		a.poison++
	}
}

// Decay ages out one stale entry.
func (a *AlignTracker) Decay() {
	if a.poison > 0 {
		a.poison--
	}
}

// Poisoned reports whether stale misaligned entries remain.
func (a *AlignTracker) Poisoned() bool { return a.poison > 0 }

// Level returns the current entry count (tests, experiments).
func (a *AlignTracker) Level() int { return a.poison }

// NewLSD builds a detector. enabled=false models microcode with the LSD
// fused off (Table I footnote b, Section X). The align tracker is shared
// between the two hardware threads' detectors on a core.
func NewLSD(p Params, enabled bool, align *AlignTracker) *LSD {
	if align == nil {
		align = NewAlignTracker(p.LSDPoisonCap)
	}
	return &LSD{p: p, enabled: enabled && p.LSDCapacityUOps > 0, align: align}
}

// Enabled reports whether the detector is present and active.
func (l *LSD) Enabled() bool { return l.enabled }

// Locked reports whether the LSD is currently streaming a loop.
func (l *LSD) Locked() bool { return l.locked }

// LockedHead returns the loop head address while locked.
func (l *LSD) LockedHead() uint64 { return l.head }

// Locks returns how many times the LSD took over delivery.
func (l *LSD) Locks() uint64 { return l.locks }

// Flushes returns how many times a lock (or candidate) was torn down by
// an external event.
func (l *LSD) Flushes() uint64 { return l.flushes }

// Observe feeds one delivered instruction into loop detection. dsbResident
// reports whether a window is currently held by this thread in the DSB;
// the inclusive-hierarchy requirement means a loop can only lock while its
// windows are all cached.
func (l *LSD) Observe(in isa.Inst, dsbResident func(window uint64) bool) {
	wAddr := isa.Window(in.Addr)
	wEnd := isa.Window(in.End() - 1)
	crossing := wEnd != wAddr
	if crossing {
		// Misaligned instructions poison the shared alignment tracker
		// regardless of which thread executes them (Section IV-G, V-B).
		l.align.Note()
	}
	if !l.enabled || l.locked {
		return
	}
	if l.tracking {
		l.uops += int(in.UOps)
		l.noteWindow(wAddr)
		if crossing {
			l.noteWindow(wEnd)
			l.crossings++
		}
		if l.uops > l.p.LSDCapacityUOps {
			// Body outgrew the detector; give up until a new head appears.
			l.resetTracking()
		}
	}
	if !in.IsBranch() {
		return
	}
	switch {
	case in.Taken && l.tracking && in.Target == l.head:
		// Completed one full iteration of the candidate loop.
		sig := loopSig{head: l.head, uops: l.uops, windows: len(l.windows), crossings: l.crossings}
		if sig == l.lastSig {
			l.stable++
		} else {
			l.stable = 1
			l.lastSig = sig
		}
		if sig.crossings == 0 {
			// A fully-aligned qualified iteration ages the tracker.
			l.align.Decay()
		}
		if l.stable >= l.p.LSDLockIterations && l.qualifies(sig, dsbResident) {
			l.locked = true
			l.lockedSig = sig
			l.lockedWindows = append(l.lockedWindows[:0], l.windows...)
			l.locks++
		}
		l.uops, l.crossings = 0, 0
		l.windows = l.windows[:0]
	case in.Taken && in.Target < in.Addr:
		// Backward jump to a new head: start tracking a fresh candidate.
		l.head = in.Target
		l.tracking = true
		l.stable = 0
		l.lastSig = loopSig{}
		l.uops, l.crossings = 0, 0
		l.windows = l.windows[:0]
	}
}

func (l *LSD) qualifies(sig loopSig, dsbResident func(window uint64) bool) bool {
	if l.align.Poisoned() {
		return false
	}
	if sig.uops > l.p.LSDCapacityUOps {
		return false
	}
	if sig.windows > l.p.LSDWindowSlots {
		return false
	}
	if sig.crossings > l.p.LSDMaxCrossings {
		return false
	}
	for _, w := range l.windows {
		if !dsbResident(w) {
			return false
		}
	}
	return true
}

func (l *LSD) noteWindow(w uint64) {
	for _, x := range l.windows {
		if x == w {
			return
		}
	}
	l.windows = append(l.windows, w)
}

func (l *LSD) resetTracking() {
	l.tracking = false
	l.stable = 0
	l.uops, l.crossings = 0, 0
	l.windows = l.windows[:0]
	l.lastSig = loopSig{}
}

// InBody reports whether a window belongs to the locked loop body. The
// delivery engine uses it to distinguish the loop's internal jumps from a
// genuine departure from the loop.
func (l *LSD) InBody(window uint64) bool {
	for _, w := range l.lockedWindows {
		if w == window {
			return true
		}
	}
	return false
}

// LoopExit tears down the lock when the back-edge falls through (branch
// mispredict at loop end, Section IV-A).
func (l *LSD) LoopExit() {
	if l.locked {
		l.locked = false
		l.flushes++
	}
	l.resetTracking()
}

// NotifyEviction flushes the lock if the evicted DSB window belongs to
// the streaming loop body (inclusive hierarchy, Section IV-F). While only
// tracking a candidate, any body-window eviction restarts detection.
func (l *LSD) NotifyEviction(window uint64) {
	if !l.enabled {
		return
	}
	if l.locked {
		if l.InBody(window) {
			l.locked = false
			l.flushes++
			l.resetTracking()
		}
		return
	}
	for _, w := range l.windows {
		if w == window {
			l.resetTracking()
			return
		}
	}
}

// Flush unconditionally drops lock and candidate state (DSB repartition,
// enclave transition).
func (l *LSD) Flush() {
	if l.locked || l.tracking {
		l.flushes++
	}
	l.locked = false
	l.resetTracking()
}
