package frontend

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

// TestDSBOccupancyInvariant: under arbitrary fill/partition sequences, no
// set ever exceeds its 8 ways of line capacity.
func TestDSBOccupancyInvariant(t *testing.T) {
	f := func(ops []uint16) bool {
		d := NewDSB(DefaultParams())
		for _, op := range ops {
			tid := int(op>>15) & 1
			set := int(op>>10) & 31
			way := int(op>>5) & 31
			uops := int(op&15) + 1
			switch op % 7 {
			case 6:
				d.SetPartitioned(!d.Partitioned())
			default:
				d.Fill(tid, windowForSet(set, way), uops)
			}
			// Invariant: every set's line occupancy within capacity.
			for s := 0; s < 32; s++ {
				if got := d.OccupiedLines(0, windowForSet(s, 0)); got > 8 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestDSBLookupAfterFill: a filled, cacheable window is always resident
// immediately after its fill (no self-eviction).
func TestDSBLookupAfterFill(t *testing.T) {
	f := func(set, way, uops uint8) bool {
		d := NewDSB(DefaultParams())
		s := int(set) % 32
		w := int(way) % 16
		u := int(uops)%18 + 1
		d.Fill(0, windowForSet(s, w), u)
		return d.Contains(0, windowForSet(s, w))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestIDQRingFIFO: the IDQ preserves order and never loses micro-ops.
func TestIDQRingFIFO(t *testing.T) {
	f := func(addrs []uint16) bool {
		if len(addrs) > 64 {
			addrs = addrs[:64]
		}
		q := newIDQRing(64)
		for _, a := range addrs {
			q.push(isa.Inst{Addr: uint64(a), UOps: 1})
		}
		if q.size != len(addrs) {
			return false
		}
		for _, a := range addrs {
			in, ok := q.pop()
			if !ok || in.Addr != uint64(a) {
				return false
			}
		}
		_, ok := q.pop()
		return !ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestDeliveryConservation: every micro-op fetched is either in the IDQ
// or has been popped — none are lost or duplicated across arbitrary
// delivery/drain interleavings.
func TestDeliveryConservation(t *testing.T) {
	f := func(seed uint8, iters uint8) bool {
		fe := newFEquick(true)
		n := int(iters)%20 + 2
		blocks := isa.MixChain(int(seed)%32, 4, true)
		fe.SetStream(0, isa.NewLoopStream(blocks, n))
		popped := 0
		step := 0
		for !fe.StreamDone(0) || fe.IDQLen(0) > 0 {
			fe.DeliverCycle(0)
			// Irregular drain pattern derived from the seed.
			drain := int(seed>>(uint(step)%3)) % 3
			for i := 0; i <= drain; i++ {
				if _, ok := fe.PopUOp(0); ok {
					popped++
				}
			}
			step++
			if step > 200000 {
				return false
			}
		}
		return popped == n*4*5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func newFEquick(lsd bool) *Frontend { return newFE(lsd) }
