package frontend

import (
	"repro/internal/cache"
	"repro/internal/isa"
)

// This file implements deep-copying of the frontend so a calibrated
// simulator snapshot can be replayed byte-for-byte (the sweep engine's
// calibration memoization, the leakage-contract executor's mid-stream
// snapshots). Every mutable structure is copied; the only shared data is
// immutable (decoded instruction slices inside streams).

// Clone returns a deep copy of the DSB: identical contents, recency
// ticks, partitioning mode, and statistics.
func (d *DSB) Clone() *DSB {
	c := &DSB{p: d.p, tick: d.tick, partitioned: d.partitioned, stats: d.stats}
	c.sets = make([][]dsbEntry, len(d.sets))
	for i, set := range d.sets {
		c.sets[i] = append(make([]dsbEntry, 0, cap(set)), set...)
	}
	return c
}

// cloneWith returns a deep copy of the detector retargeted at the given
// alignment tracker (the tracker is shared by both threads' detectors on
// a core, so the core clones it once and hands it to both).
func (l *LSD) cloneWith(align *AlignTracker) *LSD {
	c := *l
	c.align = align
	c.windows = append([]uint64(nil), l.windows...)
	c.lockedWindows = append([]uint64(nil), l.lockedWindows...)
	return &c
}

// Clone returns a copy of the alignment tracker.
func (a *AlignTracker) Clone() *AlignTracker {
	c := *a
	return &c
}

func (b *switchBuffer) clone() *switchBuffer {
	c := *b
	c.addrs = append([]uint64(nil), b.addrs...)
	c.counts = append([]uint8(nil), b.counts...)
	return &c
}

// cloneStream snapshots an in-flight instruction stream. Streams built
// from decoded instruction slices (LoopStream, SeqStream, Concat of
// those) are cloneable; an arbitrary FuncStream is not, and a frontend
// holding one mid-delivery cannot be cloned.
func cloneStream(s isa.Stream) isa.Stream {
	if s == nil {
		return nil
	}
	cs, ok := s.(isa.CloneableStream)
	if !ok {
		panic("frontend: CloneWith on a non-cloneable in-flight stream")
	}
	return cs.CloneStream()
}

// CloneWith returns a deep copy of the frontend. The clone's L1I is the
// caller-provided cache: the core owns the L1I and shares it with its
// frontend, so the core clones it once and passes it in. In-flight
// streams are snapshotted too, provided they are isa.CloneableStream
// (every stream the attack and contract layers build is); CloneWith
// panics on a live non-cloneable stream.
func (f *Frontend) CloneWith(l1i *cache.Cache) *Frontend {
	g := &Frontend{
		P:     f.P,
		DSB:   f.DSB.Clone(),
		L1I:   l1i,
		align: f.align.Clone(),
		sw:    f.sw.clone(),
		thr:   f.thr,
		Ctr:   f.Ctr,
	}
	for t := 0; t < 2; t++ {
		t := t
		g.BPU[t] = f.BPU[t].Clone()
		g.lsd[t] = f.lsd[t].cloneWith(g.align)
		g.idq[t] = f.idq[t]
		g.idq[t].buf = append([]isa.Inst(nil), f.idq[t].buf...)
		g.thr[t].stream = cloneStream(f.thr[t].stream)
		g.dsbRes[t] = func(w uint64) bool { return g.DSB.Contains(t, w) }
	}
	return g
}

// Stream returns thread t's in-flight instruction stream, or nil when
// drained. The core uses it after a clone to keep its task bookkeeping
// pointing at the same snapshot the frontend delivers from.
func (f *Frontend) Stream(t int) isa.Stream { return f.thr[t].stream }
