package frontend

import (
	"repro/internal/cache"
	"repro/internal/isa"
)

// This file implements deep-copying of the frontend so a calibrated
// simulator snapshot can be replayed byte-for-byte (the sweep engine's
// calibration memoization). Every mutable structure is copied; the only
// shared data is immutable (decoded instruction slices inside streams —
// and streams must be drained anyway, see CloneWith).

// Clone returns a deep copy of the DSB: identical contents, recency
// ticks, partitioning mode, and statistics.
func (d *DSB) Clone() *DSB {
	c := &DSB{p: d.p, tick: d.tick, partitioned: d.partitioned, stats: d.stats}
	c.sets = make([][]dsbEntry, len(d.sets))
	for i, set := range d.sets {
		c.sets[i] = append(make([]dsbEntry, 0, cap(set)), set...)
	}
	return c
}

// cloneWith returns a deep copy of the detector retargeted at the given
// alignment tracker (the tracker is shared by both threads' detectors on
// a core, so the core clones it once and hands it to both).
func (l *LSD) cloneWith(align *AlignTracker) *LSD {
	c := *l
	c.align = align
	c.windows = append([]uint64(nil), l.windows...)
	c.lockedWindows = append([]uint64(nil), l.lockedWindows...)
	return &c
}

// Clone returns a copy of the alignment tracker.
func (a *AlignTracker) Clone() *AlignTracker {
	c := *a
	return &c
}

func (b *switchBuffer) clone() *switchBuffer {
	c := *b
	c.addrs = append([]uint64(nil), b.addrs...)
	c.counts = append([]uint8(nil), b.counts...)
	return &c
}

// CloneWith returns a deep copy of the frontend. The clone's L1I is the
// caller-provided cache: the core owns the L1I and shares it with its
// frontend, so the core clones it once and passes it in. Both threads'
// streams must be drained — a frontend cannot be cloned mid-stream, and
// an idle core guarantees this.
func (f *Frontend) CloneWith(l1i *cache.Cache) *Frontend {
	for t := 0; t < 2; t++ {
		if f.thr[t].stream != nil {
			panic("frontend: CloneWith on an undrained stream")
		}
	}
	g := &Frontend{
		P:     f.P,
		DSB:   f.DSB.Clone(),
		L1I:   l1i,
		align: f.align.Clone(),
		sw:    f.sw.clone(),
		thr:   f.thr,
		Ctr:   f.Ctr,
	}
	for t := 0; t < 2; t++ {
		t := t
		g.BPU[t] = f.BPU[t].Clone()
		g.lsd[t] = f.lsd[t].cloneWith(g.align)
		g.idq[t] = f.idq[t]
		g.idq[t].buf = append([]isa.Inst(nil), f.idq[t].buf...)
		g.dsbRes[t] = func(w uint64) bool { return g.DSB.Contains(t, w) }
	}
	return g
}
