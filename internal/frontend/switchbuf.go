package frontend

// switchBuffer remembers recent DSB<->MITE transition points. A stable
// code layout (the paper's "ordered issue", Section IV-H) transitions at
// the same few addresses every iteration; those entries saturate and the
// switch penalty amortizes away. An alternating layout ("mixed issue")
// generates more transition points than the buffer holds, so every switch
// pays the full penalty — the mechanism behind Figure 4's switch-penalty
// asymmetry and the slow-switch covert channel (Section V-E).
type switchBuffer struct {
	addrs   []uint64
	counts  []uint8
	learned uint8 // occurrences before a transition point is free
}

func newSwitchBuffer(size int) *switchBuffer {
	if size <= 0 {
		size = 8
	}
	return &switchBuffer{addrs: make([]uint64, size), counts: make([]uint8, size), learned: 2}
}

// cost returns the penalty multiplier (1 = full penalty, 0..1 = learned)
// for a transition at addr, and records the occurrence. Direct-mapped by
// address; a conflicting address evicts the previous entry, which is what
// defeats learning for dense transition patterns.
func (b *switchBuffer) cost(addr uint64) bool {
	i := int(addr>>1) % len(b.addrs)
	if b.addrs[i] == addr {
		if b.counts[i] >= b.learned {
			return true // learned: caller charges only the residual
		}
		b.counts[i]++
		return false
	}
	b.addrs[i] = addr
	b.counts[i] = 1
	return false
}

// reset forgets all transition points.
func (b *switchBuffer) reset() {
	for i := range b.addrs {
		b.addrs[i] = 0
		b.counts[i] = 0
	}
}
