package frontend

// switchBuffer remembers recent DSB<->MITE transition points. A stable
// code layout (the paper's "ordered issue", Section IV-H) transitions at
// the same few addresses every iteration; those entries saturate and the
// switch penalty amortizes away. An alternating layout ("mixed issue")
// generates more transition points than the buffer holds, so every switch
// pays the full penalty — the mechanism behind Figure 4's switch-penalty
// asymmetry and the slow-switch covert channel (Section V-E).
type switchBuffer struct {
	addrs   []uint64
	counts  []uint8
	learned uint8 // occurrences before a transition point is free
	stats   SwitchStats
}

// SwitchStats counts switch-buffer events since construction or reset.
// The leakage fuzzer folds these into its coverage features, and the
// contract records their per-window deltas as observables.
type SwitchStats struct {
	Hits      uint64 // transition at a learned entry (residual penalty)
	Learns    uint64 // repeat occurrence still below the learned threshold
	Conflicts uint64 // entry evicted by a colliding address
	Inserts   uint64 // new transition point recorded (cold or conflict)
}

// newSwitchBuffer builds a buffer of the given capacity. A size of zero
// (or negative) models hardware without transition-point memoization:
// the buffer learns nothing and every switch pays the full penalty.
func newSwitchBuffer(size int) *switchBuffer {
	if size <= 0 {
		return &switchBuffer{learned: 2}
	}
	return &switchBuffer{addrs: make([]uint64, size), counts: make([]uint8, size), learned: 2}
}

// cost reports whether the transition at addr is learned (the caller
// charges only the residual penalty) and records the occurrence.
// Direct-mapped by address; a conflicting address evicts the previous
// entry, which is what defeats learning for dense transition patterns.
func (b *switchBuffer) cost(addr uint64) bool {
	if len(b.addrs) == 0 {
		return false // disabled: nothing learns, full penalty always
	}
	i := int(addr>>1) % len(b.addrs)
	if b.addrs[i] == addr {
		if b.counts[i] >= b.learned {
			b.stats.Hits++
			return true // learned: caller charges only the residual
		}
		b.stats.Learns++
		b.counts[i]++
		return false
	}
	if b.addrs[i] != 0 {
		b.stats.Conflicts++
	}
	b.stats.Inserts++
	b.addrs[i] = addr
	b.counts[i] = 1
	return false
}

// reset forgets all transition points and clears the statistics.
func (b *switchBuffer) reset() {
	for i := range b.addrs {
		b.addrs[i] = 0
		b.counts[i] = 0
	}
	b.stats = SwitchStats{}
}
