package frontend

import "repro/internal/isa"

// DSBStats counts micro-op cache events.
type DSBStats struct {
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	Fills      uint64
	Partitions uint64 // partition-state toggles
}

// Evicted identifies a window removed from the DSB, so the owner thread's
// LSD can be flushed (the structures are inclusive, Section IV).
type Evicted struct {
	Thread int
	Window uint64
}

// dsbEntry is one cached decode window. A window may occupy up to
// DSBLinesPerWindow ways of its set (6 micro-ops per line).
type dsbEntry struct {
	window uint64
	thread int
	lines  int
	uops   int
	lru    uint64
	valid  bool
}

// DSB models the Decoded Stream Buffer: a 32-set, 8-way cache of decoded
// 32-byte instruction windows (Section IV-B). While two hardware threads
// are active the DSB is set-partitioned — each thread indexes into half
// the sets — and repartition transitions invalidate every window whose
// index changes, the eviction mechanism behind the MT attacks (Section
// V-A).
type DSB struct {
	p           Params
	sets        [][]dsbEntry // [set][entries]; line occupancy tracked per entry
	tick        uint64
	partitioned bool
	stats       DSBStats

	// evictScratch backs the Evicted slices Fill and SetPartitioned
	// return; eviction-heavy channels call Fill every few cycles and the
	// result is consumed before the next call, so one buffer is reused.
	evictScratch []Evicted
	survScratch  []dsbEntry
}

// NewDSB builds an empty DSB from p.
func NewDSB(p Params) *DSB {
	d := &DSB{p: p, sets: make([][]dsbEntry, p.DSBSets)}
	for i := range d.sets {
		d.sets[i] = make([]dsbEntry, 0, p.DSBWays)
	}
	return d
}

// Partitioned reports whether the DSB is currently set-partitioned.
func (d *DSB) Partitioned() bool { return d.partitioned }

// Stats returns the event counters.
func (d *DSB) Stats() DSBStats { return d.stats }

// ResetStats zeroes the counters without touching contents.
func (d *DSB) ResetStats() { d.stats = DSBStats{} }

// SetIndex returns the set a window maps to for a thread under the
// current partitioning mode: addr[9:5] when the thread owns the whole
// DSB, or the low half of the index placed in the thread's half when
// partitioned (Section IV-B).
func (d *DSB) SetIndex(thread int, window uint64) int {
	if !d.partitioned {
		return int(window) & (d.p.DSBSets - 1)
	}
	half := d.p.DSBSets / 2
	return int(window)&(half-1) | thread*half
}

// Lookup reports whether the window is cached for the thread and
// refreshes its recency on a hit.
func (d *DSB) Lookup(thread int, window uint64) bool {
	d.tick++
	set := d.sets[d.SetIndex(thread, window)]
	for i := range set {
		if set[i].valid && set[i].thread == thread && set[i].window == window {
			set[i].lru = d.tick
			d.stats.Hits++
			return true
		}
	}
	d.stats.Misses++
	return false
}

// Contains reports residency without updating recency or counters.
func (d *DSB) Contains(thread int, window uint64) bool {
	set := d.sets[d.SetIndex(thread, window)]
	for i := range set {
		if set[i].valid && set[i].thread == thread && set[i].window == window {
			return true
		}
	}
	return false
}

// Fill inserts a decoded window of the given micro-op count, evicting
// least-recently-used windows until its lines fit in the set. Windows
// that exceed DSBLinesPerWindow lines are not cacheable and are dropped
// (fill fails silently; the window keeps decoding through MITE). The
// returned list names every window evicted to make room; it aliases a
// scratch buffer that is only valid until the next Fill or
// SetPartitioned call.
func (d *DSB) Fill(thread int, window uint64, uops int) []Evicted {
	lines := (uops + d.p.DSBLineUOps - 1) / d.p.DSBLineUOps
	if lines == 0 {
		lines = 1
	}
	if lines > d.p.DSBLinesPerWindow {
		return nil // not cacheable: too many micro-ops per window
	}
	if d.Contains(thread, window) {
		return nil
	}
	d.tick++
	idx := d.SetIndex(thread, window)
	set := d.sets[idx]
	evicted := d.evictScratch[:0]
	for d.usedLines(set)+lines > d.p.DSBWays {
		v := d.lruVictim(set)
		if v < 0 {
			d.evictScratch = evicted
			return evicted // cannot make room (shouldn't happen)
		}
		evicted = append(evicted, Evicted{Thread: set[v].thread, Window: set[v].window})
		set[v].valid = false
		d.stats.Evictions++
	}
	// Reuse an invalid slot or append.
	e := dsbEntry{window: window, thread: thread, lines: lines, uops: uops, lru: d.tick, valid: true}
	placed := false
	for i := range set {
		if !set[i].valid {
			set[i] = e
			placed = true
			break
		}
	}
	if !placed {
		set = append(set, e)
	}
	d.sets[idx] = set
	d.stats.Fills++
	d.evictScratch = evicted
	return evicted
}

// TotalLines returns the number of valid cache lines resident across
// every set — the occupancy observable of the leakage contract.
func (d *DSB) TotalLines() int {
	n := 0
	for _, set := range d.sets {
		n += d.usedLines(set)
	}
	return n
}

func (d *DSB) usedLines(set []dsbEntry) int {
	n := 0
	for _, e := range set {
		if e.valid {
			n += e.lines
		}
	}
	return n
}

func (d *DSB) lruVictim(set []dsbEntry) int {
	v := -1
	for i := range set {
		if set[i].valid && (v < 0 || set[i].lru < set[v].lru) {
			v = i
		}
	}
	return v
}

// SetPartitioned switches the partitioning mode. Every resident window
// whose set index differs under the new mode is invalidated — the paper's
// "when the second thread becomes active, DSB becomes partitioned, which
// forces DSB evictions of micro-ops of the first thread" (Section IV-B).
// The invalidated windows are returned so the owning threads' LSDs can be
// flushed.
// The returned slice aliases the same scratch buffer as Fill's.
func (d *DSB) SetPartitioned(on bool) []Evicted {
	if d.partitioned == on {
		return nil
	}
	surviving := d.survScratch[:0]
	evicted := d.evictScratch[:0]
	for si := range d.sets {
		for _, e := range d.sets[si] {
			if !e.valid {
				continue
			}
			d.partitioned = on
			newIdx := d.SetIndex(e.thread, e.window)
			d.partitioned = !on
			if newIdx == si {
				surviving = append(surviving, e)
			} else {
				evicted = append(evicted, Evicted{Thread: e.thread, Window: e.window})
				d.stats.Evictions++
			}
		}
		d.sets[si] = d.sets[si][:0]
	}
	d.partitioned = on
	d.stats.Partitions++
	for _, e := range surviving {
		d.sets[d.SetIndex(e.thread, e.window)] = append(d.sets[d.SetIndex(e.thread, e.window)], e)
	}
	d.survScratch = surviving
	d.evictScratch = evicted
	return evicted
}

// InvalidateWindowRange drops a thread's decoded windows overlapping
// [addr, addr+bytes): real instruction-cache invalidations (clflush of
// code, SMC detection) drop the corresponding micro-op cache entries too.
func (d *DSB) InvalidateWindowRange(thread int, addr uint64, bytes uint64) {
	first := isa.Window(addr)
	last := isa.Window(addr + bytes - 1)
	for si := range d.sets {
		for i := range d.sets[si] {
			e := &d.sets[si][i]
			if e.valid && e.thread == thread && e.window >= first && e.window <= last {
				e.valid = false
				d.stats.Evictions++
			}
		}
	}
}

// InvalidateThread drops every window owned by a thread (used by enclave
// exit modelling and tests).
func (d *DSB) InvalidateThread(thread int) {
	for si := range d.sets {
		for i := range d.sets[si] {
			if d.sets[si][i].valid && d.sets[si][i].thread == thread {
				d.sets[si][i].valid = false
				d.stats.Evictions++
			}
		}
	}
}

// OccupiedLines returns how many of a set's 8 ways hold valid lines under
// the current mode, for the set that window would map to for thread.
func (d *DSB) OccupiedLines(thread int, window uint64) int {
	return d.usedLines(d.sets[d.SetIndex(thread, window)])
}

// WindowOf is a convenience re-export of the ISA window function.
func WindowOf(addr uint64) uint64 { return isa.Window(addr) }
