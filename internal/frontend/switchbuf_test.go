package frontend

import "testing"

// Capacity-boundary semantics: the leakage fuzzer uses switch-buffer
// hit/conflict/insert events as coverage features, so the edge sizes are
// pinned here before anything leans on them.

func TestSwitchBufferSizeZeroIsDisabled(t *testing.T) {
	for _, size := range []int{0, -3} {
		b := newSwitchBuffer(size)
		addr := uint64(0x2000)
		for i := 0; i < 10; i++ {
			if b.cost(addr) {
				t.Fatalf("size %d: disabled buffer learned a transition point", size)
			}
		}
		if b.stats != (SwitchStats{}) {
			t.Fatalf("size %d: disabled buffer recorded events: %+v", size, b.stats)
		}
		b.reset() // must not panic on the empty buffer
		c := b.clone()
		if c.cost(addr) {
			t.Fatalf("size %d: cloned disabled buffer learned", size)
		}
	}
}

func TestSwitchBufferSizeOne(t *testing.T) {
	b := newSwitchBuffer(1)
	a1, a2 := uint64(0x2000), uint64(0x3000)

	// A single stable transition point learns through the lone entry.
	b.cost(a1)
	b.cost(a1)
	if !b.cost(a1) {
		t.Fatal("single entry did not learn a stable transition point")
	}
	want := SwitchStats{Hits: 1, Learns: 1, Inserts: 1}
	if b.stats != want {
		t.Fatalf("stats after learning: %+v, want %+v", b.stats, want)
	}

	// Any second address maps to the same entry: alternation evicts on
	// every occurrence, so nothing ever learns again.
	for i := 0; i < 6; i++ {
		if b.cost(a2) || b.cost(a1) {
			t.Fatal("alternating transition points learned through a size-1 buffer")
		}
	}
	if b.stats.Conflicts != 12 {
		t.Fatalf("conflicts = %d, want 12", b.stats.Conflicts)
	}
}

func TestSwitchBufferConflictEvictRelearn(t *testing.T) {
	b := newSwitchBuffer(1)
	a1, a2 := uint64(0x2000), uint64(0x3000)

	// Learn a1, evict it with a2, then relearn a1 from scratch: the
	// counter must restart at 1, not resume at the learned threshold.
	b.cost(a1)
	b.cost(a1)
	if !b.cost(a1) {
		t.Fatal("a1 did not learn")
	}
	b.cost(a2) // conflict-evicts a1
	if b.cost(a1) {
		t.Fatal("a1 still learned after conflict eviction")
	}
	if b.cost(a1) {
		t.Fatal("a1 learned after only two post-eviction occurrences")
	}
	if !b.cost(a1) {
		t.Fatal("a1 did not relearn after the full cycle")
	}
	want := SwitchStats{Hits: 2, Learns: 2, Conflicts: 2, Inserts: 3}
	if b.stats != want {
		t.Fatalf("stats: %+v, want %+v", b.stats, want)
	}
}

func TestSwitchBufferStatsSurviveCloneAndReset(t *testing.T) {
	b := newSwitchBuffer(4)
	b.cost(0x1000)
	b.cost(0x1000)
	b.cost(0x1000)
	c := b.clone()
	if c.stats != b.stats {
		t.Fatalf("clone stats %+v != original %+v", c.stats, b.stats)
	}
	// The clone's counters advance independently.
	c.cost(0x1000)
	if c.stats == b.stats {
		t.Fatal("clone stats still coupled to the original")
	}
	b.reset()
	if b.stats != (SwitchStats{}) {
		t.Fatalf("reset kept stats: %+v", b.stats)
	}
}
