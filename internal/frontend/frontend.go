package frontend

import (
	"repro/internal/branch"
	"repro/internal/cache"
	"repro/internal/isa"
)

// Frontend is the per-core instruction delivery engine: two hardware
// threads share one DSB, one MITE decode pipeline, and one L1I cache,
// while each owns a private LSD and branch predictor — the sharing
// structure of Figure 1 that the paper's attacks exploit.
//
// Each simulated cycle the core arbiter grants one thread a delivery
// slot; DeliverCycle then streams micro-ops from whichever path serves
// the thread's current fetch address, charging the path-dependent stalls
// (LCP predecode stalls, DSB<->MITE switch penalties, LSD replay bubbles,
// mispredict redirects) that constitute the timing side channel.
type Frontend struct {
	P   Params
	DSB *DSB
	L1I *cache.Cache
	BPU [2]*branch.Predictor

	lsd   [2]*LSD
	align *AlignTracker
	sw    *switchBuffer
	thr   [2]fthread
	idq   [2]idqRing

	// dsbRes are the per-thread DSB-residency probes handed to the LSDs,
	// built once so the per-instruction advance path does not reconstruct
	// a closure.
	dsbRes [2]func(window uint64) bool

	// Ctr holds per-thread event counters.
	Ctr [2]ThreadCounters
}

// idqRing is the per-thread Instruction Decode Queue: the micro-op buffer
// between frontend delivery and backend retirement (Figure 1). The buffer
// is sized to the next power of two above the IDQ capacity so the ring
// arithmetic is a mask instead of a modulo.
type idqRing struct {
	buf  []isa.Inst
	mask int
	head int
	size int // micro-ops buffered
}

func newIDQRing(capacity int) idqRing {
	n := 1
	for n <= capacity {
		n <<= 1
	}
	return idqRing{buf: make([]isa.Inst, n), mask: n - 1}
}

func (q *idqRing) free(cap int) int { return cap - q.size }

func (q *idqRing) push(in isa.Inst) {
	i := (q.head + q.size) & q.mask
	q.buf[i] = in
	q.size += int(in.UOps)
}

func (q *idqRing) pop() (isa.Inst, bool) {
	if q.size == 0 {
		return isa.Inst{}, false
	}
	in := q.buf[q.head]
	q.head = (q.head + 1) & q.mask
	q.size -= int(in.UOps)
	return in, true
}

type fthread struct {
	stream isa.Stream
	cur    isa.Inst
	hasCur bool

	// stall is fractional stall debt in cycles; whole cycles are consumed
	// one per DeliverCycle call.
	stall   float64
	lastSrc Source
	prevLCP bool

	// MITE window-fill tracking.
	fillActive bool
	fillWindow uint64
	fillUOps   int

	lastFetchLine uint64
}

// New builds a frontend. lsdEnabled controls whether the Loop Stream
// Detector participates (Section X's microcode patches disable it).
func New(p Params, l1i *cache.Cache, lsdEnabled bool) *Frontend {
	f := &Frontend{
		P:     p,
		DSB:   NewDSB(p),
		L1I:   l1i,
		align: NewAlignTracker(p.LSDPoisonCap),
		sw:    newSwitchBuffer(p.SwitchBufSize),
	}
	for t := 0; t < 2; t++ {
		t := t
		f.BPU[t] = branch.New()
		f.lsd[t] = NewLSD(p, lsdEnabled, f.align)
		f.idq[t] = newIDQRing(p.IDQCapacity)
		f.dsbRes[t] = func(w uint64) bool { return f.DSB.Contains(t, w) }
	}
	return f
}

// Align exposes the shared misalignment tracker (tests, experiments).
func (f *Frontend) Align() *AlignTracker { return f.align }

// DrainTransients models the pipeline serialization of a task or
// context switch on thread t: fractional stall debt, the last delivery
// source, prefix-decode and window-fill tracking all die with the
// in-flight pipeline. Persistent structures — DSB, L1I, LSD, alignment
// tracker, switch buffer, branch predictor — survive untouched; they are
// the storage the paper's channels live in. The leakage contract drains
// transients at phase boundaries so counterexamples implicate surviving
// state, not leftover stall debt.
func (f *Frontend) DrainTransients(t int) {
	th := &f.thr[t]
	th.stall = 0
	th.lastSrc = SrcNone
	th.prevLCP = false
	th.fillActive = false
	th.fillWindow = 0
	th.fillUOps = 0
	th.lastFetchLine = 0
}

// SwitchBufferStats returns the switch buffer's event counters. The
// buffer is shared by both hardware threads, like the hardware it models.
func (f *Frontend) SwitchBufferStats() SwitchStats { return f.sw.stats }

// IDQLen returns the micro-ops buffered for thread t.
func (f *Frontend) IDQLen(t int) int { return f.idq[t].size }

// PopUOp removes one micro-op from thread t's IDQ for retirement.
func (f *Frontend) PopUOp(t int) (isa.Inst, bool) { return f.idq[t].pop() }

// LSDFor exposes a thread's loop stream detector (tests, experiments).
func (f *Frontend) LSDFor(t int) *LSD { return f.lsd[t] }

// SetStream installs the dynamic instruction stream thread t executes
// next. Any previous stream is discarded.
func (f *Frontend) SetStream(t int, s isa.Stream) {
	f.thr[t].stream = s
	f.thr[t].hasCur = false
	f.thr[t].lastFetchLine = ^uint64(0)
}

// StreamDone reports whether thread t has consumed its entire stream.
func (f *Frontend) StreamDone(t int) bool {
	th := &f.thr[t]
	if th.hasCur {
		return false
	}
	return !f.load(t)
}

// Stalled reports whether thread t owes stall cycles.
func (f *Frontend) Stalled(t int) bool { return f.thr[t].stall >= 1 }

// NextAddr returns the address of the next instruction to deliver, used
// by tests to observe fetch progress.
func (f *Frontend) NextAddr(t int) (uint64, bool) {
	if !f.thr[t].hasCur && !f.load(t) {
		return 0, false
	}
	return f.thr[t].cur.Addr, true
}

// SetPartitioned toggles SMT set-partitioning of the DSB. Repartitioning
// invalidates relocated windows and flushes both LSDs (Section IV-B).
func (f *Frontend) SetPartitioned(on bool) {
	if f.DSB.Partitioned() == on {
		return
	}
	evicted := f.DSB.SetPartitioned(on)
	for _, e := range evicted {
		f.lsd[e.Thread].NotifyEviction(e.Window)
	}
	f.lsd[0].Flush()
	f.lsd[1].Flush()
	f.thr[0].lastSrc = SrcNone
	f.thr[1].lastSrc = SrcNone
}

// ResetCounters zeroes both threads' counters.
func (f *Frontend) ResetCounters() {
	f.Ctr[0] = ThreadCounters{}
	f.Ctr[1] = ThreadCounters{}
}

// DeliverCycle delivers micro-ops for thread t into its IDQ, bounded by
// the queue's free space, and returns how many were delivered and from
// which path. A stalled or idle thread delivers nothing.
func (f *Frontend) DeliverCycle(t int) (int, Source) {
	th := &f.thr[t]
	if !th.hasCur && !f.load(t) {
		f.Ctr[t].IdleCycles++
		return 0, SrcNone
	}
	if th.stall >= 1 {
		th.stall--
		f.Ctr[t].StallCycles++
		return 0, SrcNone
	}
	budget := f.idq[t].free(f.P.IDQCapacity)
	if budget <= 0 {
		return 0, SrcNone
	}
	if f.lsd[t].Locked() {
		return f.deliverLSD(t, budget)
	}
	if !th.cur.HasLCP() {
		w := isa.Window(th.cur.Addr)
		if f.DSB.Lookup(t, w) {
			return f.deliverDSB(t, budget, w)
		}
	}
	return f.deliverMITE(t, budget)
}

// load pulls the next instruction from the stream into cur.
func (f *Frontend) load(t int) bool {
	th := &f.thr[t]
	if th.hasCur {
		return true
	}
	if th.stream == nil {
		return false
	}
	// Devirtualize the overwhelmingly common stream type: every attack
	// loop is a LoopStream, and the static call inlines.
	var in isa.Inst
	var ok bool
	if ls, isLoop := th.stream.(*isa.LoopStream); isLoop {
		in, ok = ls.Next()
	} else {
		in, ok = th.stream.Next()
	}
	if !ok {
		th.stream = nil
		f.finalizeFill(t)
		return false
	}
	th.cur = in
	th.hasCur = true
	return true
}

// advance consumes the current instruction: IDQ insertion, loop
// detection, branch resolution, and loading the successor. It returns the
// consumed instruction.
func (f *Frontend) advance(t int) isa.Inst {
	th := &f.thr[t]
	in := th.cur
	th.hasCur = false
	th.prevLCP = in.HasLCP()
	f.idq[t].push(in)
	f.lsd[t].Observe(in, f.dsbRes[t])
	if in.Kind == isa.Pause {
		th.stall += f.P.PauseCycles
	}
	if in.IsBranch() {
		if f.BPU[t].Resolve(in.Addr, in.Taken, in.Target) {
			th.stall += f.P.MispredictPenalty
			f.Ctr[t].Mispredicts++
		}
	}
	f.load(t)
	return in
}

// switchTo charges the DSB<->MITE switch penalty when the delivery path
// changes at addr. Transition points the switch buffer has learned pay
// only the residual (Section IV-H).
func (f *Frontend) switchTo(t int, src Source, addr uint64) {
	th := &f.thr[t]
	prev := th.lastSrc
	th.lastSrc = src
	if prev == src || prev == SrcNone || prev == SrcLSD {
		return
	}
	if (prev == SrcDSB && src == SrcMITE) || (prev == SrcMITE && src == SrcDSB) {
		pen := f.P.SwitchPenalty
		if f.sw.cost(addr) {
			pen = f.P.SwitchResidual
		}
		th.stall += pen * f.P.SwitchOverlapCharge
		f.Ctr[t].SwitchCycles += pen
		f.Ctr[t].SwitchCount++
	}
}

// deliverLSD streams the locked loop. Every taken back-edge inserts the
// replay bubble that makes jump-dense loops slower from the LSD than from
// the DSB; a fall-through back-edge is the loop exit and tears the lock
// down.
func (f *Frontend) deliverLSD(t, budget int) (int, Source) {
	th := &f.thr[t]
	th.lastSrc = SrcLSD
	width := min(f.P.DeliverWidth, budget)
	n := 0
	for n < width && th.hasCur {
		in := th.cur
		if n > 0 && n+int(in.UOps) > width {
			break
		}
		if !f.lsd[t].InBody(isa.Window(in.Addr)) {
			// Fetch left the locked loop body without a branch (stream
			// deviation): the LSD cannot supply it.
			f.lsd[t].LoopExit()
			break
		}
		th.hasCur = false
		th.prevLCP = in.HasLCP()
		f.idq[t].push(in)
		n += int(in.UOps)
		if in.Kind == isa.Pause {
			th.stall += f.P.PauseCycles
		}
		if in.IsBranch() {
			if f.BPU[t].Resolve(in.Addr, in.Taken, in.Target) {
				th.stall += f.P.MispredictPenalty
				f.Ctr[t].Mispredicts++
			}
			if !in.Taken || !f.lsd[t].InBody(isa.Window(in.Target)) {
				// Loop exit: fall-through or a departure from the body.
				f.lsd[t].LoopExit()
				f.load(t)
				break
			}
			// Body-internal taken jump: the LSD replays with a bubble.
			th.stall += f.P.LSDJumpBubble
			f.load(t)
			break
		}
		f.load(t)
	}
	f.Ctr[t].UOpsLSD += uint64(n)
	f.Ctr[t].DeliveryCycles++
	return n, SrcLSD
}

// deliverDSB streams decoded micro-ops for one window from the micro-op
// cache.
func (f *Frontend) deliverDSB(t, budget int, w uint64) (int, Source) {
	th := &f.thr[t]
	f.switchTo(t, SrcDSB, th.cur.Addr)
	width := min(f.P.DeliverWidth, budget)
	n := 0
	for n < width && th.hasCur {
		in := th.cur
		if in.HasLCP() || isa.Window(in.Addr) != w {
			break
		}
		if n > 0 && n+int(in.UOps) > width {
			break
		}
		n += int(in.UOps)
		if isa.Window(in.End()-1) != w {
			// Window-crossing micro-ops span two DSB lines (Section IV-G).
			th.stall += f.P.DSBCrossPenalty
		}
		f.advance(t)
		if in.IsBranch() && in.Taken {
			break
		}
	}
	f.Ctr[t].UOpsDSB += uint64(n)
	f.Ctr[t].DeliveryCycles++
	return n, SrcDSB
}

// deliverMITE fetches, predecodes, and decodes through the legacy path:
// fetch-bandwidth limited, LCP predecode stalls, and DSB fills of every
// completed cacheable window.
func (f *Frontend) deliverMITE(t, budget int) (int, Source) {
	th := &f.thr[t]
	f.switchTo(t, SrcMITE, th.cur.Addr)
	width := min(f.P.DecodeWidth, budget)
	n, bytes := 0, 0
	for n < width && th.hasCur {
		in := th.cur
		bytes += int(in.Len)
		if n > 0 && (bytes > f.P.FetchBytes || n+int(in.UOps) > width) {
			break
		}
		// One L1I access per 64-byte fetch line.
		line := in.Addr &^ 63
		if line != th.lastFetchLine {
			th.lastFetchLine = line
			if !f.L1I.Access(in.Addr) {
				th.stall += f.P.L1IMissPenalty
				f.Ctr[t].L1IMisses++
			}
		}
		if in.HasLCP() {
			count := f.P.LCPStallIsolated
			charge := count * f.P.LCPOverlapCharge
			if th.prevLCP {
				// Consecutive LCPs decode strictly sequentially
				// (Section IV-H observation (b)): the full stall lands on
				// the critical path.
				count = f.P.LCPStallChained
				charge = count
			}
			th.stall += charge
			f.Ctr[t].LCPStallCycles += count
		}
		n += int(in.UOps)
		f.trackFill(t, in)
		f.advance(t)
		if in.IsBranch() && in.Taken {
			th.stall += f.P.MITERedirectBubble
			f.finalizeFill(t)
			break
		}
		if in.HasLCP() {
			// LCP instructions decode alone (Section IV-H).
			break
		}
	}
	f.Ctr[t].UOpsMITE += uint64(n)
	f.Ctr[t].DeliveryCycles++
	return n, SrcMITE
}

// trackFill accumulates the micro-ops MITE decodes for the current
// 32-byte window so the window can be installed in the DSB when complete.
func (f *Frontend) trackFill(t int, in isa.Inst) {
	th := &f.thr[t]
	w := isa.Window(in.Addr)
	if !th.fillActive || th.fillWindow != w {
		f.finalizeFill(t)
		th.fillActive = true
		th.fillWindow = w
		th.fillUOps = 0
	}
	// Only non-LCP micro-ops are cached: an LCP-prefixed instruction must
	// keep decoding through MITE every time it executes (Section IV-H
	// observation (a)), which is what forces the DSB-to-MITE switches of
	// the mixed-issue pattern.
	if !in.HasLCP() {
		th.fillUOps += int(in.UOps)
	}
}

// finalizeFill installs the tracked window's cacheable micro-ops into the
// DSB.
func (f *Frontend) finalizeFill(t int) {
	th := &f.thr[t]
	if !th.fillActive {
		return
	}
	th.fillActive = false
	if th.fillUOps == 0 {
		return
	}
	evicted := f.DSB.Fill(t, th.fillWindow, th.fillUOps)
	for _, e := range evicted {
		f.lsd[e.Thread].NotifyEviction(e.Window)
	}
}
