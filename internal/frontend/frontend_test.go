package frontend

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/isa"
)

// newFE builds a frontend with a warm, large L1I so instruction cache
// effects don't perturb path-timing tests (the paper's attacks cause no
// L1I misses; Section IV-F).
func newFE(lsdEnabled bool) *Frontend {
	return New(DefaultParams(), cache.New(cache.L1Config), lsdEnabled)
}

// run drives thread t's stream to completion with a 4-wide backend drain
// and returns the cycle count.
func run(t *testing.T, f *Frontend, tid int, s isa.Stream) int {
	t.Helper()
	f.SetStream(tid, s)
	cycles := 0
	for !f.StreamDone(tid) || f.IDQLen(tid) > 0 {
		f.DeliverCycle(tid)
		for i := 0; i < 4; i++ {
			f.PopUOp(tid)
		}
		cycles++
		if cycles > 5_000_000 {
			t.Fatal("runaway stream")
		}
	}
	return cycles
}

// slope measures steady-state cycles per loop iteration by differencing
// two run lengths (warmup cancels out).
func slope(t *testing.T, mk func() *Frontend, blocks []*isa.Block, n1, n2 int) float64 {
	t.Helper()
	f1 := mk()
	c1 := run(t, f1, 0, isa.NewLoopStream(blocks, n1))
	f2 := mk()
	c2 := run(t, f2, 0, isa.NewLoopStream(blocks, n2))
	return float64(c2-c1) / float64(n2-n1)
}

func TestColdChainUsesMITEThenDSB(t *testing.T) {
	f := newFE(false)
	blocks := isa.MixChain(3, 4, true)
	run(t, f, 0, isa.NewLoopStream(blocks, 1))
	c1 := f.Ctr[0]
	if c1.UOpsMITE == 0 {
		t.Error("first iteration should decode through MITE")
	}
	if c1.UOpsDSB != 0 {
		t.Error("first iteration should not hit DSB")
	}
	run(t, f, 0, isa.NewLoopStream(blocks, 1))
	c2 := f.Ctr[0].Sub(c1)
	if c2.UOpsDSB == 0 {
		t.Error("second pass should hit DSB")
	}
	if c2.UOpsMITE != 0 {
		t.Errorf("second pass should not use MITE, got %d uops", c2.UOpsMITE)
	}
}

func TestLSDLocksOnSmallAlignedLoop(t *testing.T) {
	f := newFE(true)
	blocks := isa.MixChain(3, 8, true) // 40 uops, 8 windows: qualifies
	run(t, f, 0, isa.NewLoopStream(blocks, 20))
	if f.LSDFor(0).Locks() == 0 {
		t.Fatal("LSD never locked on a qualifying loop")
	}
	if f.Ctr[0].UOpsLSD == 0 {
		t.Error("no micro-ops delivered from LSD")
	}
}

func TestLSDDoesNotLockWhenDisabled(t *testing.T) {
	f := newFE(false)
	blocks := isa.MixChain(3, 8, true)
	run(t, f, 0, isa.NewLoopStream(blocks, 20))
	if f.Ctr[0].UOpsLSD != 0 {
		t.Error("disabled LSD delivered micro-ops")
	}
}

func TestNineBlockChainNeverLocksAndThrashes(t *testing.T) {
	// Section IV-F: 9 same-set blocks exceed the 8 ways; DSB evictions
	// flush the LSD and redirect delivery to MITE.
	f := newFE(true)
	blocks := isa.MixChain(3, 9, true)
	run(t, f, 0, isa.NewLoopStream(blocks, 20))
	if f.Ctr[0].UOpsLSD != 0 {
		t.Error("9-block same-set chain must not stream from LSD")
	}
	// Steady state must keep missing: MITE dominates.
	if f.Ctr[0].UOpsMITE < f.Ctr[0].UOpsDSB {
		t.Errorf("thrash should be MITE-dominated: MITE=%d DSB=%d",
			f.Ctr[0].UOpsMITE, f.Ctr[0].UOpsDSB)
	}
}

func TestPathTimingOrdering(t *testing.T) {
	// Figure 2: for the jmp-dense mix blocks, DSB is fastest, LSD sits in
	// the middle, and MITE+DSB (the 9-block eviction thrash) is slowest.
	aligned8 := isa.MixChain(3, 8, true)
	thrash9 := isa.MixChain(3, 9, true)

	dsb := slope(t, func() *Frontend { return newFE(false) }, aligned8, 50, 150)
	lsd := slope(t, func() *Frontend { return newFE(true) }, aligned8, 50, 150)
	mite := slope(t, func() *Frontend { return newFE(true) }, thrash9, 50, 150)
	// Normalize per block.
	dsb /= 8
	lsd /= 8
	mite /= 9

	if !(dsb < lsd && lsd < mite) {
		t.Errorf("path ordering violated: DSB=%.2f LSD=%.2f MITE=%.2f cycles/block", dsb, lsd, mite)
	}
}

func TestMisalignedChainDoesNotLock(t *testing.T) {
	// Section IV-G: 4 misaligned same-set blocks collide in the LSD.
	f := newFE(true)
	blocks := isa.MixChain(3, 4, false)
	run(t, f, 0, isa.NewLoopStream(blocks, 20))
	if f.Ctr[0].UOpsLSD != 0 {
		t.Error("misaligned chain must not stream from LSD")
	}
}

func TestMixedAlignmentPairsBlockLSD(t *testing.T) {
	// The {aligned + misaligned} pairs of Section IV-G that force
	// LSD-to-DSB switches.
	pairs := [][2]int{{5, 2}, {6, 2}, {3, 3}, {4, 3}, {5, 3}, {7, 1}}
	for _, p := range pairs {
		f := newFE(true)
		blocks := isa.MixChainMixed(3, p[0], p[1])
		run(t, f, 0, isa.NewLoopStream(blocks, 20))
		if f.Ctr[0].UOpsLSD != 0 {
			t.Errorf("{%da+%dm} chain streamed from LSD; paper says it must fall back to DSB", p[0], p[1])
		}
	}
}

func TestAlignedPairsStillLock(t *testing.T) {
	// Fully aligned chains up to 8 blocks keep using the LSD.
	for _, n := range []int{4, 7, 8} {
		f := newFE(true)
		run(t, f, 0, isa.NewLoopStream(isa.MixChain(3, n, true), 20))
		if f.LSDFor(0).Locks() == 0 {
			t.Errorf("%d-block aligned chain should lock the LSD", n)
		}
	}
}

func TestMisalignmentPoisonsThenDecays(t *testing.T) {
	f := newFE(true)
	// Misaligned loop poisons the shared tracker.
	run(t, f, 0, isa.NewLoopStream(isa.MixChain(3, 3, false), 10))
	if !f.Align().Poisoned() {
		t.Fatal("misaligned loop left tracker clean")
	}
	// A long aligned run decays it and eventually locks again.
	run(t, f, 0, isa.NewLoopStream(isa.MixChain(3, 5, true), 60))
	if f.Align().Poisoned() {
		t.Error("aligned iterations should decay the tracker to clean")
	}
	if f.LSDFor(0).Locks() == 0 {
		t.Error("aligned loop should lock once the tracker decayed")
	}
}

func TestCrossThreadMisalignmentBlocksLock(t *testing.T) {
	// Section V-B's MT misalignment mechanism: thread 1's misaligned
	// accesses prevent thread 0's loop from (re)locking.
	f := newFE(true)
	// Poison via thread 1.
	run(t, f, 1, isa.NewLoopStream(isa.MixChain(7, 3, false), 10))
	// Thread 0 runs a short qualifying loop; tracker is still poisoned.
	run(t, f, 0, isa.NewLoopStream(isa.MixChain(3, 5, true), 8))
	if f.Ctr[0].UOpsLSD != 0 {
		t.Error("thread 0 locked despite cross-thread misalignment poisoning")
	}
}

func TestPartitionFlushesLSDAndEvicts(t *testing.T) {
	f := newFE(true)
	blocks := isa.MixChain(21, 6, true) // set 21: relocated on partition
	run(t, f, 0, isa.NewLoopStream(blocks, 10))
	if f.LSDFor(0).Locks() == 0 {
		t.Fatal("precondition: loop should lock")
	}
	f.SetPartitioned(true)
	if f.LSDFor(0).Locked() {
		t.Error("partitioning must flush the LSD")
	}
	w := isa.Window(blocks[0].Start())
	if f.DSB.Contains(0, w) {
		t.Error("set-21 window must be invalidated for thread 0 after partitioning")
	}
}

func TestPartitionSurvivorSetKeepsWindows(t *testing.T) {
	f := newFE(true)
	blocks := isa.MixChain(5, 6, true) // set 5 survives partitioning for thread 0
	run(t, f, 0, isa.NewLoopStream(blocks, 10))
	f.SetPartitioned(true)
	for _, b := range blocks {
		if !f.DSB.Contains(0, isa.Window(b.Start())) {
			t.Fatalf("window %#x should survive partitioning", b.Start())
		}
	}
}

func TestEvictionRedirectsToMITE(t *testing.T) {
	// The non-MT eviction attack signal: after 3 extra same-set blocks,
	// re-running the original 6 needs MITE again.
	f := newFE(false)
	victim := isa.MixChain(9, 6, true)
	run(t, f, 0, isa.NewLoopStream(victim, 3))
	pre := f.Ctr[0]

	extra := make([]*isa.Block, 3)
	for i := range extra {
		extra[i] = isa.MixBlock(isa.AddrForSet(9, 6+i))
	}
	isa.ChainLoop(extra)
	run(t, f, 0, isa.NewLoopStream(extra, 3))

	mid := f.Ctr[0]
	run(t, f, 0, isa.NewLoopStream(victim, 1))
	post := f.Ctr[0].Sub(mid)
	if post.UOpsMITE == 0 {
		t.Error("victim blocks should need MITE after eviction")
	}
	_ = pre
}

func TestNoEvictionStaysDSB(t *testing.T) {
	// Control for the above: extra blocks in a different set leave the
	// victim resident.
	f := newFE(false)
	victim := isa.MixChain(9, 6, true)
	run(t, f, 0, isa.NewLoopStream(victim, 3))

	extra := make([]*isa.Block, 3)
	for i := range extra {
		extra[i] = isa.MixBlock(isa.AddrForSet(13, 6+i))
	}
	isa.ChainLoop(extra)
	run(t, f, 0, isa.NewLoopStream(extra, 3))

	mid := f.Ctr[0]
	run(t, f, 0, isa.NewLoopStream(victim, 1))
	post := f.Ctr[0].Sub(mid)
	if post.UOpsMITE != 0 {
		t.Errorf("victim blocks should stay in DSB, got %d MITE uops", post.UOpsMITE)
	}
}

func TestLCPOrderedVsMixed(t *testing.T) {
	// Figure 4's shape: ordered issue accumulates more LCP stall cycles
	// (consecutive LCPs serialize); mixed issue accumulates far more
	// switch-penalty cycles (transition points defeat the switch buffer);
	// and mixed finishes faster overall (IPC 0.67 vs 0.59).
	mk := func() *Frontend { return newFE(false) }
	const iters = 400

	fMixed := mk()
	cyMixed := run(t, fMixed, 0, isa.NewLoopStream([]*isa.Block{isa.LCPBlock(0x2000, 16, true)}, iters))
	fOrd := mk()
	cyOrd := run(t, fOrd, 0, isa.NewLoopStream([]*isa.Block{isa.LCPBlock(0x2000, 16, false)}, iters))

	if fOrd.Ctr[0].LCPStallCycles <= fMixed.Ctr[0].LCPStallCycles {
		t.Errorf("ordered LCP stalls (%.0f) should exceed mixed (%.0f)",
			fOrd.Ctr[0].LCPStallCycles, fMixed.Ctr[0].LCPStallCycles)
	}
	if fMixed.Ctr[0].SwitchCycles <= fOrd.Ctr[0].SwitchCycles {
		t.Errorf("mixed switch cycles (%.1f) should exceed ordered (%.1f)",
			fMixed.Ctr[0].SwitchCycles, fOrd.Ctr[0].SwitchCycles)
	}
	if cyMixed >= cyOrd {
		t.Errorf("mixed issue (%d cy) should be faster than ordered (%d cy)", cyMixed, cyOrd)
	}
}

func TestIDQBoundsRespected(t *testing.T) {
	f := newFE(false)
	f.SetStream(0, isa.NewLoopStream(isa.MixChain(0, 4, true), 100))
	// Never drain: IDQ must cap at capacity.
	for i := 0; i < 200; i++ {
		f.DeliverCycle(0)
		if f.IDQLen(0) > f.P.IDQCapacity {
			t.Fatalf("IDQ overflow: %d > %d", f.IDQLen(0), f.P.IDQCapacity)
		}
	}
	if f.IDQLen(0) == 0 {
		t.Error("IDQ empty after undrained delivery")
	}
}

func TestStreamDoneAndIdle(t *testing.T) {
	f := newFE(false)
	if !f.StreamDone(0) {
		t.Error("fresh thread should be done")
	}
	f.DeliverCycle(0)
	if f.Ctr[0].IdleCycles != 1 {
		t.Error("idle cycle not counted")
	}
}

func TestMispredictOnLoopExit(t *testing.T) {
	f := newFE(true)
	run(t, f, 0, isa.NewLoopStream(isa.MixChain(2, 4, true), 30))
	if f.Ctr[0].Mispredicts == 0 {
		t.Error("loop exit should mispredict at least once")
	}
}

func TestResetCounters(t *testing.T) {
	f := newFE(false)
	run(t, f, 0, isa.NewLoopStream(isa.MixChain(2, 4, true), 3))
	f.ResetCounters()
	if f.Ctr[0].UOps() != 0 {
		t.Error("counters not cleared")
	}
}

func TestMisalignedBlocksCostTwoDSBGroups(t *testing.T) {
	// A misaligned block spans two windows, so DSB delivery needs two
	// cycles per block where an aligned block needs one — the signal the
	// misalignment attacks use on LSD-less machines.
	mkFE := func() *Frontend { return newFE(false) }
	al := slope(t, mkFE, isa.MixChain(3, 4, true), 50, 150)
	mis := slope(t, mkFE, isa.MixChain(3, 4, false), 50, 150)
	if mis <= al {
		t.Errorf("misaligned slope (%.2f) should exceed aligned (%.2f)", mis, al)
	}
}
