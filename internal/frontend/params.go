// Package frontend implements the processor frontend that is the subject
// of the paper: the Micro-Instruction Translation Engine (MITE), the
// Decoded Stream Buffer (DSB, the micro-op cache), and the Loop Stream
// Detector (LSD), together with the path-switching behaviour between them
// (Figure 1, Section IV).
//
// The model is cycle-level: each simulated cycle one hardware thread
// delivers micro-ops into its Instruction Decode Queue from exactly one of
// the three paths, and the choice of path — plus the stalls incurred when
// switching — produces the timing and power signatures every attack in the
// paper exploits.
package frontend

// Source identifies which frontend path delivered a micro-op group.
type Source uint8

const (
	// SrcNone means no delivery happened this cycle (idle or stalled).
	SrcNone Source = iota
	// SrcLSD is delivery from the Loop Stream Detector.
	SrcLSD
	// SrcDSB is delivery from the Decoded Stream Buffer (micro-op cache).
	SrcDSB
	// SrcMITE is delivery through the legacy decode pipeline.
	SrcMITE
)

// String returns the path name.
func (s Source) String() string {
	switch s {
	case SrcLSD:
		return "LSD"
	case SrcDSB:
		return "DSB"
	case SrcMITE:
		return "MITE"
	default:
		return "none"
	}
}

// Params holds the frontend geometry and latency constants. The defaults
// encode the structure sizes the paper documents for Skylake-family parts
// (Section IV, Table I); the float-valued latencies are the calibration
// surface used to match the paper's measured separations.
type Params struct {
	// DSB geometry (Section IV-B): 32 sets, 8 ways, 6 micro-ops or one
	// 32-byte window per line, at most 3 lines per window.
	DSBSets           int
	DSBWays           int
	DSBLineUOps       int
	DSBLinesPerWindow int

	// LSD (Section IV-A): up to 64 micro-ops streamed from the IDQ. A
	// capacity of 0 models microcode with the LSD disabled (Section X).
	LSDCapacityUOps int
	// LSDWindowSlots is the number of distinct 32-byte windows the LSD's
	// internal tracker can hold; misaligned blocks occupy two windows and
	// exhaust it early (Section IV-G).
	LSDWindowSlots int
	// LSDMaxCrossings is the number of window-crossing (misaligned)
	// instructions the LSD tolerates before giving up on a loop.
	LSDMaxCrossings int
	// LSDPoisonCap bounds the shared alignment tracker: how many stale
	// misaligned-window entries can accumulate before saturating. Each
	// fully-aligned loop iteration ages one entry out (Section IV-G).
	LSDPoisonCap int
	// LSDLockIterations is how many identical loop iterations must stream
	// before the LSD takes over delivery.
	LSDLockIterations int
	// LSDJumpBubble is the replay bubble (cycles) after each taken jump
	// streamed from the LSD. It is why jump-dense loops are *slower* from
	// the LSD than from the DSB (Figure 2, Section V-B).
	LSDJumpBubble float64

	// Delivery widths.
	DeliverWidth int // micro-ops/cycle from DSB or LSD
	DecodeWidth  int // micro-ops/cycle through MITE
	FetchBytes   int // bytes/cycle fetched+predecoded by MITE
	IDQCapacity  int // micro-ops buffered per thread in the IDQ

	// Switch costs. An unlearned DSB<->MITE transition pays SwitchPenalty;
	// a transition point the switch buffer has learned pays only
	// SwitchResidual (Section IV-H's "ordered issue" amortization).
	// Counted switch-penalty cycles are mostly overlapped with delivery;
	// only SwitchOverlapCharge of them land on the critical path — which
	// is how Figure 4's mixed-issue pattern shows far more switch-penalty
	// cycles yet a *higher* IPC than ordered issue.
	SwitchPenalty       float64
	SwitchResidual      float64
	SwitchOverlapCharge float64
	SwitchBufSize       int

	// LCP predecode stalls (Section IV-H). A run of consecutive LCP
	// instructions serializes the predecoder and its stall lands fully on
	// the critical path; an isolated LCP's stall is counted in full but
	// overlaps with neighbouring delivery (LCPOverlapCharge of it is
	// charged).
	LCPStallIsolated float64
	LCPStallChained  float64
	LCPOverlapCharge float64

	// Redirect costs.
	MispredictPenalty float64
	L1IMissPenalty    float64
	// MITERedirectBubble is the refetch bubble after a taken branch
	// decoded through the legacy pipeline; the DSB hides it, which is part
	// of why the MITE path is the slow one (Figure 2).
	MITERedirectBubble float64
	// PauseCycles is the delivery stall charged per pause instruction
	// (the x86 spin-wait hint costs ~140 cycles on Skylake).
	PauseCycles float64
	// DSBCrossPenalty is the extra delivery cost of a window-crossing
	// (misaligned) instruction served from the DSB: the micro-ops live
	// in two lines that must both be read (Section IV-G).
	DSBCrossPenalty float64
}

// DefaultParams returns the Skylake-family configuration used by every
// CPU model in Table I.
func DefaultParams() Params {
	return Params{
		DSBSets:             32,
		DSBWays:             8,
		DSBLineUOps:         6,
		DSBLinesPerWindow:   3,
		LSDCapacityUOps:     64,
		LSDWindowSlots:      8,
		LSDMaxCrossings:     3,
		LSDPoisonCap:        20,
		LSDLockIterations:   2,
		LSDJumpBubble:       2.0,
		DeliverWidth:        6,
		DecodeWidth:         5,
		FetchBytes:          16,
		IDQCapacity:         64,
		SwitchPenalty:       2.0,
		SwitchResidual:      0.25,
		SwitchOverlapCharge: 0.15,
		SwitchBufSize:       8,
		LCPStallIsolated:    2.56,
		LCPStallChained:     3.0,
		LCPOverlapCharge:    0.12,
		MispredictPenalty:   14,
		L1IMissPenalty:      30,
		MITERedirectBubble:  1.5,
		PauseCycles:         140,
		DSBCrossPenalty:     1.0,
	}
}

// ThreadCounters aggregates per-hardware-thread frontend events. The
// micro-op-per-path counters are the ones Figure 4 reports; the stall
// cycle counters are the timing signal of every attack.
type ThreadCounters struct {
	UOpsLSD  uint64
	UOpsDSB  uint64
	UOpsMITE uint64

	StallCycles    uint64
	IdleCycles     uint64
	DeliveryCycles uint64
	LCPStallCycles float64
	SwitchCycles   float64
	SwitchCount    uint64
	Mispredicts    uint64
	L1IMisses      uint64
	LSDLocks       uint64
	LSDFlushes     uint64
}

// UOps returns total micro-ops delivered on this thread.
func (c ThreadCounters) UOps() uint64 { return c.UOpsLSD + c.UOpsDSB + c.UOpsMITE }

// Add returns the field-wise sum of c and o (used to aggregate the two
// hardware threads' activity for package-level power accounting).
func (c ThreadCounters) Add(o ThreadCounters) ThreadCounters {
	return ThreadCounters{
		UOpsLSD:        c.UOpsLSD + o.UOpsLSD,
		UOpsDSB:        c.UOpsDSB + o.UOpsDSB,
		UOpsMITE:       c.UOpsMITE + o.UOpsMITE,
		StallCycles:    c.StallCycles + o.StallCycles,
		IdleCycles:     c.IdleCycles + o.IdleCycles,
		DeliveryCycles: c.DeliveryCycles + o.DeliveryCycles,
		LCPStallCycles: c.LCPStallCycles + o.LCPStallCycles,
		SwitchCycles:   c.SwitchCycles + o.SwitchCycles,
		SwitchCount:    c.SwitchCount + o.SwitchCount,
		Mispredicts:    c.Mispredicts + o.Mispredicts,
		L1IMisses:      c.L1IMisses + o.L1IMisses,
		LSDLocks:       c.LSDLocks + o.LSDLocks,
		LSDFlushes:     c.LSDFlushes + o.LSDFlushes,
	}
}

// Sub returns the event delta c - o.
func (c ThreadCounters) Sub(o ThreadCounters) ThreadCounters {
	return ThreadCounters{
		UOpsLSD:        c.UOpsLSD - o.UOpsLSD,
		UOpsDSB:        c.UOpsDSB - o.UOpsDSB,
		UOpsMITE:       c.UOpsMITE - o.UOpsMITE,
		StallCycles:    c.StallCycles - o.StallCycles,
		IdleCycles:     c.IdleCycles - o.IdleCycles,
		DeliveryCycles: c.DeliveryCycles - o.DeliveryCycles,
		LCPStallCycles: c.LCPStallCycles - o.LCPStallCycles,
		SwitchCycles:   c.SwitchCycles - o.SwitchCycles,
		SwitchCount:    c.SwitchCount - o.SwitchCount,
		Mispredicts:    c.Mispredicts - o.Mispredicts,
		L1IMisses:      c.L1IMisses - o.L1IMisses,
		LSDLocks:       c.LSDLocks - o.LSDLocks,
		LSDFlushes:     c.LSDFlushes - o.LSDFlushes,
	}
}
