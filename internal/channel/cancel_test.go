package channel

import (
	"context"
	"testing"

	"repro/internal/rng"
	"repro/internal/runctx"
)

// countingChannel cancels the shared context after N sent bits, then
// keeps counting: the number of bits sent after cancellation measures
// checkpoint latency (must be 0 — the next checkpoint stops the run).
type countingChannel struct {
	fakeChannel
	sent   int
	stopAt int
	cancel context.CancelFunc
}

func (c *countingChannel) SendBit(m byte) float64 {
	c.sent++
	if c.sent == c.stopAt {
		c.cancel()
	}
	return c.fakeChannel.SendBit(m)
}

func TestTransmitCtxCancelStopsWithinOneBit(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch := &countingChannel{fakeChannel: fakeChannel{r: rng.New(1)}, stopAt: 10, cancel: cancel}
	_, err := TransmitCtx(runctx.New(ctx, nil), ch, "model", Alternating(64), 4)
	if err != context.Canceled {
		t.Fatalf("TransmitCtx = %v, want context.Canceled", err)
	}
	if ch.sent != 10 {
		t.Errorf("channel sent %d bits after a cancel at bit 10", ch.sent)
	}
}

// TestTransmitCtxCancelOnFinalBit: a cancellation landing inside the
// last bit (where no further checkpoint follows) must still surface as
// an error, never as a completed-but-corrupted Result.
func TestTransmitCtxCancelOnFinalBit(t *testing.T) {
	msg := Alternating(20)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch := &countingChannel{fakeChannel: fakeChannel{r: rng.New(1)}, stopAt: 4 + len(msg), cancel: cancel}
	res, err := TransmitCtx(runctx.New(ctx, nil), ch, "model", msg, 4)
	if err != context.Canceled {
		t.Fatalf("final-bit cancel: TransmitCtx = (%+v, %v), want context.Canceled", res, err)
	}
}

func TestTransmitCtxMatchesTransmit(t *testing.T) {
	var events int
	rc := runctx.New(context.Background(), func(runctx.Event) { events++ })
	got, err := TransmitCtx(rc, &fakeChannel{r: rng.New(7)}, "model", Alternating(48), 8)
	if err != nil {
		t.Fatal(err)
	}
	want := Transmit(&fakeChannel{r: rng.New(7)}, "model", Alternating(48), 8)
	if got != want {
		t.Errorf("TransmitCtx result differs from Transmit:\n%+v\nvs\n%+v", got, want)
	}
	if events != 8+48 {
		t.Errorf("got %d progress events, want one per calibration+message bit (56)", events)
	}
}
