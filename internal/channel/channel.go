// Package channel provides the covert-channel protocol scaffolding every
// attack in the paper shares: the Init/Encode/Decode step structure
// (Section V), threshold calibration by sending an alternating pattern
// (Section VI-B), nearest-mean bit decoding, and transmission-rate /
// error-rate accounting using the Wagner-Fischer edit distance
// (Section VI).
package channel

import (
	"fmt"
	"strings"

	"repro/internal/rng"
	"repro/internal/stats"
)

// BitChannel is one covert channel: it can transmit a single bit and
// report the simulated cycles the transmission consumed. Implementations
// live in the attack packages.
type BitChannel interface {
	// Name identifies the channel (e.g. "Non-MT Fast Eviction-Based").
	Name() string
	// SendBit runs one full Init/Encode/Decode round for bit m ('0' or
	// '1') and returns the receiver's measurement (cycles or energy).
	SendBit(m byte) float64
	// Cycles returns total simulated cycles consumed so far.
	Cycles() uint64
	// FreqGHz returns the platform clock for rate conversion.
	FreqGHz() float64
}

// Result summarizes one covert transmission, in the units of the paper's
// Tables II-VI.
type Result struct {
	Channel   string
	Model     string
	Sent      string
	Received  string
	Cycles    uint64
	Seconds   float64
	RateKbps  float64
	ErrorRate float64
}

// String renders the result like a table row.
func (r Result) String() string {
	return fmt.Sprintf("%-40s %-14s rate=%9.2f Kbps  err=%6.2f%%",
		r.Channel, r.Model, r.RateKbps, 100*r.ErrorRate)
}

// Transmit calibrates ch on a short alternating preamble, transmits
// message, and returns the measured rates. The calibration samples are
// not charged to the transmission time (the paper reports steady-state
// channel rates, with thresholds established beforehand).
func Transmit(ch BitChannel, modelName, message string, calibBits int) Result {
	th := Calibrate(ch, calibBits)
	startCycles := ch.Cycles()
	var received strings.Builder
	for i := 0; i < len(message); i++ {
		m := ch.SendBit(message[i])
		received.WriteByte(th.Classify(m))
	}
	cycles := ch.Cycles() - startCycles
	seconds := float64(cycles) / (ch.FreqGHz() * 1e9)
	rate := 0.0
	if seconds > 0 {
		rate = float64(len(message)) / seconds / 1e3
	}
	return Result{
		Channel:   ch.Name(),
		Model:     modelName,
		Sent:      message,
		Received:  received.String(),
		Cycles:    cycles,
		Seconds:   seconds,
		RateKbps:  rate,
		ErrorRate: stats.BitErrorRate(message, received.String()),
	}
}

// Calibrate sends an alternating 0/1 preamble through the channel and
// returns the decision threshold (Section VI-B).
func Calibrate(ch BitChannel, bits int) stats.Threshold {
	if bits < 2 {
		bits = 2
	}
	var zeros, ones []float64
	for i := 0; i < bits; i++ {
		if i%2 == 0 {
			zeros = append(zeros, ch.SendBit('0'))
		} else {
			ones = append(ones, ch.SendBit('1'))
		}
	}
	return stats.Calibrate(zeros, ones)
}

// Message patterns of Table II.

// AllZeros returns an n-bit all-0s message.
func AllZeros(n int) string { return strings.Repeat("0", n) }

// AllOnes returns an n-bit all-1s message.
func AllOnes(n int) string { return strings.Repeat("1", n) }

// Alternating returns an n-bit 0101... message, the pattern used for
// threshold calibration and most table rows.
func Alternating(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte('0' + byte(i%2))
	}
	return b.String()
}

// Random returns an n-bit pseudo-random message drawn from r.
func Random(n int, r *rng.RNG) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		if r.Bool(0.5) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}
