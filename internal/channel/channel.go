// Package channel provides the covert-channel protocol scaffolding every
// attack in the paper shares: the Init/Encode/Decode step structure
// (Section V), threshold calibration by sending an alternating pattern
// (Section VI-B), nearest-mean bit decoding, and transmission-rate /
// error-rate accounting using the Wagner-Fischer edit distance
// (Section VI).
package channel

import (
	"fmt"
	"strings"

	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/runctx"
	"repro/internal/stats"
)

// BitChannel is one covert channel: it can transmit a single bit and
// report the simulated cycles the transmission consumed. Implementations
// live in the attack packages.
type BitChannel interface {
	// Name identifies the channel (e.g. "Non-MT Fast Eviction-Based").
	Name() string
	// SendBit runs one full Init/Encode/Decode round for bit m ('0' or
	// '1') and returns the receiver's measurement (cycles or energy).
	SendBit(m byte) float64
	// Cycles returns total simulated cycles consumed so far.
	Cycles() uint64
	// FreqGHz returns the platform clock for rate conversion.
	FreqGHz() float64
}

// Result summarizes one covert transmission, in the units of the paper's
// Tables II-VI.
type Result struct {
	Channel   string
	Model     string
	Sent      string
	Received  string
	Cycles    uint64
	Seconds   float64
	RateKbps  float64
	ErrorRate float64
}

// String renders the result like a table row.
func (r Result) String() string {
	return fmt.Sprintf("%-40s %-14s rate=%9.2f Kbps  err=%6.2f%%",
		r.Channel, r.Model, r.RateKbps, 100*r.ErrorRate)
}

// CtxAware is implemented by channels whose SendBit contains long inner
// loops of its own. TransmitCtx binds the run context before the first
// bit so such a channel can abort between its internal measurements as
// soon as the run is cancelled, instead of finishing the bit first.
// Binding must not perturb an uncancelled transmission: implementations
// may only consult the context's cancellation state, never its
// progress sink or RNG-affecting machinery.
type CtxAware interface {
	BindCtx(runctx.Ctx)
}

// Transmit calibrates ch on a short alternating preamble, transmits
// message, and returns the measured rates. The calibration samples are
// not charged to the transmission time (the paper reports steady-state
// channel rates, with thresholds established beforehand).
func Transmit(ch BitChannel, modelName, message string, calibBits int) Result {
	res, _ := TransmitCtx(runctx.Background(), ch, modelName, message, calibBits)
	return res
}

// TransmitCtx is Transmit with cooperative cancellation, progress, and
// tracing: it checkpoints once per calibration and message bit,
// returning the context's error (and a zero Result) if the run is
// cancelled mid-transmission. When rc carries a trace, the calibration
// preamble and the per-bit transmit loop record as nested spans — at
// stage granularity, not per bit, so tracing costs nothing inside the
// loops. An uncancelled TransmitCtx is byte-identical to Transmit —
// neither checkpoints nor spans touch the channel or its RNG.
func TransmitCtx(rc runctx.Ctx, ch BitChannel, modelName, message string, calibBits int) (Result, error) {
	if ca, ok := ch.(CtxAware); ok {
		ca.BindCtx(rc)
	}
	if calibBits < 2 {
		calibBits = 2
	}
	stage := ch.Name() + " @ " + modelName
	total := calibBits + len(message)
	rc, span := rc.StartSpan("channel.transmit",
		obs.String("channel", ch.Name()),
		obs.String("model", modelName),
		obs.Int("bits", len(message)))
	defer span.End()
	crc, cspan := rc.StartSpan("channel.calibrate", obs.Int("calib_bits", calibBits))
	th, err := calibrate(crc, ch, calibBits, stage, total)
	cspan.End()
	if err != nil {
		return Result{}, err
	}
	rc, bspan := rc.StartSpan("channel.bits")
	startCycles := ch.Cycles()
	var received strings.Builder
	received.Grow(len(message))
	for i := 0; i < len(message); i++ {
		if err := rc.Step(stage, calibBits+i, total); err != nil {
			bspan.End()
			return Result{}, err
		}
		m := ch.SendBit(message[i])
		received.WriteByte(th.Classify(m))
	}
	bspan.End()
	// A CtxAware channel aborts mid-bit with a garbage measurement when
	// cancelled; every loop above re-checks before the next bit, but a
	// cancellation landing inside the final bit has no next checkpoint,
	// so re-check here lest a corrupted Result pass as completed.
	if err := rc.Err(); err != nil {
		return Result{}, err
	}
	cycles := ch.Cycles() - startCycles
	seconds := float64(cycles) / (ch.FreqGHz() * 1e9)
	rate := 0.0
	if seconds > 0 {
		rate = float64(len(message)) / seconds / 1e3
	}
	return Result{
		Channel:   ch.Name(),
		Model:     modelName,
		Sent:      message,
		Received:  received.String(),
		Cycles:    cycles,
		Seconds:   seconds,
		RateKbps:  rate,
		ErrorRate: stats.BitErrorRate(message, received.String()),
	}, nil
}

// Calibrate sends an alternating 0/1 preamble through the channel and
// returns the decision threshold (Section VI-B).
func Calibrate(ch BitChannel, bits int) stats.Threshold {
	if bits < 2 {
		bits = 2
	}
	th, _ := calibrate(runctx.Background(), ch, bits, "calibrate", bits)
	return th
}

// calibrate is Calibrate with a per-preamble-bit checkpoint; done/total
// progress is reported against the caller's transmission-wide total.
func calibrate(rc runctx.Ctx, ch BitChannel, bits int, stage string, total int) (stats.Threshold, error) {
	zeros := make([]float64, 0, (bits+1)/2)
	ones := make([]float64, 0, bits/2)
	for i := 0; i < bits; i++ {
		if err := rc.Step(stage, i, total); err != nil {
			return stats.Threshold{}, err
		}
		if i%2 == 0 {
			zeros = append(zeros, ch.SendBit('0'))
		} else {
			ones = append(ones, ch.SendBit('1'))
		}
	}
	return stats.Calibrate(zeros, ones), nil
}

// Message patterns of Table II.

// AllZeros returns an n-bit all-0s message.
func AllZeros(n int) string { return strings.Repeat("0", n) }

// AllOnes returns an n-bit all-1s message.
func AllOnes(n int) string { return strings.Repeat("1", n) }

// Alternating returns an n-bit 0101... message, the pattern used for
// threshold calibration and most table rows.
func Alternating(n int) string {
	var b strings.Builder
	b.Grow(n)
	for i := 0; i < n; i++ {
		b.WriteByte('0' + byte(i%2))
	}
	return b.String()
}

// Random returns an n-bit pseudo-random message drawn from r.
func Random(n int, r *rng.RNG) string {
	var b strings.Builder
	b.Grow(n)
	for i := 0; i < n; i++ {
		if r.Bool(0.5) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}
