package channel

import (
	"strings"
	"testing"

	"repro/internal/rng"
)

// fakeChannel is a deterministic BitChannel: 0 measures ~10, 1 ~20, with
// a fixed cost per bit.
type fakeChannel struct {
	cycles uint64
	r      *rng.RNG
	flaky  bool
}

func (f *fakeChannel) Name() string     { return "fake" }
func (f *fakeChannel) FreqGHz() float64 { return 1.0 }
func (f *fakeChannel) Cycles() uint64   { return f.cycles }
func (f *fakeChannel) SendBit(m byte) float64 {
	f.cycles += 1000
	base := 10.0
	if m == '1' {
		base = 20
	}
	n := f.r.NormScaled(0, 1)
	if f.flaky {
		n = f.r.NormScaled(0, 8)
	}
	return base + n
}

func TestTransmitCleanChannel(t *testing.T) {
	ch := &fakeChannel{r: rng.New(1)}
	res := Transmit(ch, "model", Alternating(64), 16)
	if res.ErrorRate != 0 {
		t.Errorf("clean channel error %.2f", res.ErrorRate)
	}
	if res.Received != Alternating(64) {
		t.Error("received differs")
	}
	// 64 bits at 1000 cycles/bit on a 1 GHz clock = 1 Mbps = 1000 Kbps.
	if res.RateKbps < 990 || res.RateKbps > 1010 {
		t.Errorf("rate = %.1f Kbps, want ~1000", res.RateKbps)
	}
}

func TestTransmitNoisyChannelHasErrors(t *testing.T) {
	ch := &fakeChannel{r: rng.New(2), flaky: true}
	res := Transmit(ch, "model", Alternating(200), 16)
	if res.ErrorRate == 0 {
		t.Error("flaky channel decoded perfectly; noise not exercised")
	}
	if res.ErrorRate > 0.5 {
		t.Errorf("error rate %.2f worse than random", res.ErrorRate)
	}
}

func TestCalibrationExcludedFromRate(t *testing.T) {
	ch := &fakeChannel{r: rng.New(3)}
	res := Transmit(ch, "model", Alternating(10), 40)
	// Rate must reflect only the 10 message bits, not the 40 calibration
	// bits.
	if res.Cycles != 10*1000 {
		t.Errorf("message cycles = %d, want 10000", res.Cycles)
	}
}

func TestTransmitEmptyMessage(t *testing.T) {
	// An empty message transmits nothing: zero cycles, zero rate, zero
	// errors — and in particular no division by the zero elapsed time.
	ch := &fakeChannel{r: rng.New(1)}
	res := Transmit(ch, "model", "", 16)
	if res.Cycles != 0 || res.Seconds != 0 {
		t.Errorf("empty message consumed %d cycles (%.3fs)", res.Cycles, res.Seconds)
	}
	if res.RateKbps != 0 {
		t.Errorf("empty message rate = %.2f Kbps, want 0", res.RateKbps)
	}
	if res.ErrorRate != 0 || res.Received != "" {
		t.Errorf("empty message decoded to %q with error %.2f", res.Received, res.ErrorRate)
	}
}

func TestTransmitShorterThanPreamble(t *testing.T) {
	// The calibration preamble (40 bits at the public API) is longer
	// than the message; calibration must still converge and the message
	// bits must neither borrow from nor pay for the preamble.
	ch := &fakeChannel{r: rng.New(5)}
	msg := "01101"
	res := Transmit(ch, "model", msg, 40)
	if res.Received != msg {
		t.Errorf("received %q, want %q", res.Received, msg)
	}
	if res.ErrorRate != 0 {
		t.Errorf("error rate %.2f on a clean channel", res.ErrorRate)
	}
	if res.Cycles != uint64(len(msg))*1000 {
		t.Errorf("message charged %d cycles, want %d (preamble excluded)", res.Cycles, len(msg)*1000)
	}
}

func TestTransmitModelNameIsOpaque(t *testing.T) {
	// Transmit does not resolve model names — the string is a label
	// carried verbatim into the result (resolution happens in
	// cmdutil.ResolveModel before a channel is ever built), so a
	// nonexistent name must pass through unchanged rather than panic.
	ch := &fakeChannel{r: rng.New(6)}
	res := Transmit(ch, "No Such Model", Alternating(8), 16)
	if res.Model != "No Such Model" {
		t.Errorf("model label mutated to %q", res.Model)
	}
	if res.Channel != "fake" {
		t.Errorf("channel name %q", res.Channel)
	}
}

func TestMessageBuilders(t *testing.T) {
	if AllZeros(3) != "000" || AllOnes(2) != "11" || Alternating(4) != "0101" {
		t.Error("builders wrong")
	}
	r := Random(1000, rng.New(4))
	ones := strings.Count(r, "1")
	if ones < 400 || ones > 600 {
		t.Errorf("random message bias: %d ones in 1000", ones)
	}
}

func TestResultString(t *testing.T) {
	res := Result{Channel: "c", Model: "m", RateKbps: 12.5, ErrorRate: 0.01}
	s := res.String()
	if !strings.Contains(s, "12.50") || !strings.Contains(s, "1.00%") {
		t.Errorf("render: %s", s)
	}
}
