// Calibration memoization: the per-transmission calibration preamble is
// the most expensive shared prefix in a sweep — every spec runs it before
// its first message bit, and specs sharing a full measurement identity
// run the *same* preamble. This file lets callers run it once, snapshot
// the calibrated channel's entire simulator state, and replay transmits
// from the snapshot byte-for-byte.
package channel

import (
	"strings"

	"repro/internal/obs"
	"repro/internal/runctx"
	"repro/internal/stats"
)

// Cloneable is a BitChannel whose full simulator state can be deep-
// copied. Transmitting on the clone produces exactly the measurement
// sequence the original would have produced from the snapshot point —
// the property the calibration cache's byte-identity rests on. All
// channels in internal/attack and internal/sgx implement it.
type Cloneable interface {
	BitChannel
	// CloneChannel returns an independent deep copy of the channel. The
	// copy shares no mutable state with the original; any bound run
	// context is dropped.
	CloneChannel() BitChannel
}

// Calibration is a memoized calibration preamble: the decision threshold
// it produced plus a snapshot of the channel's post-preamble simulator
// state. One Calibration can back any number of transmissions, each on
// its own clone of the snapshot.
type Calibration struct {
	Threshold stats.Threshold
	modelName string
	calibBits int
	proto     Cloneable
}

// NewCalibrationCtx runs the calibration preamble on a freshly built
// channel and snapshots the result. The channel must not have
// transmitted yet; after the call it is owned by the Calibration and
// must not be used by the caller.
func NewCalibrationCtx(rc runctx.Ctx, ch Cloneable, modelName string, calibBits int) (*Calibration, error) {
	if ca, ok := ch.(CtxAware); ok {
		ca.BindCtx(rc)
	}
	if calibBits < 2 {
		calibBits = 2
	}
	stage := ch.Name() + " @ " + modelName
	crc, cspan := rc.StartSpan("channel.calibrate", obs.Int("calib_bits", calibBits))
	th, err := calibrate(crc, ch, calibBits, stage, calibBits)
	cspan.End()
	if err != nil {
		return nil, err
	}
	proto, ok := ch.CloneChannel().(Cloneable)
	if !ok {
		panic("channel: CloneChannel returned a non-Cloneable channel")
	}
	return &Calibration{Threshold: th, modelName: modelName, calibBits: calibBits, proto: proto}, nil
}

// TransmitCtx transmits message through a fresh clone of the calibrated
// snapshot. The result is byte-identical to an unmemoized TransmitCtx of
// the same message on a fresh channel with the same calibration width.
func (c *Calibration) TransmitCtx(rc runctx.Ctx, message string) (Result, error) {
	return TransmitCalibrated(rc, c.proto.CloneChannel(), c.modelName, message, c.Threshold)
}

// TransmitCalibrated is TransmitCtx with the calibration preamble
// already performed: th is the decision threshold calibration produced,
// and ch must be in the exact state calibration left it in (in practice:
// a clone of a post-calibration snapshot).
func TransmitCalibrated(rc runctx.Ctx, ch BitChannel, modelName, message string, th stats.Threshold) (Result, error) {
	if ca, ok := ch.(CtxAware); ok {
		ca.BindCtx(rc)
	}
	stage := ch.Name() + " @ " + modelName
	rc, span := rc.StartSpan("channel.transmit",
		obs.String("channel", ch.Name()),
		obs.String("model", modelName),
		obs.Int("bits", len(message)))
	defer span.End()
	rc, bspan := rc.StartSpan("channel.bits")
	startCycles := ch.Cycles()
	var received strings.Builder
	received.Grow(len(message))
	for i := 0; i < len(message); i++ {
		if err := rc.Step(stage, i, len(message)); err != nil {
			bspan.End()
			return Result{}, err
		}
		m := ch.SendBit(message[i])
		received.WriteByte(th.Classify(m))
	}
	bspan.End()
	// Same guard as TransmitCtx: a cancellation landing inside the final
	// bit has no next checkpoint, so re-check before trusting the bytes.
	if err := rc.Err(); err != nil {
		return Result{}, err
	}
	cycles := ch.Cycles() - startCycles
	seconds := float64(cycles) / (ch.FreqGHz() * 1e9)
	rate := 0.0
	if seconds > 0 {
		rate = float64(len(message)) / seconds / 1e3
	}
	return Result{
		Channel:   ch.Name(),
		Model:     modelName,
		Sent:      message,
		Received:  received.String(),
		Cycles:    cycles,
		Seconds:   seconds,
		RateKbps:  rate,
		ErrorRate: stats.BitErrorRate(message, received.String()),
	}, nil
}
