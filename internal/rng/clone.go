package rng

// Clone returns an independent generator that continues the identical
// stream from r's current position, leaving r undisturbed. Unlike Fork,
// the two generators then produce the *same* sequence — Clone exists so
// a calibrated simulator snapshot can be replayed byte-for-byte.
func (r *RNG) Clone() *RNG {
	c := *r
	return &c
}
