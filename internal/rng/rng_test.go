package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestForkIndependence(t *testing.T) {
	r := New(7)
	f1 := r.Fork(1)
	f2 := r.Fork(2)
	if f1.Uint64() == f2.Uint64() {
		t.Fatal("forks with different labels produced identical first output")
	}
	// Forking must not disturb the parent stream.
	a := New(7)
	a.Fork(1)
	a.Fork(2)
	b := New(7)
	if a.Uint64() != b.Uint64() {
		t.Fatal("Fork disturbed the parent stream")
	}
}

func TestForkDeterminism(t *testing.T) {
	f1 := New(9).Fork(5)
	f2 := New(9).Fork(5)
	for i := 0; i < 100; i++ {
		if f1.Uint64() != f2.Uint64() {
			t.Fatalf("forked streams diverged at step %d", i)
		}
	}
}

func TestSplitSeed(t *testing.T) {
	if SplitSeed(1, "tableI") != SplitSeed(1, "tableI") {
		t.Fatal("SplitSeed not deterministic")
	}
	labels := []string{"", "a", "b", "ab", "ba", "tableI", "tableII", "figure2"}
	seen := map[uint64]string{}
	for _, seed := range []uint64{0, 1, 42} {
		for _, l := range labels {
			s := SplitSeed(seed, l)
			key := s
			if prev, dup := seen[key]; dup {
				t.Errorf("SplitSeed collision: (%d,%q) and %s both give %d", seed, l, prev, s)
			}
			seen[key] = "(" + l + ")"
		}
	}
	// Streams seeded from split seeds must be independent in practice.
	a := New(SplitSeed(7, "x"))
	b := New(SplitSeed(7, "y"))
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			t.Fatalf("split streams collided at step %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64RangeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(11)
	for n := 1; n < 50; n++ {
		for i := 0; i < 100; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := New(123)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("Norm mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("Norm variance = %v, want ~1", variance)
	}
}

func TestNormScaled(t *testing.T) {
	r := New(5)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.NormScaled(10, 2)
	}
	mean := sum / n
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("NormScaled mean = %v, want ~10", mean)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(77)
	const n = 100000
	count := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			count++
		}
	}
	frac := float64(count) / n
	if math.Abs(frac-0.25) > 0.01 {
		t.Errorf("Bool(0.25) frequency = %v", frac)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(31)
	for n := 0; n < 20; n++ {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make(map[int]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestUniformity(t *testing.T) {
	// Chi-squared-ish sanity check on byte buckets.
	r := New(999)
	var buckets [16]int
	const n = 160000
	for i := 0; i < n; i++ {
		buckets[r.Uint64()&15]++
	}
	want := n / 16
	for i, c := range buckets {
		if math.Abs(float64(c-want)) > float64(want)/10 {
			t.Errorf("bucket %d count %d deviates more than 10%% from %d", i, c, want)
		}
	}
}
