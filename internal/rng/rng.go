// Package rng provides a small, fast, deterministic pseudo-random number
// generator used throughout the simulator.
//
// Every stochastic element of the reproduction (measurement jitter, SMT
// desynchronization, OS noise) draws from an rng.RNG seeded explicitly, so
// every experiment in this repository is reproducible bit-for-bit. The
// generator is SplitMix64, which is tiny, allocation-free, and passes
// BigCrush; statistical perfection is not required here, determinism and
// independence between forked streams are.
package rng

import "math"

// golden is the 64-bit golden-ratio constant used by SplitMix64.
const golden = 0x9E3779B97F4A7C15

// RNG is a deterministic SplitMix64 generator. The zero value is a valid
// generator seeded with 0; use New to seed explicitly.
type RNG struct {
	state uint64

	// spare caches the second output of the Box-Muller transform.
	spare    float64
	hasSpare bool
}

// New returns a generator seeded with seed. Two generators built from the
// same seed produce identical streams.
func New(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Fork derives an independent generator from r using a label, without
// disturbing r's own stream. Forking with distinct labels yields streams
// that are independent for all practical purposes.
func (r *RNG) Fork(label uint64) *RNG {
	// Mix the label through one SplitMix64 round of a copy of the state.
	s := r.state + golden*(label+1)
	return &RNG{state: mix(s)}
}

// SplitSeed derives an independent seed for the named substream of a
// top-level seed. The derivation depends only on (seed, label), never on
// call order, so work distributed across goroutines can seed each unit
// identically to a serial run. Distinct labels yield streams that are
// independent for all practical purposes.
func SplitSeed(seed uint64, label string) uint64 {
	z := seed
	for i := 0; i < len(label); i++ {
		z = mix(z + golden*(uint64(label[i])+1))
	}
	return mix(z + golden)
}

func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += golden
	return mix(r.state)
}

// Float64 returns a uniformly distributed value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniformly distributed value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns a standard normally distributed value (mean 0, stddev 1)
// using the Box-Muller transform.
func (r *RNG) Norm() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * f
	r.hasSpare = true
	return u * f
}

// NormScaled returns a normally distributed value with the given mean and
// standard deviation.
func (r *RNG) NormScaled(mean, sigma float64) float64 {
	return mean + sigma*r.Norm()
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
