package defense

import (
	"testing"

	"repro/internal/attack"
	"repro/internal/cpu"
	"repro/internal/spectre"
)

func TestDisableSMTKillsMTAttacks(t *testing.T) {
	m := DisableSMT(cpu.Gold6226())
	defer func() {
		if recover() == nil {
			t.Fatal("MT attack construction must fail without SMT")
		}
	}()
	attack.NewMT(attack.DefaultMT(m, attack.Eviction))
}

func TestEqualizedPathsKillNonMTChannel(t *testing.T) {
	base := cpu.XeonE2288G() // cleanest machine: strongest channel
	baseErr := NonMTResidualError(base, 100, 1)
	defErr := NonMTResidualError(EqualizePaths(base), 100, 1)
	t.Logf("stealthy eviction error: baseline %.2f, equalized paths %.2f", baseErr, defErr)
	if baseErr > 0.1 {
		t.Fatalf("baseline channel broken (%.2f)", baseErr)
	}
	if defErr < 0.25 {
		t.Errorf("equalized paths left error at %.2f; channel should approach coin-flip", defErr)
	}
}

func TestEqualizedPathsCostPerformance(t *testing.T) {
	// Section XII: removing the timing signatures "would reduce the
	// performance ... benefits". The defended frontend must be slower on
	// DSB/LSD-friendly code.
	cost := PerformanceCost(cpu.Gold6226(), EqualizePaths(cpu.Gold6226()), 1)
	t.Logf("equalized-path slowdown on mix-chain loop: %.2fx", cost)
	if cost < 1.05 {
		t.Errorf("defense cost %.2fx: equalizing paths should not be free", cost)
	}
}

func TestDisableRAPLKillsPowerChannel(t *testing.T) {
	m := cpu.Gold6226()
	defErr := PowerResidualError(DisableRAPL(m), 16, 1)
	t.Logf("power channel error with RAPL disabled: %.2f", defErr)
	if defErr < 0.3 {
		t.Errorf("power channel still decodes (%.2f) without RAPL updates", defErr)
	}
}

func TestBufferedDSBKillsSpectreFrontend(t *testing.T) {
	// Baseline accuracy is high; with buffered speculative fills the
	// frontend channel collapses to guessing (1/32 per chunk).
	base := spectre.NewLab(spectre.DefaultConfig(spectre.Frontend)).Leak([]byte{3, 17, 29, 8})
	if base.Accuracy < 0.75 {
		t.Fatalf("baseline Spectre accuracy %.2f too low to ablate", base.Accuracy)
	}
	acc := SpectreBufferedDSB(1)
	t.Logf("Spectre frontend accuracy: baseline %.2f, buffered-DSB %.2f", base.Accuracy, acc)
	if acc > 0.3 {
		t.Errorf("buffered-DSB defense left accuracy at %.2f", acc)
	}
}

func TestDefendedModelsStillRun(t *testing.T) {
	// Defenses must not break functional execution.
	for _, m := range []cpu.Model{
		DisableSMT(cpu.Gold6226()),
		EqualizePaths(cpu.Gold6226()),
		DisableRAPL(cpu.Gold6226()),
	} {
		if cost := PerformanceCost(cpu.Gold6226(), m, 2); cost <= 0 {
			t.Errorf("%s: defended model did not execute", m.Name)
		}
	}
}
