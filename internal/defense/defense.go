// Package defense implements the countermeasures the paper discusses in
// Section XII as *ablations*: each defense is applied to the simulated
// frontend and the corresponding attack is re-run, demonstrating both
// that the defense closes the channel and what it costs. The paper's
// core observation — that the frontend's timing signatures exist
// *because* the multiple paths exist — shows up directly: the only
// defense that closes the single-threaded channels is equalizing the
// paths, which forfeits the DSB's speedup.
//
// Defenses are registered declaratively: a Defense carries its model
// transform, an applicability predicate over a scenario's facets, and
// the prose an advisory renders. The registry order is canonical —
// DefenseNone first, then the Section XII mitigations in paper order —
// and spec.Enumerate spans the axis in exactly this order.
package defense

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/attack"
	"repro/internal/channel"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/spectre"
)

// Canonical defense names, in registry order.
const (
	// DefenseNone is the undefended baseline every residual is measured
	// against.
	DefenseNone = "none"
	// DefenseNoSMT disables hyper-threading (Section XII: "the SMT can
	// always be disabled for security-critical applications").
	DefenseNoSMT = "nosmt"
	// DefenseEqualizePaths forces every frontend path to the same
	// effective timing and power, forfeiting the DSB/LSD win.
	DefenseEqualizePaths = "eqpaths"
	// DefenseNoRAPL removes unprivileged energy-counter access, Intel's
	// deployed mitigation for the power sink.
	DefenseNoRAPL = "norapl"
	// DefensePartition statically partitions the DSB between the two
	// hardware threads, removing the occupancy transitions the MT
	// eviction channel modulates.
	DefensePartition = "partition"
)

// Scenario is the slice of a channel scenario an applicability
// predicate looks at. It is deliberately not a spec.ChannelSpec — spec
// imports this package — but spec derives one from each spec before
// asking whether a defense applies.
type Scenario struct {
	// MT is true when sender and receiver run on sibling hyper-threads.
	MT bool
	// PowerSink is true when the receiver reads RAPL.
	PowerSink bool
	// ModelHT is true when the *undefended* model has hyper-threading
	// enabled (Table I).
	ModelHT bool
}

// Defense is one registered countermeasure: a pure model transform plus
// the metadata the spec layer and the advisory renderer need. The zero
// value is not a valid Defense; use Lookup or All.
type Defense struct {
	// Name is the canonical lower-case identifier ("nosmt").
	Name string
	// Desc is a one-line description for catalogs and CLI help.
	Desc string
	// Impact is advisory prose: what the defense does to the attack
	// surface, including what it does NOT close.
	Impact string
	// Mitigation is advisory prose: how the defense is deployed.
	Mitigation string
	// Transform returns the defended model; it never mutates its input.
	Transform func(cpu.Model) cpu.Model
	// applies reports why the defense cannot be measured against a
	// scenario (nil when it can). Unexported so every Defense in
	// circulation carries a predicate from the registry.
	applies func(Scenario) error
	// eliminates reports that the defense removes the scenario's
	// substrate outright (nosmt x MT): the channel's residual capacity
	// is exactly zero, as opposed to an inapplicable no-op that leaves
	// it at baseline. nil means never.
	eliminates func(Scenario) bool
}

// Apply returns the defended model. A nil Transform (the zero Defense)
// is the identity, so the zero value degrades safely.
func (d Defense) Apply(m cpu.Model) cpu.Model {
	if d.Transform == nil {
		return m
	}
	return d.Transform(m)
}

// Applies reports whether the defense is measurable against the
// scenario; a non-nil error names the reason. "Not applicable" means
// the combination is not a residual worth a row: the defense either
// removes the scenario's substrate entirely (nosmt × MT — there is no
// sibling thread left to measure) or cannot interact with it at all
// (norapl × timing — a pure no-op).
func (d Defense) Applies(sc Scenario) error {
	if d.applies == nil {
		return nil
	}
	return d.applies(sc)
}

// Eliminates reports that the defense removes the scenario's substrate
// outright, so its residual capacity is exactly zero without a
// measurement. Advisory accounting distinguishes this from a plain
// inapplicable defense, which leaves the scenario at its undefended
// baseline.
func (d Defense) Eliminates(sc Scenario) bool {
	return d.eliminates != nil && d.eliminates(sc)
}

// registry is the canonical defense catalog, in the order Enumerate
// spans the axis: the undefended baseline first, then the Section XII
// mitigations in paper order, partitioning (this reproduction's
// addition) last.
var registry = []Defense{
	{
		Name:       DefenseNone,
		Desc:       "undefended baseline",
		Impact:     "No mitigation applied; every channel in the affected-configurations table is live at the rates shown.",
		Mitigation: "None. This row is the baseline the residual columns are measured against.",
		Transform:  func(m cpu.Model) cpu.Model { return m },
		applies:    func(Scenario) error { return nil },
	},
	{
		Name: DefenseNoSMT,
		Desc: "disable hyper-threading (Section XII)",
		Impact: "Eliminates the cross-thread (MT) channels outright by removing the sibling thread. " +
			"The single-threaded timing and power channels are untouched and remain at full rate.",
		Mitigation: "Disable SMT in firmware, or isolate security-critical workloads on dedicated physical cores.",
		Transform: func(m cpu.Model) cpu.Model {
			m.HyperThreading = false
			m.Threads = m.Cores
			return m
		},
		applies: func(sc Scenario) error {
			if sc.MT {
				return fmt.Errorf("defense: nosmt eliminates the MT channels outright — there is no residual to measure")
			}
			if !sc.ModelHT {
				return fmt.Errorf("defense: hyper-threading is already disabled on this model (Table I)")
			}
			return nil
		},
		eliminates: func(sc Scenario) bool { return sc.MT && sc.ModelHT },
	},
	{
		Name: DefenseEqualizePaths,
		Desc: "equalize frontend path timing and power (Section XII)",
		Impact: "Removes the per-path timing and energy signatures by slowing the DSB and LSD to MITE's pace, " +
			"forfeiting the frontend's performance and power benefits. Channels that leak through execution " +
			"length rather than path choice survive.",
		Mitigation: "No hardware knob exists; modelled here as a microarchitectural ablation. Constant-work coding " +
			"achieves the per-program equivalent.",
		Transform: func(m cpu.Model) cpu.Model {
			fe := m.FE
			// 5-uop mix blocks: MITE needs 2 fetch groups; throttle
			// DSB/LSD delivery to the same 2 cycles per block.
			fe.DeliverWidth = 3
			fe.LSDJumpBubble = 0
			fe.MITERedirectBubble = 0
			fe.SwitchPenalty = 0
			fe.SwitchResidual = 0
			fe.LCPStallIsolated = 0
			fe.LCPStallChained = 0
			fe.DSBCrossPenalty = 0
			m.FE = fe
			// Equal paths also implies equal power draw.
			m.PW.EnergyMITEUOp = m.PW.EnergyDSBUOp
			m.PW.EnergyLSDUOp = m.PW.EnergyDSBUOp
			return m
		},
		applies: func(Scenario) error { return nil },
	},
	{
		Name: DefenseNoRAPL,
		Desc: "remove unprivileged RAPL access (Section XII)",
		Impact: "Starves the power receiver: the energy counter stops updating within any attack window. " +
			"Every timing channel is untouched — this is Intel's deployed mitigation and it closes only the power sink.",
		Mitigation: "Apply the microcode/OS update restricting RAPL to privileged readers (Intel SA-00389 lineage).",
		Transform: func(m cpu.Model) cpu.Model {
			m.PW.RAPLIntervalCycles = 1 << 62
			return m
		},
		applies: func(sc Scenario) error {
			if !sc.PowerSink {
				return fmt.Errorf("defense: norapl is a no-op for timing sinks — nothing to measure")
			}
			return nil
		},
	},
	{
		Name: DefensePartition,
		Desc: "statically partition the DSB between hyper-threads",
		Impact: "Pins the DSB in its partitioned configuration so sibling activity never changes set ownership, " +
			"removing the occupancy transitions the MT eviction channel modulates. Single-threaded channels " +
			"keep their path-timing signal, and each thread permanently runs on half the DSB sets.",
		Mitigation: "No configuration knob exists on current parts; modelled here as the hardware change the paper " +
			"sketches. Disabling SMT is the deployable alternative.",
		Transform: func(m cpu.Model) cpu.Model {
			m.StaticDSBPartition = true
			return m
		},
		applies: func(sc Scenario) error {
			if !sc.ModelHT {
				return fmt.Errorf("defense: the DSB never partitions with hyper-threading disabled (Table I)")
			}
			return nil
		},
	},
}

// All returns the registered defenses in canonical order. The slice is
// fresh per call; the Defense values share the registry's function
// pointers.
func All() []Defense {
	out := make([]Defense, len(registry))
	copy(out, registry)
	return out
}

// Names returns the canonical defense names in registry order.
func Names() []string {
	names := make([]string, len(registry))
	for i, d := range registry {
		names[i] = d.Name
	}
	return names
}

// Lookup resolves a defense by name, case-insensitively.
func Lookup(name string) (Defense, bool) {
	name = strings.ToLower(strings.TrimSpace(name))
	for _, d := range registry {
		if d.Name == name {
			return d, true
		}
	}
	return Defense{}, false
}

// Resolve is Lookup with an error listing the valid names, for flag and
// request parsing.
func Resolve(name string) (Defense, error) {
	if d, ok := Lookup(name); ok {
		return d, nil
	}
	names := Names()
	sort.Strings(names)
	return Defense{}, fmt.Errorf("defense: unknown defense %q (valid: %s)", name, strings.Join(names, ", "))
}

// DisableSMT returns the model with hyper-threading off.
//
// Deprecated: use Lookup(DefenseNoSMT).Apply, or set Defense on a
// ChannelSpec. Kept as a byte-identical shim over the registry entry.
func DisableSMT(m cpu.Model) cpu.Model {
	d, _ := Lookup(DefenseNoSMT)
	return d.Apply(m)
}

// EqualizePaths returns the model with every frontend path forced to
// the same effective timing and power.
//
// Deprecated: use Lookup(DefenseEqualizePaths).Apply, or set Defense on
// a ChannelSpec. Kept as a byte-identical shim over the registry entry.
func EqualizePaths(m cpu.Model) cpu.Model {
	d, _ := Lookup(DefenseEqualizePaths)
	return d.Apply(m)
}

// DisableRAPL returns the model with the RAPL update interval pushed
// beyond any attack window.
//
// Deprecated: use Lookup(DefenseNoRAPL).Apply, or set Defense on a
// ChannelSpec. Kept as a byte-identical shim over the registry entry.
func DisableRAPL(m cpu.Model) cpu.Model {
	d, _ := Lookup(DefenseNoRAPL)
	return d.Apply(m)
}

// Partition returns the model with the DSB statically partitioned
// between the two hardware threads.
func Partition(m cpu.Model) cpu.Model {
	d, _ := Lookup(DefensePartition)
	return d.Apply(m)
}

// ChannelErrorRate transmits an alternating message over ch and returns
// the residual error rate — ~0.5 means the channel is dead.
func ChannelErrorRate(ch channel.BitChannel, bits int) float64 {
	return channel.Transmit(ch, "defense", channel.Alternating(bits), 30).ErrorRate
}

// NonMTResidualError re-runs the stealthy eviction channel — the variant
// whose bits execute the *same instruction count* and differ only in
// which frontend path serves them — against a defended model. (The
// "fast" variants leak through execution length and survive any
// path-timing defense, which is exactly the paper's point that code must
// also be written constant-work; see Section XII.)
func NonMTResidualError(m cpu.Model, bits int, seed uint64) float64 {
	cfg := attack.DefaultNonMT(m, attack.Eviction, true)
	cfg.Seed = seed
	return ChannelErrorRate(attack.NewNonMT(cfg), bits)
}

// PowerResidualError re-runs the power eviction channel against a
// defended model (reduced iterations keep the ablation fast).
func PowerResidualError(m cpu.Model, bits int, seed uint64) float64 {
	cfg := attack.DefaultPower(m, attack.Eviction)
	cfg.Iters = 4000
	cfg.Seed = seed
	return ChannelErrorRate(attack.NewPower(cfg), bits)
}

// SpectreBufferedDSB evaluates the Section XII Spectre defense
// ("buffering cache updates could be applied to the DSB"): the transient
// gadget's decoded window is not installed architecturally, so the
// frontend channel sees nothing. It returns the attack accuracy with the
// defense on.
func SpectreBufferedDSB(seed uint64) float64 {
	cfg := spectre.DefaultConfig(spectre.Frontend)
	cfg.Seed = seed
	lab := spectre.NewLab(cfg)
	lab.BufferTransientFills(true)
	return lab.Leak([]byte{3, 17, 29, 8}).Accuracy
}

// PerformanceCost measures the throughput price of a defended frontend:
// cycles per mix-block pass on the defended model divided by the
// baseline's. EqualizePaths trades exactly the DSB/LSD win away.
func PerformanceCost(base, defended cpu.Model, seed uint64) float64 {
	measure := func(m cpu.Model) float64 {
		core := cpu.NewCore(m, seed)
		// A DSB-friendly straight-line loop: the workload class the fast
		// paths exist to accelerate.
		blocks := []*isa.Block{isa.NopBlockLen(0x0060_0000, 100, 2)}
		isa.ChainLoop(blocks)
		core.Enqueue(0, isa.NewLoopStream(blocks, 50), nil)
		core.RunUntilIdle(10_000_000)
		start := core.Cycle()
		core.Enqueue(0, isa.NewLoopStream(blocks, 500), nil)
		core.RunUntilIdle(50_000_000)
		return float64(core.Cycle() - start)
	}
	return measure(defended) / measure(base)
}
