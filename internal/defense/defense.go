// Package defense implements the countermeasures the paper discusses in
// Section XII as *ablations*: each defense is applied to the simulated
// frontend and the corresponding attack is re-run, demonstrating both
// that the defense closes the channel and what it costs. The paper's
// core observation — that the frontend's timing signatures exist
// *because* the multiple paths exist — shows up directly: the only
// defense that closes the single-threaded channels is equalizing the
// paths, which forfeits the DSB's speedup.
package defense

import (
	"repro/internal/attack"
	"repro/internal/channel"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/spectre"
)

// DisableSMT returns the model with hyper-threading off: the system-level
// defense that eliminates every MT attack ("the SMT can always be
// disabled for security-critical applications", Section XII).
func DisableSMT(m cpu.Model) cpu.Model {
	m.HyperThreading = false
	m.Threads = m.Cores
	return m
}

// EqualizePaths returns the model with every frontend path forced to the
// same effective timing. MITE's fetch/decode latency is physical, so the
// only way to equalize is to slow the DSB and LSD *down* to MITE's pace
// and drop the differential penalties — the Section XII observation that
// removing the timing signatures "would reduce the performance or power
// benefits ... which defeats the purpose of having different paths".
func EqualizePaths(m cpu.Model) cpu.Model {
	fe := m.FE
	// 5-uop mix blocks: MITE needs 2 fetch groups; throttle DSB/LSD
	// delivery to the same 2 cycles per block.
	fe.DeliverWidth = 3
	fe.LSDJumpBubble = 0
	fe.MITERedirectBubble = 0
	fe.SwitchPenalty = 0
	fe.SwitchResidual = 0
	fe.LCPStallIsolated = 0
	fe.LCPStallChained = 0
	fe.DSBCrossPenalty = 0
	m.FE = fe
	// Equal paths also implies equal power draw.
	m.PW.EnergyMITEUOp = m.PW.EnergyDSBUOp
	m.PW.EnergyLSDUOp = m.PW.EnergyDSBUOp
	return m
}

// DisableRAPL returns the model with the RAPL update interval pushed
// beyond any attack window, modelling Intel's mitigation of removing
// unprivileged energy-counter access (Section XII).
func DisableRAPL(m cpu.Model) cpu.Model {
	m.PW.RAPLIntervalCycles = 1 << 62
	return m
}

// ChannelErrorRate transmits an alternating message over ch and returns
// the residual error rate — ~0.5 means the channel is dead.
func ChannelErrorRate(ch channel.BitChannel, bits int) float64 {
	return channel.Transmit(ch, "defense", channel.Alternating(bits), 30).ErrorRate
}

// NonMTResidualError re-runs the stealthy eviction channel — the variant
// whose bits execute the *same instruction count* and differ only in
// which frontend path serves them — against a defended model. (The
// "fast" variants leak through execution length and survive any
// path-timing defense, which is exactly the paper's point that code must
// also be written constant-work; see Section XII.)
func NonMTResidualError(m cpu.Model, bits int, seed uint64) float64 {
	cfg := attack.DefaultNonMT(m, attack.Eviction, true)
	cfg.Seed = seed
	return ChannelErrorRate(attack.NewNonMT(cfg), bits)
}

// PowerResidualError re-runs the power eviction channel against a
// defended model (reduced iterations keep the ablation fast).
func PowerResidualError(m cpu.Model, bits int, seed uint64) float64 {
	cfg := attack.DefaultPower(m, attack.Eviction)
	cfg.Iters = 4000
	cfg.Seed = seed
	return ChannelErrorRate(attack.NewPower(cfg), bits)
}

// SpectreBufferedDSB evaluates the Section XII Spectre defense
// ("buffering cache updates could be applied to the DSB"): the transient
// gadget's decoded window is not installed architecturally, so the
// frontend channel sees nothing. It returns the attack accuracy with the
// defense on.
func SpectreBufferedDSB(seed uint64) float64 {
	cfg := spectre.DefaultConfig(spectre.Frontend)
	cfg.Seed = seed
	lab := spectre.NewLab(cfg)
	lab.BufferTransientFills(true)
	return lab.Leak([]byte{3, 17, 29, 8}).Accuracy
}

// PerformanceCost measures the throughput price of a defended frontend:
// cycles per mix-block pass on the defended model divided by the
// baseline's. EqualizePaths trades exactly the DSB/LSD win away.
func PerformanceCost(base, defended cpu.Model, seed uint64) float64 {
	measure := func(m cpu.Model) float64 {
		core := cpu.NewCore(m, seed)
		// A DSB-friendly straight-line loop: the workload class the fast
		// paths exist to accelerate.
		blocks := []*isa.Block{isa.NopBlockLen(0x0060_0000, 100, 2)}
		isa.ChainLoop(blocks)
		core.Enqueue(0, isa.NewLoopStream(blocks, 50), nil)
		core.RunUntilIdle(10_000_000)
		start := core.Cycle()
		core.Enqueue(0, isa.NewLoopStream(blocks, 500), nil)
		core.RunUntilIdle(50_000_000)
		return float64(core.Cycle() - start)
	}
	return measure(defended) / measure(base)
}
