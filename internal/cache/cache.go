// Package cache implements the set-associative caches the paper's
// machines carry (Table I): a 32 KB, 8-way, 64-byte-line L1 instruction
// cache with 64 sets, and an identically shaped L1 data cache. True LRU
// replacement is modelled because the L1D-LRU covert channel (one of the
// Table VII baselines) communicates through LRU state alone, and because
// the paper's central stealth claim — that frontend attacks cause *no* L1
// misses — is verified against these counters.
package cache

import "fmt"

// Config describes a cache's geometry.
type Config struct {
	Sets     int
	Ways     int
	LineSize int // bytes
}

// L1Config is the L1 configuration shared by every CPU model in Table I:
// 32 KB, 8-way, 64-byte lines, 64 sets.
var L1Config = Config{Sets: 64, Ways: 8, LineSize: 64}

// Size returns the total capacity in bytes.
func (c Config) Size() int { return c.Sets * c.Ways * c.LineSize }

// Stats counts cache events since the last Reset.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Flushes   uint64
}

// Accesses returns the total access count.
func (s Stats) Accesses() uint64 { return s.Hits + s.Misses }

// MissRate returns misses/accesses, or 0 when there were no accesses.
func (s Stats) MissRate() float64 {
	if a := s.Accesses(); a > 0 {
		return float64(s.Misses) / float64(a)
	}
	return 0
}

type line struct {
	tag   uint64
	valid bool
	lru   uint64 // higher = more recently used
}

// Cache is a set-associative cache with true LRU replacement. It tracks
// only tags (no data); the simulator needs residency and recency, not
// contents.
type Cache struct {
	cfg   Config
	lines []line // sets*ways, row-major by set
	tick  uint64
	stats Stats
}

// New builds an empty cache with the given geometry. It panics on
// non-positive dimensions or a non-power-of-two line size or set count.
func New(cfg Config) *Cache {
	if cfg.Sets <= 0 || cfg.Ways <= 0 || cfg.LineSize <= 0 {
		panic("cache: non-positive geometry")
	}
	if cfg.Sets&(cfg.Sets-1) != 0 || cfg.LineSize&(cfg.LineSize-1) != 0 {
		panic(fmt.Sprintf("cache: sets (%d) and line size (%d) must be powers of two", cfg.Sets, cfg.LineSize))
	}
	return &Cache{cfg: cfg, lines: make([]line, cfg.Sets*cfg.Ways)}
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns the event counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the event counters without touching cache contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Set returns the set index for addr.
func (c *Cache) Set(addr uint64) int {
	return int(addr/uint64(c.cfg.LineSize)) & (c.cfg.Sets - 1)
}

// Tag returns the tag for addr.
func (c *Cache) Tag(addr uint64) uint64 {
	return addr / uint64(c.cfg.LineSize) / uint64(c.cfg.Sets)
}

func (c *Cache) set(idx int) []line {
	return c.lines[idx*c.cfg.Ways : (idx+1)*c.cfg.Ways]
}

// Access looks addr up, fills on miss (evicting the LRU way if the set is
// full), updates recency, and reports whether it hit.
func (c *Cache) Access(addr uint64) bool {
	c.tick++
	setIdx, tag := c.Set(addr), c.Tag(addr)
	set := c.set(setIdx)
	victim := -1
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lru = c.tick
			c.stats.Hits++
			return true
		}
		switch {
		case victim >= 0 && !set[victim].valid:
			// Already found a free way; keep the first one.
		case !set[i].valid:
			victim = i
		case victim < 0 || set[i].lru < set[victim].lru:
			victim = i
		}
	}
	c.stats.Misses++
	if set[victim].valid {
		c.stats.Evictions++
	}
	set[victim] = line{tag: tag, valid: true, lru: c.tick}
	return false
}

// Probe reports whether addr is resident without filling or updating
// recency and without counting an access. Attackers use Probe-like timing;
// the simulator's receivers use Access (which models the timed reload).
func (c *Cache) Probe(addr uint64) bool {
	setIdx, tag := c.Set(addr), c.Tag(addr)
	for _, l := range c.set(setIdx) {
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// Touch updates the recency of addr if resident (an LRU-state update with
// no fill), the primitive behind the L1D-LRU covert channel. It reports
// whether the line was resident.
func (c *Cache) Touch(addr uint64) bool {
	c.tick++
	setIdx, tag := c.Set(addr), c.Tag(addr)
	set := c.set(setIdx)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lru = c.tick
			return true
		}
	}
	return false
}

// LRUWay returns the way index that would be evicted next in addr's set,
// or -1 if the set has an invalid (free) way.
func (c *Cache) LRUWay(addr uint64) int {
	set := c.set(c.Set(addr))
	victim := -1
	for i := range set {
		if !set[i].valid {
			return -1
		}
		if victim < 0 || set[i].lru < set[victim].lru {
			victim = i
		}
	}
	return victim
}

// FlushLine invalidates addr's line if resident (clflush).
func (c *Cache) FlushLine(addr uint64) {
	setIdx, tag := c.Set(addr), c.Tag(addr)
	set := c.set(setIdx)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].valid = false
			c.stats.Flushes++
			return
		}
	}
}

// FlushAll invalidates the entire cache.
func (c *Cache) FlushAll() {
	for i := range c.lines {
		if c.lines[i].valid {
			c.lines[i].valid = false
			c.stats.Flushes++
		}
	}
}

// OccupiedWays returns how many valid lines addr's set holds.
func (c *Cache) OccupiedWays(addr uint64) int {
	n := 0
	for _, l := range c.set(c.Set(addr)) {
		if l.valid {
			n++
		}
	}
	return n
}
