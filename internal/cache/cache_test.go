package cache

import (
	"testing"
	"testing/quick"
)

func l1() *Cache { return New(L1Config) }

func TestL1Geometry(t *testing.T) {
	if L1Config.Size() != 32*1024 {
		t.Errorf("L1 size = %d, want 32768 (Table I: 32KB)", L1Config.Size())
	}
}

func TestMissThenHit(t *testing.T) {
	c := l1()
	if c.Access(0x1000) {
		t.Error("first access should miss")
	}
	if !c.Access(0x1000) {
		t.Error("second access should hit")
	}
	if s := c.Stats(); s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestSameLineDifferentOffsetsHit(t *testing.T) {
	c := l1()
	c.Access(0x1000)
	if !c.Access(0x103F) {
		t.Error("access within same 64B line should hit")
	}
}

func TestSetIndexing(t *testing.T) {
	c := l1()
	// Addresses 64*64 = 4096 bytes apart share a set.
	if c.Set(0x0) != c.Set(0x1000) {
		t.Error("addresses 4096 apart should share an L1 set")
	}
	if c.Set(0x0) == c.Set(0x40) {
		t.Error("adjacent lines should differ in set")
	}
}

func TestLRUEviction(t *testing.T) {
	c := l1()
	base := uint64(0x10000)
	stride := uint64(c.cfg.Sets * c.cfg.LineSize)
	// Fill all 8 ways of one set.
	for w := uint64(0); w < 8; w++ {
		c.Access(base + w*stride)
	}
	// Re-touch way 0 so way 1 becomes LRU.
	c.Access(base)
	// Insert a 9th line: way 1 must be evicted, way 0 must survive.
	c.Access(base + 8*stride)
	if !c.Probe(base) {
		t.Error("MRU-refreshed line was evicted")
	}
	if c.Probe(base + 1*stride) {
		t.Error("LRU line survived eviction")
	}
	if s := c.Stats(); s.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", s.Evictions)
	}
}

func TestEightWaysFitWithoutEviction(t *testing.T) {
	// The paper's Figure 3 argument: 8 blocks mapping to one set fit the
	// 8 ways with no eviction.
	c := l1()
	stride := uint64(c.cfg.Sets * c.cfg.LineSize)
	for w := uint64(0); w < 8; w++ {
		c.Access(0x2000 + w*stride)
	}
	for w := uint64(0); w < 8; w++ {
		if !c.Probe(0x2000 + w*stride) {
			t.Fatalf("way %d missing after filling exactly 8 ways", w)
		}
	}
	if c.Stats().Evictions != 0 {
		t.Error("filling 8 ways must not evict")
	}
}

func TestProbeDoesNotFill(t *testing.T) {
	c := l1()
	if c.Probe(0x5000) {
		t.Error("probe of empty cache hit")
	}
	if c.Probe(0x5000) {
		t.Error("probe must not fill")
	}
	if c.Stats().Accesses() != 0 {
		t.Error("probe must not count as access")
	}
}

func TestTouch(t *testing.T) {
	c := l1()
	if c.Touch(0x1000) {
		t.Error("touch of absent line reported resident")
	}
	c.Access(0x1000)
	if !c.Touch(0x1000) {
		t.Error("touch of resident line failed")
	}
	// Touch must refresh LRU: fill set, touch oldest, check survival.
	stride := uint64(c.cfg.Sets * c.cfg.LineSize)
	for w := uint64(1); w < 8; w++ {
		c.Access(0x1000 + w*stride)
	}
	c.Touch(0x1000) // 0x1000 is oldest by fill order; refresh it
	c.Access(0x1000 + 8*stride)
	if !c.Probe(0x1000) {
		t.Error("touched line should have been MRU and survive")
	}
}

func TestFlushLine(t *testing.T) {
	c := l1()
	c.Access(0x3000)
	c.FlushLine(0x3000)
	if c.Probe(0x3000) {
		t.Error("flushed line still resident")
	}
	if c.Stats().Flushes != 1 {
		t.Errorf("flushes = %d, want 1", c.Stats().Flushes)
	}
	// Flushing an absent line is a no-op.
	c.FlushLine(0x9999000)
	if c.Stats().Flushes != 1 {
		t.Error("flush of absent line counted")
	}
}

func TestFlushAll(t *testing.T) {
	c := l1()
	for i := uint64(0); i < 100; i++ {
		c.Access(i * 64)
	}
	c.FlushAll()
	for i := uint64(0); i < 100; i++ {
		if c.Probe(i * 64) {
			t.Fatalf("line %d survived FlushAll", i)
		}
	}
}

func TestMissRate(t *testing.T) {
	c := l1()
	c.Access(0x1000) // miss
	c.Access(0x1000) // hit
	c.Access(0x1000) // hit
	c.Access(0x2000) // miss
	if got := c.Stats().MissRate(); got != 0.5 {
		t.Errorf("miss rate = %v, want 0.5", got)
	}
	var empty Stats
	if empty.MissRate() != 0 {
		t.Error("empty stats miss rate should be 0")
	}
}

func TestResetStats(t *testing.T) {
	c := l1()
	c.Access(0x1000)
	c.ResetStats()
	if c.Stats().Accesses() != 0 {
		t.Error("stats not reset")
	}
	if !c.Probe(0x1000) {
		t.Error("ResetStats must not flush contents")
	}
}

func TestLRUWay(t *testing.T) {
	c := l1()
	if c.LRUWay(0x1000) != -1 {
		t.Error("set with free ways should report -1")
	}
	stride := uint64(c.cfg.Sets * c.cfg.LineSize)
	for w := uint64(0); w < 8; w++ {
		c.Access(0x1000 + w*stride)
	}
	if got := c.LRUWay(0x1000); got != 0 {
		t.Errorf("LRU way = %d, want 0 (filled in order)", got)
	}
}

func TestOccupiedWays(t *testing.T) {
	c := l1()
	stride := uint64(c.cfg.Sets * c.cfg.LineSize)
	for w := uint64(0); w < 5; w++ {
		c.Access(0x1000 + w*stride)
	}
	if got := c.OccupiedWays(0x1000); got != 5 {
		t.Errorf("occupied = %d, want 5", got)
	}
}

func TestNewPanics(t *testing.T) {
	for _, cfg := range []Config{
		{Sets: 0, Ways: 8, LineSize: 64},
		{Sets: 63, Ways: 8, LineSize: 64},
		{Sets: 64, Ways: 8, LineSize: 60},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v) did not panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestAccessIdempotentResidency(t *testing.T) {
	// Property: after Access(a), Probe(a) always holds.
	f := func(addrs []uint64) bool {
		c := l1()
		for _, a := range addrs {
			c.Access(a)
			if !c.Probe(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInvariantOccupancyBounded(t *testing.T) {
	// Property: no set ever exceeds its way count.
	f := func(addrs []uint64) bool {
		c := l1()
		for _, a := range addrs {
			c.Access(a)
			if c.OccupiedWays(a) > c.Config().Ways {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
