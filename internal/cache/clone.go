package cache

// Clone returns a deep copy of the cache: identical contents, recency
// state, and statistics.
func (c *Cache) Clone() *Cache {
	d := *c
	d.lines = append([]line(nil), c.lines...)
	return &d
}
