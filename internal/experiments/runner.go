package experiments

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"repro/internal/rng"
)

// Result records one artifact run: the derived per-artifact seed, the
// structured data, the rendered table text, and the wall-clock cost.
type Result struct {
	Name     string        `json:"name"`
	Ref      string        `json:"ref"`
	Desc     string        `json:"desc"`
	Seed     uint64        `json:"seed"`
	Elapsed  time.Duration `json:"elapsed_ns"`
	Rendered string        `json:"rendered"`
	Data     any           `json:"data,omitempty"`
}

// Runner executes artifacts on a bounded worker pool. Each artifact runs
// with a seed split deterministically from the top-level Opts.Seed by
// artifact name, so results are bit-identical no matter how many workers
// execute them or in which order they are scheduled.
type Runner struct {
	Opts    Opts // base scale; Opts.Seed is the top-level seed
	Workers int  // max artifacts in flight; <= 0 means 1 (serial)
}

// ArtifactOpts returns the per-artifact options the runner would use for
// the named artifact: the base options with the seed split by name.
func (rn Runner) ArtifactOpts(name string) Opts {
	o := rn.Opts.Normalize()
	o.Seed = rng.SplitSeed(o.Seed, name)
	return o
}

// Run executes the artifacts and returns results in input order.
func (rn Runner) Run(arts []Artifact) []Result {
	return rn.RunEmit(arts, nil)
}

// RunEmit executes the artifacts and, when emit is non-nil, calls it
// from the calling goroutine for each result in input order as soon as
// every earlier artifact has also finished. This streams completed work
// to the caller (e.g. the CLI printing tables incrementally) without
// perturbing result order or content.
func (rn Runner) RunEmit(arts []Artifact, emit func(Result)) []Result {
	workers := rn.Workers
	if workers <= 0 {
		workers = 1
	}
	if workers > len(arts) {
		workers = len(arts)
	}
	results := make([]Result, len(arts))
	jobs := make(chan int)
	completions := make(chan int)
	for w := 0; w < workers; w++ {
		go func() {
			for i := range jobs {
				a := arts[i]
				ao := rn.ArtifactOpts(a.Name)
				start := time.Now()
				data, rendered := a.Run(ao)
				results[i] = Result{
					Name: a.Name, Ref: a.Ref, Desc: a.Desc, Seed: ao.Seed,
					Elapsed: time.Since(start), Rendered: rendered, Data: data,
				}
				completions <- i
			}
		}()
	}
	go func() {
		for i := range arts {
			jobs <- i
		}
		close(jobs)
	}()
	done := make([]bool, len(arts))
	next := 0
	for finished := 0; finished < len(arts); finished++ {
		done[<-completions] = true
		for next < len(arts) && done[next] {
			if emit != nil {
				emit(results[next])
			}
			next++
		}
	}
	return results
}

// RenderText concatenates the rendered artifacts in result order,
// separated by blank lines. With timing enabled it appends a per-artifact
// wall-clock table; the artifact text itself is unchanged, so timed and
// untimed runs stay byte-identical over the artifact portion.
func RenderText(results []Result, timing bool) string {
	var b strings.Builder
	for _, r := range results {
		b.WriteString(r.Rendered)
		if !strings.HasSuffix(r.Rendered, "\n") {
			b.WriteByte('\n')
		}
		b.WriteByte('\n')
	}
	if timing {
		b.WriteString(RenderTimings(results))
	}
	return b.String()
}

// RenderTimings renders the per-artifact wall-clock table alone.
func RenderTimings(results []Result) string {
	var b strings.Builder
	var total time.Duration
	fmt.Fprintf(&b, "wall-clock per artifact:\n")
	for _, r := range results {
		total += r.Elapsed
		fmt.Fprintf(&b, "  %-10s %10.3fs\n", r.Name, r.Elapsed.Seconds())
	}
	fmt.Fprintf(&b, "  %-10s %10.3fs (sum of artifact times)\n", "total", total.Seconds())
	return b.String()
}

// RenderJSON marshals the results as an indented JSON array.
func RenderJSON(results []Result) ([]byte, error) {
	return json.MarshalIndent(results, "", "  ")
}
