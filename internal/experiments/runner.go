package experiments

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/rng"
)

// Result records one artifact run: the derived per-artifact seed, the
// structured data, the rendered table text, and the wall-clock cost.
// Err is set (and Data/Rendered empty) when the artifact did not
// complete — cancelled mid-run or skipped because the run's context was
// already cancelled; completed artifacts in the same run are unaffected
// and byte-identical to an uninterrupted run's.
type Result struct {
	Name     string        `json:"name"`
	Ref      string        `json:"ref"`
	Desc     string        `json:"desc"`
	Seed     uint64        `json:"seed"`
	Elapsed  time.Duration `json:"elapsed_ns"`
	Rendered string        `json:"rendered"`
	Data     any           `json:"data,omitempty"`
	Err      string        `json:"err,omitempty"`
}

// Runner executes artifacts on a bounded worker pool. Each artifact runs
// with a seed split deterministically from the top-level Opts.Seed by
// artifact name, so results are bit-identical no matter how many workers
// execute them or in which order they are scheduled.
type Runner struct {
	Opts    Opts // base scale; Opts.Seed is the top-level seed
	Workers int  // max artifacts in flight; <= 0 means 1 (serial)
}

// ArtifactOpts returns the per-artifact options the runner would use for
// the named artifact: the base options with the seed split by name.
func (rn Runner) ArtifactOpts(name string) Opts {
	o := rn.Opts.Normalize()
	o.Seed = rng.SplitSeed(o.Seed, name)
	return o
}

// Run executes the artifacts and returns results in input order.
func (rn Runner) Run(arts []Artifact) []Result {
	return rn.RunEmit(arts, nil)
}

// RunEmit executes the artifacts without cancellation or progress.
func (rn Runner) RunEmit(arts []Artifact, emit func(Result)) []Result {
	return rn.RunEmitCtx(RunCtx{}, arts, emit)
}

// RunEmitCtx executes the artifacts under rc and, when emit is non-nil,
// calls it from the calling goroutine for each result in input order as
// soon as every earlier artifact has also finished. This streams
// completed work to the caller (e.g. the CLI printing tables
// incrementally) without perturbing result order or content.
//
// Cancellation is cooperative and per-artifact: a running artifact
// unwinds at its next checkpoint and an artifact whose turn comes after
// cancellation never starts, in both cases yielding a Result with Err
// set and no data. Artifacts that completed before the cancellation are
// emitted and returned intact — their bytes are identical to an
// uninterrupted run's, because each artifact's seed is split from the
// top-level seed by name, independent of what else ran. Workers drain
// instantly once rc is cancelled, so a caller holding scarce simulation
// slots gets them back within one checkpoint interval.
func (rn Runner) RunEmitCtx(rc RunCtx, arts []Artifact, emit func(Result)) []Result {
	workers := rn.Workers
	if workers <= 0 {
		workers = 1
	}
	if workers > len(arts) {
		workers = len(arts)
	}
	results := make([]Result, len(arts))
	jobs := make(chan int)
	completions := make(chan int)
	for w := 0; w < workers; w++ {
		go func() {
			for i := range jobs {
				a := arts[i]
				ao := rn.ArtifactOpts(a.Name)
				res := Result{Name: a.Name, Ref: a.Ref, Desc: a.Desc, Seed: ao.Seed}
				if err := rc.Err(); err != nil {
					res.Err = err.Error()
				} else {
					// Per-artifact span (no-op when rc is untraced); seed
					// and name tie a profile track to the exact rerunnable
					// artifact invocation.
					arc, span := rc.WithArtifact(a.Name).StartSpan("artifact",
						obs.String("artifact", a.Name),
						obs.String("ref", a.Ref),
						obs.String("seed", fmt.Sprint(ao.Seed)))
					start := time.Now()
					data, rendered, err := a.Run(arc, ao)
					res.Elapsed = time.Since(start)
					if err != nil {
						res.Err = err.Error()
						span.SetAttr("err", res.Err)
					} else {
						res.Rendered, res.Data = rendered, data
					}
					span.End()
				}
				results[i] = res
				completions <- i
			}
		}()
	}
	go func() {
		for i := range arts {
			jobs <- i
		}
		close(jobs)
	}()
	done := make([]bool, len(arts))
	next := 0
	for finished := 0; finished < len(arts); finished++ {
		done[<-completions] = true
		for next < len(arts) && done[next] {
			if emit != nil {
				emit(results[next])
			}
			next++
		}
	}
	return results
}

// RenderText concatenates the rendered artifacts in result order,
// separated by blank lines; artifacts that did not complete (Err set)
// render nothing, so a partially cancelled run's text is exactly the
// completed prefix of an uninterrupted run's per-artifact blocks. With
// timing enabled it appends a per-artifact wall-clock table; the
// artifact text itself is unchanged, so timed and untimed runs stay
// byte-identical over the artifact portion.
func RenderText(results []Result, timing bool) string {
	var b strings.Builder
	for _, r := range results {
		if r.Err != "" {
			continue
		}
		b.WriteString(r.Rendered)
		if !strings.HasSuffix(r.Rendered, "\n") {
			b.WriteByte('\n')
		}
		b.WriteByte('\n')
	}
	if timing {
		b.WriteString(RenderTimings(results))
	}
	return b.String()
}

// RenderTimings renders the per-artifact wall-clock table alone.
func RenderTimings(results []Result) string {
	var b strings.Builder
	var total time.Duration
	fmt.Fprintf(&b, "wall-clock per artifact:\n")
	for _, r := range results {
		total += r.Elapsed
		if r.Err != "" {
			fmt.Fprintf(&b, "  %-10s %10.3fs (did not complete: %s)\n", r.Name, r.Elapsed.Seconds(), r.Err)
			continue
		}
		fmt.Fprintf(&b, "  %-10s %10.3fs\n", r.Name, r.Elapsed.Seconds())
	}
	fmt.Fprintf(&b, "  %-10s %10.3fs (sum of artifact times)\n", "total", total.Seconds())
	return b.String()
}

// RenderJSON marshals the results as an indented JSON array.
func RenderJSON(results []Result) ([]byte, error) {
	return json.MarshalIndent(results, "", "  ")
}
