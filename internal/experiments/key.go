package experiments

import (
	"fmt"
	"strings"
)

// CacheKey returns the canonical cache key for running the named
// artifact with these options. The key is computed over the normalized
// options and the lower-cased artifact name, so every spelling of the
// same run — Opts{} vs DefaultOpts(), "TABLEiii" vs "tableIII" — maps
// to the same entry. Every artifact is a pure function of (name, Opts):
// equal keys imply bit-identical results, which is what lets the serving
// layer cache results forever and collapse duplicate requests.
//
// The encoding is versioned ("v1|..."): bump the prefix whenever the
// meaning of a field changes, so stale entries in any future persistent
// cache can never be mistaken for current ones.
func (o Opts) CacheKey(artifact string) string {
	o = o.Normalize()
	return fmt.Sprintf("v1|%s|bits=%d|seed=%d|samples=%d",
		strings.ToLower(artifact), o.Bits, o.Seed, o.Samples)
}
