package experiments

import (
	"context"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// slowStub returns an artifact that spins on cooperative checkpoints
// forever (or for spins iterations if spins > 0), signalling started on
// its first checkpoint. It is the probe for cancellation latency: the
// only way it ever returns early is the runner's ctx unwinding it.
func slowStub(name string, spins int, started chan<- struct{}) Artifact {
	var once sync.Once
	return Artifact{
		Name: name, Ref: "-", Desc: "slow stub",
		Run: func(rc RunCtx, o Opts) (any, string, error) {
			for i := 0; spins <= 0 || i < spins; i++ {
				if err := rc.Step("spin", i, spins); err != nil {
					return nil, "", err
				}
				once.Do(func() {
					if started != nil {
						close(started)
					}
				})
				time.Sleep(100 * time.Microsecond)
			}
			return nil, name + " done\n", nil
		},
	}
}

// renderStub returns an artifact whose rendering depends only on its
// derived seed, so byte-identity across runs is meaningful.
func renderStub(name string) Artifact {
	return Artifact{
		Name: name, Ref: "-", Desc: "render stub",
		Run: func(rc RunCtx, o Opts) (any, string, error) {
			return nil, name + " seed=" + time.Duration(o.Seed).String() + "\n", nil
		},
	}
}

// TestCancelMidRunReturnsPromptly: cancelling a multi-artifact run
// mid-flight unwinds the in-flight slow artifact at its next checkpoint,
// marks it (and everything not yet started) with Err, and leaves the
// completed artifacts byte-identical to an uncancelled run.
func TestCancelMidRunReturnsPromptly(t *testing.T) {
	arts := []Artifact{renderStub("first"), slowStub("slow", 0, nil), renderStub("last")}
	started := make(chan struct{})
	arts[1] = slowStub("slow", 0, started)

	// Reference: what the completed artifacts render without any
	// cancellation (bounded stub so it terminates).
	ref := Runner{Opts: Opts{Seed: 9}, Workers: 1}.Run(
		[]Artifact{renderStub("first"), renderStub("last")})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rn := Runner{Opts: Opts{Seed: 9}, Workers: 1}
	done := make(chan []Result, 1)
	go func() { done <- rn.RunEmitCtx(NewRunCtx(ctx, nil), arts, nil) }()
	<-started
	cancel()

	var results []Result
	select {
	case results = <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled run did not return within 5s of cancel")
	}
	if results[0].Err != "" || results[0].Rendered != ref[0].Rendered {
		t.Errorf("completed artifact perturbed by cancellation: %+v", results[0])
	}
	if results[1].Err == "" {
		t.Error("in-flight slow artifact not marked cancelled")
	}
	if results[2].Err == "" || results[2].Rendered != "" {
		t.Errorf("not-yet-started artifact should be skipped with Err, got %+v", results[2])
	}
	if results[1].Seed != rn.ArtifactOpts("slow").Seed {
		t.Error("cancelled result lost its derived seed")
	}
	// Rendered text of the partial run is the completed artifacts only.
	text := RenderText(results, false)
	if strings.Contains(text, "slow") || !strings.Contains(text, "first seed=") {
		t.Errorf("partial rendering wrong:\n%s", text)
	}
}

// TestCancelledCompletedBytesIdentical: for every cancellation point,
// artifacts that completed render exactly the bytes of an uninterrupted
// run with the same top-level seed (per-artifact seed splitting makes
// completed work independent of what was cancelled around it).
func TestCancelledCompletedBytesIdentical(t *testing.T) {
	full := Runner{Opts: Opts{Seed: 4}, Workers: 2}.Run(
		[]Artifact{renderStub("a"), renderStub("b"), renderStub("c")})
	byName := map[string]Result{}
	for _, r := range full {
		byName[r.Name] = r
	}

	started := make(chan struct{})
	arts := []Artifact{renderStub("a"), slowStub("slow", 0, started), renderStub("b"), renderStub("c")}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan []Result, 1)
	go func() {
		done <- Runner{Opts: Opts{Seed: 4}, Workers: 2}.RunEmitCtx(NewRunCtx(ctx, nil), arts, nil)
	}()
	<-started
	cancel()
	results := <-done
	for _, r := range results {
		if r.Err != "" {
			continue
		}
		want, ok := byName[r.Name]
		if !ok {
			t.Fatalf("unexpected completed artifact %q", r.Name)
		}
		if r.Rendered != want.Rendered || r.Seed != want.Seed {
			t.Errorf("%s: completed bytes differ from uninterrupted run", r.Name)
		}
	}
}

// TestEmitOrderPreservedUnderCancel: RunEmitCtx still emits every
// result in input order when a run is cancelled partway.
func TestEmitOrderPreservedUnderCancel(t *testing.T) {
	started := make(chan struct{})
	arts := []Artifact{renderStub("a"), slowStub("slow", 0, started), renderStub("b")}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		<-started
		cancel()
	}()
	var emitted []string
	Runner{Opts: Opts{Seed: 2}, Workers: 1}.RunEmitCtx(NewRunCtx(ctx, nil), arts, func(r Result) {
		emitted = append(emitted, r.Name)
	})
	if strings.Join(emitted, ",") != "a,slow,b" {
		t.Errorf("emission order %v", emitted)
	}
}

// TestProgressEventsCarryArtifact: the runner attributes progress ticks
// to the artifact that emitted them, and a completed run reports
// progress from every stage of a sweeping artifact.
func TestProgressEventsCarryArtifact(t *testing.T) {
	var events atomic.Int64
	var wrong atomic.Int64
	sink := func(ev Progress) {
		events.Add(1)
		if ev.Artifact != "spinner" {
			wrong.Add(1)
		}
	}
	arts := []Artifact{slowStub("spinner", 5, nil)}
	res := Runner{Opts: Opts{Seed: 1}}.RunEmitCtx(NewRunCtx(context.Background(), sink), arts, nil)
	if res[0].Err != "" {
		t.Fatalf("bounded stub errored: %s", res[0].Err)
	}
	if events.Load() != 5 {
		t.Errorf("got %d progress events, want 5", events.Load())
	}
	if wrong.Load() != 0 {
		t.Errorf("%d events missed the artifact attribution", wrong.Load())
	}
}
