// Package experiments regenerates every table and figure of the paper's
// evaluation. Each artifact is described by an Artifact entry in the
// Default registry (name, paper reference, run function returning
// structured data plus a formatted table matching the paper's layout),
// and a Runner executes selected artifacts on a bounded worker pool with
// per-artifact seed derivation, so parallel runs are bit-identical to
// serial ones. The typed per-artifact functions (TableI .. Figure12)
// remain the implementations behind the registry. The cmd/leakyfe binary
// and the repository's benchmark suite are thin wrappers around this
// package.
package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/channel"
	"repro/internal/cpu"
	"repro/internal/defense"
	"repro/internal/fingerprint"
	"repro/internal/isa"
	"repro/internal/power"
	"repro/internal/rng"
	"repro/internal/spec"
	"repro/internal/spectre"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/ucode"
	"repro/internal/victim"
)

// Opts sets the experiment scale. Defaults reproduce the paper's shapes
// in seconds; raise Bits for tighter error-rate estimates.
type Opts struct {
	Bits    int    // covert-channel message length
	Seed    uint64 // deterministic seed
	Samples int    // fingerprint trace length (Figures 11/12); 0 means the paper's 100
}

// DefaultOpts returns the standard scale.
func DefaultOpts() Opts { return Opts{Bits: 200, Seed: 1, Samples: 100} }

// Normalize returns the options with every unset (zero or negative)
// field replaced by its default, so that any two Opts values describing
// the same run compare equal: Opts{}.Normalize() == DefaultOpts().
// Every artifact function normalizes its options on entry, and the
// serving layer's cache key is computed over normalized options, which
// is what lets Opts{} and DefaultOpts() share one cache entry.
func (o Opts) Normalize() Opts {
	if o.Bits <= 0 {
		o.Bits = 200
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Samples <= 0 {
		o.Samples = 100
	}
	return o
}

// TableI renders the CPU model catalog (Table I).
func TableI() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table I: Specifications of the tested Intel CPU models\n")
	fmt.Fprintf(&b, "%-14s %-13s %6s %8s %6s %5s %5s %4s\n",
		"Model", "Microarch", "Cores", "Threads", "GHz", "LSD", "SGX", "HT")
	for _, m := range cpu.Models() {
		lsd := "64"
		if !m.LSDEnabled {
			lsd = "off"
		}
		fmt.Fprintf(&b, "%-14s %-13s %6d %8d %6.1f %5s %5v %4v\n",
			m.Name, m.Microarch, m.Cores, m.Threads, m.FreqGHz, lsd, m.SGX, m.HyperThreading)
	}
	return b.String()
}

// Figure2Data holds per-path timing samples for the histogram.
type Figure2Data struct {
	LSD, DSB, MITE []float64
}

// Figure2 reproduces the per-path timing histogram (Figure 2) on the
// Gold 6226: per-pass timings of an 8-block chain streaming from the
// LSD, the same chain with the LSD disabled (DSB), and a 9-block
// same-set chain that thrashes into MITE+DSB.
func Figure2(rc RunCtx, o Opts) (Figure2Data, string, error) {
	o = o.Normalize()
	const passes = 400
	run := func(path string, model cpu.Model, blocks []*isa.Block) ([]float64, error) {
		core := cpu.NewCore(model, o.Seed)
		core.Enqueue(0, isa.NewLoopStream(blocks, 10), nil) // warmup
		core.RunUntilIdle(10_000_000)
		out := make([]float64, passes)
		for i := range out {
			if err := rc.Step("timing "+path, i, passes); err != nil {
				return nil, err
			}
			out[i] = core.RunTimedTight(0, isa.NewLoopStream(blocks, 8))
		}
		return out, nil
	}
	g := cpu.Gold6226()
	var d Figure2Data
	var err error
	if d.LSD, err = run("LSD", g, isa.MixChain(3, 8, true)); err != nil {
		return Figure2Data{}, "", err
	}
	if d.DSB, err = run("DSB", g.WithLSD(false), isa.MixChain(3, 8, true)); err != nil {
		return Figure2Data{}, "", err
	}
	if d.MITE, err = run("MITE+DSB", g, isa.MixChain(3, 9, true)); err != nil {
		return Figure2Data{}, "", err
	}
	lo := stats.Min(d.DSB) - 20
	hi := stats.Max(d.MITE) + 20
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2: frontend path timing histogram (Gold 6226, cycles per 8 chain passes)\n")
	for _, row := range []struct {
		name string
		xs   []float64
	}{{"DSB", d.DSB}, {"LSD", d.LSD}, {"MITE+DSB", d.MITE}} {
		h := stats.NewHistogram(lo, hi, 30)
		for _, x := range row.xs {
			h.Add(x)
		}
		fmt.Fprintf(&b, "\n%s delivery (mean %.0f):\n%s", row.name, stats.Mean(row.xs), h.Render(40))
	}
	return d, b.String(), nil
}

// Figure4Row holds one issue pattern's counters, extrapolated to the
// paper's 800M loop iterations.
type Figure4Row struct {
	Pattern       string
	MITEUOps      float64
	DSBUOps       float64
	LCPStallCyc   float64
	SwitchPenalty float64
	IPC           float64
}

// Figure4 reproduces the mixed- vs ordered-issue LCP experiment
// (Figure 4) by simulating a steady-state window and scaling the
// counters to 800M iterations. Each issue pattern is one indivisible
// simulation window, so the run checkpoints between the two patterns.
func Figure4(rc RunCtx, o Opts) ([2]Figure4Row, string, error) {
	o = o.Normalize()
	const simIters = 3000
	const paperIters = 800e6
	run := func(mixed bool, name string) Figure4Row {
		core := cpu.NewCore(cpu.Gold6226(), o.Seed)
		blocks := []*isa.Block{isa.LCPBlock(0x2000, 16, mixed)}
		isa.ChainLoop(blocks)
		core.Enqueue(0, isa.NewLoopStream(blocks, 200), nil) // warmup
		core.RunUntilIdle(10_000_000)
		c0 := core.Counters(0)
		cyc0 := core.Cycle()
		core.Enqueue(0, isa.NewLoopStream(blocks, simIters), nil)
		core.RunUntilIdle(100_000_000)
		d := core.Counters(0).Sub(c0)
		cycles := float64(core.Cycle() - cyc0)
		scale := paperIters / simIters
		return Figure4Row{
			Pattern:       name,
			MITEUOps:      float64(d.UOpsMITE) * scale,
			DSBUOps:       float64(d.UOpsDSB) * scale,
			LCPStallCyc:   d.LCPStallCycles * scale,
			SwitchPenalty: d.SwitchCycles * scale,
			IPC:           float64(d.UOps()) / cycles,
		}
	}
	var rows [2]Figure4Row
	if err := rc.Step("LCP issue patterns", 0, 2); err != nil {
		return [2]Figure4Row{}, "", err
	}
	rows[0] = run(true, "Mixed Issue")
	if err := rc.Step("LCP issue patterns", 1, 2); err != nil {
		return [2]Figure4Row{}, "", err
	}
	rows[1] = run(false, "Ordered Issue")
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4: LCP issue patterns, counters scaled to 800M iterations (Gold 6226)\n")
	fmt.Fprintf(&b, "%-14s %12s %12s %14s %14s %6s\n", "Pattern", "MITE uops", "DSB uops", "LCP stall cyc", "switch cyc", "IPC")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %12.2e %12.2e %14.2e %14.2e %6.2f\n",
			r.Pattern, r.MITEUOps, r.DSBUOps, r.LCPStallCyc, r.SwitchPenalty, r.IPC)
	}
	return rows, b.String(), nil
}

// TableII reproduces the message-pattern study (Table II): the MT
// eviction channel at d=1 for all-0s, all-1s, alternating, and random
// messages on the three hyper-threaded machines. The channel list is
// the MT eviction slice of the enumerated scenario space, narrowed to
// the d=1 contended-sender protocol the paper uses here.
func TableII(rc RunCtx, o Opts) ([]channel.Result, string, error) {
	o = o.Normalize()
	models := []cpu.Model{cpu.Gold6226(), cpu.XeonE2174G(), cpu.XeonE2286G()}
	specs := spec.Filter(spec.Enumerate(models...), func(s spec.ChannelSpec) bool {
		return s.Threading == spec.ThreadingMT && s.Mechanism == spec.MechanismEviction && !s.SGX &&
			s.Defense == defense.DefenseNone
	})
	patterns := []struct {
		name string
		gen  func(int) string
	}{
		{"All 0s", channel.AllZeros},
		{"All 1s", channel.AllOnes},
		{"Alternating", channel.Alternating},
		{"Random", func(n int) string { return channel.Random(n, rng.New(o.Seed)) }},
	}
	var results []channel.Result
	var b strings.Builder
	fmt.Fprintf(&b, "Table II: MT Eviction-Based channel, d=1, by message pattern\n")
	fmt.Fprintf(&b, "%-12s %-14s %12s %10s\n", "Pattern", "Model", "Rate (Kbps)", "Error")
	done, total := 0, len(patterns)*len(specs)
	// The calibration preamble (30 bits here — wider than any message in
	// the small runs) depends only on the spec, never on the message, so
	// the four patterns share it: calibrate each spec once and transmit
	// every pattern through a clone of the snapshot. Byte-identical to
	// calibrating inline per pattern; the golden holds both paths equal.
	cals := make(map[string]*channel.Calibration, len(specs))
	for _, p := range patterns {
		for _, cs := range specs {
			if err := rc.Step("pattern sweep", done, total); err != nil {
				return nil, "", err
			}
			// A single-way receiver needs the contended-sender protocol:
			// the eviction signal of one way is too small on its own.
			cs.D, cs.Contended = 1, true
			cs.Seed = o.Seed
			cs.CalibBits = 30
			key := cs.CacheKey()
			cal := cals[key]
			if cal == nil {
				var err error
				cal, err = cs.CalibrateCtx(rc)
				if err != nil {
					return nil, "", err
				}
				cals[key] = cal
			}
			res, err := cal.TransmitCtx(rc, p.gen(o.Bits))
			if err != nil {
				return nil, "", err
			}
			res.Channel = p.name
			results = append(results, res)
			done++
			fmt.Fprintf(&b, "%-12s %-14s %12.2f %9.2f%%\n", p.name, res.Model, res.RateKbps, 100*res.ErrorRate)
		}
	}
	return results, b.String(), nil
}

// TableIII reproduces the main covert-channel matrix (Table III): all
// eviction- and misalignment-based channels on all four machines.
func TableIII(rc RunCtx, o Opts) ([]channel.Result, string, error) {
	o = o.Normalize()
	msg := channel.Alternating(o.Bits)
	var results []channel.Result
	var b strings.Builder
	fmt.Fprintf(&b, "Table III: covert-channel transmission and error rates (alternating message)\n")
	fmt.Fprintf(&b, "%-40s %-14s %12s %10s\n", "Channel", "Model", "Rate (Kbps)", "Error")
	// The matrix is exactly the plain timing slice of the enumerated
	// scenario space; the canonical enumeration order is the paper's row
	// order (per mechanism: non-MT stealthy, non-MT fast, then MT).
	specs := spec.Filter(spec.Enumerate(cpu.Models()...), func(s spec.ChannelSpec) bool {
		return s.Sink == spec.SinkTiming && !s.SGX && s.Mechanism != spec.MechanismSlowSwitch &&
			s.Defense == defense.DefenseNone
	})
	for _, cs := range specs {
		if err := rc.Step("channel matrix", len(results), len(specs)); err != nil {
			return nil, "", err
		}
		cs.Seed = o.Seed
		res, err := cs.TransmitCtx(rc, msg)
		if err != nil {
			return nil, "", err
		}
		results = append(results, res)
		fmt.Fprintf(&b, "%-40s %-14s %12.2f %9.2f%%\n", res.Channel, res.Model, res.RateKbps, 100*res.ErrorRate)
	}
	return results, b.String(), nil
}

// TableIV reproduces the slow-switch channel rows (Table IV).
func TableIV(rc RunCtx, o Opts) ([]channel.Result, string, error) {
	o = o.Normalize()
	msg := channel.Alternating(o.Bits)
	var results []channel.Result
	var b strings.Builder
	fmt.Fprintf(&b, "Table IV: Non-MT Slow-Switch-Based channel (alternating message)\n")
	fmt.Fprintf(&b, "%-14s %12s %10s\n", "Model", "Rate (Kbps)", "Error")
	specs := spec.Filter(spec.Enumerate(cpu.Gold6226(), cpu.XeonE2288G()), func(s spec.ChannelSpec) bool {
		return s.Mechanism == spec.MechanismSlowSwitch && s.Defense == defense.DefenseNone
	})
	for _, cs := range specs {
		cs.Seed = o.Seed
		res, err := cs.TransmitCtx(rc, msg)
		if err != nil {
			return nil, "", err
		}
		results = append(results, res)
		fmt.Fprintf(&b, "%-14s %12.2f %9.2f%%\n", res.Model, res.RateKbps, 100*res.ErrorRate)
	}
	return results, b.String(), nil
}

// TableV reproduces the power channels (Table V) on the Gold 6226. Bits
// default lower because each power bit needs >100k iterations.
func TableV(rc RunCtx, o Opts) ([]channel.Result, string, error) {
	o = o.Normalize()
	bits := o.Bits / 12
	if bits < 8 {
		bits = 8
	}
	msg := channel.Alternating(bits)
	var results []channel.Result
	var b strings.Builder
	fmt.Fprintf(&b, "Table V: Non-MT power channels, Gold 6226, d=6 (RAPL receiver)\n")
	fmt.Fprintf(&b, "%-26s %12s %10s\n", "Channel", "Rate (Kbps)", "Error")
	specs := spec.Filter(spec.Enumerate(cpu.Gold6226()), func(s spec.ChannelSpec) bool {
		return s.Sink == spec.SinkPower && s.Defense == defense.DefenseNone
	})
	for _, cs := range specs {
		cs.Seed = o.Seed
		cs.CalibBits = 6
		res, err := cs.TransmitCtx(rc, msg)
		if err != nil {
			return nil, "", err
		}
		results = append(results, res)
		fmt.Fprintf(&b, "%-26s %12.2f %9.2f%%\n", res.Channel, res.RateKbps, 100*res.ErrorRate)
	}
	return results, b.String(), nil
}

// TableVI reproduces the SGX channel matrix (Table VI) on the three
// SGX-capable machines.
func TableVI(rc RunCtx, o Opts) ([]channel.Result, string, error) {
	o = o.Normalize()
	bits := o.Bits / 4
	if bits < 12 {
		bits = 12
	}
	msg := channel.Alternating(bits)
	models := []cpu.Model{cpu.XeonE2174G(), cpu.XeonE2286G(), cpu.XeonE2288G()}
	var results []channel.Result
	var b strings.Builder
	fmt.Fprintf(&b, "Table VI: SGX covert channels (alternating message)\n")
	fmt.Fprintf(&b, "%-40s %-14s %12s %10s\n", "Channel", "Model", "Rate (Kbps)", "Error")
	// The SGX slice of the enumerated scenario space, with the paper's
	// shorter calibration preambles (enclave bits are expensive).
	specs := spec.Filter(spec.Enumerate(models...), func(s spec.ChannelSpec) bool {
		return s.SGX && s.Defense == defense.DefenseNone
	})
	for _, cs := range specs {
		if err := rc.Step("SGX matrix", len(results), len(specs)); err != nil {
			return nil, "", err
		}
		cs.Seed = o.Seed
		cs.CalibBits = 10
		if cs.Threading == spec.ThreadingMT {
			cs.CalibBits = 8
		}
		res, err := cs.TransmitCtx(rc, msg)
		if err != nil {
			return nil, "", err
		}
		results = append(results, res)
		fmt.Fprintf(&b, "%-40s %-14s %12.2f %9.2f%%\n", res.Channel, res.Model, res.RateKbps, 100*res.ErrorRate)
	}
	return results, b.String(), nil
}

// TableVII reproduces the Spectre v1 L1 miss-rate comparison (Table VII).
func TableVII(rc RunCtx, o Opts) ([]spectre.Result, string, error) {
	o = o.Normalize()
	secret := []byte{3, 17, 29, 8, 0, 31, 12, 22}
	channels := []spectre.Channel{
		spectre.MemFlushReload, spectre.L1DFlushReload, spectre.L1DLRU,
		spectre.L1IFlushReload, spectre.L1IPrimeProbe, spectre.Frontend,
	}
	var results []spectre.Result
	var b strings.Builder
	fmt.Fprintf(&b, "Table VII: Spectre v1 covert channels, L1 miss rates (Gold 6226)\n")
	fmt.Fprintf(&b, "%-10s %14s %10s\n", "Channel", "L1 miss rate", "Accuracy")
	for i, ch := range channels {
		if err := rc.Step("spectre channels", i, len(channels)); err != nil {
			return nil, "", err
		}
		cfg := spectre.DefaultConfig(ch)
		cfg.Seed = o.Seed
		res, err := spectre.NewLab(cfg).LeakCtx(rc, secret)
		if err != nil {
			return nil, "", err
		}
		results = append(results, res)
		fmt.Fprintf(&b, "%-10v %13.2f%% %9.0f%%\n", ch, 100*res.L1MissRate, 100*res.Accuracy)
	}
	return results, b.String(), nil
}

// Figure8Point is one d-sweep sample.
type Figure8Point struct {
	Model     string
	D         int
	RateKbps  float64
	ErrorRate float64
	Effective float64 // rate x (1 - error)
}

// Figure8 reproduces the MT eviction d-sweep (Figure 8) on the three
// hyper-threaded machines.
func Figure8(rc RunCtx, o Opts) ([]Figure8Point, string, error) {
	o = o.Normalize()
	bits := o.Bits / 2
	if bits < 40 {
		bits = 40
	}
	msg := channel.Alternating(bits)
	var pts []Figure8Point
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8: MT Eviction-Based channel vs receiver way count d\n")
	fmt.Fprintf(&b, "%-14s %3s %12s %10s %12s\n", "Model", "d", "Rate (Kbps)", "Error", "Effective")
	for _, m := range []cpu.Model{cpu.Gold6226(), cpu.XeonE2174G(), cpu.XeonE2286G()} {
		for d := 1; d <= 8; d++ {
			if err := rc.Step("d sweep", len(pts), 3*8); err != nil {
				return nil, "", err
			}
			cs := spec.ChannelSpec{Model: m.Name, Mechanism: spec.MechanismEviction,
				Threading: spec.ThreadingMT, D: d, CalibBits: 30, Seed: o.Seed}
			res, err := cs.TransmitCtx(rc, msg)
			if err != nil {
				return nil, "", err
			}
			p := Figure8Point{Model: m.Name, D: d, RateKbps: res.RateKbps,
				ErrorRate: res.ErrorRate, Effective: res.RateKbps * (1 - res.ErrorRate)}
			pts = append(pts, p)
			fmt.Fprintf(&b, "%-14s %3d %12.2f %9.2f%% %12.2f\n", p.Model, d, p.RateKbps, 100*p.ErrorRate, p.Effective)
		}
	}
	return pts, b.String(), nil
}

// Figure9Data holds per-path power samples.
type Figure9Data struct {
	LSD, DSB, MITE []float64
}

// Figure9 reproduces the per-path power histogram (Figure 9).
func Figure9(rc RunCtx, o Opts) (Figure9Data, string, error) {
	o = o.Normalize()
	const windows = 300
	run := func(path string, model cpu.Model, blocks []*isa.Block) ([]float64, error) {
		core := cpu.NewCore(model, o.Seed)
		r := rng.New(o.Seed).Fork(11)
		core.Enqueue(0, isa.NewLoopStream(blocks, 20), nil)
		core.RunUntilIdle(10_000_000)
		out := make([]float64, 0, windows)
		for i := 0; i < windows; i++ {
			if err := rc.Step("power "+path, i, windows); err != nil {
				return nil, err
			}
			e0, c0 := core.PM.TrueEnergy(), core.Cycle()
			core.Enqueue(0, isa.NewLoopStream(blocks, 60), nil)
			core.RunUntilIdle(10_000_000)
			w := power.AvgWatts(core.PM.TrueEnergy()-e0, core.Cycle()-c0)
			out = append(out, w+r.NormScaled(0, 0.6))
		}
		return out, nil
	}
	g := cpu.Gold6226()
	var d Figure9Data
	var err error
	if d.LSD, err = run("LSD", g, isa.MixChain(3, 8, true)); err != nil {
		return Figure9Data{}, "", err
	}
	if d.DSB, err = run("DSB", g.WithLSD(false), isa.MixChain(3, 8, true)); err != nil {
		return Figure9Data{}, "", err
	}
	if d.MITE, err = run("MITE+DSB", g, isa.MixChain(3, 9, true)); err != nil {
		return Figure9Data{}, "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9: package power by frontend path (Gold 6226)\n")
	for _, row := range []struct {
		name string
		xs   []float64
	}{{"LSD", d.LSD}, {"DSB", d.DSB}, {"MITE+DSB", d.MITE}} {
		h := stats.NewHistogram(44, 70, 26)
		for _, x := range row.xs {
			h.Add(x)
		}
		fmt.Fprintf(&b, "\n%s delivery (mean %.1f W):\n%s", row.name, stats.Mean(row.xs), h.Render(40))
	}
	return d, b.String(), nil
}

// Figure10 reproduces the microcode patch fingerprinting measurements.
// Each observation is one indivisible simulation, so the run
// checkpoints between patches and before the timing detectors.
func Figure10(rc RunCtx, o Opts) ([2]ucode.Observation, string, error) {
	o = o.Normalize()
	var obs [2]ucode.Observation
	for i, p := range [2]ucode.Patch{ucode.Patch1, ucode.Patch2} {
		if err := rc.Step("observe patches", i, 3); err != nil {
			return [2]ucode.Observation{}, "", err
		}
		obs[i] = ucode.Observe(cpu.Gold6226(), p, o.Seed)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 10: microcode patch fingerprinting (Gold 6226)\n")
	fmt.Fprintf(&b, "%-38s %14s %14s %10s %10s\n", "Patch", "small cyc/blk", "large cyc/blk", "small W", "large W")
	for _, ob := range obs {
		fmt.Fprintf(&b, "%-38s %14.2f %14.2f %10.1f %10.1f\n",
			ob.Patch, ob.SmallLoopCycles, ob.LargeLoopCycles, ob.SmallLoopWatts, ob.LargeLoopWatts)
	}
	if err := rc.Step("observe patches", 2, 3); err != nil {
		return [2]ucode.Observation{}, "", err
	}
	t1 := ucode.DetectByTiming(cpu.Gold6226(), ucode.Patch1, o.Seed)
	t2 := ucode.DetectByTiming(cpu.Gold6226(), ucode.Patch2, o.Seed)
	fmt.Fprintf(&b, "timing detector: patch1 -> %v, patch2 -> %v\n", t1, t2)
	return obs, b.String(), nil
}

// Figure11 reproduces the attacker IPC traces against the four CNN
// victims.
func Figure11(rc RunCtx, o Opts) (map[string][]float64, string, error) {
	o = o.Normalize()
	cfg := fingerprint.DefaultConfig(cpu.Gold6226())
	cfg.Seed = o.Seed
	cfg.Samples = o.Samples
	base := fingerprint.BaselineIPC(cfg)
	traces := map[string][]float64{}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 11: attacker IPC traces per CNN victim (baseline solo IPC %.2f)\n", base)
	for _, w := range victim.CNNs() {
		tr, err := fingerprint.TraceCtx(rc, cfg, w)
		if err != nil {
			return nil, "", err
		}
		traces[w.Name] = tr
		fmt.Fprintf(&b, "%-12s mean=%.2f min=%.2f max=%.2f stddev=%.3f\n",
			w.Name, stats.Mean(tr), stats.Min(tr), stats.Max(tr), stats.StdDev(tr))
	}
	return traces, b.String(), nil
}

// TableXII reproduces the Section XII defense ablation as an attack x
// defense residual matrix on the Gold 6226: the model's whole scenario
// space — every mechanism, threading, sink, and registered defense —
// swept at a reduced scale (short calibration, the power p clamped) and
// aggregated per (mechanism x defense) cell. Each cell's key is a
// filter query pasteable into leakysweep or POST /v1/sweeps.
func TableXII(rc RunCtx, o Opts) (sweep.Report, string, error) {
	o = o.Normalize()
	bits := o.Bits / 2
	if bits < 12 {
		bits = 12
	}
	f := sweep.AdvisoryFilter(cpu.Gold6226().Name)
	so := sweep.Options{Bits: bits, Seed: o.Seed, CalibBits: 6, MaxP: 2000}
	specs, err := sweep.Expand(f, so)
	if err != nil {
		return sweep.Report{}, "", err
	}
	done := 0
	run := func(_ context.Context, cs spec.ChannelSpec, b int) (channel.Result, error) {
		// Serial sweep (Workers unset): done counts monotonically, and rc
		// threads both the coarse per-spec checkpoint and the channel's
		// own per-bit progress/cancellation.
		if err := rc.Step("defense ablation", done, len(specs)); err != nil {
			return channel.Result{}, err
		}
		done++
		return cs.TransmitCtx(rc, channel.Alternating(b))
	}
	rep := sweep.RunSpecs(rc.Context(), f, so, specs, run, nil)
	if rep.Completed != rep.Specs {
		if err := rc.Err(); err != nil {
			return sweep.Report{}, "", err
		}
		for _, row := range rep.Rows {
			if row.Err != "" {
				return sweep.Report{}, "", fmt.Errorf("defense ablation: %s: %s", row.Canonical, row.Err)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Section XII: defense ablation, attack x defense residual matrix (Gold 6226)\n")
	fmt.Fprintf(&b, "%-40s %3s %12s %10s %15s\n", "Cell", "n", "Rate (Kbps)", "Error", "Residual (Kbps)")
	for _, c := range rep.Matrix {
		fmt.Fprintf(&b, "%-40s %3d %12.2f %9.2f%% %15.2f\n",
			c.Key, c.N, c.MeanRate, 100*c.MeanErr, c.ResidualKbps)
	}
	return rep, b.String(), nil
}

// AdvisoryXII renders the Gold 6226 security advisory (Section XII):
// the TableXII defense-ablation sweep reduced to affected
// configurations, per-mitigation residual capacity and performance
// cost, and a recommended fix. The serving daemon exposes the same
// rendering for every model at GET /v1/advisories/{model}.
func AdvisoryXII(rc RunCtx, o Opts) (sweep.Advisory, string, error) {
	rep, _, err := TableXII(rc, o)
	if err != nil {
		return sweep.Advisory{}, "", err
	}
	adv, err := sweep.NewAdvisory(rep, cpu.Gold6226())
	if err != nil {
		return sweep.Advisory{}, "", err
	}
	return adv, adv.Render(), nil
}

// Figure12Data pairs the two distance studies for structured output.
type Figure12Data struct {
	CNN       fingerprint.Distances
	Geekbench fingerprint.Distances
}

// Figure12 reproduces the inter/intra distance study for the CNNs plus
// the Geekbench suite statistic of Section XI-B.
func Figure12(rc RunCtx, o Opts) (cnn, gb fingerprint.Distances, rendered string, err error) {
	o = o.Normalize()
	cfg := fingerprint.DefaultConfig(cpu.Gold6226())
	cfg.Seed = o.Seed
	cfg.Samples = o.Samples
	if cnn, err = fingerprint.StudyCtx(rc, cfg, victim.CNNs()); err != nil {
		return fingerprint.Distances{}, fingerprint.Distances{}, "", err
	}
	if gb, err = fingerprint.StudyCtx(rc, cfg, victim.Geekbench()); err != nil {
		return fingerprint.Distances{}, fingerprint.Distances{}, "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 12 / Section XI-B: fingerprinting distances\n\n")
	fmt.Fprintf(&b, "CNN distance matrix:\n%s\n", cnn.Matrix)
	fmt.Fprintf(&b, "CNN:       intra=%.3f  inter=%.3f\n", cnn.Intra, cnn.Inter)
	fmt.Fprintf(&b, "Geekbench: intra=%.3f  inter=%.3f\n", gb.Intra, gb.Inter)
	return cnn, gb, b.String(), nil
}
