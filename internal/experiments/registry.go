package experiments

import (
	"fmt"
	"path"
	"strings"
	"sync"

	"repro/internal/cpu"
	"repro/internal/runctx"
)

// RunCtx threads cancellation and progress reporting through an
// artifact run; see internal/runctx. The zero value is a valid
// never-cancelled context, so callers without cancellation needs pass
// RunCtx{}.
type RunCtx = runctx.Ctx

// Progress is one progress tick emitted from inside a running artifact.
type Progress = runctx.Event

// ProgressSink receives progress ticks; it may be called concurrently
// from every artifact goroutine of a run.
type ProgressSink = runctx.Sink

// NewRunCtx builds a RunCtx from a cancellation context and a progress
// sink; either may be nil.
var NewRunCtx = runctx.New

// Artifact describes one reproducible unit of the paper's evaluation: a
// table or figure with a stable selector name, the paper reference it
// regenerates, and a run function returning both structured data and the
// rendered table text. Run functions checkpoint cooperatively on the
// RunCtx inside their expensive loops: a cancelled run returns the
// context's error promptly (discarding partial work), and an
// uncancelled run is byte-identical whatever context it is given.
type Artifact struct {
	Name string // canonical selector, e.g. "tableIII"
	Ref  string // paper reference, e.g. "Table III"
	Desc string // one-line description
	Run  func(RunCtx, Opts) (any, string, error)
}

// Registry is an ordered, name-indexed catalog of artifacts. Lookups are
// case-insensitive; iteration order is registration order.
type Registry struct {
	arts   []Artifact
	byName map[string]int
}

// NewRegistry builds a registry from the given artifacts. It panics on a
// duplicate or empty name: the catalog is program text, so a collision is
// a programming error.
func NewRegistry(arts ...Artifact) *Registry {
	r := &Registry{byName: make(map[string]int, len(arts))}
	for _, a := range arts {
		key := strings.ToLower(a.Name)
		if key == "" {
			panic("experiments: artifact with empty name")
		}
		if _, dup := r.byName[key]; dup {
			panic("experiments: duplicate artifact " + a.Name)
		}
		r.byName[key] = len(r.arts)
		r.arts = append(r.arts, a)
	}
	return r
}

// Artifacts returns the catalog in registration order.
func (r *Registry) Artifacts() []Artifact {
	out := make([]Artifact, len(r.arts))
	copy(out, r.arts)
	return out
}

// Len returns the number of registered artifacts.
func (r *Registry) Len() int { return len(r.arts) }

// Get looks an artifact up by name, case-insensitively.
func (r *Registry) Get(name string) (Artifact, bool) {
	i, ok := r.byName[strings.ToLower(name)]
	if !ok {
		return Artifact{}, false
	}
	return r.arts[i], true
}

// Select resolves name patterns to artifacts before anything runs. Each
// pattern is "all", an artifact name, or a shell-style glob ("table*"),
// all matched case-insensitively. Empty patterns (e.g. from a trailing
// comma in a CLI list) are ignored. The result is deduplicated and in
// catalog order. A pattern that matches nothing is an error, so a typo
// is reported up front instead of after a partial run.
func (r *Registry) Select(patterns ...string) ([]Artifact, error) {
	picked := make([]bool, len(r.arts))
	selected := false
	for _, p := range patterns {
		lp := strings.ToLower(strings.TrimSpace(p))
		if lp == "" {
			continue
		}
		selected = true
		if lp == "all" {
			for i := range picked {
				picked[i] = true
			}
			continue
		}
		matched := false
		for i, a := range r.arts {
			ok, err := path.Match(lp, strings.ToLower(a.Name))
			if err != nil {
				return nil, fmt.Errorf("experiments: bad pattern %q: %v", p, err)
			}
			if ok {
				picked[i] = true
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("experiments: unknown experiment %q (use -list)", p)
		}
	}
	if !selected {
		return nil, fmt.Errorf("experiments: no artifact selected")
	}
	var out []Artifact
	for i, ok := range picked {
		if ok {
			out = append(out, r.arts[i])
		}
	}
	return out, nil
}

// wrap adapts a typed experiment function to the registry's uniform run
// signature, keeping each catalog entry a one-liner where a name/function
// mismatch is visually obvious.
func wrap[T any](f func(RunCtx, Opts) (T, string, error)) func(RunCtx, Opts) (any, string, error) {
	return func(rc RunCtx, o Opts) (any, string, error) { d, s, err := f(rc, o); return d, s, err }
}

// Default returns the paper's artifact catalog: every table and figure
// of the evaluation section, in paper order.
var Default = sync.OnceValue(func() *Registry {
	return NewRegistry(
		Artifact{Name: "tableI", Ref: "Table I", Desc: "tested CPU models",
			Run: func(rc RunCtx, _ Opts) (any, string, error) {
				// No inner loop to checkpoint, but one tick keeps the
				// invariant that every artifact reports attributable
				// progress on a live stream.
				rc.Tick("render models", 0, 1)
				return cpu.Models(), TableI(), nil
			}},
		Artifact{Name: "figure2", Ref: "Figure 2", Desc: "frontend path timing histogram", Run: wrap(Figure2)},
		Artifact{Name: "figure4", Ref: "Figure 4", Desc: "LCP mixed vs ordered issue", Run: wrap(Figure4)},
		Artifact{Name: "tableII", Ref: "Table II", Desc: "MT eviction channel by message pattern", Run: wrap(TableII)},
		Artifact{Name: "tableIII", Ref: "Table III", Desc: "covert-channel matrix", Run: wrap(TableIII)},
		Artifact{Name: "tableIV", Ref: "Table IV", Desc: "slow-switch channel", Run: wrap(TableIV)},
		Artifact{Name: "tableV", Ref: "Table V", Desc: "power channels", Run: wrap(TableV)},
		Artifact{Name: "tableVI", Ref: "Table VI", Desc: "SGX channels", Run: wrap(TableVI)},
		Artifact{Name: "tableVII", Ref: "Table VII", Desc: "Spectre v1 L1 miss rates", Run: wrap(TableVII)},
		Artifact{Name: "figure8", Ref: "Figure 8", Desc: "MT eviction d sweep", Run: wrap(Figure8)},
		Artifact{Name: "figure9", Ref: "Figure 9", Desc: "per-path power histogram", Run: wrap(Figure9)},
		Artifact{Name: "figure10", Ref: "Figure 10", Desc: "microcode patch fingerprinting", Run: wrap(Figure10)},
		Artifact{Name: "figure11", Ref: "Figure 11", Desc: "CNN fingerprinting IPC traces", Run: wrap(Figure11)},
		Artifact{Name: "figure12", Ref: "Figure 12", Desc: "fingerprinting distances",
			Run: func(rc RunCtx, o Opts) (any, string, error) {
				cnn, gb, s, err := Figure12(rc, o)
				if err != nil {
					return nil, "", err
				}
				return Figure12Data{CNN: cnn, Geekbench: gb}, s, nil
			}},
		Artifact{Name: "tableXII", Ref: "Section XII", Desc: "defense ablation matrix", Run: wrap(TableXII)},
		Artifact{Name: "advisoryXII", Ref: "Section XII", Desc: "Gold 6226 security advisory", Run: wrap(AdvisoryXII)},
	)
})
