package experiments

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

// goldenOpts is the committed golden scale: small enough that the
// whole matrix regenerates in about a minute, fixed forever so the
// files never legitimately change. (The power and SGX tables dominate
// the cost through their per-bit iteration floors, not Bits.)
var goldenOpts = Opts{Bits: 24, Samples: 25}

// goldenSeeds are the two committed seeds; asserting both catches a
// refactor that freezes or ignores seed plumbing, which a single seed
// would miss.
var goldenSeeds = []uint64{1, 2}

// goldenArtifacts are the channel tables and the d-sweep — the paper
// numbers a sweep-engine refactor is most likely to perturb. The cheap
// set runs under -short too; the expensive set (multi-second power,
// SGX, and MT renders) only in full mode, which is the repository's
// tier-1 gate.
var goldenArtifacts = []struct {
	name      string
	expensive bool
}{
	{"tableII", true},
	{"tableIII", false},
	{"tableIV", false},
	{"tableV", true},
	{"tableVI", true},
	{"figure8", true},
	{"tableXII", true},
	{"advisoryXII", true},
}

// TestGoldenRenderings pins the rendered bytes of Tables II-VI and
// Figure 8 at two fixed seeds against committed files: a refactor of
// the channel stack (spec, sweep, attack layers) that drifts any
// paper number by even one formatting unit fails here instead of
// landing silently. Regenerate intentionally with
//
//	go test ./internal/experiments -run TestGoldenRenderings -update
//
// and review the diff like any other code change. The files are
// generated on amd64; Go's floating point is deterministic per
// platform, so cross-architecture drift would show up as a wholesale
// mismatch, not corruption.
func TestGoldenRenderings(t *testing.T) {
	for _, ga := range goldenArtifacts {
		a, ok := Default().Get(ga.name)
		if !ok {
			t.Fatalf("artifact %q not registered", ga.name)
		}
		for _, seed := range goldenSeeds {
			t.Run(fmt.Sprintf("%s_seed%d", ga.name, seed), func(t *testing.T) {
				if ga.expensive && testing.Short() {
					t.Skip("expensive golden render; run without -short")
				}
				t.Parallel()
				o := goldenOpts
				o.Seed = seed
				_, rendered, err := a.Run(RunCtx{}, o)
				if err != nil {
					t.Fatal(err)
				}
				path := filepath.Join("testdata", fmt.Sprintf("%s_seed%d.golden", ga.name, seed))
				if *update {
					if err := os.WriteFile(path, []byte(rendered), 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("%v (regenerate with -update)", err)
				}
				if rendered != string(want) {
					t.Errorf("%s at seed %d drifted from its golden rendering (regenerate with -update if intentional):\ngot:\n%s\nwant:\n%s",
						ga.name, seed, rendered, want)
				}
			})
		}
	}
}
