package experiments

import (
	"strings"
	"testing"

	"repro/internal/stats"
)

// small returns the test scale: reduced-but-representative by default,
// further trimmed under -short so the tier-1 loop stays fast.
func small() Opts {
	if testing.Short() {
		return Opts{Bits: 30, Seed: 1}
	}
	return Opts{Bits: 60, Seed: 1}
}

func TestTableI(t *testing.T) {
	s := TableI()
	for _, want := range []string{"Gold 6226", "Xeon E-2174G", "Xeon E-2286G", "Xeon E-2288G", "Cascade Lake"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table I missing %q", want)
		}
	}
}

func TestFigure2Ordering(t *testing.T) {
	d, s, err := Figure2(RunCtx{}, small())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "MITE+DSB") {
		t.Error("rendering incomplete")
	}
	if !(stats.Mean(d.DSB) < stats.Mean(d.LSD) && stats.Mean(d.LSD) < stats.Mean(d.MITE)) {
		t.Errorf("path ordering violated: DSB=%.0f LSD=%.0f MITE=%.0f",
			stats.Mean(d.DSB), stats.Mean(d.LSD), stats.Mean(d.MITE))
	}
}

func TestFigure4Shape(t *testing.T) {
	rows, _, _ := Figure4(RunCtx{}, small())
	mixed, ordered := rows[0], rows[1]
	if mixed.IPC <= ordered.IPC {
		t.Errorf("mixed IPC %.2f should exceed ordered %.2f", mixed.IPC, ordered.IPC)
	}
	if ordered.LCPStallCyc <= mixed.LCPStallCyc {
		t.Error("ordered issue should accumulate more LCP stall cycles")
	}
	if mixed.SwitchPenalty <= ordered.SwitchPenalty*10 {
		t.Errorf("mixed switch penalty (%.2e) should dwarf ordered (%.2e)",
			mixed.SwitchPenalty, ordered.SwitchPenalty)
	}
}

func TestTableIIShape(t *testing.T) {
	res, _, _ := TableII(RunCtx{}, small())
	if len(res) != 12 {
		t.Fatalf("got %d rows, want 12", len(res))
	}
	// Constant patterns decode better than random.
	var constErr, randErr float64
	for _, r := range res {
		switch r.Channel {
		case "All 0s", "All 1s":
			constErr += r.ErrorRate
		case "Random":
			randErr += r.ErrorRate
		}
	}
	if constErr/6 >= randErr/3+0.01 {
		t.Errorf("constant-pattern error (%.3f) should be below random (%.3f)", constErr/6, randErr/3)
	}
}

func TestTableIIIShape(t *testing.T) {
	res, _, _ := TableIII(RunCtx{}, small())
	// 4 models x 2 kinds x 2 variants non-MT + 3 models x 2 kinds MT.
	if len(res) != 22 {
		t.Fatalf("got %d rows, want 22", len(res))
	}
	var nonMTMin, mtMax float64 = 1e18, 0
	for _, r := range res {
		if strings.HasPrefix(r.Channel, "Non-MT") {
			if r.RateKbps < nonMTMin {
				nonMTMin = r.RateKbps
			}
		} else if r.RateKbps > mtMax {
			mtMax = r.RateKbps
		}
	}
	if nonMTMin <= mtMax {
		t.Errorf("every non-MT rate (min %.0f) should beat every MT rate (max %.0f)", nonMTMin, mtMax)
	}
}

func TestTableIVShape(t *testing.T) {
	res, _, _ := TableIV(RunCtx{}, small())
	if len(res) != 2 {
		t.Fatalf("rows = %d", len(res))
	}
	if res[1].RateKbps <= res[0].RateKbps {
		t.Error("E-2288G slow-switch should beat Gold 6226 (Table IV)")
	}
}

func TestTableVIIShape(t *testing.T) {
	res, _, _ := TableVII(RunCtx{}, small())
	rates := map[string]float64{}
	for _, r := range res {
		rates[r.Channel.String()] = r.L1MissRate
	}
	if !(rates["Frontend"] < rates["L1I F+R"] && rates["L1I F+R"] < rates["MEM F+R"] &&
		rates["MEM F+R"] < rates["L1D F+R"]) {
		t.Errorf("Table VII ordering violated: %v", rates)
	}
}

func TestFigure8RateRisesWithD(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	pts, _, _ := Figure8(RunCtx{}, Opts{Bits: 60, Seed: 1})
	// For each model, rate at d=8 should exceed rate at d=1.
	byModel := map[string]map[int]Figure8Point{}
	for _, p := range pts {
		if byModel[p.Model] == nil {
			byModel[p.Model] = map[int]Figure8Point{}
		}
		byModel[p.Model][p.D] = p
	}
	for m, mp := range byModel {
		if mp[8].RateKbps <= mp[1].RateKbps {
			t.Errorf("%s: rate(d=8)=%.0f should exceed rate(d=1)=%.0f", m, mp[8].RateKbps, mp[1].RateKbps)
		}
	}
}

func TestFigure9Ordering(t *testing.T) {
	d, _, _ := Figure9(RunCtx{}, small())
	if !(stats.Mean(d.LSD) < stats.Mean(d.DSB) && stats.Mean(d.DSB) < stats.Mean(d.MITE)) {
		t.Errorf("power ordering violated: LSD=%.1f DSB=%.1f MITE=%.1f",
			stats.Mean(d.LSD), stats.Mean(d.DSB), stats.Mean(d.MITE))
	}
}

func TestFigure10Detects(t *testing.T) {
	obs, s, _ := Figure10(RunCtx{}, small())
	if obs[0].Ratio() <= obs[1].Ratio() {
		t.Error("patch1 timing ratio should exceed patch2's")
	}
	if !strings.Contains(s, "patch1 -> patch1") || !strings.Contains(s, "patch2 -> patch2") {
		t.Errorf("detector output wrong:\n%s", s)
	}
}

func TestFigure11Traces(t *testing.T) {
	o := small()
	want := 100
	if testing.Short() {
		o.Samples, want = 40, 40
	}
	traces, _, _ := Figure11(RunCtx{}, o)
	if len(traces) != 4 {
		t.Fatalf("want 4 CNN traces")
	}
	for name, tr := range traces {
		if len(tr) != want {
			t.Errorf("%s trace length %d, want %d", name, len(tr), want)
		}
	}
}
