package experiments

import (
	"strings"
	"testing"
)

func TestNormalizeEquivalence(t *testing.T) {
	if got := (Opts{}).Normalize(); got != DefaultOpts() {
		t.Errorf("Opts{}.Normalize() = %+v, want DefaultOpts() %+v", got, DefaultOpts())
	}
	// Negative values are "unset" too, not a distinct scale.
	if got := (Opts{Bits: -1, Samples: -5}).Normalize(); got != DefaultOpts() {
		t.Errorf("negative fields normalized to %+v, want %+v", got, DefaultOpts())
	}
	// Already-normalized options are a fixed point.
	o := Opts{Bits: 48, Seed: 9, Samples: 20}
	if o.Normalize() != o {
		t.Errorf("Normalize not idempotent on %+v", o)
	}
}

func TestNormalizeMatchesRunner(t *testing.T) {
	// The runner derives per-artifact seeds from the normalized top-level
	// seed, so a zero-valued Opts and DefaultOpts() must describe the
	// identical run.
	zero := Runner{Opts: Opts{}}.ArtifactOpts("tableIV")
	def := Runner{Opts: DefaultOpts()}.ArtifactOpts("tableIV")
	if zero != def {
		t.Errorf("ArtifactOpts differ for equivalent options: %+v vs %+v", zero, def)
	}
}

func TestCacheKey(t *testing.T) {
	// Equivalent options and name spellings share one key.
	if (Opts{}).CacheKey("tableIII") != DefaultOpts().CacheKey("TABLEiii") {
		t.Error("equivalent runs produced different cache keys")
	}
	// Any distinguishing field produces a distinct key.
	base := Opts{Bits: 100, Seed: 1, Samples: 50}
	keys := map[string]string{
		"name":    base.CacheKey("figure8"),
		"bits":    Opts{Bits: 101, Seed: 1, Samples: 50}.CacheKey("tableII"),
		"seed":    Opts{Bits: 100, Seed: 2, Samples: 50}.CacheKey("tableII"),
		"samples": Opts{Bits: 100, Seed: 1, Samples: 51}.CacheKey("tableII"),
		"base":    base.CacheKey("tableII"),
	}
	seen := map[string]string{}
	for field, k := range keys {
		if prev, dup := seen[k]; dup {
			t.Errorf("distinct runs %s and %s collided on key %q", prev, field, k)
		}
		seen[k] = field
	}
	// The encoding is stable program text: a silent change would
	// invalidate every entry of a future persistent cache.
	want := "v1|tableii|bits=100|seed=1|samples=50"
	if got := base.CacheKey("tableII"); got != want {
		t.Errorf("CacheKey = %q, want %q", got, want)
	}
	if !strings.HasPrefix(want, "v1|") {
		t.Fatal("key must be versioned")
	}
}
