package experiments

import (
	"sync"
	"testing"

	"repro/internal/runctx"
)

// TestProgressAttribution proves every registry artifact reports
// attributable progress: each event a run emits carries the artifact
// name (stamped by the runner) and a non-empty stage, and every
// artifact in the catalog emits at least one event even at minimal
// scale — so an operator watching a progress stream can always tell
// what is running.
func TestProgressAttribution(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the whole registry")
	}
	arts := Default().Artifacts()
	var mu sync.Mutex
	events := map[string]int{} // artifact name -> events seen
	sink := func(ev runctx.Event) {
		mu.Lock()
		defer mu.Unlock()
		if ev.Artifact == "" {
			t.Errorf("event without artifact attribution: %+v", ev)
		}
		if ev.Stage == "" {
			t.Errorf("event without stage: %+v", ev)
		}
		events[ev.Artifact]++
	}
	rc := runctx.New(nil, sink)
	o := Opts{Bits: 2, Samples: 2, Seed: 1}
	results := Runner{Opts: o, Workers: 4}.RunEmitCtx(rc, arts, nil)
	for _, res := range results {
		if res.Err != "" {
			t.Errorf("%s did not complete: %s", res.Name, res.Err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	for _, a := range arts {
		if events[a.Name] == 0 {
			t.Errorf("artifact %s emitted no progress events", a.Name)
		}
	}
	for name := range events {
		found := false
		for _, a := range arts {
			found = found || a.Name == name
		}
		if !found {
			t.Errorf("progress attributed to unknown artifact %q", name)
		}
	}
}
