package experiments

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/rng"
)

// fastNames is a registry subset cheap enough to run repeatedly in tests.
var fastNames = []string{"tableI", "figure2", "figure4", "tableIV", "figure10"}

func fastArtifacts(t *testing.T) []Artifact {
	t.Helper()
	arts, err := Default().Select(fastNames...)
	if err != nil {
		t.Fatalf("selecting fast subset: %v", err)
	}
	return arts
}

func TestDefaultCatalog(t *testing.T) {
	reg := Default()
	if reg.Len() != 16 {
		t.Fatalf("catalog has %d artifacts, want 16", reg.Len())
	}
	for _, a := range reg.Artifacts() {
		if a.Name == "" || a.Ref == "" || a.Desc == "" || a.Run == nil {
			t.Errorf("artifact %+v incompletely described", a)
		}
	}
}

func TestGetCaseInsensitive(t *testing.T) {
	for _, name := range []string{"tableIII", "TABLEIII", "tableiii", "TaBlEiIi"} {
		a, ok := Default().Get(name)
		if !ok || a.Name != "tableIII" {
			t.Errorf("Get(%q) = %q, %v; want tableIII, true", name, a.Name, ok)
		}
	}
	if _, ok := Default().Get("tableVIII"); ok {
		t.Error("Get(tableVIII) should miss")
	}
}

func TestSelect(t *testing.T) {
	reg := Default()
	for _, tc := range []struct {
		patterns []string
		want     int
	}{
		{[]string{"all"}, 16},
		{[]string{"table*"}, 8},
		{[]string{"figure*"}, 7},
		{[]string{"TABLE*", "tableII"}, 8}, // dedup, case-insensitive glob
		{[]string{"figure1?"}, 3},          // figure10, figure11, figure12
		{[]string{"tableI"}, 1},            // exact match, not a tableI* prefix
	} {
		arts, err := reg.Select(tc.patterns...)
		if err != nil {
			t.Errorf("Select(%v): %v", tc.patterns, err)
			continue
		}
		if len(arts) != tc.want {
			t.Errorf("Select(%v) picked %d artifacts, want %d", tc.patterns, len(arts), tc.want)
		}
	}
}

func TestSelectPreservesCatalogOrder(t *testing.T) {
	arts, err := Default().Select("figure8", "tableI", "figure2")
	if err != nil {
		t.Fatal(err)
	}
	got := []string{arts[0].Name, arts[1].Name, arts[2].Name}
	want := []string{"tableI", "figure2", "figure8"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("selection order %v, want %v", got, want)
		}
	}
}

func TestSelectRejectsUnknownUpFront(t *testing.T) {
	_, err := Default().Select("tableI", "tableVIII")
	if err == nil || !strings.Contains(err.Error(), "tableVIII") {
		t.Fatalf("want error naming the unknown experiment, got %v", err)
	}
	if _, err := Default().Select(); err == nil {
		t.Fatal("empty selection should error")
	}
	if _, err := Default().Select("", "  "); err == nil {
		t.Fatal("all-blank selection should error")
	}
	// A trailing comma in a CLI list yields an empty pattern; it is
	// ignored rather than reported as an unknown experiment.
	arts, err := Default().Select("tableI", "")
	if err != nil || len(arts) != 1 {
		t.Fatalf("Select(tableI, \"\") = %d artifacts, %v; want 1, nil", len(arts), err)
	}
}

func TestRunEmitStreamsInOrder(t *testing.T) {
	const n = 9
	arts := make([]Artifact, n)
	for i := range arts {
		d := time.Duration(n-i) * time.Millisecond // later artifacts finish first
		arts[i] = Artifact{
			Name: fmt.Sprintf("fake%d", i), Ref: "-", Desc: "-",
			Run: func(rc RunCtx, o Opts) (any, string, error) {
				time.Sleep(d)
				return nil, "x", nil
			},
		}
	}
	var emitted []string
	results := Runner{Opts: Opts{Seed: 1}, Workers: 4}.RunEmit(arts, func(r Result) {
		emitted = append(emitted, r.Name)
	})
	if len(emitted) != n {
		t.Fatalf("emitted %d results, want %d", len(emitted), n)
	}
	for i, name := range emitted {
		if name != arts[i].Name {
			t.Fatalf("emission order %v not input order", emitted)
		}
		if results[i].Name != arts[i].Name {
			t.Fatalf("result order broken at %d", i)
		}
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	arts := fastArtifacts(t)
	o := Opts{Bits: 24, Seed: 7, Samples: 20}
	serial := Runner{Opts: o, Workers: 1}.Run(arts)
	parallel := Runner{Opts: o, Workers: 4}.Run(arts)
	if len(serial) != len(arts) || len(parallel) != len(arts) {
		t.Fatalf("result counts %d/%d, want %d", len(serial), len(parallel), len(arts))
	}
	for i := range serial {
		if serial[i].Name != parallel[i].Name {
			t.Fatalf("result %d ordering differs: %s vs %s", i, serial[i].Name, parallel[i].Name)
		}
		if serial[i].Seed != parallel[i].Seed {
			t.Errorf("%s: derived seed %d vs %d", serial[i].Name, serial[i].Seed, parallel[i].Seed)
		}
		if serial[i].Rendered != parallel[i].Rendered {
			t.Errorf("%s: parallel rendering differs from serial", serial[i].Name)
		}
	}
	if RenderText(serial, false) != RenderText(parallel, false) {
		t.Error("rendered artifact text not byte-identical across worker counts")
	}
}

func TestSeedDerivationPerArtifact(t *testing.T) {
	rn := Runner{Opts: Opts{Seed: 1}}
	seen := map[uint64]string{}
	for _, name := range fastNames {
		s := rn.ArtifactOpts(name).Seed
		if prev, dup := seen[s]; dup {
			t.Errorf("artifacts %s and %s derived the same seed %d", prev, name, s)
		}
		seen[s] = name
	}
	// Stable across calls and distinct from the top-level seed.
	if rn.ArtifactOpts("tableI") != rn.ArtifactOpts("tableI") {
		t.Error("seed derivation not stable")
	}
	if rn.ArtifactOpts("tableI").Seed == 1 {
		t.Error("derived seed should differ from top-level seed")
	}
	if rng.SplitSeed(1, "tableI") == rng.SplitSeed(2, "tableI") {
		t.Error("derived seed should depend on the top-level seed")
	}
}

func TestWorkerPoolBounded(t *testing.T) {
	const n = 16
	for _, workers := range []int{0, 1, 3} {
		bound := workers
		if bound <= 0 {
			bound = 1
		}
		var inflight, peak atomic.Int32
		var mu sync.Mutex
		arts := make([]Artifact, n)
		for i := range arts {
			arts[i] = Artifact{
				Name: fmt.Sprintf("fake%d", i), Ref: "-", Desc: "-",
				Run: func(rc RunCtx, o Opts) (any, string, error) {
					cur := inflight.Add(1)
					mu.Lock()
					if cur > peak.Load() {
						peak.Store(cur)
					}
					mu.Unlock()
					time.Sleep(2 * time.Millisecond)
					inflight.Add(-1)
					return nil, "fake", nil
				},
			}
		}
		res := Runner{Opts: Opts{Seed: 1}, Workers: workers}.Run(arts)
		if len(res) != n {
			t.Fatalf("workers=%d: got %d results, want %d", workers, len(res), n)
		}
		if p := peak.Load(); p > int32(bound) {
			t.Errorf("workers=%d: observed %d artifacts in flight, bound is %d", workers, p, bound)
		}
	}
}

func TestRunRecordsTiming(t *testing.T) {
	arts := []Artifact{{
		Name: "sleepy", Ref: "-", Desc: "-",
		Run: func(rc RunCtx, o Opts) (any, string, error) {
			time.Sleep(5 * time.Millisecond)
			return nil, "z", nil
		},
	}}
	res := Runner{Opts: Opts{Seed: 1}}.Run(arts)
	if res[0].Elapsed < 5*time.Millisecond {
		t.Errorf("elapsed %v, want >= 5ms", res[0].Elapsed)
	}
	text := RenderText(res, true)
	if !strings.Contains(text, "sleepy") || !strings.Contains(text, "wall-clock") {
		t.Errorf("timing table missing from rendering:\n%s", text)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	arts, err := Default().Select("tableI", "figure4")
	if err != nil {
		t.Fatal(err)
	}
	res := Runner{Opts: Opts{Bits: 24, Seed: 7}}.Run(arts)
	b, err := RenderJSON(res)
	if err != nil {
		t.Fatalf("RenderJSON: %v", err)
	}
	var back []Result
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("round-trip unmarshal: %v", err)
	}
	if len(back) != len(res) {
		t.Fatalf("round-trip kept %d results, want %d", len(back), len(res))
	}
	for i := range res {
		if back[i].Name != res[i].Name || back[i].Seed != res[i].Seed ||
			back[i].Rendered != res[i].Rendered || back[i].Elapsed != res[i].Elapsed {
			t.Errorf("result %d mutated in JSON round-trip", i)
		}
	}
	if !strings.Contains(string(b), "Figure 4") {
		t.Error("structured data missing from JSON output")
	}
}
