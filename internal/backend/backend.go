// Package backend models the execution engine behind the IDQ: an 8-port
// Skylake-style scheduler with a 4-wide rename/retire pipe (Figure 1).
//
// The paper deliberately constructs its instruction mix blocks to avoid
// backend bottlenecks — "4 mov plus 1 jmp ... exploit the ports as much
// as possible ... avoiding load, store, or more complex instructions"
// (Section IV-D) — so the backend's job in this reproduction is to retire
// fast enough that the frontend is the bottleneck, while still enforcing
// port constraints so that a *wrong* instruction mix would contend, as
// the paper warns.
package backend

import "repro/internal/isa"

// Params configures the execution engine.
type Params struct {
	// RetireWidth is micro-ops renamed/retired per thread per cycle.
	RetireWidth int
	// Ports is the number of execution ports (8 on the paper's parts).
	Ports int
}

// DefaultParams returns the Skylake-family configuration.
func DefaultParams() Params { return Params{RetireWidth: 4, Ports: 8} }

// portMask returns the set of ports an instruction kind can issue to,
// as a bitmask over ports 0..7 (Skylake port bindings).
func portMask(k isa.Kind) uint8 {
	switch k {
	case isa.Mov, isa.Add, isa.AddLCP:
		return 1<<0 | 1<<1 | 1<<5 | 1<<6 // ALU ports
	case isa.Jmp:
		return 1<<0 | 1<<6 // branch ports
	case isa.Load:
		return 1<<2 | 1<<3 // load AGUs
	case isa.Store:
		return 1 << 4 // store data
	case isa.Nop:
		return 0 // retires without an execution port
	default:
		return 1<<0 | 1<<1
	}
}

// UOpSource is where the backend pulls micro-ops from (the frontend's
// per-thread IDQs).
type UOpSource interface {
	PopUOp(t int) (isa.Inst, bool)
	IDQLen(t int) int
}

// MemHook observes retiring memory micro-ops (the CPU core wires this to
// the L1D cache so loads/stores generate data traffic).
type MemHook func(t int, in isa.Inst)

// Backend retires micro-ops against shared execution ports.
type Backend struct {
	P       Params
	Retired [2]uint64
	// PortConflicts counts micro-ops that had to wait a cycle because
	// every port in their mask was busy.
	PortConflicts uint64

	prio int // alternating thread priority
}

// New builds a backend.
func New(p Params) *Backend { return &Backend{P: p} }

// Cycle retires up to RetireWidth micro-ops per thread, sharing the
// execution ports between the two threads; the first thread considered
// alternates each cycle. It returns the total retired this cycle.
func (b *Backend) Cycle(src UOpSource, mem MemHook) int {
	var portsBusy uint8
	total := 0
	first := b.prio
	b.prio = 1 - b.prio
	for i := 0; i < 2; i++ {
		t := first ^ i
		for n := 0; n < b.P.RetireWidth; n++ {
			// Pop-and-check: the failed pop doubles as the empty-queue
			// test, so the hot loop makes one interface call per micro-op.
			in, ok := src.PopUOp(t)
			if !ok {
				break
			}
			mask := portMask(in.Kind)
			conflict := false
			if mask != 0 {
				free := mask &^ portsBusy
				if free == 0 {
					// Head-of-line blocked on ports this cycle: the
					// micro-op slips one cycle and this thread stops
					// retiring.
					b.PortConflicts++
					conflict = true
				} else {
					portsBusy |= free & (-free) // claim lowest free port
				}
			}
			b.Retired[t]++
			total++
			if mem != nil && (in.Kind == isa.Load || in.Kind == isa.Store) {
				mem(t, in)
			}
			if conflict {
				break
			}
		}
	}
	return total
}
