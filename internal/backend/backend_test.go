package backend

import (
	"testing"

	"repro/internal/isa"
)

// fakeIDQ is a trivial UOpSource for tests.
type fakeIDQ struct {
	q [2][]isa.Inst
}

func (f *fakeIDQ) PopUOp(t int) (isa.Inst, bool) {
	if len(f.q[t]) == 0 {
		return isa.Inst{}, false
	}
	in := f.q[t][0]
	f.q[t] = f.q[t][1:]
	return in, true
}

func (f *fakeIDQ) IDQLen(t int) int { return len(f.q[t]) }

func fill(k isa.Kind, n int) []isa.Inst {
	out := make([]isa.Inst, n)
	for i := range out {
		out[i] = isa.Inst{Kind: k, UOps: 1, Len: 1}
	}
	return out
}

func TestRetireWidth(t *testing.T) {
	b := New(DefaultParams())
	idq := &fakeIDQ{}
	idq.q[0] = fill(isa.Nop, 20)
	got := b.Cycle(idq, nil)
	if got != 4 {
		t.Errorf("retired %d, want 4 (retire width)", got)
	}
}

func TestBothThreadsRetire(t *testing.T) {
	b := New(DefaultParams())
	idq := &fakeIDQ{}
	idq.q[0] = fill(isa.Nop, 10)
	idq.q[1] = fill(isa.Nop, 10)
	got := b.Cycle(idq, nil)
	if got != 8 {
		t.Errorf("retired %d, want 8 (4 per thread, nops use no ports)", got)
	}
}

func TestMixBlockAvoidsPortConflicts(t *testing.T) {
	// Section IV-D: 4 mov + 1 jmp must not contend. Over a full cycle, 4
	// movs fit ports {0,1,5,6}.
	b := New(DefaultParams())
	idq := &fakeIDQ{}
	idq.q[0] = fill(isa.Mov, 4)
	b.Cycle(idq, nil)
	if b.PortConflicts != 0 {
		t.Errorf("mix block movs caused %d port conflicts", b.PortConflicts)
	}
}

func TestStoreContention(t *testing.T) {
	// Two stores in one cycle contend for the single store port: the
	// backend must record a conflict — the behaviour the paper's mix
	// blocks are designed to avoid.
	b := New(DefaultParams())
	idq := &fakeIDQ{}
	idq.q[0] = fill(isa.Store, 4)
	b.Cycle(idq, nil)
	if b.PortConflicts == 0 {
		t.Error("back-to-back stores should conflict on port 4")
	}
}

func TestCrossThreadPortSharing(t *testing.T) {
	// Stores from both threads share the one store port.
	b := New(DefaultParams())
	idq := &fakeIDQ{}
	idq.q[0] = fill(isa.Store, 1)
	idq.q[1] = fill(isa.Store, 1)
	b.Cycle(idq, nil)
	if b.PortConflicts == 0 {
		t.Error("cross-thread store pressure should conflict")
	}
}

func TestMemHook(t *testing.T) {
	b := New(DefaultParams())
	idq := &fakeIDQ{}
	idq.q[0] = []isa.Inst{{Kind: isa.Load, UOps: 1, MemAddr: 0x1234}}
	var seen []uint64
	b.Cycle(idq, func(t int, in isa.Inst) { seen = append(seen, in.MemAddr) })
	if len(seen) != 1 || seen[0] != 0x1234 {
		t.Errorf("mem hook saw %v", seen)
	}
}

func TestPriorityAlternates(t *testing.T) {
	b := New(DefaultParams())
	idq := &fakeIDQ{}
	// One store each; only the first-considered thread wins the port.
	idq.q[0] = fill(isa.Store, 8)
	idq.q[1] = fill(isa.Store, 8)
	b.Cycle(idq, nil)
	r0, r1 := b.Retired[0], b.Retired[1]
	b.Cycle(idq, nil)
	// After two cycles priority alternated, so retirement evens out.
	d0, d1 := b.Retired[0]-r0, b.Retired[1]-r1
	if d0 == 0 || d1 == 0 {
		t.Errorf("alternating priority expected progress on both threads, got %d/%d", d0, d1)
	}
}

func TestRetireCountsPerThread(t *testing.T) {
	b := New(DefaultParams())
	idq := &fakeIDQ{}
	idq.q[0] = fill(isa.Mov, 2)
	b.Cycle(idq, nil)
	if b.Retired[0] != 2 || b.Retired[1] != 0 {
		t.Errorf("retired = %v", b.Retired)
	}
}
