package backend

// Clone returns a deep copy of the execution engine's retirement state.
func (b *Backend) Clone() *Backend {
	c := *b
	return &c
}
