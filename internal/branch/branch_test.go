package branch

import "testing"

func TestColdBranchPredictsNotTaken(t *testing.T) {
	p := New()
	taken, _ := p.Predict(0x1000)
	if taken {
		t.Error("cold branch with no BTB entry should predict not-taken")
	}
}

func TestLearnsTakenLoop(t *testing.T) {
	p := New()
	// Resolve a loop back-edge a few times; it should become predicted.
	for i := 0; i < 4; i++ {
		p.Resolve(0x1000, true, 0x800)
	}
	taken, target := p.Predict(0x1000)
	if !taken || target != 0x800 {
		t.Errorf("trained loop branch predicted (%v, %#x), want (true, 0x800)", taken, target)
	}
}

func TestLoopExitMispredicts(t *testing.T) {
	p := New()
	for i := 0; i < 16; i++ {
		p.Resolve(0x1000, true, 0x800)
	}
	if !p.Resolve(0x1000, false, 0) {
		t.Error("loop exit after long training should mispredict")
	}
}

func TestTrainThenSpeculate(t *testing.T) {
	// The Spectre v1 pattern: train in-bounds (taken), then the
	// out-of-bounds resolution mispredicts.
	p := New()
	p.Train(0x2000, 0x2100, 32)
	taken, _ := p.Predict(0x2000)
	if !taken {
		t.Fatal("trained branch should predict taken")
	}
	if !p.Resolve(0x2000, false, 0) {
		t.Error("out-of-bounds access should mispredict after training")
	}
}

func TestAlternatingPatternLearnable(t *testing.T) {
	// With 8 bits of global history, a strict alternation becomes
	// predictable; a fresh random sequence stays near 50%.
	p := New()
	pc := uint64(0x3000)
	// Warm up.
	for i := 0; i < 64; i++ {
		p.Resolve(pc, i%2 == 0, 0x3100)
	}
	p.ResetStats()
	for i := 64; i < 256; i++ {
		p.Resolve(pc, i%2 == 0, 0x3100)
	}
	if r := p.Stats().MispredictRate(); r > 0.2 {
		t.Errorf("alternating pattern mispredict rate = %v, want < 0.2", r)
	}
}

func TestRandomPatternHard(t *testing.T) {
	p := New()
	pc := uint64(0x4000)
	// A fixed pseudo-random direction sequence.
	seq := uint64(0x9E3779B97F4A7C15)
	for i := 0; i < 64; i++ {
		p.Resolve(pc, (seq>>(uint(i)%64))&1 == 1, 0x4100)
	}
	p.ResetStats()
	mis := 0
	x := seq
	for i := 0; i < 512; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		if p.Resolve(pc, x&1 == 1, 0x4100) {
			mis++
		}
	}
	rate := float64(mis) / 512
	if rate < 0.25 {
		t.Errorf("random pattern mispredict rate = %v, suspiciously low", rate)
	}
}

func TestStatsAccounting(t *testing.T) {
	p := New()
	p.Resolve(0x1000, true, 0x800)
	p.Resolve(0x1000, true, 0x800)
	s := p.Stats()
	if s.Lookups != 2 {
		t.Errorf("lookups = %d, want 2", s.Lookups)
	}
	p.ResetStats()
	if p.Stats().Lookups != 0 {
		t.Error("ResetStats did not clear lookups")
	}
	// Learned state must survive ResetStats.
	taken, _ := p.Predict(0x1000)
	if !taken {
		t.Error("ResetStats cleared learned state")
	}
}

func TestMispredictRateEmpty(t *testing.T) {
	var s Stats
	if s.MispredictRate() != 0 {
		t.Error("empty stats should have 0 rate")
	}
}

func TestTargetMismatchIsMispredict(t *testing.T) {
	p := New()
	for i := 0; i < 4; i++ {
		p.Resolve(0x5000, true, 0x6000)
	}
	// Same direction, different target: still a redirect.
	if !p.Resolve(0x5000, true, 0x7000) {
		t.Error("target change should count as mispredict")
	}
}
