package branch

// Clone returns a deep copy of the predictor: identical PHT, BTB, global
// history, and stats. The tables are value arrays, so a struct copy is a
// full snapshot.
func (p *Predictor) Clone() *Predictor {
	c := *p
	return &c
}
