// Package branch implements the branch prediction unit (BPU) that sits at
// the top of the frontend (Figure 1). The predictor matters to the
// reproduction in three places: loop exits flush the LSD (Section IV-A),
// Spectre v1 relies on training a conditional branch to speculate past a
// bounds check (Section IX), and the message-pattern effects of Table II
// (random messages transmit slower and noisier than regular ones) emerge
// from the sender's encode branches mispredicting.
package branch

// predictor table geometry; sized like a small gshare front-end predictor.
const (
	btbEntries   = 512
	phtEntries   = 4096
	historyBits  = 8
	counterTaken = 2 // 2-bit counter threshold for predicting taken
)

// Stats counts predictor events.
type Stats struct {
	Lookups     uint64
	Mispredicts uint64
}

// MispredictRate returns mispredicts/lookups, or 0 with no lookups.
func (s Stats) MispredictRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.Lookups)
}

// Predictor is a gshare-style direction predictor with a direct-mapped
// BTB for targets. Each hardware thread owns one Predictor (the paper's
// machines tag or duplicate predictor state per thread; cross-thread BPU
// attacks are out of scope for this reproduction).
type Predictor struct {
	pht   [phtEntries]uint8 // 2-bit saturating counters
	btb   [btbEntries]btbEntry
	ghr   uint64
	stats Stats
}

type btbEntry struct {
	tag    uint64
	target uint64
	valid  bool
}

// New returns a predictor with weakly-taken counters, which matches the
// behaviour the paper's loop chains rely on (first-sight taken jumps are
// mostly predicted correctly after one iteration).
func New() *Predictor {
	p := &Predictor{}
	for i := range p.pht {
		p.pht[i] = counterTaken // weakly taken
	}
	return p
}

func (p *Predictor) phtIndex(pc uint64) int {
	return int((fold(pc) ^ (p.ghr << 2)) % phtEntries)
}

// fold mixes the high PC bits into the index so that code laid out at
// large power-of-two strides (the paper's 1024-byte way stride) does not
// alias in the tables.
func fold(pc uint64) uint64 { return pc ^ pc>>9 ^ pc>>18 }

func (p *Predictor) btbIndex(pc uint64) int { return int(fold(pc) % btbEntries) }

// Predict returns the predicted direction and target for the branch at pc.
// A missing BTB entry predicts not-taken with an unknown target.
func (p *Predictor) Predict(pc uint64) (taken bool, target uint64) {
	e := &p.btb[p.btbIndex(pc)]
	if !e.valid || e.tag != pc {
		return false, 0
	}
	return p.pht[p.phtIndex(pc)] >= counterTaken, e.target
}

// Resolve records the actual outcome of the branch at pc and reports
// whether the earlier prediction was wrong (a mispredict, which costs the
// frontend a redirect).
func (p *Predictor) Resolve(pc uint64, taken bool, target uint64) bool {
	p.stats.Lookups++
	predTaken, predTarget := p.Predict(pc)
	misp := predTaken != taken || (taken && predTarget != target)

	// Update PHT.
	idx := p.phtIndex(pc)
	if taken {
		if p.pht[idx] < 3 {
			p.pht[idx]++
		}
	} else if p.pht[idx] > 0 {
		p.pht[idx]--
	}
	// Update BTB.
	if taken {
		p.btb[p.btbIndex(pc)] = btbEntry{tag: pc, target: target, valid: true}
	}
	// Update global history.
	p.ghr = (p.ghr << 1) & ((1 << historyBits) - 1)
	if taken {
		p.ghr |= 1
	}
	if misp {
		p.stats.Mispredicts++
	}
	return misp
}

// Train performs repeated Resolve calls for a taken branch, the Spectre
// training loop primitive.
func (p *Predictor) Train(pc uint64, target uint64, times int) {
	for i := 0; i < times; i++ {
		p.Resolve(pc, true, target)
	}
}

// Stats returns the predictor counters.
func (p *Predictor) Stats() Stats { return p.stats }

// ResetStats clears the counters without clearing learned state.
func (p *Predictor) ResetStats() { p.stats = Stats{} }
