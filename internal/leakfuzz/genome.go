// Package leakfuzz is a coverage-guided fuzzer for the frontend leakage
// contract (internal/contract), in the style of Geier et al.'s
// leakage-contract fuzzing. A candidate is a Genome: a small program of
// loop phases (genes) built through internal/isa, split into a
// secret-dependent preparation phase and a public probe. The fuzzer
// executes both secret arms on private simulator cores, compares the
// probe's contract traces, and reports any divergence as a leakage
// counterexample — minimized, classified against the paper's known
// channel families, and emitted as a near-valid ChannelSpec candidate.
//
// Everything is deterministic: mutation randomness comes from
// internal/rng seeded once, and the simulator's contract path draws no
// noise, so a (seed, budget) pair always reproduces the same findings.
package leakfuzz

import (
	"encoding/json"
	"fmt"

	"repro/internal/contract"
	"repro/internal/isa"
)

// Op selects the block family a gene materializes, mirroring the
// paper's building blocks (Sections IV-D, IV-G, V-E, XI-A).
type Op uint8

// Gene ops.
const (
	// OpMix is a chained mov-block loop pinned to one DSB set
	// (isa.MixChain) — the eviction and misalignment substrate.
	OpMix Op = iota
	// OpLCP is the Figure 4 length-changing-prefix add loop
	// (isa.LCPBlock) — the slow-switch substrate.
	OpLCP
	// OpNop is a nop window (isa.NopBlockLen). Flag selects 1-byte
	// nops, which overflow the per-window micro-op budget and are
	// therefore never DSB-cached: MITE-only code that can train the
	// branch predictor without touching DSB state.
	OpNop
	// OpPause is a pause pad (isa.PauseBlock).
	OpPause

	opCount
)

// Alt is how the secret bit rewrites a prep gene between the two arms:
// arm 0 runs the gene as written, arm 1 runs the altered form. Probe
// genes are public and always AltNone.
type Alt uint8

// Gene alterations.
const (
	AltNone  Alt = iota // identical in both arms
	AltSkip             // arm 1 omits the gene
	AltSet              // arm 1 shifts the target DSB set by half the index space
	AltFlip             // arm 1 flips the layout flag (alignment / issue order / nop density)
	AltIters            // arm 1 runs extra iterations

	altCount
)

// Genome size and value clamps. They bound one evaluation to a few
// hundred observation windows so a fuzzing budget is spent on breadth,
// not on one pathological giant.
const (
	maxPrepGenes  = 6
	maxProbeGenes = 3
	maxIters      = 48
	maxWays       = 8
	// lcpR is the adds-per-half of an LCP block (Figure 4). 14 rather
	// than a power of two so an ordered block's two switch points map to
	// distinct switch-buffer slots and the trained-transition channel is
	// expressible.
	lcpR         = 14
	nopCount     = 24
	pauseCount   = 4
	altIterExtra = 3
)

// Gene is one loop phase: Iters iterations of a block chain selected by
// Op at DSB set Set, Ways blocks (or the way index for single-block
// ops), with Flag selecting the op's layout variant.
type Gene struct {
	Op    Op   `json:"op"`
	Set   int  `json:"set"`
	Ways  int  `json:"ways"`
	Iters int  `json:"iters"`
	Flag  bool `json:"flag,omitempty"`
	Alt   Alt  `json:"alt,omitempty"`
}

// Genome is one candidate secret-pair program: prep runs first (the
// secret-dependent victim), probe second (the public attacker code whose
// contract trace must not depend on the secret).
type Genome struct {
	Prep  []Gene `json:"prep,omitempty"`
	Probe []Gene `json:"probe"`
}

// normalize clamps a gene into the valid space. Any int/bool combination
// becomes buildable.
func (g Gene) normalize() Gene {
	g.Op = Op(int(g.Op) % int(opCount))
	g.Set = ((g.Set % isa.DSBSets) + isa.DSBSets) % isa.DSBSets
	if g.Ways < 1 {
		g.Ways = 1
	} else if g.Ways > maxWays {
		g.Ways = maxWays
	}
	if g.Iters < 1 {
		g.Iters = 1
	} else if g.Iters > maxIters {
		g.Iters = maxIters
	}
	g.Alt = Alt(int(g.Alt) % int(altCount))
	return g
}

// Normalize clamps the genome into the valid space: at most maxPrepGenes
// prep genes, one to maxProbeGenes probe genes (a default probe is
// synthesized if none survive), every gene clamped, and probe genes
// forced public (AltNone).
func (g Genome) Normalize() Genome {
	n := Genome{}
	for _, gene := range g.Prep {
		if len(n.Prep) == maxPrepGenes {
			break
		}
		n.Prep = append(n.Prep, gene.normalize())
	}
	for _, gene := range g.Probe {
		if len(n.Probe) == maxProbeGenes {
			break
		}
		gene = gene.normalize()
		gene.Alt = AltNone
		n.Probe = append(n.Probe, gene)
	}
	if len(n.Probe) == 0 {
		n.Probe = []Gene{{Op: OpMix, Set: 20, Ways: 6, Iters: 2, Flag: true}}
	}
	return n
}

// arm applies the gene's alteration for the given secret arm. ok=false
// means the gene is absent from this arm.
func (g Gene) arm(secret bool) (Gene, bool) {
	if !secret || g.Alt == AltNone {
		g.Alt = AltNone
		return g, true
	}
	switch g.Alt {
	case AltSkip:
		return g, false
	case AltSet:
		g.Set = (g.Set + isa.DSBSets/2) % isa.DSBSets
	case AltFlip:
		g.Flag = !g.Flag
	case AltIters:
		g.Iters += altIterExtra
	}
	g.Alt = AltNone
	return g, true
}

// blocks materializes the gene's chained block loop.
func (g Gene) blocks() []*isa.Block {
	single := func(b *isa.Block) []*isa.Block {
		bs := []*isa.Block{b}
		isa.ChainLoop(bs)
		return bs
	}
	way := g.Ways - 1
	switch g.Op {
	case OpLCP:
		return single(isa.LCPBlock(isa.AddrForSet(g.Set, way), lcpR, g.Flag))
	case OpNop:
		nopLen := 2
		if g.Flag {
			nopLen = 1 // dense: uncacheable window, MITE-only
		}
		return single(isa.NopBlockLen(isa.AddrForSet(g.Set, way), nopCount, nopLen))
	case OpPause:
		return single(isa.PauseBlock(isa.AddrForSet(g.Set, way), pauseCount))
	default:
		return isa.MixChain(g.Set, g.Ways, g.Flag)
	}
}

// insts materializes the gene's dynamic instruction sequence for one
// secret arm, or nil when the arm skips it.
func (g Gene) insts(secret bool) []isa.Inst {
	a, ok := g.arm(secret)
	if !ok {
		return nil
	}
	return isa.Collect(isa.NewLoopStream(a.blocks(), a.Iters))
}

// prep materializes one secret arm's preparation program.
func (g Genome) prep(secret bool) []isa.Inst {
	var insts []isa.Inst
	for _, gene := range g.Prep {
		insts = append(insts, gene.insts(secret)...)
	}
	return insts
}

// BuildPair materializes the genome as a contract secret-pair. The
// genome must be normalized; the probe is identical in both arms by
// construction (probe genes carry no Alt).
func (g Genome) BuildPair() contract.Pair {
	var probe []isa.Inst
	for _, gene := range g.Probe {
		probe = append(probe, gene.insts(false)...)
	}
	return contract.Pair{
		Prep0: g.prep(false),
		Prep1: g.prep(true),
		Probe: probe,
	}
}

// key is a canonical identity for corpus dedup.
func (g Genome) key() string {
	b, err := json.Marshal(g)
	if err != nil {
		panic(fmt.Sprintf("leakfuzz: genome marshal: %v", err))
	}
	return string(b)
}

// clone deep-copies the genome so mutation never aliases corpus entries.
func (g Genome) clone() Genome {
	return Genome{
		Prep:  append([]Gene(nil), g.Prep...),
		Probe: append([]Gene(nil), g.Probe...),
	}
}

// geneBytes is the encoded size DecodeGenome consumes per gene.
const geneBytes = 5

// DecodeGenome maps an arbitrary byte string onto a normalized genome —
// the bridge that lets `go test -fuzz` drive the contract through its
// native corpus format. The first byte splits the gene budget between
// prep and probe; each subsequent 5-byte group is one gene.
func DecodeGenome(data []byte) Genome {
	var g Genome
	if len(data) == 0 {
		return g.Normalize()
	}
	nPrep := int(data[0]) % (maxPrepGenes + 1)
	data = data[1:]
	for len(data) >= geneBytes {
		gene := Gene{
			Op:    Op(data[0]),
			Set:   int(data[1]),
			Ways:  int(data[2]),
			Iters: int(data[3]),
			Flag:  data[4]&1 != 0,
			Alt:   Alt(data[4] >> 1),
		}
		if len(g.Prep) < nPrep {
			g.Prep = append(g.Prep, gene)
		} else {
			g.Probe = append(g.Probe, gene)
		}
		data = data[geneBytes:]
	}
	return g.Normalize()
}
