package leakfuzz

import (
	"reflect"
	"testing"

	"repro/internal/contract"
	"repro/internal/cpu"
	"repro/internal/rng"
)

// ciSeed/ciBudget are the fixed campaign the CI smoke job runs (via
// cmd/leakfuzz). TestRediscoversKnownChannels pins the exact outcome, so
// a behaviour change in the simulator that alters the findings fails
// here first, with full context.
const (
	ciSeed   = 1
	ciBudget = 2000
)

// TestRediscoversKnownChannels is the tentpole acceptance criterion: a
// fixed-seed campaign must rediscover all three of the paper's channel
// families — DSB eviction, LSD misalignment, decode slow-switch — and
// produce no unclassified counterexamples on the default model.
func TestRediscoversKnownChannels(t *testing.T) {
	r := Run(Options{Seed: ciSeed, Budget: ciBudget})
	got := map[contract.Mechanism]Finding{}
	for _, f := range r.Findings {
		got[f.Mechanism] = f
	}
	for _, want := range []contract.Mechanism{contract.Eviction, contract.Misalignment, contract.SlowSwitch} {
		if _, ok := got[want]; !ok {
			t.Errorf("mechanism %q not rediscovered (found %v)", want, r.Mechanisms())
		}
	}
	if f, ok := got[contract.Unknown]; ok {
		t.Errorf("unclassified counterexample on the default model: %s (genome %s)",
			f.Divergence, f.Genome.key())
	}
	// Every reported finding must be self-contained: re-running its
	// minimized genome from scratch reproduces the leak and the
	// classification.
	for _, f := range r.Findings {
		pair := f.Genome.BuildPair()
		t0, t1, d, leak := contract.CheckTraces(cpu.Gold6226(), ciSeed, contract.DefaultParams(), pair)
		if !leak {
			t.Errorf("%s finding does not reproduce: %s", f.Mechanism, f.Genome.key())
			continue
		}
		if mech := contract.Classify(t0, t1); mech != f.Mechanism {
			t.Errorf("finding reclassifies as %q, reported %q (divergence %s)", mech, f.Mechanism, d)
		}
		if f.Spec != nil {
			if err := f.Spec.Validate(); err != nil {
				t.Errorf("%s candidate spec invalid: %v", f.Mechanism, err)
			}
		}
	}
}

// TestRunDeterministic pins that a campaign is a pure function of its
// options: two runs produce identical reports, findings and all.
func TestRunDeterministic(t *testing.T) {
	opts := Options{Seed: 7, Budget: 300}
	a, b := Run(opts), Run(opts)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same options, different reports:\n%+v\nvs\n%+v", a, b)
	}
	if Run(Options{Seed: 8, Budget: 300}).Executions != 300 {
		t.Fatal("budget not spent exactly")
	}
}

// TestIdenticalArmsNeverLeak is the no-false-positive property: a genome
// whose prep genes carry no secret alteration runs byte-identical arms,
// so the contract must never flag it.
func TestIdenticalArmsNeverLeak(t *testing.T) {
	r := rng.New(99)
	m := cpu.Gold6226()
	for i := 0; i < 40; i++ {
		var g Genome
		for n := r.Intn(4); n > 0; n-- {
			g.Prep = append(g.Prep, randomGene(r))
		}
		for n := 1 + r.Intn(3); n > 0; n-- {
			g.Probe = append(g.Probe, randomGene(r))
		}
		g = g.Normalize()
		for j := range g.Prep {
			g.Prep[j].Alt = AltNone
		}
		if d, leak := contract.Check(m, 1, contract.DefaultParams(), g.BuildPair()); leak {
			t.Fatalf("identical arms diverged: %s (genome %s)", d, g.key())
		}
	}
}

func randomGene(r *rng.RNG) Gene {
	return Gene{
		Op:    Op(r.Intn(int(opCount))),
		Set:   r.Intn(64) - 16,
		Ways:  r.Intn(12) - 1,
		Iters: r.Intn(80) - 10,
		Flag:  r.Bool(0.5),
		Alt:   Alt(r.Intn(int(altCount))),
	}
}

// TestDecodeGenomeTotal pins that DecodeGenome is total and normalizing:
// arbitrary bytes produce a buildable genome with public probes.
func TestDecodeGenomeTotal(t *testing.T) {
	r := rng.New(3)
	for i := 0; i < 50; i++ {
		data := make([]byte, r.Intn(64))
		for j := range data {
			data[j] = byte(r.Uint64())
		}
		g := DecodeGenome(data)
		if len(g.Probe) == 0 || len(g.Probe) > maxProbeGenes || len(g.Prep) > maxPrepGenes {
			t.Fatalf("decoded genome out of bounds: %s", g.key())
		}
		for _, gene := range g.Probe {
			if gene.Alt != AltNone {
				t.Fatalf("probe gene carries a secret alteration: %s", g.key())
			}
		}
		pair := g.BuildPair() // must not panic
		if len(pair.Probe) == 0 {
			t.Fatalf("decoded genome has an empty probe program: %s", g.key())
		}
	}
	if !reflect.DeepEqual(DecodeGenome([]byte{2, 1, 2, 3, 4, 5}), DecodeGenome([]byte{2, 1, 2, 3, 4, 5})) {
		t.Fatal("DecodeGenome not deterministic")
	}
}

// TestMinimizedGenomesAreMinimal spot-checks the minimizer: the eviction
// finding from the CI campaign must not shrink further by dropping a
// gene while keeping its mechanism.
func TestMinimizedGenomesAreMinimal(t *testing.T) {
	r := Run(Options{Seed: ciSeed, Budget: ciBudget})
	m := cpu.Gold6226()
	for _, f := range r.Findings {
		g := f.Genome
		for i := range g.Prep {
			c := g.clone()
			c.Prep = append(c.Prep[:i], c.Prep[i+1:]...)
			t0, t1, _, leak := contract.CheckTraces(m, ciSeed, contract.DefaultParams(), c.BuildPair())
			if leak && contract.Classify(t0, t1) == f.Mechanism {
				t.Errorf("%s finding still shrinkable: prep gene %d removable from %s",
					f.Mechanism, i, g.key())
			}
		}
	}
}
