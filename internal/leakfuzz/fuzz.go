package leakfuzz

import (
	"sort"

	"repro/internal/contract"
	"repro/internal/cpu"
	"repro/internal/rng"
	"repro/internal/spec"
)

// Options configures one fuzzing campaign. The zero value fuzzes the
// Gold 6226 with seed 1 and a small smoke budget.
type Options struct {
	// Model is the simulated CPU; zero Name means Gold 6226.
	Model cpu.Model
	// Seed drives mutation and the simulator cores. Same (Seed, Budget,
	// Model) always reproduces the same report.
	Seed uint64
	// Budget is the number of mutated candidates to evaluate. Execution
	// count, not wall time, so CI budgets are deterministic.
	Budget int
	// Params are the contract recording parameters; zero means
	// contract.DefaultParams.
	Params contract.Params
	// Extra seeds the corpus with additional genomes (a persisted
	// corpus directory, or regression genomes) besides the built-ins.
	Extra []Genome
}

func (o Options) normalize() Options {
	if o.Model.Name == "" {
		o.Model = cpu.Gold6226()
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Budget <= 0 {
		o.Budget = 2000
	}
	if o.Params.WindowUOps <= 0 || o.Params.MaxCycles == 0 {
		o.Params = contract.DefaultParams()
	}
	return o
}

// Finding is one minimized leakage counterexample.
type Finding struct {
	// Mechanism is the classified channel family.
	Mechanism contract.Mechanism `json:"mechanism"`
	// Genome is the minimized counterexample.
	Genome Genome `json:"genome"`
	// Divergence is the first contract divergence the pair exhibits.
	Divergence contract.Divergence `json:"divergence"`
	// Executions is the evaluation count at discovery.
	Executions int `json:"executions"`
	// Spec is a near-valid ChannelSpec candidate for the family — the
	// scenario-space point a calibrated channel of this mechanism would
	// occupy. Absent for families outside the spec vocabulary.
	Spec *spec.ChannelSpec `json:"spec,omitempty"`
}

// Report summarizes a campaign.
type Report struct {
	Model      string    `json:"model"`
	Seed       uint64    `json:"seed"`
	Budget     int       `json:"budget"`
	Executions int       `json:"executions"`
	CorpusSize int       `json:"corpus"`
	Features   int       `json:"features"`
	Findings   []Finding `json:"findings"`

	// Corpus is the final coverage-increasing corpus, for persisting
	// across campaigns (cmd/leakfuzz -corpus). Excluded from the JSON
	// report: it is an input to future runs, not a result.
	Corpus []Genome `json:"-"`
}

// Mechanisms returns the sorted set of mechanisms found.
func (r Report) Mechanisms() []string {
	seen := map[string]bool{}
	for _, f := range r.Findings {
		seen[string(f.Mechanism)] = true
	}
	out := make([]string, 0, len(seen))
	for m := range seen {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// minimizeBudget bounds the shrink loop per finding, outside the main
// budget so Budget stays an exact mutation-evaluation count.
const minimizeBudget = 400

type fuzzer struct {
	o       Options
	r       *rng.RNG
	corpus  []Genome
	keys    map[string]bool
	cov     coverage
	found   map[contract.Mechanism]bool
	report  Report
	minLeft int
}

// Run executes one deterministic fuzzing campaign.
func Run(o Options) Report {
	o = o.normalize()
	f := &fuzzer{
		o:       o,
		r:       rng.New(rng.SplitSeed(o.Seed, "leakfuzz")),
		keys:    map[string]bool{},
		cov:     coverage{},
		found:   map[contract.Mechanism]bool{},
		minLeft: 0,
	}
	f.report = Report{Model: o.Model.Name, Seed: o.Seed, Budget: o.Budget}
	for _, g := range append(seedCorpus(), o.Extra...) {
		f.consider(g.Normalize())
	}
	for f.report.Executions < o.Budget && len(f.corpus) > 0 {
		parent := f.corpus[f.r.Intn(len(f.corpus))]
		f.consider(f.mutate(parent))
	}
	f.report.CorpusSize = len(f.corpus)
	f.report.Features = len(f.cov)
	f.report.Corpus = append([]Genome(nil), f.corpus...)
	return f.report
}

// seedCorpus returns the built-in benign starting points: probe-only
// genomes covering each substrate, plus a two-phase skeleton. None of
// them leaks (their arms are identical); the known channels are a
// mutation or two away, which is the point — the fuzzer must cross the
// gap itself, guided by coverage.
func seedCorpus() []Genome {
	return []Genome{
		{Probe: []Gene{{Op: OpMix, Set: 20, Ways: 6, Iters: 2, Flag: true}}},
		{Probe: []Gene{{Op: OpMix, Set: 5, Ways: 3, Iters: 40, Flag: true}}},
		{Probe: []Gene{{Op: OpLCP, Set: 6, Ways: 5, Iters: 6}}},
		{Probe: []Gene{{Op: OpNop, Set: 9, Ways: 2, Iters: 4}}},
		{
			Prep:  []Gene{{Op: OpMix, Set: 13, Ways: 6, Iters: 3, Flag: true}},
			Probe: []Gene{{Op: OpMix, Set: 20, Ways: 6, Iters: 1, Flag: true}},
		},
	}
}

// evalResult carries one candidate's traces and verdict.
type evalResult struct {
	prep0, prep1 contract.Trace
	t0, t1       contract.Trace
	d            contract.Divergence
	leak         bool
}

// exec evaluates a normalized genome on two fresh cores: prep phases are
// observed too (their traces feed coverage; an attacker does not see
// them, so only the probe traces are compared).
func (f *fuzzer) exec(g Genome) evalResult {
	pair := g.BuildPair()
	e0 := contract.NewExecutorWith(f.o.Model, f.o.Seed, f.o.Params)
	p0 := e0.Observe(pair.Prep0)
	t0 := e0.Observe(pair.Probe)
	e1 := contract.NewExecutorWith(f.o.Model, f.o.Seed, f.o.Params)
	p1 := e1.Observe(pair.Prep1)
	t1 := e1.Observe(pair.Probe)
	d, leak := contract.Compare(t0, t1)
	return evalResult{prep0: p0, prep1: p1, t0: t0, t1: t1, d: d, leak: leak}
}

// consider evaluates one candidate, admits it to the corpus on new
// coverage, and records a finding when it leaks through a family not
// yet seen.
func (f *fuzzer) consider(g Genome) {
	k := g.key()
	if f.keys[k] {
		return
	}
	f.keys[k] = true
	f.report.Executions++
	res := f.exec(g)
	mech := contract.Unknown
	if res.leak {
		mech = contract.Classify(res.t0, res.t1)
	}
	fresh := f.cov.addAll(
		[]contract.Trace{res.prep0, res.prep1, res.t0, res.t1},
		res.leak, mech,
	)
	if fresh > 0 {
		f.corpus = append(f.corpus, g)
	}
	if res.leak && !f.found[mech] {
		f.found[mech] = true
		at := f.report.Executions
		min := f.minimize(g, mech)
		final := f.exec(min)
		f.report.Findings = append(f.report.Findings, Finding{
			Mechanism:  mech,
			Genome:     min,
			Divergence: final.d,
			Executions: at,
			Spec:       candidateSpec(f.o.Model, mech, f.o.Seed),
		})
	}
}

// keepsMechanism reports whether a shrunk candidate still leaks through
// the same family.
func (f *fuzzer) keepsMechanism(g Genome, mech contract.Mechanism) bool {
	if f.minLeft <= 0 {
		return false
	}
	f.minLeft--
	res := f.exec(g)
	return res.leak && contract.Classify(res.t0, res.t1) == mech
}

// minimize greedily shrinks a leaking genome while the leak and its
// classification persist: drop prep genes, drop surplus probe genes,
// then walk iteration and way counts down.
func (f *fuzzer) minimize(g Genome, mech contract.Mechanism) Genome {
	f.minLeft = minimizeBudget
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(g.Prep); i++ {
			c := g.clone()
			c.Prep = append(c.Prep[:i], c.Prep[i+1:]...)
			if f.keepsMechanism(c, mech) {
				g, changed = c, true
				i--
			}
		}
		for i := 0; len(g.Probe) > 1 && i < len(g.Probe); i++ {
			c := g.clone()
			c.Probe = append(c.Probe[:i], c.Probe[i+1:]...)
			if f.keepsMechanism(c, mech) {
				g, changed = c, true
				i--
			}
		}
		for gi := 0; gi < len(g.Prep)+len(g.Probe); gi++ {
			for _, field := range []string{"iters", "ways"} {
				for {
					c := g.clone()
					p := geneAt(&c, gi)
					v := p.Iters
					if field == "ways" {
						v = p.Ways
					}
					if v/2 < 1 {
						break
					}
					if field == "ways" {
						p.Ways = v / 2
					} else {
						p.Iters = v / 2
					}
					if !f.keepsMechanism(c, mech) {
						break
					}
					g, changed = c, true
				}
			}
		}
	}
	return g
}

// geneAt indexes the genome's genes as one sequence, prep first.
func geneAt(g *Genome, i int) *Gene {
	if i < len(g.Prep) {
		return &g.Prep[i]
	}
	return &g.Probe[i-len(g.Prep)]
}

// mutate derives a child genome with one or two point mutations.
func (f *fuzzer) mutate(g Genome) Genome {
	c := g.clone()
	for n := 1 + f.r.Intn(2); n > 0; n-- {
		f.mutateOnce(&c)
	}
	return c.Normalize()
}

// pick returns a pointer to a uniformly chosen gene.
func (f *fuzzer) pick(g *Genome) *Gene {
	i := f.r.Intn(len(g.Prep) + len(g.Probe))
	if i < len(g.Prep) {
		return &g.Prep[i]
	}
	return &g.Probe[i-len(g.Prep)]
}

func (f *fuzzer) randGene() Gene {
	return Gene{
		Op:    Op(f.r.Intn(int(opCount))),
		Set:   f.r.Intn(32),
		Ways:  1 + f.r.Intn(maxWays),
		Iters: 1 + f.r.Intn(16),
		Flag:  f.r.Bool(0.5),
		Alt:   Alt(f.r.Intn(int(altCount))),
	}
}

func (f *fuzzer) mutateOnce(g *Genome) {
	switch f.r.Intn(9) {
	case 0:
		f.pick(g).Set = f.r.Intn(32)
	case 1:
		f.pick(g).Ways = 1 + f.r.Intn(maxWays)
	case 2:
		gene := f.pick(g)
		switch f.r.Intn(4) {
		case 0:
			gene.Iters = 1
		case 1:
			gene.Iters *= 2
		case 2:
			gene.Iters++
		default:
			gene.Iters = 1 + f.r.Intn(maxIters)
		}
	case 3:
		gene := f.pick(g)
		gene.Flag = !gene.Flag
	case 4:
		f.pick(g).Op = Op(f.r.Intn(int(opCount)))
	case 5:
		// Re-draw a prep gene's secret role. The single most important
		// operator: it is what turns a benign two-phase program into a
		// secret-pair.
		if len(g.Prep) > 0 {
			g.Prep[f.r.Intn(len(g.Prep))].Alt = Alt(f.r.Intn(int(altCount)))
		}
	case 6:
		// Insert a prep gene: fresh, or a copy of a probe gene (the
		// eviction/slow-switch channels need prep to touch the probe's
		// own footprint).
		gene := f.randGene()
		if f.r.Bool(0.5) {
			gene = g.Probe[f.r.Intn(len(g.Probe))]
			gene.Alt = Alt(f.r.Intn(int(altCount)))
		}
		pos := f.r.Intn(len(g.Prep) + 1)
		g.Prep = append(g.Prep[:pos], append([]Gene{gene}, g.Prep[pos:]...)...)
	case 7:
		if len(g.Prep) > 0 {
			i := f.r.Intn(len(g.Prep))
			g.Prep = append(g.Prep[:i], g.Prep[i+1:]...)
		}
	case 8:
		// Probe structure: add or remove a probe gene.
		if f.r.Bool(0.5) || len(g.Probe) == 1 {
			gene := f.randGene()
			gene.Alt = AltNone
			g.Probe = append(g.Probe, gene)
		} else {
			i := f.r.Intn(len(g.Probe))
			g.Probe = append(g.Probe[:i], g.Probe[i+1:]...)
		}
	}
}

// candidateSpec projects a classified finding onto the ChannelSpec
// scenario space: the plain non-MT timing point of its mechanism, the
// configuration a calibrated exploit of the counterexample would start
// from. Families outside the spec vocabulary (bpu, unknown) have no
// projection.
func candidateSpec(m cpu.Model, mech contract.Mechanism, seed uint64) *spec.ChannelSpec {
	switch mech {
	case contract.Eviction, contract.Misalignment, contract.SlowSwitch:
		s := spec.ChannelSpec{
			Model:     m.Name,
			Mechanism: spec.Mechanism(mech),
			Threading: spec.ThreadingNonMT,
			Sink:      spec.SinkTiming,
			Seed:      seed,
		}.Normalize()
		return &s
	}
	return nil
}
