package leakfuzz

import "repro/internal/contract"

// Coverage features are small integer keys derived from contract traces.
// A candidate earns a corpus slot by producing a feature no earlier
// candidate produced — the Geier-style feedback signal that steers
// mutation toward unexplored simulator behaviour rather than unexplored
// genome syntax. Key spaces (disjoint by construction):
//
//	0x100 + prev*4 + cur   delivery-path transition bigrams between
//	                       consecutive windows' dominant paths
//	0x200 + mask           per-window switch/stall event mask
//	0x300 + bucket         per-window DSB line-count delta buckets
//	0x310                  LSD locked at window close
//	0x400 + mech           divergence observed, by classified family
const (
	featPathBase   = 0x100
	featSwitchBase = 0x200
	featDSBBase    = 0x300
	featLSDLocked  = 0x310
	featLeakBase   = 0x400
)

// coverage is the accumulated feature set.
type coverage map[int]struct{}

// pathOf returns the window's dominant delivery path: 0 LSD, 1 DSB,
// 2 MITE, 3 none (no micro-ops delivered).
func pathOf(o contract.Observation) int {
	switch {
	case o.UOpsLSD == 0 && o.UOpsDSB == 0 && o.UOpsMITE == 0:
		return 3
	case o.UOpsLSD >= o.UOpsDSB && o.UOpsLSD >= o.UOpsMITE:
		return 0
	case o.UOpsDSB >= o.UOpsMITE:
		return 1
	default:
		return 2
	}
}

// switchMask summarizes the window's switch-buffer and predecode events.
func switchMask(o contract.Observation) int {
	m := 0
	if o.Switches > 0 {
		m |= 1
	}
	if o.SwHits > 0 {
		m |= 2
	}
	if o.SwConflicts > 0 {
		m |= 4
	}
	if o.SwInserts > 0 {
		m |= 8
	}
	if o.LCPStallCycles > 0 {
		m |= 16
	}
	return m
}

// dsbBucket buckets the window's DSB line delta by sign and magnitude.
func dsbBucket(d int) int {
	neg := 0
	if d < 0 {
		neg, d = 4, -d
	}
	switch {
	case d == 0:
		return 0
	case d == 1:
		return neg + 1
	case d < 4:
		return neg + 2
	case d < 8:
		return neg + 3
	default:
		return neg + 4
	}
}

// traceFeatures extracts every feature key a trace exhibits.
func traceFeatures(tr contract.Trace, emit func(int)) {
	prev := 3
	for _, o := range tr {
		cur := pathOf(o)
		emit(featPathBase + prev*4 + cur)
		prev = cur
		emit(featSwitchBase + switchMask(o))
		emit(featDSBBase + dsbBucket(o.DSBLines))
		if o.LSDLocked {
			emit(featLSDLocked)
		}
	}
}

// mechFeature keys a classified divergence family.
func mechFeature(mech contract.Mechanism) int {
	switch mech {
	case contract.Misalignment:
		return featLeakBase + 0
	case contract.SlowSwitch:
		return featLeakBase + 1
	case contract.Eviction:
		return featLeakBase + 2
	case contract.BPU:
		return featLeakBase + 3
	default:
		return featLeakBase + 4
	}
}

// addAll folds a candidate's features into the global set and reports
// how many were new.
func (c coverage) addAll(traces []contract.Trace, leak bool, mech contract.Mechanism) int {
	fresh := 0
	emit := func(k int) {
		if _, ok := c[k]; !ok {
			c[k] = struct{}{}
			fresh++
		}
	}
	for _, tr := range traces {
		traceFeatures(tr, emit)
	}
	if leak {
		emit(mechFeature(mech))
	}
	return fresh
}
