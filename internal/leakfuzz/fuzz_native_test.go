package leakfuzz

import (
	"testing"

	"repro/internal/contract"
	"repro/internal/cpu"
)

// FuzzFrontendContract is the native harness: `go test -fuzz
// FuzzFrontendContract ./internal/leakfuzz` explores genome space with
// the toolchain's own coverage engine, checking the contract's
// foundational invariants on every input instead of hunting for
// divergences directly:
//
//  1. Determinism — the contract's verdict on a pair is seed-independent
//     (the simulator's noise paths are never on the contract's path).
//  2. No false positives — forcing every prep gene public (AltNone)
//     makes the arms byte-identical, so the contract must stay silent.
//  3. Clone soundness — an executor cloned mid-probe finishes with
//     byte-identical observations (the PR's clone-completeness fix,
//     exercised from arbitrary machine states).
func FuzzFrontendContract(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 20, 6, 1, 4, 0, 20, 6, 2, 1})     // eviction-shaped: prep AltSet over probe's set
	f.Add([]byte{1, 0, 9, 4, 10, 6, 0, 5, 3, 40, 1})     // misalignment-shaped: AltFlip prep
	f.Add([]byte{2, 1, 6, 5, 5, 0, 1, 24, 3, 3, 2, 1, 6, // slow-switch-shaped: shared LCP + AltSkip scrambler
		5, 6, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		m := cpu.Gold6226()
		p := contract.Params{WindowUOps: 16, MaxCycles: 2_000_000}
		g := DecodeGenome(data)
		pair := g.BuildPair()

		t0a, _, _, leakA := contract.CheckTraces(m, 1, p, pair)
		_, _, _, leakB := contract.CheckTraces(m, 42, p, pair)
		if leakA != leakB {
			t.Fatalf("contract verdict depends on the seed: %v vs %v (%s)", leakA, leakB, g.key())
		}

		pub := g.clone()
		for i := range pub.Prep {
			pub.Prep[i].Alt = AltNone
		}
		if d, leak := contract.Check(m, 1, p, pub.BuildPair()); leak {
			t.Fatalf("identical arms diverged: %s (%s)", d, pub.key())
		}

		e := contract.NewExecutorWith(m, 1, p)
		e.Run(pair.Prep0)
		e.Start(pair.Probe)
		var head contract.Trace
		for i := 0; i < 2; i++ {
			o, ok := e.StepWindow()
			if !ok {
				break
			}
			head = append(head, o)
		}
		snap := e.Clone()
		finish := func(x *contract.Executor) contract.Trace {
			tr := append(contract.Trace(nil), head...)
			for {
				o, ok := x.StepWindow()
				if !ok {
					return tr
				}
				tr = append(tr, o)
			}
		}
		orig, clone := finish(e), finish(snap)
		if d, diff := contract.Compare(orig, clone); diff {
			t.Fatalf("mid-stream clone diverged from original: %s (%s)", d, g.key())
		}
		if d, diff := contract.Compare(orig, t0a); diff {
			// The stepwise trace must also equal the one-shot arm-0 trace.
			t.Fatalf("stepwise trace diverged from one-shot: %s (%s)", d, g.key())
		}
	})
}
