package ucode

import (
	"testing"

	"repro/internal/cpu"
)

func TestObservationShape(t *testing.T) {
	o1 := Observe(cpu.Gold6226(), Patch1, 1)
	o2 := Observe(cpu.Gold6226(), Patch2, 1)
	t.Logf("patch1: small=%.2f large=%.2f cyc/block, watts %.1f/%.1f",
		o1.SmallLoopCycles, o1.LargeLoopCycles, o1.SmallLoopWatts, o1.LargeLoopWatts)
	t.Logf("patch2: small=%.2f large=%.2f cyc/block, watts %.1f/%.1f",
		o2.SmallLoopCycles, o2.LargeLoopCycles, o2.SmallLoopWatts, o2.LargeLoopWatts)
	// Figure 10: with the LSD enabled the small loop behaves differently
	// from the large one; with it disabled they match.
	if o1.Ratio() < 1.3 {
		t.Errorf("patch1 timing ratio %.2f: LSD-enabled small loop should differ", o1.Ratio())
	}
	if o2.Ratio() > 1.15 {
		t.Errorf("patch2 timing ratio %.2f: without LSD, loops should match", o2.Ratio())
	}
	// Power: LSD saves power on the small loop only under patch1.
	if o1.PowerDelta() <= o2.PowerDelta() {
		t.Errorf("patch1 power delta %.2f should exceed patch2's %.2f", o1.PowerDelta(), o2.PowerDelta())
	}
}

func TestDetectByTiming(t *testing.T) {
	for _, p := range []Patch{Patch1, Patch2} {
		if got := DetectByTiming(cpu.Gold6226(), p, 7); got != p {
			t.Errorf("timing detector: got %v, want %v", got, p)
		}
	}
}

func TestDetectByPower(t *testing.T) {
	for _, p := range []Patch{Patch1, Patch2} {
		if got := DetectByPower(cpu.Gold6226(), p, 7); got != p {
			t.Errorf("power detector: got %v, want %v", got, p)
		}
	}
}

func TestFingerprintAgreement(t *testing.T) {
	for _, p := range []Patch{Patch1, Patch2} {
		timing, pwr, err := Fingerprint(cpu.Gold6226(), p, 3)
		if err != nil {
			t.Errorf("detectors disagree for %v: %v", p, err)
		}
		if timing != p || pwr != p {
			t.Errorf("fingerprint(%v) = (%v, %v)", p, timing, pwr)
		}
	}
}

func TestPatchStrings(t *testing.T) {
	if !Patch1.LSDEnabled() || Patch2.LSDEnabled() {
		t.Error("patch LSD states wrong")
	}
	if Patch1.String() == Patch2.String() {
		t.Error("patch strings must differ")
	}
}
