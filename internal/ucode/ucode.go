// Package ucode implements the paper's microcode patch fingerprinting
// (Section X): the Gold 6226's older patch1 microcode leaves the LSD
// enabled, the newer patch2 disables it, and an unprivileged attacker can
// tell the two apart by comparing loops that fit inside the LSD's 64
// micro-op capacity against loops that exceed it — through timing or
// through RAPL power (Figure 10). Knowing the patch level tells the
// attacker which CVEs remain exploitable.
package ucode

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/power"
)

// Patch identifies a microcode level of the paper's test machine.
type Patch int

const (
	// Patch1 is 3.20180312.0ubuntu18.04.1: LSD enabled.
	Patch1 Patch = iota
	// Patch2 is 3.20210608.0ubuntu0.18.04.1: LSD disabled.
	Patch2
)

// String returns the microcode package version string.
func (p Patch) String() string {
	if p == Patch1 {
		return "patch1 (3.20180312, LSD enabled)"
	}
	return "patch2 (3.20210608, LSD disabled)"
}

// LSDEnabled reports the patch's LSD state.
func (p Patch) LSDEnabled() bool { return p == Patch1 }

// Observation holds the measurements Figure 10 plots: average timing and
// power for an instruction-mix-block loop below the LSD capacity and one
// above it.
type Observation struct {
	Patch Patch
	// SmallLoopCycles is the per-iteration time of a 6-block loop
	// (30 micro-ops: fits the LSD).
	SmallLoopCycles float64
	// LargeLoopCycles is the per-iteration time (normalized per 6
	// blocks) of an 18-block loop (90 micro-ops: exceeds the LSD).
	LargeLoopCycles float64
	// SmallLoopWatts / LargeLoopWatts are the matching RAPL readings.
	SmallLoopWatts float64
	LargeLoopWatts float64
}

// Ratio returns the small/large timing ratio, the detector's timing
// discriminant: with the LSD enabled the small loop streams from the
// (slower-for-jump-dense-code) LSD and the ratio exceeds one; with the
// LSD disabled both loops use the DSB and the ratio is ~1.
func (o Observation) Ratio() float64 {
	if o.LargeLoopCycles == 0 {
		return 0
	}
	return o.SmallLoopCycles / o.LargeLoopCycles
}

// PowerDelta returns largeWatts - smallWatts; with the LSD enabled the
// small loop draws measurably less power (the LSD's purpose).
func (o Observation) PowerDelta() float64 { return o.LargeLoopWatts - o.SmallLoopWatts }

const (
	smallBlocks = 6  // 30 uops <= 64: LSD-eligible
	largeBlocks = 18 // 90 uops > 64: never LSD
	iters       = 400
)

// Observe measures the Figure 10 quantities on a machine running the
// given patch.
func Observe(model cpu.Model, p Patch, seed uint64) Observation {
	m := model.WithLSD(p.LSDEnabled())
	core := cpu.NewCore(m, seed)

	measure := func(nBlocks int, sets []int) (cyclesPerBlock, watts float64) {
		blocks := make([]*isa.Block, 0, nBlocks)
		per := nBlocks / len(sets)
		for _, set := range sets {
			for w := 0; w < per; w++ {
				blocks = append(blocks, isa.MixBlock(isa.AddrForSet(set, w)))
			}
		}
		isa.ChainLoop(blocks)
		// Warmup pass so the DSB is filled before the measurement.
		core.Enqueue(0, isa.NewLoopStream(blocks, 5), nil)
		core.RunUntilIdle(10_000_000)
		e0 := core.PM.TrueEnergy()
		c0 := core.Cycle()
		t := core.RunTimedTight(0, isa.NewLoopStream(blocks, iters))
		watts = power.AvgWatts(core.PM.TrueEnergy()-e0, core.Cycle()-c0)
		cyclesPerBlock = t / float64(iters) / float64(nBlocks)
		return cyclesPerBlock, watts
	}

	// Small loop: 6 blocks in one set. Large loop: 18 blocks over three
	// sets (6 ways each, no DSB thrash), so the only difference is
	// whether the LSD can hold the loop.
	sc, sw := measure(smallBlocks, []int{3})
	lc, lw := measure(largeBlocks, []int{9, 14, 27})
	return Observation{Patch: p, SmallLoopCycles: sc, LargeLoopCycles: lc, SmallLoopWatts: sw, LargeLoopWatts: lw}
}

// DetectByTiming classifies the running microcode from the timing
// discriminant alone — the paper's "more reliable indicator".
func DetectByTiming(model cpu.Model, actual Patch, seed uint64) Patch {
	o := Observe(model, actual, seed)
	if o.Ratio() > 1.35 {
		return Patch1
	}
	return Patch2
}

// DetectByPower classifies from the power discriminant.
func DetectByPower(model cpu.Model, actual Patch, seed uint64) Patch {
	o := Observe(model, actual, seed)
	if o.PowerDelta() > 1.0 {
		return Patch1
	}
	return Patch2
}

// Fingerprint runs both detectors and reports agreement.
func Fingerprint(model cpu.Model, actual Patch, seed uint64) (timing, pwr Patch, err error) {
	timing = DetectByTiming(model, actual, seed)
	pwr = DetectByPower(model, actual, seed+1)
	if timing != pwr {
		return timing, pwr, fmt.Errorf("ucode: detectors disagree (timing=%v, power=%v); timing is the reliable one", timing, pwr)
	}
	return timing, pwr, nil
}
