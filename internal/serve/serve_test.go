package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/experiments"
)

// countingRegistry builds a registry of cheap fake artifacts that count
// their executions, so tests can prove when the simulator was (not)
// touched.
func countingRegistry(runs *atomic.Int64, delay time.Duration, names ...string) *experiments.Registry {
	arts := make([]experiments.Artifact, len(names))
	for i, name := range names {
		arts[i] = experiments.Artifact{
			Name: name, Ref: "Fake " + name, Desc: "counting artifact",
			Run: func(rc experiments.RunCtx, o experiments.Opts) (any, string, error) {
				runs.Add(1)
				time.Sleep(delay)
				return map[string]uint64{"seed": o.Seed}, fmt.Sprintf("%s seed=%d bits=%d\n", name, o.Seed, o.Bits), nil
			},
		}
	}
	return experiments.NewRegistry(arts...)
}

func get(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s: %v", path, err)
	}
	return resp.StatusCode, body
}

// TestCachedArtifactMatchesDirectRun is the acceptance test for the
// deterministic cache: a cached GET returns bytes identical to a direct
// Runner.Run of the same artifact and options, without re-running the
// simulation.
func TestCachedArtifactMatchesDirectRun(t *testing.T) {
	var runs atomic.Int64
	reg := countingRegistry(&runs, 0, "alpha", "beta")
	s := NewServer(Config{Registry: reg})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const path = "/v1/artifacts/alpha?bits=24&seed=7"
	code1, body1 := get(t, ts, path)
	code2, body2 := get(t, ts, path)
	if code1 != 200 || code2 != 200 {
		t.Fatalf("statuses %d, %d; want 200", code1, code2)
	}
	if string(body1) != string(body2) {
		t.Fatalf("cached response differs from first:\n%s\nvs\n%s", body1, body2)
	}
	if n := runs.Load(); n != 1 {
		t.Fatalf("artifact ran %d times across 2 GETs, want 1 (cache hit)", n)
	}
	if hits := s.Metrics().CacheHits.Load(); hits != 1 {
		t.Errorf("cache hits = %d, want 1", hits)
	}

	// The served bytes equal a direct Runner.Run of the same artifact
	// and options (Elapsed zeroed: responses are pure functions of the
	// request, wall-clock is not part of the artifact).
	a, _ := reg.Get("alpha")
	direct := experiments.Runner{Opts: experiments.Opts{Bits: 24, Seed: 7}}.Run([]experiments.Artifact{a})[0]
	direct.Elapsed = 0
	want, err := json.MarshalIndent(direct, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if string(body1) != string(want)+"\n" {
		t.Errorf("served JSON differs from direct Runner.Run:\n%s\nvs\n%s", body1, want)
	}
	// Text format serves exactly the rendered artifact, still from the
	// cache (the direct comparison run above is the only extra run).
	_, text := get(t, ts, path+"&format=text")
	if string(text) != direct.Rendered {
		t.Errorf("text format = %q, want %q", text, direct.Rendered)
	}
	if n := runs.Load(); n != 2 {
		t.Errorf("text request re-ran the artifact (%d runs, want 2)", n)
	}
}

// TestSingleflight is the acceptance test for request collapsing: N
// concurrent identical requests for an uncached artifact execute the
// artifact exactly once, and every caller gets the same bytes.
func TestSingleflight(t *testing.T) {
	var runs atomic.Int64
	reg := countingRegistry(&runs, 30*time.Millisecond, "alpha")
	s := NewServer(Config{Registry: reg, Workers: 8})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 16
	bodies := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := ts.Client().Get(ts.URL + "/v1/artifacts/alpha?seed=3")
			if err != nil {
				t.Errorf("concurrent GET: %v", err)
				return
			}
			defer resp.Body.Close()
			b, _ := io.ReadAll(resp.Body)
			bodies[i] = string(b)
		}()
	}
	wg.Wait()
	if got := runs.Load(); got != 1 {
		t.Fatalf("%d concurrent requests executed the artifact %d times, want exactly 1", n, got)
	}
	for i := 1; i < n; i++ {
		if bodies[i] != bodies[0] {
			t.Fatalf("request %d got different bytes than request 0", i)
		}
	}
	if dedup := s.Metrics().Deduplicated.Load(); dedup == 0 {
		t.Error("no request recorded as deduplicated")
	}
}

// TestDistinctOptionsDistinctResults: the cache must not conflate
// different seeds, and equivalent spellings must share one entry.
func TestDistinctOptionsDistinctResults(t *testing.T) {
	var runs atomic.Int64
	reg := countingRegistry(&runs, 0, "alpha")
	s := NewServer(Config{Registry: reg, Opts: experiments.Opts{Seed: 1}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, seed1 := get(t, ts, "/v1/artifacts/alpha?seed=1")
	_, seed2 := get(t, ts, "/v1/artifacts/alpha?seed=2")
	if string(seed1) == string(seed2) {
		t.Error("different seeds served identical results")
	}
	// Default options and their explicit spelling share a cache entry,
	// as does a different case of the name.
	get(t, ts, "/v1/artifacts/alpha")
	get(t, ts, "/v1/artifacts/ALPHA?seed=1&bits=200&samples=100")
	if n := runs.Load(); n != 2 {
		t.Errorf("equivalent requests re-ran: %d runs, want 2 (seed 1, seed 2)", n)
	}
}

func TestBackpressure429(t *testing.T) {
	release := make(chan struct{})
	var runs atomic.Int64
	arts := []experiments.Artifact{
		{Name: "slow", Ref: "-", Desc: "-", Run: func(rc experiments.RunCtx, o experiments.Opts) (any, string, error) {
			runs.Add(1)
			<-release
			return nil, "slow\n", nil
		}},
		{Name: "other", Ref: "-", Desc: "-", Run: func(rc experiments.RunCtx, o experiments.Opts) (any, string, error) {
			return nil, "other\n", nil
		}},
	}
	s := NewServer(Config{Registry: experiments.NewRegistry(arts...), Workers: 1, QueueDepth: 1, Timeout: 5 * time.Second})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Occupy the single queue slot with a blocked run.
	started := make(chan struct{})
	go func() {
		close(started)
		get(t, ts, "/v1/artifacts/slow")
	}()
	<-started
	for i := 0; i < 100 && s.Metrics().Queued.Load() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	if s.Metrics().Queued.Load() != 1 {
		t.Fatal("blocked run never admitted to the queue")
	}

	code, body := get(t, ts, "/v1/artifacts/other")
	if code != http.StatusTooManyRequests {
		t.Fatalf("queue-full request got %d (%s), want 429", code, body)
	}
	if s.Metrics().Rejected.Load() == 0 {
		t.Error("rejection not counted")
	}
	close(release)
	// After the queue drains, the same request succeeds.
	for i := 0; i < 100 && s.Metrics().Queued.Load() != 0; i++ {
		time.Sleep(time.Millisecond)
	}
	if code, _ := get(t, ts, "/v1/artifacts/other"); code != 200 {
		t.Errorf("post-drain request got %d, want 200", code)
	}
}

func TestTimeoutKeepsWarmingCache(t *testing.T) {
	var runs atomic.Int64
	reg := countingRegistry(&runs, 80*time.Millisecond, "alpha")
	s := NewServer(Config{Registry: reg, Timeout: 5 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, _ := get(t, ts, "/v1/artifacts/alpha")
	if code != http.StatusGatewayTimeout {
		t.Fatalf("slow request got %d, want 504", code)
	}
	// The abandoned simulation still lands in the cache.
	deadline := time.Now().Add(2 * time.Second)
	for s.cache.Len() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	code, _ = get(t, ts, "/v1/artifacts/alpha")
	if code != 200 {
		t.Fatalf("post-timeout request got %d, want 200 from cache", code)
	}
	if n := runs.Load(); n != 1 {
		t.Errorf("artifact ran %d times, want 1", n)
	}
}

func TestRunStreamNDJSON(t *testing.T) {
	var runs atomic.Int64
	reg := countingRegistry(&runs, 0, "alpha", "beta", "gamma")
	s := NewServer(Config{Registry: reg, Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Warm one artifact so the stream mixes cached and fresh results.
	get(t, ts, "/v1/artifacts/beta?seed=5")

	resp, err := ts.Client().Get(ts.URL + "/v1/run?sel=all&seed=5")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}
	var names []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var r experiments.Result
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if r.Elapsed != 0 {
			t.Errorf("%s: Elapsed leaked into deterministic stream", r.Name)
		}
		names = append(names, r.Name)
	}
	want := []string{"alpha", "beta", "gamma"} // catalog order
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("stream order %v, want %v", names, want)
	}
	// beta came from the cache: only alpha and gamma ran here.
	if n := runs.Load(); n != 3 { // 1 warmup + 2 stream
		t.Errorf("total runs %d, want 3", n)
	}
	// A second identical stream is served entirely from the cache.
	get(t, ts, "/v1/run?sel=all&seed=5")
	if n := runs.Load(); n != 3 {
		t.Errorf("cached stream re-ran artifacts: %d runs", n)
	}
}

func TestRunStreamSelectionAndErrors(t *testing.T) {
	reg := countingRegistry(new(atomic.Int64), 0, "alpha", "beta")
	ts := httptest.NewServer(NewServer(Config{Registry: reg}).Handler())
	defer ts.Close()

	code, body := get(t, ts, "/v1/run?sel=alpha")
	if code != 200 || strings.Count(string(body), "\n") != 1 {
		t.Errorf("sel=alpha: code %d body %q", code, body)
	}
	if code, _ := get(t, ts, "/v1/run?sel=nosuch"); code != http.StatusBadRequest {
		t.Errorf("unknown selection got %d, want 400", code)
	}
}

// TestRunStreamLargerThanQueue: a stream is one job against the queue,
// so an idle server must accept sel=all even when the selection has
// more uncached artifacts than the queue depth.
func TestRunStreamLargerThanQueue(t *testing.T) {
	var runs atomic.Int64
	reg := countingRegistry(&runs, 0, "a1", "a2", "a3", "a4", "a5")
	s := NewServer(Config{Registry: reg, Workers: 2, QueueDepth: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := get(t, ts, "/v1/run?sel=all")
	if code != 200 {
		t.Fatalf("idle-server sel=all got %d (%s), want 200", code, body)
	}
	if n := strings.Count(string(body), "\n"); n != 5 {
		t.Errorf("stream emitted %d lines, want 5", n)
	}
	if q := s.Metrics().Queued.Load(); q != 0 {
		t.Errorf("queue slot leaked: depth %d after stream", q)
	}
}

// TestRunStreamSharesFlights: a stream and a single-artifact request
// racing for the same uncached artifact must share one simulation.
func TestRunStreamSharesFlights(t *testing.T) {
	var runs atomic.Int64
	reg := countingRegistry(&runs, 50*time.Millisecond, "alpha", "beta")
	s := NewServer(Config{Registry: reg, Workers: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			get(t, ts, "/v1/run?sel=all&seed=4")
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		get(t, ts, "/v1/artifacts/alpha?seed=4")
	}()
	wg.Wait()
	if n := runs.Load(); n != 2 {
		t.Errorf("4 overlapping requests ran the 2 artifacts %d times total, want 2", n)
	}
}

func TestCatalogHealthzMetrics(t *testing.T) {
	reg := countingRegistry(new(atomic.Int64), 0, "alpha", "beta")
	ts := httptest.NewServer(NewServer(Config{Registry: reg}).Handler())
	defer ts.Close()

	code, body := get(t, ts, "/v1/artifacts")
	if code != 200 {
		t.Fatalf("catalog: %d", code)
	}
	var entries []catalogEntry
	if err := json.Unmarshal(body, &entries); err != nil {
		t.Fatalf("catalog JSON: %v", err)
	}
	if len(entries) != 2 || entries[0].Name != "alpha" {
		t.Errorf("catalog %+v", entries)
	}

	if code, body := get(t, ts, "/healthz"); code != 200 || string(body) != "ok\n" {
		t.Errorf("healthz: %d %q", code, body)
	}

	_, metrics := get(t, ts, "/metrics")
	for _, want := range []string{"leakyfed_requests_total", "leakyfed_cache_hits_total", "leakyfed_queue_depth"} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %s:\n%s", want, metrics)
		}
	}
}

func TestBadRequests(t *testing.T) {
	reg := countingRegistry(new(atomic.Int64), 0, "alpha")
	ts := httptest.NewServer(NewServer(Config{Registry: reg}).Handler())
	defer ts.Close()

	for _, tc := range []struct {
		path string
		want int
	}{
		{"/v1/artifacts/nosuch", http.StatusNotFound},
		{"/v1/artifacts/alpha?seed=banana", http.StatusBadRequest},
		{"/v1/artifacts/alpha?seed=0", http.StatusBadRequest},
		{"/v1/artifacts/alpha?bits=-3", http.StatusBadRequest},
		{"/v1/artifacts/alpha?bits=100000000", http.StatusBadRequest},
		{"/v1/artifacts/alpha?samples=0", http.StatusBadRequest},
		{"/v1/artifacts/alpha?samples=100000000", http.StatusBadRequest},
		{"/v1/artifacts/alpha?format=yaml", http.StatusBadRequest},
	} {
		if code, _ := get(t, ts, tc.path); code != tc.want {
			t.Errorf("GET %s = %d, want %d", tc.path, code, tc.want)
		}
	}
}

func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(2)
	r := func(name string) experiments.Result { return experiments.Result{Name: name} }
	c.Add("a", r("a"))
	c.Add("b", r("b"))
	c.Get("a") // refresh a; b is now LRU
	c.Add("c", r("c"))
	if _, ok := c.Get("b"); ok {
		t.Error("LRU entry b not evicted")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("entry %s missing", k)
		}
	}
	if c.Len() != 2 {
		t.Errorf("len %d, want 2", c.Len())
	}
	// Re-adding an existing key refreshes recency without growing.
	c.Add("a", r("a"))
	if c.Len() != 2 {
		t.Errorf("duplicate Add grew cache to %d", c.Len())
	}
}

func TestFlightGroupContext(t *testing.T) {
	g := newFlightGroup(context.Background(), false)
	release := make(chan struct{})
	leaderDone := make(chan experiments.Result, 1)
	go func() {
		res, _, _ := g.Do(context.Background(), "k", func(context.Context) (experiments.Result, error) {
			<-release
			return experiments.Result{Name: "landed"}, nil
		})
		leaderDone <- res
	}()
	// Wait until the flight exists, then join with an expired context.
	for i := 0; i < 1000; i++ {
		g.mu.Lock()
		n := len(g.flights)
		g.mu.Unlock()
		if n == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, shared, err := g.Do(ctx, "k", nil)
	if !shared || err == nil {
		t.Errorf("cancelled waiter: shared=%v err=%v, want true, ctx error", shared, err)
	}
	close(release)
	if res := <-leaderDone; res.Name != "landed" {
		t.Errorf("leader got %q, want landed", res.Name)
	}
}
