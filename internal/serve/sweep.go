package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/channel"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/spec"
	"repro/internal/sweep"
)

// sweepRequest is the POST /v1/sweeps body. Filter is the sweep query
// grammar (empty sweeps the whole space); Opts follows the channel-run
// semantics (bits scales every message, seed is the base seed the
// per-spec seeds are split from, samples is ignored); Calib and MaxP
// are the sweep scale overrides (0 keeps spec defaults).
type sweepRequest struct {
	Filter string           `json:"filter"`
	Opts   experiments.Opts `json:"opts"`
	Calib  int              `json:"calib,omitempty"`
	MaxP   int              `json:"maxp,omitempty"`
}

// sweepReportLine is the NDJSON envelope of the stream's final line;
// row lines are bare sweep.Row objects, so a client can tail per-spec
// results and still tell the aggregate apart.
type sweepReportLine struct {
	Report sweep.Report `json:"report"`
}

// handleSweeps executes a whole shard of the scenario space in one
// request: the filter expands through the enumerated space, each spec
// runs through the same cache / singleflight path as POST
// /v1/channels/run (cache hits stream instantly, concurrent identical
// specs collapse across endpoints), and the response is an NDJSON
// stream of per-spec rows in canonical enumeration order followed by
// one {"report": ...} aggregate line. A sweep needing any simulation
// counts as one job against the queue, like a /v1/run stream.
//
// Malformed bodies, filters, and scale overrides are 400 before any
// work. Cancellation (server shutdown, or client disconnect under
// CancelAbandoned) yields partial results: remaining rows carry Err,
// and the report still aggregates what completed.
func (s *Server) handleSweeps(w http.ResponseWriter, r *http.Request) {
	traced, err := boolParam(r.URL.Query().Get("trace"), "trace")
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<10))
	dec.DisallowUnknownFields()
	var req sweepRequest
	if err := dec.Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("bad request body: %v", err))
		return
	}
	f, err := sweep.ParseFilter(req.Filter)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	o := s.mergeOpts(req.Opts)
	if o.Bits > maxBits {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("bits=%d out of range (want 1..%d)", o.Bits, maxBits))
		return
	}
	if req.MaxP < 0 {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("maxp=%d out of range (want >= 0)", req.MaxP))
		return
	}
	so := sweep.Options{Bits: o.Bits, Seed: o.Seed, CalibBits: req.Calib, MaxP: req.MaxP, Workers: s.workers}
	specs, err := sweep.Expand(f, so)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	s.metrics.Sweeps.Add(1)

	// Like /v1/run: partition the shard into results already cached and
	// specs needing a simulation, and serve the hits from this snapshot
	// — so the admission decision (a sweep needing any simulation is
	// one job; a fully cached one bypasses the queue) cannot be
	// invalidated by an eviction racing in between probe and run.
	// CacheHits is counted when a probed result is actually served (in
	// the run callback), not here: a sweep the queue then rejects with
	// 429 served nothing and must not inflate the hit counter.
	//
	// A fleet coordinator skips both probe and admission: its specs run
	// on the workers' queues, not the local one, so a coordinator never
	// 429s a sweep for local queue pressure.
	var probed map[string]channel.Result
	if s.fleet == nil {
		var missing int
		probed, missing = s.probeSpecs(r.Context(), specs, so.Bits)
		if missing > 0 {
			if !s.admit(1) {
				s.fail(w, http.StatusTooManyRequests, fmt.Errorf("%d specs need simulation, queue full", missing))
				return
			}
			defer s.release(1)
		}
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	sw := &streamWriter{enc: json.NewEncoder(w), flusher: flusher}
	defer sw.close()

	// The sweep's run context decides what a disconnect means, exactly
	// as for /v1/run streams: by default only server shutdown cancels
	// (an abandoned sweep keeps warming the cache); with
	// CancelAbandoned the request context governs.
	runCtx := s.lifecycle
	if s.cancelAbandoned {
		runCtx = r.Context()
	}
	if traced {
		var finish func()
		runCtx, finish = s.startTrace(r.Context(), runCtx, "POST /v1/sweeps", sw,
			obs.String("filter", req.Filter))
		defer finish()
	}
	emit := func(row sweep.Row) {
		sw.writeLine(row)
		sw.flush()
	}
	var report sweep.Report
	if s.fleet != nil {
		report = s.fleetSweep(runCtx, f, so, specs, emit)
	} else {
		report = sweep.RunSpecs(runCtx, f, so, specs, s.probedRun(probed), emit)
	}
	sw.writeLine(sweepReportLine{Report: report})
}

// probeSpecs probes the layered cache (LRU, then store) for every spec
// in the shard at the given message length, returning the snapshot of
// hits keyed by channel-run key and the count of specs that would need
// a simulation. Store hits are promoted into the LRU by the probe, so
// a restarted daemon's first sweep over a warm -cache-dir reads each
// result from disk exactly once and simulates nothing.
func (s *Server) probeSpecs(ctx context.Context, specs []spec.ChannelSpec, bits int) (map[string]channel.Result, int) {
	probed := make(map[string]channel.Result, len(specs))
	missing := 0
	for _, cs := range specs {
		key := channelRunKey(cs, bits)
		if res, hit := s.cacheGet(ctx, key); hit {
			if tres, ok := res.Data.(channel.Result); ok {
				probed[key] = tres
				continue
			}
		}
		missing++
	}
	return probed, missing
}

// probedRun is the sweep RunFunc shared by /v1/sweeps, /v1/shards, and
// Precompute: probed hits are served from the snapshot (counted as
// cache hits only now, when they are actually served), everything else
// goes through the cached channel path without per-spec admission —
// the caller already made the shard's one admission decision.
func (s *Server) probedRun(probed map[string]channel.Result) sweep.RunFunc {
	return func(ctx context.Context, cs spec.ChannelSpec, bits int) (channel.Result, error) {
		if tres, ok := probed[channelRunKey(cs, bits)]; ok {
			s.metrics.CacheHits.Add(1)
			_, hsp := obs.Start(ctx, "cache.hit", obs.String("cachekey", channelRunKey(cs, bits)))
			hsp.End()
			return tres, nil
		}
		res, err := retryBusy(ctx, func() (experiments.Result, error) {
			return s.channelResult(ctx, cs, bits, false)
		})
		if err != nil {
			return channel.Result{}, err
		}
		tres, ok := res.Data.(channel.Result)
		if !ok {
			return channel.Result{}, fmt.Errorf("serve: cached %q is not a channel result", res.Name)
		}
		return tres, nil
	}
}
