package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
)

// tracedSweepBody is the one-model sweep request the tracing tests run:
// real simulations (eviction channels on one model) small enough to
// finish in well under a second.
const tracedSweepBody = `{"filter": "mech=eviction,thread=nonmt,sink=timing,sgx=false,model=Xeon E-2174G", "opts": {"bits": 16}, "maxp": 2000}`

// postSweepQuery is postSweep with a query string (for ?trace=1) and
// the full response (for X-Request-Id).
func postSweepQuery(t *testing.T, ts *httptest.Server, query string) (*http.Response, []byte) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/v1/sweeps"+query, "application/json", strings.NewReader(tracedSweepBody))
	if err != nil {
		t.Fatalf("POST /v1/sweeps%s: %v", query, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("reading sweep stream: %v", err)
	}
	return resp, buf.Bytes()
}

// stripTraceLines removes the {"span": ...} and {"trace": ...} envelope
// lines a ?trace=1 stream interleaves, returning the residual stream.
func stripTraceLines(body []byte) []byte {
	var out bytes.Buffer
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, `{"span":`) || strings.HasPrefix(line, `{"trace":`) {
			continue
		}
		out.WriteString(line)
		out.WriteByte('\n')
	}
	return out.Bytes()
}

// TestTracedSweepByteIdentity is the acceptance test for the tracing
// discipline: a real simulation run with ?trace=1 (spans recording all
// the way down to the channel's calibration and bit loops, histograms
// observing) must produce a stream that, after stripping the additive
// span/trace lines, is byte-identical to an untraced run on a fresh
// server — tracing never perturbs simulation output.
func TestTracedSweepByteIdentity(t *testing.T) {
	plainSrv := NewServer(Config{Registry: countingRegistry(new(atomic.Int64), 0, "alpha")})
	plain := httptest.NewServer(plainSrv.Handler())
	defer plain.Close()
	tracedSrv := NewServer(Config{Registry: countingRegistry(new(atomic.Int64), 0, "alpha")})
	traced := httptest.NewServer(tracedSrv.Handler())
	defer traced.Close()

	_, plainBody := postSweepQuery(t, plain, "")
	resp, tracedBody := postSweepQuery(t, traced, "?trace=1")

	if got := stripTraceLines(tracedBody); !bytes.Equal(got, plainBody) {
		t.Errorf("traced stream (span/trace lines stripped) differs from untraced:\n%s\nvs\n%s", got, plainBody)
	}
	if bytes.Equal(tracedBody, plainBody) {
		t.Fatalf("traced stream carries no span lines:\n%s", tracedBody)
	}
	// The spans must reach the simulation's own stages, not just the
	// HTTP shell: the channel calibration/bit loops and the sweep shard.
	for _, want := range []string{`"name":"channel.transmit"`, `"name":"channel.calibrate"`, `"name":"channel.bits"`, `"name":"sweep.spec"`, `"name":"queue.wait"`, `"name":"run"`} {
		if !strings.Contains(string(tracedBody), want) {
			t.Errorf("traced stream missing span %s", want)
		}
	}
	// The trace is retained under the request id for post-hoc export.
	id := resp.Header.Get("X-Request-Id")
	if id == "" {
		t.Fatal("no X-Request-Id header on traced response")
	}
	if !strings.Contains(string(tracedBody), fmt.Sprintf(`{"trace":{"id":%q`, id)) {
		t.Errorf("stream's final trace summary does not carry request id %q:\n%s", id, tracedBody)
	}

	// Re-running the same sweep traced serves every row from cache:
	// byte-identical rows again, and the trace records the cache hits.
	_, again := postSweepQuery(t, traced, "?trace=1")
	if got := stripTraceLines(again); !bytes.Equal(got, plainBody) {
		t.Errorf("traced cache-hit stream differs from untraced:\n%s\nvs\n%s", got, plainBody)
	}
	if !strings.Contains(string(again), `"name":"cache.hit"`) {
		t.Errorf("cache-hit rerun recorded no cache.hit span:\n%s", again)
	}
}

// TestTracedRunStream covers ?trace=1 on GET /v1/run: span lines
// interleave with result lines, stripping them restores the untraced
// stream, and per-artifact render spans land in the trace.
func TestTracedRunStream(t *testing.T) {
	// Fresh server per request: both runs must actually simulate (a
	// cache-hit rerun would record no artifact spans).
	plainTS := httptest.NewServer(NewServer(Config{Registry: countingRegistry(new(atomic.Int64), 0, "alpha", "beta")}).Handler())
	defer plainTS.Close()
	tracedTS := httptest.NewServer(NewServer(Config{Registry: countingRegistry(new(atomic.Int64), 0, "alpha", "beta")}).Handler())
	defer tracedTS.Close()

	_, plain := get(t, plainTS, "/v1/run?seed=5")
	_, traced := get(t, tracedTS, "/v1/run?seed=5&trace=1")
	ts := tracedTS
	if got := stripTraceLines(traced); !bytes.Equal(got, plain) {
		t.Errorf("traced /v1/run (stripped) differs from untraced:\n%s\nvs\n%s", got, plain)
	}
	for _, want := range []string{`"name":"artifact"`, `"name":"render"`, `"name":"compute"`, `{"trace":`} {
		if !strings.Contains(string(traced), want) {
			t.Errorf("traced /v1/run stream missing %s:\n%s", want, traced)
		}
	}
	if code, _ := get(t, ts, "/v1/run?trace=banana"); code != http.StatusBadRequest {
		t.Errorf("trace=banana = %d, want 400", code)
	}
}

// TestTraceEndpoints covers the retention API: /v1/traces lists traced
// requests newest first, /v1/traces/{id} exports the span tree as JSON,
// NDJSON, and Chrome trace_event JSON that validates against the schema
// subset about:tracing requires.
func TestTraceEndpoints(t *testing.T) {
	reg := countingRegistry(new(atomic.Int64), 0, "alpha")
	ts := httptest.NewServer(NewServer(Config{Registry: reg, TraceBuffer: 4}).Handler())
	defer ts.Close()

	if _, body := get(t, ts, "/v1/traces"); strings.TrimSpace(string(body)) != "[]" {
		t.Errorf("fresh server trace index = %q, want []", body)
	}
	resp, err := ts.Client().Get(ts.URL + "/v1/run?trace=1")
	if err != nil {
		t.Fatal(err)
	}
	drainBody(resp)
	id := resp.Header.Get("X-Request-Id")

	code, body := get(t, ts, "/v1/traces")
	if code != 200 {
		t.Fatalf("/v1/traces: %d", code)
	}
	var index []traceSummary
	if err := json.Unmarshal(body, &index); err != nil {
		t.Fatalf("trace index JSON: %v\n%s", err, body)
	}
	if len(index) != 1 || index[0].ID != id || index[0].Spans == 0 {
		t.Fatalf("trace index = %+v, want one entry for %q with spans", index, id)
	}

	code, body = get(t, ts, "/v1/traces/"+id)
	if code != 200 {
		t.Fatalf("/v1/traces/%s: %d", id, code)
	}
	var detail traceDetail
	if err := json.Unmarshal(body, &detail); err != nil {
		t.Fatalf("trace detail JSON: %v", err)
	}
	if detail.ID != id || len(detail.Spans) == 0 {
		t.Fatalf("trace detail = %+v", detail)
	}

	_, nd := get(t, ts, "/v1/traces/"+id+"?format=ndjson")
	for _, line := range strings.Split(strings.TrimSpace(string(nd)), "\n") {
		var sd obs.SpanData
		if err := json.Unmarshal([]byte(line), &sd); err != nil {
			t.Fatalf("NDJSON span line %q: %v", line, err)
		}
	}

	code, chrome := get(t, ts, "/v1/traces/"+id+"?format=chrome")
	if code != 200 {
		t.Fatalf("chrome export: %d", code)
	}
	if problems := obs.ValidateChromeTrace(chrome); len(problems) > 0 {
		t.Errorf("chrome trace invalid: %v", problems)
	}

	if code, _ := get(t, ts, "/v1/traces/no-such-id"); code != http.StatusNotFound {
		t.Errorf("unknown trace id = %d, want 404", code)
	}
	if code, _ := get(t, ts, "/v1/traces/"+id+"?format=yaml"); code != http.StatusBadRequest {
		t.Errorf("bad trace format = %d, want 400", code)
	}
}

// drainBody reads a response to EOF so the traced request completes
// (and its trace is retained) before the test inspects /v1/traces.
func drainBody(resp *http.Response) {
	var buf [4096]byte
	for {
		if _, err := resp.Body.Read(buf[:]); err != nil {
			break
		}
	}
	resp.Body.Close()
}

// TestMetricsExposition is the acceptance test for the Prometheus
// surface: every family carries # HELP and # TYPE, families are sorted,
// histograms render complete _bucket/_sum/_count series, and the whole
// exposition passes the text-format linter CI runs against a live
// daemon.
func TestMetricsExposition(t *testing.T) {
	reg := countingRegistry(new(atomic.Int64), 0, "alpha")
	ts := httptest.NewServer(NewServer(Config{Registry: reg}).Handler())
	defer ts.Close()

	get(t, ts, "/v1/artifacts/alpha") // populate run/queue-wait histograms
	_, body := get(t, ts, "/metrics")
	text := string(body)

	if problems := obs.LintProm(strings.NewReader(text)); len(problems) > 0 {
		t.Errorf("metrics exposition fails lint: %v\n%s", problems, text)
	}
	var names []string
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			names = append(names, strings.Fields(rest)[0])
		}
	}
	for _, want := range []string{
		"leakyfed_cache_hits_total", "leakyfed_cache_misses_total",
		"leakyfed_cancellations_total", "leakyfed_cached_results",
		"leakyfed_deduplicated_total", "leakyfed_errors_total",
		"leakyfed_inflight_runs", "leakyfed_queue_capacity",
		"leakyfed_queue_depth", "leakyfed_queue_wait_seconds",
		"leakyfed_rejected_total", "leakyfed_request_seconds",
		"leakyfed_requests_total", "leakyfed_run_seconds",
		"leakyfed_sweeps_total", "leakyfed_timeouts_total",
		"leakyfed_traces_total",
	} {
		found := false
		for _, n := range names {
			found = found || n == want
		}
		if !found {
			t.Errorf("metrics missing family %s", want)
		}
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("families not sorted: %s before %s", names[i-1], names[i])
		}
	}
	for _, want := range []string{
		"# TYPE leakyfed_requests_total counter",
		"# TYPE leakyfed_queue_depth gauge",
		"# TYPE leakyfed_run_seconds histogram",
		`leakyfed_run_seconds_bucket{le="+Inf"} 1`,
		"leakyfed_run_seconds_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
}

// TestRequestLogging covers the structured request log: every request
// logs one line carrying the method, path, status, and request id, at
// WARN for 4xx/5xx responses and INFO otherwise.
func TestRequestLogging(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	reg := countingRegistry(new(atomic.Int64), 0, "alpha")
	ts := httptest.NewServer(NewServer(Config{Registry: reg, Logger: logger}).Handler())
	defer ts.Close()

	get(t, ts, "/v1/artifacts")         // 200
	get(t, ts, "/v1/artifacts/missing") // 404

	type logLine struct {
		Level  string `json:"level"`
		Msg    string `json:"msg"`
		ID     string `json:"id"`
		Method string `json:"method"`
		Path   string `json:"path"`
		Status int    `json:"status"`
	}
	var lines []logLine
	for _, raw := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var l logLine
		if err := json.Unmarshal([]byte(raw), &l); err != nil {
			t.Fatalf("log line %q: %v", raw, err)
		}
		lines = append(lines, l)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d log lines, want 2:\n%s", len(lines), buf.String())
	}
	ok200, fail404 := lines[0], lines[1]
	if ok200.Level != "INFO" || ok200.Status != 200 || ok200.Path != "/v1/artifacts" {
		t.Errorf("200 log line = %+v", ok200)
	}
	if fail404.Level != "WARN" || fail404.Status != 404 || fail404.Method != "GET" ||
		fail404.Path != "/v1/artifacts/missing" || !strings.HasPrefix(fail404.ID, "req-") {
		t.Errorf("404 log line = %+v", fail404)
	}
}
