package serve

import (
	"context"
	"sync"

	"repro/internal/experiments"
)

// flightGroup collapses concurrent calls for the same key into one
// execution: the first caller becomes the leader and runs fn; everyone
// else (and the leader) waits for that one execution's outcome. Results
// are deterministic, so sharing is always safe.
//
// Every flight runs under its own context derived from the group's base
// (cancelled on server shutdown, so no simulation outlives the daemon)
// and counts its waiters. A waiter whose own context expires abandons
// the wait; when the last waiter abandons a still-flying flight, the
// flight is cancelled if the group was built with cancelAbandoned —
// freeing its simulation slot within one checkpoint — or left flying to
// warm the cache otherwise (the historical detached behavior).
type flightGroup struct {
	mu              sync.Mutex
	flights         map[string]*flight
	base            context.Context
	cancelAbandoned bool
}

type flight struct {
	done      chan struct{} // closed when res/err are set
	cancel    context.CancelFunc
	waiters   int
	abandoned bool // last waiter left and the flight was cancelled
	res       experiments.Result
	err       error
}

func newFlightGroup(base context.Context, cancelAbandoned bool) *flightGroup {
	if base == nil {
		base = context.Background()
	}
	return &flightGroup{
		flights:         make(map[string]*flight),
		base:            base,
		cancelAbandoned: cancelAbandoned,
	}
}

// Do returns the result of running fn under key, executing fn at most
// once across all concurrent callers of the same key. fn receives the
// flight's own context, which is cancelled on server shutdown and —
// with cancelAbandoned — once every waiter has abandoned the flight.
// shared reports whether this caller joined a flight started by
// another. If ctx expires before the flight lands, Do returns ctx.Err()
// and the caller stops being a waiter.
func (g *flightGroup) Do(ctx context.Context, key string, fn func(context.Context) (experiments.Result, error)) (res experiments.Result, shared bool, err error) {
	g.mu.Lock()
	for {
		f, inFlight := g.flights[key]
		if !inFlight {
			break
		}
		if f.abandoned {
			// The flight was cancelled when its last waiter left, but its
			// fn has not unwound yet. Joining would hand this live caller
			// a spurious cancellation; wait for the corpse to clear the
			// map and lead a fresh flight instead.
			g.mu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				return experiments.Result{}, true, ctx.Err()
			}
			g.mu.Lock()
			continue
		}
		f.waiters++
		g.mu.Unlock()
		return g.wait(ctx, f, true)
	}
	fctx, cancel := context.WithCancel(g.base)
	f := &flight{done: make(chan struct{}), cancel: cancel, waiters: 1}
	g.flights[key] = f
	g.mu.Unlock()

	go func() {
		res, err := fn(fctx)
		g.mu.Lock()
		f.res, f.err = res, err
		delete(g.flights, key)
		g.mu.Unlock()
		close(f.done)
		cancel() // flight landed; release the context's resources
	}()
	return g.wait(ctx, f, false)
}

func (g *flightGroup) wait(ctx context.Context, f *flight, shared bool) (experiments.Result, bool, error) {
	select {
	case <-f.done:
		return f.res, shared, f.err
	case <-ctx.Done():
		// The abandonment decision and the cancel happen under the group
		// lock, so a racing joiner either arrives first (waiters > 0, no
		// cancel) or observes f.abandoned and leads a fresh flight.
		g.mu.Lock()
		f.waiters--
		if f.waiters == 0 && g.cancelAbandoned {
			f.abandoned = true
			f.cancel()
		}
		g.mu.Unlock()
		return experiments.Result{}, shared, ctx.Err()
	}
}
