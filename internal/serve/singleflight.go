package serve

import (
	"context"
	"sync"

	"repro/internal/experiments"
)

// flightGroup collapses concurrent calls for the same key into one
// execution: the first caller becomes the leader and runs fn; everyone
// else (and the leader) waits for that one execution's outcome. Results
// are deterministic, so sharing is always safe. The execution is
// detached from any single caller's context — a waiter that times out
// abandons the wait, but the computation completes and still populates
// the cache, warming it for the next request.
type flightGroup struct {
	mu      sync.Mutex
	flights map[string]*flight
}

type flight struct {
	done chan struct{} // closed when res/err are set
	res  experiments.Result
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{flights: make(map[string]*flight)}
}

// Do returns the result of running fn under key, executing fn at most
// once across all concurrent callers of the same key. shared reports
// whether this caller joined a flight started by another. If ctx expires
// before the flight lands, Do returns ctx.Err() but the flight keeps
// flying for the remaining callers.
func (g *flightGroup) Do(ctx context.Context, key string, fn func() (experiments.Result, error)) (res experiments.Result, shared bool, err error) {
	g.mu.Lock()
	if f, inFlight := g.flights[key]; inFlight {
		g.mu.Unlock()
		select {
		case <-f.done:
			return f.res, true, f.err
		case <-ctx.Done():
			return experiments.Result{}, true, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	g.flights[key] = f
	g.mu.Unlock()

	go func() {
		f.res, f.err = fn()
		g.mu.Lock()
		delete(g.flights, key)
		g.mu.Unlock()
		close(f.done)
	}()

	select {
	case <-f.done:
		return f.res, false, f.err
	case <-ctx.Done():
		return experiments.Result{}, false, ctx.Err()
	}
}
