package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/experiments"
	"repro/internal/sweep"
)

// sweepFilter is a cheap shard for unit tests: the plain non-MT timing
// eviction channels on every model (8 specs, milliseconds each).
const sweepFilter = "mech=eviction,thread=nonmt,sink=timing,sgx=false"

func postSweep(t *testing.T, ts *httptest.Server, body string) (int, []byte) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/sweeps: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("reading response: %v", err)
	}
	return resp.StatusCode, buf.Bytes()
}

// decodeSweepStream splits an NDJSON sweep response into its row lines
// and the final report line.
func decodeSweepStream(t *testing.T, body []byte) ([]sweep.Row, sweep.Report) {
	t.Helper()
	var rows []sweep.Row
	var report sweep.Report
	sawReport := false
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(nil, 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if sawReport {
			t.Fatalf("line after the report: %s", line)
		}
		var envelope struct {
			Report *sweep.Report `json:"report"`
		}
		if err := json.Unmarshal(line, &envelope); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		if envelope.Report != nil {
			report, sawReport = *envelope.Report, true
			continue
		}
		var row sweep.Row
		if err := json.Unmarshal(line, &row); err != nil {
			t.Fatalf("bad row line %q: %v", line, err)
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawReport {
		t.Fatal("stream ended without a report line")
	}
	return rows, report
}

// TestSweepEndToEnd exercises the daemon's whole sweep surface in one
// flow — enumerate via GET /v1/channels?filter=, sweep the same shard
// via POST /v1/sweeps, check /metrics — and proves the acceptance
// criterion that a repeated sweep against a warm daemon serves every
// spec from the cache.
func TestSweepEndToEnd(t *testing.T) {
	s := NewServer(Config{Opts: experiments.Opts{Bits: 16}, Workers: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// The servable shard, through the same grammar the sweep takes.
	code, body := get(t, ts, "/v1/channels?filter="+strings.ReplaceAll(sweepFilter, ",", "%2C"))
	if code != 200 {
		t.Fatalf("GET /v1/channels?filter=: status %d: %s", code, body)
	}
	var entries []channelEntry
	if err := json.Unmarshal(body, &entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("filtered /v1/channels returned no entries")
	}

	req := fmt.Sprintf(`{"filter": %q, "opts": {"seed": 3}}`, sweepFilter)
	code, body1 := postSweep(t, ts, req)
	if code != 200 {
		t.Fatalf("first sweep: status %d: %s", code, body1)
	}
	rows, report := decodeSweepStream(t, body1)
	if len(rows) != len(entries) || report.Specs != len(entries) {
		t.Fatalf("sweep ran %d rows / %d specs, want %d (the filtered space)", len(rows), report.Specs, len(entries))
	}
	if report.Completed != report.Specs {
		t.Fatalf("sweep incomplete: %d/%d", report.Completed, report.Specs)
	}
	for i, row := range rows {
		if row.Err != "" {
			t.Errorf("row %s: %s", row.Canonical, row.Err)
		}
		if row != report.Rows[i] {
			t.Errorf("streamed row %d differs from the report's", i)
		}
		if row.Spec.Model != entries[i].Spec.Model || row.Spec.Stealthy != entries[i].Spec.Stealthy {
			t.Errorf("row %d order diverges from the enumeration: %s vs %s", i, row.Canonical, entries[i].Canonical)
		}
	}
	if report.Bits != 16 {
		t.Errorf("report bits %d, want the server default 16", report.Bits)
	}
	misses, hits := s.Metrics().CacheMisses.Load(), s.Metrics().CacheHits.Load()
	if misses != uint64(len(entries)) || hits != 0 {
		t.Fatalf("cold sweep: %d misses / %d hits, want %d / 0", misses, hits, len(entries))
	}

	// A repeated sweep against the warm daemon serves every spec from
	// the cache — byte-identically — and the cache counters say so.
	code, body2 := postSweep(t, ts, req)
	if code != 200 {
		t.Fatalf("second sweep: status %d: %s", code, body2)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("warm sweep bytes differ:\n%s\nvs\n%s", body1, body2)
	}
	if got := s.Metrics().CacheMisses.Load(); got != misses {
		t.Errorf("warm sweep simulated: misses %d -> %d", misses, got)
	}
	if got := s.Metrics().CacheHits.Load(); got != uint64(len(entries)) {
		t.Errorf("warm sweep cache hits = %d, want %d (every spec)", got, len(entries))
	}

	// /metrics reflects the flow.
	code, body = get(t, ts, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics: %d", code)
	}
	for _, want := range []string{
		"leakyfed_sweeps_total 2",
		fmt.Sprintf("leakyfed_cache_hits_total %d", len(entries)),
		fmt.Sprintf("leakyfed_cache_misses_total %d", len(entries)),
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
	if q := s.Metrics().Queued.Load(); q != 0 {
		t.Errorf("queue depth %d after sweeps, want 0", q)
	}
}

// TestSweepSharesCacheWithChannelRun proves the two endpoints are one
// execution space: channel runs warm sweeps, sweeps warm channel runs,
// and concurrent identical specs collapse across endpoints (total
// simulations == distinct specs however the requests interleave).
func TestSweepSharesCacheWithChannelRun(t *testing.T) {
	s := NewServer(Config{Opts: experiments.Opts{Bits: 12}, Workers: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// The specs a sweep would run, computed exactly as the server does.
	f, err := sweep.ParseFilter(sweepFilter)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := sweep.Expand(f, sweep.Options{Bits: 12, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	target := specs[0]

	// Pre-warm one spec through POST /v1/channels/run (the sweep's
	// split seed travels in the spec, so the bodies name the same key),
	// then race the sweep against more channel-run POSTs of it.
	blob, _ := json.Marshal(target)
	runBody := fmt.Sprintf(`{"spec": %s, "opts": {"bits": 12}}`, blob)
	if code, body := postChannelRun(t, ts, runBody); code != 200 {
		t.Fatalf("channel run: status %d: %s", code, body)
	}
	if misses := s.Metrics().CacheMisses.Load(); misses != 1 {
		t.Fatalf("priming run: %d misses", misses)
	}

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if code, body := postChannelRun(t, ts, runBody); code != 200 {
				t.Errorf("concurrent channel run: status %d: %s", code, body)
			}
		}()
	}
	wg.Add(1)
	var rows []sweep.Row
	go func() {
		defer wg.Done()
		code, body := postSweep(t, ts, fmt.Sprintf(`{"filter": %q}`, sweepFilter))
		if code != 200 {
			t.Errorf("sweep: status %d: %s", code, body)
			return
		}
		rows, _ = decodeSweepStream(t, body)
	}()
	wg.Wait()

	// However the requests interleaved, each distinct spec simulated
	// exactly once: the primed spec was a hit or a joined flight
	// everywhere, the rest ran once each under the shared keys.
	if misses := s.Metrics().CacheMisses.Load(); misses != uint64(len(specs)) {
		t.Errorf("total simulations %d, want %d distinct specs", misses, len(specs))
	}
	// The sweep's row for the primed spec matches the channel-run data.
	var primed experiments.Result
	code, body := postChannelRun(t, ts, runBody)
	if code != 200 {
		t.Fatalf("re-fetch: status %d", code)
	}
	if err := json.Unmarshal(body, &primed); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, row := range rows {
		if row.Spec == target {
			found = true
			if !strings.Contains(primed.Desc, row.Canonical) {
				t.Errorf("canonical mismatch: %q vs %q", primed.Desc, row.Canonical)
			}
		}
	}
	if !found {
		t.Error("sweep rows do not contain the primed spec")
	}
}

func TestSweepRejectsBadRequestsBeforeAnyWork(t *testing.T) {
	s := NewServer(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name, body, want string
	}{
		{"malformed JSON", `{"filter": `, "bad request body"},
		{"unknown field", `{"filter": "", "wat": 1}`, "unknown field"},
		{"malformed filter", `{"filter": "color=red"}`, "unknown key"},
		{"bad range", `{"filter": "d=6..2"}`, "bad range"},
		{"bad glob", `{"filter": "model=["}`, "bad pattern"},
		{"oversized bits", `{"filter": "", "opts": {"bits": 1000000}}`, "out of range"},
		{"bad calib", `{"filter": "", "calib": 1}`, "out of range"},
		{"negative maxp", `{"filter": "", "maxp": -1}`, "out of range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := postSweep(t, ts, tc.body)
			if code != 400 {
				t.Fatalf("status %d, want 400; body: %s", code, body)
			}
			if !strings.Contains(string(body), tc.want) {
				t.Errorf("body %q does not mention %q", body, tc.want)
			}
		})
	}
	if misses := s.Metrics().CacheMisses.Load(); misses != 0 {
		t.Errorf("rejected sweeps ran %d simulations", misses)
	}
	if q := s.Metrics().Queued.Load(); q != 0 {
		t.Errorf("queue depth %d after rejections", q)
	}
	if sweeps := s.Metrics().Sweeps.Load(); sweeps != 0 {
		t.Errorf("rejected requests counted as %d sweeps", sweeps)
	}
}

func TestChannelsFilterGrammar(t *testing.T) {
	s := NewServer(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	count := func(path string) int {
		t.Helper()
		code, body := get(t, ts, path)
		if code != 200 {
			t.Fatalf("GET %s: status %d: %s", path, code, body)
		}
		var entries []channelEntry
		if err := json.Unmarshal(body, &entries); err != nil {
			t.Fatal(err)
		}
		return len(entries)
	}

	all := count("/v1/channels")
	mt := count("/v1/channels?filter=thread%3Dmt")
	if mt == 0 || mt >= all {
		t.Errorf("thread=mt matched %d of %d", mt, all)
	}
	// ?model= stays as an alias and composes with ?filter=.
	gold := count("/v1/channels?model=Gold+6226")
	if gold == 0 || gold >= all {
		t.Errorf("model alias matched %d of %d", gold, all)
	}
	goldMT := count("/v1/channels?model=Gold+6226&filter=thread%3Dmt")
	if goldMT == 0 || goldMT >= gold || goldMT >= mt {
		t.Errorf("composed alias+filter matched %d (gold %d, mt %d)", goldMT, gold, mt)
	}
	// The defense axis is a first-class filter key: each defended slice
	// is a strict subset, every entry in it carries the defense column
	// (both in the structured spec and the canonical string), and the
	// per-defense slices partition the space.
	nosmt := count("/v1/channels?filter=defense%3Dnosmt")
	if nosmt == 0 || nosmt >= all {
		t.Errorf("defense=nosmt matched %d of %d", nosmt, all)
	}
	{
		code, body := get(t, ts, "/v1/channels?filter=defense%3Dnosmt")
		if code != 200 {
			t.Fatalf("GET defense=nosmt slice: status %d: %s", code, body)
		}
		var entries []channelEntry
		if err := json.Unmarshal(body, &entries); err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if e.Spec.Defense != "nosmt" {
				t.Fatalf("defense=nosmt slice returned spec with defense %q", e.Spec.Defense)
			}
			if !strings.Contains(e.Canonical, "defense=nosmt") {
				t.Fatalf("canonical %q missing its defense clause", e.Canonical)
			}
		}
	}
	perDefense := 0
	for _, d := range []string{"none", "nosmt", "eqpaths", "norapl", "partition"} {
		perDefense += count("/v1/channels?filter=defense%3D" + d)
	}
	if perDefense != all {
		t.Errorf("per-defense slices sum to %d, want the whole space %d", perDefense, all)
	}
	// An impossible slice is an empty list, not an error.
	if n := count("/v1/channels?filter=sink%3Dpower%2Csgx%3Dtrue"); n != 0 {
		t.Errorf("power+SGX slice has %d entries, want 0", n)
	}
	// A malformed filter is a 400 before any enumeration.
	if code, body := get(t, ts, "/v1/channels?filter=color%3Dred"); code != 400 {
		t.Errorf("malformed filter: status %d: %s", code, body)
	}
	if code, body := get(t, ts, "/v1/channels?filter=d%3D6..2"); code != 400 {
		t.Errorf("inverted range: status %d: %s", code, body)
	}
	// A defense glob matching no registered defense is a 400 before any
	// enumeration, not an empty slice: a typoed defense name should not
	// read as "this model needs no mitigations".
	if code, body := get(t, ts, "/v1/channels?filter=defense%3Dbogus"); code != 400 {
		t.Errorf("unknown defense: status %d: %s", code, body)
	}
}
