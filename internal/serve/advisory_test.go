package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/sweep"
)

// advisoryPath is the Gold 6226 advisory at the unit-test scale: small
// messages, short calibration, the default power clamp.
const advisoryPath = "/v1/advisories/Gold%206226?calib=4"

// TestAdvisoryEndToEnd drives GET /v1/advisories/{model} cold, warm,
// and as text, and proves the acceptance criterion that a repeated
// advisory request performs zero new simulations.
func TestAdvisoryEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("advisory sweep spans the model's whole scenario space")
	}
	s := NewServer(Config{Opts: experiments.Opts{Bits: 8}, Workers: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body1 := get(t, ts, advisoryPath)
	if code != 200 {
		t.Fatalf("cold advisory: status %d: %s", code, body1)
	}
	var res experiments.Result
	if err := json.Unmarshal(body1, &res); err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(res.Data)
	if err != nil {
		t.Fatal(err)
	}
	var adv sweep.Advisory
	if err := json.Unmarshal(blob, &adv); err != nil {
		t.Fatalf("advisory Data does not decode as sweep.Advisory: %v", err)
	}
	if adv.ID != "LFA-GOLD-6226" || adv.Model != "Gold 6226" {
		t.Errorf("advisory header: %+v", adv)
	}
	if len(adv.Affected) == 0 || len(adv.Mitigations) == 0 || adv.Recommended == "" {
		t.Errorf("advisory empty: %d affected, %d mitigations, recommended %q",
			len(adv.Affected), len(adv.Mitigations), adv.Recommended)
	}
	misses := s.Metrics().CacheMisses.Load()
	if misses == 0 {
		t.Fatal("cold advisory simulated nothing")
	}

	// The acceptance criterion: a repeat is byte-identical and performs
	// zero new simulations — the advisory itself is served from cache.
	code, body2 := get(t, ts, advisoryPath)
	if code != 200 {
		t.Fatalf("warm advisory: status %d", code)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatal("warm advisory bytes differ from cold")
	}
	if got := s.Metrics().CacheMisses.Load(); got != misses {
		t.Fatalf("warm advisory simulated: misses %d -> %d", misses, got)
	}
	if hits := s.Metrics().CacheHits.Load(); hits == 0 {
		t.Error("warm advisory counted no cache hit")
	}

	// ?format=text serves the rendered TFV-style advisory.
	code, text := get(t, ts, advisoryPath+"&format=text")
	if code != 200 {
		t.Fatalf("text advisory: status %d", code)
	}
	for _, want := range []string{"Advisory ID", "LFA-GOLD-6226", "Configurations affected", "Recommendation: apply " + adv.Recommended} {
		if !strings.Contains(string(text), want) {
			t.Errorf("text advisory missing %q", want)
		}
	}
	if got := s.Metrics().CacheMisses.Load(); got != misses {
		t.Errorf("text rendering simulated: misses %d -> %d", misses, got)
	}

	// The advisory's rows live in the shared per-spec channel cache: a
	// sweep of the same shard at the same scale is served entirely warm.
	code, body := postSweep(t, ts, fmt.Sprintf(`{"filter": "model=Gold 6226", "calib": 4, "maxp": %d}`, advisoryMaxPDefault))
	if code != 200 {
		t.Fatalf("follow-up sweep: status %d: %s", code, body)
	}
	if _, rep := decodeSweepStream(t, body); rep.Completed != rep.Specs {
		t.Fatalf("follow-up sweep incomplete: %d/%d", rep.Completed, rep.Specs)
	}
	if got := s.Metrics().CacheMisses.Load(); got != misses {
		t.Errorf("follow-up sweep simulated: misses %d -> %d (endpoints share the row cache)", misses, got)
	}
}

func TestAdvisoryRejectsBadRequestsBeforeAnyWork(t *testing.T) {
	s := NewServer(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name, path string
		code       int
		want       string
	}{
		{"unknown model", "/v1/advisories/i9-9999X", 404, "unknown model"},
		{"bad calib", "/v1/advisories/Gold%206226?calib=1", 400, "out of range"},
		{"negative maxp", "/v1/advisories/Gold%206226?maxp=-1", 400, "want an integer >= 0"},
		{"bad format", "/v1/advisories/Gold%206226?format=xml", 400, "unknown format"},
		{"bad seed", "/v1/advisories/Gold%206226?seed=0", 400, "bad seed"},
		{"oversized bits", "/v1/advisories/Gold%206226?bits=1000000", 400, "bad bits"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := get(t, ts, tc.path)
			if code != tc.code {
				t.Fatalf("status %d, want %d; body: %s", code, tc.code, body)
			}
			if !strings.Contains(string(body), tc.want) {
				t.Errorf("body %q does not mention %q", body, tc.want)
			}
		})
	}
	if misses := s.Metrics().CacheMisses.Load(); misses != 0 {
		t.Errorf("rejected advisories ran %d simulations", misses)
	}
	if q := s.Metrics().Queued.Load(); q != 0 {
		t.Errorf("queue depth %d after rejections", q)
	}
}
