// Package serve is the artifact-serving layer: a long-running HTTP
// daemon in front of the experiment registry and Runner. The paper's
// evaluation is fully deterministic — every table and figure is a pure
// function of (artifact name, normalized Opts) — so the server caches
// results forever under a canonical key, collapses concurrent requests
// for the same uncached artifact into one simulation (singleflight), and
// bounds the work it accepts with a job queue that rejects with 429 when
// full. A cache hit returns the stored result without touching the
// simulator; responses are byte-identical for every spelling of the same
// request.
package serve

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/experiments"
)

// Errors the serving layer maps to HTTP statuses.
var (
	// ErrNotFound reports an artifact name absent from the registry (404).
	ErrNotFound = errors.New("serve: unknown artifact")
	// ErrBusy reports the job queue is full; retry later (429).
	ErrBusy = errors.New("serve: job queue full")
)

// Config parameterizes a Server. The zero value serves the default
// registry with default options and sensible bounds.
type Config struct {
	// Registry is the artifact catalog; nil means experiments.Default().
	Registry *experiments.Registry
	// Opts is the base experiment scale. Per-request query parameters
	// (?seed=, ?bits=, ?samples=) override individual fields; the result
	// is normalized before keying the cache.
	Opts experiments.Opts
	// Workers bounds how many artifact simulations run concurrently
	// across all requests; <= 0 means 4.
	Workers int
	// QueueDepth bounds admitted jobs, where one job is one request's
	// simulation work: a single-artifact request and a whole /v1/run
	// stream each count as one (a stream's internal parallelism is
	// already bounded by Workers). A request arriving with every slot
	// taken is rejected with 429. <= 0 means 4x Workers.
	QueueDepth int
	// CacheSize bounds the number of cached results (LRU eviction);
	// <= 0 means 1024.
	CacheSize int
	// Timeout bounds how long a single-artifact request waits for its
	// result. A timed-out request gets 504, but the simulation keeps
	// running and still populates the cache. <= 0 means 2 minutes.
	Timeout time.Duration
}

// Server serves registry artifacts over HTTP with caching, request
// deduplication, and admission control. Create one with NewServer and
// mount Handler on an http.Server.
type Server struct {
	reg     *experiments.Registry
	opts    experiments.Opts
	workers int
	depth   int64
	timeout time.Duration

	cache   *resultCache
	flights *flightGroup
	sem     chan struct{} // simulation slots; acquired only while running
	metrics Metrics
}

// NewServer builds a Server from cfg, applying defaults for unset
// fields.
func NewServer(cfg Config) *Server {
	reg := cfg.Registry
	if reg == nil {
		reg = experiments.Default()
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 4
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = 4 * workers
	}
	size := cfg.CacheSize
	if size <= 0 {
		size = 1024
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = 2 * time.Minute
	}
	return &Server{
		reg:     reg,
		opts:    cfg.Opts.Normalize(),
		workers: workers,
		depth:   int64(depth),
		timeout: timeout,
		cache:   newResultCache(size),
		flights: newFlightGroup(),
		sem:     make(chan struct{}, workers),
	}
}

// Metrics returns the server's live counters.
func (s *Server) Metrics() *Metrics { return &s.metrics }

// Artifact returns the result of running the named artifact with the
// given options (normalized first), preferring the cache and collapsing
// concurrent identical requests into one simulation. The returned
// Result has Elapsed zeroed so the bytes are a pure function of
// (name, Opts); wall-clock cost is an operational concern, visible in
// /metrics, not part of the artifact.
func (s *Server) Artifact(ctx context.Context, name string, o experiments.Opts) (experiments.Result, error) {
	a, ok := s.reg.Get(name)
	if !ok {
		return experiments.Result{}, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	o = o.Normalize()
	key := o.CacheKey(a.Name)
	if res, hit := s.cache.Get(key); hit {
		s.metrics.CacheHits.Add(1)
		return res, nil
	}
	return s.compute(ctx, key, a, o, true)
}

// compute returns the (possibly in-flight or cached) result for key,
// collapsing concurrent callers into one simulation. With admitJob set,
// the flight leader must claim a job-queue slot before simulating —
// the single-artifact path's admission unit is one artifact. Stream
// requests admit once per request instead and pass admitJob false.
func (s *Server) compute(ctx context.Context, key string, a experiments.Artifact, o experiments.Opts, admitJob bool) (experiments.Result, error) {
	res, shared, err := s.flights.Do(ctx, key, func() (experiments.Result, error) {
		// A racing flight may have landed between the caller's cache
		// probe and taking the flight lead; its result is already cached
		// and this serve counts as a hit like any other.
		if res, hit := s.cache.Get(key); hit {
			s.metrics.CacheHits.Add(1)
			return res, nil
		}
		if admitJob {
			if !s.admit(1) {
				return experiments.Result{}, ErrBusy
			}
			defer s.metrics.Queued.Add(-1)
		}
		res := s.run(a, o)
		s.cache.Add(key, res)
		return res, nil
	})
	if shared && err == nil {
		// Count only collapses that actually served a result; a waiter
		// that timed out is a Timeout, not saved work.
		s.metrics.Deduplicated.Add(1)
	}
	return res, err
}

// admit reserves n job-queue slots, or reports the queue is full. The
// caller owns decrementing Queued by n when its jobs finish.
func (s *Server) admit(n int) bool {
	if s.metrics.Queued.Add(int64(n)) > s.depth {
		s.metrics.Queued.Add(int64(-n))
		return false
	}
	return true
}

// run executes one artifact on a simulation slot through the Runner, so
// the per-artifact seed split (and hence every byte of the result)
// matches a direct Runner.Run of the same selection.
func (s *Server) run(a experiments.Artifact, o experiments.Opts) experiments.Result {
	s.sem <- struct{}{}
	s.metrics.InFlight.Add(1)
	defer func() {
		s.metrics.InFlight.Add(-1)
		<-s.sem
	}()
	s.metrics.CacheMisses.Add(1)
	res := experiments.Runner{Opts: o, Workers: 1}.Run([]experiments.Artifact{a})[0]
	res.Elapsed = 0 // determinism: responses depend only on (name, Opts)
	return res
}
