// Package serve is the artifact-serving layer: a long-running HTTP
// daemon in front of the experiment registry and Runner. The paper's
// evaluation is fully deterministic — every table and figure is a pure
// function of (artifact name, normalized Opts) — so the server caches
// results forever under a canonical key, collapses concurrent requests
// for the same uncached artifact into one simulation (singleflight), and
// bounds the work it accepts with a job queue that rejects with 429 when
// full. A cache hit returns the stored result without touching the
// simulator; responses are byte-identical for every spelling of the same
// request.
//
// Simulations run under cooperative cancellation contexts: every run is
// cancelled on server shutdown (Close), and — with CancelAbandoned — an
// uncached run whose last HTTP waiter disconnects is cancelled at its
// next checkpoint, freeing the simulation slot immediately instead of
// finishing a result nobody will read. By default an abandoned run
// keeps flying and warms the cache, the behavior timed-out requests
// have always relied on.
package serve

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync/atomic"
	"time"

	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/runctx"
	"repro/internal/store"
)

// Errors the serving layer maps to HTTP statuses.
var (
	// ErrNotFound reports an artifact name absent from the registry (404).
	ErrNotFound = errors.New("serve: unknown artifact")
	// ErrBusy reports the job queue is full; retry later (429).
	ErrBusy = errors.New("serve: job queue full")
)

// Config parameterizes a Server. The zero value serves the default
// registry with default options and sensible bounds.
type Config struct {
	// Registry is the artifact catalog; nil means experiments.Default().
	Registry *experiments.Registry
	// Opts is the base experiment scale. Per-request query parameters
	// (?seed=, ?bits=, ?samples=) override individual fields; the result
	// is normalized before keying the cache.
	Opts experiments.Opts
	// Workers bounds how many artifact simulations run concurrently
	// across all requests; <= 0 means 4.
	Workers int
	// QueueDepth bounds admitted jobs, where one job is one request's
	// simulation work: a single-artifact request and a whole /v1/run
	// stream each count as one (a stream's internal parallelism is
	// already bounded by Workers). A request arriving with every slot
	// taken is rejected with 429. <= 0 means 4x Workers.
	QueueDepth int
	// CacheSize bounds the number of cached results (LRU eviction);
	// <= 0 means 1024.
	CacheSize int
	// Timeout bounds how long a single-artifact request waits for its
	// result. A timed-out request gets 504; unless CancelAbandoned
	// cancels it, the simulation keeps running and still populates the
	// cache. <= 0 means 2 minutes.
	Timeout time.Duration
	// CancelAbandoned cancels an uncached simulation once its last HTTP
	// waiter has disconnected (or timed out), freeing the worker slot at
	// the run's next cooperative checkpoint. The default false keeps the
	// historical behavior: abandoned runs finish and warm the cache.
	// Server shutdown (Close) always cancels in-flight runs regardless.
	CancelAbandoned bool
	// HealthPoll is the observation interval for /healthz degradation:
	// the probe reports 503 once the job queue has been continuously
	// full for longer than one interval. <= 0 means 5 seconds.
	HealthPoll time.Duration
	// Logger receives one structured line per request (level WARN for
	// 4xx/5xx responses, INFO otherwise), carrying method, path, status,
	// and the request id. nil discards logs.
	Logger *slog.Logger
	// TraceBuffer bounds how many completed request traces (?trace=1)
	// GET /v1/traces retains, oldest evicted first. <= 0 means 32.
	TraceBuffer int
	// Store is the disk-backed result store layered beneath the LRU:
	// reads fall through LRU → store → simulator, and every simulated
	// result is written through to both, so a restarted daemon serves
	// byte-identical responses without re-simulating. nil means no
	// persistence (the historical in-memory-only behavior).
	Store *store.Store
	// Fleet, when non-nil, makes this daemon a sweep coordinator:
	// POST /v1/sweeps consistent-hashes the shard's spec cache keys
	// across the fleet's workers and merges their rows instead of
	// simulating locally. Single-artifact and single-channel endpoints
	// still run locally.
	Fleet *fleet.Coordinator
}

// Server serves registry artifacts over HTTP with caching, request
// deduplication, and admission control. Create one with NewServer and
// mount Handler on an http.Server; call Close on shutdown to cancel
// in-flight simulations.
type Server struct {
	reg             *experiments.Registry
	opts            experiments.Opts
	workers         int
	depth           int64
	timeout         time.Duration
	cancelAbandoned bool
	healthPoll      time.Duration

	// lifecycle is the root of every simulation context; Close cancels
	// it, so no run outlives the daemon.
	lifecycle context.Context
	close     context.CancelFunc

	cache   *resultCache
	store   *store.Store       // optional persistent tier; nil-safe
	fleet   *fleet.Coordinator // optional sweep scatter/merge; nil means local sweeps
	flights *flightGroup
	sem     chan struct{} // simulation slots; acquired only while running
	metrics Metrics

	logger *slog.Logger
	traces *obs.Ring     // completed ?trace=1 traces, for GET /v1/traces
	reqSeq atomic.Uint64 // request-id counter; ids are req-<n>

	// queueFull is the unix-nano timestamp since which the job queue has
	// been continuously full (0 while below capacity); /healthz reports
	// degraded once an episode outlasts one healthPoll interval.
	queueFull atomic.Int64
}

// NewServer builds a Server from cfg, applying defaults for unset
// fields.
func NewServer(cfg Config) *Server {
	reg := cfg.Registry
	if reg == nil {
		reg = experiments.Default()
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 4
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = 4 * workers
	}
	size := cfg.CacheSize
	if size <= 0 {
		size = 1024
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = 2 * time.Minute
	}
	healthPoll := cfg.HealthPoll
	if healthPoll <= 0 {
		healthPoll = 5 * time.Second
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	lifecycle, cancel := context.WithCancel(context.Background())
	s := &Server{
		reg:             reg,
		opts:            cfg.Opts.Normalize(),
		workers:         workers,
		depth:           int64(depth),
		timeout:         timeout,
		cancelAbandoned: cfg.CancelAbandoned,
		healthPoll:      healthPoll,
		lifecycle:       lifecycle,
		close:           cancel,
		cache:           newResultCache(size),
		store:           cfg.Store,
		fleet:           cfg.Fleet,
		flights:         newFlightGroup(lifecycle, cfg.CancelAbandoned),
		sem:             make(chan struct{}, workers),
		logger:          logger,
		traces:          obs.NewRing(cfg.TraceBuffer),
	}
	s.metrics.initHistograms()
	return s
}

// Close cancels every in-flight and not-yet-started simulation; each
// unwinds at its next cooperative checkpoint and its waiters see
// context.Canceled. Cached results remain servable. Call it when
// shutting the daemon down, before or alongside http.Server.Shutdown,
// so draining is not stuck behind simulations nobody will wait for.
func (s *Server) Close() { s.close() }

// Metrics returns the server's live counters.
func (s *Server) Metrics() *Metrics { return &s.metrics }

// Store returns the persistent result store, or nil when the server
// runs in-memory only.
func (s *Server) Store() *store.Store { return s.store }

// cacheGet is the layered read path every probe goes through: the LRU
// first, then the persistent store (a store hit is promoted into the
// LRU, so one disk read serves all later requests from memory). Both
// tiers hold results under the same canonical keys, and both count —
// the caller attributes the serve to CacheHits, the store attributes
// the disk hit/miss to its own counters.
func (s *Server) cacheGet(ctx context.Context, key string) (experiments.Result, bool) {
	if res, hit := s.cache.Get(key); hit {
		return res, true
	}
	if s.store == nil {
		return experiments.Result{}, false
	}
	res, hit := s.store.Get(ctx, key)
	if hit {
		s.cache.Add(key, res)
	}
	return res, hit
}

// cacheAdd is the write-through path: every simulated result lands in
// the LRU and (when configured) the store, so the next process serves
// it without simulating. Store write failures degrade silently — they
// are counted in store_put_errors_total, and persistence is an
// optimization, never a correctness dependency.
func (s *Server) cacheAdd(ctx context.Context, key string, res experiments.Result) {
	s.cache.Add(key, res)
	s.store.Put(ctx, key, res)
}

// Artifact returns the result of running the named artifact with the
// given options (normalized first), preferring the cache and collapsing
// concurrent identical requests into one simulation. The returned
// Result has Elapsed zeroed so the bytes are a pure function of
// (name, Opts); wall-clock cost is an operational concern, visible in
// /metrics, not part of the artifact.
//
// ctx is this caller's willingness to wait: when it expires the caller
// gets its error, and the underlying run either keeps flying (default)
// or is cancelled once no waiter remains (CancelAbandoned).
func (s *Server) Artifact(ctx context.Context, name string, o experiments.Opts) (experiments.Result, error) {
	a, ok := s.reg.Get(name)
	if !ok {
		return experiments.Result{}, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	o = o.Normalize()
	key := o.CacheKey(a.Name)
	if res, hit := s.cacheGet(ctx, key); hit {
		s.metrics.CacheHits.Add(1)
		return res, nil
	}
	return s.compute(ctx, key, a, o, true, nil)
}

// compute returns the (possibly in-flight or cached) result for key,
// collapsing concurrent callers into one simulation. With admitJob set,
// the flight leader must claim a job-queue slot before simulating —
// the single-artifact path's admission unit is one artifact. Stream
// requests admit once per request instead and pass admitJob false.
// sink, when non-nil, receives the flight's progress ticks (only the
// leader's sink is wired; joiners share the result, not the progress).
func (s *Server) compute(ctx context.Context, key string, a experiments.Artifact, o experiments.Opts, admitJob bool, sink runctx.Sink) (experiments.Result, error) {
	cctx, span := obs.Start(ctx, "compute",
		obs.String("artifact", a.Name), obs.String("cachekey", key))
	defer span.End()
	ctx = cctx
	res, shared, err := s.flights.Do(ctx, key, func(fctx context.Context) (experiments.Result, error) {
		// The flight context derives from the server lifecycle, not this
		// caller, so the leader re-attaches its own trace — mirroring how
		// only the leader's sink is wired. Joiners see a dedup span below.
		if sp := obs.SpanFrom(ctx); sp != nil {
			fctx = obs.ContextWithSpan(fctx, sp)
		}
		// A racing flight may have landed between the caller's cache
		// probe and taking the flight lead; its result is already cached
		// and this serve counts as a hit like any other.
		if res, hit := s.cacheGet(fctx, key); hit {
			s.metrics.CacheHits.Add(1)
			span.SetAttr("cache", "hit")
			return res, nil
		}
		if admitJob {
			if !s.admit(1) {
				return experiments.Result{}, ErrBusy
			}
			defer s.release(1)
		}
		res, err := s.run(fctx, a, o, sink)
		if err != nil {
			return experiments.Result{}, err
		}
		s.cacheAdd(fctx, key, res)
		return res, nil
	})
	if shared && err == nil {
		// Count only collapses that actually served a result; a waiter
		// that timed out is a Timeout, not saved work.
		s.metrics.Deduplicated.Add(1)
		span.SetAttr("cache", "dedup")
	}
	return res, err
}

// admit reserves n job-queue slots, or reports the queue is full. The
// caller owns releasing its slots when its jobs finish. Queue-full
// episodes are timestamped for the /healthz degradation probe.
func (s *Server) admit(n int) bool {
	q := s.metrics.Queued.Add(int64(n))
	if q > s.depth {
		s.metrics.Queued.Add(int64(-n))
		s.queueFull.CompareAndSwap(0, time.Now().UnixNano())
		return false
	}
	if q == s.depth {
		s.queueFull.CompareAndSwap(0, time.Now().UnixNano())
	}
	return true
}

// release returns n job-queue slots and, once the queue is below
// capacity again, ends the current queue-full episode.
func (s *Server) release(n int) {
	if s.metrics.Queued.Add(int64(-n)) < s.depth {
		s.queueFull.Store(0)
	}
}

// run executes one artifact on a simulation slot through the Runner, so
// the per-artifact seed split (and hence every byte of the result)
// matches a direct Runner.Run of the same selection. ctx cancellation
// unwinds the simulation at its next checkpoint; a cancelled run
// returns an error and caches nothing.
func (s *Server) run(ctx context.Context, a experiments.Artifact, o experiments.Opts, sink runctx.Sink) (experiments.Result, error) {
	wctx, qspan := obs.Start(ctx, "queue.wait", obs.String("artifact", a.Name))
	waitStart := time.Now()
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		// Cancelled while waiting for a slot: never started.
		qspan.End()
		s.metrics.QueueWaitSeconds.Observe(time.Since(waitStart).Seconds())
		s.metrics.Cancellations.Add(1)
		return experiments.Result{}, ctx.Err()
	}
	qspan.End()
	s.metrics.QueueWaitSeconds.Observe(time.Since(waitStart).Seconds())
	s.metrics.InFlight.Add(1)
	runStart := time.Now()
	defer func() {
		s.metrics.RunSeconds.Observe(time.Since(runStart).Seconds())
		s.metrics.InFlight.Add(-1)
		<-s.sem
	}()
	s.metrics.CacheMisses.Add(1)
	rctx, rspan := obs.Start(wctx, "run",
		obs.String("artifact", a.Name), obs.String("cache", "miss"))
	defer rspan.End()
	rc := runctx.New(rctx, sink)
	res := experiments.Runner{Opts: o, Workers: 1}.RunEmitCtx(rc, []experiments.Artifact{a}, nil)[0]
	if res.Err != "" {
		s.metrics.Cancellations.Add(1)
		if err := ctx.Err(); err != nil {
			return experiments.Result{}, err
		}
		return experiments.Result{}, errors.New(res.Err)
	}
	res.Elapsed = 0 // determinism: responses depend only on (name, Opts)
	return res, nil
}
