package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/channel"
	"repro/internal/cpu"
	"repro/internal/experiments"
	"repro/internal/spec"
	"repro/internal/sweep"
)

// Advisory scale defaults. An advisory sweeps the model's whole
// scenario space across every defense, so the defaults trade a little
// fidelity for a response in seconds rather than minutes: the paper
// scales remain reachable with ?calib= and ?maxp=0 (spec defaults).
const (
	advisoryCalibDefault = 6
	advisoryMaxPDefault  = 2000
)

// advisoryKey is the cache/singleflight identity of one rendered
// advisory: the model plus every knob the underlying sweep depends on.
// The "advisory-v1|" prefix keeps the namespace disjoint from artifact
// ("v1|") and channel-run ("chan-v2|") keys.
func advisoryKey(model string, bits int, seed uint64, calib, maxp int) string {
	return fmt.Sprintf("advisory-v1|model=%s|bits=%d|seed=%d|calib=%d|maxp=%d",
		model, bits, seed, calib, maxp)
}

// handleAdvisory renders GET /v1/advisories/{model}: a defense-spanning
// sweep of the model's scenario space reduced to a machine-readable
// security advisory (sweep.Advisory as JSON, or its TFV-style text with
// ?format=text). Advisories are pure functions of (model, bits, seed,
// calib, maxp), so they cache forever under that key and concurrent
// identical requests collapse into one sweep; the sweep itself rides
// the per-spec channel cache, so an advisory whose rows are already
// cached — or a repeat of an advisory — performs zero new simulations.
func (s *Server) handleAdvisory(w http.ResponseWriter, r *http.Request) {
	m, err := spec.ChannelSpec{Model: r.PathValue("model")}.ResolveModel()
	if err != nil {
		s.fail(w, http.StatusNotFound, err)
		return
	}
	o, err := s.requestOpts(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "json"
	}
	if format != "json" && format != "text" {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("unknown format %q (json|text)", format))
		return
	}
	calib, err := advisoryScale(r, "calib", advisoryCalibDefault)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	maxp, err := advisoryScale(r, "maxp", advisoryMaxPDefault)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if o.Bits > maxBits {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("bits=%d out of range (want 1..%d)", o.Bits, maxBits))
		return
	}
	f := sweep.AdvisoryFilter(m.Name)
	so := sweep.Options{Bits: o.Bits, Seed: o.Seed, CalibBits: calib, MaxP: maxp, Workers: s.workers}
	// Expand up front: a bad ?calib= is a 400 before the cache, flight
	// group, or queue see the request.
	specs, err := sweep.Expand(f, so)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}

	key := advisoryKey(m.Name, o.Bits, o.Seed, calib, maxp)
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
	defer cancel()
	res, err := retryBusy(ctx, func() (experiments.Result, error) {
		return s.advisoryResult(ctx, key, f, so, specs, m)
	})
	if err != nil {
		if errors.Is(err, context.Canceled) && r.Context().Err() == nil {
			s.fail(w, http.StatusServiceUnavailable, errors.New("run cancelled (server shutting down)"))
			return
		}
		s.failErr(w, err)
		return
	}
	if format == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, res.Rendered)
		return
	}
	s.writeJSON(w, res)
}

// advisoryResult is the cache-aware core of the advisory endpoint:
// cache probe, flight group, then a defense-spanning sweep whose rows
// go through the same per-spec channel cache as POST /v1/sweeps and
// /v1/channels/run — identical rows collapse across all three
// endpoints. The sweep counts as one job against the queue, claimed by
// the flight leader (so joiners may see ErrBusy; callers retryBusy).
func (s *Server) advisoryResult(ctx context.Context, key string, f sweep.Filter, so sweep.Options, specs []spec.ChannelSpec, m cpu.Model) (experiments.Result, error) {
	if res, hit := s.cacheGet(ctx, key); hit {
		s.metrics.CacheHits.Add(1)
		return res, nil
	}
	res, shared, err := s.flights.Do(ctx, key, func(fctx context.Context) (experiments.Result, error) {
		if res, hit := s.cacheGet(fctx, key); hit {
			s.metrics.CacheHits.Add(1)
			return res, nil
		}
		if !s.admit(1) {
			return experiments.Result{}, ErrBusy
		}
		defer s.release(1)
		run := func(ctx context.Context, cs spec.ChannelSpec, bits int) (channel.Result, error) {
			res, err := retryBusy(ctx, func() (experiments.Result, error) {
				return s.channelResult(ctx, cs, bits, false)
			})
			if err != nil {
				return channel.Result{}, err
			}
			tres, ok := res.Data.(channel.Result)
			if !ok {
				return channel.Result{}, fmt.Errorf("serve: cached %q is not a channel result", res.Name)
			}
			return tres, nil
		}
		rep := sweep.RunSpecs(fctx, f, so, specs, run, nil)
		if rep.Completed != rep.Specs {
			// The sweep was cut short (shutdown, or abandonment under
			// CancelAbandoned): an advisory over a partial baseline would
			// be misleading, so surface the cancellation instead.
			if err := fctx.Err(); err != nil {
				return experiments.Result{}, err
			}
			for _, row := range rep.Rows {
				if row.Err != "" {
					return experiments.Result{}, fmt.Errorf("serve: advisory sweep incomplete: %s: %s", row.Canonical, row.Err)
				}
			}
		}
		adv, err := sweep.NewAdvisory(rep, m)
		if err != nil {
			return experiments.Result{}, err
		}
		res := experiments.Result{
			Name:     "advisory-" + m.Name,
			Ref:      "Section XII",
			Desc:     adv.Title,
			Seed:     rep.Seed,
			Rendered: adv.Render(),
			Data:     adv,
			// Elapsed stays zero: advisories are pure functions of
			// (model, bits, seed, calib, maxp).
		}
		s.cacheAdd(fctx, key, res)
		return res, nil
	})
	if shared && err == nil {
		s.metrics.Deduplicated.Add(1)
	}
	return res, err
}

// advisoryScale parses a non-negative integer scale override (?calib=,
// ?maxp=), 0 meaning "spec defaults"; absence takes the advisory
// default.
func advisoryScale(r *http.Request, name string, def int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad %s %q: want an integer >= 0", name, v)
	}
	return n, nil
}
