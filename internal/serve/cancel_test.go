package serve

import (
	"bufio"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/experiments"
)

// spinningArtifact runs forever, checkpointing every 100us: the only
// way it ever stops is cooperative cancellation, which makes it the
// probe for "the slot was freed before the artifact would have
// finished" (it would never have finished).
func spinningArtifact(name string, started chan<- struct{}) experiments.Artifact {
	var once sync.Once
	return experiments.Artifact{
		Name: name, Ref: "-", Desc: "spins until cancelled",
		Run: func(rc experiments.RunCtx, o experiments.Opts) (any, string, error) {
			once.Do(func() {
				if started != nil {
					close(started)
				}
			})
			for i := 0; ; i++ {
				if err := rc.Step("spin", i, -1); err != nil {
					return nil, "", err
				}
				time.Sleep(100 * time.Microsecond)
			}
		},
	}
}

// tryGet is get without test fatals, for goroutines off the test's.
func tryGet(ts *httptest.Server, path string) (int, []byte) {
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		return 0, nil
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, body
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCancelAbandonedFreesWorkerSlot is the acceptance test for
// abandoned-run cancellation: with CancelAbandoned, a client
// disconnecting from an uncached run cancels the simulation at its next
// checkpoint, the worker slot frees up for other requests, and the
// cancellation is counted.
func TestCancelAbandonedFreesWorkerSlot(t *testing.T) {
	started := make(chan struct{})
	var fastRuns atomic.Int64
	reg := experiments.NewRegistry(
		spinningArtifact("spinner", started),
		experiments.Artifact{Name: "fast", Ref: "-", Desc: "-",
			Run: func(rc experiments.RunCtx, o experiments.Opts) (any, string, error) {
				fastRuns.Add(1)
				return nil, "fast\n", nil
			}},
	)
	s := NewServer(Config{Registry: reg, Workers: 1, CancelAbandoned: true})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/artifacts/spinner", nil)
	errc := make(chan error, 1)
	go func() {
		_, err := ts.Client().Do(req)
		errc <- err
	}()
	<-started
	cancel() // client disconnects: the spinner was the only waiter
	if err := <-errc; err == nil {
		t.Fatal("cancelled request reported no error")
	}
	waitFor(t, "worker slot release", func() bool { return s.Metrics().InFlight.Load() == 0 })
	if got := s.Metrics().Cancellations.Load(); got == 0 {
		t.Error("cancellation not counted")
	}
	// The freed slot (Workers=1) serves the next request.
	code, body := get(t, ts, "/v1/artifacts/fast")
	if code != 200 || fastRuns.Load() != 1 {
		t.Fatalf("post-cancel request: code %d body %q runs %d", code, body, fastRuns.Load())
	}
	// Nothing was cached for the cancelled spinner.
	if _, hit := s.cache.Get(s.opts.CacheKey("spinner")); hit {
		t.Error("cancelled run landed in the cache")
	}
}

// TestCancelAbandonedKeepsSharedFlight: a flight with a second waiter
// survives the first waiter's disconnect — only the *last* waiter
// leaving cancels it.
func TestCancelAbandonedKeepsSharedFlight(t *testing.T) {
	g := newFlightGroup(context.Background(), true)
	release := make(chan struct{})
	var cancelled atomic.Bool
	fn := func(fctx context.Context) (experiments.Result, error) {
		select {
		case <-release:
			return experiments.Result{Name: "landed"}, nil
		case <-fctx.Done():
			cancelled.Store(true)
			return experiments.Result{}, fctx.Err()
		}
	}

	ctx1, cancel1 := context.WithCancel(context.Background())
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	done1 := make(chan error, 1)
	done2 := make(chan experiments.Result, 1)
	go func() {
		_, _, err := g.Do(ctx1, "k", fn)
		done1 <- err
	}()
	waitFor(t, "flight creation", func() bool {
		g.mu.Lock()
		defer g.mu.Unlock()
		return len(g.flights) == 1
	})
	go func() {
		res, _, _ := g.Do(ctx2, "k", nil) // joins; fn unused
		done2 <- res
	}()
	waitFor(t, "second waiter", func() bool {
		g.mu.Lock()
		defer g.mu.Unlock()
		return g.flights["k"] != nil && g.flights["k"].waiters == 2
	})
	cancel1()
	if err := <-done1; err != context.Canceled {
		t.Fatalf("first waiter got %v", err)
	}
	// The flight must still be flying for waiter 2.
	if cancelled.Load() {
		t.Fatal("flight cancelled while a waiter remained")
	}
	close(release)
	if res := <-done2; res.Name != "landed" {
		t.Fatalf("surviving waiter got %q, want landed", res.Name)
	}

	// Now a fresh flight with a single waiter: leaving cancels it.
	var cancelled2 atomic.Bool
	ctx3, cancel3 := context.WithCancel(context.Background())
	done3 := make(chan error, 1)
	go func() {
		_, _, err := g.Do(ctx3, "k2", func(fctx context.Context) (experiments.Result, error) {
			<-fctx.Done()
			cancelled2.Store(true)
			return experiments.Result{}, fctx.Err()
		})
		done3 <- err
	}()
	waitFor(t, "third flight", func() bool {
		g.mu.Lock()
		defer g.mu.Unlock()
		return len(g.flights) == 1
	})
	cancel3()
	<-done3
	waitFor(t, "flight cancellation", cancelled2.Load)
}

// TestJoinAfterAbandonLeadsFreshFlight: a caller arriving after the
// last waiter abandoned (and thereby cancelled) a still-unwinding
// flight must not inherit the spurious cancellation — it waits the
// corpse out and leads a fresh flight of its own.
func TestJoinAfterAbandonLeadsFreshFlight(t *testing.T) {
	g := newFlightGroup(context.Background(), true)
	unwind := make(chan struct{})
	fn := func(fctx context.Context) (experiments.Result, error) {
		<-fctx.Done()
		<-unwind // hold the cancelled flight in the map
		return experiments.Result{}, fctx.Err()
	}

	ctx1, cancel1 := context.WithCancel(context.Background())
	done1 := make(chan error, 1)
	go func() {
		_, _, err := g.Do(ctx1, "k", fn)
		done1 <- err
	}()
	waitFor(t, "flight creation", func() bool {
		g.mu.Lock()
		defer g.mu.Unlock()
		return len(g.flights) == 1
	})
	cancel1()
	<-done1 // sole waiter left; flight now abandoned but still in the map
	g.mu.Lock()
	abandoned := g.flights["k"] != nil && g.flights["k"].abandoned
	g.mu.Unlock()
	if !abandoned {
		t.Fatal("flight not marked abandoned while unwinding")
	}

	// A live caller for the same key must get a fresh, uncancelled run.
	done2 := make(chan experiments.Result, 1)
	go func() {
		res, _, err := g.Do(context.Background(), "k", func(context.Context) (experiments.Result, error) {
			return experiments.Result{Name: "fresh"}, nil
		})
		if err != nil {
			t.Errorf("post-abandon caller got %v", err)
		}
		done2 <- res
	}()
	time.Sleep(10 * time.Millisecond) // let it reach the corpse-wait
	close(unwind)
	if res := <-done2; res.Name != "fresh" {
		t.Fatalf("post-abandon caller got %q, want a fresh flight", res.Name)
	}
}

// TestCloseCancelsInFlightRuns: server shutdown cancels simulations
// regardless of the abandonment policy, and the still-connected client
// is told rather than silently dropped.
func TestCloseCancelsInFlightRuns(t *testing.T) {
	started := make(chan struct{})
	reg := experiments.NewRegistry(spinningArtifact("spinner", started))
	s := NewServer(Config{Registry: reg, Workers: 1}) // default: no CancelAbandoned
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	codec := make(chan int, 1)
	go func() {
		code, _ := tryGet(ts, "/v1/artifacts/spinner")
		codec <- code
	}()
	<-started
	s.Close()
	select {
	case code := <-codec:
		if code != http.StatusServiceUnavailable {
			t.Errorf("shutdown-cancelled request got %d, want 503", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("request did not return after Close")
	}
	waitFor(t, "worker slot release", func() bool { return s.Metrics().InFlight.Load() == 0 })
}

// TestRunStreamProgress: ?progress=1 interleaves progress lines with
// result lines; the result lines are unchanged and in catalog order.
func TestRunStreamProgress(t *testing.T) {
	ticky := experiments.Artifact{
		Name: "ticky", Ref: "-", Desc: "-",
		Run: func(rc experiments.RunCtx, o experiments.Opts) (any, string, error) {
			for i := 0; i < 3; i++ {
				if err := rc.Step("ticking", i, 3); err != nil {
					return nil, "", err
				}
			}
			return nil, "ticky done\n", nil
		},
	}
	s := NewServer(Config{Registry: experiments.NewRegistry(ticky)})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/v1/run?sel=all&progress=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var progressLines, resultLines int
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.Contains(line, `"progress"`) {
			progressLines++
			if !strings.Contains(line, `"artifact":"ticky"`) || !strings.Contains(line, `"stage":"ticking"`) {
				t.Errorf("progress line missing attribution: %s", line)
			}
		} else {
			resultLines++
			if !strings.Contains(line, "ticky done") {
				t.Errorf("unexpected result line: %s", line)
			}
		}
	}
	if progressLines == 0 {
		t.Error("no progress lines on a ?progress=1 stream")
	}
	if resultLines != 1 {
		t.Errorf("got %d result lines, want 1", resultLines)
	}

	// Without ?progress the same stream carries no progress envelope,
	// so the protocol is byte-stable for existing clients (the run is
	// cached now, but cached streams must stay clean too).
	_, body := get(t, ts, "/v1/run?sel=all")
	if strings.Contains(string(body), "progress") {
		t.Errorf("progress leaked into a plain stream:\n%s", body)
	}
	if code, _ := get(t, ts, "/v1/run?sel=all&progress=2"); code != http.StatusBadRequest {
		t.Error("bad progress value accepted")
	}
}

// TestHealthzDegradedOnFullQueue: /healthz flips to 503 once the job
// queue has been full longer than one poll interval, and recovers when
// the queue drains.
func TestHealthzDegradedOnFullQueue(t *testing.T) {
	release := make(chan struct{})
	blocked := experiments.Artifact{
		Name: "blocked", Ref: "-", Desc: "-",
		Run: func(rc experiments.RunCtx, o experiments.Opts) (any, string, error) {
			<-release
			return nil, "done\n", nil
		},
	}
	s := NewServer(Config{
		Registry:   experiments.NewRegistry(blocked),
		Workers:    1,
		QueueDepth: 1,
		HealthPoll: 20 * time.Millisecond,
		Timeout:    10 * time.Second,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, body := get(t, ts, "/healthz"); code != 200 || string(body) != "ok\n" {
		t.Fatalf("idle healthz: %d %q", code, body)
	}
	go tryGet(ts, "/v1/artifacts/blocked") // fills the 1-deep queue
	waitFor(t, "queue to fill", func() bool { return s.Metrics().Queued.Load() == 1 })
	waitFor(t, "degradation after one poll interval", func() bool {
		code, _ := get(t, ts, "/healthz")
		return code == http.StatusServiceUnavailable
	})
	if _, body := get(t, ts, "/healthz"); !strings.Contains(string(body), "degraded") {
		t.Errorf("degraded healthz body %q", body)
	}
	close(release)
	waitFor(t, "queue to drain", func() bool { return s.Metrics().Queued.Load() == 0 })
	if code, body := get(t, ts, "/healthz"); code != 200 {
		t.Errorf("post-drain healthz: %d %q", code, body)
	}
	// The new counters are exported.
	_, metrics := get(t, ts, "/metrics")
	for _, want := range []string{"leakyfed_cancellations_total", "leakyfed_queue_capacity 1", "leakyfed_queue_depth"} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}
}

// TestAbandonedStreamStillWarmsCacheByDefault: without CancelAbandoned
// a disconnected /v1/run stream keeps simulating and fills the cache —
// the historical contract that timed-out requests rely on.
func TestAbandonedStreamStillWarmsCacheByDefault(t *testing.T) {
	started := make(chan struct{})
	var once sync.Once
	var runs atomic.Int64
	slow := experiments.Artifact{
		Name: "slowish", Ref: "-", Desc: "-",
		Run: func(rc experiments.RunCtx, o experiments.Opts) (any, string, error) {
			once.Do(func() { close(started) })
			runs.Add(1)
			time.Sleep(50 * time.Millisecond)
			return nil, "slowish done\n", nil
		},
	}
	s := NewServer(Config{Registry: experiments.NewRegistry(slow), Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/run?sel=all", nil)
	go ts.Client().Do(req)
	<-started
	cancel() // client gone; the run must finish anyway
	waitFor(t, "cache warmed by abandoned run", func() bool { return s.cache.Len() == 1 })
	if runs.Load() != 1 {
		t.Errorf("abandoned run executed %d times, want 1", runs.Load())
	}
}
