package serve

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/store"
)

// Metrics holds the daemon's operational counters and timing
// histograms. Counter fields are atomics updated lock-free on the hot
// path; histograms are obs.Histogram (also lock-free, and nil-safe, so
// a zero Metrics literal observes into the void instead of panicking).
// /metrics renders a point-in-time snapshot in Prometheus text
// exposition format, every family preceded by its # HELP and # TYPE
// lines.
type Metrics struct {
	Requests      atomic.Uint64 // HTTP requests accepted (all endpoints)
	CacheHits     atomic.Uint64 // artifact results served from the cache
	CacheMisses   atomic.Uint64 // artifact results that required a run
	Deduplicated  atomic.Uint64 // requests collapsed onto an in-flight run
	Rejected      atomic.Uint64 // requests refused with 429 (queue full)
	Timeouts      atomic.Uint64 // requests that gave up waiting (504)
	Errors        atomic.Uint64 // other 4xx/5xx responses
	Cancellations atomic.Uint64 // in-flight runs cancelled (abandoned or shutdown)
	Sweeps        atomic.Uint64 // POST /v1/sweeps requests accepted past validation
	ShardRequests atomic.Uint64 // POST /v1/shards requests accepted past validation
	Traces        atomic.Uint64 // traced requests (?trace=1) completed
	InFlight      atomic.Int64  // artifact runs executing right now
	Queued        atomic.Int64  // jobs admitted and waiting or running

	// RequestSeconds observes wall-clock request latency across every
	// endpoint; RunSeconds the duration of each simulation executed on a
	// worker slot; QueueWaitSeconds the time a simulation waited for a
	// free slot. NewServer initializes them; they are nil (and Observe a
	// no-op) on a hand-built Metrics.
	RequestSeconds   *obs.Histogram
	RunSeconds       *obs.Histogram
	QueueWaitSeconds *obs.Histogram
}

// initHistograms allocates the timing histograms; called by NewServer
// so handler code can observe unconditionally.
func (m *Metrics) initHistograms() {
	m.RequestSeconds = obs.NewHistogram(nil)
	m.RunSeconds = obs.NewHistogram(nil)
	m.QueueWaitSeconds = obs.NewHistogram(nil)
}

// promFamily is one metric family of the /metrics exposition: name,
// HELP text, TYPE, and a sample renderer.
type promFamily struct {
	name   string
	help   string
	typ    string
	render func(b *strings.Builder, name string)
}

// counterRow renders a single-sample counter or gauge family.
func counterRow(v int64) func(*strings.Builder, string) {
	return func(b *strings.Builder, name string) {
		fmt.Fprintf(b, "%s %d\n", name, v)
	}
}

// Render writes the counters and histograms in Prometheus text format,
// families sorted by name, each with # HELP and # TYPE lines. cacheLen
// is the current number of cached results (owned by the cache, not an
// atomic here); queueCap is the configured job-queue bound, exported so
// operators can alert on leakyfed_queue_depth / leakyfed_queue_capacity
// saturation. st and fl are snapshots of the persistent store's and
// fleet coordinator's own counters (both types report zeros for their
// nil owners, so the families render unconditionally and scrapes stay
// schema-stable whether or not -cache-dir / -fleet are configured).
func (m *Metrics) Render(cacheLen, queueCap int, st store.Stats, fl fleet.Stats) string {
	families := []promFamily{
		{"leakyfed_requests_total", "HTTP requests accepted, all endpoints.", "counter", counterRow(int64(m.Requests.Load()))},
		{"leakyfed_cache_hits_total", "Results served from the deterministic result cache.", "counter", counterRow(int64(m.CacheHits.Load()))},
		{"leakyfed_cache_misses_total", "Results that required running a simulation.", "counter", counterRow(int64(m.CacheMisses.Load()))},
		{"leakyfed_deduplicated_total", "Requests collapsed onto another caller's in-flight run.", "counter", counterRow(int64(m.Deduplicated.Load()))},
		{"leakyfed_rejected_total", "Requests refused with 429 because the job queue was full.", "counter", counterRow(int64(m.Rejected.Load()))},
		{"leakyfed_timeouts_total", "Requests that gave up waiting for a result (504).", "counter", counterRow(int64(m.Timeouts.Load()))},
		{"leakyfed_errors_total", "Other 4xx/5xx responses.", "counter", counterRow(int64(m.Errors.Load()))},
		{"leakyfed_cancellations_total", "In-flight runs cancelled by abandonment or shutdown.", "counter", counterRow(int64(m.Cancellations.Load()))},
		{"leakyfed_sweeps_total", "POST /v1/sweeps requests accepted past validation.", "counter", counterRow(int64(m.Sweeps.Load()))},
		{"leakyfed_traces_total", "Traced requests (?trace=1) completed and retained.", "counter", counterRow(int64(m.Traces.Load()))},
		{"leakyfed_inflight_runs", "Simulations executing on a worker slot right now.", "gauge", counterRow(m.InFlight.Load())},
		{"leakyfed_queue_depth", "Jobs admitted and waiting or running.", "gauge", counterRow(m.Queued.Load())},
		{"leakyfed_queue_capacity", "Configured job-queue bound.", "gauge", counterRow(int64(queueCap))},
		{"leakyfed_cached_results", "Results currently held by the LRU cache.", "gauge", counterRow(int64(cacheLen))},
		{"leakyfed_shards_total", "POST /v1/shards requests accepted past validation.", "counter", counterRow(int64(m.ShardRequests.Load()))},
		{"leakyfed_store_hits_total", "Results served from the persistent on-disk store.", "counter", counterRow(int64(st.Hits))},
		{"leakyfed_store_misses_total", "Store probes that found no (usable) entry.", "counter", counterRow(int64(st.Misses))},
		{"leakyfed_store_puts_total", "Results persisted into the on-disk store.", "counter", counterRow(int64(st.Puts))},
		{"leakyfed_store_put_errors_total", "Store writes that failed (persistence degraded, serving unaffected).", "counter", counterRow(int64(st.PutErrors))},
		{"leakyfed_store_quarantined_total", "Corrupt or alien store entries moved to quarantine.", "counter", counterRow(int64(st.Quarantined))},
		{"leakyfed_store_bytes", "Bytes currently held by the on-disk store.", "gauge", counterRow(st.Bytes)},
		{"leakyfed_fleet_scatters_total", "Sweep shards scattered to fleet workers.", "counter", counterRow(int64(fl.Scatters))},
		{"leakyfed_fleet_merged_rows_total", "Worker rows merged into sweep reports.", "counter", counterRow(int64(fl.MergedRows))},
		{"leakyfed_fleet_worker_failures_total", "Fleet workers marked dead after a scatter failure.", "counter", counterRow(int64(fl.WorkerFailures))},
		{"leakyfed_fleet_rehashes_total", "Scatter rounds re-hashed over surviving workers.", "counter", counterRow(int64(fl.Rehashes))},
		{"leakyfed_fleet_workers", "Configured fleet size (0 when not a coordinator).", "gauge", counterRow(int64(fl.Workers))},
		{"leakyfed_fleet_live_workers", "Fleet workers not marked dead.", "gauge", counterRow(int64(fl.LiveWorkers))},
		{"leakyfed_request_seconds", "Wall-clock HTTP request latency.", "histogram", m.RequestSeconds.RenderProm},
		{"leakyfed_run_seconds", "Duration of each simulation executed on a worker slot.", "histogram", m.RunSeconds.RenderProm},
		{"leakyfed_queue_wait_seconds", "Time a simulation waited for a free worker slot.", "histogram", m.QueueWaitSeconds.RenderProm},
	}
	sort.Slice(families, func(i, j int) bool { return families[i].name < families[j].name })
	var b strings.Builder
	for _, f := range families {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		f.render(&b, f.name)
	}
	return b.String()
}
