package serve

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// Metrics holds the daemon's operational counters. All fields are
// atomics: handlers update them lock-free on the hot path and /metrics
// renders a point-in-time snapshot in Prometheus text exposition format.
type Metrics struct {
	Requests      atomic.Uint64 // HTTP requests accepted (all endpoints)
	CacheHits     atomic.Uint64 // artifact results served from the cache
	CacheMisses   atomic.Uint64 // artifact results that required a run
	Deduplicated  atomic.Uint64 // requests collapsed onto an in-flight run
	Rejected      atomic.Uint64 // requests refused with 429 (queue full)
	Timeouts      atomic.Uint64 // requests that gave up waiting (504)
	Errors        atomic.Uint64 // other 4xx/5xx responses
	Cancellations atomic.Uint64 // in-flight runs cancelled (abandoned or shutdown)
	Sweeps        atomic.Uint64 // POST /v1/sweeps requests accepted past validation
	InFlight      atomic.Int64  // artifact runs executing right now
	Queued        atomic.Int64  // jobs admitted and waiting or running
}

// Render writes the counters in Prometheus text format. cacheLen is the
// current number of cached results (owned by the cache, not an atomic
// here); queueCap is the configured job-queue bound, exported so
// operators can alert on leakyfed_queue_depth / leakyfed_queue_capacity
// saturation.
func (m *Metrics) Render(cacheLen, queueCap int) string {
	rows := map[string]int64{
		"leakyfed_requests_total":      int64(m.Requests.Load()),
		"leakyfed_cache_hits_total":    int64(m.CacheHits.Load()),
		"leakyfed_cache_misses_total":  int64(m.CacheMisses.Load()),
		"leakyfed_deduplicated_total":  int64(m.Deduplicated.Load()),
		"leakyfed_rejected_total":      int64(m.Rejected.Load()),
		"leakyfed_timeouts_total":      int64(m.Timeouts.Load()),
		"leakyfed_errors_total":        int64(m.Errors.Load()),
		"leakyfed_cancellations_total": int64(m.Cancellations.Load()),
		"leakyfed_sweeps_total":        int64(m.Sweeps.Load()),
		"leakyfed_inflight_runs":       m.InFlight.Load(),
		"leakyfed_queue_depth":         m.Queued.Load(),
		"leakyfed_queue_capacity":      int64(queueCap),
		"leakyfed_cached_results":      int64(cacheLen),
	}
	names := make([]string, 0, len(rows))
	for n := range rows {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		fmt.Fprintf(&b, "%s %d\n", n, rows[n])
	}
	return b.String()
}
