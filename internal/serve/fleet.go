package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/spec"
	"repro/internal/sweep"
)

// fleetSweep is the coordinator branch of POST /v1/sweeps: scatter the
// expanded shard across the fleet's workers, stream the merged rows in
// canonical enumeration order (re-ordering the arrival-order delivery
// on top of an ordered-prefix buffer, exactly as sweep.RunSpecs does
// for its own workers), and aggregate the final report locally. Rows
// are pure functions of their specs, so the report is byte-identical
// to the single-node run whatever the fleet did to produce it.
func (s *Server) fleetSweep(ctx context.Context, f sweep.Filter, so sweep.Options, specs []spec.ChannelSpec, emit func(sweep.Row)) sweep.Report {
	fctx, span := obs.Start(ctx, "fleet.sweep",
		obs.Int("specs", len(specs)), obs.Int("workers", len(s.fleet.Workers())))
	defer span.End()
	// The coordinator's onRow callback runs serially (the coordinator
	// holds its merge lock across it), so the ordered-prefix state needs
	// no lock of its own.
	rowBuf := make([]sweep.Row, len(specs))
	done := make([]bool, len(specs))
	next := 0
	rows := s.fleet.Sweep(fctx, specs, so.Bits, func(i int, row sweep.Row) {
		if emit == nil {
			return
		}
		rowBuf[i], done[i] = row, true
		for next < len(specs) && done[next] {
			emit(rowBuf[next])
			next++
		}
	})
	_, mspan := obs.Start(fctx, "fleet.merge", obs.Int("rows", len(rows)))
	report := sweep.NewReport(f, so, rows)
	mspan.End()
	return report
}

// handleShards executes POST /v1/shards, the fleet-internal worker side
// of a scattered sweep: an explicit list of already-expanded specs
// (seeds split by the coordinator) plus the message length, answered
// with an NDJSON stream of indexed rows. Each spec runs through the
// same layered cache / singleflight path as every other endpoint, so a
// worker whose -cache-dir is warm serves its whole shard with zero
// simulations. Admission mirrors /v1/sweeps: a shard needing any
// simulation is one job against the queue; a fully cached shard
// bypasses it (and 429 tells the coordinator to back off and retry).
func (s *Server) handleShards(w http.ResponseWriter, r *http.Request) {
	// Shards carry the expanded spec list inline; at ~200 bytes per
	// spec a 1 MiB bound comfortably fits the full enumerable space.
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	var req fleet.ShardRequest
	if err := dec.Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("bad request body: %v", err))
		return
	}
	if req.Bits <= 0 || req.Bits > maxBits {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("bits=%d out of range (want 1..%d)", req.Bits, maxBits))
		return
	}
	specs := make([]spec.ChannelSpec, len(req.Specs))
	for i, is := range req.Specs {
		cs := is.Spec.Normalize()
		if err := cs.Validate(); err != nil {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("spec %d: %v", is.Index, err))
			return
		}
		specs[i] = cs
	}
	s.metrics.ShardRequests.Add(1)

	probed, missing := s.probeSpecs(r.Context(), specs, req.Bits)
	if missing > 0 {
		if !s.admit(1) {
			s.fail(w, http.StatusTooManyRequests, fmt.Errorf("%d specs need simulation, queue full", missing))
			return
		}
		defer s.release(1)
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	sw := &streamWriter{enc: json.NewEncoder(w), flusher: flusher}
	defer sw.close()

	// A coordinator that disconnects mid-shard follows the server's
	// abandonment policy, like any other streaming client: by default
	// the shard keeps simulating into the cache (the re-scatter after a
	// coordinator restart then finds it warm).
	runCtx := s.lifecycle
	if s.cancelAbandoned {
		runCtx = r.Context()
	}
	// RunSpecs builds rows exactly as a single-node sweep would (same
	// Row construction, same worker pool, same per-spec spans) and
	// emits them in slice order, so the k-th emission is req.Specs[k].
	k := 0
	so := sweep.Options{Bits: req.Bits, Workers: s.workers}
	sweep.RunSpecs(runCtx, sweep.Filter{}, so, specs, s.probedRun(probed), func(row sweep.Row) {
		sw.writeLine(fleet.IndexedRow{Index: req.Specs[k].Index, Row: row})
		k++
		sw.flush()
	})
}

// Precompute materializes the filter's shard of the enumerable scenario
// space into the persistent store ahead of traffic: expand, run every
// spec through the layered cache path (already-stored specs cost one
// disk read; the rest simulate and write through), and return the
// aggregate report. After it returns, a cold-LRU daemon — or a fleet
// worker owning any slice of the shard — serves the whole filter from
// the store with zero simulations. calib and maxp follow the sweep
// scale-override semantics (0 keeps spec defaults).
func (s *Server) Precompute(ctx context.Context, filter string, calib, maxp int) (sweep.Report, error) {
	if s.store == nil {
		return sweep.Report{}, errors.New("serve: precompute requires a persistent store (-cache-dir)")
	}
	f, err := sweep.ParseFilter(filter)
	if err != nil {
		return sweep.Report{}, err
	}
	o := s.opts
	so := sweep.Options{Bits: o.Bits, Seed: o.Seed, CalibBits: calib, MaxP: maxp, Workers: s.workers}
	specs, err := sweep.Expand(f, so)
	if err != nil {
		return sweep.Report{}, err
	}
	pctx, span := obs.Start(ctx, "precompute",
		obs.String("filter", filter), obs.Int("specs", len(specs)))
	defer span.End()
	probed, _ := s.probeSpecs(pctx, specs, so.Bits)
	return sweep.RunSpecs(pctx, f, so, specs, s.probedRun(probed), nil), nil
}
