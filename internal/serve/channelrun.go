package serve

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/channel"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/runctx"
	"repro/internal/spec"
	"repro/internal/store"
)

// ErrBadSpec reports a channel-run request whose spec or options failed
// validation (400). The request is rejected before touching the job
// queue or a simulation slot.
var ErrBadSpec = errors.New("serve: invalid channel spec")

// mergeOpts applies a request's overrides onto the server's base
// options — set fields win, unset fields fall back — and normalizes
// the result. Every endpoint that takes request options goes through
// this one merge, so /v1/channels/run and /v1/sweeps can never
// disagree on the effective options (and hence cache keys) for
// identical inputs.
func (s *Server) mergeOpts(o experiments.Opts) experiments.Opts {
	base := s.opts
	if o.Bits > 0 {
		base.Bits = o.Bits
	}
	if o.Seed != 0 {
		base.Seed = o.Seed
	}
	if o.Samples > 0 {
		base.Samples = o.Samples
	}
	return base.Normalize()
}

// retryBusy runs fn until it stops reporting ErrBusy. A caller that
// admits once per request (admitJob=false flights) can only see
// ErrBusy by joining a flight whose leader — a single-artifact or
// single-channel request — lost the admission race; such flights are
// short-lived, so back off briefly and retry until this caller leads
// one itself, or its context expires.
func retryBusy(ctx context.Context, fn func() (experiments.Result, error)) (experiments.Result, error) {
	for {
		res, err := fn()
		if err == nil || !errors.Is(err, ErrBusy) {
			return res, err
		}
		select {
		case <-ctx.Done():
			return experiments.Result{}, ctx.Err()
		case <-time.After(time.Millisecond):
		}
	}
}

// channelRunKey is the cache/singleflight identity of one channel run:
// the spec's own versioned canonical key plus the message length. The
// key is shared with the persistent store (and through it with
// leakysweep's -store and the fleet's consistent-hash ring), so it
// lives in internal/store as the single definition.
func channelRunKey(cs spec.ChannelSpec, bits int) string {
	return store.ChannelKey(cs, bits)
}

// ChannelRun transmits an alternating message of o.Bits bits over the
// scenario cs describes and returns the run as a Result (Data is the
// channel.Result, Rendered its table row). Like artifacts, channel
// runs are pure functions of (spec, bits): results are cached forever
// under the spec's canonical key, concurrent identical requests
// collapse into one simulation, and the simulation competes for the
// same job-queue and worker slots as the artifact endpoints.
//
// A spec that fails validation is rejected with ErrBadSpec before any
// slot is consumed. Unset o fields fall back to the server's base
// options — the same override semantics ?seed=/?bits= give the GET
// endpoints — and a spec without a seed takes the resulting effective
// seed.
func (s *Server) ChannelRun(ctx context.Context, cs spec.ChannelSpec, o experiments.Opts) (experiments.Result, error) {
	o = s.mergeOpts(o)
	if cs.Seed == 0 {
		cs.Seed = o.Seed
	}
	cs = cs.Normalize()
	if err := cs.Validate(); err != nil {
		return experiments.Result{}, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	if o.Bits > maxBits {
		return experiments.Result{}, fmt.Errorf("%w: bits=%d out of range (want 1..%d)", ErrBadSpec, o.Bits, maxBits)
	}
	return s.channelResult(ctx, cs, o.Bits, true)
}

// channelResult is the cache-aware core every channel execution goes
// through — single POST /v1/channels/run requests and sweep shards
// alike: a cache probe, then the flight group (keyed by the spec's
// canonical key plus the message length, so concurrent identical
// requests from either endpoint collapse into one simulation), then a
// cached run. With admitJob set the flight leader claims one job-queue
// slot per spec (the single-request admission unit); sweeps admit once
// per request instead and pass admitJob false. cs must be normalized
// and valid.
func (s *Server) channelResult(ctx context.Context, cs spec.ChannelSpec, bits int, admitJob bool) (experiments.Result, error) {
	key := channelRunKey(cs, bits)
	cctx, span := obs.Start(ctx, "compute", obs.String("cachekey", key))
	defer span.End()
	ctx = cctx
	if res, hit := s.cacheGet(ctx, key); hit {
		s.metrics.CacheHits.Add(1)
		span.SetAttr("cache", "hit")
		return res, nil
	}
	res, shared, err := s.flights.Do(ctx, key, func(fctx context.Context) (experiments.Result, error) {
		// Re-attach the leader's trace onto the lifecycle-derived flight
		// context, as compute does for artifacts.
		if sp := obs.SpanFrom(ctx); sp != nil {
			fctx = obs.ContextWithSpan(fctx, sp)
		}
		if res, hit := s.cacheGet(fctx, key); hit {
			s.metrics.CacheHits.Add(1)
			span.SetAttr("cache", "hit")
			return res, nil
		}
		if admitJob {
			if !s.admit(1) {
				return experiments.Result{}, ErrBusy
			}
			defer s.release(1)
		}
		res, err := s.runChannel(fctx, cs, bits)
		if err != nil {
			return experiments.Result{}, err
		}
		s.cacheAdd(fctx, key, res)
		return res, nil
	})
	if shared && err == nil {
		s.metrics.Deduplicated.Add(1)
		span.SetAttr("cache", "dedup")
	}
	return res, err
}

// runChannel executes one channel transmission on a simulation slot.
// Mirroring run, a cancelled transmission unwinds at its next per-bit
// checkpoint, returns an error, and caches nothing.
func (s *Server) runChannel(ctx context.Context, cs spec.ChannelSpec, bits int) (experiments.Result, error) {
	wctx, qspan := obs.Start(ctx, "queue.wait", obs.String("spec", cs.String()))
	waitStart := time.Now()
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		qspan.End()
		s.metrics.QueueWaitSeconds.Observe(time.Since(waitStart).Seconds())
		s.metrics.Cancellations.Add(1)
		return experiments.Result{}, ctx.Err()
	}
	qspan.End()
	s.metrics.QueueWaitSeconds.Observe(time.Since(waitStart).Seconds())
	s.metrics.InFlight.Add(1)
	runStart := time.Now()
	defer func() {
		s.metrics.RunSeconds.Observe(time.Since(runStart).Seconds())
		s.metrics.InFlight.Add(-1)
		<-s.sem
	}()
	s.metrics.CacheMisses.Add(1)
	rctx, rspan := obs.Start(wctx, "run",
		obs.String("spec", cs.String()), obs.String("cache", "miss"))
	defer rspan.End()
	tres, err := cs.TransmitCtx(runctx.New(rctx, nil), channel.Alternating(bits))
	if err != nil {
		s.metrics.Cancellations.Add(1)
		return experiments.Result{}, err
	}
	// store.ChannelResult is the shared Result shape (Elapsed stays
	// zero: responses are pure functions of (spec, bits)), so the
	// daemon, leakysweep -store, and fleet workers persist identical
	// bytes for identical runs.
	return store.ChannelResult(cs, tres), nil
}
