package serve

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/channel"
	"repro/internal/experiments"
	"repro/internal/runctx"
	"repro/internal/spec"
)

// ErrBadSpec reports a channel-run request whose spec or options failed
// validation (400). The request is rejected before touching the job
// queue or a simulation slot.
var ErrBadSpec = errors.New("serve: invalid channel spec")

// channelRunKey is the cache/singleflight identity of one channel run:
// the spec's own versioned canonical key plus the message length. The
// "chan-v1|" prefix keeps the namespace disjoint from the artifact
// keys' "v1|".
func channelRunKey(cs spec.ChannelSpec, bits int) string {
	return fmt.Sprintf("%s|bits=%d", cs.CacheKey(), bits)
}

// ChannelRun transmits an alternating message of o.Bits bits over the
// scenario cs describes and returns the run as a Result (Data is the
// channel.Result, Rendered its table row). Like artifacts, channel
// runs are pure functions of (spec, bits): results are cached forever
// under the spec's canonical key, concurrent identical requests
// collapse into one simulation, and the simulation competes for the
// same job-queue and worker slots as the artifact endpoints.
//
// A spec that fails validation is rejected with ErrBadSpec before any
// slot is consumed. Unset o fields fall back to the server's base
// options — the same override semantics ?seed=/?bits= give the GET
// endpoints — and a spec without a seed takes the resulting effective
// seed.
func (s *Server) ChannelRun(ctx context.Context, cs spec.ChannelSpec, o experiments.Opts) (experiments.Result, error) {
	base := s.opts
	if o.Bits > 0 {
		base.Bits = o.Bits
	}
	if o.Seed != 0 {
		base.Seed = o.Seed
	}
	if o.Samples > 0 {
		base.Samples = o.Samples
	}
	o = base.Normalize()
	if cs.Seed == 0 {
		cs.Seed = o.Seed
	}
	cs = cs.Normalize()
	if err := cs.Validate(); err != nil {
		return experiments.Result{}, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	if o.Bits > maxBits {
		return experiments.Result{}, fmt.Errorf("%w: bits=%d out of range (want 1..%d)", ErrBadSpec, o.Bits, maxBits)
	}
	key := channelRunKey(cs, o.Bits)
	if res, hit := s.cache.Get(key); hit {
		s.metrics.CacheHits.Add(1)
		return res, nil
	}
	res, shared, err := s.flights.Do(ctx, key, func(fctx context.Context) (experiments.Result, error) {
		if res, hit := s.cache.Get(key); hit {
			s.metrics.CacheHits.Add(1)
			return res, nil
		}
		if !s.admit(1) {
			return experiments.Result{}, ErrBusy
		}
		defer s.release(1)
		res, err := s.runChannel(fctx, cs, o.Bits)
		if err != nil {
			return experiments.Result{}, err
		}
		s.cache.Add(key, res)
		return res, nil
	})
	if shared && err == nil {
		s.metrics.Deduplicated.Add(1)
	}
	return res, err
}

// runChannel executes one channel transmission on a simulation slot.
// Mirroring run, a cancelled transmission unwinds at its next per-bit
// checkpoint, returns an error, and caches nothing.
func (s *Server) runChannel(ctx context.Context, cs spec.ChannelSpec, bits int) (experiments.Result, error) {
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		s.metrics.Cancellations.Add(1)
		return experiments.Result{}, ctx.Err()
	}
	s.metrics.InFlight.Add(1)
	defer func() {
		s.metrics.InFlight.Add(-1)
		<-s.sem
	}()
	s.metrics.CacheMisses.Add(1)
	tres, err := cs.TransmitCtx(runctx.New(ctx, nil), channel.Alternating(bits))
	if err != nil {
		s.metrics.Cancellations.Add(1)
		return experiments.Result{}, err
	}
	return experiments.Result{
		Name:     "channel",
		Ref:      "ChannelSpec",
		Desc:     cs.String(),
		Seed:     cs.Seed,
		Rendered: tres.String() + "\n",
		Data:     tres,
		// Elapsed stays zero: responses are pure functions of (spec, bits).
	}, nil
}
