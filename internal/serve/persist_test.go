package serve

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"repro/internal/experiments"
	"repro/internal/store"
	"repro/internal/sweep"
)

// newStore opens a store in a fresh temp dir (or an existing one when
// dir is non-empty, simulating a restart over the same -cache-dir).
func newStore(t *testing.T, dir string) (*store.Store, string) {
	t.Helper()
	if dir == "" {
		dir = t.TempDir()
	}
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return st, dir
}

// TestRestartServesIdenticalBytesFromStore is the kill-and-restart
// acceptance test: a brand-new server process (fresh LRU, fresh flight
// group, fresh registry closures) over the same -cache-dir serves
// byte-identical artifact, channel-run, and sweep responses with zero
// simulations — every result comes off disk.
func TestRestartServesIdenticalBytesFromStore(t *testing.T) {
	st1, dir := newStore(t, "")
	var runs1 atomic.Int64
	s1 := NewServer(Config{
		Registry: countingRegistry(&runs1, 0, "alpha", "beta"),
		Opts:     experiments.Opts{Bits: 16},
		Workers:  4,
		Store:    st1,
	})
	ts1 := httptest.NewServer(s1.Handler())

	const artifactPath = "/v1/artifacts/alpha?bits=24&seed=7"
	sweepBody := fmt.Sprintf(`{"filter": %q, "opts": {"seed": 3}}`, sweepFilter)

	code, art1 := get(t, ts1, artifactPath)
	if code != 200 {
		t.Fatalf("artifact: status %d: %s", code, art1)
	}
	code, sweep1 := postSweep(t, ts1, sweepBody)
	if code != 200 {
		t.Fatalf("sweep: status %d: %s", code, sweep1)
	}
	if runs1.Load() == 0 {
		t.Fatal("first process ran no simulations; test proves nothing")
	}
	if misses := s1.Metrics().CacheMisses.Load(); misses == 0 {
		t.Fatal("first process had no cache misses; test proves nothing")
	}
	ts1.Close() // kill the first process

	// Restart: everything in-memory is new; only the directory survives.
	st2, _ := newStore(t, dir)
	var runs2 atomic.Int64
	s2 := NewServer(Config{
		Registry: countingRegistry(&runs2, 0, "alpha", "beta"),
		Opts:     experiments.Opts{Bits: 16},
		Workers:  4,
		Store:    st2,
	})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()

	code, art2 := get(t, ts2, artifactPath)
	if code != 200 {
		t.Fatalf("artifact after restart: status %d: %s", code, art2)
	}
	if string(art2) != string(art1) {
		t.Errorf("artifact bytes differ after restart:\n%s\nvs\n%s", art2, art1)
	}
	code, sweep2 := postSweep(t, ts2, sweepBody)
	if code != 200 {
		t.Fatalf("sweep after restart: status %d: %s", code, sweep2)
	}
	if string(sweep2) != string(sweep1) {
		t.Errorf("sweep stream differs after restart:\n%s\nvs\n%s", sweep2, sweep1)
	}

	if n := runs2.Load(); n != 0 {
		t.Errorf("restarted process ran %d simulations, want 0", n)
	}
	if misses := s2.Metrics().CacheMisses.Load(); misses != 0 {
		t.Errorf("restarted process counted %d cache misses, want 0", misses)
	}
	if hits := st2.Stats().Hits; hits == 0 {
		t.Error("restarted store served no hits; responses did not come off disk")
	}
	// A second pass is all LRU (the store probes promoted every result),
	// so the disk is read exactly once per result per process lifetime.
	before := st2.Stats().Hits
	get(t, ts2, artifactPath)
	postSweep(t, ts2, sweepBody)
	if hits := st2.Stats().Hits; hits != before {
		t.Errorf("warm re-request read the store again (%d -> %d hits), want LRU only", before, hits)
	}
}

// TestPrecomputeMaterializesFilterShard is the -precompute acceptance
// test: precomputing a filter materializes exactly the filter's shard
// into the store, and a subsequent cold-LRU sweep over the same filter
// is 100% store hits with zero simulations.
func TestPrecomputeMaterializesFilterShard(t *testing.T) {
	st1, dir := newStore(t, "")
	s1 := NewServer(Config{Opts: experiments.Opts{Bits: 16}, Workers: 4, Store: st1})
	report, err := s1.Precompute(context.Background(), sweepFilter, 0, 0)
	if err != nil {
		t.Fatal(err)
	}

	f, err := sweep.ParseFilter(sweepFilter)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := sweep.Expand(f, sweep.Options{Bits: 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) == 0 {
		t.Fatal("filter expands to nothing; test proves nothing")
	}
	if report.Completed != len(specs) {
		t.Fatalf("precompute completed %d of %d specs", report.Completed, len(specs))
	}
	if n := st1.Len(); n != len(specs) {
		t.Errorf("store holds %d entries after precompute, want exactly the filter's %d", n, len(specs))
	}

	// A cold-LRU process over the same dir sweeps the filter without a
	// single store miss or simulation.
	st2, _ := newStore(t, dir)
	s2 := NewServer(Config{Opts: experiments.Opts{Bits: 16}, Workers: 4, Store: st2})
	ts := httptest.NewServer(s2.Handler())
	defer ts.Close()
	code, body := postSweep(t, ts, fmt.Sprintf(`{"filter": %q, "opts": {}}`, sweepFilter))
	if code != 200 {
		t.Fatalf("sweep: status %d: %s", code, body)
	}
	if misses := s2.Metrics().CacheMisses.Load(); misses != 0 {
		t.Errorf("cold-LRU sweep simulated %d specs, want 0", misses)
	}
	stats := st2.Stats()
	if stats.Misses != 0 {
		t.Errorf("cold-LRU sweep missed the store %d times, want 0", stats.Misses)
	}
	if stats.Hits != uint64(len(specs)) {
		t.Errorf("cold-LRU sweep hit the store %d times, want %d (100%% of the shard)", stats.Hits, len(specs))
	}

	// Precompute is idempotent: a second run over a warm store performs
	// zero simulations and writes nothing new.
	if _, err := s2.Precompute(context.Background(), sweepFilter, 0, 0); err != nil {
		t.Fatal(err)
	}
	if misses := s2.Metrics().CacheMisses.Load(); misses != 0 {
		t.Errorf("repeat precompute simulated %d specs, want 0", misses)
	}
	if puts := st2.Stats().Puts; puts != 0 {
		t.Errorf("repeat precompute wrote %d entries, want 0", puts)
	}
}

// TestPrecomputeRequiresStore pins the error contract: precompute
// without a -cache-dir has nowhere to materialize into.
func TestPrecomputeRequiresStore(t *testing.T) {
	s := NewServer(Config{})
	if _, err := s.Precompute(context.Background(), "", 0, 0); err == nil {
		t.Fatal("Precompute without a store succeeded, want error")
	}
}
