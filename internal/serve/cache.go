package serve

import (
	"container/list"
	"sync"

	"repro/internal/experiments"
)

// resultCache is a bounded LRU cache of artifact results. Because every
// artifact is a pure function of (name, normalized Opts) — the cache key
// — entries never expire and never need invalidation; the only reason to
// evict is the size bound. A hit returns the stored Result by value
// without touching the simulator.
type resultCache struct {
	mu      sync.Mutex
	max     int
	order   *list.List               // front = most recently used; values are *cacheEntry
	entries map[string]*list.Element // key -> element in order
}

type cacheEntry struct {
	key string
	res experiments.Result
}

// newResultCache builds a cache holding at most max results; max <= 0
// means an unbounded cache (the catalog is finite, so "unbounded" is
// still bounded by the number of distinct (name, Opts) pairs requested).
func newResultCache(max int) *resultCache {
	return &resultCache{
		max:     max,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
}

// Get returns the cached result for key, marking it most recently used.
func (c *resultCache) Get(key string) (experiments.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return experiments.Result{}, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// Add stores a result under key, evicting the least recently used entry
// when the bound is exceeded. Storing an existing key refreshes its
// recency but keeps the first value: results are deterministic, so the
// values are identical anyway.
func (c *resultCache) Add(key string, res experiments.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, res: res})
	if c.max > 0 && c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// Len returns the number of cached results.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
