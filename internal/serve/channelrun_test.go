package serve

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/channel"
	"repro/internal/cpu"
	"repro/internal/experiments"
	"repro/internal/spec"
)

func postChannelRun(t *testing.T, ts *httptest.Server, body string) (int, []byte) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/v1/channels/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/channels/run: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("reading response: %v", err)
	}
	return resp.StatusCode, buf.Bytes()
}

// fastSpec is a scenario cheap enough for unit tests: the fast non-MT
// eviction channel on the HT-less machine.
const fastSpec = `{"spec": {"model": "Xeon E-2288G", "seed": 5}, "opts": {"bits": 24}}`

func TestChannelRunCachesUnderSpecKey(t *testing.T) {
	s := NewServer(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code1, body1 := postChannelRun(t, ts, fastSpec)
	if code1 != 200 {
		t.Fatalf("first POST: status %d: %s", code1, body1)
	}
	// A different spelling of the same scenario: explicit defaults,
	// lower-case model, seed via opts instead of the spec.
	code2, body2 := postChannelRun(t, ts,
		`{"spec": {"model": "xeon e-2288G", "mechanism": "eviction", "threading": "nonmt", "sink": "timing", "d": 6, "p": 10, "calib": 40}, "opts": {"bits": 24, "seed": 5}}`)
	if code2 != 200 {
		t.Fatalf("second POST: status %d: %s", code2, body2)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("two spellings of one scenario returned different bytes:\n%s\nvs\n%s", body1, body2)
	}
	if misses := s.Metrics().CacheMisses.Load(); misses != 1 {
		t.Errorf("cache misses = %d, want 1 (second request must hit)", misses)
	}
	if hits := s.Metrics().CacheHits.Load(); hits != 1 {
		t.Errorf("cache hits = %d, want 1", hits)
	}

	// The served bytes match a direct spec transmission of the same
	// scenario: the daemon adds nothing nondeterministic.
	var res struct {
		Rendered string         `json:"rendered"`
		Seed     uint64         `json:"seed"`
		Data     channel.Result `json:"data"`
	}
	if err := json.Unmarshal(body1, &res); err != nil {
		t.Fatal(err)
	}
	direct, err := spec.ChannelSpec{Model: "Xeon E-2288G", Seed: 5}.Transmit(channel.Alternating(24))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rendered != direct.String()+"\n" {
		t.Errorf("served row %q != direct row %q", res.Rendered, direct.String())
	}
	if res.Data.RateKbps != direct.RateKbps || res.Data.Received != direct.Received {
		t.Errorf("served data %+v != direct %+v", res.Data, direct)
	}
	if res.Seed != 5 {
		t.Errorf("seed %d, want 5", res.Seed)
	}
}

func TestChannelRunUsesServerBaseOpts(t *testing.T) {
	// An empty opts object must inherit the daemon's -default-seed and
	// -default-bits, exactly like the GET endpoints do.
	s := NewServer(Config{Opts: experiments.Opts{Seed: 9, Bits: 16}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := postChannelRun(t, ts, `{"spec": {"model": "Xeon E-2288G"}, "opts": {}}`)
	if code != 200 {
		t.Fatalf("status %d: %s", code, body)
	}
	var res experiments.Result
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Seed != 9 {
		t.Errorf("seed %d, want the server default 9", res.Seed)
	}
	var data channel.Result
	blob, _ := json.Marshal(res.Data)
	if err := json.Unmarshal(blob, &data); err != nil {
		t.Fatal(err)
	}
	if len(data.Sent) != 16 {
		t.Errorf("message length %d, want the server default 16", len(data.Sent))
	}
	// A request seed still overrides the server default.
	code, body = postChannelRun(t, ts, `{"spec": {"model": "Xeon E-2288G"}, "opts": {"seed": 3}}`)
	if code != 200 {
		t.Fatalf("override status %d: %s", code, body)
	}
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Seed != 3 {
		t.Errorf("seed %d, want the request override 3", res.Seed)
	}
}

func TestChannelRunCollapsesConcurrentRequests(t *testing.T) {
	s := NewServer(Config{Workers: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 8
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, body := postChannelRun(t, ts, fastSpec)
			if code != 200 {
				t.Errorf("POST %d: status %d: %s", i, code, body)
			}
			bodies[i] = body
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("request %d returned different bytes", i)
		}
	}
	if misses := s.Metrics().CacheMisses.Load(); misses != 1 {
		t.Errorf("%d concurrent identical requests simulated %d times, want 1", n, misses)
	}
}

func TestChannelRunRejectsInvalidSpecBeforeAdmission(t *testing.T) {
	s := NewServer(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name, body, want string
	}{
		{"malformed JSON", `{"spec": `, "bad request body"},
		{"unknown field", `{"spec": {"mechanism": "eviction"}, "opts": {}, "wat": 1}`, "unknown field"},
		{"MT without SMT", `{"spec": {"model": "Xeon E-2288G", "threading": "mt"}}`, "hyper-threading is disabled"},
		{"power+SGX", `{"spec": {"model": "Xeon E-2174G", "sink": "power", "sgx": true}}`, "power+SGX"},
		{"unknown mechanism", `{"spec": {"mechanism": "acoustic"}}`, "unknown mechanism"},
		{"oversized bits", `{"spec": {}, "opts": {"bits": 1000000}}`, "out of range"},
		{"oversized p", `{"spec": {"p": 100000000}}`, "out of range"},
		{"oversized body", `{"spec": {"model": "` + strings.Repeat("x", 80<<10) + `"}}`, "bad request body"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := postChannelRun(t, ts, tc.body)
			if code != 400 {
				t.Fatalf("status %d, want 400; body: %s", code, body)
			}
			if !strings.Contains(string(body), tc.want) {
				t.Errorf("body %q does not mention %q", body, tc.want)
			}
		})
	}
	// None of the rejected requests may have consumed a queue or worker
	// slot, let alone run a simulation.
	if misses := s.Metrics().CacheMisses.Load(); misses != 0 {
		t.Errorf("invalid specs ran %d simulations", misses)
	}
	if q := s.Metrics().Queued.Load(); q != 0 {
		t.Errorf("queue depth %d after rejections, want 0", q)
	}
	if errs := s.Metrics().Errors.Load(); errs != uint64(len(cases)) {
		t.Errorf("error counter %d, want %d", errs, len(cases))
	}
}

func TestChannelsEnumeratesServableSpace(t *testing.T) {
	s := NewServer(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := get(t, ts, "/v1/channels?model=Gold+6226")
	if code != 200 {
		t.Fatalf("status %d: %s", code, body)
	}
	var entries []struct {
		Spec      spec.ChannelSpec `json:"spec"`
		Canonical string           `json:"canonical"`
	}
	if err := json.Unmarshal(body, &entries); err != nil {
		t.Fatal(err)
	}
	if want := len(spec.Enumerate(cpu.Gold6226())); len(entries) != want {
		t.Fatalf("%d channel entries, want %d", len(entries), want)
	}
	for _, e := range entries {
		if err := e.Spec.Validate(); err != nil {
			t.Errorf("served invalid spec %s: %v", e.Canonical, err)
		}
		if e.Canonical != e.Spec.String() {
			t.Errorf("canonical mismatch: %q vs %q", e.Canonical, e.Spec.String())
		}
	}

	if code, body := get(t, ts, "/v1/channels?model=486DX"); code != 400 {
		t.Errorf("unknown model: status %d: %s", code, body)
	}
}
