package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/cpu"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/runctx"
	"repro/internal/spec"
	"repro/internal/sweep"
)

// Handler returns the daemon's HTTP API:
//
//	GET /v1/artifacts                 catalog (name, ref, desc) as JSON
//	GET /v1/artifacts/{name}          one result; ?format=json|text,
//	                                  ?seed=, ?bits=, ?samples= override
//	                                  the server's base options
//	GET /v1/run?sel=table*            NDJSON result stream in catalog
//	                                  order; sel repeats or comma-lists
//	                                  patterns, default "all";
//	                                  ?progress=1 interleaves progress
//	                                  events between result lines
//	GET /v1/channels                  the valid covert-channel scenario
//	                                  space (canonical spec strings plus
//	                                  structured specs); ?filter= narrows
//	                                  with the sweep query grammar,
//	                                  ?model= remains as a model-only
//	                                  alias
//	POST /v1/channels/run             run one scenario: body is
//	                                  {"spec": {...}, "opts": {...}};
//	                                  invalid specs fail 400 up front,
//	                                  results cache under the spec key
//	POST /v1/sweeps                   run a whole shard of the space:
//	                                  body is {"filter": "...", "opts":
//	                                  {...}, "calib": n, "maxp": n};
//	                                  NDJSON rows in canonical order
//	                                  plus a final {"report": ...} line;
//	                                  on a fleet coordinator the rows
//	                                  are scattered across the workers
//	POST /v1/shards                   fleet-internal: run an explicit
//	                                  list of expanded specs; body is
//	                                  {"bits": n, "specs": [{"index":
//	                                  i, "spec": {...}}]}, response an
//	                                  NDJSON stream of indexed rows
//	GET /v1/advisories/{model}        defense ablation rendered as a
//	                                  security advisory for the model;
//	                                  ?format=json|text, ?seed=, ?bits=,
//	                                  ?calib=, ?maxp= scale the
//	                                  underlying defense-spanning sweep
//	GET /v1/traces                    index of retained request traces
//	                                  (?trace=1 runs), newest first
//	GET /v1/traces/{id}               one retained trace;
//	                                  ?format=json|ndjson|chrome — chrome
//	                                  is trace_event JSON loadable in
//	                                  about:tracing / Perfetto
//	GET /healthz                      liveness probe (503 once the job
//	                                  queue has been full for more than
//	                                  one poll interval)
//	GET /metrics                      Prometheus text counters and
//	                                  latency histograms
//
// Every request passes through one middleware that assigns a request id
// (echoed as X-Request-Id and used as the trace id under ?trace=1),
// observes wall-clock latency into leakyfed_request_seconds, and logs
// one structured line — level WARN with the response status for
// 4xx/5xx, INFO otherwise.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/artifacts", s.handleCatalog)
	mux.HandleFunc("GET /v1/artifacts/{name}", s.handleArtifact)
	mux.HandleFunc("GET /v1/run", s.handleRun)
	mux.HandleFunc("GET /v1/channels", s.handleChannels)
	mux.HandleFunc("POST /v1/channels/run", s.handleChannelRun)
	mux.HandleFunc("POST /v1/sweeps", s.handleSweeps)
	mux.HandleFunc("POST /v1/shards", s.handleShards)
	mux.HandleFunc("GET /v1/advisories/{model}", s.handleAdvisory)
	mux.HandleFunc("GET /v1/traces", s.handleTraces)
	mux.HandleFunc("GET /v1/traces/{id}", s.handleTrace)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.metrics.Requests.Add(1)
		id := fmt.Sprintf("req-%d", s.reqSeq.Add(1))
		r = r.WithContext(context.WithValue(r.Context(), requestIDKey{}, id))
		w.Header().Set("X-Request-Id", id)
		rec := &statusWriter{ResponseWriter: w}
		start := time.Now()
		mux.ServeHTTP(rec, r)
		elapsed := time.Since(start)
		s.metrics.RequestSeconds.Observe(elapsed.Seconds())
		code := rec.code
		if code == 0 {
			code = http.StatusOK
		}
		lvl, msg := slog.LevelInfo, "request"
		if code >= 400 {
			lvl, msg = slog.LevelWarn, "request failed"
		}
		s.logger.LogAttrs(r.Context(), lvl, msg,
			slog.String("id", id),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", code),
			slog.Duration("elapsed", elapsed))
	})
}

// requestIDKey carries the middleware-assigned request id through the
// request context, into log lines and trace ids.
type requestIDKey struct{}

// requestIDFrom returns the request id, or "" outside the middleware
// (direct Server method calls).
func requestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// statusWriter records the response status for the request log line. It
// forwards Flush so streaming handlers behind the middleware still see
// an http.Flusher.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.code == 0 {
		sw.code = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.code == 0 {
		sw.code = http.StatusOK
	}
	return sw.ResponseWriter.Write(b)
}

func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// catalogEntry is one /v1/artifacts row.
type catalogEntry struct {
	Name string `json:"name"`
	Ref  string `json:"ref"`
	Desc string `json:"desc"`
}

func (s *Server) handleCatalog(w http.ResponseWriter, r *http.Request) {
	arts := s.reg.Artifacts()
	entries := make([]catalogEntry, len(arts))
	for i, a := range arts {
		entries[i] = catalogEntry{Name: a.Name, Ref: a.Ref, Desc: a.Desc}
	}
	s.writeJSON(w, entries)
}

func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	o, err := s.requestOpts(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "json"
	}
	if format != "json" && format != "text" {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("unknown format %q (json|text)", format))
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
	defer cancel()
	res, err := s.Artifact(ctx, r.PathValue("name"), o)
	if err != nil {
		if errors.Is(err, context.Canceled) && r.Context().Err() == nil {
			// The run was cancelled server-side (shutdown), not by this
			// client going away: tell the still-connected caller.
			s.fail(w, http.StatusServiceUnavailable, errors.New("run cancelled (server shutting down)"))
			return
		}
		s.failErr(w, err)
		return
	}
	if format == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, res.Rendered)
		return
	}
	s.writeJSON(w, res)
}

// progressLine is the NDJSON envelope for one progress event; result
// lines are bare experiments.Result objects (no envelope), so a stream
// without ?progress=1 is byte-identical to the progress-free protocol.
type progressLine struct {
	Progress runctx.Event `json:"progress"`
}

// progressMinInterval throttles progress lines on a stream: inner loops
// tick per bit/sample, which is far finer than any client needs.
const progressMinInterval = 100 * time.Millisecond

// spanLine is the NDJSON envelope for one completed span on a ?trace=1
// stream; like progress lines, span lines are additive — stripping them
// yields the exact untraced stream.
type spanLine struct {
	Span obs.SpanData `json:"span"`
}

// traceLine is the stream's final trace summary under ?trace=1. The full
// span tree stays retrievable at /v1/traces/{id}.
type traceLine struct {
	Trace traceSummary `json:"trace"`
}

// traceSummary is one /v1/traces index row.
type traceSummary struct {
	ID    string    `json:"id"`
	Name  string    `json:"name"`
	Start time.Time `json:"start"`
	Spans int       `json:"spans"`
}

// boolParam parses a 0|1|true|false query parameter ("" is false).
func boolParam(v, name string) (bool, error) {
	switch v {
	case "", "0", "false":
		return false, nil
	case "1", "true":
		return true, nil
	}
	return false, fmt.Errorf("bad %s %q: want 0|1", name, v)
}

// startTrace opens a request trace named for the endpoint, keyed by the
// middleware's request id, and returns the run context carrying it. The
// returned finish interleaves completed spans into sw as they end, and
// must be called (deferred) to close the root span, write the final
// {"trace": ...} summary line, and retain the trace for /v1/traces.
func (s *Server) startTrace(ctx context.Context, runCtx context.Context, name string, sw *streamWriter, attrs ...obs.Attr) (context.Context, func()) {
	tr := obs.NewTrace(requestIDFrom(ctx), name)
	for _, a := range attrs {
		tr.Root().SetAttr(a.Key, a.Value)
	}
	tr.OnSpanEnd(func(sd obs.SpanData) {
		sw.writeLine(spanLine{Span: sd})
	})
	finish := func() {
		tr.Finish()
		sw.writeLine(traceLine{Trace: traceSummary{
			ID: tr.ID(), Name: tr.Name(), Start: tr.Start(), Spans: tr.Len(),
		}})
		s.traces.Add(tr)
		s.metrics.Traces.Add(1)
	}
	return tr.Context(runCtx), finish
}

// streamWriter serializes NDJSON result and progress lines onto one
// response. Progress ticks arrive from simulation goroutines that can
// outlive the request (detached flights), so every write is gated on
// closed, flipped under mu before the handler returns — after that,
// ticks are dropped rather than touching a dead ResponseWriter.
type streamWriter struct {
	mu      sync.Mutex
	enc     *json.Encoder
	flusher http.Flusher
	closed  bool
	last    time.Time // last progress line, for throttling
}

func (sw *streamWriter) writeResult(res experiments.Result) {
	sw.writeLine(res)
}

// writeLine encodes one NDJSON line of any shape (result rows, sweep
// rows, the sweep report envelope) under the same closed gate.
func (sw *streamWriter) writeLine(v any) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if sw.closed {
		return
	}
	sw.enc.Encode(v)
}

func (sw *streamWriter) writeProgress(ev runctx.Event) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if sw.closed || time.Since(sw.last) < progressMinInterval {
		return
	}
	sw.last = time.Now()
	sw.enc.Encode(progressLine{Progress: ev})
	if sw.flusher != nil {
		sw.flusher.Flush()
	}
}

func (sw *streamWriter) flush() {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if sw.closed {
		return
	}
	if sw.flusher != nil {
		sw.flusher.Flush()
	}
}

func (sw *streamWriter) close() {
	sw.mu.Lock()
	sw.closed = true
	sw.mu.Unlock()
}

// handleRun streams the selected artifacts as NDJSON in catalog order.
// Cached artifacts are served from the cache; the rest execute on the
// shared simulation slots via RunEmitCtx, each routed through the flight
// group so a stream never duplicates a simulation another stream or a
// single-artifact request already has in flight. Each line is flushed
// as soon as its catalog-order prefix is complete; with ?progress=1,
// throttled progress events are interleaved between result lines as the
// simulations tick. A stream needing any simulation counts as one job
// against the queue, so overload pushes back with 429 while an idle
// server always accepts sel=all.
//
// Client disconnects follow the server's abandonment policy: by default
// the remaining simulations run to completion and warm the cache; with
// CancelAbandoned the stream's unshared flights are cancelled and its
// unstarted artifacts skipped, freeing the worker slots within one
// checkpoint. Server shutdown always cancels.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	o, err := s.requestOpts(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	q := r.URL.Query()
	progress, err := boolParam(q.Get("progress"), "progress")
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	traced, err := boolParam(q.Get("trace"), "trace")
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	var patterns []string
	for _, sel := range q["sel"] {
		patterns = append(patterns, strings.Split(sel, ",")...)
	}
	if len(patterns) == 0 {
		patterns = []string{"all"}
	}
	arts, err := s.reg.Select(patterns...)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}

	// Partition the selection: results already cached versus artifacts
	// that need a simulation.
	keys := make([]string, len(arts))
	results := make([]experiments.Result, len(arts))
	cached := make([]bool, len(arts))
	var missing []experiments.Artifact
	var missingIdx []int
	for i, a := range arts {
		keys[i] = o.CacheKey(a.Name)
		if res, hit := s.cacheGet(r.Context(), keys[i]); hit {
			s.metrics.CacheHits.Add(1)
			results[i], cached[i] = res, true
		} else {
			missing = append(missing, a)
			missingIdx = append(missingIdx, i)
		}
	}
	if len(missing) > 0 {
		if !s.admit(1) {
			s.fail(w, http.StatusTooManyRequests, fmt.Errorf("%d artifacts need simulation, queue full", len(missing)))
			return
		}
		defer s.release(1)
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	sw := &streamWriter{enc: json.NewEncoder(w), flusher: flusher}
	defer sw.close()

	// The stream's run context decides what a disconnect means. With
	// CancelAbandoned it is the request context: a disconnect skips
	// unstarted artifacts and abandons (thereby cancelling, if unshared)
	// the in-flight ones. Otherwise it is the server lifecycle: the
	// stream keeps simulating into the cache exactly as before, and only
	// Close stops it.
	runCtx := s.lifecycle
	if s.cancelAbandoned {
		runCtx = r.Context()
	}
	if traced {
		var finish func()
		runCtx, finish = s.startTrace(r.Context(), runCtx, "GET /v1/run", sw,
			obs.String("sel", strings.Join(patterns, ",")))
		defer finish()
	}
	var sink runctx.Sink
	if progress {
		// The sink is decoupled from the simulation by a bounded buffer:
		// a client draining its stream slowly loses progress lines, never
		// simulation throughput.
		nb, stop := runctx.NonBlocking(sw.writeProgress, 0)
		sink = nb
		defer stop()
	}

	next := 0 // next catalog-order index to emit
	emitReady := func(limit int) {
		for next <= limit {
			src := "miss"
			if cached[next] {
				src = "hit"
			}
			_, rsp := obs.Start(runCtx, "render",
				obs.String("artifact", arts[next].Name), obs.String("cache", src))
			sw.writeResult(results[next])
			rsp.End()
			next++
		}
		sw.flush()
	}
	// The cached prefix is available now — stream it before the first
	// simulation rather than after it.
	firstMissing := len(arts)
	if len(missingIdx) > 0 {
		firstMissing = missingIdx[0]
	}
	if firstMissing > 0 {
		emitReady(firstMissing - 1)
	}

	// Each missing artifact resolves through the flight group (which
	// runs it on a shared simulation slot, or joins a run already in
	// flight elsewhere); RunEmitCtx calls back in input order (== catalog
	// order), so the k-th emission is missing[k].
	wrapped := make([]experiments.Artifact, len(missing))
	for i, a := range missing {
		orig, key := a, keys[missingIdx[i]]
		a.Run = func(rc experiments.RunCtx, _ experiments.Opts) (any, string, error) {
			res, err := retryBusy(rc.Context(), func() (experiments.Result, error) {
				return s.compute(rc.Context(), key, orig, o, false, sink)
			})
			if err != nil {
				return nil, "", err
			}
			return res.Data, res.Rendered, nil
		}
		wrapped[i] = a
	}
	emitted := 0
	experiments.Runner{Opts: o, Workers: s.workers}.RunEmitCtx(
		runctx.New(runCtx, nil), wrapped, func(res experiments.Result) {
			res.Elapsed = 0 // determinism: the stream depends only on (sel, Opts)
			idx := missingIdx[emitted]
			emitted++
			results[idx] = res
			emitReady(idx)
		})
	if next < len(arts) {
		emitReady(len(arts) - 1)
	}
}

// channelEntry is one /v1/channels row: the canonical string form
// (directly usable as documentation or a cache-key body) plus the
// structured spec a client can POST back.
type channelEntry struct {
	Spec      spec.ChannelSpec `json:"spec"`
	Canonical string           `json:"canonical"`
}

// handleChannels enumerates the valid scenario space — the daemon's
// servable covert-channel surface. ?filter= narrows it with the same
// query grammar POST /v1/sweeps takes (a malformed filter is a 400
// before any enumeration); the historical model-only ?model= remains
// as an alias and composes with the filter.
func (s *Server) handleChannels(w http.ResponseWriter, r *http.Request) {
	f, err := sweep.ParseFilter(r.URL.Query().Get("filter"))
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	models := cpu.Models()
	if name := r.URL.Query().Get("model"); name != "" {
		m, err := spec.ChannelSpec{Model: name}.ResolveModel()
		if err != nil {
			s.fail(w, http.StatusBadRequest, err)
			return
		}
		models = []cpu.Model{m}
	}
	entries := []channelEntry{}
	for _, cs := range spec.Enumerate(models...) {
		if f.Match(cs) {
			entries = append(entries, channelEntry{Spec: cs, Canonical: cs.String()})
		}
	}
	s.writeJSON(w, entries)
}

// channelRunRequest is the POST /v1/channels/run body. Opts follows the
// artifact endpoints' semantics: bits scales the message, seed is the
// fallback when the spec leaves its own seed unset, samples is ignored.
type channelRunRequest struct {
	Spec spec.ChannelSpec `json:"spec"`
	Opts experiments.Opts `json:"opts"`
}

// handleChannelRun runs one declared scenario through the same cache /
// singleflight / job-queue machinery as the artifact endpoints. A body
// that does not parse or a spec that fails validation is a 400 before
// any queue or worker slot is consumed.
func (s *Server) handleChannelRun(w http.ResponseWriter, r *http.Request) {
	// Any valid request body is tiny; bound the read so a streamed
	// giant body cannot balloon memory before validation rejects it.
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<10))
	dec.DisallowUnknownFields()
	var req channelRunRequest
	if err := dec.Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("bad request body: %v", err))
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
	defer cancel()
	res, err := s.ChannelRun(ctx, req.Spec, req.Opts)
	if err != nil {
		switch {
		case errors.Is(err, ErrBadSpec):
			s.fail(w, http.StatusBadRequest, err)
		case errors.Is(err, context.Canceled) && r.Context().Err() == nil:
			s.fail(w, http.StatusServiceUnavailable, errors.New("run cancelled (server shutting down)"))
		default:
			s.failErr(w, err)
		}
		return
	}
	s.writeJSON(w, res)
}

// handleTraces lists the retained request traces, newest first.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	list := s.traces.List()
	entries := make([]traceSummary, len(list))
	for i, tr := range list {
		entries[i] = traceSummary{ID: tr.ID(), Name: tr.Name(), Start: tr.Start(), Spans: tr.Len()}
	}
	s.writeJSON(w, entries)
}

// traceDetail is the ?format=json body of GET /v1/traces/{id}.
type traceDetail struct {
	ID    string         `json:"id"`
	Name  string         `json:"name"`
	Start time.Time      `json:"start"`
	Spans []obs.SpanData `json:"spans"`
}

// handleTrace serves one retained trace: the span tree as JSON
// (default), an NDJSON span stream, or Chrome trace_event JSON
// (?format=chrome) loadable directly in about:tracing or
// https://ui.perfetto.dev.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	tr, ok := s.traces.Get(id)
	if !ok {
		s.fail(w, http.StatusNotFound, fmt.Errorf("unknown trace %q (only recent ?trace=1 requests are retained)", id))
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		s.writeJSON(w, traceDetail{ID: tr.ID(), Name: tr.Name(), Start: tr.Start(), Spans: tr.Spans()})
	case "ndjson":
		w.Header().Set("Content-Type", "application/x-ndjson")
		obs.WriteNDJSON(w, tr)
	case "chrome":
		w.Header().Set("Content-Type", "application/json")
		obs.WriteChromeTrace(w, tr)
	default:
		s.fail(w, http.StatusBadRequest, fmt.Errorf("unknown format %q (json|ndjson|chrome)", format))
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if since := s.queueFull.Load(); since != 0 {
		if d := time.Since(time.Unix(0, since)); d > s.healthPoll {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, "degraded: job queue full for %s\n", d.Round(time.Millisecond))
			return
		}
	}
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, s.metrics.Render(s.cache.Len(), int(s.depth), s.store.Stats(), s.fleet.Stats()))
}

// requestOpts merges the server's base options with the request's
// ?seed=, ?bits=, ?samples= overrides.
func (s *Server) requestOpts(r *http.Request) (experiments.Opts, error) {
	o := s.opts
	q := r.URL.Query()
	if v := q.Get("seed"); v != "" {
		seed, err := strconv.ParseUint(v, 10, 64)
		if err != nil || seed == 0 {
			// Seed 0 means "unset" to Opts.Normalize; accepting it would
			// silently alias the seed=1 cache entry.
			return o, fmt.Errorf("bad seed %q: want an integer >= 1", v)
		}
		o.Seed = seed
	}
	if v := q.Get("bits"); v != "" {
		bits, err := strconv.Atoi(v)
		if err != nil || bits <= 0 || bits > maxBits {
			return o, fmt.Errorf("bad bits %q: want 1..%d", v, maxBits)
		}
		o.Bits = bits
	}
	if v := q.Get("samples"); v != "" {
		samples, err := strconv.Atoi(v)
		if err != nil || samples <= 0 || samples > maxSamples {
			return o, fmt.Errorf("bad samples %q: want 1..%d", v, maxSamples)
		}
		o.Samples = samples
	}
	return o, nil
}

// Scale caps for request parameters. With the default abandonment
// policy a simulation runs to completion once admitted (warming the
// cache for the next caller), so the caps bound the damage an abandoned
// max-scale request can do to ~10x the paper's scales; -cancel-abandoned
// tightens that further by freeing the slots the moment the last waiter
// leaves.
const (
	maxBits    = 2_000
	maxSamples = 1_000
)

func (s *Server) writeJSON(w http.ResponseWriter, v any) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(b, '\n'))
}

// failErr maps serving-layer errors to their HTTP statuses.
func (s *Server) failErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrNotFound):
		s.fail(w, http.StatusNotFound, err)
	case errors.Is(err, ErrBusy):
		s.fail(w, http.StatusTooManyRequests, err)
	case errors.Is(err, context.DeadlineExceeded):
		s.fail(w, http.StatusGatewayTimeout,
			errors.New("timed out waiting for result (it may still be cached)"))
	case errors.Is(err, context.Canceled):
		// The client went away; nobody is listening and the server did
		// nothing wrong, so this is neither an error nor a timeout.
	default:
		s.fail(w, http.StatusInternalServerError, err)
	}
}

// fail writes an error response, attributing it to the matching counter:
// 429s are backpressure, 504s are timeouts, the rest are errors.
func (s *Server) fail(w http.ResponseWriter, code int, err error) {
	switch code {
	case http.StatusTooManyRequests:
		s.metrics.Rejected.Add(1)
	case http.StatusGatewayTimeout:
		s.metrics.Timeouts.Add(1)
	default:
		s.metrics.Errors.Add(1)
	}
	http.Error(w, err.Error(), code)
}
