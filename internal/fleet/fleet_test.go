// Integration tests for the fleet live in an external package so they
// can boot real in-process serve.Server workers: serve imports fleet,
// so an internal test would be an import cycle.
package fleet_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/serve"
)

// fleetFilter is the cheap shard the fleet tests sweep: the plain
// non-MT timing eviction channels on every model (8 specs,
// milliseconds each at bits=16).
const fleetFilter = "mech=eviction,thread=nonmt,sink=timing,sgx=false"

// newWorker boots one in-process worker node.
func newWorker(t *testing.T) *httptest.Server {
	t.Helper()
	s := serve.NewServer(serve.Config{Opts: experiments.Opts{Bits: 16}, Workers: 4})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// newCoordinator boots a coordinator node over the worker URLs and
// returns its test server plus the coordinator for counter assertions.
func newCoordinator(t *testing.T, workers ...string) (*httptest.Server, *fleet.Coordinator) {
	t.Helper()
	c, err := fleet.New(workers, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := serve.NewServer(serve.Config{Opts: experiments.Opts{Bits: 16}, Workers: 4, Fleet: c})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts, c
}

func postSweep(t *testing.T, ts *httptest.Server, seed int) []byte {
	t.Helper()
	body := fmt.Sprintf(`{"filter": %q, "opts": {"seed": %d}}`, fleetFilter, seed)
	resp, err := ts.Client().Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/sweeps: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("reading sweep stream: %v", err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("POST /v1/sweeps: status %d: %s", resp.StatusCode, buf.Bytes())
	}
	return buf.Bytes()
}

// TestFleetSweepByteIdentity is the fleet acceptance test: a sweep
// scattered across two in-process workers streams an NDJSON response —
// every row, in canonical order, plus the final report — byte-identical
// to the single-node memoized run, at two different base seeds.
func TestFleetSweepByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a 3-node fleet and sweeps it twice")
	}
	single := serve.NewServer(serve.Config{Opts: experiments.Opts{Bits: 16}, Workers: 4})
	singleTS := httptest.NewServer(single.Handler())
	defer singleTS.Close()

	w1, w2 := newWorker(t), newWorker(t)
	coordTS, coord := newCoordinator(t, w1.URL, w2.URL)

	for _, seed := range []int{1, 2} {
		want := postSweep(t, singleTS, seed)
		got := postSweep(t, coordTS, seed)
		if !bytes.Equal(got, want) {
			t.Errorf("seed %d: fleet stream differs from single-node:\n%s\nvs\n%s", seed, got, want)
		}
	}
	st := coord.Stats()
	if st.Scatters == 0 || st.MergedRows == 0 {
		t.Errorf("coordinator stats show no fleet activity: %+v", st)
	}
	if st.WorkerFailures != 0 {
		t.Errorf("healthy fleet recorded %d worker failures", st.WorkerFailures)
	}
	// Consistent hashing should have spread the shard: with 8 specs and
	// 64 virtual nodes per worker, both workers own part of the space.
	if st.Workers != 2 || st.LiveWorkers != 2 {
		t.Errorf("want 2 live workers, got %+v", st)
	}
}

// truncatingWorker proxies a healthy worker but kills every shard
// response partway through the stream: it forwards at most one NDJSON
// line, then aborts the connection — a worker dying mid-sweep.
func truncatingWorker(t *testing.T, backend *httptest.Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		resp, err := backend.Client().Post(backend.URL+r.URL.Path, r.Header.Get("Content-Type"), r.Body)
		if err != nil {
			panic(http.ErrAbortHandler)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			w.WriteHeader(resp.StatusCode)
			return
		}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(nil, 1<<20)
		if sc.Scan() {
			w.Write(sc.Bytes())
			w.Write([]byte("\n"))
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
			}
		}
		panic(http.ErrAbortHandler) // die mid-stream
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestFleetSurvivesWorkerDeath kills one of two workers mid-sweep (it
// delivers at most one row per shard, then drops the connection) and
// asserts the merged stream is still byte-identical to the single-node
// run: the dead worker's unfinished specs re-hash to the survivor, and
// the rows it did deliver are kept.
func TestFleetSurvivesWorkerDeath(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a 3-node fleet with a dying worker")
	}
	single := serve.NewServer(serve.Config{Opts: experiments.Opts{Bits: 16}, Workers: 4})
	singleTS := httptest.NewServer(single.Handler())
	defer singleTS.Close()
	want := postSweep(t, singleTS, 1)

	healthy := newWorker(t)
	dying := truncatingWorker(t, newWorker(t))
	coordTS, coord := newCoordinator(t, healthy.URL, dying.URL)

	got := postSweep(t, coordTS, 1)
	if !bytes.Equal(got, want) {
		t.Errorf("stream with a dying worker differs from single-node:\n%s\nvs\n%s", got, want)
	}
	st := coord.Stats()
	if st.WorkerFailures != 1 {
		t.Errorf("worker failures = %d, want 1", st.WorkerFailures)
	}
	if st.Rehashes == 0 {
		t.Error("no re-hash rounds recorded; the dead worker's shard was never reassigned")
	}
	if st.LiveWorkers != 1 {
		t.Errorf("live workers = %d, want 1", st.LiveWorkers)
	}

	// The fleet stays serviceable afterwards: a repeat sweep re-hashes
	// everything to the survivor and still merges identically.
	if got := postSweep(t, coordTS, 1); !bytes.Equal(got, want) {
		t.Error("repeat sweep after worker death differs from single-node")
	}
}

// TestFleetNoLiveWorkers pins graceful degradation at the floor: with
// every worker dead the sweep still answers — every row carries Err and
// the report aggregates zero completed specs — rather than hanging or
// crashing the coordinator.
func TestFleetNoLiveWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a coordinator against a dead worker")
	}
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler)
	}))
	defer dead.Close()
	coordTS, coord := newCoordinator(t, dead.URL)

	body := postSweep(t, coordTS, 1)
	var report struct {
		Report *struct {
			Specs     int `json:"specs"`
			Completed int `json:"completed"`
		} `json:"report"`
	}
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(nil, 1<<20)
	var last []byte
	for sc.Scan() {
		last = append(last[:0], sc.Bytes()...)
	}
	if err := json.Unmarshal(last, &report); err != nil || report.Report == nil {
		t.Fatalf("no report line in degraded sweep: %s", body)
	}
	if report.Report.Completed != 0 || report.Report.Specs == 0 {
		t.Errorf("degraded report = %+v, want 0 completed of a non-empty shard", report.Report)
	}
	if st := coord.Stats(); st.LiveWorkers != 0 {
		t.Errorf("live workers = %d, want 0", st.LiveWorkers)
	}
}
