// Package fleet scales sweeps out: a coordinator that consistent-hashes
// spec cache keys across a fleet of leakyfed worker nodes, scatters
// sweep shards over HTTP, and merges the per-shard rows back into one
// report byte-identical to a single-node run.
//
// Determinism makes scatter/gather trivial to get right here: every row
// is a pure function of its spec (per-spec seeds are split before
// scattering, by the same sweep.Expand the single-node path uses), so
// it does not matter which worker runs a spec, whether a spec runs
// twice, or how shards interleave — the merged rows are the rows a
// single node would have produced. Consistent hashing is therefore not
// a correctness mechanism but a cache-locality one: the same spec
// always lands on the same worker, so each worker's LRU and on-disk
// store hold exactly its slice of the space and a re-sweep is all hits
// fleet-wide.
//
// Failure handling follows from the same property: when a worker dies
// mid-sweep (connection error, short stream, non-200), its unfinished
// specs are re-hashed across the survivors and re-scattered; rows it
// delivered before dying are kept. Only when no workers remain do the
// leftover rows carry an error.
package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/spec"
	"repro/internal/sweep"
)

// ShardPath is the worker endpoint the coordinator scatters shards to
// (POST, ShardRequest body, NDJSON IndexedRow response).
const ShardPath = "/v1/shards"

// ShardRequest is the scatter payload: an explicit list of specs (with
// their indices in the coordinator's canonical enumeration order) and
// the message length. Specs arrive fully expanded — seeds split,
// scale overrides applied — so a worker never re-derives them.
type ShardRequest struct {
	Bits  int           `json:"bits"`
	Specs []IndexedSpec `json:"specs"`
}

// IndexedSpec pairs a spec with its canonical-order index, which the
// worker echoes back so the coordinator can merge rows positionally.
type IndexedSpec struct {
	Index int              `json:"index"`
	Spec  spec.ChannelSpec `json:"spec"`
}

// IndexedRow is one NDJSON line of a worker's shard response.
type IndexedRow struct {
	Index int       `json:"index"`
	Row   sweep.Row `json:"row"`
}

// Stats is a point-in-time snapshot of a coordinator's counters,
// rendered into /metrics by the serving layer.
type Stats struct {
	Scatters       uint64 // shard RPCs issued
	MergedRows     uint64 // rows merged into reports
	WorkerFailures uint64 // workers marked dead (connection/stream/status failures)
	Rehashes       uint64 // scatter rounds re-run over survivors after a failure
	Workers        int    // configured fleet size
	LiveWorkers    int    // workers not yet marked dead
}

// Coordinator scatters sweep shards across a fixed set of worker base
// URLs. A worker that fails is marked dead for the coordinator's
// lifetime; its keyspace re-hashes to the survivors. All methods are
// safe for concurrent use; a nil *Coordinator means "no fleet" to the
// serving layer (Stats reports zeros).
type Coordinator struct {
	workers []string
	client  *http.Client

	mu   sync.Mutex
	dead map[string]bool

	scatters, mergedRows, failures, rehashes atomic.Uint64
}

// New builds a coordinator over the workers' base URLs (scheme://host
// [:port], no path). client nil means a default client with no overall
// timeout — shard lifetimes are governed by the sweep's context.
func New(workers []string, client *http.Client) (*Coordinator, error) {
	if len(workers) == 0 {
		return nil, fmt.Errorf("fleet: no workers")
	}
	if client == nil {
		client = &http.Client{}
	}
	seen := map[string]bool{}
	cleaned := make([]string, 0, len(workers))
	for _, w := range workers {
		w = strings.TrimRight(strings.TrimSpace(w), "/")
		u, err := url.Parse(w)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" || u.Path != "" {
			return nil, fmt.Errorf("fleet: bad worker URL %q (want http[s]://host[:port])", w)
		}
		if seen[w] {
			return nil, fmt.Errorf("fleet: duplicate worker %q", w)
		}
		seen[w] = true
		cleaned = append(cleaned, w)
	}
	return &Coordinator{workers: cleaned, client: client, dead: map[string]bool{}}, nil
}

// Workers returns the configured worker URLs.
func (c *Coordinator) Workers() []string { return append([]string(nil), c.workers...) }

// Stats returns a snapshot of the coordinator's counters; nil reports
// zeros so the serving layer can render fleet metrics unconditionally.
func (c *Coordinator) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	live := len(c.workers) - len(c.dead)
	c.mu.Unlock()
	return Stats{
		Scatters:       c.scatters.Load(),
		MergedRows:     c.mergedRows.Load(),
		WorkerFailures: c.failures.Load(),
		Rehashes:       c.rehashes.Load(),
		Workers:        len(c.workers),
		LiveWorkers:    live,
	}
}

// live returns the workers not marked dead, in configuration order.
func (c *Coordinator) live() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []string
	for _, w := range c.workers {
		if !c.dead[w] {
			out = append(out, w)
		}
	}
	return out
}

// markDead retires a worker for the coordinator's lifetime.
func (c *Coordinator) markDead(w string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.dead[w] {
		c.dead[w] = true
		c.failures.Add(1)
	}
}

// Sweep scatters specs (the coordinator's canonical-order shard, as
// returned by sweep.Expand) across the live workers and returns the
// merged rows, index-aligned with specs. onRow, when non-nil, is
// called serially as each row lands — in arrival order, not canonical
// order; callers that stream canonical-order output reorder on top.
//
// A worker failure re-hashes its unfinished specs over the survivors;
// when no workers remain (or ctx is cancelled), the unfinished rows
// carry Err. Rows are deterministic, so the merged result is
// byte-identical to a single-node sweep regardless of worker count,
// deaths, or scheduling.
func (c *Coordinator) Sweep(ctx context.Context, specs []spec.ChannelSpec, bits int, onRow func(int, sweep.Row)) []sweep.Row {
	rows := make([]sweep.Row, len(specs))
	done := make([]bool, len(specs))
	var emitMu sync.Mutex
	deliver := func(i int, row sweep.Row) {
		emitMu.Lock()
		defer emitMu.Unlock()
		if done[i] {
			return
		}
		done[i], rows[i] = true, row
		c.mergedRows.Add(1)
		if onRow != nil {
			onRow(i, row)
		}
	}

	pending := make([]int, len(specs))
	for i := range specs {
		pending[i] = i
	}
	for round := 0; len(pending) > 0; round++ {
		live := c.live()
		if len(live) == 0 || ctx.Err() != nil {
			msg := "fleet: no live workers"
			if err := ctx.Err(); err != nil {
				msg = err.Error()
			}
			for _, i := range pending {
				deliver(i, sweep.Row{Spec: specs[i], Canonical: specs[i].String(), Err: msg})
			}
			return rows
		}
		if round > 0 {
			c.rehashes.Add(1)
		}
		ring := NewRing(live)
		shards := map[string][]int{}
		for _, i := range pending {
			owner := ring.Owner(specs[i].CacheKey())
			shards[owner] = append(shards[owner], i)
		}
		var wg sync.WaitGroup
		var failMu sync.Mutex
		failed := map[string]bool{}
		for w, idxs := range shards {
			c.scatters.Add(1)
			wg.Add(1)
			go func(w string, idxs []int) {
				defer wg.Done()
				sctx, span := obs.Start(ctx, "fleet.scatter",
					obs.String("worker", w), obs.Int("specs", len(idxs)), obs.Int("round", round))
				err := c.sendShard(sctx, w, idxs, specs, bits, deliver)
				if err != nil {
					span.SetAttr("err", err.Error())
					failMu.Lock()
					failed[w] = true
					failMu.Unlock()
				}
				span.End()
			}(w, idxs)
		}
		wg.Wait()
		for w := range failed {
			c.markDead(w)
		}
		var rest []int
		emitMu.Lock()
		for _, i := range pending {
			if !done[i] {
				rest = append(rest, i)
			}
		}
		emitMu.Unlock()
		pending = rest
	}
	return rows
}

// busyRetryMax bounds how long a coordinator keeps retrying a worker's
// 429 backpressure before declaring it failed (~2s at 5ms steps) —
// long enough to ride out a transient queue spike, short enough that a
// wedged-full worker re-hashes instead of stalling the sweep.
const (
	busyRetryMax   = 400
	busyRetryDelay = 5 * time.Millisecond
)

// sendShard posts one shard to a worker and streams its rows into
// deliver. It returns an error — the worker is then marked dead — on
// connection failure, a non-200/429 status, an undecodable stream, or
// a stream that ends before every requested row landed (a truncated
// response is a dying worker, and re-hashing a possibly-duplicated
// spec is free because rows are deterministic). Rows carrying Err are
// treated as undelivered for the same reason: they are what a worker's
// mid-shutdown cancellation produces, and a survivor can still compute
// the real thing.
func (c *Coordinator) sendShard(ctx context.Context, worker string, idxs []int, specs []spec.ChannelSpec, bits int, deliver func(int, sweep.Row)) error {
	req := ShardRequest{Bits: bits, Specs: make([]IndexedSpec, len(idxs))}
	want := make(map[int]bool, len(idxs))
	for k, i := range idxs {
		req.Specs[k] = IndexedSpec{Index: i, Spec: specs[i]}
		want[i] = true
	}
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("fleet: encoding shard: %v", err)
	}
	for attempt := 0; ; attempt++ {
		hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, worker+ShardPath, bytes.NewReader(body))
		if err != nil {
			return fmt.Errorf("fleet: %v", err)
		}
		hreq.Header.Set("Content-Type", "application/json")
		resp, err := c.client.Do(hreq)
		if err != nil {
			return fmt.Errorf("fleet: %s: %v", worker, err)
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if attempt >= busyRetryMax {
				return fmt.Errorf("fleet: %s: still busy after %d retries", worker, attempt)
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(busyRetryDelay):
			}
			continue
		}
		if resp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			resp.Body.Close()
			return fmt.Errorf("fleet: %s: %s: %s", worker, resp.Status, bytes.TrimSpace(msg))
		}
		err = func() error {
			defer resp.Body.Close()
			dec := json.NewDecoder(resp.Body)
			for {
				var ir IndexedRow
				if derr := dec.Decode(&ir); derr == io.EOF {
					return nil
				} else if derr != nil {
					return fmt.Errorf("fleet: %s: reading shard stream: %v", worker, derr)
				}
				if !want[ir.Index] || ir.Row.Err != "" {
					continue
				}
				delete(want, ir.Index)
				deliver(ir.Index, ir.Row)
			}
		}()
		if err != nil {
			return err
		}
		if len(want) > 0 {
			return fmt.Errorf("fleet: %s: shard stream ended with %d of %d rows missing", worker, len(want), len(idxs))
		}
		return nil
	}
}

// ringReplicas is the virtual-node count per worker: enough that the
// keyspace splits near-evenly across a handful of nodes, cheap enough
// that ring construction stays trivial.
const ringReplicas = 64

// Ring is a consistent-hash ring over worker names. Hashing is FNV-1a
// over stable strings, so the spec→worker assignment is identical in
// every process — the property that makes each worker's cache hold
// exactly its slice of the space across coordinator restarts.
type Ring struct {
	hashes []uint64
	owners []string
}

// NewRing builds a ring over nodes (order-insensitive: assignment
// depends only on the set).
func NewRing(nodes []string) *Ring {
	r := &Ring{
		hashes: make([]uint64, 0, len(nodes)*ringReplicas),
		owners: make([]string, 0, len(nodes)*ringReplicas),
	}
	type pt struct {
		h uint64
		n string
	}
	pts := make([]pt, 0, len(nodes)*ringReplicas)
	for _, n := range nodes {
		for i := 0; i < ringReplicas; i++ {
			pts = append(pts, pt{hash64(fmt.Sprintf("%s#%d", n, i)), n})
		}
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].h != pts[j].h {
			return pts[i].h < pts[j].h
		}
		return pts[i].n < pts[j].n // total order even on hash collisions
	})
	for _, p := range pts {
		r.hashes = append(r.hashes, p.h)
		r.owners = append(r.owners, p.n)
	}
	return r
}

// Owner returns the node owning key: the first ring point at or after
// the key's hash, wrapping around.
func (r *Ring) Owner(key string) string {
	h := hash64(key)
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0
	}
	return r.owners[i]
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
