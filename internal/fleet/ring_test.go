package fleet_test

import (
	"fmt"
	"testing"

	"repro/internal/fleet"
)

// TestRingDeterministicAndOrderInsensitive pins the property cache
// locality rests on: the spec→worker assignment depends only on the
// set of live nodes, never on configuration order or which process
// built the ring.
func TestRingDeterministicAndOrderInsensitive(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:2", "http://c:3"}
	r1 := fleet.NewRing(nodes)
	r2 := fleet.NewRing([]string{nodes[2], nodes[0], nodes[1]})
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("chan-v2|key-%d", i)
		if got, want := r2.Owner(key), r1.Owner(key); got != want {
			t.Fatalf("key %q: owner depends on node order (%s vs %s)", key, got, want)
		}
	}
}

// TestRingSpreadsAndMinimallyMoves checks the two consistent-hashing
// promises at fleet scale: the keyspace splits across every node, and
// removing one node only moves the keys that node owned.
func TestRingSpreadsAndMinimallyMoves(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:2", "http://c:3"}
	full := fleet.NewRing(nodes)
	counts := map[string]int{}
	owners := map[string]string{}
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("chan-v2|key-%d", i)
		o := full.Owner(key)
		counts[o]++
		owners[key] = o
	}
	for _, n := range nodes {
		if counts[n] == 0 {
			t.Errorf("node %s owns no keys; keyspace did not spread", n)
		}
	}
	shrunk := fleet.NewRing(nodes[:2])
	for key, before := range owners {
		after := shrunk.Owner(key)
		if before != nodes[2] && after != before {
			t.Fatalf("key %q moved %s -> %s though its owner survived", key, before, after)
		}
	}
}
