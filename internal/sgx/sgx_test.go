package sgx

import (
	"testing"

	"repro/internal/attack"
	"repro/internal/channel"
	"repro/internal/cpu"
)

func TestRequireSGX(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Gold 6226 has no SGX; construction must panic")
		}
	}()
	NewNonMT(attack.DefaultNonMT(cpu.Gold6226(), attack.Eviction, false))
}

func TestNonMTSGXDecodes(t *testing.T) {
	for _, kind := range []attack.Kind{attack.Eviction, attack.Misalignment} {
		ch := NewNonMT(attack.DefaultNonMT(cpu.XeonE2174G(), kind, false))
		res := channel.Transmit(ch, "E-2174G", channel.Alternating(24), 10)
		if res.ErrorRate > 0.15 {
			t.Errorf("%s error %.1f%% too high", ch.Name(), 100*res.ErrorRate)
		}
	}
}

func TestSGXSlowerThanPlain(t *testing.T) {
	// Table VI: SGX rates are roughly 1/25-1/30 of the plain non-MT rates.
	m := cpu.XeonE2174G()
	plain := channel.Transmit(attack.NewNonMT(attack.DefaultNonMT(m, attack.Eviction, false)),
		m.Name, channel.Alternating(40), 16)
	sgx := channel.Transmit(NewNonMT(attack.DefaultNonMT(m, attack.Eviction, false)),
		m.Name, channel.Alternating(24), 10)
	ratio := plain.RateKbps / sgx.RateKbps
	if ratio < 8 || ratio > 80 {
		t.Errorf("plain/SGX rate ratio = %.1f (plain %.0f, sgx %.0f), want ~25-30x",
			ratio, plain.RateKbps, sgx.RateKbps)
	}
}

func TestMTSGXDecodes(t *testing.T) {
	if testing.Short() {
		t.Skip("MT SGX channel is slow")
	}
	ch := NewMT(attack.DefaultMT(cpu.XeonE2174G(), attack.Eviction))
	res := channel.Transmit(ch, "E-2174G", channel.Alternating(16), 8)
	if res.ErrorRate > 0.30 {
		t.Errorf("MT SGX error %.1f%% too high", 100*res.ErrorRate)
	}
	if res.RateKbps > 60 {
		t.Errorf("MT SGX rate %.1f Kbps implausibly high (paper: 6-15 Kbps)", res.RateKbps)
	}
}

func TestSGXIterationFloor(t *testing.T) {
	cfg := attack.DefaultNonMT(cpu.XeonE2286G(), attack.Eviction, false)
	cfg.P = 10 // plain default must be raised to the SGX setting
	ch := NewNonMT(cfg)
	if ch.cfg.P < NonMTIters {
		t.Errorf("P = %d, want >= %d", ch.cfg.P, NonMTIters)
	}
}
