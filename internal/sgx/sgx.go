// Package sgx models Intel SGX enclaves as covert-channel senders
// (Section VIII). The enclave boundary changes three things relative to
// the plain channels: every bit costs one enclave entry and one exit
// (EENTER/EEXIT microcode, TLB shootdowns — thousands of cycles each),
// code behind the boundary is measured more noisily from outside, and
// far more iterations are needed per bit (p = q = 1,000-5,000 for non-MT,
// q = 10,000 for MT, versus 10 outside SGX) — which is exactly why the
// paper's Table VI rates are roughly 1/25 to 1/30 of Table III's.
package sgx

import (
	"fmt"

	"repro/internal/attack"
	"repro/internal/channel"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/runctx"
	"repro/internal/stats"
)

// Paper-default iteration counts (Section VIII).
const (
	// NonMTIters is p = q for the single-threaded SGX channels.
	NonMTIters = 1000
	// MTEncodeIters is q for the MT SGX channels.
	MTEncodeIters = 10000
	// MTMeasurements is how many decode passes the outside receiver
	// averages per bit.
	MTMeasurements = 10
	// iterPad models per-iteration enclave execution overhead (encrypted
	// page cache accesses and MEE latency on code fetch).
	iterPad = 75
)

func requireSGX(m cpu.Model) {
	if !m.SGX {
		panic(fmt.Sprintf("sgx: %s has no SGX support (Table I)", m.Name))
	}
}

// NonMTChannel is a single-threaded SGX covert channel: the sender runs
// inside the enclave, the receiver triggers it and times the whole
// enclave call from outside — one entry and one exit per bit
// (Section VIII-2).
type NonMTChannel struct {
	cfg  attack.NonMTConfig
	core *cpu.Core
	rc   runctx.Ctx

	one  []*isa.Block
	zero []*isa.Block
	base []*isa.Block
	pad  *isa.Block

	oneFlat, zeroFlat, baseFlat []isa.Inst
}

// NewNonMT builds the SGX variant of a non-MT channel. The configuration
// is the plain channel's, with the iteration count raised to the SGX
// setting.
func NewNonMT(cfg attack.NonMTConfig) *NonMTChannel {
	requireSGX(cfg.Model)
	if cfg.P < NonMTIters {
		cfg.P = NonMTIters
	}
	inner := attack.NewNonMT(cfg)
	c := &NonMTChannel{
		cfg:  cfg,
		core: inner.Core(),
		one:  inner.BlocksOne(),
		zero: inner.BlocksZero(),
		base: inner.BlocksBase(),
		pad:  isa.PauseBlock(isa.AddrForSet(30, 20), 0),
	}
	c.oneFlat = isa.Flatten(c.one)
	c.baseFlat = isa.Flatten(c.base)
	if c.zero != nil {
		c.zeroFlat = isa.Flatten(c.zero)
	}
	return c
}

// BindCtx implements channel.CtxAware: an SGX bit costs two enclave
// transitions plus >=1000 loop iterations, so a cancelled bit is
// skipped before the enclave entry.
func (c *NonMTChannel) BindCtx(rc runctx.Ctx) { c.rc = rc }

// Name implements channel.BitChannel.
func (c *NonMTChannel) Name() string {
	mode := "Fast"
	if c.cfg.Stealthy {
		mode = "Stealthy"
	}
	return fmt.Sprintf("SGX Non-MT %s %s", mode, c.cfg.Kind)
}

// FreqGHz implements channel.BitChannel.
func (c *NonMTChannel) FreqGHz() float64 { return c.cfg.Model.FreqGHz }

// Cycles implements channel.BitChannel.
func (c *NonMTChannel) Cycles() uint64 { return c.core.Cycle() }

// SendBit implements channel.BitChannel: enclave entry, p iterations of
// the init/encode/decode loop inside the enclave, enclave exit; the
// receiver measures the whole call with enclave-inflated noise.
func (c *NonMTChannel) SendBit(m byte) float64 {
	if c.rc.Err() != nil {
		return 0 // cancelled: the caller discards this bit
	}
	flat := c.oneFlat
	if m == '0' {
		flat = c.zeroFlat
		if flat == nil {
			flat = c.baseFlat
		}
	}
	model := c.cfg.Model
	// Enclave entry.
	c.core.RunCycles(uint64(model.EnclaveTransitionCycles))
	meas := c.core.RunTimed(0, isa.NewFlatLoopStream(flat, c.cfg.P))
	// Per-iteration enclave overhead occupies real time.
	c.core.RunCycles(uint64(c.cfg.P * iterPad))
	// Enclave exit.
	c.core.RunCycles(uint64(model.EnclaveTransitionCycles))
	// Per-iteration enclave overhead and the transition costs are part
	// of what the outside receiver times.
	meas += 2*model.EnclaveTransitionCycles + float64(c.cfg.P*iterPad)
	// Enclave boundary noise.
	meas += c.core.R.NormScaled(0, model.TimerSigmaAbs*(model.EnclaveNoiseFactor-1))
	return meas
}

// MTChannel is the MT SGX channel: the enclave sender keeps its own
// hardware thread while the outside receiver times its own decode passes
// on the sibling thread (Section VIII-1).
type MTChannel struct {
	cfg  attack.MTConfig
	core *cpu.Core
	rc   runctx.Ctx

	recv   []*isa.Block
	sender []*isa.Block

	recvFlat, senderFlat []isa.Inst
	measBuf              []float64
	measCb               func(v float64)
}

// NewMT builds the MT SGX variant. A non-positive Measurements count
// takes the paper default, like attack.DefaultMT's.
func NewMT(cfg attack.MTConfig) *MTChannel {
	requireSGX(cfg.Model)
	if cfg.Measurements <= 0 {
		cfg.Measurements = MTMeasurements
	}
	inner := attack.NewMT(cfg)
	c := &MTChannel{
		cfg:    cfg,
		core:   inner.Core(),
		recv:   inner.ReceiverBlocks(),
		sender: attack.SGXSenderChain(cfg, 250),
	}
	c.recvFlat = isa.Flatten(c.recv)
	c.senderFlat = isa.Flatten(c.sender)
	c.measBuf = make([]float64, 0, cfg.Measurements)
	c.measCb = func(v float64) { c.measBuf = append(c.measBuf, v) }
	return c
}

// BindCtx implements channel.CtxAware.
func (c *MTChannel) BindCtx(rc runctx.Ctx) { c.rc = rc }

// Name implements channel.BitChannel.
func (c *MTChannel) Name() string { return fmt.Sprintf("SGX MT %s", c.cfg.Kind) }

// FreqGHz implements channel.BitChannel.
func (c *MTChannel) FreqGHz() float64 { return c.cfg.Model.FreqGHz }

// Cycles implements channel.BitChannel.
func (c *MTChannel) Cycles() uint64 { return c.core.Cycle() }

// SendBit implements channel.BitChannel.
func (c *MTChannel) SendBit(m byte) float64 {
	if c.rc.Err() != nil {
		return 0 // cancelled: the caller discards this bit
	}
	model := c.cfg.Model
	// One enclave entry per bit on the sender thread.
	c.core.RunCycles(uint64(model.EnclaveTransitionCycles))
	if m == '1' {
		c.core.Enqueue(1, isa.NewFlatLoopStream(c.senderFlat, MTEncodeIters), nil)
	}
	// Receiver passes stay short (the plain MT length): the partition
	// signal concentrates in the passes right after the enclave starts
	// executing, and long passes would dilute it.
	const iters = 10
	c.measBuf = c.measBuf[:0]
	for i := 0; i < c.cfg.Measurements; i++ {
		c.core.MeasureEnqueue(0, isa.NewFlatLoopStream(c.recvFlat, iters), c.measCb)
	}
	c.core.RunUntilIdle(2_000_000_000)
	c.core.RunCycles(uint64(model.EnclaveTransitionCycles))
	// The receiver runs *outside* the enclave; only the plain SMT
	// desynchronization noise applies to its own measurements.
	noise := model.MTNoisePerPass
	if c.cfg.Kind == attack.Misalignment {
		noise *= 0.55
	}
	return stats.Mean(c.measBuf)/float64(iters) + c.core.R.NormScaled(0, noise)
}

// CloneChannel implements channel.Cloneable.
func (c *NonMTChannel) CloneChannel() channel.BitChannel {
	d := *c
	d.core = c.core.Clone()
	d.rc = runctx.Ctx{}
	return &d
}

// CloneChannel implements channel.Cloneable.
func (c *MTChannel) CloneChannel() channel.BitChannel {
	d := *c
	d.core = c.core.Clone()
	d.rc = runctx.Ctx{}
	d.measBuf = make([]float64, 0, cap(c.measBuf))
	d.measCb = func(v float64) { d.measBuf = append(d.measBuf, v) }
	return &d
}
