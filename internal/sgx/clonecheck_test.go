package sgx

import (
	"testing"

	"repro/internal/attack"
	"repro/internal/channel"
	"repro/internal/clonecheck"
	"repro/internal/cpu"
	"repro/internal/isa"
)

// TestCloneChannelSharesNoMutableState is the SGX counterpart of the
// attack-package clone-completeness test: reflection over original and
// clone, with only immutable block layouts and instruction slices
// allowed to be shared.
func TestCloneChannelSharesNoMutableState(t *testing.T) {
	model := cpu.XeonE2174G()
	allow := clonecheck.AllowType(isa.Inst{}, isa.Block{})

	cfg := attack.DefaultNonMT(model, attack.Eviction, false)
	cfg.P = NonMTIters
	mtCfg := attack.DefaultMT(model, attack.Eviction)

	channels := []struct {
		name string
		ch   channel.BitChannel
	}{
		{"SGX NonMT eviction", NewNonMT(cfg)},
		{"SGX MT eviction", NewMT(mtCfg)},
	}
	for _, tc := range channels {
		t.Run(tc.name, func(t *testing.T) {
			tc.ch.SendBit('1')
			tc.ch.SendBit('0')
			clone := tc.ch.(channel.Cloneable).CloneChannel()
			if shared := clonecheck.Shared(tc.ch, clone, allow); len(shared) != 0 {
				t.Fatalf("CloneChannel shares mutable state:\n%v", shared)
			}
		})
	}
}
