// Package spec defines ChannelSpec, a declarative description of one
// covert-channel scenario from the paper's combinatorial attack space:
// mechanism (eviction / misalignment / LCP slow-switch) x threading
// (non-MT / MT) x sink (timing / power) x enclave (SGX or not) x
// stealthiness x protocol parameters (d, M, p) x CPU model.
//
// The paper's seven named channels are seven points in this space; a
// ChannelSpec can name any valid point. Specs are plain data — JSON- and
// flag-encodable — with a canonical string form, so any client can
// enumerate the space (Enumerate), request a scenario over HTTP, and
// get the run deterministically cached under the spec's CacheKey.
//
// The lifecycle is Normalize -> Validate -> Build: Normalize fills
// defaults so equal scenarios compare equal, Validate rejects the
// impossible combinations (MT on an SMT-disabled model, power+SGX,
// anything but plain non-MT timing for slow-switch), and Build
// constructs the simulated channel exactly as the historical
// constructors did — a spec-built channel transmits byte-identically to
// its constructor-built twin.
package spec

import (
	"fmt"

	"repro/internal/attack"
	"repro/internal/channel"
	"repro/internal/cmdutil"
	"repro/internal/cpu"
	"repro/internal/defense"
	"repro/internal/runctx"
	"repro/internal/sgx"
)

// Mechanism is the frontend mechanism a channel modulates.
type Mechanism string

// Mechanisms.
const (
	// MechanismEviction forces DSB set collisions (Section IV-F).
	MechanismEviction Mechanism = "eviction"
	// MechanismMisalignment forces LSD collisions through half-window
	// offset blocks (Section IV-G).
	MechanismMisalignment Mechanism = "misalignment"
	// MechanismSlowSwitch modulates the LCP pre-decode stall and
	// path-switch penalty (Section V-E).
	MechanismSlowSwitch Mechanism = "slowswitch"
)

// Threading places sender and receiver on one hardware thread (non-MT)
// or on the two sibling threads of an SMT core (MT).
type Threading string

// Threading values.
const (
	ThreadingNonMT Threading = "nonmt"
	ThreadingMT    Threading = "mt"
)

// Sink is the receiver's measurement surface.
type Sink string

// Sinks.
const (
	// SinkTiming times with rdtscp (Sections V, VI).
	SinkTiming Sink = "timing"
	// SinkPower reads Intel RAPL (Section VII).
	SinkPower Sink = "power"
)

// DefaultCalibBits is the calibration-preamble length Transmit has
// always used; a zero CalibBits normalizes to it.
const DefaultCalibBits = 40

// Validation caps — generous multiples of the paper's largest settings.
// They exist because the simulator budgets cycles per protocol step
// (cpu.Core.RunUntilIdle panics past its budget): a spec beyond these
// bounds would crash the run rather than measure anything, so Validate
// rejects it up front — which also keeps one HTTP request from taking
// the serving daemon down.
const (
	// MaxCalibBits bounds the calibration preamble, mirroring the
	// daemon's message-length cap.
	MaxCalibBits = 2000
	// maxIterP bounds p for the iteration-count channels (non-MT
	// timing, SGX non-MT, slow-switch; paper max 5000).
	maxIterP = 100_000
	// maxMeasureP bounds p for the MT channels' decode passes (paper
	// uses 10).
	maxMeasureP = 10_000
	// maxPowerP bounds the power sink's per-bit iterations (paper uses
	// 240,000).
	maxPowerP = 1_000_000
)

// ChannelSpec declares one covert-channel scenario. The zero value
// normalizes to the paper's fastest configuration — the non-MT fast
// eviction timing channel on the Gold 6226 — and every unset field
// takes the paper default for the selected mechanism, so a spec only
// states what deviates.
type ChannelSpec struct {
	// Model is the Table I model name, matched case-insensitively;
	// empty means "Gold 6226". Build ignores it (the model is passed
	// in), so a spec can also be built against defended or otherwise
	// modified models.
	Model string `json:"model,omitempty"`
	// Mechanism defaults to eviction.
	Mechanism Mechanism `json:"mechanism,omitempty"`
	// Threading defaults to nonmt.
	Threading Threading `json:"threading,omitempty"`
	// Sink defaults to timing.
	Sink Sink `json:"sink,omitempty"`
	// SGX puts the sender inside an enclave (Section VIII).
	SGX bool `json:"sgx,omitempty"`
	// Stealthy selects the non-MT bit-0 encoding that still executes
	// blocks instead of doing nothing (Section V-C).
	Stealthy bool `json:"stealthy,omitempty"`
	// Contended makes the MT eviction sender spin delivery-hungry
	// between steps, the protocol the paper's Table II d=1 rows need.
	Contended bool `json:"contended,omitempty"`
	// Defense names the Section XII countermeasure applied to the model
	// before the channel is built (defense.Names lists them); empty
	// means "none", the undefended baseline. Validate rejects
	// combinations the defense makes unmeasurable (nosmt invalidates MT
	// specs, norapl is a no-op rejection for timing sinks, partition
	// needs a hyper-threaded model).
	Defense string `json:"defense,omitempty"`
	// D is the receiver way count d; 0 means the mechanism default
	// (6 eviction, 5 misalignment).
	D int `json:"d,omitempty"`
	// M is the misalignment variant's total way count; 0 means 8.
	M int `json:"m,omitempty"`
	// P is the per-bit repetition parameter; its exact meaning follows
	// the mechanism, matching the knob each paper protocol exposes:
	// loop iterations for non-MT timing (p = q = 10; raised to 1000
	// inside SGX), timed decode passes for MT (10), and per-bit loop
	// iterations for the power sink (120,000). 0 means that default.
	P int `json:"p,omitempty"`
	// CalibBits is the Transmit calibration-preamble length; 0 means
	// DefaultCalibBits.
	CalibBits int `json:"calib,omitempty"`
	// Seed seeds the channel's deterministic randomness; 0 means 1.
	Seed uint64 `json:"seed,omitempty"`
}

// kind maps the mechanism onto the attack-layer kind; slow-switch has
// no kind (its Build path never asks).
func (s ChannelSpec) kind() attack.Kind {
	if s.Mechanism == MechanismMisalignment {
		return attack.Misalignment
	}
	return attack.Eviction
}

// scenario projects the spec onto the facets a defense applicability
// predicate looks at, judged against the undefended model m.
func (s ChannelSpec) scenario(m cpu.Model) defense.Scenario {
	return defense.Scenario{
		MT:        s.Threading == ThreadingMT,
		PowerSink: s.Sink == SinkPower,
		ModelHT:   m.HyperThreading,
	}
}

// Normalize returns the spec with every unset field replaced by its
// default, so any two specs describing the same scenario compare equal
// and share one canonical encoding. The model name is canonicalized to
// its Table I spelling when it resolves; an unresolvable name is kept
// verbatim for Validate to report.
func (s ChannelSpec) Normalize() ChannelSpec {
	if s.Model == "" {
		s.Model = cpu.Gold6226().Name
	} else if m, err := cmdutil.ResolveModel(s.Model); err == nil {
		s.Model = m.Name
	}
	if s.Mechanism == "" {
		s.Mechanism = MechanismEviction
	}
	if s.Threading == "" {
		s.Threading = ThreadingNonMT
	}
	if s.Sink == "" {
		s.Sink = SinkTiming
	}
	if s.Defense == "" {
		s.Defense = defense.DefenseNone
	} else if d, ok := defense.Lookup(s.Defense); ok {
		s.Defense = d.Name
	}
	if s.Mechanism != MechanismSlowSwitch {
		if s.D == 0 {
			if s.Mechanism == MechanismMisalignment {
				s.D = attack.DefaultMisalignD
			} else {
				s.D = attack.DefaultD
			}
		}
		if s.M == 0 && s.Mechanism == MechanismMisalignment {
			s.M = attack.DefaultM
		}
	}
	if s.P == 0 {
		switch {
		case s.Sink == SinkPower:
			s.P = attack.DefaultPowerIters
		case s.Threading == ThreadingMT:
			s.P = attack.DefaultMeasurements
		case s.SGX:
			// The SGX layer raises any smaller p to its floor anyway
			// (Section VIII); normalizing to the floor keeps the
			// canonical encoding honest about what runs.
			s.P = sgx.NonMTIters
		default:
			s.P = attack.DefaultP
		}
	}
	if s.CalibBits == 0 {
		s.CalibBits = DefaultCalibBits
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s
}

// ResolveModel resolves the spec's model name against the Table I
// catalog (case-insensitively, via the shared cmdutil lookup). The
// error lists the valid names.
func (s ChannelSpec) ResolveModel() (cpu.Model, error) {
	s = s.Normalize()
	m, err := cmdutil.ResolveModel(s.Model)
	if err != nil {
		return cpu.Model{}, fmt.Errorf("spec: %v", err)
	}
	return m, nil
}

// Validate resolves the spec's model and checks the scenario against
// it; a nil error means Build will succeed. The daemon calls this
// before admitting a request, so impossible scenarios fail fast
// without consuming a simulation slot.
func (s ChannelSpec) Validate() error {
	m, err := s.ResolveModel()
	if err != nil {
		return err
	}
	return s.ValidateFor(m)
}

// ValidateFor checks the scenario against an explicit model — possibly
// a defended or otherwise modified one — ignoring the spec's Model
// name. It rejects every impossible combination: unknown enum values,
// MT on an SMT-disabled model, an enclave sender on a model without
// SGX, the power sink behind SGX or across hyper-threads, any
// slow-switch variant beyond plain non-MT timing, and out-of-range
// protocol parameters.
func (s ChannelSpec) ValidateFor(m cpu.Model) error {
	s = s.Normalize()
	switch s.Mechanism {
	case MechanismEviction, MechanismMisalignment, MechanismSlowSwitch:
	default:
		return fmt.Errorf("spec: unknown mechanism %q (eviction|misalignment|slowswitch)", s.Mechanism)
	}
	switch s.Threading {
	case ThreadingNonMT, ThreadingMT:
	default:
		return fmt.Errorf("spec: unknown threading %q (nonmt|mt)", s.Threading)
	}
	switch s.Sink {
	case SinkTiming, SinkPower:
	default:
		return fmt.Errorf("spec: unknown sink %q (timing|power)", s.Sink)
	}
	d, err := defense.Resolve(s.Defense)
	if err != nil {
		return fmt.Errorf("spec: %v", err)
	}
	// Applicability is judged against the undefended model: a defense
	// that removes the scenario's substrate (nosmt x MT) or cannot
	// interact with its sink (norapl x timing) is a rejection, not a
	// zero-residual row.
	if err := d.Applies(s.scenario(m)); err != nil {
		return fmt.Errorf("spec: %v", err)
	}
	maxP := maxIterP
	switch {
	case s.Sink == SinkPower:
		maxP = maxPowerP
	case s.Threading == ThreadingMT:
		maxP = maxMeasureP
	}
	if s.P < 1 || s.P > maxP {
		return fmt.Errorf("spec: p=%d out of range (want 1..%d for this scenario)", s.P, maxP)
	}
	if s.CalibBits < 2 || s.CalibBits > MaxCalibBits {
		return fmt.Errorf("spec: calib=%d out of range (want 2..%d)", s.CalibBits, MaxCalibBits)
	}
	if s.Mechanism == MechanismSlowSwitch {
		// The slow-switch channel leaks through issue-pattern timing of
		// one thread's own code; it has no way count, no cross-thread
		// variant, no power receiver, and no stealthy encoding.
		switch {
		case s.Threading != ThreadingNonMT:
			return fmt.Errorf("spec: slowswitch is non-MT only (Section V-E)")
		case s.Sink != SinkTiming:
			return fmt.Errorf("spec: slowswitch has no power variant (Section V-E)")
		case s.SGX:
			return fmt.Errorf("spec: slowswitch has no SGX variant (Section V-E)")
		case s.Stealthy:
			return fmt.Errorf("spec: slowswitch has no stealthy variant (both bits execute the same block count)")
		case s.Contended:
			return fmt.Errorf("spec: contended applies only to the MT eviction protocol")
		case s.D != 0 || s.M != 0:
			return fmt.Errorf("spec: slowswitch takes no d/m way counts")
		}
		return nil
	}
	if s.D < 1 || s.D > attack.DSBWays {
		return fmt.Errorf("spec: d=%d out of range (want 1..%d)", s.D, attack.DSBWays)
	}
	if s.Mechanism == MechanismMisalignment {
		if s.M > attack.DSBWays {
			return fmt.Errorf("spec: m=%d out of range (want <= %d)", s.M, attack.DSBWays)
		}
		if s.M <= s.D {
			return fmt.Errorf("spec: misalignment needs m > d (m-d sender blocks); got d=%d m=%d", s.D, s.M)
		}
	} else if s.M != 0 {
		return fmt.Errorf("spec: m applies only to the misalignment mechanism")
	}
	if s.SGX && s.Threading == ThreadingNonMT && s.P < sgx.NonMTIters {
		// The enclave layer would silently raise a smaller p to its
		// floor; rejecting instead keeps the canonical encoding equal to
		// what actually runs.
		return fmt.Errorf("spec: SGX non-MT needs p >= %d (Section VIII); got p=%d", sgx.NonMTIters, s.P)
	}
	if s.Sink == SinkPower {
		// The paper's power receiver polls RAPL from the sender's own
		// thread, outside any enclave (Section VII).
		switch {
		case s.Threading != ThreadingNonMT:
			return fmt.Errorf("spec: the power sink is non-MT only (Section VII)")
		case s.SGX:
			return fmt.Errorf("spec: power+SGX is impossible — RAPL is not readable from inside an enclave (Section VII)")
		case s.Stealthy:
			return fmt.Errorf("spec: the power channel's bit-0 already executes decoy blocks; stealthy does not apply")
		case s.Contended:
			return fmt.Errorf("spec: contended applies only to the MT eviction protocol")
		}
		return nil
	}
	if s.Threading == ThreadingMT {
		if !m.HyperThreading {
			return fmt.Errorf("spec: MT on %s is impossible — hyper-threading is disabled (Table I)", m.Name)
		}
		if s.Stealthy {
			return fmt.Errorf("spec: the MT channels have no stealthy variant (the sender idles on bit 0)")
		}
		if s.Contended && s.Mechanism != MechanismEviction {
			return fmt.Errorf("spec: contended applies only to the MT eviction protocol")
		}
	} else if s.Contended {
		return fmt.Errorf("spec: contended applies only to the MT eviction protocol")
	}
	if s.SGX && !m.SGX {
		return fmt.Errorf("spec: %s has no SGX support (Table I)", m.Name)
	}
	return nil
}

// Build constructs the simulated channel for this scenario on m,
// ignoring the spec's Model name. It starts from the same Default*
// configurations the historical constructors used and overrides only
// what the spec sets, so a default spec builds a channel that transmits
// byte-identically to its constructor twin. Build panics on a spec
// ValidateFor rejects — matching the historical constructors' contract
// — so callers taking untrusted specs must Validate first.
func (s ChannelSpec) Build(m cpu.Model) channel.BitChannel {
	if err := s.ValidateFor(m); err != nil {
		panic(err.Error())
	}
	s = s.Normalize()
	// The defense transform defends the model the channel is built on;
	// DefenseNone's transform is the identity, so an undefended spec
	// builds on exactly the model it was given.
	if d, ok := defense.Lookup(s.Defense); ok {
		m = d.Apply(m)
	}
	switch {
	case s.Mechanism == MechanismSlowSwitch:
		cfg := attack.DefaultSlowSwitch(m)
		cfg.P = s.P
		cfg.Seed = s.Seed
		return attack.NewSlowSwitch(cfg)
	case s.Sink == SinkPower:
		cfg := attack.DefaultPower(m, s.kind())
		cfg.D, cfg.M = s.D, s.M
		cfg.Iters = s.P
		cfg.Seed = s.Seed
		return attack.NewPower(cfg)
	case s.Threading == ThreadingMT:
		cfg := attack.DefaultMT(m, s.kind())
		cfg.D, cfg.M = s.D, s.M
		cfg.Measurements = s.P
		cfg.ContendedSender = s.Contended
		cfg.Seed = s.Seed
		if s.SGX {
			return sgx.NewMT(cfg)
		}
		return attack.NewMT(cfg)
	default:
		cfg := attack.DefaultNonMT(m, s.kind(), s.Stealthy)
		cfg.D, cfg.M = s.D, s.M
		cfg.P = s.P
		cfg.Seed = s.Seed
		if s.SGX {
			return sgx.NewNonMT(cfg)
		}
		return attack.NewNonMT(cfg)
	}
}

// Identity returns the canonical encoding without the seed clause: the
// scenario's seed-independent identity. Sweep-style seed splitting
// derives each spec's seed from this string, so equal scenarios get
// equal splits whatever seed they currently hold; any new field must
// be added here (and thereby to String), never after the seed clause.
func (s ChannelSpec) Identity() string {
	return s.Normalize().identityNorm()
}

// identityNorm renders the identity of an already-normalized spec.
func (s ChannelSpec) identityNorm() string {
	return fmt.Sprintf("model=%s,mech=%s,thread=%s,sink=%s,sgx=%t,stealthy=%t,contended=%t,defense=%s,d=%d,m=%d,p=%d,calib=%d",
		s.Model, s.Mechanism, s.Threading, s.Sink, s.SGX, s.Stealthy, s.Contended, s.Defense, s.D, s.M, s.P, s.CalibBits)
}

// String returns the canonical encoding: the normalized fields in a
// fixed order — Identity plus the seed clause — so every spelling of
// one scenario renders one string. It is the flag-friendly inverse of
// the JSON form and the body of CacheKey.
func (s ChannelSpec) String() string {
	s = s.Normalize()
	return fmt.Sprintf("%s,seed=%d", s.identityNorm(), s.Seed)
}

// CacheKey returns the versioned canonical key for this scenario.
// Specs are normalized first, so every spelling of one scenario maps to
// one entry; channels are pure functions of their spec, so equal keys
// imply bit-identical transmissions. Bump the version prefix whenever a
// field's meaning changes — v2 added the defense clause to the
// identity, so v1 keys (which never named a defense) can never collide
// with defended runs.
func (s ChannelSpec) CacheKey() string {
	return "chan-v2|" + s.String()
}

// Transmit resolves the spec's model, builds the channel, and sends
// message (a '0'/'1' string) through it, calibrating on the spec's
// preamble length. It fails instead of panicking on an invalid spec.
func (s ChannelSpec) Transmit(message string) (channel.Result, error) {
	return s.TransmitCtx(runctx.Background(), message)
}

// TransmitCtx is Transmit under a run context: the transmission
// checkpoints per bit and unwinds when rc is cancelled.
func (s ChannelSpec) TransmitCtx(rc runctx.Ctx, message string) (channel.Result, error) {
	m, err := s.ResolveModel()
	if err != nil {
		return channel.Result{}, err
	}
	if err := s.ValidateFor(m); err != nil {
		return channel.Result{}, err
	}
	s = s.Normalize()
	return channel.TransmitCtx(rc, s.Build(m), m.Name, message, s.CalibBits)
}

// CalibrationKey returns the full measurement identity a calibration
// snapshot is keyed by: model, mechanism, threading, sink, SGX,
// stealthiness, contention, defense, protocol parameters, calibration
// width, and seed. Two specs with equal keys run byte-identical
// calibration preambles, so their snapshots are interchangeable. The
// key is the cache key: every field of a spec participates in
// calibration.
func (s ChannelSpec) CalibrationKey() string {
	return s.CacheKey()
}

// CalibrateCtx resolves and validates the spec, builds its channel, runs
// the calibration preamble under rc, and returns the memoized
// calibration snapshot. Transmitting through the snapshot is
// byte-identical to TransmitCtx on this spec (the unmemoized path runs
// the same preamble inline before its message bits).
func (s ChannelSpec) CalibrateCtx(rc runctx.Ctx) (*channel.Calibration, error) {
	m, err := s.ResolveModel()
	if err != nil {
		return nil, err
	}
	if err := s.ValidateFor(m); err != nil {
		return nil, err
	}
	s = s.Normalize()
	ch, ok := s.Build(m).(channel.Cloneable)
	if !ok {
		return nil, fmt.Errorf("spec: %s builds a non-cloneable channel", s.Mechanism)
	}
	return channel.NewCalibrationCtx(rc, ch, m.Name, s.CalibBits)
}

// Enumerate yields every valid scenario for the given models at the
// paper-default protocol parameters, in canonical order: defense (the
// undefended baseline first, then registry order), then mechanism, then
// threading, then sink, then plain-before-SGX, then
// stealthy-before-fast, then model — the row order of the paper's
// channel tables. Keeping the defense axis outermost means the
// defense-none block is exactly the pre-defense enumeration, so every
// paper-table row keeps its historical index. Every returned spec is
// normalized and valid for its model.
func Enumerate(models ...cpu.Model) []ChannelSpec {
	var specs []ChannelSpec
	for _, d := range defense.Names() {
		for _, mech := range []Mechanism{MechanismEviction, MechanismMisalignment, MechanismSlowSwitch} {
			for _, thread := range []Threading{ThreadingNonMT, ThreadingMT} {
				for _, sink := range []Sink{SinkTiming, SinkPower} {
					for _, sgxOn := range []bool{false, true} {
						for _, stealthy := range []bool{true, false} {
							for _, m := range models {
								s := ChannelSpec{
									Model:     m.Name,
									Mechanism: mech,
									Threading: thread,
									Sink:      sink,
									SGX:       sgxOn,
									Stealthy:  stealthy,
									Defense:   d,
								}.Normalize()
								if s.ValidateFor(m) == nil {
									specs = append(specs, s)
								}
							}
						}
					}
				}
			}
		}
	}
	return specs
}

// Filter returns the specs keep accepts, preserving order.
func Filter(specs []ChannelSpec, keep func(ChannelSpec) bool) []ChannelSpec {
	var out []ChannelSpec
	for _, s := range specs {
		if keep(s) {
			out = append(out, s)
		}
	}
	return out
}
