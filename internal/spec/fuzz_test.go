package spec

import (
	"testing"

	"repro/internal/cpu"
)

// FuzzChannelSpec hardens the spec lifecycle against arbitrary field
// combinations: Normalize must be idempotent and String-stable, and a
// spec Validate accepts must survive Build, String, and CacheKey
// without panicking — the contract the serving daemon relies on when
// it admits untrusted specs after a Validate. The corpus is seeded
// with the whole enumerated valid space, so mutation starts from every
// real scenario shape.
func FuzzChannelSpec(f *testing.F) {
	for _, s := range Enumerate(cpu.Models()...) {
		f.Add(s.Model, string(s.Mechanism), string(s.Threading), string(s.Sink),
			s.SGX, s.Stealthy, s.Contended, s.Defense, s.D, s.M, s.P, s.CalibBits, s.Seed)
	}
	// A few adversarial shapes the enumeration never produces.
	f.Add("", "", "", "", false, false, false, "", 0, 0, 0, 0, uint64(0))
	f.Add("Pentium", "voodoo", "smt4", "acoustic", true, true, true, "tinfoil", -1, 99, -7, 1, uint64(42))
	f.Add("Gold 6226", "eviction", "mt", "timing", false, false, false, "nosmt", 6, 0, 10, 40, uint64(1))
	f.Fuzz(func(t *testing.T, model, mech, thread, sink string,
		sgx, stealthy, contended bool, def string, d, m, p, calib int, seed uint64) {
		s := ChannelSpec{
			Model: model, Mechanism: Mechanism(mech), Threading: Threading(thread),
			Sink: Sink(sink), SGX: sgx, Stealthy: stealthy, Contended: contended,
			Defense: def, D: d, M: m, P: p, CalibBits: calib, Seed: seed,
		}
		n := s.Normalize()
		if n != n.Normalize() {
			t.Fatalf("Normalize not idempotent: %#v -> %#v", n, n.Normalize())
		}
		// String normalizes internally, so it must be stable across an
		// explicit Normalize, and the canonical forms must agree.
		if s.String() != n.String() {
			t.Fatalf("String not stable across Normalize:\n%s\n%s", s, n)
		}
		if s.CacheKey() != n.CacheKey() {
			t.Fatalf("CacheKey not stable across Normalize")
		}
		if err := s.Validate(); err != nil {
			return
		}
		// Validate promised Build will succeed: any panic here fails the
		// fuzz run.
		mdl, err := s.ResolveModel()
		if err != nil {
			t.Fatalf("Validate accepted a spec whose model does not resolve: %s", s)
		}
		ch := s.Build(mdl)
		if ch == nil || ch.Name() == "" {
			t.Fatalf("Build returned a nameless channel for %s", s)
		}
		// A validated spec's normal form must validate too (the daemon
		// caches under the normalized key).
		if err := n.Validate(); err != nil {
			t.Fatalf("normal form of a valid spec is invalid: %v", err)
		}
	})
}
