package spec

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/attack"
	"repro/internal/channel"
	"repro/internal/cpu"
	"repro/internal/defense"
	"repro/internal/sgx"
)

func TestNormalizeMatchesPaperDefaults(t *testing.T) {
	// The zero spec must normalize to exactly the configuration the
	// historical NewFastCovertChannel wired: the constructors' defaults
	// and the spec defaults are one source of truth.
	s := ChannelSpec{}.Normalize()
	def := attack.DefaultNonMT(cpu.Gold6226(), attack.Eviction, false)
	if s.Model != "Gold 6226" || s.Mechanism != MechanismEviction ||
		s.Threading != ThreadingNonMT || s.Sink != SinkTiming {
		t.Fatalf("zero spec normalized to %s", s)
	}
	if s.D != def.D || s.P != def.P || s.Seed != def.Seed {
		t.Errorf("normalized d=%d p=%d seed=%d; constructor default d=%d p=%d seed=%d",
			s.D, s.P, s.Seed, def.D, def.P, def.Seed)
	}
	if s.CalibBits != DefaultCalibBits {
		t.Errorf("calib normalized to %d, want %d", s.CalibBits, DefaultCalibBits)
	}

	mis := ChannelSpec{Mechanism: MechanismMisalignment}.Normalize()
	misDef := attack.DefaultNonMT(cpu.Gold6226(), attack.Misalignment, false)
	if mis.D != misDef.D || mis.M != misDef.M {
		t.Errorf("misalignment normalized d=%d m=%d, want d=%d m=%d", mis.D, mis.M, misDef.D, misDef.M)
	}

	pow := ChannelSpec{Sink: SinkPower}.Normalize()
	if pow.P != attack.DefaultPower(cpu.Gold6226(), attack.Eviction).Iters {
		t.Errorf("power p normalized to %d", pow.P)
	}
	mt := ChannelSpec{Threading: ThreadingMT}.Normalize()
	if mt.P != attack.DefaultMT(cpu.Gold6226(), attack.Eviction).Measurements {
		t.Errorf("MT p normalized to %d", mt.P)
	}
	enclave := ChannelSpec{Model: "Xeon E-2174G", SGX: true}.Normalize()
	if enclave.P != sgx.NonMTIters {
		t.Errorf("SGX non-MT p normalized to %d, want %d", enclave.P, sgx.NonMTIters)
	}

	// Model names canonicalize case-insensitively.
	if got := (ChannelSpec{Model: "gold 6226"}).Normalize().Model; got != "Gold 6226" {
		t.Errorf("model canonicalized to %q", got)
	}
}

func TestValidateRejectsImpossibleCombos(t *testing.T) {
	cases := []struct {
		name string
		s    ChannelSpec
		want string // substring of the error
	}{
		{"unknown model", ChannelSpec{Model: "Pentium"}, "unknown model"},
		{"unknown mechanism", ChannelSpec{Mechanism: "voodoo"}, "unknown mechanism"},
		{"unknown threading", ChannelSpec{Threading: "smt4"}, "unknown threading"},
		{"unknown sink", ChannelSpec{Sink: "acoustic"}, "unknown sink"},
		{"MT without SMT", ChannelSpec{Model: "Xeon E-2288G", Threading: ThreadingMT}, "hyper-threading is disabled"},
		{"MT stealthy", ChannelSpec{Threading: ThreadingMT, Stealthy: true}, "no stealthy variant"},
		{"SGX without SGX", ChannelSpec{Model: "Gold 6226", SGX: true}, "no SGX support"},
		{"power MT", ChannelSpec{Threading: ThreadingMT, Sink: SinkPower}, "non-MT only"},
		{"power SGX", ChannelSpec{Model: "Xeon E-2174G", SGX: true, Sink: SinkPower}, "power+SGX is impossible"},
		{"power stealthy", ChannelSpec{Sink: SinkPower, Stealthy: true}, "stealthy does not apply"},
		{"slowswitch MT", ChannelSpec{Mechanism: MechanismSlowSwitch, Threading: ThreadingMT}, "non-MT only"},
		{"slowswitch power", ChannelSpec{Mechanism: MechanismSlowSwitch, Sink: SinkPower}, "no power variant"},
		{"slowswitch SGX", ChannelSpec{Model: "Xeon E-2174G", Mechanism: MechanismSlowSwitch, SGX: true}, "no SGX variant"},
		{"slowswitch stealthy", ChannelSpec{Mechanism: MechanismSlowSwitch, Stealthy: true}, "no stealthy variant"},
		{"slowswitch d", ChannelSpec{Mechanism: MechanismSlowSwitch, D: 4}, "no d/m"},
		{"d too large", ChannelSpec{D: 9}, "out of range"},
		{"d negative", ChannelSpec{D: -1}, "out of range"},
		{"misalignment m <= d", ChannelSpec{Mechanism: MechanismMisalignment, D: 5, M: 5}, "m > d"},
		{"misalignment m too large", ChannelSpec{Mechanism: MechanismMisalignment, M: 9}, "out of range"},
		{"m on eviction", ChannelSpec{Mechanism: MechanismEviction, M: 7}, "only to the misalignment"},
		{"contended non-MT", ChannelSpec{Contended: true}, "only to the MT eviction"},
		{"contended MT misalignment", ChannelSpec{Threading: ThreadingMT, Mechanism: MechanismMisalignment, Contended: true}, "only to the MT eviction"},
		{"p negative", ChannelSpec{P: -3}, "out of range"},
		{"p beyond the simulator budget", ChannelSpec{P: 100_000_000}, "out of range"},
		{"MT p beyond the decode-pass cap", ChannelSpec{Threading: ThreadingMT, P: 50_000}, "out of range"},
		{"power p beyond the iteration cap", ChannelSpec{Sink: SinkPower, P: 2_000_000}, "out of range"},
		{"calib too small", ChannelSpec{CalibBits: 1}, "calib=1 out of range"},
		{"calib too large", ChannelSpec{CalibBits: 100_000}, "out of range"},
		{"SGX small p", ChannelSpec{Model: "Xeon E-2174G", SGX: true, P: 10}, "p >= 1000"},
		{"unknown defense", ChannelSpec{Defense: "tinfoil"}, "unknown defense"},
		{"nosmt MT", ChannelSpec{Threading: ThreadingMT, Defense: "nosmt"}, "eliminates the MT channels"},
		{"nosmt without SMT", ChannelSpec{Model: "Xeon E-2288G", Defense: "nosmt"}, "already disabled"},
		{"norapl timing", ChannelSpec{Defense: "norapl"}, "no-op for timing sinks"},
		{"partition without SMT", ChannelSpec{Model: "Xeon E-2288G", Defense: "partition"}, "never partitions"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.s.Validate()
			if err == nil {
				t.Fatalf("Validate(%s) accepted an impossible combo", tc.s)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestValidateAcceptsDefaultsAndBuildPanicsOnInvalid(t *testing.T) {
	if err := (ChannelSpec{}).Validate(); err != nil {
		t.Fatalf("zero spec invalid: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Build of an invalid spec must panic, like the constructors did")
		}
	}()
	ChannelSpec{Threading: ThreadingMT}.Build(cpu.XeonE2288G())
}

func TestEnumerate(t *testing.T) {
	// Per-model valid-scenario counts: a plain HT model has 4 non-MT
	// timing variants + 2 MT + 1 slow-switch + 2 power = 9; SGX adds 4
	// enclave non-MT + 2 enclave MT; disabling SMT removes the 2+2 MT.
	// The defense axis multiplies the space: defense=none keeps the full
	// per-model count; nosmt keeps the non-MT subset (and drops off the
	// already-SMT-less E-2288G); eqpaths keeps everything; norapl keeps
	// only the 2 power variants; partition keeps everything on HT models
	// and nothing on the E-2288G.
	counts := map[string]int{
		"Gold 6226":    36, // 9 none + 7 nosmt + 9 eqpaths + 2 norapl + 9 partition
		"Xeon E-2174G": 58, // 15 + 11 + 15 + 2 + 15
		"Xeon E-2286G": 58, // 15 + 11 + 15 + 2 + 15
		"Xeon E-2288G": 24, // 11 + 0 + 11 + 2 + 0
	}
	total := 0
	for _, m := range cpu.Models() {
		specs := Enumerate(m)
		total += len(specs)
		if len(specs) != counts[m.Name] {
			t.Errorf("%s: %d specs, want %d", m.Name, len(specs), counts[m.Name])
		}
		seen := map[string]bool{}
		for _, s := range specs {
			if err := s.Validate(); err != nil {
				t.Errorf("enumerated spec invalid: %v", err)
			}
			if s != s.Normalize() {
				t.Errorf("enumerated spec not normalized: %s", s)
			}
			if seen[s.CacheKey()] {
				t.Errorf("duplicate spec %s", s)
			}
			seen[s.CacheKey()] = true
			// Every enumerated spec must actually construct.
			s.Build(m)
		}
	}
	if all := Enumerate(cpu.Models()...); len(all) != total {
		t.Errorf("Enumerate(all models) = %d specs, want %d", len(all), total)
	}
}

func TestEnumerateOrderMatchesChannelTables(t *testing.T) {
	// Table III's row order must fall out of the canonical enumeration
	// order: per mechanism, non-MT stealthy rows, then fast, then MT.
	// The paper tables read the undefended baseline, so the predicate
	// pins defense=none — and because the defense axis is outermost,
	// those rows keep their exact historical positions.
	all := Enumerate(cpu.Models()...)
	specs := Filter(all, func(s ChannelSpec) bool {
		return s.Sink == SinkTiming && !s.SGX && s.Mechanism != MechanismSlowSwitch &&
			s.Defense == defense.DefenseNone
	})
	for i, s := range Filter(all, func(s ChannelSpec) bool { return s.Defense == defense.DefenseNone }) {
		if all[i] != s {
			t.Fatalf("defense=none block is not the leading slice of the enumeration (index %d: %s)", i, all[i])
		}
	}
	if len(specs) != 22 {
		t.Fatalf("Table III space has %d specs, want 22", len(specs))
	}
	names := make([]string, 0, 6)
	for _, s := range specs {
		n := string(s.Mechanism) + "/" + string(s.Threading) + "/stealthy=" + map[bool]string{true: "1", false: "0"}[s.Stealthy]
		if len(names) == 0 || names[len(names)-1] != n {
			names = append(names, n)
		}
	}
	want := []string{
		"eviction/nonmt/stealthy=1", "eviction/nonmt/stealthy=0", "eviction/mt/stealthy=0",
		"misalignment/nonmt/stealthy=1", "misalignment/nonmt/stealthy=0", "misalignment/mt/stealthy=0",
	}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("variant order %v, want %v", names, want)
	}
}

func TestCanonicalEncoding(t *testing.T) {
	a := ChannelSpec{Model: "gold 6226"}
	b := ChannelSpec{Model: "Gold 6226", Mechanism: MechanismEviction, Threading: ThreadingNonMT,
		Sink: SinkTiming, Defense: "none", D: 6, P: 10, CalibBits: 40, Seed: 1}
	if a.String() != b.String() || a.CacheKey() != b.CacheKey() {
		t.Errorf("two spellings of one scenario differ:\n%s\n%s", a, b)
	}
	// v2 added the defense clause to the identity; v1 keys must be
	// unreachable so undefended cache entries never alias defended runs.
	if !strings.HasPrefix(a.CacheKey(), "chan-v2|") {
		t.Errorf("cache key %q not versioned", a.CacheKey())
	}
	if !strings.Contains(a.String(), ",defense=none,") {
		t.Errorf("canonical encoding %q lacks the defense clause", a.String())
	}
	defended := b
	defended.Defense = "eqpaths"
	if defended.CacheKey() == b.CacheKey() {
		t.Error("defense not part of the cache key")
	}
	// Defense names canonicalize case-insensitively like model names.
	if got := (ChannelSpec{Defense: "EqPaths"}).Normalize().Defense; got != "eqpaths" {
		t.Errorf("defense canonicalized to %q", got)
	}
	// Identity is the canonical encoding minus the seed clause; specs
	// differing only by seed share it.
	if a.String() != a.Identity()+",seed=1" {
		t.Errorf("String %q is not Identity %q + seed clause", a.String(), a.Identity())
	}
	seeded := b
	seeded.Seed = 99
	if seeded.Identity() != b.Identity() {
		t.Error("Identity varies with the seed")
	}
	c := b
	c.Seed = 2
	if c.CacheKey() == b.CacheKey() {
		t.Error("seed not part of the cache key")
	}
	d := b
	d.CalibBits = 30
	if d.CacheKey() == b.CacheKey() {
		t.Error("calib not part of the cache key")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	orig := ChannelSpec{Model: "Xeon E-2174G", Mechanism: MechanismMisalignment,
		Threading: ThreadingMT, D: 3, Seed: 7}
	blob, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back ChannelSpec
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back != orig {
		t.Errorf("round trip changed the spec: %s -> %s", orig, back)
	}
	// The zero value's JSON is {}: a spec only states what deviates.
	if blob, _ := json.Marshal(ChannelSpec{}); string(blob) != "{}" {
		t.Errorf("zero spec marshals to %s", blob)
	}
}

// TestBuildEquivalence is the redesign's headline proof: for each of
// the seven deprecated constructors, the same scenario expressed as a
// ChannelSpec builds a channel whose Transmit result — rate, error
// rate, received bits, rendered row — is byte-identical to the
// constructor-built channel's for the same seed.
func TestBuildEquivalence(t *testing.T) {
	ht := cpu.XeonE2174G() // HT + SGX: every variant exists here or on Gold
	gold := cpu.Gold6226()
	bits, calib := 24, 10
	powerIters, sgxP := 120_000, sgx.NonMTIters
	if testing.Short() {
		bits, powerIters = 16, 3000
	}
	cases := []struct {
		name  string
		model cpu.Model
		ctor  func(m cpu.Model) channel.BitChannel
		spec  ChannelSpec
	}{
		{"NewFastCovertChannel", gold,
			func(m cpu.Model) channel.BitChannel {
				return attack.NewNonMT(attack.DefaultNonMT(m, attack.Eviction, false))
			},
			ChannelSpec{Mechanism: MechanismEviction}},
		{"NewStealthyCovertChannel", gold,
			func(m cpu.Model) channel.BitChannel {
				return attack.NewNonMT(attack.DefaultNonMT(m, attack.Misalignment, true))
			},
			ChannelSpec{Mechanism: MechanismMisalignment, Stealthy: true}},
		{"NewMTCovertChannel", ht,
			func(m cpu.Model) channel.BitChannel { return attack.NewMT(attack.DefaultMT(m, attack.Eviction)) },
			ChannelSpec{Mechanism: MechanismEviction, Threading: ThreadingMT}},
		{"NewSlowSwitchChannel", gold,
			func(m cpu.Model) channel.BitChannel { return attack.NewSlowSwitch(attack.DefaultSlowSwitch(m)) },
			ChannelSpec{Mechanism: MechanismSlowSwitch}},
		{"NewPowerChannel", gold,
			func(m cpu.Model) channel.BitChannel {
				cfg := attack.DefaultPower(m, attack.Eviction)
				cfg.Iters = powerIters
				return attack.NewPower(cfg)
			},
			ChannelSpec{Mechanism: MechanismEviction, Sink: SinkPower, P: powerIters}},
		{"NewSGXChannel", ht,
			func(m cpu.Model) channel.BitChannel {
				cfg := attack.DefaultNonMT(m, attack.Eviction, false)
				cfg.P = sgxP
				return sgx.NewNonMT(cfg)
			},
			ChannelSpec{Mechanism: MechanismEviction, SGX: true, P: sgxP}},
		{"NewSGXMTChannel", ht,
			func(m cpu.Model) channel.BitChannel { return sgx.NewMT(attack.DefaultMT(m, attack.Misalignment)) },
			ChannelSpec{Mechanism: MechanismMisalignment, Threading: ThreadingMT, SGX: true}},
		// Defended specs: Build must apply the defense transform before
		// constructing, matching a hand-defended constructor build.
		{"EqualizePathsSpec", gold,
			func(m cpu.Model) channel.BitChannel {
				return attack.NewNonMT(attack.DefaultNonMT(defense.EqualizePaths(m), attack.Eviction, true))
			},
			ChannelSpec{Mechanism: MechanismEviction, Stealthy: true, Defense: "eqpaths"}},
		{"PartitionSpec", ht,
			func(m cpu.Model) channel.BitChannel {
				return attack.NewMT(attack.DefaultMT(defense.Partition(m), attack.Eviction))
			},
			ChannelSpec{Mechanism: MechanismEviction, Threading: ThreadingMT, Defense: "partition"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			msg := channel.Alternating(bits)
			want := channel.Transmit(tc.ctor(tc.model), tc.model.Name, msg, calib)
			got := channel.Transmit(tc.spec.Build(tc.model), tc.model.Name, msg, calib)
			if !reflect.DeepEqual(want, got) {
				t.Errorf("spec-built channel diverges from constructor:\nctor: %#v\nspec: %#v", want, got)
			}
			if want.String() != got.String() {
				t.Errorf("rendered rows differ:\n%s\n%s", want, got)
			}
		})
	}
}

func TestTransmitUsesSpecCalibration(t *testing.T) {
	bits := 24
	msg := channel.Alternating(bits)
	s := ChannelSpec{Model: "Xeon E-2288G", CalibBits: 12, Seed: 3}
	got, err := s.Transmit(msg)
	if err != nil {
		t.Fatal(err)
	}
	want := channel.Transmit(s.Build(cpu.XeonE2288G()), "Xeon E-2288G", msg, 12)
	if !reflect.DeepEqual(want, got) {
		t.Errorf("Transmit did not honor the spec calibration:\n%#v\n%#v", want, got)
	}
	if _, err := (ChannelSpec{Model: "nope"}).Transmit(msg); err == nil {
		t.Error("Transmit accepted an unresolvable model")
	}
	if _, err := (ChannelSpec{Model: "Xeon E-2288G", Threading: ThreadingMT}).Transmit(msg); err == nil {
		t.Error("Transmit accepted an invalid scenario")
	}
}
