package obs

import "sync"

// Ring keeps the last N completed traces for post-hoc inspection (the
// daemon's GET /v1/traces). Adding past capacity evicts the oldest;
// an evicted trace's id stops resolving, which is the retention
// contract — traces are a debugging window, not an archive.
type Ring struct {
	mu    sync.Mutex
	cap   int
	order []*Trace // oldest first
}

// NewRing builds a ring holding up to n traces; n <= 0 means 32.
func NewRing(n int) *Ring {
	if n <= 0 {
		n = 32
	}
	return &Ring{cap: n}
}

// Add records a completed trace, evicting the oldest past capacity.
func (r *Ring) Add(t *Trace) {
	if r == nil || t == nil {
		return
	}
	r.mu.Lock()
	r.order = append(r.order, t)
	if len(r.order) > r.cap {
		r.order = append([]*Trace(nil), r.order[len(r.order)-r.cap:]...)
	}
	r.mu.Unlock()
}

// Get returns the trace with the given id, newest first on duplicate
// ids.
func (r *Ring) Get(id string) (*Trace, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := len(r.order) - 1; i >= 0; i-- {
		if r.order[i].ID() == id {
			return r.order[i], true
		}
	}
	return nil, false
}

// List returns the retained traces, newest first.
func (r *Ring) List() []*Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Trace, len(r.order))
	for i, t := range r.order {
		out[len(r.order)-1-i] = t
	}
	return out
}
