package obs

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
)

// LintProm is a minimal Prometheus text-exposition-format checker, the
// one CI runs over a booted daemon's /metrics. It enforces the
// contract the serving layer promises:
//
//   - every sample belongs to a metric family with a # HELP and a
//     # TYPE line seen before the first sample,
//   - no family declares HELP or TYPE twice,
//   - metric names are valid, values parse as floats,
//   - histogram families expose _bucket, _sum and _count samples and a
//     +Inf bucket.
//
// It returns one message per problem; an empty slice means the output
// is clean.
func LintProm(r io.Reader) []string {
	var problems []string
	help := map[string]bool{}
	typ := map[string]string{}
	sampled := map[string]bool{}
	histSuffix := map[string]map[string]bool{} // family -> suffixes seen
	histInf := map[string]bool{}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n := 0
	for sc.Scan() {
		n++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			name, rest, ok := splitMeta(line, "# HELP ")
			if !ok || rest == "" {
				problems = append(problems, fmt.Sprintf("line %d: malformed HELP line: %s", n, line))
				continue
			}
			if help[name] {
				problems = append(problems, fmt.Sprintf("line %d: duplicate HELP for %s", n, name))
			}
			help[name] = true
		case strings.HasPrefix(line, "# TYPE "):
			name, kind, ok := splitMeta(line, "# TYPE ")
			if !ok {
				problems = append(problems, fmt.Sprintf("line %d: malformed TYPE line: %s", n, line))
				continue
			}
			switch kind {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				problems = append(problems, fmt.Sprintf("line %d: unknown metric type %q for %s", n, kind, name))
			}
			if _, dup := typ[name]; dup {
				problems = append(problems, fmt.Sprintf("line %d: duplicate TYPE for %s", n, name))
			}
			if sampled[name] {
				problems = append(problems, fmt.Sprintf("line %d: TYPE for %s after its samples", n, name))
			}
			typ[name] = kind
		case strings.HasPrefix(line, "#"):
			// Other comments are legal and ignored.
		default:
			name, labels, value, ok := parseSample(line)
			if !ok {
				problems = append(problems, fmt.Sprintf("line %d: malformed sample: %s", n, line))
				continue
			}
			if !metricName.MatchString(name) {
				problems = append(problems, fmt.Sprintf("line %d: invalid metric name %q", n, name))
			}
			if _, err := strconv.ParseFloat(value, 64); err != nil {
				problems = append(problems, fmt.Sprintf("line %d: unparseable value %q for %s", n, value, name))
			}
			family := name
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				base := strings.TrimSuffix(name, suffix)
				if base != name && typ[base] == "histogram" {
					family = base
					if histSuffix[base] == nil {
						histSuffix[base] = map[string]bool{}
					}
					histSuffix[base][suffix] = true
					if suffix == "_bucket" && strings.Contains(labels, `le="+Inf"`) {
						histInf[base] = true
					}
					break
				}
			}
			if !help[family] {
				problems = append(problems, fmt.Sprintf("line %d: sample %s without a preceding HELP for %s", n, name, family))
			}
			if _, ok := typ[family]; !ok {
				problems = append(problems, fmt.Sprintf("line %d: sample %s without a preceding TYPE for %s", n, name, family))
			}
			sampled[family] = true
		}
	}
	if err := sc.Err(); err != nil {
		problems = append(problems, fmt.Sprintf("read: %v", err))
	}
	for family, kind := range typ {
		if !sampled[family] {
			problems = append(problems, fmt.Sprintf("family %s declared but has no samples", family))
		}
		if kind != "histogram" {
			continue
		}
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if !histSuffix[family][suffix] {
				problems = append(problems, fmt.Sprintf("histogram %s missing %s samples", family, suffix))
			}
		}
		if !histInf[family] {
			problems = append(problems, fmt.Sprintf("histogram %s missing the le=\"+Inf\" bucket", family))
		}
	}
	return problems
}

var metricName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// splitMeta parses "# HELP name text" / "# TYPE name kind" lines.
func splitMeta(line, prefix string) (name, rest string, ok bool) {
	body := strings.TrimPrefix(line, prefix)
	name, rest, found := strings.Cut(body, " ")
	if !found || name == "" {
		return "", "", false
	}
	return name, strings.TrimSpace(rest), true
}

// parseSample splits a sample line into name, label block, and value.
// Timestamps (a legal optional third column) are tolerated.
func parseSample(line string) (name, labels, value string, ok bool) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		j := strings.LastIndexByte(rest, '}')
		if j < i {
			return "", "", "", false
		}
		name, labels, rest = rest[:i], rest[i:j+1], strings.TrimSpace(rest[j+1:])
	} else {
		var found bool
		name, rest, found = strings.Cut(rest, " ")
		if !found {
			return "", "", "", false
		}
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", "", "", false
	}
	return name, labels, fields[0], true
}
