// Package obs is the observability layer of the simulation stack: a
// hierarchical span tracer, timing histograms, and exporters for the
// traces it collects. Everything in this package follows the repo's
// measurement discipline — observability records timing but must never
// perturb the measured system. Spans hold wall-clock offsets only; they
// never touch a simulation's RNG, cycle counters, or rendered bytes, so
// a traced run's cached artifact bytes are identical to an untraced
// run's (proven by test in the serving layer).
//
// A Trace owns one run's span tree: the run itself is the root span,
// stages (calibration preamble, per-bit transmit, fingerprint sampling,
// sweep shards, queue wait) nest under it. The current span travels in
// a context.Context, so the tracer threads through the existing
// cancellation plumbing without new parameters: obs.Start is a no-op
// returning a nil span when the context carries no trace, and every
// *Span method is nil-safe, so untraced runs pay one context lookup per
// span boundary and nothing per unit of work.
//
// Completed traces export as NDJSON span streams (WriteNDJSON) or as
// Chrome trace_event JSON (WriteChromeTrace) loadable in about:tracing
// and Perfetto.
package obs

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value annotation on a span: the spec CacheKey, the
// artifact name, whether the result came from cache.
type Attr struct {
	Key   string
	Value string
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Value: fmt.Sprintf("%d", v)} }

// SpanData is one completed span, the unit both exporters consume. All
// times are offsets from the trace's start, measured on the monotonic
// clock, so a trace is internally consistent even across wall-clock
// adjustments.
type SpanData struct {
	TraceID string            `json:"trace"`
	ID      uint64            `json:"id"`
	Parent  uint64            `json:"parent,omitempty"`
	Name    string            `json:"name"`
	StartUS int64             `json:"start_us"`
	DurUS   int64             `json:"dur_us"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// Trace collects the span tree of one run. It is safe for concurrent
// use: sweep workers and parallel artifact goroutines start and end
// spans on the shared trace. Create one with NewTrace — which opens the
// root span — attach it to a context with Context, and close it with
// Finish once the run is over.
type Trace struct {
	id    string
	name  string
	start time.Time // carries the monotonic reading; offsets derive from it

	mu     sync.Mutex
	nextID uint64
	spans  []SpanData // completed spans, in end order
	open   int        // spans started but not yet ended (root included)
	onEnd  func(SpanData)
	root   *Span
}

// traceSeq disambiguates auto-generated trace IDs within a process.
var traceSeq atomic.Uint64

// NewTrace opens a trace and its root span. id names the trace for
// lookup (the daemon uses the request id); empty means an
// auto-generated process-unique id. name labels the root span, e.g.
// "GET /v1/run" or "leakysweep".
func NewTrace(id, name string) *Trace {
	if id == "" {
		id = fmt.Sprintf("trace-%d", traceSeq.Add(1))
	}
	t := &Trace{id: id, name: name, start: time.Now()}
	t.root = t.StartSpan(nil, name)
	return t
}

// ID returns the trace's lookup id.
func (t *Trace) ID() string { return t.id }

// Name returns the root span's name.
func (t *Trace) Name() string { return t.name }

// Start returns the trace's wall-clock start.
func (t *Trace) Start() time.Time { return t.start }

// Root returns the root span, open until Finish.
func (t *Trace) Root() *Span { return t.root }

// Context returns ctx carrying the trace's root span, so spans started
// downstream (obs.Start, runctx.Ctx.StartSpan) nest under the run.
func (t *Trace) Context(ctx context.Context) context.Context {
	return ContextWithSpan(ctx, t.root)
}

// Finish ends the root span. Spans still open elsewhere may end later;
// they are recorded when they do.
func (t *Trace) Finish() { t.root.End() }

// OnSpanEnd registers fn to run synchronously whenever a span
// completes, for streaming exporters that interleave spans into a live
// response. fn must be safe for concurrent invocation (spans end on
// whatever goroutine ran the work).
func (t *Trace) OnSpanEnd(fn func(SpanData)) {
	t.mu.Lock()
	t.onEnd = fn
	t.mu.Unlock()
}

// StartSpan opens a span under parent (nil parents to the root; the
// root span itself is created with a nil parent before the root
// exists). A nil *Trace returns a nil span, so untraced code paths
// need no branches.
func (t *Trace) StartSpan(parent *Span, name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	t.open++
	t.mu.Unlock()
	var parentID uint64
	if parent == nil {
		if t.root != nil {
			parent = t.root
		}
	}
	if parent != nil {
		parentID = parent.id
	}
	s := &Span{tr: t, id: id, parent: parentID, name: name, start: time.Since(t.start)}
	for _, a := range attrs {
		s.SetAttr(a.Key, a.Value)
	}
	return s
}

// Spans returns a snapshot of the completed spans, sorted by start
// offset (ties by id, which increments in start order).
func (t *Trace) Spans() []SpanData {
	t.mu.Lock()
	out := make([]SpanData, len(t.spans))
	copy(out, t.spans)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].StartUS != out[j].StartUS {
			return out[i].StartUS < out[j].StartUS
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Len returns the number of completed spans.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Span is one timed region of a run. All methods are nil-safe: code
// under an untraced context holds a nil span and every call is a no-op,
// which is what keeps tracing an orthogonal concern at the call sites.
type Span struct {
	tr     *Trace
	id     uint64
	parent uint64
	name   string
	start  time.Duration

	mu    sync.Mutex
	attrs map[string]string
	ended bool
}

// SetAttr annotates the span; the last write per key wins. No-op after
// End, and on a nil span.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		if s.attrs == nil {
			s.attrs = make(map[string]string)
		}
		s.attrs[k] = v
	}
	s.mu.Unlock()
}

// End completes the span, recording it on its trace. Ending twice (or
// ending a nil span) is a no-op, so defer span.End() composes with
// early explicit ends.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := time.Since(s.tr.start)
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()

	sd := SpanData{
		TraceID: s.tr.id,
		ID:      s.id,
		Parent:  s.parent,
		Name:    s.name,
		StartUS: s.start.Microseconds(),
		DurUS:   (end - s.start).Microseconds(),
		Attrs:   attrs,
	}
	s.tr.mu.Lock()
	s.tr.spans = append(s.tr.spans, sd)
	s.tr.open--
	fn := s.tr.onEnd
	s.tr.mu.Unlock()
	if fn != nil {
		fn(sd)
	}
}

// ctxKey carries the current span through a context.
type ctxKey struct{}

// ContextWithSpan returns ctx carrying span as the current parent for
// Start.
func ContextWithSpan(ctx context.Context, span *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, span)
}

// SpanFrom returns the context's current span, or nil when the context
// is untraced.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// Start opens a child of the context's current span and returns the
// derived context plus the span to End. On an untraced context it
// returns ctx unchanged and a nil span, so call sites need no
// conditionals; the cost of that no-op path is one context value
// lookup.
func Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	parent := SpanFrom(ctx)
	if parent == nil {
		return ctx, nil
	}
	s := parent.tr.StartSpan(parent, name, attrs...)
	return ContextWithSpan(ctx, s), s
}
