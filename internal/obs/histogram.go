package obs

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
)

// Histogram is a fixed-bucket timing histogram with lock-free
// observation, rendered in Prometheus text exposition format
// (`_bucket`/`_sum`/`_count`). Buckets are cumulative, Prometheus
// style: a bucket counts every observation at or below its upper
// bound, and an implicit +Inf bucket counts everything.
//
// All methods are nil-safe no-ops on a nil *Histogram, so callers can
// observe unconditionally and a zero Metrics literal (common in tests)
// never panics.
type Histogram struct {
	bounds []float64       // ascending upper bounds, in seconds
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Uint64
	sumUS  atomic.Int64 // sum in integer microseconds, to stay lock-free
}

// DefBuckets is the default latency bucket layout, in seconds: the
// Prometheus client default, which spans queue waits of microseconds up
// to multi-second paper-scale simulations.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// NewHistogram builds a histogram over the given ascending upper
// bounds (seconds); nil means DefBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be ascending")
		}
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value in seconds.
func (h *Histogram) Observe(seconds float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && seconds > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumUS.Add(int64(seconds * 1e6))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values in seconds (microsecond
// resolution).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return float64(h.sumUS.Load()) / 1e6
}

// RenderProm writes the histogram's sample lines (no HELP/TYPE) for
// the metric name: cumulative `name_bucket{le="..."}` rows including
// +Inf, then `name_sum` and `name_count`. A nil histogram renders an
// empty, well-formed histogram so the metric family never disappears
// between scrapes.
func (h *Histogram) RenderProm(b *strings.Builder, name string) {
	var cum uint64
	if h != nil {
		for i, bound := range h.bounds {
			cum += h.counts[i].Load()
			fmt.Fprintf(b, "%s_bucket{le=%q} %d\n", name, formatBound(bound), cum)
		}
		cum += h.counts[len(h.bounds)].Load()
	} else {
		for _, bound := range DefBuckets {
			fmt.Fprintf(b, "%s_bucket{le=%q} 0\n", name, formatBound(bound))
		}
	}
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(b, "%s_sum %s\n", name, strconv.FormatFloat(h.Sum(), 'g', -1, 64))
	fmt.Fprintf(b, "%s_count %d\n", name, h.Count())
}

// formatBound renders a bucket bound the way Prometheus does: shortest
// round-trip decimal.
func formatBound(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
