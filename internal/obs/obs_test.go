package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestSpanTreeAndNilSafety(t *testing.T) {
	tr := NewTrace("t1", "root")
	ctx := tr.Context(context.Background())

	ctx2, s1 := Start(ctx, "stage", String("k", "v"))
	if s1 == nil {
		t.Fatal("traced context returned nil span")
	}
	_, s2 := Start(ctx2, "inner")
	s2.SetAttr("n", "1")
	s2.End()
	s2.End() // double End is a no-op
	s1.End()
	tr.Finish()

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("want 3 spans, got %d: %+v", len(spans), spans)
	}
	// Start order: root, stage, inner; root has no parent.
	if spans[0].Name != "root" || spans[0].Parent != 0 {
		t.Errorf("root span wrong: %+v", spans[0])
	}
	if spans[1].Name != "stage" || spans[1].Parent != spans[0].ID {
		t.Errorf("stage span wrong: %+v", spans[1])
	}
	if spans[2].Name != "inner" || spans[2].Parent != spans[1].ID {
		t.Errorf("inner span wrong: %+v", spans[2])
	}
	if spans[1].Attrs["k"] != "v" || spans[2].Attrs["n"] != "1" {
		t.Errorf("attrs lost: %+v", spans)
	}

	// Untraced context: Start returns nil spans; all methods no-op.
	_, s := Start(context.Background(), "x")
	if s != nil {
		t.Fatal("untraced context returned a span")
	}
	s.SetAttr("a", "b")
	s.End()
	var nilTrace *Trace
	if sp := nilTrace.StartSpan(nil, "y"); sp != nil {
		t.Fatal("nil trace returned a span")
	}
}

func TestTraceConcurrentSpans(t *testing.T) {
	tr := NewTrace("", "root")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				sp := tr.StartSpan(nil, "work")
				sp.SetAttr("j", "x")
				sp.End()
			}
		}()
	}
	wg.Wait()
	tr.Finish()
	if got := tr.Len(); got != 16*50+1 {
		t.Fatalf("want %d spans, got %d", 16*50+1, got)
	}
}

func TestOnSpanEndStreams(t *testing.T) {
	tr := NewTrace("", "root")
	var names []string
	tr.OnSpanEnd(func(sd SpanData) { names = append(names, sd.Name) })
	_, s := Start(tr.Context(context.Background()), "a")
	s.End()
	tr.Finish()
	if strings.Join(names, ",") != "a,root" {
		t.Fatalf("OnSpanEnd order: %v", names)
	}
}

func TestWriteNDJSON(t *testing.T) {
	tr := NewTrace("nd", "root")
	_, s := Start(tr.Context(context.Background()), "stage", String("artifact", "tableI"))
	s.End()
	tr.Finish()
	var buf bytes.Buffer
	if err := WriteNDJSON(&buf, tr); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 NDJSON lines, got %d:\n%s", len(lines), buf.String())
	}
	for _, line := range lines {
		var sd SpanData
		if err := json.Unmarshal([]byte(line), &sd); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		if sd.TraceID != "nd" || sd.Name == "" {
			t.Errorf("span line incomplete: %+v", sd)
		}
	}
}

func TestWriteChromeTraceValidates(t *testing.T) {
	tr := NewTrace("ct", "sweep")
	ctx := tr.Context(context.Background())
	// Two overlapping worker span trees force the lane assignment to
	// split tracks.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c2, outer := Start(ctx, "spec")
			for i := 0; i < 3; i++ {
				_, inner := Start(c2, "transmit")
				inner.End()
			}
			outer.End()
		}()
	}
	wg.Wait()
	tr.Finish()

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if probs := ValidateChromeTrace(buf.Bytes()); len(probs) != 0 {
		t.Fatalf("chrome trace invalid: %v", probs)
	}

	// Corrupted documents must be flagged.
	for name, bad := range map[string]string{
		"not json":      "{",
		"no events":     `{"traceEvents":[],"displayTimeUnit":"ms"}`,
		"missing field": `{"traceEvents":[{"ph":"X","ts":0,"pid":1,"tid":0}],"displayTimeUnit":"ms"}`,
		"bad phase":     `{"traceEvents":[{"name":"a","ph":"Q","ts":0,"pid":1,"tid":0}],"displayTimeUnit":"ms"}`,
	} {
		if probs := ValidateChromeTrace([]byte(bad)); len(probs) == 0 {
			t.Errorf("%s: not flagged", name)
		}
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count %d", h.Count())
	}
	var b strings.Builder
	h.RenderProm(&b, "x_seconds")
	out := b.String()
	for _, want := range []string{
		`x_seconds_bucket{le="0.1"} 1`,
		`x_seconds_bucket{le="1"} 3`,
		`x_seconds_bucket{le="10"} 4`,
		`x_seconds_bucket{le="+Inf"} 5`,
		`x_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("histogram render missing %q:\n%s", want, out)
		}
	}
	if h.Sum() < 56 || h.Sum() > 56.1 {
		t.Errorf("sum %v", h.Sum())
	}
	// Nil histogram: no-ops and an empty well-formed render.
	var nh *Histogram
	nh.Observe(1)
	var nb strings.Builder
	nh.RenderProm(&nb, "nil_seconds")
	if !strings.Contains(nb.String(), `nil_seconds_bucket{le="+Inf"} 0`) {
		t.Errorf("nil histogram render:\n%s", nb.String())
	}
}

func TestRing(t *testing.T) {
	r := NewRing(2)
	a, b, c := NewTrace("a", "a"), NewTrace("b", "b"), NewTrace("c", "c")
	r.Add(a)
	r.Add(b)
	r.Add(c) // evicts a
	if _, ok := r.Get("a"); ok {
		t.Error("evicted trace still resolves")
	}
	if got, ok := r.Get("b"); !ok || got != b {
		t.Error("trace b lost")
	}
	list := r.List()
	if len(list) != 2 || list[0] != c || list[1] != b {
		t.Errorf("list order wrong: %v", list)
	}
}

func TestLintProm(t *testing.T) {
	clean := `# HELP x_total things
# TYPE x_total counter
x_total 3
# HELP lat_seconds latency
# TYPE lat_seconds histogram
lat_seconds_bucket{le="0.1"} 1
lat_seconds_bucket{le="+Inf"} 2
lat_seconds_sum 0.5
lat_seconds_count 2
`
	if probs := LintProm(strings.NewReader(clean)); len(probs) != 0 {
		t.Fatalf("clean output flagged: %v", probs)
	}
	for name, bad := range map[string]string{
		"no help":        "# TYPE y_total counter\ny_total 1\n",
		"no type":        "# HELP y_total t\ny_total 1\n",
		"dup type":       "# HELP y_total t\n# TYPE y_total counter\n# TYPE y_total counter\ny_total 1\n",
		"bad value":      "# HELP y_total t\n# TYPE y_total counter\ny_total abc\n",
		"no inf bucket":  "# HELP h h\n# TYPE h histogram\nh_bucket{le=\"1\"} 0\nh_sum 0\nh_count 0\n",
		"no samples":     "# HELP y_total t\n# TYPE y_total counter\n",
		"bad type kind":  "# HELP y_total t\n# TYPE y_total blah\ny_total 1\n",
		"malformed line": "# HELP y_total t\n# TYPE y_total counter\ny_total\n",
	} {
		if probs := LintProm(strings.NewReader(bad)); len(probs) == 0 {
			t.Errorf("%s: not flagged:\n%s", name, bad)
		}
	}
}
