package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteNDJSON streams the trace's completed spans as NDJSON, one
// SpanData object per line, in start order.
func WriteNDJSON(w io.Writer, t *Trace) error {
	enc := json.NewEncoder(w)
	for _, sd := range t.Spans() {
		if err := enc.Encode(sd); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is one Chrome trace_event entry. The fields follow the
// Trace Event Format: complete events (ph "X") carry a start timestamp
// and duration in microseconds; metadata events (ph "M") name the
// process and threads.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object form of the trace_event format, which
// both about:tracing and Perfetto load.
type chromeTrace struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// WriteChromeTrace renders the trace's completed spans as Chrome
// trace_event JSON loadable in about:tracing or Perfetto. Complete
// ("X") events require stack discipline per (pid, tid) track, but span
// trees from concurrent sweep workers overlap freely, so spans are
// assigned to synthetic tracks: a span takes its parent's track when it
// nests inside the track's currently open span, otherwise the first
// track whose open spans it nests in, otherwise a fresh track. The
// assignment is deterministic given the span set.
func WriteChromeTrace(w io.Writer, t *Trace) error {
	spans := t.Spans()
	lanes := assignLanes(spans)
	events := make([]chromeEvent, 0, len(spans)+len(lanes)+1)
	events = append(events, chromeEvent{
		Name: "process_name", Ph: "M", PID: 1, TID: 0,
		Args: map[string]any{"name": t.Name()},
	})
	maxLane := 0
	for i, sd := range spans {
		if lanes[i] > maxLane {
			maxLane = lanes[i]
		}
		args := make(map[string]any, len(sd.Attrs)+2)
		for k, v := range sd.Attrs {
			args[k] = v
		}
		args["span_id"] = sd.ID
		if sd.Parent != 0 {
			args["parent_id"] = sd.Parent
		}
		events = append(events, chromeEvent{
			Name: sd.Name,
			Cat:  "sim",
			Ph:   "X",
			TS:   sd.StartUS,
			Dur:  max(sd.DurUS, 1), // zero-width events vanish in viewers
			PID:  1,
			TID:  lanes[i],
			Args: args,
		})
	}
	for lane := 0; lane <= maxLane; lane++ {
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: lane,
			Args: map[string]any{"name": fmt.Sprintf("track %d", lane)},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(chromeTrace{
		TraceEvents:     events,
		DisplayTimeUnit: "ms",
		OtherData:       map[string]any{"trace": t.ID(), "start": t.Start().UTC().Format("2006-01-02T15:04:05.000Z")},
	})
}

// ValidateChromeTrace checks blob against the Chrome trace_event JSON
// schema subset this package emits: a traceEvents array whose entries
// all carry name/ph/pid/tid, phases limited to complete ("X") and
// metadata ("M") events, non-negative timestamps and durations, and —
// per (pid, tid) track — complete events nesting like a call stack,
// the invariant about:tracing and Perfetto need to render flames. It
// returns one message per violation; empty means the document is a
// loadable trace. Unit tests gate the exporters and cmd/leakysweep
// -trace on it.
func ValidateChromeTrace(blob []byte) []string {
	var problems []string
	var ct struct {
		TraceEvents []struct {
			Name *string `json:"name"`
			Ph   *string `json:"ph"`
			TS   *int64  `json:"ts"`
			Dur  int64   `json:"dur"`
			PID  *int    `json:"pid"`
			TID  *int    `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(blob, &ct); err != nil {
		return []string{fmt.Sprintf("not valid JSON: %v", err)}
	}
	if len(ct.TraceEvents) == 0 {
		problems = append(problems, "no traceEvents")
	}
	if u := ct.DisplayTimeUnit; u != "" && u != "ms" && u != "ns" {
		problems = append(problems, fmt.Sprintf("displayTimeUnit %q invalid (ms|ns)", u))
	}
	type track struct{ pid, tid int }
	stacks := map[track][]int64{} // open interval end offsets per track
	for i, ev := range ct.TraceEvents {
		if ev.Name == nil || ev.Ph == nil || ev.PID == nil || ev.TID == nil {
			problems = append(problems, fmt.Sprintf("event %d: missing required field", i))
			continue
		}
		switch *ev.Ph {
		case "M":
			continue
		case "X":
		default:
			problems = append(problems, fmt.Sprintf("event %d: unexpected phase %q", i, *ev.Ph))
			continue
		}
		if ev.TS == nil || *ev.TS < 0 || ev.Dur < 0 {
			problems = append(problems, fmt.Sprintf("event %d (%s): bad ts/dur", i, *ev.Name))
			continue
		}
		tr := track{*ev.PID, *ev.TID}
		stack := stacks[tr]
		start, end := *ev.TS, *ev.TS+ev.Dur
		for len(stack) > 0 && stack[len(stack)-1] <= start {
			stack = stack[:len(stack)-1]
		}
		if len(stack) > 0 && end > stack[len(stack)-1] {
			problems = append(problems, fmt.Sprintf("event %d (%s): overlaps but does not nest on track %v", i, *ev.Name, tr))
			continue
		}
		stacks[tr] = append(stack, end)
	}
	return problems
}

// assignLanes maps spans (sorted by start) to track numbers such that
// within one track, spans nest like a call stack — the invariant
// complete events need to render as a flame graph. Children prefer
// their parent's track.
func assignLanes(spans []SpanData) []int {
	type openSpan struct{ start, end int64 }
	var tracks [][]openSpan // per-track stack of open intervals
	laneOf := make(map[uint64]int, len(spans))
	lanes := make([]int, len(spans))

	fits := func(lane int, start, end int64) bool {
		stack := tracks[lane]
		// Pop intervals that ended before this span starts.
		for len(stack) > 0 && stack[len(stack)-1].end <= start {
			stack = stack[:len(stack)-1]
		}
		tracks[lane] = stack
		return len(stack) == 0 || (start >= stack[len(stack)-1].start && end <= stack[len(stack)-1].end)
	}
	for i, sd := range spans {
		start, end := sd.StartUS, sd.StartUS+max(sd.DurUS, 1)
		lane := -1
		if pl, ok := laneOf[sd.Parent]; ok && fits(pl, start, end) {
			lane = pl
		} else {
			for l := range tracks {
				if fits(l, start, end) {
					lane = l
					break
				}
			}
		}
		if lane < 0 {
			tracks = append(tracks, nil)
			lane = len(tracks) - 1
		}
		tracks[lane] = append(tracks[lane], openSpan{start, end})
		laneOf[sd.ID] = lane
		lanes[i] = lane
	}
	return lanes
}
