// Package sweep turns the enumerated ChannelSpec space from a catalog
// into a workload: a Filter selects a slice of the space with a small
// query grammar, Expand materializes it through spec.Enumerate with
// deterministic per-spec seed splitting, and Run executes the shard on
// a bounded worker pool and aggregates the transmissions into a Report
// whose bytes are identical for any worker count.
//
// The grammar is comma-separated key=value clauses:
//
//	model=xeon*,mech=eviction,thread=mt,sink=timing,sgx=false,defense=none,d=1..4
//
// model/mech/thread/sink/defense take case-insensitive shell globs
// (any path.Match pattern without a comma — the clause separator; a
// literal defense pattern must additionally name a registered defense),
// sgx/stealthy/contended take true|false, and d/m/p take a single
// value or an inclusive lo..hi range. An empty query selects the whole
// space. ParseFilter and Filter.String round-trip: parsing a filter's
// String yields the same Filter, and the String is the filter's
// canonical spelling (clauses in a fixed order, defaults omitted).
package sweep

import (
	"fmt"
	"path"
	"strconv"
	"strings"

	"repro/internal/defense"
	"repro/internal/spec"
)

// Tri is a three-valued boolean constraint: unconstrained, or required
// false/true. The zero value is unconstrained, so a zero Filter matches
// everything.
type Tri int

// Tri values.
const (
	TriAny Tri = iota
	TriFalse
	TriTrue
)

// match reports whether v satisfies the constraint.
func (t Tri) match(v bool) bool {
	return t == TriAny || (t == TriTrue) == v
}

// Range is an inclusive integer constraint; the zero value is
// unconstrained. Set distinguishes a parsed point range from the
// unconstrained zero value, so "m=0" genuinely constrains (the
// enumerated space holds m=0 specs) instead of matching everything.
// The grammar spells a point range "n" and a wider one "lo..hi".
type Range struct {
	Lo, Hi int
	Set    bool
}

// match reports whether v lies in the range (always true when unset).
func (r Range) match(v int) bool {
	return !r.Set || (v >= r.Lo && v <= r.Hi)
}

func (r Range) String() string {
	if r.Lo == r.Hi {
		return strconv.Itoa(r.Lo)
	}
	return fmt.Sprintf("%d..%d", r.Lo, r.Hi)
}

// Filter selects a slice of the enumerated scenario space. The zero
// value matches every spec. Filters are plain comparable data: two
// filters selecting the same slice with the same spelling compare
// equal, and String renders the canonical query the filter was (or
// could have been) parsed from.
type Filter struct {
	// Model, Mechanism, Threading, Sink are case-insensitive
	// shell-style globs ("" matches anything).
	Model     string
	Mechanism string
	Threading string
	Sink      string
	// SGX, Stealthy, Contended constrain the spec's booleans.
	SGX       Tri
	Stealthy  Tri
	Contended Tri
	// Defense is a case-insensitive glob over the defense axis. A
	// literal pattern (no glob metacharacters) must name a registered
	// defense — "defense=nosnt" is a typo worth rejecting before any
	// work, where "defense=no*" is a legitimately open pattern.
	Defense string
	// D, M, P constrain the protocol parameters (inclusive ranges
	// against the normalized spec, so they select among the enumerated
	// defaults).
	D, M, P Range
}

// filterKeys is the canonical clause order of the grammar; String
// renders set clauses in this order and ParseFilter rejects keys
// outside it.
var filterKeys = []string{"model", "mech", "thread", "sink", "sgx", "stealthy", "contended", "defense", "d", "m", "p"}

// ParseFilter parses the sweep query grammar. The empty string is the
// whole space. Unknown keys, duplicate keys, malformed globs, bad
// booleans, and inverted or non-numeric ranges are errors naming the
// offending clause, so a typo is reported before any work happens.
func ParseFilter(query string) (Filter, error) {
	var f Filter
	seen := map[string]bool{}
	for _, clause := range strings.Split(query, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		key, val, ok := strings.Cut(clause, "=")
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		if !ok || key == "" || val == "" {
			return Filter{}, fmt.Errorf("sweep: bad clause %q: want key=value (keys: %s)", clause, strings.Join(filterKeys, ", "))
		}
		if seen[key] {
			return Filter{}, fmt.Errorf("sweep: duplicate key %q", key)
		}
		seen[key] = true
		var err error
		switch key {
		case "model":
			f.Model, err = parseGlob(val)
		case "mech":
			f.Mechanism, err = parseGlob(val)
		case "thread":
			f.Threading, err = parseGlob(val)
		case "sink":
			f.Sink, err = parseGlob(val)
		case "sgx":
			f.SGX, err = parseTri(val)
		case "stealthy":
			f.Stealthy, err = parseTri(val)
		case "contended":
			f.Contended, err = parseTri(val)
		case "defense":
			f.Defense, err = parseDefenseGlob(val)
		case "d":
			f.D, err = parseRange(val)
		case "m":
			f.M, err = parseRange(val)
		case "p":
			f.P, err = parseRange(val)
		default:
			return Filter{}, fmt.Errorf("sweep: unknown key %q (keys: %s)", key, strings.Join(filterKeys, ", "))
		}
		if err != nil {
			return Filter{}, fmt.Errorf("sweep: clause %q: %v", clause, err)
		}
	}
	return f, nil
}

// String renders the canonical query: set clauses only, in the fixed
// key order. ParseFilter(f.String()) == f, and the zero Filter renders
// the empty query (the whole space).
func (f Filter) String() string {
	var clauses []string
	add := func(key, val string) {
		if val != "" {
			clauses = append(clauses, key+"="+val)
		}
	}
	add("model", f.Model)
	add("mech", f.Mechanism)
	add("thread", f.Threading)
	add("sink", f.Sink)
	add("sgx", f.SGX.clause())
	add("stealthy", f.Stealthy.clause())
	add("contended", f.Contended.clause())
	add("defense", f.Defense)
	add("d", rangeClause(f.D))
	add("m", rangeClause(f.M))
	add("p", rangeClause(f.P))
	return strings.Join(clauses, ",")
}

func (t Tri) clause() string {
	switch t {
	case TriTrue:
		return "true"
	case TriFalse:
		return "false"
	}
	return ""
}

func rangeClause(r Range) string {
	if !r.Set {
		return ""
	}
	return r.String()
}

// validate vets a filter's fields the way ParseFilter vets a query's,
// catching hand-built filters ParseFilter never saw: a malformed glob
// (which Match silently never matches), one containing a comma or
// surrounding whitespace (which could never round-trip through String
// and the grammar's trimming), an inverted or negative range (which
// matches nothing and renders an unparseable query), bounds on an
// unset range (which String drops, so the reparse compares unequal),
// or an out-of-range Tri. Expand calls it so all of them become errors
// instead of silent misbehavior; every filter it accepts satisfies
// ParseFilter(f.String()) == f.
func (f Filter) validate() error {
	for _, g := range []struct{ key, pattern string }{
		{"model", f.Model}, {"mech", f.Mechanism}, {"thread", f.Threading}, {"sink", f.Sink},
	} {
		if g.pattern == "" {
			continue
		}
		if _, err := parseGlob(g.pattern); err != nil {
			return fmt.Errorf("sweep: clause %q: %v", g.key+"="+g.pattern, err)
		}
	}
	if f.Defense != "" {
		if _, err := parseDefenseGlob(f.Defense); err != nil {
			return fmt.Errorf("sweep: clause %q: %v", "defense="+f.Defense, err)
		}
	}
	for _, r := range []struct {
		key string
		r   Range
	}{{"d", f.D}, {"m", f.M}, {"p", f.P}} {
		if r.r.Set && (r.r.Lo < 0 || r.r.Hi < r.r.Lo) {
			return fmt.Errorf("sweep: clause %q: bad range %d..%d (want 0 <= lo <= hi)", r.key+"="+r.r.String(), r.r.Lo, r.r.Hi)
		}
		if !r.r.Set && (r.r.Lo != 0 || r.r.Hi != 0) {
			// Renders as no clause, so the reparse of String would compare
			// unequal to the original — a malformed hand-built filter.
			return fmt.Errorf("sweep: key %q: bounds %d..%d on an unset range (unconstrained must be the zero Range)", r.key, r.r.Lo, r.r.Hi)
		}
	}
	for _, tv := range []struct {
		key string
		t   Tri
	}{{"sgx", f.SGX}, {"stealthy", f.Stealthy}, {"contended", f.Contended}} {
		if tv.t < TriAny || tv.t > TriTrue {
			return fmt.Errorf("sweep: clause %q: bad Tri value %d", tv.key, int(tv.t))
		}
	}
	return nil
}

// Match reports whether the normalized spec is in the filter's slice of
// the space.
func (f Filter) Match(s spec.ChannelSpec) bool {
	s = s.Normalize()
	return matchGlob(f.Model, s.Model) &&
		matchGlob(f.Mechanism, string(s.Mechanism)) &&
		matchGlob(f.Threading, string(s.Threading)) &&
		matchGlob(f.Sink, string(s.Sink)) &&
		f.SGX.match(s.SGX) &&
		f.Stealthy.match(s.Stealthy) &&
		f.Contended.match(s.Contended) &&
		matchGlob(f.Defense, s.Defense) &&
		f.D.match(s.D) &&
		f.M.match(s.M) &&
		f.P.match(s.P)
}

// parseGlob validates a shell-style pattern up front so Match never has
// to report an error; patterns are matched case-insensitively. A comma
// is the grammar's clause separator, so a pattern containing one (legal
// for path.Match inside a character class) could never round-trip
// through String — reject it with a better message than the reparse
// would give.
func parseGlob(pattern string) (string, error) {
	if strings.ContainsRune(pattern, ',') {
		return "", fmt.Errorf("bad pattern %q (a comma separates clauses and cannot appear in a glob)", pattern)
	}
	if pattern == "" || strings.TrimSpace(pattern) != pattern {
		return "", fmt.Errorf("bad pattern %q (surrounding whitespace does not survive the grammar's clause trimming)", pattern)
	}
	if _, err := path.Match(pattern, ""); err != nil {
		return "", fmt.Errorf("bad pattern %q", pattern)
	}
	return pattern, nil
}

// parseDefenseGlob vets a defense pattern like parseGlob and, for a
// literal pattern (no glob metacharacters), additionally requires it to
// name a registered defense: the axis has a closed catalog, so a
// literal that matches nothing is a typo to report before any work, not
// an empty shard to sweep.
func parseDefenseGlob(pattern string) (string, error) {
	p, err := parseGlob(pattern)
	if err != nil {
		return "", err
	}
	if !strings.ContainsAny(p, `*?[\`) {
		if _, ok := defense.Lookup(p); !ok {
			return "", fmt.Errorf("unknown defense %q (valid: %s)", p, strings.Join(defense.Names(), ", "))
		}
	}
	return p, nil
}

func matchGlob(pattern, value string) bool {
	if pattern == "" {
		return true
	}
	ok, _ := path.Match(strings.ToLower(pattern), strings.ToLower(value))
	return ok
}

func parseTri(val string) (Tri, error) {
	switch val {
	case "true":
		return TriTrue, nil
	case "false":
		return TriFalse, nil
	}
	return TriAny, fmt.Errorf("bad boolean %q (true|false)", val)
}

func parseRange(val string) (Range, error) {
	lo, hi, isRange := strings.Cut(val, "..")
	if !isRange {
		hi = lo
	}
	l, err := strconv.Atoi(lo)
	if err != nil {
		return Range{}, fmt.Errorf("bad bound %q", lo)
	}
	h, err := strconv.Atoi(hi)
	if err != nil {
		return Range{}, fmt.Errorf("bad bound %q", hi)
	}
	if l < 0 || h < l {
		return Range{}, fmt.Errorf("bad range %d..%d (want 0 <= lo <= hi)", l, h)
	}
	return Range{Lo: l, Hi: h, Set: true}, nil
}
