package sweep

import (
	"context"
	"encoding/json"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/channel"
)

// TestMemoizedSweepByteIdentity is the calibration cache's headline
// correctness proof: sweeping the scenario space through a fresh Memo
// (calibrate-once, clone-per-transmission) renders and marshals to
// exactly the bytes the unmemoized Direct runner produces, at two base
// seeds and two worker counts. In -short mode the sweep covers the
// timing slice of the space; the full run covers every spec including
// the power sink.
func TestMemoizedSweepByteIdentity(t *testing.T) {
	f := Filter{}
	if testing.Short() {
		f = Filter{Sink: "timing", SGX: TriFalse}
	}
	for _, seed := range []uint64{1, 2} {
		// One Direct reference per seed; worker count cannot change the
		// bytes (TestRunReportBytesIdenticalAcrossWorkers), so the
		// parallel reference serves both memoized worker counts.
		o := shortScale(8)
		o.Seed = seed
		direct, err := Run(context.Background(), f, o, Direct, nil)
		if err != nil {
			t.Fatal(err)
		}
		if direct.Specs == 0 || direct.Completed != direct.Specs {
			t.Fatalf("seed %d: direct sweep did not complete: %d/%d", seed, direct.Completed, direct.Specs)
		}
		for _, workers := range []int{1, 8} {
			mo := shortScale(workers)
			mo.Seed = seed
			memo := NewMemo()
			memoized, err := Run(context.Background(), f, mo, memo.RunFunc(), nil)
			if err != nil {
				t.Fatal(err)
			}
			if memo.Len() == 0 {
				t.Fatalf("seed %d workers %d: memo never populated — the memoized path did not run", seed, workers)
			}
			if !reflect.DeepEqual(direct, memoized) {
				t.Fatalf("seed %d workers %d: memoized report differs from Direct", seed, workers)
			}
			if direct.Render() != memoized.Render() {
				t.Fatalf("seed %d workers %d: rendered reports differ", seed, workers)
			}
			dj, _ := json.Marshal(direct)
			mj, _ := json.Marshal(memoized)
			if string(dj) != string(mj) {
				t.Fatalf("seed %d workers %d: JSON reports differ", seed, workers)
			}
		}
	}
}

// TestCloneChannelReplaysIdentically pins the property the memoization
// rests on at the channel layer: a CloneChannel taken mid-transmission
// replays exactly the measurement sequence the original produces, for
// one representative of every channel family in the expanded space
// (mechanism x threading x sink x SGX).
func TestCloneChannelReplaysIdentically(t *testing.T) {
	o := shortScale(1)
	specs, err := Expand(Filter{}, o)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	families := 0
	for _, cs := range specs {
		key := fmt.Sprintf("%s|%s|%s|%v", cs.Mechanism, cs.Threading, cs.Sink, cs.SGX)
		if seen[key] {
			continue
		}
		seen[key] = true
		families++
		m, err := cs.ResolveModel()
		if err != nil {
			t.Fatal(err)
		}
		ch, ok := cs.Normalize().Build(m).(channel.Cloneable)
		if !ok {
			t.Fatalf("%s: channel is not Cloneable", key)
		}
		// Warm past the fresh-construction state so the clone captures
		// genuinely mid-stream simulator state (caches filled, RNG
		// advanced, counters nonzero).
		for i := 0; i < 3; i++ {
			ch.SendBit("01"[i%2])
		}
		cl := ch.CloneChannel()
		if cyc, ccyc := ch.Cycles(), cl.Cycles(); cyc != ccyc {
			t.Fatalf("%s: clone cycle counter %d, original %d", key, ccyc, cyc)
		}
		for i := 0; i < 8; i++ {
			bit := "10"[i%2]
			got, want := cl.SendBit(bit), ch.SendBit(bit)
			if got != want {
				t.Fatalf("%s: clone diverges at bit %d: %v vs %v", key, i, got, want)
			}
		}
	}
	if families < 6 {
		t.Fatalf("only %d channel families exercised, expected at least 6", families)
	}
}
