package sweep

import (
	"context"
	"testing"
)

// benchOptions is the reduced-but-full-coverage scale the sweep
// benchmarks run at: every one of the 176 enumerable specs transmits,
// with the calibration preamble and per-bit repetitions clamped the same
// way cmd/leakysweep's scale knobs do, so the benchmark exercises every
// channel family without the power sink's paper-default p=120000
// dominating the clock.
func benchOptions(workers int) Options {
	return Options{Bits: 16, CalibBits: 4, MaxP: 40, Seed: 1, Workers: workers}
}

// BenchmarkSweep_FullSpace is the headline hot-loop benchmark: the whole
// enumerable scenario space end to end, serially, through the default
// (calibration-memoizing) runner. Its ns/op and allocs/op are gated by
// cmd/benchdiff in CI.
func BenchmarkSweep_FullSpace(b *testing.B) {
	o := benchOptions(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := Run(context.Background(), Filter{}, o, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Completed != rep.Specs || rep.Specs == 0 {
			b.Fatalf("sweep incomplete: %d/%d", rep.Completed, rep.Specs)
		}
	}
}

// BenchmarkSweep_FullSpaceUnmemoized pins the cost of the plain
// per-spec calibrate-then-transmit path, so the memoized runner's
// benefit stays visible in the trajectory.
func BenchmarkSweep_FullSpaceUnmemoized(b *testing.B) {
	o := benchOptions(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := Run(context.Background(), Filter{}, o, Direct, nil)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Completed != rep.Specs || rep.Specs == 0 {
			b.Fatalf("sweep incomplete: %d/%d", rep.Completed, rep.Specs)
		}
	}
}

// BenchmarkSweep_FullSpaceParallel4 is the same space on four workers:
// the wall-clock configuration a sweep service actually runs.
func BenchmarkSweep_FullSpaceParallel4(b *testing.B) {
	o := benchOptions(4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := Run(context.Background(), Filter{}, o, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Completed != rep.Specs {
			b.Fatalf("sweep incomplete: %d/%d", rep.Completed, rep.Specs)
		}
	}
}
