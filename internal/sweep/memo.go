package sweep

import (
	"context"
	"sync"

	"repro/internal/channel"
	"repro/internal/obs"
	"repro/internal/runctx"
	"repro/internal/spec"
)

// Memo is a process-wide calibration snapshot cache keyed by
// spec.CalibrationKey(): the full measurement identity (model,
// mechanism, threading, sink, defense, protocol parameters, calibration
// width, split seed). The first transmission of a scenario runs its
// calibration preamble once and snapshots the calibrated channel; every
// later transmission of a calibration-identical scenario — a repeated
// sweep, a different message through the same channel, a daemon serving
// the same spec again — clones the snapshot and skips straight to its
// message bits.
//
// Byte-identity: a channel clone replays exactly the measurement
// sequence the original would have produced (see channel.Cloneable), so
// a memoized transmission is byte-identical to the unmemoized
// calibrate-then-transmit path. TestMemoizedSweepByteIdentity holds the
// two paths equal across the whole enumerable space.
type Memo struct {
	mu sync.Mutex
	m  map[string]*memoEntry
}

// memoEntry serializes calibration per key: concurrent requests for the
// same key wait for the first to finish instead of calibrating twice.
type memoEntry struct {
	mu  sync.Mutex
	cal *channel.Calibration
}

// memoMaxEntries bounds the cache; each entry pins a calibrated
// simulator snapshot (order of 100 KB). On overflow the whole map is
// dropped — calibration re-runs, bytes never change.
const memoMaxEntries = 4096

// NewMemo returns an empty calibration cache.
func NewMemo() *Memo { return &Memo{m: make(map[string]*memoEntry)} }

// DefaultMemo is the cache behind the default (nil) RunFunc.
var DefaultMemo = NewMemo()

// calibration returns the memoized calibration for cs, running the
// preamble on a miss. A cancelled or failed calibration is not cached,
// so a later uncancelled run retries cleanly.
func (mm *Memo) calibration(rc runctx.Ctx, cs spec.ChannelSpec) (*channel.Calibration, error) {
	key := cs.CalibrationKey()
	mm.mu.Lock()
	if len(mm.m) >= memoMaxEntries {
		mm.m = make(map[string]*memoEntry)
	}
	e, ok := mm.m[key]
	if !ok {
		e = &memoEntry{}
		mm.m[key] = e
	}
	mm.mu.Unlock()

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.cal != nil {
		// Traces record the cache decision (like the daemon's hit/miss
		// attrs) so a warm sweep's profile shows where calibration went.
		_, span := rc.StartSpan("sweep.calibration", obs.String("cache", "hit"))
		span.End()
		return e.cal, nil
	}
	crc, span := rc.StartSpan("sweep.calibration", obs.String("cache", "miss"))
	cal, err := cs.CalibrateCtx(crc)
	span.End()
	if err != nil {
		return nil, err
	}
	e.cal = cal
	return cal, nil
}

// Len reports how many calibration snapshots are cached.
func (mm *Memo) Len() int {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	return len(mm.m)
}

// RunFunc returns a sweep runner that transmits through mm's calibration
// snapshots: calibrate-once-per-identity, clone-per-transmission. Its
// reports are byte-identical to Direct's.
func (mm *Memo) RunFunc() RunFunc {
	return func(ctx context.Context, cs spec.ChannelSpec, bits int) (channel.Result, error) {
		rc := runctx.New(ctx, nil)
		cal, err := mm.calibration(rc, cs)
		if err != nil {
			return channel.Result{}, err
		}
		return cal.TransmitCtx(rc, channel.Alternating(bits))
	}
}

// Memoized is the default sweep runner: DefaultMemo's calibration-
// memoizing RunFunc.
func Memoized(ctx context.Context, cs spec.ChannelSpec, bits int) (channel.Result, error) {
	return DefaultMemo.RunFunc()(ctx, cs, bits)
}
