package sweep

import (
	"fmt"
	"strings"

	"repro/internal/cpu"
	"repro/internal/defense"
	"repro/internal/spec"
)

// Advisory is the machine-readable per-CPU-model security advisory a
// defense-spanning sweep renders down to: which channel configurations
// are live on the model, what capacity each registered mitigation
// leaves behind, what the mitigation costs in throughput, and which one
// the accounting recommends. The structure (and Render's text form)
// follows the affected-configurations / impact / fix format of vendor
// transient-execution advisories such as Arm's TFV-6.
//
// An Advisory embeds no timing or scheduling state: its bytes (JSON or
// Render) are a pure function of the report it was built from, so the
// serving daemon caches advisories exactly like artifacts.
type Advisory struct {
	// ID is the deterministic advisory identifier, derived from the
	// model name ("LFA-GOLD-6226").
	ID string `json:"id"`
	// Title names the advisory; Model and Microarch identify the part.
	Title     string `json:"title"`
	Model     string `json:"model"`
	Microarch string `json:"microarch"`
	// Reference cites the source analysis.
	Reference string `json:"reference"`
	// Filter, Bits, Seed echo the sweep the advisory was rendered from.
	Filter string `json:"filter"`
	Bits   int    `json:"bits"`
	Seed   uint64 `json:"seed"`
	// Affected lists the model's live channel variants at defense=none,
	// in canonical enumeration order.
	Affected []AdvisoryFinding `json:"affected"`
	// BaselineKbps is the aggregate undefended residual capacity: the
	// sum of the affected variants' mean residuals.
	BaselineKbps float64 `json:"baseline_kbps"`
	// Mitigations scores each applicable defense, in registry order.
	Mitigations []AdvisoryMitigation `json:"mitigations"`
	// Recommended names the mitigation with the least remaining
	// capacity (ties broken by performance cost, then registry order).
	Recommended string `json:"recommended"`
}

// AdvisoryFinding is one live channel variant on the advisory's model:
// its pasteable filter key and the variant's mean transmission numbers
// at defense=none.
type AdvisoryFinding struct {
	Key          string  `json:"key"`
	N            int     `json:"n"`
	MeanRate     float64 `json:"mean_rate_kbps"`
	MeanErr      float64 `json:"mean_error_rate"`
	ResidualKbps float64 `json:"residual_kbps"`
}

// AdvisoryMitigation scores one defense against the model's affected
// variants.
type AdvisoryMitigation struct {
	Defense string `json:"defense"`
	// Impact and Mitigation carry the registry's advisory prose.
	Impact     string `json:"impact"`
	Mitigation string `json:"mitigation"`
	// PerformanceCost is the defended/baseline cycle ratio on a
	// DSB-friendly workload (defense.PerformanceCost); 1.0 is free.
	PerformanceCost float64 `json:"performance_cost"`
	// RemainingKbps sums, over every affected variant, the capacity
	// that survives this defense: the measured defended residual where
	// one was swept, exactly zero where the defense eliminates the
	// variant's substrate (nosmt x MT), and the undefended baseline
	// where the defense cannot touch the variant at all (norapl x
	// timing).
	RemainingKbps float64 `json:"remaining_kbps"`
	// Cells is this defense's slice of the report's attack x defense
	// matrix, restricted to the advisory's model.
	Cells []MatrixCell `json:"cells,omitempty"`
}

// AdvisoryFilter is the sweep filter an advisory for the model is built
// from: the model's full scenario space across every defense.
func AdvisoryFilter(model string) Filter {
	return Filter{Model: model}
}

// variantKey names a spec's defense-free channel variant as a filter
// query — groupKey without the defense clause — so defended rows can be
// matched to their undefended twins.
func variantKey(s spec.ChannelSpec) string {
	return Filter{
		Mechanism: string(s.Mechanism),
		Threading: string(s.Threading),
		Sink:      string(s.Sink),
		SGX:       triOf(s.SGX),
		Stealthy:  triOf(s.Stealthy),
	}.String()
}

// variantAgg accumulates one variant's completed rows under one
// defense.
type variantAgg struct {
	n                       int
	rate, errRate, residual float64
	rep                     spec.ChannelSpec // representative spec for scenario facets
}

func (v *variantAgg) add(row Row) {
	v.n++
	v.rate += row.RateKbps
	v.errRate += row.ErrorRate
	v.residual += row.RateKbps * (1 - binaryEntropy(row.ErrorRate))
}

// NewAdvisory renders a defense-spanning, model-scoped sweep report
// into the model's advisory. Every completed row must belong to m (use
// AdvisoryFilter to build such a report), and the report must contain
// completed defense=none rows — the baseline the residual accounting is
// anchored to. Mitigation performance costs are measured on m at the
// report's base seed, so the advisory — like the report — is a pure
// function of (model, filter, options).
func NewAdvisory(rep Report, m cpu.Model) (Advisory, error) {
	adv := Advisory{
		ID:        advisoryID(m.Name),
		Title:     fmt.Sprintf("Frontend covert channels on %s (%s)", m.Name, m.Microarch),
		Model:     m.Name,
		Microarch: m.Microarch,
		Reference: "Leaky Frontends: Micro-Op Cache and Processor Frontend Attacks (HPCA 2022), Sections IV-VIII and XII",
		Filter:    rep.Filter,
		Bits:      rep.Bits,
		Seed:      rep.Seed,
	}
	// Aggregate completed rows per (defense, variant), keeping the
	// baseline variants' first-seen (canonical) order.
	byDefense := map[string]map[string]*variantAgg{}
	var variantOrder []string
	for _, row := range rep.Rows {
		if row.Err != "" {
			continue
		}
		if row.Spec.Model != m.Name {
			return Advisory{}, fmt.Errorf("sweep: advisory for %s built from a report containing %s rows (scope the filter to one model)", m.Name, row.Spec.Model)
		}
		vk := variantKey(row.Spec)
		agg := byDefense[row.Spec.Defense]
		if agg == nil {
			agg = map[string]*variantAgg{}
			byDefense[row.Spec.Defense] = agg
		}
		v := agg[vk]
		if v == nil {
			v = &variantAgg{rep: row.Spec}
			agg[vk] = v
			if row.Spec.Defense == defense.DefenseNone {
				variantOrder = append(variantOrder, vk)
			}
		}
		v.add(row)
	}
	baseline := byDefense[defense.DefenseNone]
	if len(baseline) == 0 {
		return Advisory{}, fmt.Errorf("sweep: advisory for %s needs completed defense=none rows as the baseline", m.Name)
	}
	for _, vk := range variantOrder {
		v := baseline[vk]
		adv.Affected = append(adv.Affected, AdvisoryFinding{
			Key:          vk,
			N:            v.n,
			MeanRate:     v.rate / float64(v.n),
			MeanErr:      v.errRate / float64(v.n),
			ResidualKbps: v.residual / float64(v.n),
		})
		adv.BaselineKbps += v.residual / float64(v.n)
	}

	// Score each defense: remaining capacity over the baseline
	// variants, performance cost on the model, matrix cells from its
	// own rows.
	for _, d := range defense.All() {
		if d.Name == defense.DefenseNone {
			continue
		}
		defended := byDefense[d.Name]
		eliminatesAny := false
		for _, vk := range variantOrder {
			if d.Eliminates(scenarioOf(baseline[vk].rep, m)) {
				eliminatesAny = true
				break
			}
		}
		if len(defended) == 0 && !eliminatesAny {
			// The defense has no purchase on this model at all (nosmt
			// where SMT is already off): no mitigation row.
			continue
		}
		mit := AdvisoryMitigation{
			Defense:         d.Name,
			Impact:          d.Impact,
			Mitigation:      d.Mitigation,
			PerformanceCost: defense.PerformanceCost(m, d.Apply(m), rep.Seed),
			Cells:           defenseCells(rep.Rows, m.Name, d.Name),
		}
		for _, vk := range variantOrder {
			base := baseline[vk]
			switch v := defended[vk]; {
			case d.Eliminates(scenarioOf(base.rep, m)):
				// Substrate removed: exactly zero, no measurement needed.
			case v != nil:
				mit.RemainingKbps += v.residual / float64(v.n)
			default:
				// The defense cannot touch this variant; it stays at its
				// undefended baseline.
				mit.RemainingKbps += base.residual / float64(base.n)
			}
		}
		adv.Mitigations = append(adv.Mitigations, mit)
	}
	for _, mit := range adv.Mitigations {
		if adv.Recommended == "" {
			adv.Recommended = mit.Defense
			continue
		}
		best := findMitigation(adv.Mitigations, adv.Recommended)
		if mit.RemainingKbps < best.RemainingKbps ||
			(mit.RemainingKbps == best.RemainingKbps && mit.PerformanceCost < best.PerformanceCost) {
			adv.Recommended = mit.Defense
		}
	}
	return adv, nil
}

func findMitigation(ms []AdvisoryMitigation, name string) AdvisoryMitigation {
	for _, m := range ms {
		if m.Defense == name {
			return m
		}
	}
	return AdvisoryMitigation{}
}

// scenarioOf projects a spec onto defense applicability facets, judged
// against the undefended model.
func scenarioOf(s spec.ChannelSpec, m cpu.Model) defense.Scenario {
	return defense.Scenario{
		MT:        s.Threading == spec.ThreadingMT,
		PowerSink: s.Sink == spec.SinkPower,
		ModelHT:   m.HyperThreading,
	}
}

// defenseCells computes the attack x defense matrix cells for one
// model's rows under one defense, reusing the report matrix
// aggregation.
func defenseCells(rows []Row, model, def string) []MatrixCell {
	var scoped []Row
	for _, row := range rows {
		if row.Err == "" && row.Spec.Model == model && row.Spec.Defense == def {
			scoped = append(scoped, row)
		}
	}
	return newMatrix(scoped)
}

// advisoryID derives the deterministic advisory identifier from a model
// name: "LFA-" (Leaky Frontend Advisory) plus the name uppercased with
// every non-alphanumeric run collapsed to one dash.
func advisoryID(model string) string {
	var b strings.Builder
	b.WriteString("LFA")
	dash := true
	for _, r := range strings.ToUpper(model) {
		if (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9') {
			if dash {
				b.WriteByte('-')
				dash = false
			}
			b.WriteRune(r)
			continue
		}
		dash = true
	}
	return b.String()
}

// Render writes the advisory as text in the two-column layout of vendor
// transient-execution advisories (TFV-6 style): header rows, the
// affected-configurations table, the mitigation scores, and the
// recommendation. Like the JSON form it embeds no timing, so the bytes
// are a pure function of the underlying report.
func (a Advisory) Render() string {
	var b strings.Builder
	rule := strings.Repeat("=", 78) + "\n"
	b.WriteString(rule)
	row := func(k, v string) { fmt.Fprintf(&b, "%-22s %s\n", k, v) }
	row("Advisory ID", a.ID)
	row("Title", a.Title)
	row("Reference", a.Reference)
	filter := a.Filter
	if filter == "" {
		filter = "(all)"
	}
	row("Sweep", fmt.Sprintf("filter=%s bits=%d seed=%d", filter, a.Bits, a.Seed))
	row("Impact", fmt.Sprintf("%d live channel variants; %.2f Kbps aggregate residual capacity undefended",
		len(a.Affected), a.BaselineKbps))
	row("Recommended fix", a.Recommended)
	b.WriteString(rule)
	b.WriteString("Configurations affected (defense=none):\n")
	for _, f := range a.Affected {
		fmt.Fprintf(&b, "  %-66s n=%d rate=%9.2f Kbps err=%6.2f%% residual=%9.2f Kbps\n",
			f.Key, f.N, f.MeanRate, 100*f.MeanErr, f.ResidualKbps)
	}
	b.WriteString("Mitigations (remaining capacity over all affected configurations):\n")
	for _, m := range a.Mitigations {
		fmt.Fprintf(&b, "  %-10s perf cost=%5.2fx remaining=%9.2f Kbps (of %.2f baseline)\n",
			m.Defense, m.PerformanceCost, m.RemainingKbps, a.BaselineKbps)
		fmt.Fprintf(&b, "    impact: %s\n", m.Impact)
		fmt.Fprintf(&b, "    deploy: %s\n", m.Mitigation)
		for _, c := range m.Cells {
			fmt.Fprintf(&b, "      %-38s n=%2d residual=%9.2f Kbps err=%6.2f%%\n",
				c.Key, c.N, c.ResidualKbps, 100*c.MeanErr)
		}
	}
	if rec := findMitigation(a.Mitigations, a.Recommended); rec.Defense != "" {
		fmt.Fprintf(&b, "Recommendation: apply %s — %s\n", rec.Defense, rec.Mitigation)
	}
	b.WriteString(rule)
	return b.String()
}
