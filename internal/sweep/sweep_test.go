package sweep

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/channel"
	"repro/internal/cpu"
	"repro/internal/rng"
	"repro/internal/runctx"
	"repro/internal/spec"
)

func TestExpandSplitsSeedsDeterministically(t *testing.T) {
	f, err := ParseFilter("sink=timing,sgx=false")
	if err != nil {
		t.Fatal(err)
	}
	o := Options{Seed: 7}
	a, err := Expand(f, o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Expand(f, o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two expansions of one (filter, options) differ")
	}
	// The shard preserves canonical enumeration order and matches a
	// hand filter of the enumerated space.
	want := spec.Filter(spec.Enumerate(cpu.Models()...), func(s spec.ChannelSpec) bool {
		return s.Sink == spec.SinkTiming && !s.SGX
	})
	if len(a) != len(want) {
		t.Fatalf("expanded %d specs, want %d", len(a), len(want))
	}
	seen := map[uint64]bool{}
	for i, s := range a {
		ws := want[i]
		ws.Seed = rng.SplitSeed(7, seedLabel(ws))
		if s != ws.Normalize() {
			t.Errorf("spec %d: %s, want %s", i, s, ws.Normalize())
		}
		if seen[s.Seed] {
			t.Errorf("seed collision at %s", s)
		}
		seen[s.Seed] = true
		if err := s.Validate(); err != nil {
			t.Errorf("expanded spec invalid: %v", err)
		}
	}
	// A different base seed re-seeds every spec.
	c, err := Expand(f, Options{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range c {
		if c[i].Seed == a[i].Seed {
			t.Errorf("spec %d seed did not move with the base seed", i)
		}
	}
}

func TestExpandAppliesScaleOverrides(t *testing.T) {
	all, err := Expand(Filter{}, Options{CalibBits: 4, MaxP: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(spec.Enumerate(cpu.Models()...)) {
		t.Fatalf("scale overrides changed the shard size: %d", len(all))
	}
	for _, s := range all {
		if s.CalibBits != 4 {
			t.Errorf("calib override not applied: %s", s)
		}
		if s.Sink == spec.SinkPower && s.P != 2000 {
			t.Errorf("power spec not clamped: %s", s)
		}
		if s.SGX && s.Threading == spec.ThreadingNonMT && s.P != 1000 {
			// Clamping to 2000 leaves the SGX non-MT floor p=1000 alone.
			t.Errorf("SGX non-MT spec perturbed: %s", s)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("scaled spec invalid: %v", err)
		}
	}
	// A clamp below a validity floor keeps the spec at its floor
	// instead of dropping or corrupting it.
	sgxOnly, err := Expand(Filter{SGX: TriTrue, Threading: "nonmt"}, Options{MaxP: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(sgxOnly) == 0 {
		t.Fatal("SGX non-MT shard empty")
	}
	for _, s := range sgxOnly {
		if s.P != 1000 {
			t.Errorf("clamp below the SGX floor produced p=%d: %s", s.P, s)
		}
	}
	if _, err := Expand(Filter{}, Options{CalibBits: 1}); err == nil {
		t.Error("Expand accepted calib=1")
	}
	// A negative clamp would silently degrade into "no clamp": reject.
	if _, err := Expand(Filter{}, Options{MaxP: -1}); err == nil {
		t.Error("Expand accepted maxp=-1")
	}
	// Hand-built filters ParseFilter never vetted are validated too: a
	// malformed glob (which Match silently never matches) and a comma
	// glob (which cannot round-trip through String) are errors.
	if _, err := Expand(Filter{Model: "["}, Options{}); err == nil {
		t.Error("Expand accepted a malformed glob")
	}
	if _, err := Expand(Filter{Model: "[a,b]"}, Options{}); err == nil {
		t.Error("Expand accepted a comma glob that cannot round-trip")
	}
	if _, err := Expand(Filter{D: Range{Lo: 6, Hi: 2, Set: true}}, Options{}); err == nil {
		t.Error("Expand accepted an inverted hand-built range")
	}
	if _, err := Expand(Filter{SGX: Tri(9)}, Options{}); err == nil {
		t.Error("Expand accepted an out-of-range Tri")
	}
}

// shortScale is the reduced sweep scale the worker-identity tests run
// at: tiny messages and preambles, and the power sink's p clamped so a
// full-space sweep takes seconds, mirroring the -short reductions used
// across the repository.
func shortScale(workers int) Options {
	return Options{Bits: 4, CalibBits: 4, MaxP: 1000, Workers: workers, Seed: 3}
}

// TestRunReportBytesIdenticalAcrossWorkers is the sweep engine's
// headline determinism proof: the whole valid scenario space, swept on
// one worker and on eight, renders and marshals to the same bytes. In
// -short mode the sweep covers the timing slice of the space; the full
// run covers every spec including the power sink.
func TestRunReportBytesIdenticalAcrossWorkers(t *testing.T) {
	f := Filter{}
	if testing.Short() {
		f = Filter{Sink: "timing", SGX: TriFalse}
	}
	serial, err := Run(context.Background(), f, shortScale(1), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var emitted []string
	parallel, err := Run(context.Background(), f, shortScale(8), nil, func(r Row) {
		emitted = append(emitted, r.Canonical)
	})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Specs == 0 || serial.Completed != serial.Specs {
		t.Fatalf("sweep did not complete: %d/%d", serial.Completed, serial.Specs)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("reports differ between -workers=1 and -workers=8")
	}
	if serial.Render() != parallel.Render() {
		t.Fatal("rendered reports differ between worker counts")
	}
	sj, _ := json.Marshal(serial)
	pj, _ := json.Marshal(parallel)
	if string(sj) != string(pj) {
		t.Fatal("JSON reports differ between worker counts")
	}
	// emit saw every row, in canonical order, despite 8 workers.
	if len(emitted) != parallel.Specs {
		t.Fatalf("emit called %d times, want %d", len(emitted), parallel.Specs)
	}
	for i, c := range emitted {
		if c != parallel.Rows[i].Canonical {
			t.Fatalf("emit order diverged at %d: %s", i, c)
		}
	}
}

func TestRunRowsMatchDirectTransmit(t *testing.T) {
	f, err := ParseFilter("mech=slowswitch,defense=none")
	if err != nil {
		t.Fatal(err)
	}
	o := Options{Bits: 8, CalibBits: 4, Seed: 5}
	rep, err := Run(context.Background(), f, o, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Specs != len(cpu.Models()) {
		t.Fatalf("undefended slowswitch shard has %d specs, want one per model", rep.Specs)
	}
	for _, row := range rep.Rows {
		res, err := row.Spec.Transmit(channel.Alternating(o.Bits))
		if err != nil {
			t.Fatal(err)
		}
		if row.RateKbps != res.RateKbps || row.ErrorRate != res.ErrorRate {
			t.Errorf("row %s diverges from a direct transmit: %v/%v vs %v/%v",
				row.Canonical, row.RateKbps, row.ErrorRate, res.RateKbps, res.ErrorRate)
		}
	}
	if rep.Filter != "mech=slowswitch,defense=none" {
		t.Errorf("report filter %q", rep.Filter)
	}
	if len(rep.Groups) != 1 || rep.Groups[0].N != rep.Specs {
		t.Fatalf("groups %+v, want one slowswitch group of %d", rep.Groups, rep.Specs)
	}
	g := rep.Groups[0]
	if g.MinRate > g.MeanRate || g.MeanRate > g.MaxRate {
		t.Errorf("group stats unordered: %+v", g)
	}
	// The group key is itself a valid filter selecting the group.
	gf, err := ParseFilter(g.Key)
	if err != nil {
		t.Fatalf("group key %q is not a parseable filter: %v", g.Key, err)
	}
	for _, row := range rep.Rows {
		if !gf.Match(row.Spec) {
			t.Errorf("group key %q does not match its own row %s", g.Key, row.Canonical)
		}
	}
}

func TestRunCancellationYieldsPartialReport(t *testing.T) {
	f, err := ParseFilter("sgx=false,sink=timing,thread=nonmt,mech=eviction")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	fired := 0
	// Cancel from inside the second spec's transmission: the in-flight
	// spec unwinds at its next checkpoint, later specs never start.
	run := func(ctx context.Context, cs spec.ChannelSpec, bits int) (channel.Result, error) {
		fired++
		if fired == 2 {
			cancel()
		}
		return cs.TransmitCtx(runctx.New(ctx, nil), channel.Alternating(bits))
	}
	rep, err := Run(ctx, f, Options{Bits: 4, CalibBits: 4}, run, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 1 {
		t.Fatalf("completed %d rows, want exactly the pre-cancellation one", rep.Completed)
	}
	if rep.Rows[0].Err != "" || rep.Rows[0].RateKbps == 0 {
		t.Errorf("first row should have completed intact: %+v", rep.Rows[0])
	}
	for _, row := range rep.Rows[1:] {
		if !strings.Contains(row.Err, context.Canceled.Error()) {
			t.Errorf("cancelled row %s carries err %q", row.Canonical, row.Err)
		}
	}
	// The completed row is byte-identical to an uncancelled sweep's:
	// per-spec seed splitting makes rows independent of their siblings.
	full, err := Run(context.Background(), f, Options{Bits: 4, CalibBits: 4}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if full.Rows[0] != rep.Rows[0] {
		t.Errorf("cancellation perturbed a completed row:\n%+v\n%+v", full.Rows[0], rep.Rows[0])
	}
	// Groups aggregate only completed rows.
	if len(rep.Groups) != 1 || rep.Groups[0].N != 1 {
		t.Errorf("partial report groups: %+v", rep.Groups)
	}
}
