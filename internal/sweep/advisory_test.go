package sweep

import (
	"context"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/channel"
	"repro/internal/cpu"
	"repro/internal/defense"
	"repro/internal/spec"
)

// advisoryReport sweeps one model's scenario space at the reduced test
// scale. In -short mode the sweep keeps only the timing slice, which
// still spans the defense axis.
func advisoryReport(t *testing.T, m cpu.Model) Report {
	t.Helper()
	f := AdvisoryFilter(m.Name)
	if testing.Short() {
		f.Sink = "timing"
		f.SGX = TriFalse
	}
	rep, err := Run(context.Background(), f, shortScale(8), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != rep.Specs || rep.Specs == 0 {
		t.Fatalf("advisory sweep incomplete: %d/%d", rep.Completed, rep.Specs)
	}
	return rep
}

func TestNewAdvisoryAccounting(t *testing.T) {
	m := cpu.Gold6226()
	rep := advisoryReport(t, m)
	adv, err := NewAdvisory(rep, m)
	if err != nil {
		t.Fatal(err)
	}
	if adv.ID != "LFA-GOLD-6226" {
		t.Errorf("advisory ID %q", adv.ID)
	}
	if adv.Model != m.Name || adv.Microarch != m.Microarch || adv.Seed != rep.Seed {
		t.Errorf("advisory header does not echo the model/report: %+v", adv)
	}

	// Affected covers exactly the defense=none variants, in canonical
	// order, and the baseline is their residual sum.
	wantVariants := map[string]bool{}
	var wantOrder []string
	for _, row := range rep.Rows {
		if row.Err == "" && row.Spec.Defense == defense.DefenseNone && !wantVariants[variantKey(row.Spec)] {
			wantVariants[variantKey(row.Spec)] = true
			wantOrder = append(wantOrder, variantKey(row.Spec))
		}
	}
	if len(adv.Affected) != len(wantOrder) {
		t.Fatalf("%d affected variants, want %d", len(adv.Affected), len(wantOrder))
	}
	total := 0.0
	for i, f := range adv.Affected {
		if f.Key != wantOrder[i] {
			t.Errorf("affected[%d] = %s, want %s", i, f.Key, wantOrder[i])
		}
		if f.N == 0 || f.ResidualKbps < 0 || f.ResidualKbps > f.MeanRate {
			t.Errorf("affected[%d] stats implausible: %+v", i, f)
		}
		// Each key is a pasteable filter matching its own variant.
		vf, err := ParseFilter(f.Key)
		if err != nil {
			t.Fatalf("affected key %q not parseable: %v", f.Key, err)
		}
		matched := false
		for _, row := range rep.Rows {
			if row.Spec.Defense == defense.DefenseNone && vf.Match(row.Spec) {
				matched = true
			}
		}
		if !matched {
			t.Errorf("affected key %q matches no baseline row", f.Key)
		}
		total += f.ResidualKbps
	}
	if adv.BaselineKbps != total {
		t.Errorf("baseline %v != sum of affected residuals %v", adv.BaselineKbps, total)
	}

	// Gold 6226 has hyper-threading: every non-none defense has
	// purchase, so all four are scored and nosmt zeroes the MT variants.
	var names []string
	for _, mit := range adv.Mitigations {
		names = append(names, mit.Defense)
		if mit.PerformanceCost < 1.0 {
			t.Errorf("%s performance cost %v < 1 (defenses never speed the core up)", mit.Defense, mit.PerformanceCost)
		}
		if mit.RemainingKbps < 0 {
			t.Errorf("%s remaining capacity negative: %v", mit.Defense, mit.RemainingKbps)
		}
		if mit.Impact == "" || mit.Mitigation == "" {
			t.Errorf("%s advisory prose missing", mit.Defense)
		}
	}
	want := []string{"nosmt", "eqpaths", "norapl", "partition"}
	if testing.Short() {
		// The -short slice drops the power sink, so norapl has neither
		// rows nor eliminations and is skipped.
		want = []string{"nosmt", "eqpaths", "partition"}
	}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("mitigations %v, want registry order %v", names, want)
	}
	nosmt := findMitigation(adv.Mitigations, "nosmt")
	mtBaseline := 0.0
	for i, f := range adv.Affected {
		if strings.Contains(f.Key, "thread=mt") {
			mtBaseline += adv.Affected[i].ResidualKbps
		}
	}
	if mtBaseline == 0 {
		t.Fatal("no MT variants in the baseline — the nosmt elimination check is vacuous")
	}
	// Exact accounting: on an HT model nosmt eliminates every MT variant
	// (zero contribution) and every other variant is measured against its
	// nosmt-defended twin, so the remaining capacity is precisely the sum
	// of the report's defense=nosmt rows — neither the eliminated MT
	// baselines nor any defense=none carry-over may leak in. (A blanket
	// remaining < baseline bound would be wrong: a defended twin can beat
	// its baseline residual when the defense happens to lower the error.)
	nosmtRows := 0.0
	for _, row := range rep.Rows {
		if row.Err == "" && row.Spec.Defense == defense.DefenseNoSMT {
			nosmtRows += row.RateKbps * (1 - binaryEntropy(row.ErrorRate))
		}
	}
	if diff := math.Abs(nosmt.RemainingKbps - nosmtRows); diff > 1e-9 {
		t.Errorf("nosmt remaining %v != sum of nosmt twin rows %v (MT eliminations not worth 0, or baseline leaked in)",
			nosmt.RemainingKbps, nosmtRows)
	}

	// Recommended is one of the scored mitigations and no other scored
	// mitigation strictly beats it.
	rec := findMitigation(adv.Mitigations, adv.Recommended)
	if rec.Defense == "" {
		t.Fatalf("recommended %q is not a scored mitigation", adv.Recommended)
	}
	for _, mit := range adv.Mitigations {
		if mit.RemainingKbps < rec.RemainingKbps {
			t.Errorf("%s (remaining %v) beats recommended %s (%v)",
				mit.Defense, mit.RemainingKbps, rec.Defense, rec.RemainingKbps)
		}
	}

	// The advisory is a pure function of (report, model): bytes and
	// rendering are reproducible.
	again, err := NewAdvisory(rep, m)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(adv, again) {
		t.Fatal("two advisories from one report differ")
	}
	aj, _ := json.Marshal(adv)
	bj, _ := json.Marshal(again)
	if string(aj) != string(bj) {
		t.Fatal("advisory JSON not reproducible")
	}
	text := adv.Render()
	if text != again.Render() {
		t.Fatal("advisory rendering not reproducible")
	}
	for _, want := range []string{adv.ID, adv.Title, "Configurations affected", "Mitigations", "Recommendation: apply " + adv.Recommended} {
		if !strings.Contains(text, want) {
			t.Errorf("rendered advisory missing %q", want)
		}
	}
}

func TestNewAdvisorySkipsDefensesWithoutPurchase(t *testing.T) {
	// E-2288G ships with hyper-threading disabled (Table I): nosmt and
	// partition have nothing to act on, so the advisory scores only
	// eqpaths and norapl.
	m := cpu.XeonE2288G()
	rep := advisoryReport(t, m)
	adv, err := NewAdvisory(rep, m)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, mit := range adv.Mitigations {
		names = append(names, mit.Defense)
	}
	want := []string{"eqpaths", "norapl"}
	if testing.Short() {
		// The -short slice drops the power sink; norapl rows vanish and
		// norapl eliminates nothing, so only eqpaths remains.
		want = []string{"eqpaths"}
	}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("E-2288G mitigations %v, want %v", names, want)
	}
}

func TestNewAdvisoryRejectsUnusableReports(t *testing.T) {
	// A report spanning several models cannot be rendered as one
	// model's advisory.
	f, err := ParseFilter("mech=slowswitch,defense=none")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), f, shortScale(4), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewAdvisory(rep, cpu.Gold6226()); err == nil || !strings.Contains(err.Error(), "scope the filter") {
		t.Errorf("mixed-model report accepted: %v", err)
	}

	// A report with no defense=none rows has no baseline to anchor to.
	f2, err := ParseFilter("model=Gold 6226,mech=slowswitch,defense=eqpaths")
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := Run(context.Background(), f2, shortScale(1), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Specs == 0 {
		t.Fatal("defended shard empty")
	}
	if _, err := NewAdvisory(rep2, cpu.Gold6226()); err == nil || !strings.Contains(err.Error(), "defense=none") {
		t.Errorf("baseline-free report accepted: %v", err)
	}
}

// TestAdvisoryDefenseNoneBuildIdentity proves the defense axis is free
// when unused: a defense=none spec and the same spec with the field
// left empty build identical channels and transmit identical bytes.
func TestAdvisoryDefenseNoneBuildIdentity(t *testing.T) {
	base := spec.ChannelSpec{
		Model:     "Gold 6226",
		Mechanism: spec.MechanismEviction,
		Threading: spec.ThreadingMT,
		Sink:      spec.SinkTiming,
		Seed:      11,
		CalibBits: 4,
	}
	explicit := base
	explicit.Defense = defense.DefenseNone
	a, err := base.Transmit(channel.Alternating(4))
	if err != nil {
		t.Fatal(err)
	}
	b, err := explicit.Transmit(channel.Alternating(4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("defense=none perturbed the channel:\n%+v\n%+v", a, b)
	}
}
