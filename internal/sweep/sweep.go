package sweep

import (
	"context"
	"fmt"
	"math"
	"strings"

	"repro/internal/channel"
	"repro/internal/cpu"
	"repro/internal/defense"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/runctx"
	"repro/internal/spec"
)

// Options scales a sweep. The zero value sweeps the whole Table I
// catalog at the paper-default message length on one worker.
type Options struct {
	// Models is the catalog slice to enumerate; nil means every Table I
	// model. The filter's model glob narrows further.
	Models []cpu.Model
	// Bits is the alternating-message length transmitted per spec;
	// <= 0 means 200 (the experiments default).
	Bits int
	// Seed is the sweep's base seed; each spec's own seed is split from
	// it by the spec's seedless canonical identity (rng.SplitSeed), so
	// per-spec streams are independent and the whole report is a pure
	// function of (filter, options) — never of scheduling. 0 means 1.
	Seed uint64
	// CalibBits overrides every spec's calibration-preamble length;
	// 0 keeps each spec's default. Must be 2..spec.MaxCalibBits.
	CalibBits int
	// MaxP clamps every spec's per-bit repetition parameter p, the
	// sweep-level analog of the repository's -short scale reduction:
	// a full-space sweep with MaxP a few thousand finishes in seconds
	// instead of minutes because the power sink's paper-default
	// p=120000 dominates everything else. A clamp that would make a
	// spec invalid (e.g. below the SGX non-MT floor) is not applied to
	// that spec. 0 keeps every spec's default.
	MaxP int
	// Workers bounds how many specs transmit concurrently; <= 0 means 1.
	// Reports are byte-identical for every worker count.
	Workers int
}

// normalize fills the option defaults.
func (o Options) normalize() Options {
	if len(o.Models) == 0 {
		o.Models = cpu.Models()
	}
	if o.Bits <= 0 {
		o.Bits = 200
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	return o
}

// Row is one spec's result in a Report: the spec as it ran (split seed
// included, so the row can be re-run individually), its canonical
// string, and the transmission's headline numbers. Err is set instead
// of the numbers when the sweep was cancelled before the spec
// completed.
type Row struct {
	Spec      spec.ChannelSpec `json:"spec"`
	Canonical string           `json:"canonical"`
	RateKbps  float64          `json:"rate_kbps"`
	ErrorRate float64          `json:"error_rate"`
	Err       string           `json:"err,omitempty"`
}

// Group aggregates the completed rows of one channel variant —
// mechanism x threading x sink x SGX x stealthy x defense, across
// models and protocol parameters. Key is a filter query selecting
// exactly this group, so a client can paste it back into a narrower
// sweep.
type Group struct {
	Key      string  `json:"key"`
	N        int     `json:"n"`
	MinRate  float64 `json:"min_rate_kbps"`
	MeanRate float64 `json:"mean_rate_kbps"`
	MaxRate  float64 `json:"max_rate_kbps"`
	MinErr   float64 `json:"min_error_rate"`
	MeanErr  float64 `json:"mean_error_rate"`
	MaxErr   float64 `json:"max_error_rate"`
}

// Report is a sweep's aggregate: per-spec rows plus per-variant
// min/mean/max matrices, both in canonical enumeration order. A report
// embeds no timing or scheduling state, so its bytes (JSON or Render)
// are identical for every worker count; a cancelled sweep's report is
// partial, with Err set on the rows that did not complete.
type Report struct {
	// Filter is the canonical query that selected the shard ("" is the
	// whole space).
	Filter string `json:"filter"`
	// Bits and Seed echo the sweep scale (Seed is the base seed the
	// per-spec seeds were split from).
	Bits int    `json:"bits"`
	Seed uint64 `json:"seed"`
	// Specs counts the expanded shard; Completed the rows without Err.
	Specs     int     `json:"specs"`
	Completed int     `json:"completed"`
	Rows      []Row   `json:"rows"`
	Groups    []Group `json:"groups,omitempty"`
	// Matrix is the attack x defense view: one cell per
	// (mechanism, defense) combination with completed rows, in
	// mechanism-major canonical order. It is the Section XII ablation
	// readout — what capacity survives each mitigation.
	Matrix []MatrixCell `json:"matrix,omitempty"`
}

// MatrixCell aggregates the completed rows of one mechanism x defense
// combination across every other axis. Key is a filter query selecting
// exactly this cell, pasteable back into a narrower sweep.
type MatrixCell struct {
	Key       string `json:"key"`
	Mechanism string `json:"mechanism"`
	Defense   string `json:"defense"`
	N         int    `json:"n"`
	// MeanRate and MeanErr average the cell's raw transmissions.
	MeanRate float64 `json:"mean_rate_kbps"`
	MeanErr  float64 `json:"mean_error_rate"`
	// ResidualKbps is the mean residual capacity: per row, the raw rate
	// discounted by the binary-symmetric-channel capacity factor
	// 1 - H2(error), so a channel a defense drove to coin-flip error
	// contributes ~0 however fast it signals.
	ResidualKbps float64 `json:"residual_kbps"`
}

// RunFunc executes one scenario and returns its transmission. The
// serving daemon wires this to its cache-aware channel-run path;
// Memoized — Direct plus calibration-snapshot reuse, byte-identical to
// it — is the in-process default.
type RunFunc func(ctx context.Context, cs spec.ChannelSpec, bits int) (channel.Result, error)

// Direct transmits the scenario in-process, with no cache in front.
func Direct(ctx context.Context, cs spec.ChannelSpec, bits int) (channel.Result, error) {
	return cs.TransmitCtx(runctx.New(ctx, nil), channel.Alternating(bits))
}

// seedLabel is the spec's identity for seed splitting: its canonical
// encoding without the seed clause, so the split depends on what the
// scenario is, never on what seed it happens to hold.
func seedLabel(s spec.ChannelSpec) string {
	return s.Identity()
}

// Expand materializes the filter's shard of the scenario space: the
// enumerated specs the filter matches, in canonical enumeration order,
// with the options' calibration override and p clamp applied and each
// spec's seed split from the base seed. Every returned spec is
// normalized and valid for its model; the only error is an
// out-of-range CalibBits override.
func Expand(f Filter, o Options) ([]spec.ChannelSpec, error) {
	o = o.normalize()
	if err := f.validate(); err != nil {
		return nil, err
	}
	if o.CalibBits != 0 && (o.CalibBits < 2 || o.CalibBits > spec.MaxCalibBits) {
		return nil, fmt.Errorf("sweep: calib=%d out of range (want 2..%d)", o.CalibBits, spec.MaxCalibBits)
	}
	if o.MaxP < 0 {
		// A negative clamp would fail every per-spec Validate and
		// silently degrade into "no clamp" — a full paper-scale sweep
		// where the caller asked for a reduced one. Reject it instead.
		return nil, fmt.Errorf("sweep: maxp=%d out of range (want >= 0)", o.MaxP)
	}
	var out []spec.ChannelSpec
	for _, s := range spec.Enumerate(o.Models...) {
		if !f.Match(s) {
			continue
		}
		if o.CalibBits != 0 {
			s.CalibBits = o.CalibBits
		}
		if o.MaxP != 0 && s.P > o.MaxP {
			clamped := s
			clamped.P = o.MaxP
			// A clamp below a scenario's validity floor (the SGX non-MT
			// p >= 1000 rule) would reject a spec the filter selected;
			// keep that spec at its floor instead of dropping it.
			if clamped.Validate() == nil {
				s = clamped
			}
		}
		s.Seed = rng.SplitSeed(o.Seed, seedLabel(s))
		out = append(out, s.Normalize())
	}
	return out, nil
}

// Run expands the filter and executes the shard on a bounded worker
// pool, returning the aggregated report. Each spec transmits through
// run (Direct, or a caching layer); emit, when non-nil, is called from
// the calling goroutine once per row in canonical order, as soon as
// every earlier row has also landed — so a caller can stream results
// while the sweep is still running without perturbing their order.
//
// Cancellation is cooperative and per-spec: in-flight transmissions
// unwind at their next checkpoint, unstarted specs are skipped, and
// both yield rows with Err set. Rows that completed before the
// cancellation are identical to an uncancelled sweep's — per-spec seed
// splitting makes every row independent of what ran around it — so Run
// returns the partial report rather than an error.
func Run(ctx context.Context, f Filter, o Options, run RunFunc, emit func(Row)) (Report, error) {
	specs, err := Expand(f, o)
	if err != nil {
		return Report{}, err
	}
	return RunSpecs(ctx, f, o, specs, run, emit), nil
}

// RunSpecs is Run over an already-expanded shard (as returned by
// Expand for the same filter and options), for callers that needed the
// specs up front — the serving daemon probes its cache against the
// shard before deciding admission — so the expansion happens exactly
// once.
func RunSpecs(ctx context.Context, f Filter, o Options, specs []spec.ChannelSpec, run RunFunc, emit func(Row)) Report {
	o = o.normalize()
	if run == nil {
		run = Memoized
	}
	rows := make([]Row, len(specs))
	workers := o.Workers
	if workers > len(specs) {
		workers = len(specs)
	}
	jobs := make(chan int)
	completions := make(chan int)
	for w := 0; w < workers; w++ {
		go func() {
			for i := range jobs {
				cs := specs[i]
				row := Row{Spec: cs, Canonical: cs.String()}
				if err := ctx.Err(); err != nil {
					row.Err = err.Error()
				} else {
					// Per-spec span (a no-op on untraced sweeps): shard
					// index plus the spec's cache identity, so a profile
					// ties each track back to a runnable scenario.
					sctx, span := obs.Start(ctx, "sweep.spec",
						obs.String("spec", row.Canonical),
						obs.String("cachekey", cs.CacheKey()),
						obs.Int("shard_index", i))
					if res, err := run(sctx, cs, o.Bits); err != nil {
						row.Err = err.Error()
						span.SetAttr("err", row.Err)
					} else {
						row.RateKbps, row.ErrorRate = res.RateKbps, res.ErrorRate
					}
					span.End()
				}
				rows[i] = row
				completions <- i
			}
		}()
	}
	go func() {
		for i := range specs {
			jobs <- i
		}
		close(jobs)
	}()
	done := make([]bool, len(specs))
	next := 0
	for finished := 0; finished < len(specs); finished++ {
		done[<-completions] = true
		for next < len(specs) && done[next] {
			if emit != nil {
				emit(rows[next])
			}
			next++
		}
	}
	return NewReport(f, o, rows)
}

// NewReport aggregates rows (in canonical enumeration order) into a
// Report. It is exported so a serving layer that ran the specs itself
// can aggregate identically to Run.
func NewReport(f Filter, o Options, rows []Row) Report {
	o = o.normalize()
	r := Report{Filter: f.String(), Bits: o.Bits, Seed: o.Seed, Specs: len(rows), Rows: rows}
	byKey := map[string]int{}
	for _, row := range rows {
		if row.Err != "" {
			continue
		}
		r.Completed++
		key := groupKey(row.Spec)
		i, ok := byKey[key]
		if !ok {
			i = len(r.Groups)
			byKey[key] = i
			r.Groups = append(r.Groups, Group{Key: key, MinRate: row.RateKbps, MaxRate: row.RateKbps,
				MinErr: row.ErrorRate, MaxErr: row.ErrorRate})
		}
		g := &r.Groups[i]
		g.N++
		g.MinRate = min(g.MinRate, row.RateKbps)
		g.MaxRate = max(g.MaxRate, row.RateKbps)
		g.MeanRate += row.RateKbps
		g.MinErr = min(g.MinErr, row.ErrorRate)
		g.MaxErr = max(g.MaxErr, row.ErrorRate)
		g.MeanErr += row.ErrorRate
	}
	for i := range r.Groups {
		r.Groups[i].MeanRate /= float64(r.Groups[i].N)
		r.Groups[i].MeanErr /= float64(r.Groups[i].N)
	}
	r.Matrix = newMatrix(rows)
	return r
}

// newMatrix aggregates completed rows into the attack x defense matrix,
// in mechanism-major canonical order (enumeration mechanism order by
// defense registry order), skipping empty cells. Accumulation follows
// row order, so the floats — like everything else in a Report — are
// byte-identical for every worker count.
func newMatrix(rows []Row) []MatrixCell {
	type cellKey struct{ mech, def string }
	cells := map[cellKey]*MatrixCell{}
	for _, row := range rows {
		if row.Err != "" {
			continue
		}
		k := cellKey{string(row.Spec.Mechanism), row.Spec.Defense}
		c, ok := cells[k]
		if !ok {
			c = &MatrixCell{
				Key:       Filter{Mechanism: k.mech, Defense: k.def}.String(),
				Mechanism: k.mech,
				Defense:   k.def,
			}
			cells[k] = c
		}
		c.N++
		c.MeanRate += row.RateKbps
		c.MeanErr += row.ErrorRate
		c.ResidualKbps += row.RateKbps * (1 - binaryEntropy(row.ErrorRate))
	}
	var out []MatrixCell
	for _, mech := range []spec.Mechanism{spec.MechanismEviction, spec.MechanismMisalignment, spec.MechanismSlowSwitch} {
		for _, def := range defense.Names() {
			c, ok := cells[cellKey{string(mech), def}]
			if !ok {
				continue
			}
			c.MeanRate /= float64(c.N)
			c.MeanErr /= float64(c.N)
			c.ResidualKbps /= float64(c.N)
			out = append(out, *c)
		}
	}
	return out
}

// binaryEntropy is H2(e), the binary entropy in bits, clamped to the
// meaningful [0,1] error domain. 1 - H2(e) is the capacity factor of a
// binary symmetric channel: 1 at e=0 or e=1 (a perfectly inverted
// channel still carries every bit), 0 at the e=0.5 coin flip.
func binaryEntropy(e float64) float64 {
	if e <= 0 || e >= 1 {
		return 0
	}
	return -e*math.Log2(e) - (1-e)*math.Log2(1-e)
}

// groupKey names a row's channel variant as a filter query, so every
// group in a report can be pasted back as a narrower sweep. Defense is
// part of the variant: a defended row must never average into its
// undefended twin's group.
func groupKey(s spec.ChannelSpec) string {
	return Filter{
		Mechanism: string(s.Mechanism),
		Threading: string(s.Threading),
		Sink:      string(s.Sink),
		SGX:       triOf(s.SGX),
		Stealthy:  triOf(s.Stealthy),
		Defense:   s.Defense,
	}.String()
}

func triOf(v bool) Tri {
	if v {
		return TriTrue
	}
	return TriFalse
}

// Render writes the report as text: the scale line, per-spec rows, and
// the per-variant matrix. Like the JSON form it embeds no timing, so
// the bytes are identical for every worker count.
func (r Report) Render() string {
	var b strings.Builder
	filter := r.Filter
	if filter == "" {
		filter = "(all)"
	}
	fmt.Fprintf(&b, "sweep: filter=%s bits=%d seed=%d specs=%d completed=%d\n",
		filter, r.Bits, r.Seed, r.Specs, r.Completed)
	for _, row := range r.Rows {
		if row.Err != "" {
			fmt.Fprintf(&b, "  %-110s did not complete: %s\n", row.Canonical, row.Err)
			continue
		}
		fmt.Fprintf(&b, "  %-110s rate=%9.2f Kbps  err=%6.2f%%\n", row.Canonical, row.RateKbps, 100*row.ErrorRate)
	}
	if len(r.Groups) > 0 {
		fmt.Fprintf(&b, "per-variant matrix (min/mean/max over completed rows):\n")
		fmt.Fprintf(&b, "  %-70s %2s %29s %26s\n", "variant", "n", "rate (Kbps)", "error")
		for _, g := range r.Groups {
			fmt.Fprintf(&b, "  %-70s %2d %9.2f/%9.2f/%9.2f %7.2f%%/%7.2f%%/%7.2f%%\n",
				g.Key, g.N, g.MinRate, g.MeanRate, g.MaxRate, 100*g.MinErr, 100*g.MeanErr, 100*g.MaxErr)
		}
	}
	if len(r.Matrix) > 0 {
		fmt.Fprintf(&b, "attack x defense residual matrix (mean over completed rows):\n")
		fmt.Fprintf(&b, "  %-40s %3s %12s %8s %15s\n", "cell", "n", "rate (Kbps)", "error", "residual (Kbps)")
		for _, c := range r.Matrix {
			fmt.Fprintf(&b, "  %-40s %3d %12.2f %7.2f%% %15.2f\n",
				c.Key, c.N, c.MeanRate, 100*c.MeanErr, c.ResidualKbps)
		}
	}
	return b.String()
}
