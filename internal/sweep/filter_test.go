package sweep

import (
	"strings"
	"testing"

	"repro/internal/cpu"
	"repro/internal/defense"
	"repro/internal/rng"
	"repro/internal/spec"
)

func TestParseFilterRoundTrip(t *testing.T) {
	cases := []struct {
		query string
		want  Filter
	}{
		{"", Filter{}},
		{"mech=eviction", Filter{Mechanism: "eviction"}},
		{"model=xeon*,d=2..6,sgx=true", Filter{Model: "xeon*", D: Range{2, 6, true}, SGX: TriTrue}},
		{"thread=mt,stealthy=false,p=10", Filter{Threading: "mt", Stealthy: TriFalse, P: Range{10, 10, true}}},
		{"sink=power,contended=false,m=8", Filter{Sink: "power", Contended: TriFalse, M: Range{8, 8, true}}},
		// Whitespace and empty clauses are tolerated and canonicalized
		// away; a point range "3..3" canonicalizes to "3".
		{" mech=eviction ,, d=3..3 ", Filter{Mechanism: "eviction", D: Range{3, 3, true}}},
		// Clause order in the input does not matter; String renders the
		// fixed canonical order.
		{"d=1..4,mech=misalignment", Filter{Mechanism: "misalignment", D: Range{1, 4, true}}},
		// A zero point range is a real constraint, distinct from the
		// unconstrained zero Filter.
		{"m=0", Filter{M: Range{0, 0, true}}},
		// The defense axis: literals and open globs both round-trip.
		{"defense=nosmt", Filter{Defense: "nosmt"}},
		{"mech=eviction,defense=no*", Filter{Mechanism: "eviction", Defense: "no*"}},
	}
	for _, tc := range cases {
		f, err := ParseFilter(tc.query)
		if err != nil {
			t.Errorf("ParseFilter(%q): %v", tc.query, err)
			continue
		}
		if f != tc.want {
			t.Errorf("ParseFilter(%q) = %#v, want %#v", tc.query, f, tc.want)
		}
		back, err := ParseFilter(f.String())
		if err != nil {
			t.Errorf("ParseFilter(%q.String() = %q): %v", tc.query, f.String(), err)
			continue
		}
		if back != f {
			t.Errorf("round trip changed the filter: %q -> %q", tc.query, f.String())
		}
		// The canonical string is a fixed point.
		if back.String() != f.String() {
			t.Errorf("String not canonical: %q vs %q", back.String(), f.String())
		}
	}
}

// TestFilterStringRoundTripProperty drives random hand-built filters —
// including ones no query could produce — through validate and String.
// The property: every filter validate accepts satisfies
// ParseFilter(f.String()) == f, and every other one is rejected with an
// error rather than rendering a query that silently reparses to a
// different filter. This is what caught the two hand-built escapes the
// parse-direction table never could: glob patterns with surrounding
// whitespace (String renders them, but the grammar's clause trimming
// eats the spaces on the way back) and bounds on an unset Range (String
// drops the clause, so the reparse compares unequal).
func TestFilterStringRoundTripProperty(t *testing.T) {
	r := rng.New(11)
	// Mostly-valid values with a junk tail, so the run exercises both the
	// round-trip property and the reject-up-front property in bulk.
	goodGlobs := []string{"", "xeon*", "Gold 6226", "*", "ev?ction", "[gx]*", "a=b"}
	junkGlobs := []string{" xeon", "xeon ", " ", "[", "a,b"}
	randGlob := func() string {
		if r.Bool(0.2) {
			return junkGlobs[r.Intn(len(junkGlobs))]
		}
		return goodGlobs[r.Intn(len(goodGlobs))]
	}
	goodDefenses := append([]string{"", "no*", "n?smt"}, defense.Names()...)
	randDefense := func() string {
		if r.Bool(0.2) {
			return []string{" nosmt", "nosnt", "no,smt"}[r.Intn(3)]
		}
		return goodDefenses[r.Intn(len(goodDefenses))]
	}
	randTri := func() Tri {
		if r.Bool(0.2) {
			return Tri(3 + r.Intn(3))
		}
		return Tri(r.Intn(3))
	}
	randRange := func() Range {
		if r.Bool(0.2) {
			return Range{Lo: r.Intn(9) - 2, Hi: r.Intn(9) - 2, Set: r.Bool(0.7)}
		}
		if r.Bool(0.4) {
			return Range{}
		}
		lo := r.Intn(7)
		return Range{Lo: lo, Hi: lo + r.Intn(4), Set: true}
	}
	seen := 0
	for i := 0; i < 3000; i++ {
		f := Filter{
			Model:     randGlob(),
			Mechanism: randGlob(),
			Threading: randGlob(),
			Sink:      randGlob(),
			SGX:       randTri(),
			Stealthy:  randTri(),
			Contended: randTri(),
			Defense:   randDefense(),
			D:         randRange(),
			M:         randRange(),
			P:         randRange(),
		}
		if err := f.validate(); err != nil {
			continue // rejected up front is the correct outcome for junk
		}
		seen++
		q := f.String()
		back, err := ParseFilter(q)
		if err != nil {
			t.Fatalf("validate accepted %#v but String rendered unparseable %q: %v", f, q, err)
		}
		if back != f {
			t.Fatalf("round trip changed the filter: %#v -> %q -> %#v", f, q, back)
		}
	}
	if seen < 100 {
		t.Fatalf("only %d of 3000 random filters were valid; generator too hostile to prove anything", seen)
	}
}

func TestParseFilterRejectsMalformedQueries(t *testing.T) {
	cases := []struct {
		name, query, want string
	}{
		{"unknown key", "color=red", "unknown key"},
		{"duplicate key", "d=1,d=2", "duplicate key"},
		{"missing value", "mech=", "want key=value"},
		{"missing equals", "eviction", "want key=value"},
		{"bad boolean", "sgx=maybe", "bad boolean"},
		{"bad glob", "model=[", "bad pattern"},
		{"inverted range", "d=6..2", "bad range"},
		{"negative range", "d=-1", "bad range"},
		{"non-numeric range", "p=ten", "bad bound"},
		{"half range", "p=1..", "bad bound"},
		// The defense catalog is closed: a literal that names no
		// registered defense is a typo, not an empty shard.
		{"unknown defense literal", "defense=nosnt", "unknown defense"},
		{"bad defense glob", "defense=[", "bad pattern"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseFilter(tc.query)
			if err == nil {
				t.Fatalf("ParseFilter(%q) accepted a malformed query", tc.query)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestFilterMatch(t *testing.T) {
	all := spec.Enumerate(cpu.Models()...)
	count := func(query string) int {
		t.Helper()
		f, err := ParseFilter(query)
		if err != nil {
			t.Fatalf("ParseFilter(%q): %v", query, err)
		}
		n := 0
		for _, s := range all {
			if f.Match(s) {
				n++
			}
		}
		return n
	}
	if n := count(""); n != len(all) {
		t.Errorf("empty filter matched %d of %d specs", n, len(all))
	}
	// Globs are case-insensitive; the two spellings select the same
	// slice, and per-model counts match Enumerate's per-model counts.
	if a, b := count("model=Gold*"), count("model=gold*"); a != b || a != len(spec.Enumerate(cpu.Gold6226())) {
		t.Errorf("model glob counts: %d vs %d, want %d", a, b, len(spec.Enumerate(cpu.Gold6226())))
	}
	// Structural identities of the enumerated space.
	if got, want := count("mech=slowswitch"), count("mech=slowswitch,thread=nonmt,sink=timing,sgx=false"); got != want {
		t.Errorf("slowswitch slice %d != its only valid variant %d", got, want)
	}
	if got := count("sink=power,sgx=true"); got != 0 {
		t.Errorf("power+SGX matched %d specs, want 0 (impossible combo)", got)
	}
	if got, want := count("thread=mt"), count("thread=mt,stealthy=false"); got != want {
		t.Errorf("MT slice %d != MT fast slice %d (MT has no stealthy variant)", got, want)
	}
	// d ranges select among the enumerated defaults: eviction d=6,
	// misalignment d=5.
	if got, want := count("d=6..8"), count("mech=eviction"); got != want {
		t.Errorf("d=6..8 matched %d, want the eviction slice %d", got, want)
	}
	if got := count("d=1..4"); got != 0 {
		t.Errorf("d=1..4 matched %d specs, want 0 (no enumerated default below 5)", got)
	}
	// p point ranges distinguish the protocol families.
	if got, want := count("p=120000"), count("sink=power"); got != want {
		t.Errorf("p=120000 matched %d, want the power slice %d", got, want)
	}
	// m=0 constrains (everything but misalignment, whose default is
	// m=8) rather than degenerating into the unconstrained zero Range.
	if got, want := count("m=0"), len(all)-count("mech=misalignment"); got != want {
		t.Errorf("m=0 matched %d, want the non-misalignment slice %d", got, want)
	}
	// Defense identities: the axis partitions the space, norapl keeps
	// exactly the power slice, and an open glob unions its literals.
	sum := 0
	for _, d := range defense.Names() {
		sum += count("defense=" + d)
	}
	if sum != len(all) {
		t.Errorf("defense slices sum to %d, want the whole space %d", sum, len(all))
	}
	if got, want := count("defense=norapl"), count("sink=power,defense=norapl"); got != want || got == 0 {
		t.Errorf("norapl slice %d, want its power-only slice %d (nonzero)", got, want)
	}
	if got, want := count("defense=no*"), count("defense=none")+count("defense=nosmt")+count("defense=norapl"); got != want {
		t.Errorf("defense=no* matched %d, want none+nosmt+norapl = %d", got, want)
	}
	if got := count("defense=nosmt,thread=mt"); got != 0 {
		t.Errorf("nosmt x MT matched %d specs, want 0 (the defense removes the substrate)", got)
	}
}
