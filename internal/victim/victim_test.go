package victim

import (
	"testing"

	"repro/internal/isa"
)

func TestCatalogSizes(t *testing.T) {
	if got := len(CNNs()); got != 4 {
		t.Errorf("CNNs = %d, want 4", got)
	}
	if got := len(Geekbench()); got != 10 {
		t.Errorf("Geekbench = %d, want 10", got)
	}
}

func TestDistinctBases(t *testing.T) {
	seen := map[uint64]string{}
	for _, w := range append(CNNs(), Geekbench()...) {
		b := w.PhaseBlocks(0)[0].Start()
		if prev, dup := seen[b]; dup {
			t.Errorf("%s and %s share code base %#x", w.Name, prev, b)
		}
		seen[b] = w.Name
	}
}

func TestPhaseBlocksMatchFootprint(t *testing.T) {
	w := CNNs()[0]
	for i, ph := range w.Phases {
		blocks := w.PhaseBlocks(i)
		want := ph.Windows
		if want < 2 {
			want = 2
		}
		if len(blocks) != want {
			t.Errorf("phase %d: %d blocks, want %d", i, len(blocks), want)
		}
	}
}

func TestPhaseBlocksChained(t *testing.T) {
	blocks := Geekbench()[0].PhaseBlocks(0)
	last := blocks[len(blocks)-1]
	if last.Insts[len(last.Insts)-1].Target != blocks[0].Start() {
		t.Error("phase blocks must loop")
	}
}

func TestPhaseBlocksCached(t *testing.T) {
	w := CNNs()[1]
	a := w.PhaseBlocks(0)
	b := w.PhaseBlocks(0)
	if &a[0] != &b[0] {
		t.Error("phase blocks not cached")
	}
}

func TestHeavyPhasesExceedPartitionedDSB(t *testing.T) {
	// At least one phase per CNN must exceed the partitioned DSB share
	// (128 windows) or the workload would be invisible to the channel.
	for _, w := range CNNs() {
		heavy := false
		for _, p := range w.Phases {
			if p.Windows > 128 {
				heavy = true
			}
		}
		if !heavy {
			t.Errorf("%s has no MITE-pressure phase", w.Name)
		}
	}
}

func TestWindowsAreConsecutive(t *testing.T) {
	blocks := CNNs()[2].PhaseBlocks(0)
	for i := 1; i < len(blocks); i++ {
		if isa.Window(blocks[i].Start()) != isa.Window(blocks[i-1].Start())+1 {
			t.Fatalf("blocks %d/%d not window-consecutive", i-1, i)
		}
	}
}

func TestByName(t *testing.T) {
	if w, ok := ByName("DenseNet"); !ok || w.Name != "DenseNet" {
		t.Error("DenseNet lookup failed")
	}
	if _, ok := ByName("missing"); ok {
		t.Error("bogus lookup succeeded")
	}
}
