// Package victim models the workloads the paper fingerprints through the
// frontend side channel (Section XI): ten Geekbench5-style mobile
// workloads and four CNN inference models from TVM (AlexNet, SqueezeNet,
// VGG, DenseNet).
//
// What the side channel observes is the victim's time-varying pressure on
// the shared MITE decoder: phases whose code footprint exceeds the
// (partitioned) DSB keep the legacy decode path busy and slow the
// attacker's co-resident nop loop; small-footprint phases do not. Each
// workload is therefore modelled as its phase schedule: a sequence of
// (code footprint, duration) pairs per layer or kernel. The *shape* of
// that schedule is what makes a workload identifiable (Figure 11).
package victim

import "repro/internal/isa"

// Phase is one execution phase: a code footprint in 32-byte windows and
// a duration in side-channel sample periods.
type Phase struct {
	// Windows is the hot code size in 32-byte windows. Footprints above
	// the thread's partitioned DSB share (16 sets x 8 ways = 128
	// windows) decode through MITE and press on the shared frontend.
	Windows int
	// Samples is the phase duration in attacker sample periods.
	Samples int
}

// Workload is a named phase schedule.
type Workload struct {
	Name   string
	Phases []Phase

	// base is the workload's code region; distinct per workload so DSB
	// and L1I state differ realistically between victims.
	base uint64

	blocks map[int][]*isa.Block
}

// PhaseBlocks builds (and caches) the chained code blocks for phase i.
func (w *Workload) PhaseBlocks(i int) []*isa.Block {
	if w.blocks == nil {
		w.blocks = make(map[int][]*isa.Block)
	}
	if b, ok := w.blocks[i]; ok {
		return b
	}
	ph := w.Phases[i%len(w.Phases)]
	n := ph.Windows
	if n < 2 {
		n = 2
	}
	blocks := make([]*isa.Block, n)
	for j := 0; j < n; j++ {
		blocks[j] = isa.MixBlock(w.base + uint64(j)*isa.WindowBytes)
	}
	isa.ChainLoop(blocks)
	w.blocks[i] = blocks
	return blocks
}

// TotalSamples returns the schedule length in samples.
func (w *Workload) TotalSamples() int {
	n := 0
	for _, p := range w.Phases {
		n += p.Samples
	}
	return n
}

// workload bases are spaced 1 MB apart.
const baseStep = 1 << 20
const firstBase = 0x0100_0000

func mk(name string, idx int, phases []Phase) Workload {
	return Workload{Name: name, Phases: phases, base: firstBase + uint64(idx)*baseStep}
}

// CNNs returns the four TVM inference models of Figure 11. Layer
// schedules reflect each architecture's signature: AlexNet's few large
// conv layers, SqueezeNet's many small fire modules, VGG's long uniform
// stacks, DenseNet's ramping dense blocks.
func CNNs() []Workload {
	return []Workload{
		mk("AlexNet", 0, []Phase{
			{Windows: 700, Samples: 14}, {Windows: 90, Samples: 4},
			{Windows: 520, Samples: 11}, {Windows: 80, Samples: 4},
			{Windows: 380, Samples: 9}, {Windows: 300, Samples: 8},
			{Windows: 260, Samples: 7}, {Windows: 60, Samples: 5},
			{Windows: 450, Samples: 12}, {Windows: 70, Samples: 6},
		}),
		mk("SqueezeNet", 1, []Phase{
			{Windows: 200, Samples: 3}, {Windows: 60, Samples: 2},
			{Windows: 240, Samples: 3}, {Windows: 70, Samples: 2},
			{Windows: 180, Samples: 3}, {Windows: 50, Samples: 2},
			{Windows: 260, Samples: 4}, {Windows: 60, Samples: 2},
			{Windows: 220, Samples: 3}, {Windows: 40, Samples: 2},
		}),
		mk("VGG", 2, []Phase{
			{Windows: 640, Samples: 22}, {Windows: 600, Samples: 20},
			{Windows: 560, Samples: 18}, {Windows: 110, Samples: 3},
			{Windows: 620, Samples: 21}, {Windows: 90, Samples: 3},
		}),
		mk("DenseNet", 3, []Phase{
			{Windows: 140, Samples: 4}, {Windows: 220, Samples: 5},
			{Windows: 320, Samples: 6}, {Windows: 430, Samples: 7},
			{Windows: 560, Samples: 8}, {Windows: 90, Samples: 3},
			{Windows: 160, Samples: 4}, {Windows: 280, Samples: 5},
			{Windows: 400, Samples: 7}, {Windows: 60, Samples: 3},
		}),
	}
}

// Geekbench returns ten mobile-benchmark-style workloads (Section XI-B):
// the suite spans camera, navigation, speech, compression, and similar
// kernels with widely differing code footprints and phase rhythms —
// which is why the paper observes a much larger inter-workload distance
// for this suite (4.793) than for the structurally similar CNNs (1.937).
func Geekbench() []Workload {
	return []Workload{
		mk("Camera", 10, []Phase{{Windows: 760, Samples: 18}, {Windows: 120, Samples: 6}, {Windows: 680, Samples: 16}}),
		mk("Navigation", 11, []Phase{{Windows: 60, Samples: 9}, {Windows: 340, Samples: 5}, {Windows: 80, Samples: 10}}),
		mk("SpeechRec", 12, []Phase{{Windows: 420, Samples: 7}, {Windows: 440, Samples: 8}, {Windows: 100, Samples: 2}}),
		mk("PhotoLibrary", 13, []Phase{{Windows: 580, Samples: 12}, {Windows: 70, Samples: 12}}),
		mk("HTML5", 14, []Phase{{Windows: 900, Samples: 25}, {Windows: 150, Samples: 3}}),
		mk("PDFRender", 15, []Phase{{Windows: 300, Samples: 4}, {Windows: 90, Samples: 4}, {Windows: 520, Samples: 6}}),
		mk("TextCompress", 16, []Phase{{Windows: 48, Samples: 20}, {Windows: 200, Samples: 4}}),
		mk("ImageInpaint", 17, []Phase{{Windows: 640, Samples: 9}, {Windows: 380, Samples: 9}, {Windows: 60, Samples: 6}}),
		mk("RayTrace", 18, []Phase{{Windows: 1000, Samples: 30}}),
		mk("StructSim", 19, []Phase{{Windows: 130, Samples: 5}, {Windows: 700, Samples: 11}, {Windows: 240, Samples: 8}}),
	}
}

// ByName finds a workload in the combined catalog.
func ByName(name string) (Workload, bool) {
	for _, w := range append(CNNs(), Geekbench()...) {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}
