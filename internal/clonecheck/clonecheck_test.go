package clonecheck

import (
	"strings"
	"testing"
)

type inner struct {
	data []int
	m    map[string]int
}

type outer struct {
	p    *inner
	s    []byte
	arr  [2]*int
	next *outer
	fn   func()
}

func TestSharedDetectsAliasing(t *testing.T) {
	n := 7
	a := &outer{
		p:   &inner{data: []int{1, 2}, m: map[string]int{"k": 1}},
		s:   []byte("abc"),
		arr: [2]*int{&n, nil},
	}
	a.next = a // cycle

	t.Run("identical object", func(t *testing.T) {
		got := Shared(a, a)
		if len(got) == 0 {
			t.Fatal("aliased object graph reported clean")
		}
	})

	t.Run("deep clone is clean", func(t *testing.T) {
		n2 := n
		b := &outer{
			p:   &inner{data: []int{1, 2}, m: map[string]int{"k": 1}},
			s:   []byte("abc"),
			arr: [2]*int{&n2, nil},
		}
		b.next = b
		if got := Shared(a, b); len(got) != 0 {
			t.Fatalf("clean clone flagged: %v", got)
		}
	})

	t.Run("one stale field", func(t *testing.T) {
		b := &outer{
			p:   a.p, // forgot to clone
			s:   []byte("abc"),
			arr: [2]*int{new(int), nil},
		}
		b.next = b
		got := Shared(a, b)
		if len(got) != 1 || !strings.Contains(got[0], "p:") {
			t.Fatalf("want exactly the stale p field, got %v", got)
		}
	})

	t.Run("shared slice backing", func(t *testing.T) {
		b := &outer{
			p:   &inner{data: a.p.data, m: map[string]int{"k": 1}},
			s:   []byte("abc"),
			arr: [2]*int{new(int), nil},
		}
		b.next = b
		got := Shared(a, b)
		if len(got) != 1 || !strings.Contains(got[0], "p.data") {
			t.Fatalf("want the shared data backing array, got %v", got)
		}
	})

	t.Run("shared map", func(t *testing.T) {
		b := &outer{
			p:   &inner{data: []int{1, 2}, m: a.p.m},
			s:   []byte("abc"),
			arr: [2]*int{new(int), nil},
		}
		b.next = b
		got := Shared(a, b)
		if len(got) != 1 || !strings.Contains(got[0], "p.m") {
			t.Fatalf("want the shared map, got %v", got)
		}
	})

	t.Run("allowed type suppresses", func(t *testing.T) {
		b := &outer{
			p:   &inner{data: a.p.data, m: map[string]int{"k": 1}},
			s:   []byte("abc"),
			arr: [2]*int{new(int), nil},
		}
		b.next = b
		if got := Shared(a, b, AllowType(0)); len(got) != 0 {
			t.Fatalf("allow-listed int slice still flagged: %v", got)
		}
	})

	t.Run("shared closures are not flagged", func(t *testing.T) {
		fn := func() {}
		x := &outer{fn: fn, arr: [2]*int{nil, nil}}
		y := &outer{fn: fn, arr: [2]*int{nil, nil}}
		if got := Shared(x, y); len(got) != 0 {
			t.Fatalf("shared func flagged: %v", got)
		}
	})
}

func TestSharedHandlesUnexportedFields(t *testing.T) {
	// All of outer/inner's fields are unexported; the tests above already
	// prove reflection reads them. This pins that nested unexported maps
	// inside interfaces work too.
	type boxed struct{ v any }
	m := map[string]int{"k": 1}
	a := boxed{v: m}
	b := boxed{v: m}
	got := Shared(a, b)
	if len(got) != 1 || !strings.Contains(got[0], "v:") {
		t.Fatalf("shared map inside interface not flagged: %v", got)
	}
	c := boxed{v: map[string]int{"k": 1}}
	if got := Shared(a, c); len(got) != 0 {
		t.Fatalf("distinct maps flagged: %v", got)
	}
}
