// Package clonecheck detects mutable state shared between an object and
// its supposed deep clone. The simulator's hand-written clone.go files
// (calibration memoization, contract snapshots) silently go stale when a
// struct grows a pointer, slice, or map field; walking both object
// graphs with reflection and flagging any aliased mutable memory turns
// that silent corruption into a failing test.
package clonecheck

import (
	"fmt"
	"reflect"
	"runtime"
)

// Option configures a Shared walk.
type Option func(*config)

type config struct {
	allowed map[reflect.Type]bool
}

// AllowType marks the types of the sample values as immutable by
// convention: instances shared between original and clone are not
// reported, and the walk does not descend into them. Pointer, slice, and
// array wrappers are stripped when matching, so AllowType(isa.Inst{})
// covers a shared []isa.Inst backing array and AllowType(isa.Block{})
// covers shared *isa.Block layout pointers.
func AllowType(samples ...any) Option {
	return func(c *config) {
		for _, s := range samples {
			c.allowed[reflect.TypeOf(s)] = true
		}
	}
}

// Shared walks the full object graphs of a and b and returns a
// description of every pointer target, slice backing array, map, or
// channel reachable from both — each one memory the clone implementation
// forgot to copy. The two walks are independent, so aliasing is caught
// even when the shared memory sits at different paths in the two graphs
// (a clone's frontend pointing at the original's cache, say). Functions
// are skipped: closures legitimately share code pointers, and their
// captured state is invisible to reflection anyway. An empty result
// means the clone shares no mutable memory with its original.
func Shared(a, b any, opts ...Option) []string {
	cfg := &config{allowed: map[reflect.Type]bool{}}
	for _, o := range opts {
		o(cfg)
	}
	w := &walker{cfg: cfg, seen: map[loc]string{}, visited: map[loc]bool{}}
	w.walk(reflect.ValueOf(a), "")
	w.collecting = true
	w.visited = map[loc]bool{}
	w.walk(reflect.ValueOf(b), "")
	// Addresses are only comparable while both graphs are live.
	runtime.KeepAlive(a)
	runtime.KeepAlive(b)
	return w.found
}

// loc identifies one allocation as seen through a typed reference; the
// type disambiguates coincident addresses (a struct and its first field,
// a slice backing array and its first element).
type loc struct {
	ptr uintptr
	t   reflect.Type
}

type walker struct {
	cfg        *config
	seen       map[loc]string // filled during the first (original) walk
	collecting bool           // true during the second (clone) walk
	visited    map[loc]bool
	found      []string
}

// mark records (first walk) or checks (second walk) one allocation. It
// reports whether the allocation is shared, so the clone walk can stop
// descending — everything under a shared pointer is trivially shared.
func (w *walker) mark(ptr uintptr, t reflect.Type, path, what string) bool {
	if path == "" {
		path = "(root)"
	}
	l := loc{ptr, t}
	if !w.collecting {
		if _, ok := w.seen[l]; !ok {
			w.seen[l] = path
		}
		return false
	}
	orig, ok := w.seen[l]
	if ok {
		w.found = append(w.found, fmt.Sprintf("%s: %s (original's %s)", path, what, orig))
	}
	return ok
}

// allowedType strips pointer/slice/array wrappers and reports whether
// the base type was allow-listed.
func (w *walker) allowedType(t reflect.Type) bool {
	for {
		if w.cfg.allowed[t] {
			return true
		}
		switch t.Kind() {
		case reflect.Pointer, reflect.Slice, reflect.Array:
			t = t.Elem()
		default:
			return false
		}
	}
}

func (w *walker) walk(v reflect.Value, path string) {
	if !v.IsValid() {
		return
	}
	switch v.Kind() {
	case reflect.Pointer:
		if v.IsNil() || w.allowedType(v.Type()) {
			return
		}
		if w.mark(v.Pointer(), v.Type(), path, fmt.Sprintf("shared %s", v.Type())) {
			return
		}
		key := loc{v.Pointer(), v.Type()}
		if w.visited[key] {
			return
		}
		w.visited[key] = true
		w.walk(v.Elem(), path)

	case reflect.Slice:
		if w.allowedType(v.Type()) {
			return
		}
		if v.Cap() > 0 && w.mark(v.Pointer(), v.Type(), path, fmt.Sprintf("shared backing array of %s", v.Type())) {
			return
		}
		for i := 0; i < v.Len(); i++ {
			w.walk(v.Index(i), fmt.Sprintf("%s[%d]", path, i))
		}

	case reflect.Array:
		if w.allowedType(v.Type()) {
			return
		}
		for i := 0; i < v.Len(); i++ {
			w.walk(v.Index(i), fmt.Sprintf("%s[%d]", path, i))
		}

	case reflect.Map:
		if v.IsNil() || w.allowedType(v.Type()) {
			return
		}
		if w.mark(v.Pointer(), v.Type(), path, fmt.Sprintf("shared %s", v.Type())) {
			return
		}
		key := loc{v.Pointer(), v.Type()}
		if w.visited[key] {
			return
		}
		w.visited[key] = true
		iter := v.MapRange()
		for iter.Next() {
			w.walk(iter.Value(), fmt.Sprintf("%s[%v]", path, iter.Key()))
		}

	case reflect.Chan, reflect.UnsafePointer:
		if v.Pointer() != 0 {
			w.mark(v.Pointer(), v.Type(), path, fmt.Sprintf("shared %s", v.Type()))
		}

	case reflect.Interface:
		if v.IsNil() {
			return
		}
		w.walk(v.Elem(), path)

	case reflect.Struct:
		t := v.Type()
		for i := 0; i < t.NumField(); i++ {
			name := t.Field(i).Name
			p := name
			if path != "" {
				p = path + "." + name
			}
			w.walk(v.Field(i), p)
		}

	case reflect.Func:
		// Skipped: closures share code pointers by construction, and
		// captured variables are not reachable through reflection.
	}
}
