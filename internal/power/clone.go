package power

// Clone returns a deep copy of the meter: identical accumulated energy,
// RAPL publication state, and read counts.
func (m *Meter) Clone() *Meter {
	c := *m
	return &c
}
