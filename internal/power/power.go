// Package power models package energy consumption and Intel's Running
// Average Power Limit (RAPL) interface, the measurement channel of the
// paper's power attacks (Section VII).
//
// The meter accrues energy per simulated cycle from the frontend path
// each micro-op took: the LSD exists to save power, the DSB is cheaper
// than full decode, and MITE decode is the expensive path — the ordering
// shown in Figure 9. RAPL exposes that energy as a counter that is
// quantized and only updated at a fixed interval (~20 kHz per the paper,
// citing PLATYPUS), which is what caps the power channel's bandwidth at
// ~0.6 Kbps in Table V.
package power

import "repro/internal/frontend"

// Params calibrates the energy model. Energy is accounted in watt-cycles
// (average watts times cycles), so dividing by elapsed cycles yields
// watts directly, independent of clock frequency.
type Params struct {
	// StaticWatts is the package idle floor.
	StaticWatts float64
	// Per-micro-op delivery energy by path (watt-cycles per micro-op).
	EnergyLSDUOp  float64
	EnergyDSBUOp  float64
	EnergyMITEUOp float64
	// EnergyRetireUOp is backend energy per retired micro-op.
	EnergyRetireUOp float64
	// EnergyStallCycle is burned per frontend stall cycle (pipeline kept
	// warm while not delivering).
	EnergyStallCycle float64

	// RAPLIntervalCycles is how many cycles pass between RAPL counter
	// updates (~50 us at the paper's 20 kHz refresh).
	RAPLIntervalCycles uint64
	// RAPLQuantum is the energy LSB of the counter, in watt-cycles.
	RAPLQuantum float64
}

// DefaultParams returns the calibration used by the CPU model catalog;
// the per-path ratios reproduce Figure 9's LSD < DSB < MITE+DSB ordering.
func DefaultParams(freqGHz float64) Params {
	return Params{
		StaticWatts:        45.0,
		EnergyLSDUOp:       1.0,
		EnergyDSBUOp:       2.4,
		EnergyMITEUOp:      10.5,
		EnergyRetireUOp:    0.9,
		EnergyStallCycle:   1.5,
		RAPLIntervalCycles: uint64(freqGHz * 1e9 / 20000), // 20 kHz refresh
		RAPLQuantum:        150,
	}
}

// Meter accumulates energy and serves RAPL reads.
type Meter struct {
	P Params

	energy    float64 // true accumulated energy, watt-cycles
	cycles    uint64
	raplValue float64 // last published (quantized) counter value
	raplCycle uint64  // cycle of last publication
	raplReads uint64
}

// NewMeter builds a meter.
func NewMeter(p Params) *Meter { return &Meter{P: p} }

// AddCycle accrues one cycle of energy given the frontend delta counters
// for that cycle and the number of micro-ops retired.
func (m *Meter) AddCycle(d frontend.ThreadCounters, retired int) {
	m.AddCycleDelta(d.UOpsLSD, d.UOpsDSB, d.UOpsMITE, d.StallCycles, retired)
}

// AddCycleDelta is AddCycle taking just the four counters the energy
// model reads, so the per-cycle caller need not assemble a full
// ThreadCounters struct.
func (m *Meter) AddCycleDelta(uopsLSD, uopsDSB, uopsMITE, stallCycles uint64, retired int) {
	m.cycles++
	e := m.P.StaticWatts
	e += float64(uopsLSD) * m.P.EnergyLSDUOp
	e += float64(uopsDSB) * m.P.EnergyDSBUOp
	e += float64(uopsMITE) * m.P.EnergyMITEUOp
	e += float64(retired) * m.P.EnergyRetireUOp
	e += float64(stallCycles) * m.P.EnergyStallCycle
	m.energy += e

	if m.cycles-m.raplCycle >= m.P.RAPLIntervalCycles {
		m.publish()
	}
}

func (m *Meter) publish() {
	q := m.P.RAPLQuantum
	m.raplValue = float64(uint64(m.energy/q)) * q
	m.raplCycle = m.cycles
}

// Cycles returns the number of accounted cycles.
func (m *Meter) Cycles() uint64 { return m.cycles }

// TrueEnergy returns the exact accumulated energy in watt-cycles. Only
// the simulator itself can see this; attackers read RAPL.
func (m *Meter) TrueEnergy() float64 { return m.energy }

// RAPLRead returns the energy counter as software sees it: quantized and
// stale up to one update interval — the realistic measurement surface of
// the power channel.
func (m *Meter) RAPLRead() float64 {
	m.raplReads++
	return m.raplValue
}

// RAPLReads returns how many times the counter was read.
func (m *Meter) RAPLReads() uint64 { return m.raplReads }

// AvgWatts converts an energy delta over a cycle span into average watts.
func AvgWatts(energyDelta float64, cycles uint64) float64 {
	if cycles == 0 {
		return 0
	}
	return energyDelta / float64(cycles)
}
