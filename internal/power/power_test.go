package power

import (
	"testing"

	"repro/internal/frontend"
)

func params() Params {
	p := DefaultParams(2.7)
	p.RAPLIntervalCycles = 100
	p.RAPLQuantum = 10
	return p
}

func TestEnergyAccrual(t *testing.T) {
	m := NewMeter(params())
	m.AddCycle(frontend.ThreadCounters{UOpsDSB: 4}, 4)
	want := m.P.StaticWatts + 4*m.P.EnergyDSBUOp + 4*m.P.EnergyRetireUOp
	if got := m.TrueEnergy(); got != want {
		t.Errorf("energy = %v, want %v", got, want)
	}
}

func TestPathEnergyOrdering(t *testing.T) {
	// Figure 9: at equal delivery rates, LSD < DSB < MITE power.
	mk := func(d frontend.ThreadCounters) float64 {
		m := NewMeter(params())
		for i := 0; i < 1000; i++ {
			m.AddCycle(d, 4)
		}
		return AvgWatts(m.TrueEnergy(), m.Cycles())
	}
	lsd := mk(frontend.ThreadCounters{UOpsLSD: 4})
	dsb := mk(frontend.ThreadCounters{UOpsDSB: 4})
	mite := mk(frontend.ThreadCounters{UOpsMITE: 4})
	if !(lsd < dsb && dsb < mite) {
		t.Errorf("power ordering violated: LSD=%.1f DSB=%.1f MITE=%.1f", lsd, dsb, mite)
	}
}

func TestRAPLUpdateInterval(t *testing.T) {
	m := NewMeter(params())
	d := frontend.ThreadCounters{UOpsDSB: 4}
	for i := 0; i < 50; i++ {
		m.AddCycle(d, 4)
	}
	if got := m.RAPLRead(); got != 0 {
		t.Errorf("counter published before interval elapsed: %v", got)
	}
	for i := 0; i < 60; i++ {
		m.AddCycle(d, 4)
	}
	if got := m.RAPLRead(); got == 0 {
		t.Error("counter not published after interval")
	}
}

func TestRAPLQuantization(t *testing.T) {
	m := NewMeter(params())
	d := frontend.ThreadCounters{UOpsDSB: 4}
	for i := 0; i < 200; i++ {
		m.AddCycle(d, 4)
	}
	v := m.RAPLRead()
	if q := m.P.RAPLQuantum; v != float64(uint64(v/q))*q {
		t.Errorf("RAPL value %v not quantized to %v", v, q)
	}
	if v > m.TrueEnergy() {
		t.Error("published counter exceeds true energy")
	}
}

func TestRAPLReadsCounted(t *testing.T) {
	m := NewMeter(params())
	m.RAPLRead()
	m.RAPLRead()
	if m.RAPLReads() != 2 {
		t.Errorf("reads = %d, want 2", m.RAPLReads())
	}
}

func TestAvgWattsZeroCycles(t *testing.T) {
	if AvgWatts(100, 0) != 0 {
		t.Error("zero cycles should yield zero watts")
	}
}

func TestStallEnergy(t *testing.T) {
	m := NewMeter(params())
	m.AddCycle(frontend.ThreadCounters{StallCycles: 1}, 0)
	want := m.P.StaticWatts + m.P.EnergyStallCycle
	if got := m.TrueEnergy(); got != want {
		t.Errorf("stall energy = %v, want %v", got, want)
	}
}
