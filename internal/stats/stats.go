// Package stats provides the statistical machinery the paper's evaluation
// relies on: summary statistics, fixed-width histograms (Figures 2 and 9),
// Euclidean distance between IPC traces (Section XI), the Wagner-Fischer
// edit distance used to compute covert-channel error rates (Section VI),
// and mean-based threshold calibration for bit decoding (Section VI-B).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Min returns the smallest element of xs. It panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs. It panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the median of xs without modifying it.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// Euclidean returns the Euclidean distance between two equal-length
// vectors, as used for IPC-trace comparison in Section XI. It panics if
// the lengths differ.
func Euclidean(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("stats: Euclidean length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// EditDistance returns the Levenshtein edit distance between a and b using
// the Wagner-Fischer dynamic program, the algorithm the paper cites for
// computing covert-channel error rates.
func EditDistance(a, b string) int {
	if a == b {
		return 0
	}
	// One-row DP, O(len(b)) space.
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// BitErrorRate returns the covert-channel error rate between the sent and
// received bit strings: the edit distance normalized by the sent length,
// matching the paper's evaluation methodology (Section VI).
func BitErrorRate(sent, received string) float64 {
	if len(sent) == 0 {
		return 0
	}
	return float64(EditDistance(sent, received)) / float64(len(sent))
}

// Threshold is a two-class decision threshold calibrated from labelled
// timing (or energy) samples, following Section VI-B: an alternating
// pattern of 0s and 1s is sent, the measurements for each class are
// averaged, and a measurement is classified by the nearest class mean.
type Threshold struct {
	Mean0 float64 // mean measurement when bit 0 was sent
	Mean1 float64 // mean measurement when bit 1 was sent
	Cut   float64 // midpoint decision boundary
}

// Calibrate builds a Threshold from samples observed while sending 0s and
// while sending 1s.
func Calibrate(zeros, ones []float64) Threshold {
	m0, m1 := Mean(zeros), Mean(ones)
	return Threshold{Mean0: m0, Mean1: m1, Cut: (m0 + m1) / 2}
}

// Classify returns the decoded bit for measurement x by nearest class
// mean. The sign of the separation (whether 1 is the slower or the faster
// class) is captured at calibration time, so attacks whose signal inverts
// across microarchitectures decode correctly without special-casing.
func (t Threshold) Classify(x float64) byte {
	if math.Abs(x-t.Mean1) < math.Abs(x-t.Mean0) {
		return '1'
	}
	return '0'
}

// Separation returns the distance between the class means, the raw signal
// amplitude of the channel.
func (t Threshold) Separation() float64 {
	return math.Abs(t.Mean1 - t.Mean0)
}

// Histogram is a fixed-bin-width histogram used to render the timing and
// power distributions of Figures 2 and 9.
type Histogram struct {
	Lo, Width float64
	Counts    []int
	N         int
}

// NewHistogram creates a histogram covering [lo, hi) with the given number
// of bins. It panics if bins <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{Lo: lo, Width: (hi - lo) / float64(bins), Counts: make([]int, bins)}
}

// Add records a sample; out-of-range samples clamp to the edge bins so no
// observation is silently dropped.
func (h *Histogram) Add(x float64) {
	i := int((x - h.Lo) / h.Width)
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
	h.N++
}

// BinCenter returns the center value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.Width
}

// Mode returns the center of the most populated bin.
func (h *Histogram) Mode() float64 {
	best := 0
	for i, c := range h.Counts {
		if c > h.Counts[best] {
			best = i
		}
	}
	return h.BinCenter(best)
}

// Render draws a terminal-friendly bar chart of the histogram, one row per
// non-empty bin, scaled to width columns.
func (h *Histogram) Render(width int) string {
	if width <= 0 {
		width = 50
	}
	maxC := 0
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	if maxC == 0 {
		return "(empty histogram)\n"
	}
	var b strings.Builder
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		bar := c * width / maxC
		fmt.Fprintf(&b, "%10.1f | %-*s %d\n", h.BinCenter(i), width, strings.Repeat("#", bar), c)
	}
	return b.String()
}

// DistanceMatrix holds pairwise distances between named traces, used for
// the inter/intra-distance fingerprinting analysis of Figure 12.
type DistanceMatrix struct {
	Names []string
	D     [][]float64
}

// NewDistanceMatrix computes the full pairwise Euclidean distance matrix
// for the given named traces.
func NewDistanceMatrix(names []string, traces [][]float64) *DistanceMatrix {
	n := len(names)
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			d[i][j] = Euclidean(traces[i], traces[j])
		}
	}
	return &DistanceMatrix{Names: names, D: d}
}

// String renders the matrix as an aligned table.
func (m *DistanceMatrix) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s", "")
	for _, n := range m.Names {
		fmt.Fprintf(&b, "%12s", n)
	}
	b.WriteByte('\n')
	for i, row := range m.D {
		fmt.Fprintf(&b, "%-14s", m.Names[i])
		for _, v := range row {
			fmt.Fprintf(&b, "%12.3f", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
