package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v, want 0", got)
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{2, 2, 2}); got != 0 {
		t.Errorf("StdDev of constant = %v, want 0", got)
	}
	got := StdDev([]float64{1, 3})
	if !almostEqual(got, 1, 1e-12) {
		t.Errorf("StdDev = %v, want 1", got)
	}
}

func TestMinMaxMedian(t *testing.T) {
	xs := []float64{5, 1, 9, 3}
	if Min(xs) != 1 || Max(xs) != 9 {
		t.Errorf("Min/Max wrong: %v %v", Min(xs), Max(xs))
	}
	if got := Median(xs); got != 4 {
		t.Errorf("Median = %v, want 4", got)
	}
	if got := Median([]float64{2, 1, 3}); got != 2 {
		t.Errorf("Median odd = %v, want 2", got)
	}
	// Median must not mutate its input.
	if xs[0] != 5 {
		t.Error("Median mutated input")
	}
}

func TestEuclidean(t *testing.T) {
	a := []float64{0, 0}
	b := []float64{3, 4}
	if got := Euclidean(a, b); got != 5 {
		t.Errorf("Euclidean = %v, want 5", got)
	}
}

func TestEuclideanPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Euclidean([]float64{1}, []float64{1, 2})
}

func TestEditDistance(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "abc", 0},
		{"kitten", "sitting", 3},
		{"0101", "0101", 0},
		{"0000", "1111", 4},
		{"", "abc", 3},
		{"abc", "", 3},
		{"10", "01", 2},
		{"1010", "010", 1},
	}
	for _, c := range cases {
		if got := EditDistance(c.a, c.b); got != c.want {
			t.Errorf("EditDistance(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestEditDistanceProperties(t *testing.T) {
	// Symmetry and identity, property-based.
	f := func(a, b string) bool {
		if len(a) > 40 {
			a = a[:40]
		}
		if len(b) > 40 {
			b = b[:40]
		}
		d1 := EditDistance(a, b)
		d2 := EditDistance(b, a)
		if d1 != d2 {
			return false
		}
		if EditDistance(a, a) != 0 {
			return false
		}
		// Distance bounded by the longer string's length.
		maxLen := len(a)
		if len(b) > maxLen {
			maxLen = len(b)
		}
		return d1 <= maxLen
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEditDistanceTriangle(t *testing.T) {
	f := func(a, b, c string) bool {
		if len(a) > 20 {
			a = a[:20]
		}
		if len(b) > 20 {
			b = b[:20]
		}
		if len(c) > 20 {
			c = c[:20]
		}
		return EditDistance(a, c) <= EditDistance(a, b)+EditDistance(b, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitErrorRate(t *testing.T) {
	if got := BitErrorRate("0101", "0101"); got != 0 {
		t.Errorf("BER identical = %v", got)
	}
	if got := BitErrorRate("0000", "0001"); got != 0.25 {
		t.Errorf("BER one flip = %v, want 0.25", got)
	}
	if got := BitErrorRate("", "111"); got != 0 {
		t.Errorf("BER empty sent = %v, want 0", got)
	}
}

func TestThreshold(t *testing.T) {
	th := Calibrate([]float64{10, 12, 11}, []float64{20, 22, 21})
	if th.Classify(11) != '0' {
		t.Error("11 should classify as 0")
	}
	if th.Classify(21) != '1' {
		t.Error("21 should classify as 1")
	}
	if !almostEqual(th.Cut, 16, 1e-9) {
		t.Errorf("Cut = %v, want 16", th.Cut)
	}
	if !almostEqual(th.Separation(), 10, 1e-9) {
		t.Errorf("Separation = %v, want 10", th.Separation())
	}
}

func TestThresholdInvertedChannel(t *testing.T) {
	// Channels where bit 1 is the FASTER class must still decode: the
	// nearest-mean rule is sign-agnostic.
	th := Calibrate([]float64{100, 101}, []float64{50, 51})
	if th.Classify(52) != '1' {
		t.Error("fast sample should decode as 1 on inverted channel")
	}
	if th.Classify(99) != '0' {
		t.Error("slow sample should decode as 0 on inverted channel")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for _, v := range []float64{1, 1.5, 5, 5.1, 5.2, 9.9} {
		h.Add(v)
	}
	if h.N != 6 {
		t.Errorf("N = %d, want 6", h.N)
	}
	if got := h.Mode(); !almostEqual(got, 5.5, 1e-9) {
		t.Errorf("Mode = %v, want 5.5", got)
	}
	// Clamping, not dropping.
	h.Add(-5)
	h.Add(100)
	if h.Counts[0] == 0 || h.Counts[9] == 0 {
		t.Error("out-of-range samples were not clamped to edge bins")
	}
	if !strings.Contains(h.Render(30), "#") {
		t.Error("Render produced no bars")
	}
}

func TestHistogramPanicsOnBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(5, 5, 10)
}

func TestDistanceMatrix(t *testing.T) {
	names := []string{"a", "b"}
	traces := [][]float64{{0, 0}, {3, 4}}
	m := NewDistanceMatrix(names, traces)
	if m.D[0][0] != 0 || m.D[1][1] != 0 {
		t.Error("diagonal must be zero")
	}
	if m.D[0][1] != 5 || m.D[1][0] != 5 {
		t.Errorf("off-diagonal = %v, want 5", m.D[0][1])
	}
	s := m.String()
	if !strings.Contains(s, "a") || !strings.Contains(s, "5.000") {
		t.Errorf("String output unexpected:\n%s", s)
	}
}
