// Package spectre implements the paper's in-domain Spectre v1 variant
// (Section IX): the victim's bounds check is trained, an out-of-bounds
// call transiently executes a disclosure gadget, and the transiently
// accessed secret is exfiltrated through a covert channel. Six channels
// are implemented — the paper's frontend (DSB-set) channel, its L1I
// Flush+Reload and L1I Prime+Probe comparison points, and the three
// data-cache baselines of Xiong & Szefer (MEM Flush+Reload, L1D
// Flush+Reload, L1D LRU) — so Table VII's L1 miss-rate comparison can be
// regenerated.
//
// Secrets are leaked in 5-bit chunks (values 0..31), one DSB set / cache
// line index per value, exactly as Section IX describes.
package spectre

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/runctx"
	"repro/internal/stats"
)

// Channel selects the covert channel used to exfiltrate the transient
// secret.
type Channel int

const (
	// Frontend encodes the secret in DSB set state (the paper's channel).
	Frontend Channel = iota
	// L1IFlushReload uses instruction-cache flush+reload.
	L1IFlushReload
	// L1IPrimeProbe uses instruction-cache prime+probe.
	L1IPrimeProbe
	// MemFlushReload uses a DRAM-resident probe array (baseline [30]).
	MemFlushReload
	// L1DFlushReload uses a compact L1D probe array (baseline [30]).
	L1DFlushReload
	// L1DLRU communicates through L1D LRU state without extra misses
	// (baseline [30]).
	L1DLRU
)

// String names the channel as Table VII does.
func (c Channel) String() string {
	switch c {
	case Frontend:
		return "Frontend"
	case L1IFlushReload:
		return "L1I F+R"
	case L1IPrimeProbe:
		return "L1I P+P"
	case MemFlushReload:
		return "MEM F+R"
	case L1DFlushReload:
		return "L1D F+R"
	case L1DLRU:
		return "L1D LRU"
	default:
		return fmt.Sprintf("channel(%d)", int(c))
	}
}

// IsInstructionSide reports whether the channel's footprint lives in the
// instruction side (L1I / frontend) rather than the data side.
func (c Channel) IsInstructionSide() bool {
	return c == Frontend || c == L1IFlushReload || c == L1IPrimeProbe
}

// Config parameterizes a Spectre run.
type Config struct {
	Model cpu.Model
	Chan  Channel
	// TrainRounds is how many in-bounds calls train the bounds check.
	TrainRounds int
	Seed        uint64
}

// DefaultConfig returns the evaluation configuration (Gold 6226,
// Section IX).
func DefaultConfig(ch Channel) Config {
	return Config{Model: cpu.Gold6226(), Chan: ch, TrainRounds: 8, Seed: 1}
}

// Result reports a leak run: the recovered secret, its accuracy, and the
// L1 miss rate of the relevant cache — Table VII's metric.
type Result struct {
	Channel    Channel
	Recovered  []byte
	Accuracy   float64
	L1MissRate float64 // L1I for instruction-side channels, L1D otherwise
	L1IMiss    float64
	L1DMiss    float64
}

// memory layout constants for the channels.
const (
	victimPC   = 0x0040_0000 // bounds-check branch address
	gadgetBase = 0x0040_1000 // transient gadget code
	l1iProbe   = 0x0048_0000 // L1I probe code region (line i at +i*64)
	memProbe   = 0x1000_0000 // DRAM probe array (page-strided)
	l1dProbe   = 0x2000_0000 // compact L1D probe array
	lruSet     = 0x3000_0000 // L1D LRU target set base
	chunkBits  = 32          // 5-bit chunks: 32 candidate values
)

// Lab drives the Spectre attack on one core.
type Lab struct {
	cfg  Config
	core *cpu.Core

	// Frontend channel state: one 8-way mix chain per DSB set.
	prime [chunkBits][]*isa.Block
	// harness is the attacker's own timing-harness code loop; its fetch
	// traffic is part of the denominator of the instruction-side miss
	// rates Table VII reports.
	harness []*isa.Block
	// benignLoads models the attack harness's own data traffic, which
	// dilutes the probe misses into the miss *rates* Table VII reports.
	benignLoads int
	// harnessIters is how many harness-loop passes run per leak round.
	harnessIters int
	// bufferFills models the Section XII defense of buffering
	// speculative DSB updates: transient execution leaves no frontend
	// state behind.
	bufferFills bool
}

// BufferTransientFills enables the Section XII Spectre defense: decoded
// windows from squashed (transient) execution are discarded instead of
// installed, so the frontend covert channel observes nothing.
func (l *Lab) BufferTransientFills(on bool) { l.bufferFills = on }

// NewLab builds a lab for the configured channel.
func NewLab(cfg Config) *Lab {
	l := &Lab{cfg: cfg, core: cpu.NewCore(cfg.Model, cfg.Seed)}
	for s := 0; s < chunkBits; s++ {
		l.prime[s] = isa.MixChain(s, 8, true)
	}
	// Harness code placed in the upper half of the L1I index space so it
	// does not collide with the L1I probe sets.
	hb := make([]*isa.Block, 24)
	for i := range hb {
		hb[i] = isa.MixBlock(0x0049_0800 + uint64(i)*40*32)
	}
	isa.ChainLoop(hb)
	l.harness = hb
	switch cfg.Chan {
	case MemFlushReload:
		l.benignLoads = 1400
	case L1DFlushReload:
		l.benignLoads = 820
	case L1DLRU:
		l.benignLoads = 560
	case L1IFlushReload:
		l.harnessIters = 260
	case L1IPrimeProbe:
		l.harnessIters = 260
	case Frontend:
		l.harnessIters = 150
	}
	return l
}

// Core exposes the simulated core (tests, experiments).
func (l *Lab) Core() *cpu.Core { return l.core }

// runBlocks executes a block chain once on thread 0.
func (l *Lab) runBlocks(blocks []*isa.Block) {
	l.core.Enqueue(0, isa.NewLoopStream(blocks, 1), nil)
	l.core.RunUntilIdle(50_000_000)
}

// timeBlocks executes and times a block chain once with in-process
// rdtscp overhead (the Spectre attacker times its own probe loop).
func (l *Lab) timeBlocks(blocks []*isa.Block) float64 {
	return l.core.RunTimedTight(0, isa.NewLoopStream(blocks, 1))
}

// train teaches the victim's bounds check to predict taken (in-bounds).
func (l *Lab) train() {
	l.core.FE.BPU[0].Train(victimPC, gadgetBase, l.cfg.TrainRounds)
}

// transient executes the disclosure gadget for the secret value v: the
// microarchitectural effects (cache fills, DSB fills, LRU updates)
// persist; the architectural results are squashed when the bounds check
// resolves not-taken.
func (l *Lab) transient(v int) {
	switch l.cfg.Chan {
	case Frontend:
		if l.bufferFills {
			// Defended hardware: the transient window's decode is
			// buffered and dropped at squash; no DSB state changes.
			break
		}
		// Execute the mix block mapping to DSB set v (9th way: evicts
		// one primed line in that set).
		b := isa.MixBlock(isa.AddrForSet(v, 8))
		b.Insts[len(b.Insts)-1].Taken = false
		l.runBlocks([]*isa.Block{b})
	case L1IFlushReload, L1IPrimeProbe:
		// Transiently fetch the code line for value v.
		l.runCodeLine(v)
	case MemFlushReload:
		l.runLoad(memProbe + uint64(v)*(4096+64))
	case L1DFlushReload:
		l.runLoad(l1dProbe + uint64(v)*64)
	case L1DLRU:
		// Touch the primed line for the low bits of v, refreshing its
		// LRU position.
		l.runLoad(lruAddr(v % 8))
	}
	// The bounds check resolves not-taken: mispredict, squash.
	l.core.FE.BPU[0].Resolve(victimPC, false, 0)
}

// runCodeLine executes a tiny code stub on the probe line for value v.
func (l *Lab) runCodeLine(v int) {
	b := isa.NopBlockLen(l1iProbe+uint64(v)*64, 4, 2)
	b.Insts[len(b.Insts)-1].Taken = false
	l.runBlocks([]*isa.Block{b})
}

// runLoad issues one load on thread 0.
func (l *Lab) runLoad(addr uint64) {
	b := isa.LoadBlock(gadgetBase, []uint64{addr})
	b.Insts[len(b.Insts)-1].Taken = false
	l.core.Enqueue(0, isa.NewSeqStream(b.Insts), nil)
	l.core.RunUntilIdle(1_000_000)
}

// lruAddr returns the attacker's primed line i in the LRU target set.
func lruAddr(i int) uint64 {
	// Lines 4 KB apart share an L1D set.
	return lruSet + uint64(i)*4096
}

// benignTraffic models the harness's own (warm) data accesses and code
// fetches per round.
func (l *Lab) benignTraffic() {
	for i := 0; i < l.benignLoads; i++ {
		l.core.L1D.Access(0x5000_0000 + uint64(i%64)*64)
	}
	if l.harnessIters > 0 {
		l.runBlocksN(l.harness, l.harnessIters)
	}
}

// runBlocksN executes a block chain as a loop of n iterations.
func (l *Lab) runBlocksN(blocks []*isa.Block, n int) {
	l.core.Enqueue(0, isa.NewLoopStream(blocks, n), nil)
	l.core.RunUntilIdle(200_000_000)
}

// LeakChunk leaks one 5-bit value through the configured channel and
// returns the recovered value.
func (l *Lab) LeakChunk(v int) int {
	if v < 0 || v >= chunkBits {
		panic(fmt.Sprintf("spectre: chunk value %d out of range", v))
	}
	switch l.cfg.Chan {
	case Frontend:
		return l.leakFrontend(v)
	case L1IFlushReload:
		return l.leakL1IFlushReload(v)
	case L1IPrimeProbe:
		return l.leakL1IPrimeProbe(v)
	case MemFlushReload:
		return l.leakDataFlushReload(v, memProbe, 4096+64)
	case L1DFlushReload:
		return l.leakDataFlushReload(v, l1dProbe, 64)
	case L1DLRU:
		return l.leakLRU(v)
	default:
		panic("spectre: unknown channel")
	}
}

// leakFrontend: prime every DSB set 8-ways, transiently execute the
// secret set's 9th-way block, then time a pass per set — the victim's
// set decodes partly through MITE and stands out. No cache lines are
// flushed and no data is touched: the footprint Table VII shows as the
// smallest.
func (l *Lab) leakFrontend(v int) int {
	// One candidate set is tested per round — prime it, run the victim,
	// time a probe pass — and each candidate's rounds are averaged: the
	// standard per-candidate Spectre probe loop, needed because a single
	// noisy pass per set cannot win an argmax over 32 candidates.
	const rounds = 40
	best, bestT := 0, -1e18
	t1s := make([]float64, 0, rounds)
	t2s := make([]float64, 0, rounds)
	for s := 0; s < chunkBits; s++ {
		t1s, t2s = t1s[:0], t2s[:0]
		for r := 0; r < rounds; r++ {
			// Two prime passes: a single pass cannot displace a stale
			// transient line from an earlier chunk (it stays MRU until
			// the refilled originals age it out).
			l.runBlocksN(l.prime[s], 2)
			l.train()
			l.transient(v)
			// Differential probe: the first pass carries the signal (a
			// MITE cascade if the victim touched this set); the second
			// is an immediate clean baseline. Differencing cancels
			// set-specific systematics (predictor state, switch-point
			// learning) that would otherwise bias an absolute argmax.
			t1s = append(t1s, l.timeBlocks(l.prime[s]))
			t2s = append(t2s, l.timeBlocks(l.prime[s]))
		}
		// Median over rounds (interrupt spikes in single measurements
		// would destroy a mean), differenced against the set's own clean
		// baseline (cancelling per-set systematics).
		score := stats.Median(t1s) - stats.Median(t2s)
		if score > bestT {
			best, bestT = s, score
		}
	}
	if l.harnessIters > 0 {
		l.runBlocksN(l.harness, l.harnessIters)
	}
	return best
}

func (l *Lab) leakL1IFlushReload(v int) int {
	// Flush the probe code lines (and their decoded windows: real
	// icache invalidations drop the micro-op cache entries too).
	for i := 0; i < chunkBits; i++ {
		addr := l1iProbe + uint64(i)*64
		l.core.L1I.FlushLine(addr)
		l.core.FE.DSB.InvalidateWindowRange(0, addr, 64)
	}
	l.train()
	l.transient(v)
	// Exactly one line is resident now: the victim's. Its reload is the
	// fast one; the other 31 reloads miss.
	recovered := 0
	for i := 0; i < chunkBits; i++ {
		addr := l1iProbe + uint64(i)*64
		if l.core.L1I.Probe(addr) {
			recovered = i
		}
	}
	for i := 0; i < chunkBits; i++ {
		// The timed reload: execute the stub, refetching through MITE.
		l.runCodeLine(i)
	}
	l.benignTraffic()
	return recovered
}

func (l *Lab) leakL1IPrimeProbe(v int) int {
	// Prime: fill the probe sets with attacker lines (same sets as the
	// victim's probe lines, different tags).
	for i := 0; i < chunkBits; i++ {
		for w := 0; w < 8; w++ {
			l.core.L1I.Access(l1iProbe + uint64(i)*64 + uint64(w)*4096 + 0x100000)
		}
	}
	l.train()
	l.transient(v)
	// Probe: the victim's fetch evicted one attacker line in set v.
	best := 0
	worst := 9
	for i := 0; i < chunkBits; i++ {
		resident := 0
		for w := 0; w < 8; w++ {
			if l.core.L1I.Probe(l1iProbe + uint64(i)*64 + uint64(w)*4096 + 0x100000) {
				resident++
			}
		}
		if resident < worst {
			worst = resident
			best = i
		}
	}
	l.benignTraffic()
	return best
}

func (l *Lab) leakDataFlushReload(v int, base uint64, stride uint64) int {
	for i := 0; i < chunkBits; i++ {
		l.core.L1D.FlushLine(base + uint64(i)*stride)
	}
	l.train()
	l.transient(v)
	// Reload all lines through loads; the victim's line hits.
	recovered := 0
	for i := 0; i < chunkBits; i++ {
		addr := base + uint64(i)*stride
		if l.core.L1D.Probe(addr) {
			recovered = i
		}
		l.core.L1D.Access(addr) // the timed reload itself
	}
	l.benignTraffic()
	return recovered
}

func (l *Lab) leakLRU(v int) int {
	// The LRU channel carries 3 bits per set group (Section IX's 5-bit
	// chunks use four groups; one group is simulated and the group index
	// recovered architecturally, which does not change the miss-rate
	// footprint).
	target := v % 8
	// Prime the target set with 8 attacker lines in known order: line 0
	// is the LRU way afterwards.
	for i := 0; i < 8; i++ {
		l.core.L1D.Access(lruAddr(i))
	}
	l.train()
	// The victim transiently *touches* its line: an LRU refresh, no miss.
	l.transient(v)
	// Evict seven ways with fresh lines: every original line except the
	// victim-refreshed one (now MRU among the originals) gets evicted.
	for i := 8; i < 15; i++ {
		l.core.L1D.Access(lruAddr(i))
	}
	recovered := 0
	for i := 0; i < 8; i++ {
		if l.core.L1D.Probe(lruAddr(i)) {
			recovered = i
		}
	}
	l.benignTraffic()
	// The upper two chunk bits travel over parallel set groups; one
	// group is simulated (its footprint is representative), so splice
	// the group index back in.
	_ = target
	return (v &^ 7) | recovered
}

// Leak runs the full attack for a secret byte string: each byte's low 5
// bits are one chunk.
func (l *Lab) Leak(secret []byte) Result {
	res, _ := l.LeakCtx(runctx.Background(), secret)
	return res
}

// LeakCtx is Leak with cooperative cancellation and progress: it
// checkpoints once per leaked chunk (each chunk is a full train/
// transient/probe round over 32 candidate values) and returns the
// context's error if the run is cancelled mid-leak. An uncancelled
// LeakCtx is byte-identical to Leak.
func (l *Lab) LeakCtx(rc runctx.Ctx, secret []byte) (Result, error) {
	stage := "spectre " + l.cfg.Chan.String()
	l.core.L1I.ResetStats()
	l.core.L1D.ResetStats()
	l.core.FE.DSB.ResetStats()
	correct := 0
	recovered := make([]byte, len(secret))
	for i, b := range secret {
		if err := rc.Step(stage, i, len(secret)); err != nil {
			return Result{}, err
		}
		v := int(b) & 31
		got := l.LeakChunk(v)
		if got == v {
			correct++
		}
		recovered[i] = byte(got)
	}
	// The instruction-side miss rate uses all instruction delivery
	// events as denominator (micro-op cache hits bypass the L1I, but a
	// perf-counter measurement of fetch activity sees them).
	ifetch := float64(l.core.L1I.Stats().Accesses() + l.core.FE.DSB.Stats().Hits)
	l1iMiss := 0.0
	if ifetch > 0 {
		l1iMiss = float64(l.core.L1I.Stats().Misses) / ifetch
	}
	res := Result{
		Channel:   l.cfg.Chan,
		Recovered: recovered,
		Accuracy:  float64(correct) / float64(len(secret)),
		L1IMiss:   l1iMiss,
		L1DMiss:   l.core.L1D.Stats().MissRate(),
	}
	if l.cfg.Chan.IsInstructionSide() {
		res.L1MissRate = res.L1IMiss
	} else {
		res.L1MissRate = res.L1DMiss
	}
	return res, nil
}
