package spectre

import (
	"testing"
)

var secret = []byte{3, 17, 29, 8, 0, 31, 12, 22}

func TestChannelNames(t *testing.T) {
	for ch, want := range map[Channel]string{
		Frontend: "Frontend", L1IFlushReload: "L1I F+R", L1IPrimeProbe: "L1I P+P",
		MemFlushReload: "MEM F+R", L1DFlushReload: "L1D F+R", L1DLRU: "L1D LRU",
	} {
		if ch.String() != want {
			t.Errorf("channel %d name %q, want %q", ch, ch.String(), want)
		}
	}
}

func TestFrontendChannelLeaks(t *testing.T) {
	lab := NewLab(DefaultConfig(Frontend))
	res := lab.Leak(secret)
	if res.Accuracy < 0.85 {
		t.Errorf("frontend channel accuracy %.2f, want >= 0.85", res.Accuracy)
	}
}

func TestAllChannelsLeak(t *testing.T) {
	for _, ch := range []Channel{Frontend, L1IFlushReload, L1IPrimeProbe, MemFlushReload, L1DFlushReload, L1DLRU} {
		lab := NewLab(DefaultConfig(ch))
		res := lab.Leak(secret)
		if res.Accuracy < 0.8 {
			t.Errorf("%v accuracy %.2f, want >= 0.8", ch, res.Accuracy)
		}
	}
}

func TestMissRateOrdering(t *testing.T) {
	// Table VII's headline: the frontend channel has the lowest L1 miss
	// rate; the data-cache channels the highest.
	rates := map[Channel]float64{}
	for _, ch := range []Channel{Frontend, L1IFlushReload, L1IPrimeProbe, MemFlushReload, L1DFlushReload, L1DLRU} {
		lab := NewLab(DefaultConfig(ch))
		rates[ch] = lab.Leak(secret).L1MissRate
		t.Logf("%-10v L1 miss rate %.3f%%", ch, 100*rates[ch])
	}
	if rates[Frontend] >= rates[L1IFlushReload] {
		t.Errorf("frontend (%.4f) should beat L1I F+R (%.4f)", rates[Frontend], rates[L1IFlushReload])
	}
	if rates[Frontend] >= rates[L1IPrimeProbe] {
		t.Errorf("frontend (%.4f) should beat L1I P+P (%.4f)", rates[Frontend], rates[L1IPrimeProbe])
	}
	if rates[L1IFlushReload] >= rates[MemFlushReload] {
		t.Errorf("L1I F+R (%.4f) should beat MEM F+R (%.4f)", rates[L1IFlushReload], rates[MemFlushReload])
	}
	if rates[MemFlushReload] >= rates[L1DFlushReload] {
		t.Errorf("MEM F+R (%.4f) should beat L1D F+R (%.4f)", rates[MemFlushReload], rates[L1DFlushReload])
	}
}

func TestFrontendChannelCausesNoDataMisses(t *testing.T) {
	// The paper's stealth claim: the frontend channel does not touch the
	// data caches at all.
	lab := NewLab(DefaultConfig(Frontend))
	res := lab.Leak(secret)
	if res.L1DMiss != 0 {
		t.Errorf("frontend channel caused L1D miss rate %.4f, want 0", res.L1DMiss)
	}
}

func TestLeakChunkRejectsOutOfRange(t *testing.T) {
	lab := NewLab(DefaultConfig(Frontend))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	lab.LeakChunk(32)
}

func TestDeterministicLeak(t *testing.T) {
	a := NewLab(DefaultConfig(Frontend)).Leak(secret)
	b := NewLab(DefaultConfig(Frontend)).Leak(secret)
	if a.Accuracy != b.Accuracy || a.L1MissRate != b.L1MissRate {
		t.Error("same-seed leaks diverged")
	}
}
