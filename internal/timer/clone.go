package timer

// Clone returns an independent TSC whose noise stream continues
// identically from this point: measuring the same durations in the same
// order on clone and original yields identical readings.
func (t *TSC) Clone() *TSC {
	c := *t
	c.r = t.r.Clone()
	return &c
}
