// Package timer models the attacker's clocks: the rdtscp timestamp
// counter used by all timing attacks (Section III: "all of the
// timing-based attacks can be performed fully from the user-level
// privilege using the rdtscp instruction"), and the deliberately
// low-resolution timer the application-fingerprinting side channel is
// restricted to (Section XI: 10 Hz sampling because "existing platforms
// limit the usage of high-precision timers").
//
// Real measurements carry noise from interrupts, SMT interference, and
// frequency transitions; TSC injects a calibrated Gaussian equivalent so
// the reproduction's covert channels exhibit the paper's error rates
// rather than decoding perfectly.
package timer

import "repro/internal/rng"

// TSC is a timestamp counter read through a noisy measurement process.
type TSC struct {
	r *rng.RNG
	// SigmaAbs is absolute jitter in cycles per measurement (interrupt
	// skew, rdtscp serialization variance).
	SigmaAbs float64
	// SigmaRel scales with the measured duration (frequency wander,
	// co-runner interference).
	SigmaRel float64
	// SpikeProb is the probability a measurement catches an OS
	// interrupt, adding SpikeCycles — the heavy tail real traces show.
	SpikeProb   float64
	SpikeCycles float64
}

// NewTSC builds a noisy timestamp counter driven by r.
func NewTSC(r *rng.RNG, sigmaAbs, sigmaRel float64) *TSC {
	return &TSC{r: r, SigmaAbs: sigmaAbs, SigmaRel: sigmaRel, SpikeProb: 0.002, SpikeCycles: 900}
}

// Measure converts a true cycle duration into what rdtscp differencing
// would report.
func (t *TSC) Measure(trueCycles float64) float64 {
	m := trueCycles + t.r.NormScaled(0, t.SigmaAbs) + t.r.NormScaled(0, t.SigmaRel*trueCycles)
	if t.SpikeProb > 0 && t.r.Bool(t.SpikeProb) {
		m += t.SpikeCycles * (0.5 + t.r.Float64())
	}
	if m < 0 {
		m = 0
	}
	return m
}

// LowResSampler models a coarse timer restricted environment: it exposes
// time only at a fixed period (e.g. 10 Hz), so the attacker can compute
// rates (such as IPC) only over full periods.
type LowResSampler struct {
	PeriodCycles uint64
	last         uint64
}

// NewLowResSampler builds a sampler with the given period in cycles.
func NewLowResSampler(period uint64) *LowResSampler {
	return &LowResSampler{PeriodCycles: period}
}

// Tick reports whether a new sample boundary has been crossed at the
// given cycle, advancing the sampler when it has.
func (s *LowResSampler) Tick(cycle uint64) bool {
	if cycle-s.last >= s.PeriodCycles {
		s.last += s.PeriodCycles * ((cycle - s.last) / s.PeriodCycles)
		return true
	}
	return false
}
