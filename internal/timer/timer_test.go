package timer

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestMeasureUnbiased(t *testing.T) {
	tsc := NewTSC(rng.New(1), 5, 0.01)
	tsc.SpikeProb = 0
	const trueC = 1000.0
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += tsc.Measure(trueC)
	}
	mean := sum / n
	if math.Abs(mean-trueC) > 2 {
		t.Errorf("mean measurement %v deviates from true %v", mean, trueC)
	}
}

func TestMeasureNoiseScales(t *testing.T) {
	tsc := NewTSC(rng.New(2), 0, 0.05)
	tsc.SpikeProb = 0
	spread := func(trueC float64) float64 {
		var lo, hi = math.Inf(1), math.Inf(-1)
		for i := 0; i < 2000; i++ {
			m := tsc.Measure(trueC)
			lo = math.Min(lo, m)
			hi = math.Max(hi, m)
		}
		return hi - lo
	}
	if spread(100) >= spread(10000) {
		t.Error("relative noise should grow with duration")
	}
}

func TestMeasureNonNegative(t *testing.T) {
	tsc := NewTSC(rng.New(3), 50, 0)
	for i := 0; i < 5000; i++ {
		if tsc.Measure(1) < 0 {
			t.Fatal("negative measurement")
		}
	}
}

func TestSpikes(t *testing.T) {
	tsc := NewTSC(rng.New(4), 0, 0)
	tsc.SpikeProb = 0.5
	spiked := 0
	for i := 0; i < 1000; i++ {
		if tsc.Measure(100) > 400 {
			spiked++
		}
	}
	if spiked < 300 {
		t.Errorf("expected frequent spikes, got %d/1000", spiked)
	}
}

func TestDeterminism(t *testing.T) {
	a := NewTSC(rng.New(7), 5, 0.01)
	b := NewTSC(rng.New(7), 5, 0.01)
	for i := 0; i < 100; i++ {
		if a.Measure(500) != b.Measure(500) {
			t.Fatal("same-seed TSCs diverged")
		}
	}
}

func TestLowResSampler(t *testing.T) {
	s := NewLowResSampler(100)
	if s.Tick(50) {
		t.Error("tick before period")
	}
	if !s.Tick(100) {
		t.Error("no tick at period")
	}
	if s.Tick(150) {
		t.Error("tick mid-period")
	}
	if !s.Tick(250) {
		t.Error("no tick after catching up")
	}
}
