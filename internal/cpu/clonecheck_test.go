package cpu

import (
	"testing"

	"repro/internal/clonecheck"
	"repro/internal/isa"
)

// allowShared lists the data that is immutable after construction and
// deliberately shared between a core and its clone: decoded instruction
// slices and block layouts.
func allowShared() clonecheck.Option {
	return clonecheck.AllowType(isa.Inst{}, isa.Block{})
}

// TestCloneSharesNoMutableState walks the full object graphs of a core
// and its clone with reflection. Any pointer, slice backing array, map,
// or channel reachable from both is a field some clone.go forgot — the
// kind of staleness that silently corrupts calibration memoization when
// a struct grows a field.
func TestCloneSharesNoMutableState(t *testing.T) {
	t.Run("idle", func(t *testing.T) {
		c := NewCore(Gold6226(), 1)
		// Exercise the machine so every lazily-grown structure exists.
		blocks := isa.MixChain(3, 4, true)
		c.Enqueue(0, isa.NewLoopStream(blocks, 50), nil)
		c.RunUntilIdle(1_000_000)
		d := c.Clone()
		if shared := clonecheck.Shared(c, d, allowShared()); len(shared) != 0 {
			t.Fatalf("idle clone shares mutable state:\n%v", shared)
		}
	})

	t.Run("mid-stream", func(t *testing.T) {
		c := NewCore(Gold6226(), 1)
		blocks := isa.MixChain(3, 4, true)
		c.Enqueue(0, isa.NewLoopStream(blocks, 200), nil)
		c.Enqueue(0, isa.NewLoopStream(blocks, 10), nil) // still queued
		c.RunCycles(100)
		if c.Idle() {
			t.Fatal("core drained before the mid-stream snapshot")
		}
		d := c.Clone()
		if shared := clonecheck.Shared(c, d, allowShared()); len(shared) != 0 {
			t.Fatalf("mid-stream clone shares mutable state:\n%v", shared)
		}
	})
}

// TestCloneMidStreamReplaysIdentically pins that a core cloned with
// in-flight work replays byte-for-byte: same cycle counts, same
// counters, same retirement totals.
func TestCloneMidStreamReplaysIdentically(t *testing.T) {
	c := NewCore(Gold6226(), 1)
	blocks := isa.MixChain(5, 6, true)
	c.Enqueue(0, isa.NewLoopStream(blocks, 300), nil)
	c.Enqueue(0, isa.NewLoopStream(blocks, 20), nil)
	c.RunCycles(137)
	if c.Idle() {
		t.Fatal("core drained before the mid-stream snapshot")
	}
	d := c.Clone()

	c.RunUntilIdle(10_000_000)
	d.RunUntilIdle(10_000_000)

	if c.Cycle() != d.Cycle() {
		t.Fatalf("cycle divergence: original %d, clone %d", c.Cycle(), d.Cycle())
	}
	if c.Retired(0) != d.Retired(0) {
		t.Fatalf("retired divergence: original %d, clone %d", c.Retired(0), d.Retired(0))
	}
	if c.Counters(0) != d.Counters(0) {
		t.Fatalf("counter divergence:\noriginal %+v\nclone    %+v", c.Counters(0), d.Counters(0))
	}
	if co, cl := c.FE.SwitchBufferStats(), d.FE.SwitchBufferStats(); co != cl {
		t.Fatalf("switch-buffer stats divergence:\noriginal %+v\nclone    %+v", co, cl)
	}
}

// TestCloneRejectsCallbackTasks pins that cloning a core with a pending
// completion callback panics instead of silently dropping the callback.
func TestCloneRejectsCallbackTasks(t *testing.T) {
	c := NewCore(Gold6226(), 1)
	blocks := isa.MixChain(3, 4, true)
	c.Enqueue(0, isa.NewLoopStream(blocks, 100), func(start, end uint64) {})
	c.RunCycles(10)
	defer func() {
		if recover() == nil {
			t.Fatal("Clone with a callback-bearing in-flight task did not panic")
		}
	}()
	c.Clone()
}
