package cpu

import (
	"fmt"
	"math"

	"repro/internal/backend"
	"repro/internal/cache"
	"repro/internal/frontend"
	"repro/internal/isa"
	"repro/internal/power"
	"repro/internal/rng"
	"repro/internal/timer"
)

// Task is one scheduled unit of work on a hardware thread: a dynamic
// instruction stream plus a completion callback that receives the cycle
// at which the stream began fetching and the cycle its last micro-op
// retired. Attacks build their Init/Encode/Decode steps out of Tasks and
// time them through a noisy TSC.
type Task struct {
	Stream isa.Stream
	// OnStart fires when the task is dispatched to the frontend.
	OnStart func()
	OnDone  func(start, end uint64)

	start uint64

	// Measurement tasks (MeasureEnqueue) carry their noisy-measurement
	// state in the task itself instead of per-call closures, keeping the
	// per-measurement allocation down to the task and its stream.
	measCb     func(measured float64)
	miteBefore uint64
}

// Core is one simulated physical core with two SMT hardware threads.
type Core struct {
	Model Model
	FE    *frontend.Frontend
	BE    *backend.Backend
	L1I   *cache.Cache
	L1D   *cache.Cache
	PM    *power.Meter
	TSC   *timer.TSC
	R     *rng.RNG

	cycle      uint64
	queue      [2][]*Task
	qhead      [2]int // next undispatched index into queue[t]
	cur        [2]*Task
	lastActive [2]uint64
	lastBoth   uint64
	miteHold   int // thread holding the fetch slot an extra cycle, or -1

	// memHook is the L1D wiring passed to the backend every cycle, built
	// once so Step does not rebuild the closure.
	memHook backend.MemHook

	// Previous totals of the frontend counters the power meter reads;
	// Step tracks per-cycle deltas of just these four scalars instead of
	// diffing two full ThreadCounters structs every cycle.
	prevLSD, prevDSB, prevMITE, prevStall uint64
}

// NewCore builds a core for the given model, seeded deterministically.
func NewCore(m Model, seed uint64) *Core {
	r := rng.New(seed)
	l1i := cache.New(cache.L1Config)
	l1d := cache.New(cache.L1Config)
	c := &Core{
		miteHold: -1,
		Model:    m,
		FE:       frontend.New(m.FE, l1i, m.LSDEnabled),
		BE:       backend.New(m.BE),
		L1I:      l1i,
		L1D:      l1d,
		PM:       power.NewMeter(m.PW),
		TSC:      timer.NewTSC(r.Fork(1), m.TimerSigmaAbs, m.TimerSigmaRel),
		R:        r,
	}
	if m.StaticDSBPartition {
		c.FE.SetPartitioned(true)
	}
	c.memHook = func(t int, in isa.Inst) { c.L1D.Access(in.MemAddr) }
	return c
}

// Cycle returns the current cycle count.
func (c *Core) Cycle() uint64 { return c.cycle }

// Retired returns micro-ops retired on thread t since construction.
func (c *Core) Retired(t int) uint64 { return c.BE.Retired[t] }

// Enqueue schedules a stream on hardware thread t. onDone may be nil.
func (c *Core) Enqueue(t int, s isa.Stream, onDone func(start, end uint64)) {
	if t != 0 && t != 1 {
		panic(fmt.Sprintf("cpu: invalid hardware thread %d", t))
	}
	if t == 1 && !c.Model.HyperThreading {
		panic(fmt.Sprintf("cpu: %s has hyper-threading disabled", c.Model.Name))
	}
	c.queue[t] = append(c.queue[t], &Task{Stream: s, OnDone: onDone})
}

// Busy reports whether thread t has queued or in-flight work.
func (c *Core) Busy(t int) bool {
	return c.cur[t] != nil || c.qhead[t] < len(c.queue[t])
}

// Idle reports whether both threads are fully drained.
func (c *Core) Idle() bool { return !c.Busy(0) && !c.Busy(1) }

// Step advances the core by one cycle: task dispatch, DSB partition
// management, SMT fetch arbitration, frontend delivery, backend
// retirement, and power accrual.
func (c *Core) Step() {
	c.cycle++

	// Dispatch queued tasks. The queue is drained by head index so the
	// backing array is reused across enqueue/dispatch cycles.
	for t := 0; t < 2; t++ {
		if c.cur[t] == nil && c.qhead[t] < len(c.queue[t]) {
			task := c.queue[t][c.qhead[t]]
			c.queue[t][c.qhead[t]] = nil
			c.qhead[t]++
			if c.qhead[t] == len(c.queue[t]) {
				c.queue[t] = c.queue[t][:0]
				c.qhead[t] = 0
			}
			task.start = c.cycle
			c.cur[t] = task
			c.FE.SetStream(t, task.Stream)
			if task.OnStart != nil {
				task.OnStart()
			}
			if task.measCb != nil {
				task.miteBefore = c.FE.Ctr[t].UOpsMITE
			}
		}
		if c.cur[t] != nil {
			c.lastActive[t] = c.cycle
		}
	}

	// SMT partition management (Section IV-B): the DSB partitions while
	// both threads are active and reverts once one side has been quiet
	// for the hysteresis window. A statically partitioned DSB (the
	// Section XII defense) never transitions, so there is nothing to
	// manage — and no transition timing to leak.
	if c.Model.HyperThreading && !c.Model.StaticDSBPartition {
		if c.cur[0] != nil && c.cur[1] != nil {
			c.lastBoth = c.cycle
			c.FE.SetPartitioned(true)
		} else if c.FE.DSB.Partitioned() && c.cycle-c.lastBoth > c.Model.PartitionHysteresis {
			c.FE.SetPartitioned(false)
		}
	}

	// Fetch arbitration. A lone active thread owns every delivery slot.
	// With both threads active the slot alternates strictly — the
	// frontend-bandwidth halving behind the Section XI side channel —
	// except that a thread fetching through MITE holds the shared
	// fetch/predecode hardware for one extra slot, so MITE-heavy siblings
	// squeeze a co-runner below half bandwidth. The unslotted thread
	// still drains its private stall debt in parallel.
	both := c.cur[0] != nil && c.cur[1] != nil
	grant := -1
	switch {
	case both && c.miteHold >= 0:
		grant = c.miteHold
		c.miteHold = -1
		_, _ = c.FE.DeliverCycle(grant)
	case both:
		grant = int(c.cycle & 1)
		if _, src := c.FE.DeliverCycle(grant); src == frontend.SrcMITE {
			c.miteHold = grant
		}
	case c.cur[0] != nil:
		grant = 0
		c.FE.DeliverCycle(0)
	case c.cur[1] != nil:
		grant = 1
		c.FE.DeliverCycle(1)
	}
	if both {
		other := 1 - grant
		if c.FE.Stalled(other) {
			c.FE.DeliverCycle(other) // burns one stall cycle
		}
	}

	// Backend retirement; loads and stores touch the L1D as they execute.
	retired := c.BE.Cycle(c.FE, c.memHook)

	// Package power accrual from this cycle's frontend activity. The
	// meter reads only the delivery-path micro-op and stall counters, so
	// only those four totals are delta-tracked per cycle.
	lsd := c.FE.Ctr[0].UOpsLSD + c.FE.Ctr[1].UOpsLSD
	dsb := c.FE.Ctr[0].UOpsDSB + c.FE.Ctr[1].UOpsDSB
	mite := c.FE.Ctr[0].UOpsMITE + c.FE.Ctr[1].UOpsMITE
	stall := c.FE.Ctr[0].StallCycles + c.FE.Ctr[1].StallCycles
	c.PM.AddCycleDelta(lsd-c.prevLSD, dsb-c.prevDSB, mite-c.prevMITE, stall-c.prevStall, retired)
	c.prevLSD, c.prevDSB, c.prevMITE, c.prevStall = lsd, dsb, mite, stall

	// Task completion: stream fully fetched and IDQ drained.
	for t := 0; t < 2; t++ {
		if c.cur[t] != nil && c.FE.StreamDone(t) && c.FE.IDQLen(t) == 0 {
			task := c.cur[t]
			c.cur[t] = nil
			if task.OnDone != nil {
				task.OnDone(task.start, c.cycle)
			}
			if task.measCb != nil {
				c.finishMeasure(t, task)
			}
		}
	}
}

// finishMeasure reports a measurement task's noisy timing, exactly as
// RunTimed would: serializing-timer noise on the duration plus protocol
// overhead, and MITE jitter scaled by the legacy-decoded micro-op count.
func (c *Core) finishMeasure(t int, task *Task) {
	m := c.TSC.Measure(float64(c.cycle-task.start) + c.Model.ProtocolOverheadCycles)
	if mu := float64(c.FE.Ctr[t].UOpsMITE - task.miteBefore); mu > 0 && c.Model.MITEJitterSqrtUOp > 0 {
		m += c.R.NormScaled(0, c.Model.MITEJitterSqrtUOp*math.Sqrt(mu))
	}
	if m < 0 {
		m = 0
	}
	task.measCb(m)
}

// AbortThread drops thread t's current task and queue without running
// them to completion (the OS preempting/rescheduling a workload). Pending
// completion callbacks are discarded.
func (c *Core) AbortThread(t int) {
	c.cur[t] = nil
	c.queue[t] = c.queue[t][:0]
	c.qhead[t] = 0
	c.FE.SetStream(t, nil)
}

// RunCycles advances exactly n cycles.
func (c *Core) RunCycles(n uint64) {
	for i := uint64(0); i < n; i++ {
		c.Step()
	}
}

// RunUntilIdle steps until both threads drain, or panics after maxCycles
// as a runaway guard.
func (c *Core) RunUntilIdle(maxCycles uint64) {
	start := c.cycle
	for !c.Idle() {
		c.Step()
		if c.cycle-start > maxCycles {
			panic(fmt.Sprintf("cpu: RunUntilIdle exceeded %d cycles", maxCycles))
		}
	}
}

// RunTimed enqueues a stream on thread t, runs it to completion, and
// returns the noisy TSC measurement of its duration plus the model's
// fixed protocol overhead — one timed attack step. Steps that decoded
// through MITE pick up extra jitter proportional to the legacy-decoded
// micro-op count (see Model.MITEJitterPerUOp).
func (c *Core) RunTimed(t int, s isa.Stream) float64 {
	var dur float64
	before := c.FE.Ctr[t].UOpsMITE
	// The measurement handshake (serializing rdtscp pairs, fences, loop
	// setup) occupies real time as well as appearing in the reading.
	c.RunCycles(uint64(c.Model.ProtocolOverheadCycles))
	c.Enqueue(t, s, func(start, end uint64) { dur = float64(end - start) })
	c.RunUntilIdle(100_000_000)
	miteUOps := float64(c.FE.Ctr[t].UOpsMITE - before)
	m := c.TSC.Measure(dur + c.Model.ProtocolOverheadCycles)
	if miteUOps > 0 && c.Model.MITEJitterSqrtUOp > 0 {
		m += c.R.NormScaled(0, c.Model.MITEJitterSqrtUOp*math.Sqrt(miteUOps))
	}
	if m < 0 {
		m = 0
	}
	return m
}

// RunTimedTight is RunTimed with only the in-process rdtscp overhead
// (~60 cycles) instead of the cross-process protocol handshake: the
// timing mode of a Spectre attacker probing its own structures.
func (c *Core) RunTimedTight(t int, s isa.Stream) float64 {
	const tightOverhead = 60
	var dur float64
	before := c.FE.Ctr[t].UOpsMITE
	c.RunCycles(tightOverhead)
	c.Enqueue(t, s, func(start, end uint64) { dur = float64(end - start) })
	c.RunUntilIdle(100_000_000)
	m := c.TSC.Measure(dur + tightOverhead)
	if mu := float64(c.FE.Ctr[t].UOpsMITE - before); mu > 0 && c.Model.MITEJitterSqrtUOp > 0 {
		m += c.R.NormScaled(0, c.Model.MITEJitterSqrtUOp*math.Sqrt(mu))
	}
	if m < 0 {
		m = 0
	}
	return m
}

// MeasureEnqueue schedules a stream on thread t whose duration is
// reported through the same noisy measurement process as RunTimed, but
// without blocking: the callback fires when the task completes. MT
// receivers use this to take measurements while the sender thread runs.
func (c *Core) MeasureEnqueue(t int, s isa.Stream, cb func(measured float64)) {
	c.queue[t] = append(c.queue[t], &Task{Stream: s, measCb: cb})
}

// Counters returns the frontend counters for thread t.
func (c *Core) Counters(t int) frontend.ThreadCounters { return c.FE.Ctr[t] }

// IPCWindow computes instructions-per-cycle for thread t between two
// (cycle, retired) snapshots.
type IPCWindow struct {
	Cycle   uint64
	Retired uint64
}

// Snapshot captures an IPC accounting point for thread t.
func (c *Core) Snapshot(t int) IPCWindow {
	return IPCWindow{Cycle: c.cycle, Retired: c.BE.Retired[t]}
}

// IPCSince returns the IPC for thread t since the snapshot.
func (c *Core) IPCSince(t int, w IPCWindow) float64 {
	dc := c.cycle - w.Cycle
	if dc == 0 {
		return 0
	}
	return float64(c.BE.Retired[t]-w.Retired) / float64(dc)
}
