package cpu

import "repro/internal/isa"

// Clone returns a deep copy of the core: stepping the clone produces
// exactly the cycle counts, counter values, and RNG draws the original
// would have produced from this point. In-flight and queued tasks are
// snapshotted too, as long as they carry no callbacks — a closure cannot
// be deep-copied, so Clone panics on a task with OnStart/OnDone or a
// measurement callback still pending. The sweep engine clones cores at
// the quiescent point after a calibration preamble (always callback-free);
// the leakage-contract executor clones mid-stream.
func (c *Core) Clone() *Core {
	d := &Core{
		Model:      c.Model,
		BE:         c.BE.Clone(),
		L1I:        c.L1I.Clone(),
		L1D:        c.L1D.Clone(),
		PM:         c.PM.Clone(),
		TSC:        c.TSC.Clone(),
		R:          c.R.Clone(),
		cycle:      c.cycle,
		lastActive: c.lastActive,
		lastBoth:   c.lastBoth,
		miteHold:   c.miteHold,
		prevLSD:    c.prevLSD,
		prevDSB:    c.prevDSB,
		prevMITE:   c.prevMITE,
		prevStall:  c.prevStall,
	}
	d.FE = c.FE.CloneWith(d.L1I)
	for t := 0; t < 2; t++ {
		// The dispatched task's stream was installed in the frontend; the
		// frontend clone already snapshotted it, so point the cloned task
		// at that same snapshot rather than cloning the stream twice.
		if c.cur[t] != nil {
			d.cur[t] = cloneTask(c.cur[t])
			d.cur[t].Stream = d.FE.Stream(t)
		}
		for _, task := range c.queue[t][c.qhead[t]:] {
			q := cloneTask(task)
			q.Stream = cloneTaskStream(task.Stream)
			d.queue[t] = append(d.queue[t], q)
		}
	}
	d.memHook = func(t int, in isa.Inst) { d.L1D.Access(in.MemAddr) }
	return d
}

// cloneTask copies a task's scalar state and rejects tasks whose
// callbacks would dangle into the original core's world.
func cloneTask(t *Task) *Task {
	if t.OnStart != nil || t.OnDone != nil || t.measCb != nil {
		panic("cpu: Clone with an in-flight callback-bearing task")
	}
	c := *t
	return &c
}

// cloneTaskStream snapshots a queued (not yet dispatched) task's stream.
func cloneTaskStream(s isa.Stream) isa.Stream {
	if s == nil {
		return nil
	}
	cs, ok := s.(isa.CloneableStream)
	if !ok {
		panic("cpu: Clone with a non-cloneable queued stream")
	}
	return cs.CloneStream()
}
