package cpu

import "repro/internal/isa"

// Clone returns a deep copy of the core: stepping the clone produces
// exactly the cycle counts, counter values, and RNG draws the original
// would have produced from this point. Both hardware threads must be
// idle (no queued or in-flight tasks) — the sweep engine clones cores
// only at the quiescent point after a calibration preamble.
func (c *Core) Clone() *Core {
	if !c.Idle() {
		panic("cpu: Clone with in-flight work")
	}
	d := &Core{
		Model:      c.Model,
		BE:         c.BE.Clone(),
		L1I:        c.L1I.Clone(),
		L1D:        c.L1D.Clone(),
		PM:         c.PM.Clone(),
		TSC:        c.TSC.Clone(),
		R:          c.R.Clone(),
		cycle:      c.cycle,
		lastActive: c.lastActive,
		lastBoth:   c.lastBoth,
		miteHold:   c.miteHold,
		prevLSD:    c.prevLSD,
		prevDSB:    c.prevDSB,
		prevMITE:   c.prevMITE,
		prevStall:  c.prevStall,
	}
	d.FE = c.FE.CloneWith(d.L1I)
	d.memHook = func(t int, in isa.Inst) { d.L1D.Access(in.MemAddr) }
	return d
}
