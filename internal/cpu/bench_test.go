package cpu

import (
	"testing"

	"repro/internal/isa"
)

// benchLoop is a representative attack working set: six aligned mix
// blocks chained into one loop, the shape every receiver pass executes.
func benchLoop() []*isa.Block {
	blocks := make([]*isa.Block, 6)
	for w := 0; w < 6; w++ {
		blocks[w] = isa.MixBlock(isa.AddrForSet(20, w))
	}
	isa.ChainLoop(blocks)
	return blocks
}

// BenchmarkCoreStep times the cycle stepper itself with a thread
// continuously fetching — the innermost loop of the whole simulator.
// ns/op here is per simulated cycle; allocs/op must be ~0.
func BenchmarkCoreStep(b *testing.B) {
	c := NewCore(Gold6226(), 1)
	blocks := benchLoop()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c.Idle() {
			c.Enqueue(0, isa.NewLoopStream(blocks, 1_000_000), nil)
		}
		c.Step()
	}
}

// BenchmarkCoreRunTimed times one full timed attack step (protocol
// overhead, stream execution, noisy measurement) at the non-MT channel's
// default p=10 scale.
func BenchmarkCoreRunTimed(b *testing.B) {
	c := NewCore(Gold6226(), 1)
	blocks := benchLoop()
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += c.RunTimed(0, isa.NewLoopStream(blocks, 10))
	}
	if sink < 0 {
		b.Fatal("negative measurement sum")
	}
}
