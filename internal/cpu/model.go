// Package cpu assembles the substrates into a simulated processor core:
// two SMT hardware threads sharing a frontend, execution engine, L1
// caches, and a power meter, with the CPU model catalog of the paper's
// Table I and a deterministic cycle loop that the attack layer drives.
package cpu

import (
	"repro/internal/backend"
	"repro/internal/frontend"
	"repro/internal/power"
)

// Model describes one of the evaluated processors (Table I) plus the
// calibration constants the reproduction uses to match that machine's
// measured channel characteristics.
type Model struct {
	Name      string
	Microarch string
	Cores     int
	Threads   int
	FreqGHz   float64
	OS        string

	// LSDEnabled reflects the machine's current microcode: Table I marks
	// the LSD disabled on the E-2174G and E-2286G; Section X's patch2
	// disables it on the Gold 6226 too.
	LSDEnabled bool
	LSDEntries int
	SGX        bool
	// HyperThreading is false on the Azure E-2288G, which rules the MT
	// attacks out on that machine (Table III).
	HyperThreading bool

	FE frontend.Params
	BE backend.Params
	PW power.Params

	// Measurement-noise calibration (drives the channel error rates).
	TimerSigmaAbs float64 // absolute rdtscp jitter, cycles
	TimerSigmaRel float64 // duration-proportional jitter
	// MITEJitterSqrtUOp adds timing noise scaling with the square root
	// of the micro-ops that went through legacy decode during a measured
	// step (independent per-micro-op perturbations add in quadrature):
	// MITE's fetch/decode overlap is data-dependent on real parts, so
	// MITE-heavy attack steps (the eviction channels) measure noisier
	// than DSB/LSD-resident ones (the misalignment channels) — Table
	// III's error-rate pattern.
	MITEJitterSqrtUOp float64
	// PowerNoiseWatts is the RAPL measurement noise floor (co-tenant
	// activity, voltage regulator wander) applied per power-channel
	// reading.
	PowerNoiseWatts float64
	// MTNoisePerPass is the cross-thread desynchronization noise added
	// to each MT receiver pass measurement: sender and receiver slots
	// drift against each other on real SMT cores, which is why the MT
	// channels are noisier than the non-MT ones (Section VI-E).
	MTNoisePerPass float64

	// ProtocolOverheadCycles is the fixed per-measurement overhead
	// (timer serialization, loop setup); it is the per-model constant
	// that spreads the Table III transmission rates beyond what clock
	// frequency alone explains.
	ProtocolOverheadCycles float64
	// StepOverheadCycles is the additional handshake cost a protocol
	// step pays when it actually executes sender code; the fast (do
	// nothing on 0) variants skip it on zero bits, which is their rate
	// advantage over the stealthy variants (Table III).
	StepOverheadCycles float64
	// MTStepCycles is the per-encode-step slot length of the MT
	// channels' synchronization protocol; a bit occupies q such slots.
	MTStepCycles float64

	// PartitionHysteresis is how long (cycles) after a sibling thread
	// goes quiet the DSB stays partitioned.
	PartitionHysteresis uint64
	// StaticDSBPartition pins the DSB in its partitioned configuration
	// from reset, removing the dynamic partition/revert transitions the
	// MT eviction channel's signal rides on. It is the frontend-path
	// partitioning defense of Section XII, not a Table I machine
	// configuration; defense.Partition sets it.
	StaticDSBPartition bool

	// EnclaveTransitionCycles is the cost of one SGX enclave entry or
	// exit (Section VIII).
	EnclaveTransitionCycles float64
	// EnclaveNoiseFactor scales measurement noise for code running
	// behind an enclave boundary.
	EnclaveNoiseFactor float64
}

// CyclesPerSecond returns the clock rate in Hz.
func (m Model) CyclesPerSecond() float64 { return m.FreqGHz * 1e9 }

// WithLSD returns a copy of the model with the LSD force-enabled or
// disabled, the microcode-patch knob of Section X.
func (m Model) WithLSD(enabled bool) Model {
	m.LSDEnabled = enabled
	return m
}

// Gold6226 is the Intel Xeon Gold 6226 (Cascade Lake) test machine: the
// paper's primary platform for the frontend analysis, power channels,
// Spectre variant, and microcode fingerprinting.
func Gold6226() Model {
	return Model{
		Name:                    "Gold 6226",
		Microarch:               "Cascade Lake",
		Cores:                   12,
		Threads:                 24,
		FreqGHz:                 2.7,
		OS:                      "Ubuntu 18.04",
		LSDEnabled:              true,
		LSDEntries:              64,
		SGX:                     false,
		HyperThreading:          true,
		FE:                      frontend.DefaultParams(),
		BE:                      backend.DefaultParams(),
		PW:                      power.DefaultParams(2.7),
		TimerSigmaAbs:           16,
		TimerSigmaRel:           0.002,
		MITEJitterSqrtUOp:       2.9,
		PowerNoiseWatts:         1.3,
		MTNoisePerPass:          2.4,
		ProtocolOverheadCycles:  4045,
		StepOverheadCycles:      2090,
		MTStepCycles:            215,
		PartitionHysteresis:     400,
		EnclaveTransitionCycles: 9000,
		EnclaveNoiseFactor:      2.0,
	}
}

// XeonE2174G is the Intel Xeon E-2174G (Coffee Lake, LSD disabled by
// microcode, SGX capable).
func XeonE2174G() Model {
	m := Gold6226()
	m.Name = "Xeon E-2174G"
	m.Microarch = "Coffee Lake"
	m.Cores, m.Threads = 4, 8
	m.FreqGHz = 3.8
	m.LSDEnabled = false
	m.LSDEntries = 0
	m.SGX = true
	m.PW = power.DefaultParams(3.8)
	m.TimerSigmaAbs = 10
	m.TimerSigmaRel = 0.0015
	m.MITEJitterSqrtUOp = 2.1
	m.PowerNoiseWatts = 0.9
	m.MTNoisePerPass = 1.6
	m.ProtocolOverheadCycles = 3065
	m.StepOverheadCycles = 1150
	m.MTStepCycles = 311
	m.EnclaveTransitionCycles = 7800
	return m
}

// XeonE2286G is the Intel Xeon E-2286G (Coffee Lake, LSD disabled by
// microcode, SGX capable).
func XeonE2286G() Model {
	m := XeonE2174G()
	m.Name = "Xeon E-2286G"
	m.Cores, m.Threads = 6, 12
	m.FreqGHz = 4.0
	m.PW = power.DefaultParams(4.0)
	m.TimerSigmaAbs = 9
	m.TimerSigmaRel = 0.0015
	m.MITEJitterSqrtUOp = 2.1
	m.PowerNoiseWatts = 0.9
	m.MTNoisePerPass = 1.7
	m.ProtocolOverheadCycles = 3000
	m.StepOverheadCycles = 130
	m.MTStepCycles = 229
	m.EnclaveTransitionCycles = 7400
	return m
}

// XeonE2288G is the Microsoft-Azure Intel Xeon E-2288G: hyper-threading
// disabled (Table I footnote a), LSD present, SGX capable.
func XeonE2288G() Model {
	m := XeonE2174G()
	m.Name = "Xeon E-2288G"
	m.Cores, m.Threads = 8, 8
	m.FreqGHz = 3.7
	m.LSDEnabled = true
	m.LSDEntries = 64
	m.HyperThreading = false
	m.PW = power.DefaultParams(3.7)
	m.TimerSigmaAbs = 6
	m.TimerSigmaRel = 0.001
	m.MITEJitterSqrtUOp = 1.2
	m.PowerNoiseWatts = 0.7
	m.MTNoisePerPass = 1.0
	m.ProtocolOverheadCycles = 2310
	m.StepOverheadCycles = 170
	m.MTStepCycles = 160
	m.EnclaveTransitionCycles = 7000
	return m
}

// Models returns the full Table I catalog in the paper's column order.
func Models() []Model {
	return []Model{Gold6226(), XeonE2174G(), XeonE2286G(), XeonE2288G()}
}

// ModelByName finds a catalog model by (case-sensitive) name.
func ModelByName(name string) (Model, bool) {
	for _, m := range Models() {
		if m.Name == name {
			return m, true
		}
	}
	return Model{}, false
}
