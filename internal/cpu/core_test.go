package cpu

import (
	"testing"

	"repro/internal/isa"
)

func TestModelCatalog(t *testing.T) {
	ms := Models()
	if len(ms) != 4 {
		t.Fatalf("catalog has %d models, want 4 (Table I)", len(ms))
	}
	byName := map[string]Model{}
	for _, m := range ms {
		byName[m.Name] = m
	}
	g := byName["Gold 6226"]
	if g.Microarch != "Cascade Lake" || g.Cores != 12 || g.Threads != 24 || g.FreqGHz != 2.7 {
		t.Errorf("Gold 6226 spec wrong: %+v", g)
	}
	if !g.LSDEnabled || g.SGX {
		t.Error("Gold 6226: LSD enabled, no SGX per Table I")
	}
	for _, name := range []string{"Xeon E-2174G", "Xeon E-2286G"} {
		if byName[name].LSDEnabled {
			t.Errorf("%s must have LSD disabled (Table I footnote b)", name)
		}
		if !byName[name].SGX {
			t.Errorf("%s must support SGX", name)
		}
	}
	if byName["Xeon E-2288G"].HyperThreading {
		t.Error("E-2288G has hyper-threading disabled (Table I footnote a)")
	}
	if !byName["Xeon E-2288G"].LSDEnabled {
		t.Error("E-2288G has the LSD enabled")
	}
}

func TestModelByName(t *testing.T) {
	if _, ok := ModelByName("Gold 6226"); !ok {
		t.Error("Gold 6226 not found")
	}
	if _, ok := ModelByName("nope"); ok {
		t.Error("bogus model found")
	}
}

func TestWithLSD(t *testing.T) {
	m := Gold6226().WithLSD(false)
	if m.LSDEnabled {
		t.Error("WithLSD(false) did not disable")
	}
	if !Gold6226().LSDEnabled {
		t.Error("WithLSD mutated the catalog")
	}
}

func TestRunTaskToCompletion(t *testing.T) {
	c := NewCore(Gold6226(), 1)
	blocks := isa.MixChain(3, 4, true)
	var start, end uint64
	c.Enqueue(0, isa.NewLoopStream(blocks, 5), func(s, e uint64) { start, end = s, e })
	c.RunUntilIdle(1_000_000)
	if end <= start {
		t.Fatalf("task timing invalid: start=%d end=%d", start, end)
	}
	if c.Retired(0) != 5*4*5 {
		t.Errorf("retired %d uops, want 100", c.Retired(0))
	}
}

func TestDeterministicExecution(t *testing.T) {
	run := func() (uint64, float64) {
		c := NewCore(Gold6226(), 42)
		m := c.RunTimed(0, isa.NewLoopStream(isa.MixChain(3, 6, true), 10))
		return c.Cycle(), m
	}
	c1, m1 := run()
	c2, m2 := run()
	if c1 != c2 || m1 != m2 {
		t.Errorf("same-seed runs diverged: (%d,%v) vs (%d,%v)", c1, m1, c2, m2)
	}
}

func TestEnqueueOnDisabledHTPanics(t *testing.T) {
	c := NewCore(XeonE2288G(), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("enqueue on thread 1 of an HT-disabled model must panic")
		}
	}()
	c.Enqueue(1, isa.NewLoopStream(isa.MixChain(0, 1, true), 1), nil)
}

func TestSMTPartitionsOnDualActivity(t *testing.T) {
	c := NewCore(Gold6226(), 1)
	c.Enqueue(0, isa.NewLoopStream(isa.MixChain(3, 4, true), 200), nil)
	c.Enqueue(1, isa.NewLoopStream(isa.MixChain(9, 4, true), 200), nil)
	for i := 0; i < 200 && !c.FE.DSB.Partitioned(); i++ {
		c.Step()
	}
	if !c.FE.DSB.Partitioned() {
		t.Fatal("DSB did not partition with both threads active")
	}
	c.RunUntilIdle(1_000_000)
	// After both threads drain and hysteresis passes, it unpartitions.
	c.RunCycles(c.Model.PartitionHysteresis + 10)
	if c.FE.DSB.Partitioned() {
		t.Error("DSB still partitioned after threads went idle")
	}
}

func TestSingleThreadNeverPartitions(t *testing.T) {
	c := NewCore(Gold6226(), 1)
	c.Enqueue(0, isa.NewLoopStream(isa.MixChain(3, 4, true), 100), nil)
	c.RunUntilIdle(1_000_000)
	if c.FE.DSB.Partitioned() {
		t.Error("single-thread run partitioned the DSB")
	}
}

func TestSMTSharingSlowsThread(t *testing.T) {
	// Co-running a demanding sibling substantially reduces a thread's
	// frontend bandwidth (the basis of the Section XI fingerprinting
	// signal). The receiver is the paper's nop loop (delivery-hungry);
	// the victim is a MITE-thrashing 9-block chain.
	nops := []*isa.Block{isa.NopBlockLen(0x500000, 100, 2)}
	isa.ChainLoop(nops)

	solo := NewCore(Gold6226(), 1)
	var soloTime uint64
	solo.Enqueue(0, isa.NewLoopStream(nops, 300), func(s, e uint64) { soloTime = e - s })
	solo.RunUntilIdle(10_000_000)

	shared := NewCore(Gold6226(), 1)
	shared.Enqueue(1, isa.NewLoopStream(isa.MixChain(9, 9, true), 20000), nil)
	var sharedTime uint64
	shared.Enqueue(0, isa.NewLoopStream(nops, 300), func(s, e uint64) { sharedTime = e - s })
	shared.RunUntilIdle(50_000_000)

	if sharedTime < soloTime*5/4 {
		t.Errorf("SMT sharing too cheap: solo=%d shared=%d", soloTime, sharedTime)
	}
}

func TestRunTimedAddsNoise(t *testing.T) {
	c := NewCore(Gold6226(), 9)
	a := c.RunTimed(0, isa.NewLoopStream(isa.MixChain(3, 4, true), 10))
	b := c.RunTimed(0, isa.NewLoopStream(isa.MixChain(3, 4, true), 10))
	if a == b {
		t.Error("two measurements identical; TSC noise missing")
	}
}

func TestPowerAccrues(t *testing.T) {
	c := NewCore(Gold6226(), 1)
	c.RunTimed(0, isa.NewLoopStream(isa.MixChain(3, 4, true), 50))
	if c.PM.TrueEnergy() <= 0 {
		t.Error("no energy accrued")
	}
	if c.PM.Cycles() != c.Cycle() {
		t.Errorf("power cycles %d != core cycles %d", c.PM.Cycles(), c.Cycle())
	}
}

func TestIPCSnapshot(t *testing.T) {
	c := NewCore(Gold6226(), 1)
	c.Enqueue(0, isa.NewLoopStream(isa.MixChain(3, 8, true), 500), nil)
	c.RunCycles(200) // warmup
	w := c.Snapshot(0)
	c.RunCycles(2000)
	ipc := c.IPCSince(0, w)
	if ipc <= 0.5 || ipc > 4 {
		t.Errorf("steady-state mix-chain IPC = %v, expected in (0.5, 4]", ipc)
	}
}

func TestLoadsTouchL1D(t *testing.T) {
	c := NewCore(Gold6226(), 1)
	b := isa.LoadBlock(0x6000, []uint64{0x100000, 0x100040})
	b.SetTarget(0) // fallthrough exit
	last := &b.Insts[len(b.Insts)-1]
	last.Taken = false
	c.Enqueue(0, isa.NewSeqStream(b.Insts), nil)
	c.RunUntilIdle(100_000)
	if c.L1D.Stats().Accesses() != 2 {
		t.Errorf("L1D accesses = %d, want 2", c.L1D.Stats().Accesses())
	}
}
