package store

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/channel"
	"repro/internal/experiments"
	"repro/internal/spec"
)

func testSpec(t *testing.T) spec.ChannelSpec {
	t.Helper()
	cs := spec.ChannelSpec{Mechanism: spec.MechanismEviction, Seed: 7}.Normalize()
	if err := cs.Validate(); err != nil {
		t.Fatal(err)
	}
	return cs
}

func channelFixture(t *testing.T) (string, experiments.Result) {
	t.Helper()
	cs := testSpec(t)
	tres := channel.Result{
		Channel: "dsb-eviction", Model: "Gold 6226",
		Sent: "1010", Received: "1010",
		Cycles: 123456, Seconds: 0.0345, RateKbps: 115.9462337, ErrorRate: 0.015625,
	}
	return ChannelKey(cs, 200), ChannelResult(cs, tres)
}

// artifactFixture models an artifact result whose Data is an arbitrary
// struct — the case that must survive the disk round trip as raw JSON.
func artifactFixture() (string, experiments.Result) {
	type inner struct {
		B string  `json:"zz_listed_first"` // field order != alphabetical: catches map-based re-marshaling
		A float64 `json:"aa_listed_second"`
	}
	return "v1|tableII|seed=3|bits=200", experiments.Result{
		Name: "tableII", Ref: "Table II", Desc: "fixture", Seed: 3,
		Rendered: "row 1\nrow 2\n",
		Data:     inner{B: "x", A: 0.1},
	}
}

// TestRoundTripByteIdentity is the store's core promise: a result
// reloaded from disk re-marshals — compact and indented, the two
// encodings the daemon serves — to exactly the bytes the original
// produced.
func TestRoundTripByteIdentity(t *testing.T) {
	ctx := context.Background()
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for name, fix := range map[string]func() (string, experiments.Result){
		"channel":  func() (string, experiments.Result) { k, r := channelFixture(t); return k, r },
		"artifact": artifactFixture,
	} {
		t.Run(name, func(t *testing.T) {
			key, res := fix()
			if err := st.Put(ctx, key, res); err != nil {
				t.Fatal(err)
			}
			got, ok := st.Get(ctx, key)
			if !ok {
				t.Fatal("Get missed just-Put key")
			}
			for enc, marshal := range map[string]func(any) ([]byte, error){
				"compact":  json.Marshal,
				"indented": func(v any) ([]byte, error) { return json.MarshalIndent(v, "", "  ") },
			} {
				want, err := marshal(res)
				if err != nil {
					t.Fatal(err)
				}
				blob, err := marshal(got)
				if err != nil {
					t.Fatal(err)
				}
				if string(blob) != string(want) {
					t.Errorf("%s bytes differ after reload:\n got %s\nwant %s", enc, blob, want)
				}
			}
		})
	}
}

// TestChannelDataRehydrates proves the sweep engine's type assertion
// keeps working across a restart: a channel entry's Data comes back as
// a concrete channel.Result, not a decoded map.
func TestChannelDataRehydrates(t *testing.T) {
	ctx := context.Background()
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key, res := channelFixture(t)
	if err := st.Put(ctx, key, res); err != nil {
		t.Fatal(err)
	}
	got, ok := st.Get(ctx, key)
	if !ok {
		t.Fatal("Get missed")
	}
	tres, ok := got.Data.(channel.Result)
	if !ok {
		t.Fatalf("reloaded Data is %T, want channel.Result", got.Data)
	}
	if tres != res.Data.(channel.Result) {
		t.Errorf("reloaded channel.Result differs: %+v vs %+v", tres, res.Data)
	}
}

// entryFile returns the single entry file of a store holding one key.
func entryFile(t *testing.T, st *Store, key string) string {
	t.Helper()
	path := st.path(key)
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("entry file: %v", err)
	}
	return path
}

// TestCorruptionDegradesToMiss walks every defect class the issue
// names — corrupted bytes, truncated write, version mismatch, alien
// key — and requires each to quarantine and miss, never panic or
// return a wrong byte.
func TestCorruptionDegradesToMiss(t *testing.T) {
	ctx := context.Background()
	key, res := channelFixture(t)
	corrupt := map[string]func(t *testing.T, path string){
		"garbage": func(t *testing.T, path string) {
			os.WriteFile(path, []byte("not json at all"), 0o644)
		},
		"truncated": func(t *testing.T, path string) {
			blob, _ := os.ReadFile(path)
			os.WriteFile(path, blob[:len(blob)/2], 0o644)
		},
		"bitflip": func(t *testing.T, path string) {
			blob, _ := os.ReadFile(path)
			// Flip a byte inside the payload, past the envelope header, so
			// only the checksum can catch it.
			blob[len(blob)-10] ^= 0x20
			os.WriteFile(path, blob, 0o644)
		},
		"version": func(t *testing.T, path string) {
			blob, _ := os.ReadFile(path)
			os.WriteFile(path, []byte(strings.Replace(string(blob), `{"v":1,`, `{"v":99,`, 1)), 0o644)
		},
		"alien": func(t *testing.T, path string) {
			// A valid entry for a different key parked under this key's
			// file name (a copied cache, a hash collision).
			other, err := encodeEntry("some-other-key", res)
			if err != nil {
				t.Fatal(err)
			}
			os.WriteFile(path, other, 0o644)
		},
	}
	for name, breakIt := range corrupt {
		t.Run(name, func(t *testing.T) {
			st, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			if err := st.Put(ctx, key, res); err != nil {
				t.Fatal(err)
			}
			breakIt(t, entryFile(t, st, key))
			if _, ok := st.Get(ctx, key); ok {
				t.Fatal("corrupted entry served as a hit")
			}
			stats := st.Stats()
			if stats.Quarantined != 1 || stats.Misses != 1 {
				t.Errorf("stats = %+v, want 1 quarantined + 1 miss", stats)
			}
			if _, err := os.Stat(filepath.Join(st.Dir(), quarantineDir, filepath.Base(st.path(key)))); err != nil {
				t.Errorf("defective entry not quarantined: %v", err)
			}
			if st.Len() != 0 {
				t.Errorf("Len() = %d after quarantine, want 0", st.Len())
			}
			// The store must recover: a fresh Put over the quarantined key
			// serves again.
			if err := st.Put(ctx, key, res); err != nil {
				t.Fatal(err)
			}
			if _, ok := st.Get(ctx, key); !ok {
				t.Error("re-Put after quarantine still misses")
			}
		})
	}
}

// TestUnwritableDirDegrades proves a store whose directory has gone
// bad (deleted and shadowed by a file — the strongest failure even
// root cannot write through) degrades every Put to a counted error and
// every Get to a miss, with no panic.
func TestUnwritableDirDegrades(t *testing.T) {
	ctx := context.Background()
	dir := filepath.Join(t.TempDir(), "cache")
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dir, []byte("in the way"), 0o644); err != nil {
		t.Fatal(err)
	}
	key, res := channelFixture(t)
	if err := st.Put(ctx, key, res); err == nil {
		t.Error("Put into a shadowed directory reported success")
	}
	if _, ok := st.Get(ctx, key); ok {
		t.Error("Get from a shadowed directory reported a hit")
	}
	stats := st.Stats()
	if stats.PutErrors != 1 || stats.Misses != 1 || stats.Puts != 0 {
		t.Errorf("stats = %+v, want 1 put error + 1 miss", stats)
	}
}

// TestReadOnlyDirDegrades covers the literal read-only case where the
// process cannot write the directory; root bypasses permission bits,
// so it is skipped when running as root (the shadowed-directory test
// above covers that environment).
func TestReadOnlyDirDegrades(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("permission bits do not bind root")
	}
	ctx := context.Background()
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755)
	key, res := channelFixture(t)
	if err := st.Put(ctx, key, res); err == nil {
		t.Error("Put into a read-only directory reported success")
	}
	if _, ok := st.Get(ctx, key); ok {
		t.Error("Get of a never-written key reported a hit")
	}
	if stats := st.Stats(); stats.PutErrors != 1 || stats.Puts != 0 {
		t.Errorf("stats = %+v, want 1 put error, 0 puts", stats)
	}
}

// TestErrResultsNotPersisted: incomplete runs must never become disk
// facts.
func TestErrResultsNotPersisted(t *testing.T) {
	ctx := context.Background()
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(ctx, "k", experiments.Result{Name: "x", Err: "context canceled"}); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 0 {
		t.Errorf("errored result persisted; Len() = %d", st.Len())
	}
}

// TestBytesAccounting: the bytes gauge survives restarts (rescan on
// Open), tracks overwrites, and shrinks on quarantine.
func TestBytesAccounting(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key, res := channelFixture(t)
	akey, ares := artifactFixture()
	st.Put(ctx, key, res)
	st.Put(ctx, akey, ares)
	want := st.Stats().Bytes
	if want <= 0 {
		t.Fatalf("bytes gauge %d after two puts", want)
	}
	// Same content re-put: gauge unchanged (old size subtracted).
	st.Put(ctx, key, res)
	if got := st.Stats().Bytes; got != want {
		t.Errorf("bytes after overwrite = %d, want %d", got, want)
	}
	// A fresh Open over the same directory sees the same bytes.
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := st2.Stats().Bytes; got != want {
		t.Errorf("bytes after reopen = %d, want %d", got, want)
	}
	if st2.Len() != 2 {
		t.Errorf("Len() after reopen = %d, want 2", st2.Len())
	}
}

// TestNilStoreIsNoop: the optional-store contract callers rely on.
func TestNilStoreIsNoop(t *testing.T) {
	ctx := context.Background()
	var st *Store
	if err := st.Put(ctx, "k", experiments.Result{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get(ctx, "k"); ok {
		t.Error("nil store hit")
	}
	if st.Len() != 0 || st.Dir() != "" || st.Stats() != (Stats{}) {
		t.Error("nil store not a clean zero")
	}
}

// TestSweepRunFuncLayering: a store-backed sweep runner simulates on a
// miss, writes through, and serves the second call from disk with
// identical numbers.
func TestSweepRunFuncLayering(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real (small) transmission")
	}
	ctx := context.Background()
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cs := testSpec(t)
	cs.P = 50 // keep the transmission fast
	cs = cs.Normalize()
	if err := cs.Validate(); err != nil {
		t.Fatal(err)
	}
	run := SweepRunFunc(st)
	first, err := run(ctx, cs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != 1 {
		t.Fatalf("store holds %d entries after one run, want 1", st.Len())
	}
	second, err := run(ctx, cs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Errorf("store-served result differs: %+v vs %+v", first, second)
	}
	stats := st.Stats()
	if stats.Hits != 1 || stats.Misses != 1 || stats.Puts != 1 {
		t.Errorf("stats = %+v, want 1 hit/1 miss/1 put", stats)
	}
}
