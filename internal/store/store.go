// Package store is the persistence layer beneath the serving daemon's
// in-memory result cache: a disk-backed, content-addressed store of
// experiment results, one file per cache key. Every result in this
// repository is a pure function of its canonical key (Opts.CacheKey
// for artifacts, ChannelSpec.CacheKey at chan-v2 for channel runs), so
// entries never expire and never need invalidation — a result written
// once is correct forever, and a daemon restarted over a warm store
// serves byte-identical responses without re-running a single
// simulation.
//
// Layout: the store directory holds one <sha256(key)>.json file per
// key, each a versioned envelope carrying the key it answers for and
// an integrity checksum over the result payload. Writes are atomic
// (temp file + rename), so a crash mid-put leaves either the old entry
// or a temp file the store ignores — never a half-written entry served
// as truth. Reads verify version, key, and checksum; anything corrupt,
// truncated, alien, or from a different format version is quarantined
// into the quarantine/ subdirectory and reported as a miss, never an
// error: the store degrades to the simulator, it does not take the
// daemon down.
//
// Byte-identity across the JSON boundary: a Result's Data field is an
// `any` holding a concrete type in a live process. Channel-run results
// (the sweep engine's currency) are rehydrated back into their concrete
// channel.Result so type assertions keep working after a restart; every
// other Data payload is rehydrated as json.RawMessage, which re-marshals
// to exactly the bytes the live struct produced — so HTTP responses
// served from disk are byte-identical to the pre-restart ones.
package store

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"repro/internal/channel"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/spec"
	"repro/internal/sweep"
)

// Version is the on-disk envelope format version. An entry written by
// a different version is quarantined and treated as a miss, so a
// format change can never serve stale bytes as current ones.
const Version = 1

// quarantineDir is the subdirectory unreadable entries are moved into,
// preserved for post-mortems instead of deleted.
const quarantineDir = "quarantine"

// Data rehydration kinds recorded in the envelope (see Get).
const (
	kindNone    = "none"    // Result.Data was nil
	kindChannel = "channel" // Result.Data was a channel.Result
	kindJSON    = "json"    // any other Data payload, rehydrated raw
)

// envelope is the on-disk entry format: version, the cache key this
// entry answers for (alien files — hash collisions, copied caches,
// stray writes — are detected by mismatch), the Data rehydration kind,
// a sha256 checksum over the result bytes, and the result itself as
// compact JSON.
type envelope struct {
	V      int             `json:"v"`
	Key    string          `json:"key"`
	Kind   string          `json:"kind"`
	Sum    string          `json:"sum"`
	Result json.RawMessage `json:"result"`
}

// storedResult mirrors experiments.Result with Data kept raw, so a
// reloaded result re-marshals (compact or indented) to exactly the
// bytes the original concrete struct produced.
type storedResult struct {
	Name     string          `json:"name"`
	Ref      string          `json:"ref"`
	Desc     string          `json:"desc"`
	Seed     uint64          `json:"seed"`
	Elapsed  time.Duration   `json:"elapsed_ns"`
	Rendered string          `json:"rendered"`
	Data     json.RawMessage `json:"data,omitempty"`
	Err      string          `json:"err,omitempty"`
}

// Stats is a point-in-time snapshot of the store's counters, rendered
// into /metrics by the serving layer.
type Stats struct {
	Hits        uint64 // Get calls answered from disk
	Misses      uint64 // Get calls with no (valid) entry
	Puts        uint64 // entries written
	PutErrors   uint64 // writes that failed (full/read-only disk); degraded, not fatal
	Quarantined uint64 // entries moved aside as corrupt/alien/mismatched
	Bytes       int64  // bytes currently held by valid-looking entries
}

// Store is a disk-backed content-addressed result store. All methods
// are safe for concurrent use; a nil *Store is a valid no-op store
// (every Get misses, every Put is dropped), so callers can thread an
// optional store without nil checks.
type Store struct {
	dir string

	hits, misses, puts, putErrors, quarantined atomic.Uint64
	bytes                                      atomic.Int64
}

// Open returns a Store rooted at dir, creating it if needed. The only
// error is failure to create the directory; a store whose directory
// later becomes unwritable keeps serving Gets and degrades Puts to
// counted no-ops.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %v", err)
	}
	s := &Store{dir: dir}
	s.bytes.Store(s.scanBytes())
	return s, nil
}

// Dir returns the store's root directory ("" on a nil store).
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

// Stats returns a snapshot of the store's counters. A nil store
// reports zeros.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	return Stats{
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		Puts:        s.puts.Load(),
		PutErrors:   s.putErrors.Load(),
		Quarantined: s.quarantined.Load(),
		Bytes:       s.bytes.Load(),
	}
}

// Len counts the entries currently on disk (quarantined and temp files
// excluded). It scans the directory, so it is a test/operator helper,
// not a hot-path call.
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	n := 0
	for range s.entryNames() {
		n++
	}
	return n
}

// path maps a cache key to its entry file: content addressing by
// sha256 of the key, so arbitrary key bytes (pipes, spaces, globs)
// never meet the filesystem.
func (s *Store) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(s.dir, hex.EncodeToString(sum[:])+".json")
}

// Get returns the stored result for key. Any defect in the entry —
// unreadable, truncated, bad version, checksum mismatch, alien key,
// undecodable payload — quarantines the file and reports a miss;
// corruption costs a re-simulation, never an error or a wrong byte.
func (s *Store) Get(ctx context.Context, key string) (experiments.Result, bool) {
	if s == nil {
		return experiments.Result{}, false
	}
	_, span := obs.Start(ctx, "store.get", obs.String("key", key))
	defer span.End()
	path := s.path(key)
	blob, err := os.ReadFile(path)
	if err != nil {
		s.misses.Add(1)
		span.SetAttr("store", "miss")
		return experiments.Result{}, false
	}
	res, err := decodeEntry(blob, key)
	if err != nil {
		s.quarantine(path, len(blob))
		s.misses.Add(1)
		span.SetAttr("store", "quarantined")
		span.SetAttr("err", err.Error())
		return experiments.Result{}, false
	}
	s.hits.Add(1)
	span.SetAttr("store", "hit")
	return res, true
}

// decodeEntry verifies one envelope against the key it must answer for
// and rehydrates the result.
func decodeEntry(blob []byte, key string) (experiments.Result, error) {
	var env envelope
	if err := json.Unmarshal(blob, &env); err != nil {
		return experiments.Result{}, fmt.Errorf("store: undecodable entry: %v", err)
	}
	if env.V != Version {
		return experiments.Result{}, fmt.Errorf("store: version %d entry (want %d)", env.V, Version)
	}
	if env.Key != key {
		return experiments.Result{}, fmt.Errorf("store: alien entry (holds key %q)", env.Key)
	}
	sum := sha256.Sum256(env.Result)
	if hex.EncodeToString(sum[:]) != env.Sum {
		return experiments.Result{}, fmt.Errorf("store: checksum mismatch")
	}
	var sr storedResult
	if err := json.Unmarshal(env.Result, &sr); err != nil {
		return experiments.Result{}, fmt.Errorf("store: undecodable result: %v", err)
	}
	res := experiments.Result{
		Name: sr.Name, Ref: sr.Ref, Desc: sr.Desc, Seed: sr.Seed,
		Elapsed: sr.Elapsed, Rendered: sr.Rendered, Err: sr.Err,
	}
	switch env.Kind {
	case kindNone:
		// Data stays nil.
	case kindChannel:
		var tres channel.Result
		if err := json.Unmarshal(sr.Data, &tres); err != nil {
			return experiments.Result{}, fmt.Errorf("store: undecodable channel result: %v", err)
		}
		res.Data = tres
	case kindJSON:
		if len(sr.Data) == 0 {
			return experiments.Result{}, fmt.Errorf("store: json entry with no data")
		}
		res.Data = sr.Data
	default:
		return experiments.Result{}, fmt.Errorf("store: unknown data kind %q", env.Kind)
	}
	return res, nil
}

// Put writes res under key atomically (temp file + rename in the same
// directory). A failed write — read-only or full disk, vanished
// directory — is counted and swallowed: persistence is an optimization
// over the simulator, never a correctness dependency. Results with Err
// set are not persisted; an incomplete run is not a fact worth keeping.
func (s *Store) Put(ctx context.Context, key string, res experiments.Result) error {
	if s == nil {
		return nil
	}
	_, span := obs.Start(ctx, "store.put", obs.String("key", key))
	defer span.End()
	if res.Err != "" {
		span.SetAttr("store", "skipped")
		return nil
	}
	blob, err := encodeEntry(key, res)
	if err != nil {
		s.putErrors.Add(1)
		span.SetAttr("err", err.Error())
		return err
	}
	if err := s.writeAtomic(s.path(key), blob); err != nil {
		s.putErrors.Add(1)
		span.SetAttr("err", err.Error())
		return err
	}
	s.puts.Add(1)
	span.SetAttr("store", "put")
	span.SetAttr("bytes", fmt.Sprintf("%d", len(blob)))
	return nil
}

// encodeEntry builds the on-disk envelope for (key, res).
func encodeEntry(key string, res experiments.Result) ([]byte, error) {
	kind := kindNone
	switch res.Data.(type) {
	case nil:
	case channel.Result:
		kind = kindChannel
	default:
		kind = kindJSON
	}
	raw, err := json.Marshal(res)
	if err != nil {
		return nil, fmt.Errorf("store: unencodable result: %v", err)
	}
	sum := sha256.Sum256(raw)
	return json.Marshal(envelope{
		V: Version, Key: key, Kind: kind,
		Sum: hex.EncodeToString(sum[:]), Result: raw,
	})
}

// writeAtomic lands blob at path via a same-directory temp file and
// rename, so readers only ever observe absent or complete entries.
func (s *Store) writeAtomic(path string, blob []byte) error {
	tmp, err := os.CreateTemp(s.dir, ".put-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	var prev int64
	if fi, err := os.Stat(path); err == nil {
		prev = fi.Size()
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	s.bytes.Add(int64(len(blob)) - prev)
	return nil
}

// quarantine moves a defective entry into the quarantine subdirectory
// (best effort — a read-only directory falls back to leaving the file,
// which keeps failing closed as a miss).
func (s *Store) quarantine(path string, size int) {
	s.quarantined.Add(1)
	qdir := filepath.Join(s.dir, quarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return
	}
	if err := os.Rename(path, filepath.Join(qdir, filepath.Base(path))); err != nil {
		return
	}
	s.bytes.Add(int64(-size))
}

// entryNames lists the store's entry files (excluding temp files and
// the quarantine subdirectory).
func (s *Store) entryNames() []string {
	des, err := os.ReadDir(s.dir)
	if err != nil {
		return nil
	}
	var out []string
	for _, de := range des {
		name := de.Name()
		if de.IsDir() || name[0] == '.' || filepath.Ext(name) != ".json" {
			continue
		}
		out = append(out, name)
	}
	return out
}

// scanBytes sums the sizes of the entries present at Open, seeding the
// leakyfed_store_bytes gauge with what a previous process left behind.
func (s *Store) scanBytes() int64 {
	var total int64
	for _, name := range s.entryNames() {
		if fi, err := os.Stat(filepath.Join(s.dir, name)); err == nil {
			total += fi.Size()
		}
	}
	return total
}

// ChannelKey is the store/cache identity of one channel transmission:
// the spec's versioned canonical key plus the message length. It is
// THE key contract between the daemon's LRU, this store, the sweep
// CLI, and the fleet's consistent hashing — every layer addresses a
// transmission by this exact string.
func ChannelKey(cs spec.ChannelSpec, bits int) string {
	return fmt.Sprintf("%s|bits=%d", cs.CacheKey(), bits)
}

// ChannelResult wraps one transmission as the experiments.Result every
// serving and storage layer exchanges. The daemon's channel endpoint
// and the CLI's store-backed sweeps both build results through this
// one constructor, so bytes written by one are served verbatim by the
// other.
func ChannelResult(cs spec.ChannelSpec, tres channel.Result) experiments.Result {
	return experiments.Result{
		Name:     "channel",
		Ref:      "ChannelSpec",
		Desc:     cs.String(),
		Seed:     cs.Seed,
		Rendered: tres.String() + "\n",
		Data:     tres,
		// Elapsed stays zero: results are pure functions of (spec, bits).
	}
}

// SweepRunFunc returns a sweep runner layered over st: each spec is
// served from the store when present, and simulated through the
// memoized default runner (then written back) otherwise. It is how
// cmd/leakysweep -store warms — and is warmed by — the same on-disk
// store the daemon uses.
func SweepRunFunc(st *Store) sweep.RunFunc {
	return func(ctx context.Context, cs spec.ChannelSpec, bits int) (channel.Result, error) {
		key := ChannelKey(cs, bits)
		if res, ok := st.Get(ctx, key); ok {
			if tres, ok := res.Data.(channel.Result); ok {
				return tres, nil
			}
			// A non-channel payload under a channel key is an alien write;
			// fall through to simulate (and overwrite it with the truth).
		}
		tres, err := sweep.Memoized(ctx, cs, bits)
		if err != nil {
			return tres, err
		}
		st.Put(ctx, key, ChannelResult(cs, tres))
		return tres, nil
	}
}
