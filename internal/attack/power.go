package attack

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/power"
	"repro/internal/rng"
	"repro/internal/runctx"
)

// PowerConfig parameterizes the power-based non-MT channels of
// Section VII: identical block layout to the timing channels, but the
// receiver reads Intel RAPL instead of rdtscp. Because RAPL updates only
// every ~50us, each bit needs orders of magnitude more iterations
// (p = q = 240,000 in the paper), which caps the channel below 1 Kbps
// (Table V).
type PowerConfig struct {
	Model cpu.Model
	Kind  Kind
	D, M  int
	// Iters is the per-bit iteration count. The paper uses 240,000; the
	// benchmarks default to half that to keep runtimes reasonable — the
	// rate scales accordingly and EXPERIMENTS.md records the setting.
	Iters int
	Set   int
	Seed  uint64
}

// DefaultPower returns the power-channel configuration (d=6, Table V).
func DefaultPower(model cpu.Model, kind Kind) PowerConfig {
	cfg := PowerConfig{Model: model, Kind: kind, D: DefaultD, M: DefaultM, Iters: DefaultPowerIters, Set: evictionSet, Seed: 1}
	if kind == Misalignment {
		cfg.D = DefaultMisalignD
	}
	return cfg
}

// Power is a power-based covert channel: bits modulate which frontend
// path delivers micro-ops, and the receiver observes the package power
// difference through the quantized, interval-updated RAPL counter.
type Power struct {
	cfg  PowerConfig
	core *cpu.Core
	r    *rng.RNG
	rc   runctx.Ctx

	one  []*isa.Block
	zero []*isa.Block

	oneFlat, zeroFlat []isa.Inst
}

// NewPower builds the channel using the non-MT stealthy block layout
// (the paper's power attack is "similar to the non-MT attack
// demonstrated in Section V-C").
func NewPower(cfg PowerConfig) *Power {
	p := &Power{cfg: cfg, core: cpu.NewCore(cfg.Model, cfg.Seed)}
	p.r = rng.New(cfg.Seed).Fork(7)
	switch cfg.Kind {
	case Eviction:
		extra := DSBWays + 1 - cfg.D
		p.one = chain(receiverBlocks(cfg.Set, cfg.D), senderBlocks(cfg.Set, cfg.D, extra, true))
		p.zero = chain(receiverBlocks(cfg.Set, cfg.D), senderBlocks(altSet, cfg.D, extra, true))
	case Misalignment:
		extra := cfg.M - cfg.D
		p.one = chain(receiverBlocks(cfg.Set, cfg.D), senderBlocks(cfg.Set, cfg.D, extra, false))
		p.zero = chain(receiverBlocks(cfg.Set, cfg.D), senderBlocks(cfg.Set, cfg.D, extra, true))
	}
	p.oneFlat = isa.Flatten(p.one)
	p.zeroFlat = isa.Flatten(p.zero)
	return p
}

// BindCtx implements channel.CtxAware. A power bit is the stack's most
// expensive SendBit (>100k loop iterations), so skipping a cancelled
// bit up front matters most here.
func (p *Power) BindCtx(rc runctx.Ctx) { p.rc = rc }

// Name implements channel.BitChannel.
func (p *Power) Name() string {
	return fmt.Sprintf("Non-MT Power %s", p.cfg.Kind)
}

// FreqGHz implements channel.BitChannel.
func (p *Power) FreqGHz() float64 { return p.cfg.Model.FreqGHz }

// Cycles implements channel.BitChannel.
func (p *Power) Cycles() uint64 { return p.core.Cycle() }

// Core exposes the underlying core (experiments, tests).
func (p *Power) Core() *cpu.Core { return p.core }

// SendBit implements channel.BitChannel: it runs the per-bit loop and
// returns the average package watts observed through RAPL over the bit
// window, plus the model's power measurement noise.
func (p *Power) SendBit(m byte) float64 {
	if p.rc.Err() != nil {
		return 0 // cancelled: the caller discards this bit
	}
	flat := p.oneFlat
	if m == '0' {
		flat = p.zeroFlat
	}
	e0 := p.core.PM.RAPLRead()
	c0 := p.core.Cycle()
	p.core.Enqueue(0, isa.NewFlatLoopStream(flat, p.cfg.Iters), nil)
	p.core.RunUntilIdle(2_000_000_000)
	e1 := p.core.PM.RAPLRead()
	watts := power.AvgWatts(e1-e0, p.core.Cycle()-c0)
	return watts + p.r.NormScaled(0, p.cfg.Model.PowerNoiseWatts)
}
