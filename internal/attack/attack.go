// Package attack implements the paper's covert-channel attacks on the
// simulated frontend: the eviction-based and misalignment-based channels
// in both multi-threaded (Sections V-A, V-B) and single-threaded
// (Sections V-C, V-D) settings, the LCP slow-switch channel (Section
// V-E), and the power-based variants (Section VII).
//
// Every channel follows the paper's three-step protocol — Init sets the
// frontend path state, Encode perturbs it according to the secret bit,
// Decode measures — and satisfies channel.BitChannel so the shared
// transmission machinery computes rates and error rates exactly as the
// evaluation section does.
package attack

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/isa"
)

// Kind selects the frontend mechanism a channel modulates.
type Kind int

const (
	// Eviction channels force DSB set collisions (Section IV-F).
	Eviction Kind = iota
	// Misalignment channels force LSD collisions through half-window
	// offset instruction blocks (Section IV-G).
	Misalignment
)

// String names the kind as the paper's tables do.
func (k Kind) String() string {
	if k == Eviction {
		return "Eviction-Based"
	}
	return "Misalignment-Based"
}

// Paper-default protocol parameters (Sections V, VI-A, VI-C).
const (
	// DefaultD is the receiver way count d=6 for eviction channels.
	DefaultD = 6
	// DefaultMisalignD is d=5 for misalignment channels.
	DefaultMisalignD = 5
	// DefaultM is the total ways M=8 for misalignment channels.
	DefaultM = 8
	// DefaultP is p=q=10 iterations per bit for non-MT channels.
	DefaultP = 10
	// DefaultMeasurements is the timed decode passes the MT receiver
	// averages per bit (the paper's p/q = 10).
	DefaultMeasurements = 10
	// DefaultPowerIters is the per-bit iteration count of the power
	// channels' benchmark setting (half the paper's 240,000; see
	// PowerConfig.Iters).
	DefaultPowerIters = 120_000
	// DSBWays is N, the DSB associativity.
	DSBWays = 8

	// evictionSet is a DSB set in the upper half of the index space:
	// a thread-0 receiver loses it on SMT repartitioning, which is what
	// the MT eviction channel needs (Section V-A).
	evictionSet = 20
	// misalignSet is in the lower half: the receiver keeps its lines
	// across repartitioning and only the LSD state changes, which is
	// what the MT misalignment channel needs (Section V-B).
	misalignSet = 5
	// altSet hosts the stealthy variant's bit-0 blocks (set y of
	// Section V-C).
	altSet = 13
	// pauseSetBase places protocol synchronization pads away from the
	// attack sets.
	pauseSetBase = 28
)

// receiverBlocks builds the receiver's d aligned mix blocks for a set.
func receiverBlocks(set, d int) []*isa.Block {
	blocks := make([]*isa.Block, d)
	for w := 0; w < d; w++ {
		blocks[w] = isa.MixBlock(isa.AddrForSet(set, w))
	}
	return blocks
}

// senderBlocks builds the sender's blocks for ways d..d+count-1.
func senderBlocks(set, d, count int, aligned bool) []*isa.Block {
	blocks := make([]*isa.Block, count)
	for i := 0; i < count; i++ {
		if aligned {
			blocks[i] = isa.MixBlock(isa.AddrForSet(set, d+i))
		} else {
			blocks[i] = isa.MixBlock(isa.MisalignedAddrForSet(set, d+i))
		}
	}
	return blocks
}

// chain links a sequence of block groups into one closed loop: the last
// block of each group jumps to the first block of the next, and the final
// group jumps back to the very first block. The result is the grand
// per-iteration loop of the non-MT channels (init -> encode -> decode
// compressed into init/decode + encode, Section V-C).
func chain(groups ...[]*isa.Block) []*isa.Block {
	n := 0
	for _, g := range groups {
		n += len(g)
	}
	all := make([]*isa.Block, 0, n)
	for _, g := range groups {
		all = append(all, g...)
	}
	if len(all) == 0 {
		return nil
	}
	isa.ChainLoop(all)
	return all
}

func checkHT(m cpu.Model) {
	if !m.HyperThreading {
		panic(fmt.Sprintf("attack: %s has hyper-threading disabled; MT attacks are impossible (Table III)", m.Name))
	}
}
