package attack

import (
	"testing"

	"repro/internal/channel"
	"repro/internal/cpu"
	"repro/internal/rng"
)

// TestCalibrationReport prints the full channel matrix when run with -v;
// it is the tuning surface for matching Table III. It always checks the
// coarse shape assertions.
func TestCalibrationReport(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration report skipped in -short")
	}
	msg := channel.Alternating(200)
	for _, m := range cpu.Models() {
		for _, kind := range []Kind{Eviction, Misalignment} {
			for _, stealthy := range []bool{true, false} {
				ch := NewNonMT(DefaultNonMT(m, kind, stealthy))
				res := channel.Transmit(ch, m.Name, msg, 40)
				t.Logf("%s", res)
			}
			if m.HyperThreading {
				ch := NewMT(DefaultMT(m, kind))
				res := channel.Transmit(ch, m.Name, msg, 40)
				t.Logf("%s  (q=%d)", res, ch.Q())
			}
		}
	}
	for _, m := range []cpu.Model{cpu.Gold6226(), cpu.XeonE2288G()} {
		ch := NewSlowSwitch(DefaultSlowSwitch(m))
		res := channel.Transmit(ch, m.Name, msg, 40)
		t.Logf("%s", res)
	}
}

// testBits trims message lengths under -short; the decode assertions
// hold at both scales.
func testBits(full, short int) int {
	if testing.Short() {
		return short
	}
	return full
}

func TestNonMTFastChannelsDecode(t *testing.T) {
	// Fast variants must achieve near-zero error on every machine.
	bits := testBits(100, 50)
	maxErr := 0.12
	if testing.Short() {
		maxErr = 0.18 // fewer bits quantize the error rate more coarsely
	}
	for _, m := range cpu.Models() {
		for _, kind := range []Kind{Eviction, Misalignment} {
			ch := NewNonMT(DefaultNonMT(m, kind, false))
			res := channel.Transmit(ch, m.Name, channel.Alternating(bits), 30)
			if res.ErrorRate > maxErr {
				t.Errorf("%s on %s: error %.1f%% too high", ch.Name(), m.Name, 100*res.ErrorRate)
			}
			if res.RateKbps < 50 {
				t.Errorf("%s on %s: rate %.1f Kbps too low", ch.Name(), m.Name, res.RateKbps)
			}
		}
	}
}

func TestNonMTFasterThanMT(t *testing.T) {
	// Table III: non-MT channels beat MT channels on rate.
	m := cpu.XeonE2174G()
	bits := testBits(100, 50)
	non := channel.Transmit(NewNonMT(DefaultNonMT(m, Eviction, false)), m.Name, channel.Alternating(bits), 30)
	mt := channel.Transmit(NewMT(DefaultMT(m, Eviction)), m.Name, channel.Alternating(bits), 30)
	if non.RateKbps <= mt.RateKbps {
		t.Errorf("non-MT (%.0f Kbps) should beat MT (%.0f Kbps)", non.RateKbps, mt.RateKbps)
	}
}

func TestMTChannelsDecode(t *testing.T) {
	for _, m := range []cpu.Model{cpu.Gold6226(), cpu.XeonE2174G()} {
		for _, kind := range []Kind{Eviction, Misalignment} {
			ch := NewMT(DefaultMT(m, kind))
			res := channel.Transmit(ch, m.Name, channel.Alternating(testBits(60, 36)), 30)
			if res.ErrorRate > 0.30 {
				t.Errorf("MT %v on %s: error %.1f%% too high", kind, m.Name, 100*res.ErrorRate)
			}
		}
	}
}

func TestSlowSwitchDecodes(t *testing.T) {
	ch := NewSlowSwitch(DefaultSlowSwitch(cpu.XeonE2288G()))
	res := channel.Transmit(ch, "E-2288G", channel.Alternating(testBits(100, 50)), 30)
	if res.ErrorRate > 0.10 {
		t.Errorf("slow-switch error %.1f%% too high", 100*res.ErrorRate)
	}
}

func TestPowerChannelDecodes(t *testing.T) {
	if testing.Short() {
		t.Skip("power channel is slow")
	}
	cfg := DefaultPower(cpu.Gold6226(), Eviction)
	cfg.Iters = 4000 // scaled down for unit testing; benches use more
	ch := NewPower(cfg)
	res := channel.Transmit(ch, "Gold 6226", channel.Alternating(16), 8)
	if res.ErrorRate > 0.45 {
		t.Errorf("power channel error %.1f%%: no signal at all", 100*res.ErrorRate)
	}
	if res.RateKbps > 50 {
		t.Errorf("power channel rate %.1f Kbps is implausibly high (RAPL-limited)", res.RateKbps)
	}
}

func TestMTPanicsWithoutHT(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MT attack on HT-disabled model must panic")
		}
	}()
	NewMT(DefaultMT(cpu.XeonE2288G(), Eviction))
}

func TestMessagePatternHelpers(t *testing.T) {
	if channel.AllZeros(4) != "0000" || channel.AllOnes(3) != "111" {
		t.Error("constant messages wrong")
	}
	if channel.Alternating(5) != "01010" {
		t.Error("alternating message wrong")
	}
	r := channel.Random(64, rng.New(1))
	if len(r) != 64 {
		t.Error("random message length wrong")
	}
}
