package attack

import (
	"repro/internal/channel"
	"repro/internal/runctx"
)

// This file implements channel.Cloneable for every attack channel: a
// deep copy of the full simulator state, so a calibrated channel can be
// snapshotted once and replayed byte-for-byte per transmission. Block
// layouts and their flattened instruction sequences are immutable after
// construction and are shared between clone and original; the bound run
// context is dropped (the next transmission re-binds its own).

// CloneChannel implements channel.Cloneable.
func (a *NonMT) CloneChannel() channel.BitChannel {
	c := *a
	c.core = a.core.Clone()
	c.rc = runctx.Ctx{}
	return &c
}

// CloneChannel implements channel.Cloneable.
func (s *SlowSwitch) CloneChannel() channel.BitChannel {
	c := *s
	c.core = s.core.Clone()
	c.rc = runctx.Ctx{}
	return &c
}

// CloneChannel implements channel.Cloneable. The clone's measurement
// buffer and callback are its own — the bit-history fields carry over by
// value, preserving the transition-noise state machine exactly.
func (a *MT) CloneChannel() channel.BitChannel {
	c := *a
	c.core = a.core.Clone()
	c.rc = runctx.Ctx{}
	c.measBuf = make([]float64, 0, cap(a.measBuf))
	c.measCb = func(v float64) { c.measBuf = append(c.measBuf, v) }
	return &c
}

// CloneChannel implements channel.Cloneable.
func (p *Power) CloneChannel() channel.BitChannel {
	c := *p
	c.core = p.core.Clone()
	c.r = p.r.Clone()
	c.rc = runctx.Ctx{}
	return &c
}
