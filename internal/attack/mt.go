package attack

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/runctx"
	"repro/internal/stats"
)

// MTConfig parameterizes the cross-thread channels of Sections V-A and
// V-B: sender and receiver on the two hardware threads of one core.
type MTConfig struct {
	Model cpu.Model
	Kind  Kind
	// D is the receiver way count; M the misalignment total.
	D, M int
	// QBase scales the per-bit encode repetitions. The effective count
	// is QBase/(1.4+d): a receiver probing more ways gets proportionally
	// more signal per pass, so fewer sender repetitions are needed —
	// which is why the paper's Figure 8 transmission rate *rises* with d.
	QBase int
	// Measurements is how many timed decode passes the receiver averages
	// per bit (the paper's p/q = 10).
	Measurements int
	// ContendedSender makes the eviction sender spin on a delivery-hungry
	// nop pad instead of pausing between steps. Small-d receivers (the
	// Table II d=1 configuration) need the resulting bandwidth contention
	// to carry the bit, since a single way's eviction signal is tiny.
	ContendedSender bool
	Seed            uint64
}

// DefaultMT returns the paper's MT configuration for a variant (d=6
// eviction / d=5, M=8 misalignment; Section VI-C).
func DefaultMT(model cpu.Model, kind Kind) MTConfig {
	cfg := MTConfig{
		Model:        model,
		Kind:         kind,
		D:            DefaultD,
		M:            DefaultM,
		QBase:        800,
		Measurements: DefaultMeasurements,
		Seed:         1,
	}
	if kind == Misalignment {
		cfg.D = DefaultMisalignD
	}
	return cfg
}

// MT is a cross-hyper-thread covert channel. The receiver continuously
// times passes over its d blocks on thread 0; for bit 1 the sender
// executes its blocks on thread 1, which partitions the DSB (evicting
// the receiver's windows for the eviction variant) and/or poisons the
// shared LSD alignment tracker (for the misalignment variant); for bit 0
// the sender stays idle (Sections V-A, V-B).
type MT struct {
	cfg  MTConfig
	core *cpu.Core
	rc   runctx.Ctx

	recv   []*isa.Block
	sender []*isa.Block
	q      int

	recvFlat, senderFlat []isa.Inst

	// measBuf collects the receiver's per-bit timing passes; measCb is
	// the completion callback appending to it. Both are built once so
	// SendBit's measurement loop allocates neither slice nor closure.
	measBuf []float64
	measCb  func(v float64)

	// Bit-history state: the paper observes that constant messages keep
	// the sender on one frontend path and transmit with less noise,
	// while random messages suffer from "frequent and unstable frontend
	// path changes" (Section VI-D). Transitions — and especially
	// irregular transition patterns — scale the desync noise and force
	// protocol resynchronization slots.
	hasPrev   bool
	hasPrev2  bool
	prevBit   byte
	prevTrans bool
}

// NewMT builds the channel. It panics for models without hyper-threading
// (the paper's E-2288G rows are empty for this reason).
func NewMT(cfg MTConfig) *MT {
	checkHT(cfg.Model)
	a := &MT{cfg: cfg, core: cpu.NewCore(cfg.Model, cfg.Seed)}

	// Set choice is the crux (Section IV-B): the eviction channel targets
	// a set the receiver *loses* when the DSB partitions; the
	// misalignment channel targets one it keeps, so only the LSD path
	// changes.
	set := evictionSet
	aligned := true
	count := DSBWays + 1 - cfg.D
	if cfg.Kind == Misalignment {
		set = misalignSet
		aligned = false
		count = cfg.M - cfg.D
	}
	a.recv = chain(receiverBlocks(set, cfg.D))

	// The sender's encode step: its blocks plus a per-step pad. The
	// eviction sender paces its evictions with a pause handshake (the
	// receiver must observe each eviction between passes); the
	// misalignment sender instead spins on a nop pad, staying
	// delivery-hungry so the shared alignment tracker stays poisoned and
	// the receiver stays contended for the whole slot.
	sb := senderBlocks(set, cfg.D, count, aligned)
	var pad *isa.Block
	effD := cfg.D
	if cfg.Kind == Eviction {
		if cfg.ContendedSender {
			pad = isa.NopBlockLen(isa.AddrForSet(pauseSetBase, 16+cfg.D), 280, 2)
		} else {
			pad = isa.PauseBlock(isa.AddrForSet(pauseSetBase, 16+cfg.D), 1)
		}
	} else {
		pad = isa.NopBlockLen(isa.AddrForSet(pauseSetBase, 16+cfg.D), 280, 2)
		// Misaligned blocks double-cover windows, so each receiver pass
		// carries more signal and fewer encode steps are needed.
		effD = cfg.D + 2
	}
	a.sender = chain(sb, []*isa.Block{pad})

	a.q = cfg.QBase * 10 / (14 + 10*effD)
	if a.q < 2 {
		a.q = 2
	}
	a.recvFlat = isa.Flatten(a.recv)
	a.senderFlat = isa.Flatten(a.sender)
	a.measBuf = make([]float64, 0, cfg.Measurements)
	a.measCb = func(v float64) { a.measBuf = append(a.measBuf, v) }
	return a
}

// BindCtx implements channel.CtxAware: SendBit aborts between its
// receiver measurement passes once rc is cancelled. The aborted bit's
// measurement is discarded by the caller, so the early return never
// reaches a result.
func (a *MT) BindCtx(rc runctx.Ctx) { a.rc = rc }

// Name implements channel.BitChannel.
func (a *MT) Name() string { return fmt.Sprintf("MT %s", a.cfg.Kind) }

// FreqGHz implements channel.BitChannel.
func (a *MT) FreqGHz() float64 { return a.cfg.Model.FreqGHz }

// Cycles implements channel.BitChannel.
func (a *MT) Cycles() uint64 { return a.core.Cycle() }

// Core exposes the underlying core (experiments, tests).
func (a *MT) Core() *cpu.Core { return a.core }

// Q returns the per-bit encode repetition count in effect.
func (a *MT) Q() int { return a.q }

// ReceiverBlocks returns the receiver's decode loop.
func (a *MT) ReceiverBlocks() []*isa.Block { return a.recv }

// SenderBlocks returns the sender's encode loop.
func (a *MT) SenderBlocks() []*isa.Block { return a.sender }

// SGXSenderChain builds the MT sender loop for an enclave sender: the
// same encode blocks but with a small nop pad instead of the protocol
// pause (an enclave sender free-runs; the pad models the memory
// encryption engine's code-fetch overhead).
func SGXSenderChain(cfg MTConfig, padNops int) []*isa.Block {
	set := evictionSet
	aligned := true
	count := DSBWays + 1 - cfg.D
	if cfg.Kind == Misalignment {
		set = misalignSet
		aligned = false
		count = cfg.M - cfg.D
	}
	sb := senderBlocks(set, cfg.D, count, aligned)
	pad := isa.NopBlockLen(isa.AddrForSet(pauseSetBase, 24+cfg.D), padNops, 2)
	return chain(sb, []*isa.Block{pad})
}

// SendBit implements channel.BitChannel: the sender encodes (or idles)
// on thread 1 while the receiver takes its timed decode passes on
// thread 0; the bit measurement is the mean of the receiver's passes.
func (a *MT) SendBit(m byte) float64 {
	transition := a.hasPrev && m != a.prevBit
	irregular := a.hasPrev2 && transition != a.prevTrans
	a.hasPrev2 = a.hasPrev
	a.hasPrev = true
	a.prevBit = m
	a.prevTrans = transition

	slotStart := a.core.Cycle()
	if m == '1' {
		a.core.Enqueue(1, isa.NewFlatLoopStream(a.senderFlat, a.q), nil)
	}
	iters := a.q / a.cfg.Measurements
	if iters < 2 {
		iters = 2
	}
	a.measBuf = a.measBuf[:0]
	for i := 0; i < a.cfg.Measurements; i++ {
		if a.rc.Err() != nil {
			return 0 // cancelled: the caller discards this bit
		}
		a.core.MeasureEnqueue(0, isa.NewFlatLoopStream(a.recvFlat, iters), a.measCb)
	}
	a.core.RunUntilIdle(500_000_000)
	// The protocol advances on fixed slot boundaries: a bit's slot is q
	// encode steps long whether or not the sender transmitted, so the
	// receiver pads out the remainder before the next bit.
	slot := uint64(float64(a.q) * a.cfg.Model.MTStepCycles)
	if used := a.core.Cycle() - slotStart; used < slot {
		a.core.RunCycles(slot - used)
	}
	// Normalize per receiver pass so the threshold is iteration-count
	// independent, and add the cross-thread desynchronization noise. The
	// eviction channel's signal rides on partition-toggle timing, so it
	// sees the full desync noise; the misalignment receiver keeps its DSB
	// lines across toggles and is less sensitive (Table III's error gap
	// between the two MT channels).
	noise := a.cfg.Model.MTNoisePerPass
	if a.cfg.Kind == Misalignment {
		noise *= 0.55
	}
	// Path-change noise scaling (Section VI-D) and resynchronization
	// cost for irregular transition patterns (random messages).
	switch {
	case !transition:
		noise *= 0.25
	case irregular:
		noise *= 1.7
		a.core.RunCycles(uint64(1.2 * float64(a.q) * a.cfg.Model.MTStepCycles))
	default:
		// Regular transitions (the alternating calibration pattern)
		// resynchronize cheaply.
		noise *= 0.6
	}
	return stats.Mean(a.measBuf)/float64(iters) + a.core.R.NormScaled(0, noise)
}
