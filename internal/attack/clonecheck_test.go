package attack

import (
	"testing"

	"repro/internal/channel"
	"repro/internal/clonecheck"
	"repro/internal/cpu"
	"repro/internal/isa"
)

// TestCloneChannelSharesNoMutableState verifies, by reflection over the
// full object graphs, that every CloneChannel implementation copies all
// mutable state. Block layouts and flattened instruction slices are
// immutable after construction and deliberately shared; everything else
// aliased between original and clone would corrupt calibration replay.
func TestCloneChannelSharesNoMutableState(t *testing.T) {
	model := cpu.Gold6226()
	allow := clonecheck.AllowType(isa.Inst{}, isa.Block{})

	channels := []struct {
		name string
		ch   channel.BitChannel
	}{
		{"NonMT eviction", NewNonMT(DefaultNonMT(model, Eviction, false))},
		{"NonMT misalignment stealthy", NewNonMT(DefaultNonMT(model, Misalignment, true))},
		{"SlowSwitch", NewSlowSwitch(DefaultSlowSwitch(model))},
		{"MT eviction", NewMT(DefaultMT(model, Eviction))},
		{"Power eviction", NewPower(DefaultPower(model, Eviction))},
	}
	for _, tc := range channels {
		t.Run(tc.name, func(t *testing.T) {
			// Exercise the channel so lazily-grown state exists before the
			// snapshot, exactly as the calibration preamble does.
			tc.ch.SendBit('1')
			tc.ch.SendBit('0')
			clone := tc.ch.(channel.Cloneable).CloneChannel()
			if shared := clonecheck.Shared(tc.ch, clone, allow); len(shared) != 0 {
				t.Fatalf("CloneChannel shares mutable state:\n%v", shared)
			}
		})
	}
}
