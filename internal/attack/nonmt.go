package attack

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/runctx"
)

// NonMTConfig parameterizes the single-threaded internal-interference
// channels of Sections V-C and V-D.
type NonMTConfig struct {
	Model cpu.Model
	Kind  Kind
	// Stealthy selects the bit-0 encoding that still executes blocks
	// (mapping elsewhere / aligned) instead of doing nothing; it trades
	// bandwidth for stealth (Section V-C).
	Stealthy bool
	// D is the receiver's way count d; M the total ways for the
	// misalignment variant.
	D, M int
	// P is the per-bit iteration count (p = q = 10 in the paper).
	P int
	// Set is the target DSB set x.
	Set  int
	Seed uint64
}

// DefaultNonMT returns the paper's configuration for the given variant
// (d=6 for eviction; d=5, M=8 for misalignment; p=q=10; Section VI).
func DefaultNonMT(model cpu.Model, kind Kind, stealthy bool) NonMTConfig {
	cfg := NonMTConfig{
		Model:    model,
		Kind:     kind,
		Stealthy: stealthy,
		D:        DefaultD,
		M:        DefaultM,
		P:        DefaultP,
		Set:      evictionSet,
		Seed:     1,
	}
	if kind == Misalignment {
		cfg.D = DefaultMisalignD
	}
	return cfg
}

// NonMT is a single-threaded covert channel: sender and receiver share
// one hardware thread and the receiver times the sender's whole
// init/encode/decode sequence (Section V-C, Figure 7).
type NonMT struct {
	cfg  NonMTConfig
	core *cpu.Core
	rc   runctx.Ctx

	one  []*isa.Block // per-iteration loop when sending 1
	zero []*isa.Block // per-iteration loop when sending 0 (nil = fast variant, receiver-only)
	base []*isa.Block // receiver-only loop

	// Pre-flattened instruction sequences of the loops above; SendBit
	// wraps these instead of re-flattening the blocks every bit.
	oneFlat, zeroFlat, baseFlat []isa.Inst
}

// NewNonMT builds the channel and its block layout.
func NewNonMT(cfg NonMTConfig) *NonMT {
	if cfg.D <= 0 || cfg.D > DSBWays {
		panic(fmt.Sprintf("attack: d=%d out of range", cfg.D))
	}
	a := &NonMT{cfg: cfg, core: cpu.NewCore(cfg.Model, cfg.Seed)}
	recv := receiverBlocks(cfg.Set, cfg.D)

	switch cfg.Kind {
	case Eviction:
		// Encode-1: N+1-d extra blocks in the same set force the
		// eviction (Section IV-F).
		extra := DSBWays + 1 - cfg.D
		a.one = chain(receiverBlocks(cfg.Set, cfg.D), senderBlocks(cfg.Set, cfg.D, extra, true))
		if cfg.Stealthy {
			// Encode-0: same work, different set y (Section V-C).
			a.zero = chain(receiverBlocks(cfg.Set, cfg.D), senderBlocks(altSet, cfg.D, extra, true))
		}
	case Misalignment:
		// Encode-1: M-d misaligned blocks collide in the LSD without
		// exceeding the DSB ways (Section IV-G, V-D).
		extra := cfg.M - cfg.D
		a.one = chain(receiverBlocks(cfg.Set, cfg.D), senderBlocks(cfg.Set, cfg.D, extra, false))
		if cfg.Stealthy {
			// Encode-0: the same blocks, aligned.
			a.zero = chain(receiverBlocks(cfg.Set, cfg.D), senderBlocks(cfg.Set, cfg.D, extra, true))
		}
	}
	a.base = chain(recv)
	a.oneFlat = isa.Flatten(a.one)
	a.baseFlat = isa.Flatten(a.base)
	if a.zero != nil {
		a.zeroFlat = isa.Flatten(a.zero)
	}
	return a
}

// BindCtx implements channel.CtxAware.
func (a *NonMT) BindCtx(rc runctx.Ctx) { a.rc = rc }

// Name implements channel.BitChannel.
func (a *NonMT) Name() string {
	mode := "Fast"
	if a.cfg.Stealthy {
		mode = "Stealthy"
	}
	return fmt.Sprintf("Non-MT %s %s", mode, a.cfg.Kind)
}

// FreqGHz implements channel.BitChannel.
func (a *NonMT) FreqGHz() float64 { return a.cfg.Model.FreqGHz }

// Cycles implements channel.BitChannel.
func (a *NonMT) Cycles() uint64 { return a.core.Cycle() }

// Core exposes the underlying core (experiments, tests).
func (a *NonMT) Core() *cpu.Core { return a.core }

// BlocksOne returns the per-iteration loop used to encode a 1 bit.
func (a *NonMT) BlocksOne() []*isa.Block { return a.one }

// BlocksZero returns the stealthy 0-bit loop, or nil for the fast
// variant.
func (a *NonMT) BlocksZero() []*isa.Block { return a.zero }

// BlocksBase returns the receiver-only loop (fast variant's 0 bit).
func (a *NonMT) BlocksBase() []*isa.Block { return a.base }

// SendBit runs p iterations of the init/encode/decode loop for one bit
// and returns the receiver's timing measurement of the whole sequence.
func (a *NonMT) SendBit(m byte) float64 {
	flat := a.oneFlat
	encodeRan := true
	if m == '0' {
		flat = a.zeroFlat
		if flat == nil {
			flat = a.baseFlat // fast variant: encode-0 does nothing
			encodeRan = false
		}
	}
	if a.rc.Err() != nil {
		return 0 // cancelled: the caller discards this bit
	}
	if encodeRan {
		// The encode step's handshake occupies wall time; the fast
		// variant skips it on zero bits, which is its rate edge.
		a.core.RunCycles(uint64(a.cfg.Model.StepOverheadCycles))
	}
	return a.core.RunTimed(0, isa.NewFlatLoopStream(flat, a.cfg.P))
}

// SlowSwitchConfig parameterizes the LCP slow-switch channel of
// Section V-E.
type SlowSwitchConfig struct {
	Model cpu.Model
	// R is the LCP instruction count r (16 in the paper).
	R int
	// P is the per-bit loop count.
	P    int
	Seed uint64
}

// DefaultSlowSwitch returns the paper's r=16, p=q=10 configuration.
func DefaultSlowSwitch(model cpu.Model) SlowSwitchConfig {
	return SlowSwitchConfig{Model: model, R: 16, P: DefaultP, Seed: 1}
}

// SlowSwitch is the LCP-based covert channel: bit 1 executes the
// alternating normal/LCP add pattern ("mixed issue"), bit 0 the grouped
// pattern ("ordered issue"); their LCP-stall and switch-penalty profiles
// differ measurably (Section V-E, Figure 4).
type SlowSwitch struct {
	cfg     SlowSwitchConfig
	core    *cpu.Core
	rc      runctx.Ctx
	mixed   []*isa.Block
	ordered []*isa.Block

	mixedFlat, orderedFlat []isa.Inst
}

// NewSlowSwitch builds the channel. The two encodings live at different
// addresses, as two code paths of one sender binary would.
func NewSlowSwitch(cfg SlowSwitchConfig) *SlowSwitch {
	mixed := []*isa.Block{isa.LCPBlock(isa.AddrForSet(2, 16), cfg.R, true)}
	ordered := []*isa.Block{isa.LCPBlock(isa.AddrForSet(24, 24), cfg.R, false)}
	isa.ChainLoop(mixed)
	isa.ChainLoop(ordered)
	return &SlowSwitch{
		cfg:         cfg,
		core:        cpu.NewCore(cfg.Model, cfg.Seed),
		mixed:       mixed,
		ordered:     ordered,
		mixedFlat:   isa.Flatten(mixed),
		orderedFlat: isa.Flatten(ordered),
	}
}

// BindCtx implements channel.CtxAware.
func (s *SlowSwitch) BindCtx(rc runctx.Ctx) { s.rc = rc }

// Name implements channel.BitChannel.
func (s *SlowSwitch) Name() string { return "Non-MT Slow-Switch-Based" }

// FreqGHz implements channel.BitChannel.
func (s *SlowSwitch) FreqGHz() float64 { return s.cfg.Model.FreqGHz }

// Cycles implements channel.BitChannel.
func (s *SlowSwitch) Cycles() uint64 { return s.core.Cycle() }

// SendBit implements channel.BitChannel.
func (s *SlowSwitch) SendBit(m byte) float64 {
	if s.rc.Err() != nil {
		return 0 // cancelled: the caller discards this bit
	}
	flat := s.orderedFlat
	if m == '1' {
		flat = s.mixedFlat
	}
	return s.core.RunTimed(0, isa.NewFlatLoopStream(flat, s.cfg.P))
}
