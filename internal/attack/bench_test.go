package attack

import (
	"testing"

	"repro/internal/cpu"
)

// The SendBit benchmarks time the per-bit inner loop of each channel
// family — the code every sweep, table, and advisory bottoms out in.
// They alternate bit values so both encodings (and the MT channel's
// transition noise paths) stay on the measured path. allocs/op here is
// gated by cmd/benchdiff: a regression means something in the per-bit
// path started allocating again.

func benchBits(b *testing.B, send func(m byte) float64) {
	b.Helper()
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += send('0' + byte(i&1))
	}
	if sink < 0 {
		b.Fatal("negative measurement sum")
	}
}

func BenchmarkSendBit_NonMTEviction(b *testing.B) {
	a := NewNonMT(DefaultNonMT(cpu.Gold6226(), Eviction, false))
	benchBits(b, a.SendBit)
}

func BenchmarkSendBit_NonMTStealthy(b *testing.B) {
	a := NewNonMT(DefaultNonMT(cpu.Gold6226(), Eviction, true))
	benchBits(b, a.SendBit)
}

func BenchmarkSendBit_NonMTMisalign(b *testing.B) {
	a := NewNonMT(DefaultNonMT(cpu.Gold6226(), Misalignment, false))
	benchBits(b, a.SendBit)
}

func BenchmarkSendBit_MTEviction(b *testing.B) {
	a := NewMT(DefaultMT(cpu.Gold6226(), Eviction))
	benchBits(b, a.SendBit)
}

func BenchmarkSendBit_SlowSwitch(b *testing.B) {
	a := NewSlowSwitch(DefaultSlowSwitch(cpu.Gold6226()))
	benchBits(b, a.SendBit)
}

func BenchmarkSendBit_Power(b *testing.B) {
	cfg := DefaultPower(cpu.Gold6226(), Eviction)
	cfg.Iters = 200 // paper-default 120k would swamp the harness
	a := NewPower(cfg)
	benchBits(b, a.SendBit)
}
