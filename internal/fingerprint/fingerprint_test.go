package fingerprint

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/stats"
	"repro/internal/victim"
)

func cfg() Config {
	c := DefaultConfig(cpu.Gold6226())
	c.Samples = 60 // trimmed for test runtime
	if testing.Short() {
		c.Samples = 30 // reduced-scale variant for the fast tier-1 loop
	}
	return c
}

func TestBaselineIPC(t *testing.T) {
	ipc := BaselineIPC(cfg())
	if ipc < 3.0 || ipc > 4.0 {
		t.Errorf("solo attacker IPC = %.2f, want ~3.5-4 (paper: 3.58)", ipc)
	}
}

func TestVictimHalvesIPC(t *testing.T) {
	c := cfg()
	base := BaselineIPC(c)
	tr := Trace(c, victim.CNNs()[0])
	mean := stats.Mean(tr)
	if mean > base*0.75 {
		t.Errorf("co-running victim should cut attacker IPC substantially: solo %.2f, shared %.2f", base, mean)
	}
	if mean < base*0.3 {
		t.Errorf("shared IPC %.2f implausibly low vs solo %.2f", mean, base)
	}
}

func TestTraceFluctuatesWithPhases(t *testing.T) {
	tr := Trace(cfg(), victim.CNNs()[0]) // AlexNet alternates heavy/light
	if sd := stats.StdDev(tr); sd < 0.03 {
		t.Errorf("trace stddev %.4f too flat; phases should modulate IPC", sd)
	}
}

func TestTraceLength(t *testing.T) {
	c := cfg()
	c.Samples = 25
	if got := len(Trace(c, victim.Geekbench()[0])); got != 25 {
		t.Errorf("trace length %d, want 25", got)
	}
}

func TestIntraBelowInter(t *testing.T) {
	d := Study(cfg(), victim.CNNs())
	t.Logf("CNNs: intra=%.3f inter=%.3f", d.Intra, d.Inter)
	if d.Intra >= d.Inter {
		t.Errorf("intra-distance %.3f must be below inter-distance %.3f", d.Intra, d.Inter)
	}
	if d.Inter/d.Intra < 1.5 {
		t.Errorf("inter/intra ratio %.2f too small to classify", d.Inter/d.Intra)
	}
}

func TestGeekbenchMoreSeparable(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	c := cfg()
	cnn := Study(c, victim.CNNs())
	gb := Study(c, victim.Geekbench()[:6])
	t.Logf("CNN inter=%.3f, Geekbench inter=%.3f", cnn.Inter, gb.Inter)
	if gb.Inter <= cnn.Inter {
		t.Errorf("Geekbench suite (inter %.2f) should separate more than CNNs (%.2f), as in the paper", gb.Inter, cnn.Inter)
	}
}

func TestClassify(t *testing.T) {
	c := cfg()
	suite := victim.CNNs()
	refs := make([][]float64, len(suite))
	for i := range suite {
		cc := c
		cc.Seed = 77 + uint64(i)
		refs[i] = Trace(cc, suite[i])
	}
	correct := 0
	for i := range suite {
		cc := c
		cc.Seed = 1234 + uint64(i)
		obs := Trace(cc, suite[i])
		if Classify(obs, refs) == i {
			correct++
		}
	}
	if correct < 3 {
		t.Errorf("classified %d/4 CNNs correctly, want >= 3", correct)
	}
}

func TestNoHTPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on HT-disabled model")
		}
	}()
	Trace(DefaultConfig(cpu.XeonE2288G()), victim.CNNs()[0])
}

func TestVictimCatalog(t *testing.T) {
	if len(victim.CNNs()) != 4 {
		t.Error("want 4 CNN models")
	}
	if len(victim.Geekbench()) != 10 {
		t.Error("want 10 Geekbench workloads")
	}
	if _, ok := victim.ByName("VGG"); !ok {
		t.Error("VGG missing from catalog")
	}
	if _, ok := victim.ByName("nope"); ok {
		t.Error("bogus workload found")
	}
	for _, w := range victim.CNNs() {
		if w.TotalSamples() <= 0 {
			t.Errorf("%s has empty schedule", w.Name)
		}
		if len(w.PhaseBlocks(0)) == 0 {
			t.Errorf("%s phase blocks empty", w.Name)
		}
	}
}
