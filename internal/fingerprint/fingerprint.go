// Package fingerprint implements the paper's frontend side channel for
// application fingerprinting (Section XI): an attacker thread loops over
// 100 nop instructions — too many micro-ops for the LSD, resident in the
// DSB, two-ish cache lines of code — and samples its own IPC at a low 10
// Hz rate. A victim on the sibling hardware thread modulates the shared
// frontend (especially MITE, which is not partitioned), and the
// attacker's IPC waveform identifies which workload is running.
//
// Traces are compared by Euclidean distance; a workload is recognized
// when its intra-workload distance is far below the inter-workload
// distances (Figures 11 and 12).
package fingerprint

import (
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/runctx"
	"repro/internal/stats"
	"repro/internal/victim"
)

// Config parameterizes a fingerprinting run.
type Config struct {
	Model cpu.Model
	// SamplePeriod is the low-resolution timer period in cycles. The
	// paper samples at 10 Hz wall time; simulated time is compressed so
	// a sample covers a representative execution window.
	SamplePeriod uint64
	// Samples is the trace length (100 in Figure 11).
	Samples int
	Seed    uint64
}

// DefaultConfig returns the evaluation setting.
func DefaultConfig(m cpu.Model) Config {
	return Config{Model: m, SamplePeriod: 30_000, Samples: 100, Seed: 1}
}

// attackerLoop builds the 100-nop receiver loop (2-byte nops: 101
// micro-ops — above the 64-entry LSD, inside the DSB).
func attackerLoop() []*isa.Block {
	blocks := []*isa.Block{isa.NopBlockLen(0x0070_0000, 100, 2)}
	isa.ChainLoop(blocks)
	return blocks
}

// Trace runs the attacker alongside the victim workload and returns the
// attacker's IPC samples.
func Trace(cfg Config, w victim.Workload) []float64 {
	tr, _ := TraceCtx(runctx.Background(), cfg, w)
	return tr
}

// TraceCtx is Trace with cooperative cancellation and progress: it
// checkpoints once per IPC sample and returns the context's error (and
// a nil trace) if the run is cancelled mid-trace. An uncancelled
// TraceCtx is byte-identical to Trace.
func TraceCtx(rc runctx.Ctx, cfg Config, w victim.Workload) ([]float64, error) {
	if !cfg.Model.HyperThreading {
		panic("fingerprint: side channel needs a co-resident SMT victim")
	}
	rc, span := rc.StartSpan("fingerprint.trace",
		obs.String("workload", w.Name),
		obs.String("model", cfg.Model.Name),
		obs.Int("samples", cfg.Samples))
	defer span.End()
	core := cpu.NewCore(cfg.Model, cfg.Seed)
	r := rng.New(cfg.Seed).Fork(3)

	// The attacker's loop: queue enough iterations to outlast the trace.
	loop := attackerLoop()
	totalCycles := cfg.SamplePeriod * uint64(cfg.Samples+2)
	core.Enqueue(0, isa.NewLoopStream(loop, int(totalCycles/20)+1000), nil)

	trace := make([]float64, 0, cfg.Samples)
	phase := 0
	left := 0 // samples left in the current phase
	for len(trace) < cfg.Samples {
		if err := rc.Step("trace "+w.Name, len(trace), cfg.Samples); err != nil {
			return nil, err
		}
		if left <= 0 {
			ph := w.Phases[phase%len(w.Phases)]
			left = ph.Samples
			// Scheduling jitter: phase boundaries drift by up to one
			// sample between runs of the same victim.
			if left > 1 && r.Bool(0.1) {
				left += r.Intn(3) - 1
			}
			blocks := w.PhaseBlocks(phase % len(w.Phases))
			core.AbortThread(1)
			core.Enqueue(1, isa.NewLoopStream(blocks, int(cfg.SamplePeriod)*left/len(blocks)+1000), nil)
			phase++
		}
		snap := core.Snapshot(0)
		core.RunCycles(cfg.SamplePeriod)
		ipc := core.IPCSince(0, snap)
		// Low-resolution timer quantization and OS noise.
		ipc += r.NormScaled(0, 0.015)
		trace = append(trace, ipc)
		left--
	}
	return trace, nil
}

// BaselineIPC returns the attacker's solo IPC (no victim), the 3.58
// reference of Figure 11.
func BaselineIPC(cfg Config) float64 {
	core := cpu.NewCore(cfg.Model, cfg.Seed)
	loop := attackerLoop()
	core.Enqueue(0, isa.NewLoopStream(loop, 20_000), nil)
	core.RunCycles(20_000) // warmup
	snap := core.Snapshot(0)
	core.RunCycles(cfg.SamplePeriod * 4)
	return core.IPCSince(0, snap)
}

// Distances summarizes a fingerprinting study over a workload suite.
type Distances struct {
	Names  []string
	Matrix *stats.DistanceMatrix
	Intra  float64 // mean distance between two runs of the same workload
	Inter  float64 // mean distance between different workloads
}

// Study traces every workload twice (different seeds) and computes the
// intra/inter distance statistics of Figure 12 and Section XI-B.
func Study(cfg Config, suite []victim.Workload) Distances {
	d, _ := StudyCtx(runctx.Background(), cfg, suite)
	return d
}

// StudyCtx is Study with cooperative cancellation and progress; each
// per-workload trace checkpoints per sample via TraceCtx.
func StudyCtx(rc runctx.Ctx, cfg Config, suite []victim.Workload) (Distances, error) {
	rc, span := rc.StartSpan("fingerprint.study", obs.Int("workloads", len(suite)))
	defer span.End()
	names := make([]string, len(suite))
	run1 := make([][]float64, len(suite))
	run2 := make([][]float64, len(suite))
	for i := range suite {
		names[i] = suite[i].Name
		c1, c2 := cfg, cfg
		c1.Seed = cfg.Seed*1000 + uint64(i)
		c2.Seed = cfg.Seed*1000 + uint64(i) + 500
		var err error
		if run1[i], err = TraceCtx(rc, c1, suite[i]); err != nil {
			return Distances{}, err
		}
		if run2[i], err = TraceCtx(rc, c2, suite[i]); err != nil {
			return Distances{}, err
		}
	}
	var intra, inter float64
	var nIntra, nInter int
	for i := range suite {
		intra += stats.Euclidean(run1[i], run2[i])
		nIntra++
		for j := range suite {
			if i != j {
				inter += stats.Euclidean(run1[i], run2[j])
				nInter++
			}
		}
	}
	return Distances{
		Names:  names,
		Matrix: stats.NewDistanceMatrix(names, run1),
		Intra:  intra / float64(nIntra),
		Inter:  inter / float64(nInter),
	}, nil
}

// Classify matches an observed trace against reference traces and
// returns the best-matching workload index.
func Classify(observed []float64, refs [][]float64) int {
	best, bestD := 0, -1.0
	for i, r := range refs {
		d := stats.Euclidean(observed, r)
		if bestD < 0 || d < bestD {
			best, bestD = i, d
		}
	}
	return best
}
