package cmdutil

import (
	"strings"
	"testing"

	"repro/internal/cpu"
)

func TestResolveModelCaseInsensitive(t *testing.T) {
	for _, spelling := range []string{"Gold 6226", "gold 6226", "GOLD 6226"} {
		m, err := ResolveModel(spelling)
		if err != nil || m.Name != "Gold 6226" {
			t.Errorf("ResolveModel(%q) = %q, %v; want Gold 6226", spelling, m.Name, err)
		}
	}
	// Every catalog model resolves under its canonical name.
	for _, want := range cpu.Models() {
		if m, err := ResolveModel(want.Name); err != nil || m.Name != want.Name {
			t.Errorf("ResolveModel(%q) = %q, %v", want.Name, m.Name, err)
		}
	}
}

func TestResolveModelUnknownListsCatalog(t *testing.T) {
	_, err := ResolveModel("Pentium 4")
	if err == nil {
		t.Fatal("unknown model resolved")
	}
	msg := err.Error()
	if !strings.Contains(msg, "Pentium 4") {
		t.Errorf("error does not echo the bad name: %s", msg)
	}
	for _, m := range cpu.Models() {
		if !strings.Contains(msg, m.Name) {
			t.Errorf("error does not list Table I model %q: %s", m.Name, msg)
		}
	}
}
