// Package cmdutil holds the small helpers the cmd/ binaries share, so
// each command does not improvise its own flag handling and error
// wording.
package cmdutil

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/cpu"
)

// ResolveModel looks a -model flag value up in the Table I catalog,
// case-insensitively. On failure the error lists the valid names, so
// every command reports the same actionable message.
func ResolveModel(name string) (cpu.Model, error) {
	models := cpu.Models()
	for _, m := range models {
		if strings.EqualFold(m.Name, name) {
			return m, nil
		}
	}
	names := make([]string, 0, len(models))
	for _, m := range models {
		names = append(names, fmt.Sprintf("%q", m.Name))
	}
	return cpu.Model{}, fmt.Errorf("unknown model %q; Table I models: %s",
		name, strings.Join(names, ", "))
}

// MustModel is ResolveModel for command main functions: on failure it
// prints the error and exits 1.
func MustModel(name string) cpu.Model {
	m, err := ResolveModel(name)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return m
}
