// Package leaky is the public API of the Leaky Frontends reproduction: a
// deterministic, cycle-level simulation of the Intel processor frontend
// (MITE, DSB, LSD) together with every attack from "Leaky Frontends:
// Security Vulnerabilities in Processor Frontends" (HPCA 2022) — timing
// and power covert channels, SGX leakage, a frontend Spectre v1 variant,
// microcode patch fingerprinting, and the application-fingerprinting
// side channel.
//
// Quick start:
//
//	m := leaky.Gold6226()
//	ch := leaky.NewFastCovertChannel(m, leaky.Misalignment)
//	res := leaky.Transmit(ch, m.Name, "010110")
//	fmt.Println(res.RateKbps, res.ErrorRate)
//
// The full evaluation (every table and figure of the paper) is exposed
// through the Experiments type; see cmd/leakyfe for a command-line
// driver.
package leaky

import (
	"context"
	"errors"
	"io"
	"net/http"
	"time"

	"repro/internal/attack"
	"repro/internal/channel"
	"repro/internal/contract"
	"repro/internal/cpu"
	"repro/internal/defense"
	"repro/internal/experiments"
	"repro/internal/fingerprint"
	"repro/internal/fleet"
	"repro/internal/leakfuzz"
	"repro/internal/obs"
	"repro/internal/runctx"
	"repro/internal/serve"
	"repro/internal/spec"
	"repro/internal/spectre"
	"repro/internal/store"
	"repro/internal/sweep"
	"repro/internal/ucode"
	"repro/internal/victim"
)

// Model is a simulated CPU model (Table I).
type Model = cpu.Model

// Models returns the Table I catalog.
func Models() []Model { return cpu.Models() }

// ModelByName looks a model up by its Table I name.
func ModelByName(name string) (Model, bool) { return cpu.ModelByName(name) }

// Gold6226 returns the Intel Xeon Gold 6226 model.
func Gold6226() Model { return cpu.Gold6226() }

// XeonE2174G returns the Intel Xeon E-2174G model.
func XeonE2174G() Model { return cpu.XeonE2174G() }

// XeonE2286G returns the Intel Xeon E-2286G model.
func XeonE2286G() Model { return cpu.XeonE2286G() }

// XeonE2288G returns the Intel Xeon E-2288G model.
func XeonE2288G() Model { return cpu.XeonE2288G() }

// AttackKind selects the frontend mechanism a covert channel modulates.
type AttackKind = attack.Kind

// Attack kinds.
const (
	Eviction     = attack.Eviction
	Misalignment = attack.Misalignment
)

// Channel is a covert channel that transmits one bit at a time.
type Channel = channel.BitChannel

// Result summarizes a covert transmission.
type Result = channel.Result

// Transmit sends a bit-string message over a channel and reports the
// transmission and error rates, calibrating the decode threshold on an
// alternating preamble of DefaultCalibBits bits first. For a different
// preamble length, transmit through the spec instead —
// ChannelSpec{CalibBits: n, ...}.Transmit(message) — since a built
// Channel carries no calibration setting of its own.
func Transmit(ch Channel, modelName, message string) Result {
	return channel.Transmit(ch, modelName, message, DefaultCalibBits)
}

// ChannelSpec is a declarative, JSON/flag-encodable description of one
// covert-channel scenario in the paper's full attack space — mechanism
// x threading x sink x SGX x stealthiness x protocol parameters (d, M,
// p) x model. Validate it, Build it against a Model, Transmit through
// it, or Enumerate the whole valid space; its CacheKey is the
// scenario's identity for the serving daemon. The zero value describes
// the paper's fastest configuration.
type ChannelSpec = spec.ChannelSpec

// Mechanism selects the frontend mechanism a spec'd channel modulates.
type Mechanism = spec.Mechanism

// Threading selects the spec's sender/receiver thread placement.
type Threading = spec.Threading

// ChannelSink selects the spec's measurement surface.
type ChannelSink = spec.Sink

// ChannelSpec field values.
const (
	MechanismEviction     = spec.MechanismEviction
	MechanismMisalignment = spec.MechanismMisalignment
	MechanismSlowSwitch   = spec.MechanismSlowSwitch
	ThreadingNonMT        = spec.ThreadingNonMT
	ThreadingMT           = spec.ThreadingMT
	SinkTiming            = spec.SinkTiming
	SinkPower             = spec.SinkPower
	// DefaultCalibBits is the Transmit calibration-preamble length a
	// zero ChannelSpec.CalibBits normalizes to.
	DefaultCalibBits = spec.DefaultCalibBits
)

// EnumerateSpecs returns every valid covert-channel scenario for the
// model at the paper-default protocol parameters, in the canonical
// order (the row order of the paper's channel tables).
func EnumerateSpecs(m Model) []ChannelSpec { return spec.Enumerate(m) }

// AllChannelSpecs enumerates the valid scenario space across the whole
// Table I catalog.
func AllChannelSpecs() []ChannelSpec { return spec.Enumerate(cpu.Models()...) }

// SweepFilter selects a slice of the enumerated scenario space with the
// sweep query grammar — comma-separated clauses like
// "model=xeon*,mech=eviction,thread=mt,d=1..4" (globs for
// model/mech/thread/sink, true|false for sgx/stealthy/contended,
// single values or lo..hi ranges for d/m/p). The zero value selects
// everything; ParseSweepFilter and String round-trip.
type SweepFilter = sweep.Filter

// SweepOptions scales a sweep: message bits, the base seed per-spec
// seeds are split from, calibration override, the p clamp (MaxP) for
// reduced-scale full-space sweeps, and the worker count — which never
// changes a report's bytes.
type SweepOptions = sweep.Options

// SweepRow is one spec's result in a sweep report.
type SweepRow = sweep.Row

// SweepGroup aggregates one channel variant's completed rows
// (min/mean/max of rate and error); its Key is a filter query
// selecting exactly that variant.
type SweepGroup = sweep.Group

// SweepReport is a sweep's aggregate: per-spec rows plus per-variant
// matrices, in canonical enumeration order, byte-identical for every
// worker count.
type SweepReport = sweep.Report

// ParseSweepFilter parses the sweep query grammar; the empty string is
// the whole space. Malformed clauses error before any work.
func ParseSweepFilter(query string) (SweepFilter, error) { return sweep.ParseFilter(query) }

// ExpandSweep materializes the filter's shard of the scenario space:
// the enumerated specs the filter matches, in canonical order, with
// the options' scale overrides applied and per-spec seeds split from
// the base seed — exactly the specs Sweep would run.
func ExpandSweep(f SweepFilter, o SweepOptions) ([]ChannelSpec, error) { return sweep.Expand(f, o) }

// Sweep expands the filter through the enumerated scenario space and
// transmits every matching spec, aggregating the results into a
// report. The filter is a parsed SweepFilter (ParseSweepFilter for the
// query-string form; the zero value sweeps everything), matching
// ExpandSweep so a query is parsed exactly once. Each spec's seed is
// split deterministically from o.Seed by the spec's identity (the same
// rng.SplitSeed discipline the experiment runner uses), so the report
// is a pure function of (filter, options) — never of scheduling or
// worker count.
func Sweep(f SweepFilter, o SweepOptions) (SweepReport, error) {
	return SweepCtx(context.Background(), f, o, nil)
}

// SweepCtx is Sweep with cooperative cancellation and row streaming:
// emit, when non-nil, is called once per row in canonical enumeration
// order as soon as every earlier row has landed. Cancelling ctx
// unwinds in-flight transmissions at their next checkpoint and skips
// unstarted specs; the returned report is partial, with Err set on the
// rows that did not complete and completed rows byte-identical to an
// uncancelled sweep's.
func SweepCtx(ctx context.Context, f SweepFilter, o SweepOptions, emit func(SweepRow)) (SweepReport, error) {
	return sweep.Run(ctx, f, o, nil, emit)
}

// SweepRunFunc executes one scenario of a sweep; nil means the default
// memoized in-process runner. StoreSweepRunFunc layers a persistent
// store on top of it.
type SweepRunFunc = sweep.RunFunc

// SweepRunCtx is SweepCtx with an explicit per-spec runner, for sweeps
// that read and warm a persistent ResultStore (or any other caching
// layer). run nil is exactly SweepCtx.
func SweepRunCtx(ctx context.Context, f SweepFilter, o SweepOptions, run SweepRunFunc, emit func(SweepRow)) (SweepReport, error) {
	return sweep.Run(ctx, f, o, run, emit)
}

// ResultStore is the disk-backed content-addressed result store the
// daemon persists into under -cache-dir: one file per canonical cache
// key, atomic writes, versioned checksummed envelopes, and corrupt
// entries quarantined into a miss rather than an error. A nil
// *ResultStore is a valid no-op store.
type ResultStore = store.Store

// ResultStoreStats is a snapshot of a store's hit/miss/put counters and
// its on-disk size.
type ResultStoreStats = store.Stats

// OpenResultStore opens (creating if needed) the store rooted at dir.
// Share one dir between leakyfed (-cache-dir), leakysweep (-store), and
// precompute runs: every result is a pure function of its key, so
// concurrent writers at worst duplicate a byte-identical file.
func OpenResultStore(dir string) (*ResultStore, error) { return store.Open(dir) }

// StoreSweepRunFunc returns a sweep runner layered on st: read-through
// (a stored spec costs one disk read, no simulation) and write-through
// (every simulated spec persists for the next process). The rows are
// byte-identical to the default runner's.
func StoreSweepRunFunc(st *ResultStore) SweepRunFunc { return store.SweepRunFunc(st) }

// FleetCoordinator scatters sweep shards across a fleet of leakyfed
// worker nodes by consistent-hashing spec cache keys, and merges the
// rows back into reports byte-identical to a single-node run; a dead
// worker's shard re-hashes to the survivors. Set it on ServeConfig.Fleet
// to make a daemon a coordinator.
type FleetCoordinator = fleet.Coordinator

// FleetStats is a snapshot of a coordinator's scatter/merge counters.
type FleetStats = fleet.Stats

// NewFleetCoordinator builds a coordinator over the workers' base URLs
// (http[s]://host[:port]); client nil means a default http.Client.
func NewFleetCoordinator(workers []string, client *http.Client) (*FleetCoordinator, error) {
	return fleet.New(workers, client)
}

// mechanismFor maps the legacy constructor kind onto a spec mechanism.
func mechanismFor(kind AttackKind) Mechanism {
	if kind == Misalignment {
		return MechanismMisalignment
	}
	return MechanismEviction
}

// NewFastCovertChannel builds the paper's fastest configuration: the
// non-MT "fast" channel (bit 0 sends nothing) for the given mechanism.
//
// Deprecated: the seven New*Channel constructors are frozen points in
// the scenario space; build any point with ChannelSpec{...}.Build(m).
// They remain as one-line shims for one release.
func NewFastCovertChannel(m Model, kind AttackKind) Channel {
	return ChannelSpec{Mechanism: mechanismFor(kind)}.Build(m)
}

// NewStealthyCovertChannel builds the non-MT "stealthy" variant (bit 0
// executes decoy blocks).
//
// Deprecated: use ChannelSpec{Mechanism: ..., Stealthy: true}.Build(m).
func NewStealthyCovertChannel(m Model, kind AttackKind) Channel {
	return ChannelSpec{Mechanism: mechanismFor(kind), Stealthy: true}.Build(m)
}

// NewMTCovertChannel builds the cross-hyper-thread channel. It panics if
// the model has hyper-threading disabled.
//
// Deprecated: use ChannelSpec{Mechanism: ..., Threading: ThreadingMT}.Build(m).
func NewMTCovertChannel(m Model, kind AttackKind) Channel {
	return ChannelSpec{Mechanism: mechanismFor(kind), Threading: ThreadingMT}.Build(m)
}

// NewSlowSwitchChannel builds the LCP slow-switch channel.
//
// Deprecated: use ChannelSpec{Mechanism: MechanismSlowSwitch}.Build(m).
func NewSlowSwitchChannel(m Model) Channel {
	return ChannelSpec{Mechanism: MechanismSlowSwitch}.Build(m)
}

// NewPowerChannel builds the RAPL power covert channel.
//
// Deprecated: use ChannelSpec{Mechanism: ..., Sink: SinkPower}.Build(m).
func NewPowerChannel(m Model, kind AttackKind) Channel {
	return ChannelSpec{Mechanism: mechanismFor(kind), Sink: SinkPower}.Build(m)
}

// NewSGXChannel builds the non-MT SGX covert channel (sender inside an
// enclave). It panics if the model lacks SGX.
//
// Deprecated: use ChannelSpec{Mechanism: ..., SGX: true, Stealthy: ...}.Build(m).
func NewSGXChannel(m Model, kind AttackKind, stealthy bool) Channel {
	return ChannelSpec{Mechanism: mechanismFor(kind), SGX: true, Stealthy: stealthy}.Build(m)
}

// NewSGXMTChannel builds the MT SGX covert channel.
//
// Deprecated: use ChannelSpec{Mechanism: ..., Threading: ThreadingMT, SGX: true}.Build(m).
func NewSGXMTChannel(m Model, kind AttackKind) Channel {
	return ChannelSpec{Mechanism: mechanismFor(kind), Threading: ThreadingMT, SGX: true}.Build(m)
}

// Alternating, AllZeros, AllOnes build test messages.
var (
	Alternating = channel.Alternating
	AllZeros    = channel.AllZeros
	AllOnes     = channel.AllOnes
)

// SpectreChannel selects the Spectre exfiltration channel.
type SpectreChannel = spectre.Channel

// Spectre channels.
const (
	SpectreFrontend = spectre.Frontend
	SpectreL1IFR    = spectre.L1IFlushReload
	SpectreL1IPP    = spectre.L1IPrimeProbe
	SpectreMemFR    = spectre.MemFlushReload
	SpectreL1DFR    = spectre.L1DFlushReload
	SpectreL1DLRU   = spectre.L1DLRU
)

// SpectreResult reports a Spectre leak run.
type SpectreResult = spectre.Result

// RunSpectre leaks a secret through the chosen channel and reports
// accuracy and L1 miss-rate footprint (Table VII's metric).
func RunSpectre(ch SpectreChannel, secret []byte) SpectreResult {
	return spectre.NewLab(spectre.DefaultConfig(ch)).Leak(secret)
}

// MicrocodePatch identifies a microcode level (Section X).
type MicrocodePatch = ucode.Patch

// Microcode patches of the paper's Gold 6226.
const (
	Patch1 = ucode.Patch1 // LSD enabled
	Patch2 = ucode.Patch2 // LSD disabled
)

// DetectMicrocode fingerprints the running patch through frontend
// timing. Seed 0 means the default seed 1, so sweeps over seeds are
// reproducible instead of pinned to one buried constant.
func DetectMicrocode(m Model, actual MicrocodePatch, seed uint64) MicrocodePatch {
	return ucode.DetectByTiming(m, actual, defaultSeed(seed))
}

// defaultSeed maps the "unset" seed 0 to the repository-wide default 1,
// the same convention ExperimentOpts.Normalize uses.
func defaultSeed(seed uint64) uint64 {
	if seed == 0 {
		return 1
	}
	return seed
}

// Workload is a fingerprintable victim workload.
type Workload = victim.Workload

// CNNWorkloads returns the four CNN victims of Figure 11.
func CNNWorkloads() []Workload { return victim.CNNs() }

// GeekbenchWorkloads returns the ten mobile workloads of Section XI-B.
func GeekbenchWorkloads() []Workload { return victim.Geekbench() }

// FingerprintTrace records the attacker's IPC trace while the victim
// runs on the sibling hardware thread.
func FingerprintTrace(m Model, w Workload, seed uint64) []float64 {
	cfg := fingerprint.DefaultConfig(m)
	cfg.Seed = seed
	return fingerprint.Trace(cfg, w)
}

// ClassifyTrace matches an observed IPC trace against references.
func ClassifyTrace(observed []float64, refs [][]float64) int {
	return fingerprint.Classify(observed, refs)
}

// Defense is one registered countermeasure (Section XII): a pure model
// transform plus the applicability predicate and advisory prose the
// spec layer and the advisory renderer use. Set a spec's Defense field
// to a registered name and the defended scenario becomes enumerable,
// sweepable, and cacheable like any other.
type Defense = defense.Defense

// Canonical defense names, in registry order.
const (
	DefenseNone          = defense.DefenseNone
	DefenseNoSMT         = defense.DefenseNoSMT
	DefenseEqualizePaths = defense.DefenseEqualizePaths
	DefenseNoRAPL        = defense.DefenseNoRAPL
	DefensePartition     = defense.DefensePartition
)

// Defenses returns the registered defense catalog in canonical order
// (the order Enumerate spans the defense axis).
func Defenses() []Defense { return defense.All() }

// ResolveDefense resolves a defense by name, case-insensitively; the
// error lists the valid names.
func ResolveDefense(name string) (Defense, error) { return defense.Resolve(name) }

// Defense ablations (Section XII): apply a countermeasure to a model and
// re-run the attacks against it.
//
// Deprecated: these free-function transforms are frozen aliases of the
// registry entries; resolve a Defense and Apply it, or set Defense on a
// ChannelSpec so the ablation is enumerable and sweepable.
var (
	// DisableSMT turns hyper-threading off, eliminating all MT attacks.
	DisableSMT = defense.DisableSMT
	// EqualizePaths removes the frontend's timing signatures by slowing
	// the fast paths to MITE's pace — closing the same-work channels at
	// a throughput cost.
	EqualizePaths = defense.EqualizePaths
	// DisableRAPL removes the power channel's measurement surface.
	DisableRAPL = defense.DisableRAPL
)

// DefenseResidualError re-runs the stealthy eviction channel against a
// (possibly defended) model and returns the residual error rate; ~0.5
// means the channel is closed. Seed 0 means the default seed 1.
//
// Deprecated: transmit through the spec path instead —
// ChannelSpec{Stealthy: true, Defense: ..., Seed: ...}.Transmit — which
// covers every mechanism and defense, not just the stealthy eviction
// probe. Kept as a byte-identical shim.
func DefenseResidualError(m Model, bits int, seed uint64) float64 {
	return defense.NonMTResidualError(m, bits, defaultSeed(seed))
}

// DefenseCost returns the relative slowdown of a defended model on a
// DSB-friendly workload. Seed 0 means the default seed 1.
//
// Deprecated: use DefensePerformanceCost with a registered defense, or
// read the PerformanceCost field off an Advisory mitigation. Kept as a
// byte-identical shim.
func DefenseCost(base, defended Model, seed uint64) float64 {
	return defense.PerformanceCost(base, defended, defaultSeed(seed))
}

// DefensePerformanceCost measures the throughput price of a registered
// defense on a model: defended cycles over baseline cycles on a
// DSB-friendly workload (1.0 is free). Seed 0 means the default seed 1.
func DefensePerformanceCost(m Model, d Defense, seed uint64) float64 {
	return defense.PerformanceCost(m, d.Apply(m), defaultSeed(seed))
}

// Advisory is a machine-readable per-CPU-model security advisory: the
// model's live channel variants, each registered mitigation's residual
// capacity and performance cost, and the recommended fix, rendered from
// a defense-spanning sweep. Render gives the vendor-advisory text form.
type Advisory = sweep.Advisory

// AdvisoryFinding is one live channel variant in an advisory.
type AdvisoryFinding = sweep.AdvisoryFinding

// AdvisoryMitigation scores one defense in an advisory.
type AdvisoryMitigation = sweep.AdvisoryMitigation

// AdvisorySweepFilter is the filter a model's advisory sweep uses: the
// model's whole scenario space across every defense.
func AdvisorySweepFilter(m Model) SweepFilter { return sweep.AdvisoryFilter(m.Name) }

// NewAdvisory renders a model-scoped, defense-spanning sweep report
// (swept with AdvisorySweepFilter) into the model's advisory. The
// report must contain completed defense=none rows — the baseline the
// residual accounting is anchored to.
func NewAdvisory(rep SweepReport, m Model) (Advisory, error) { return sweep.NewAdvisory(rep, m) }

// ModelAdvisory sweeps the model's whole scenario space across every
// registered defense at the given scale and renders the advisory in one
// call. Like Sweep, the result is a pure function of (model, options).
func ModelAdvisory(m Model, o SweepOptions) (Advisory, error) {
	rep, err := sweep.Run(context.Background(), sweep.AdvisoryFilter(m.Name), o, nil, nil)
	if err != nil {
		return Advisory{}, err
	}
	return sweep.NewAdvisory(rep, m)
}

// ExperimentOpts scales the paper-reproduction experiments.
type ExperimentOpts = experiments.Opts

// ExperimentArtifact describes one registered table/figure reproduction.
type ExperimentArtifact = experiments.Artifact

// ExperimentResult records one artifact run: derived seed, structured
// data, rendered text, and wall-clock timing. Err is set instead of
// data when the run was cancelled before the artifact completed.
type ExperimentResult = experiments.Result

// RunProgress is one progress tick from inside a running artifact.
type RunProgress = runctx.Event

// Experiments returns the registered artifact catalog in paper order.
func Experiments() []ExperimentArtifact { return experiments.Default().Artifacts() }

// RunExperiments resolves name patterns against the artifact registry
// (case-insensitive, shell-style globs, "all") and runs the selection on
// a bounded pool of `workers` goroutines. Each artifact's seed is split
// deterministically from o.Seed by artifact name, so every result's
// data and rendered text are bit-identical for any worker count (only
// the recorded wall-clock timings vary). Unknown patterns error before
// anything runs.
func RunExperiments(patterns []string, o ExperimentOpts, workers int) ([]ExperimentResult, error) {
	return RunExperimentsCtx(context.Background(), patterns, o, workers, nil)
}

// RunExperimentsCtx is RunExperiments with cooperative cancellation and
// progress reporting. Cancelling ctx unwinds in-flight artifacts at
// their next checkpoint and skips unstarted ones; each such artifact's
// result carries Err, while artifacts that completed before the
// cancellation are byte-identical to an uninterrupted run's. progress,
// when non-nil, receives throttle-free ticks from every running
// artifact (it must be safe for concurrent use).
func RunExperimentsCtx(ctx context.Context, patterns []string, o ExperimentOpts, workers int, progress func(RunProgress)) ([]ExperimentResult, error) {
	arts, err := experiments.Default().Select(patterns...)
	if err != nil {
		return nil, err
	}
	rc := runctx.New(ctx, progress)
	return experiments.Runner{Opts: o, Workers: workers}.RunEmitCtx(rc, arts, nil), nil
}

// Server is the artifact-serving daemon core: a deterministic result
// cache, singleflight request collapsing, and a bounded job queue in
// front of the experiment registry. Every run is a pure function of
// (artifact name, normalized options), so cached responses are
// byte-identical to fresh ones and never expire.
type Server = serve.Server

// ServeConfig parameterizes a Server; the zero value serves the default
// catalog with default options and sensible bounds.
type ServeConfig = serve.Config

// NewServer builds the serving layer. Mount NewServer(cfg).Handler() on
// any http.Server, or use Serve for the one-liner.
func NewServer(cfg ServeConfig) *Server { return serve.NewServer(cfg) }

// Serve runs the artifact daemon on addr until the listener fails; see
// cmd/leakyfed for a version with flags. It delegates to ServeCtx with
// a background context, so it never shuts down gracefully — callers
// that need draining pass their own context to ServeCtx.
func Serve(addr string, cfg ServeConfig) error {
	return ServeCtx(context.Background(), addr, cfg)
}

// ServeCtx runs the artifact daemon on addr until ctx is cancelled or
// the listener fails. Cancellation shuts the daemon down gracefully:
// every in-flight simulation is cancelled through Server.Close (each
// unwinds at its next cooperative checkpoint), then the HTTP server
// drains its connections, bounded by a 10s grace period. A graceful
// shutdown returns nil.
func ServeCtx(ctx context.Context, addr string, cfg ServeConfig) error {
	srv := serve.NewServer(cfg)
	hs := &http.Server{
		Addr:              addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	select {
	case err := <-errc:
		srv.Close()
		return err
	case <-ctx.Done():
	}
	// Cancel in-flight simulations first so draining is not stuck
	// behind runs nobody will be around to read, then drain.
	srv.Close()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err := hs.Shutdown(shutdownCtx)
	// Shutdown makes ListenAndServe return, so errc is owed a value. If
	// the listener had already failed when the cancellation raced in,
	// that failure — not a clean shutdown — is the story.
	if lerr := <-errc; lerr != nil && !errors.Is(lerr, http.ErrServerClosed) {
		return lerr
	}
	return err
}

// Trace is a hierarchical span trace of one run: the run is the root
// span, stages (calibration preambles, per-bit transmit loops,
// fingerprint sampling, sweep shards) nest under it with monotonic
// wall-clock timings. Tracing never perturbs a simulation — spans record
// timing only, so a traced run's result bytes are identical to an
// untraced run's.
type Trace = obs.Trace

// TraceSpan is one completed span of a Trace.
type TraceSpan = obs.SpanData

// NewTrace opens a trace (and its root span) named name. Attach it to a
// context with Trace.Context and pass that context to SweepCtx,
// RunExperimentsCtx, or TransmitCtx-driven work to record stage spans;
// call Finish when the run is over, then export with WriteChromeTrace
// or WriteTraceNDJSON.
func NewTrace(name string) *Trace { return obs.NewTrace("", name) }

// WriteChromeTrace exports t as Chrome trace_event JSON, loadable
// directly in about:tracing or https://ui.perfetto.dev.
func WriteChromeTrace(w io.Writer, t *Trace) error { return obs.WriteChromeTrace(w, t) }

// WriteTraceNDJSON exports t as an NDJSON stream of spans, one per line.
func WriteTraceNDJSON(w io.Writer, t *Trace) error { return obs.WriteNDJSON(w, t) }

// ValidateChromeTrace checks blob against the subset of the Chrome
// trace_event schema the exporter emits and returns the violations
// found (empty means loadable).
func ValidateChromeTrace(blob []byte) []string { return obs.ValidateChromeTrace(blob) }

// runArtifact dispatches one named artifact through the registry with the
// caller's options applied verbatim (no seed splitting), preserving the
// behavior of the historical direct-call API. It runs under the
// never-cancelled background context, so the registry's error return is
// unreachable here.
func runArtifact(name string, o ExperimentOpts) (any, string) {
	a, ok := experiments.Default().Get(name)
	if !ok {
		panic("leaky: unknown experiment " + name)
	}
	d, s, err := a.Run(experiments.RunCtx{}, o)
	if err != nil {
		panic("leaky: uncancellable run reported " + err.Error())
	}
	return d, s
}

// Experiment runners: each regenerates one table or figure of the paper
// and returns its formatted rendering. They are thin lookups into the
// artifact registry; RunExperiments is the batched, parallel entry point.

// TableI renders the CPU model catalog (Table I).
func TableI() string {
	_, s := runArtifact("tableI", ExperimentOpts{})
	return s
}

// Figure2 reproduces the per-path timing histogram (Figure 2).
func Figure2(o ExperimentOpts) (experiments.Figure2Data, string) {
	d, s := runArtifact("figure2", o)
	return d.(experiments.Figure2Data), s
}

// Figure4 reproduces the mixed- vs ordered-issue LCP experiment (Figure 4).
func Figure4(o ExperimentOpts) ([2]experiments.Figure4Row, string) {
	d, s := runArtifact("figure4", o)
	return d.([2]experiments.Figure4Row), s
}

// TableII reproduces the message-pattern study (Table II).
func TableII(o ExperimentOpts) ([]Result, string) {
	d, s := runArtifact("tableII", o)
	return d.([]channel.Result), s
}

// TableIII reproduces the main covert-channel matrix (Table III).
func TableIII(o ExperimentOpts) ([]Result, string) {
	d, s := runArtifact("tableIII", o)
	return d.([]channel.Result), s
}

// TableIV reproduces the slow-switch channel rows (Table IV).
func TableIV(o ExperimentOpts) ([]Result, string) {
	d, s := runArtifact("tableIV", o)
	return d.([]channel.Result), s
}

// TableV reproduces the power channels (Table V).
func TableV(o ExperimentOpts) ([]Result, string) {
	d, s := runArtifact("tableV", o)
	return d.([]channel.Result), s
}

// TableVI reproduces the SGX channel matrix (Table VI).
func TableVI(o ExperimentOpts) ([]Result, string) {
	d, s := runArtifact("tableVI", o)
	return d.([]channel.Result), s
}

// TableVII reproduces the Spectre v1 L1 miss-rate comparison (Table VII).
func TableVII(o ExperimentOpts) ([]SpectreResult, string) {
	d, s := runArtifact("tableVII", o)
	return d.([]spectre.Result), s
}

// Figure8 reproduces the MT eviction d-sweep (Figure 8).
func Figure8(o ExperimentOpts) ([]experiments.Figure8Point, string) {
	d, s := runArtifact("figure8", o)
	return d.([]experiments.Figure8Point), s
}

// Figure9 reproduces the per-path power histogram (Figure 9).
func Figure9(o ExperimentOpts) (experiments.Figure9Data, string) {
	d, s := runArtifact("figure9", o)
	return d.(experiments.Figure9Data), s
}

// Figure10 reproduces the microcode patch fingerprinting measurements.
func Figure10(o ExperimentOpts) ([2]ucode.Observation, string) {
	d, s := runArtifact("figure10", o)
	return d.([2]ucode.Observation), s
}

// Figure11 reproduces the attacker IPC traces against the CNN victims.
func Figure11(o ExperimentOpts) (map[string][]float64, string) {
	d, s := runArtifact("figure11", o)
	return d.(map[string][]float64), s
}

// Figure12 reproduces the fingerprinting distance study (Figure 12 and
// Section XI-B).
func Figure12(o ExperimentOpts) (cnn, gb fingerprint.Distances, rendered string) {
	d, s := runArtifact("figure12", o)
	fd := d.(experiments.Figure12Data)
	return fd.CNN, fd.Geekbench, s
}

// LeakObservation is one retired-instruction window of the frontend
// leakage contract: every observable an attacker can in principle
// resolve about it (delivery-path micro-op counts, switch and stall
// events, occupancy deltas, timing, energy).
type LeakObservation = contract.Observation

// LeakTrace is a program's contract trace: its observation windows in
// order. Two executions of the same public code with different secrets
// must produce equal traces, or the secret leaks.
type LeakTrace = contract.Trace

// LeakDivergence is the first point where two contract traces differ —
// a leakage counterexample.
type LeakDivergence = contract.Divergence

// LeakMechanism labels which known channel family a divergence belongs
// to (misalignment, slowswitch, eviction, bpu, or unknown).
type LeakMechanism = contract.Mechanism

// LeakCheck runs a secret-pair on private simulated cores and reports
// the first contract divergence between the probe traces, if any.
func LeakCheck(m Model, seed uint64, pair contract.Pair) (LeakDivergence, bool) {
	return contract.Check(m, seed, contract.DefaultParams(), pair)
}

// ClassifyLeak attributes a leak between two probe traces to a known
// channel family.
func ClassifyLeak(a, b LeakTrace) LeakMechanism { return contract.Classify(a, b) }

// LeakFuzzOptions configures a coverage-guided leakage-fuzzing
// campaign; see cmd/leakfuzz for the command-line driver.
type LeakFuzzOptions = leakfuzz.Options

// LeakFuzzReport summarizes a campaign: executions, coverage, and the
// minimized, classified counterexamples it found.
type LeakFuzzReport = leakfuzz.Report

// LeakFuzzFinding is one minimized leakage counterexample with its
// mechanism classification and candidate ChannelSpec.
type LeakFuzzFinding = leakfuzz.Finding

// LeakGenome is one fuzzing candidate: a secret-dependent preparation
// program plus a public probe, as loop-phase genes.
type LeakGenome = leakfuzz.Genome

// LeakFuzz runs one deterministic leakage-fuzzing campaign: same
// options, same report, findings and all.
func LeakFuzz(o LeakFuzzOptions) LeakFuzzReport { return leakfuzz.Run(o) }
