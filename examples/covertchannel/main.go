// Covert channel example: send a secret between two cooperating
// processes on one machine through the frontend, with no cache footprint
// (Sections V-C / V-D).
package main

import (
	"fmt"
	"strings"

	leaky "repro"
)

func bits(s string) string {
	var b strings.Builder
	for _, c := range []byte(s) {
		for i := 7; i >= 0; i-- {
			b.WriteByte('0' + (c>>uint(i))&1)
		}
	}
	return b.String()
}

func text(bs string) string {
	var b strings.Builder
	for i := 0; i+8 <= len(bs); i += 8 {
		var c byte
		for j := 0; j < 8; j++ {
			c = c<<1 | (bs[i+j] - '0')
		}
		b.WriteByte(c)
	}
	return b.String()
}

func main() {
	secret := "FRONTENDS LEAK"
	for _, m := range leaky.Models() {
		cs := leaky.ChannelSpec{Model: m.Name, Mechanism: leaky.MechanismMisalignment}
		res, err := cs.Transmit(bits(secret))
		if err != nil {
			fmt.Println(err)
			continue
		}
		fmt.Printf("%-14s %-38s %8.0f Kbps  err %5.2f%%  -> %q\n",
			m.Name, res.Channel, res.RateKbps, 100*res.ErrorRate, text(res.Received))
	}
}
