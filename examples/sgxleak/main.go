// SGX leakage example: a sender inside an enclave exfiltrates a secret
// through the frontend to an unprivileged receiver outside (Section
// VIII) — the enclave boundary costs bandwidth but does not stop the
// channel.
package main

import (
	"fmt"

	leaky "repro"
)

func main() {
	m := leaky.XeonE2174G()
	secretBits := leaky.Alternating(48)

	plain := leaky.Transmit(leaky.NewFastCovertChannel(m, leaky.Eviction), m.Name, secretBits)
	enclave := leaky.Transmit(leaky.NewSGXChannel(m, leaky.Eviction, false), m.Name, secretBits)

	fmt.Printf("platform: %s (SGX-capable)\n\n", m.Name)
	fmt.Printf("%-42s %10.1f Kbps   err %5.2f%%\n", plain.Channel, plain.RateKbps, 100*plain.ErrorRate)
	fmt.Printf("%-42s %10.1f Kbps   err %5.2f%%\n", enclave.Channel, enclave.RateKbps, 100*enclave.ErrorRate)
	fmt.Printf("\nenclave boundary costs %.0fx bandwidth (paper: ~25-30x), but the secret still leaks\n",
		plain.RateKbps/enclave.RateKbps)
}
