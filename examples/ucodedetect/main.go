// Microcode detection example: fingerprint the machine's microcode patch
// level from unprivileged frontend timing (Section X, Figure 10).
package main

import (
	"fmt"

	leaky "repro"
)

func main() {
	_, rendered := leaky.Figure10(leaky.ExperimentOpts{Seed: 5})
	fmt.Println(rendered)
	fmt.Println("a small loop that fits the LSD behaves differently only when the")
	fmt.Println("LSD-enabled microcode is loaded; the patch level is not a secret.")
}
