// Quickstart: observe the three frontend paths' timing signatures — the
// root cause behind every attack in the paper (Figure 2).
package main

import (
	"fmt"

	leaky "repro"
	"repro/internal/stats"
)

func main() {
	fmt.Println("Leaky Frontends quickstart: frontend path timing on the simulated Gold 6226")
	fmt.Println()
	fmt.Print(leaky.TableI())
	fmt.Println()

	data, rendered := leaky.Figure2(leaky.ExperimentOpts{Bits: 50, Seed: 7})
	fmt.Println(rendered)
	fmt.Printf("mean cycles per 8 chain passes: DSB=%.0f  LSD=%.0f  MITE+DSB=%.0f\n",
		stats.Mean(data.DSB), stats.Mean(data.LSD), stats.Mean(data.MITE))
	fmt.Println("the gaps between these paths are the covert channel.")
	fmt.Println()

	// The registry runs any subset of the paper's artifacts concurrently;
	// per-artifact seed splitting keeps the output identical to a serial
	// run no matter the worker count.
	results, err := leaky.RunExperiments([]string{"figure4", "tableIV"}, leaky.ExperimentOpts{Bits: 50, Seed: 7}, 2)
	if err != nil {
		panic(err)
	}
	for _, r := range results {
		fmt.Printf("%s finished in %.2fs\n", r.Ref, r.Elapsed.Seconds())
	}
}
