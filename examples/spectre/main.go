// Spectre example: the paper's in-domain Spectre v1 variant leaks a
// transiently-read secret through the DSB — with a far smaller cache
// footprint than classic cache-channel Spectre (Section IX, Table VII).
package main

import (
	"fmt"

	leaky "repro"
)

func main() {
	secret := []byte("frontend")
	fmt.Printf("leaking %q (5 bits per chunk) through each covert channel:\n\n", secret)
	fmt.Printf("%-10s %10s %16s\n", "channel", "accuracy", "L1 miss rate")
	for _, ch := range []leaky.SpectreChannel{
		leaky.SpectreMemFR, leaky.SpectreL1DFR, leaky.SpectreL1DLRU,
		leaky.SpectreL1IFR, leaky.SpectreL1IPP, leaky.SpectreFrontend,
	} {
		res := leaky.RunSpectre(ch, secret)
		fmt.Printf("%-10v %9.0f%% %15.3f%%\n", ch, 100*res.Accuracy, 100*res.L1MissRate)
	}
	fmt.Println("\nthe frontend channel leaves the smallest footprint: cache-based")
	fmt.Println("Spectre defenses do not see it.")
}
