// Serveclient queries a running leakyfed daemon: it lists the catalog,
// fetches one artifact twice (the second hit comes from the
// deterministic cache), streams a selection as NDJSON, runs one
// declared covert-channel scenario through POST /v1/channels/run, and
// dumps the server's counters. Start the daemon first:
//
//	go run ./cmd/leakyfed -addr :8080 &
//	go run ./examples/serveclient -addr http://127.0.0.1:8080
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/runctx"
)

func fetch(base, path string) (*http.Response, error) {
	resp, err := http.Get(base + path)
	if err != nil {
		return nil, fmt.Errorf("GET %s: %w (is leakyfed running?)", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return nil, fmt.Errorf("GET %s: %s: %s", path, resp.Status, body)
	}
	return resp, nil
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "leakyfed base URL")
	flag.Parse()
	if err := run(*addr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(base string) error {
	// 1. The catalog: every table and figure the daemon serves.
	resp, err := fetch(base, "/v1/artifacts")
	if err != nil {
		return err
	}
	var catalog []struct{ Name, Ref, Desc string }
	err = json.NewDecoder(resp.Body).Decode(&catalog)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("decoding catalog: %w", err)
	}
	fmt.Printf("daemon serves %d artifacts:\n", len(catalog))
	for _, a := range catalog {
		fmt.Printf("  %-10s %-10s %s\n", a.Name, a.Ref, a.Desc)
	}

	// 2. One artifact, twice: the first GET may simulate, the second is
	// a cache hit and returns the identical bytes in microseconds.
	const path = "/v1/artifacts/tableIV?format=text&bits=60"
	for attempt := 1; attempt <= 2; attempt++ {
		start := time.Now()
		resp, err := fetch(base, path)
		if err != nil {
			return err
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		fmt.Printf("\nGET %s (#%d, %v):\n%s", path, attempt, time.Since(start).Round(time.Microsecond), body)
	}

	// 3. A streamed selection with live progress: NDJSON in catalog
	// order, with throttled {"progress": ...} events interleaved while
	// uncached artifacts simulate (drop &progress=1 for the bare result
	// stream). A result line with a non-empty err marks an artifact the
	// server cancelled (shutdown, or -cancel-abandoned disconnect).
	resp, err = fetch(base, "/v1/run?sel=tableI,tableIV&bits=60&progress=1")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	fmt.Println("\nstreaming sel=tableI,tableIV (progress on):")
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var line struct {
			experiments.Result
			Progress *runctx.Event `json:"progress"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return fmt.Errorf("bad NDJSON line: %w", err)
		}
		switch {
		case line.Progress != nil:
			fmt.Printf("  ... %s: %s (%d/%d)\n",
				line.Progress.Artifact, line.Progress.Stage, line.Progress.Done, line.Progress.Total)
		case line.Err != "":
			fmt.Printf("  %-10s cancelled: %s\n", line.Name, line.Err)
		default:
			fmt.Printf("  %-10s (%s) seed=%d, %d rendered bytes\n", line.Name, line.Ref, line.Seed, len(line.Rendered))
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("stream interrupted: %w", err)
	}

	// 4. A declared covert-channel scenario: POST a ChannelSpec and the
	// daemon simulates it once, then serves the cached bytes to every
	// identical request — the whole attack space is servable, not just
	// the 16 frozen artifacts (GET /v1/channels lists the valid space).
	specBody := `{"spec": {"model": "Xeon E-2288G", "mechanism": "misalignment", "stealthy": true}, "opts": {"bits": 40}}`
	for attempt := 1; attempt <= 2; attempt++ {
		start := time.Now()
		resp, err := http.Post(base+"/v1/channels/run", "application/json", strings.NewReader(specBody))
		if err != nil {
			return fmt.Errorf("POST /v1/channels/run: %w", err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("POST /v1/channels/run: %s: %s", resp.Status, body)
		}
		var res experiments.Result
		if err := json.Unmarshal(body, &res); err != nil {
			return fmt.Errorf("decoding channel run: %w", err)
		}
		fmt.Printf("\nPOST /v1/channels/run (#%d, %v):\n  %s  %s", attempt, time.Since(start).Round(time.Microsecond), res.Desc, res.Rendered)
	}

	// 5. Operational counters.
	resp, err = fetch(base, "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	metrics, _ := io.ReadAll(resp.Body)
	fmt.Printf("\n/metrics:\n%s", metrics)
	return nil
}
