// Example sweep walks the sweep engine end to end: parse a filter
// query, inspect the shard it selects, stream per-spec rows as they
// complete, and read the aggregated per-variant matrix — the batch
// analog of transmitting one ChannelSpec at a time.
package main

import (
	"context"
	"fmt"
	"log"

	leaky "repro"
)

func main() {
	// A filter is a comma-separated query over the enumerated scenario
	// space: globs for model/mech/thread/sink, booleans, d/m/p ranges.
	// This one selects every plain timing eviction channel.
	const query = "mech=eviction,sink=timing,sgx=false"
	f, err := leaky.ParseSweepFilter(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("filter %q (canonical: %q)\n", query, f.String())

	// Small messages and preambles keep the demo quick; per-spec seeds
	// are split from Seed, so this report reproduces bit-for-bit at any
	// Workers value.
	opts := leaky.SweepOptions{Bits: 24, CalibBits: 8, Seed: 1, Workers: 4}
	specs, err := leaky.ExpandSweep(f, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shard: %d scenarios\n\n", len(specs))

	// Rows stream in canonical enumeration order while later specs are
	// still transmitting.
	report, err := leaky.SweepCtx(context.Background(), f, opts, func(row leaky.SweepRow) {
		fmt.Printf("  done: %-90s rate=%8.2f Kbps err=%5.2f%%\n",
			row.Canonical, row.RateKbps, 100*row.ErrorRate)
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Print(report.Render())

	// Every group's key is itself a filter query, so drilling into one
	// variant is a copy-paste.
	if len(report.Groups) > 0 {
		fmt.Printf("\ndrill into the first variant with:\n  leakysweep -filter '%s'\n", report.Groups[0].Key)
	}
}
