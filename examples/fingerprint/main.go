// Fingerprinting example: identify which CNN model a co-located victim
// is running purely from the attacker's own IPC waveform (Section XI,
// Figure 11).
package main

import (
	"fmt"
	"strings"

	leaky "repro"
	"repro/internal/stats"
)

// sparkline renders an IPC trace as a compact ASCII waveform.
func sparkline(tr []float64, lo, hi float64) string {
	marks := []byte("_.-~^")
	var b strings.Builder
	for i := 0; i < len(tr); i += 2 {
		f := (tr[i] - lo) / (hi - lo)
		idx := int(f * float64(len(marks)))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(marks) {
			idx = len(marks) - 1
		}
		b.WriteByte(marks[idx])
	}
	return b.String()
}

func main() {
	m := leaky.Gold6226()
	fmt.Println("attacker: 100-nop loop on one hyper-thread, sampling its own IPC at 10 Hz")
	fmt.Println("victim:   CNN inference on the sibling thread")
	fmt.Println()
	for _, w := range leaky.CNNWorkloads() {
		tr := leaky.FingerprintTrace(m, w, 7)
		fmt.Printf("%-12s mean IPC %.2f  %s\n", w.Name, stats.Mean(tr), sparkline(tr, 2.0, 4.0))
	}
	fmt.Println("\neach model's layer schedule produces a distinct waveform (Figure 11).")
}
