// Command promlint checks a Prometheus text-format exposition read from
// stdin (or a file argument): every sample's family must declare # HELP
// and # TYPE before its first sample, names must be unique and
// well-formed, values must parse, and histogram families must carry
// complete _bucket/_sum/_count series including the +Inf bucket. It is
// the CI gate behind leakyfed's /metrics endpoint:
//
//	curl -fs localhost:8080/metrics | promlint
//	promlint metrics.txt
//
// Exit status is 0 on a clean exposition, 1 with one problem per line on
// stderr otherwise.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
)

func main() {
	flag.Parse()
	var r io.Reader = os.Stdin
	if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "promlint: at most one file argument (default stdin)")
		os.Exit(2)
	}
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "promlint: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		r = f
	}
	problems := obs.LintProm(r)
	for _, p := range problems {
		fmt.Fprintf(os.Stderr, "promlint: %s\n", p)
	}
	if len(problems) > 0 {
		os.Exit(1)
	}
}
