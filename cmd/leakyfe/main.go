// Command leakyfe regenerates the paper's evaluation: every table and
// figure of "Leaky Frontends" (HPCA 2022) on the simulated frontend,
// driven through the experiment registry.
//
// Usage:
//
//	leakyfe -list
//	leakyfe -run all -parallel 4 -timing
//	leakyfe -run 'table*' -json
//	leakyfe -run tableIII,figure8 -bits 400
//
// The -run flag takes a comma-separated list of experiment names as
// printed by -list, matched case-insensitively ("TABLEiii" works), or
// shell-style globs ("figure*"). Unknown names are rejected before any
// experiment runs. Artifacts execute on -parallel worker goroutines with
// per-artifact seeds split from -seed, so the rendered artifact text is
// byte-identical for every -parallel value; tables print incrementally
// as their catalog-order prefix completes. (JSON output additionally
// embeds per-artifact wall-clock timings, which vary run to run.)
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	leaky "repro"
	"repro/internal/experiments"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list experiments and exit")
		run      = flag.String("run", "all", "comma-separated experiment names or globs (case-insensitive), or 'all'")
		bits     = flag.Int("bits", 200, "covert-channel message length")
		seed     = flag.Uint64("seed", 1, "top-level deterministic seed")
		samples  = flag.Int("samples", 100, "fingerprint trace length (figures 11/12)")
		parallel = flag.Int("parallel", runtime.NumCPU(), "max experiments in flight (artifact text is identical for any value)")
		jsonOut  = flag.Bool("json", false, "emit structured JSON results instead of rendered tables")
		timing   = flag.Bool("timing", false, "append per-artifact wall-clock timings (text mode)")
	)
	flag.Parse()

	if *list {
		for _, a := range leaky.Experiments() {
			fmt.Printf("%-10s %-10s %s\n", a.Name, a.Ref, a.Desc)
		}
		return
	}

	o := leaky.ExperimentOpts{Bits: *bits, Seed: *seed, Samples: *samples}
	arts, err := experiments.Default().Select(strings.Split(*run, ",")...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rn := experiments.Runner{Opts: o, Workers: *parallel}
	if *jsonOut {
		b, err := experiments.RenderJSON(rn.Run(arts))
		if err != nil {
			fmt.Fprintf(os.Stderr, "leakyfe: encoding results: %v\n", err)
			os.Exit(1)
		}
		os.Stdout.Write(append(b, '\n'))
		return
	}
	// Stream each table as soon as its catalog-order prefix completes;
	// the concatenation is byte-identical to a buffered RenderText.
	results := rn.RunEmit(arts, func(r leaky.ExperimentResult) {
		fmt.Print(experiments.RenderText([]experiments.Result{r}, false))
	})
	if *timing {
		fmt.Print(experiments.RenderTimings(results))
	}
}
