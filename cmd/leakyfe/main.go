// Command leakyfe regenerates the paper's evaluation: every table and
// figure of "Leaky Frontends" (HPCA 2022) on the simulated frontend,
// driven through the experiment registry.
//
// Usage:
//
//	leakyfe -list
//	leakyfe -run all -parallel 4 -timing
//	leakyfe -run 'table*' -json
//	leakyfe -run tableIII,figure8 -bits 400
//	leakyfe -run all -progress -timeout 90s
//	leakyfe -run all -trace run.json     # Chrome trace_event profile of the run
//
// The -run flag takes a comma-separated list of experiment names as
// printed by -list, matched case-insensitively ("TABLEiii" works), or
// shell-style globs ("figure*"). Unknown names are rejected before any
// experiment runs. Artifacts execute on -parallel worker goroutines with
// per-artifact seeds split from -seed, so the rendered artifact text is
// byte-identical for every -parallel value; tables print incrementally
// as their catalog-order prefix completes. (JSON output additionally
// embeds per-artifact wall-clock timings, which vary run to run.)
//
// Runs are cancellable: Ctrl-C (or an elapsed -timeout) unwinds every
// in-flight artifact at its next cooperative checkpoint and skips the
// rest. Artifacts that completed before the interrupt print exactly the
// bytes an uninterrupted run would have printed; the cancelled ones are
// listed on stderr and the exit status is non-zero. -progress reports
// live per-artifact progress on stderr without perturbing stdout.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"time"

	leaky "repro"
	"repro/internal/experiments"
	"repro/internal/runctx"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list experiments and exit")
		run      = flag.String("run", "all", "comma-separated experiment names or globs (case-insensitive), or 'all'")
		bits     = flag.Int("bits", 200, "covert-channel message length")
		seed     = flag.Uint64("seed", 1, "top-level deterministic seed")
		samples  = flag.Int("samples", 100, "fingerprint trace length (figures 11/12)")
		parallel = flag.Int("parallel", runtime.NumCPU(), "max experiments in flight (artifact text is identical for any value)")
		jsonOut  = flag.Bool("json", false, "emit structured JSON results instead of rendered tables")
		timing   = flag.Bool("timing", false, "append per-artifact wall-clock timings (text mode)")
		timeout  = flag.Duration("timeout", 0, "per-invocation deadline; exceeded runs are cancelled cooperatively (0 = none)")
		progress = flag.Bool("progress", false, "report live experiment progress on stderr")
		traceOut = flag.String("trace", "", "write a Chrome trace_event profile of the run to this file (load in about:tracing or ui.perfetto.dev)")
	)
	flag.Parse()

	if *list {
		for _, a := range leaky.Experiments() {
			fmt.Printf("%-10s %-10s %s\n", a.Name, a.Ref, a.Desc)
		}
		return
	}

	o := leaky.ExperimentOpts{Bits: *bits, Seed: *seed, Samples: *samples}
	arts, err := experiments.Default().Select(strings.Split(*run, ",")...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Ctrl-C / SIGTERM cancels the run cooperatively; completed tables
	// have already been streamed, cancelled ones are reported below. A
	// second interrupt kills the process the usual way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	// Once the run is cancelled, restore default signal handling so the
	// second Ctrl-C actually kills the process instead of being
	// swallowed while a long un-checkpointed section finishes.
	context.AfterFunc(ctx, stop)
	// Per-artifact and per-stage spans record wall-clock only; the trace
	// never changes the rendered artifact bytes. flushTrace runs before
	// every exit path (exitCancelled bypasses defers via os.Exit).
	flushTrace := func() {}
	if *traceOut != "" {
		tr := leaky.NewTrace("leakyfe")
		ctx = tr.Context(ctx)
		flushTrace = func() {
			tr.Finish()
			if err := writeTrace(*traceOut, tr); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
	rc := runctx.New(ctx, progressSink(*progress))

	rn := experiments.Runner{Opts: o, Workers: *parallel}
	if *jsonOut {
		results := rn.RunEmitCtx(rc, arts, nil)
		flushTrace()
		b, err := experiments.RenderJSON(results)
		if err != nil {
			fmt.Fprintf(os.Stderr, "leakyfe: encoding results: %v\n", err)
			os.Exit(1)
		}
		os.Stdout.Write(append(b, '\n'))
		exitCancelled(results)
		return
	}
	// Stream each table as soon as its catalog-order prefix completes;
	// the concatenation is byte-identical to a buffered RenderText over
	// the completed artifacts.
	results := rn.RunEmitCtx(rc, arts, func(r leaky.ExperimentResult) {
		fmt.Print(experiments.RenderText([]experiments.Result{r}, false))
	})
	flushTrace()
	if *timing {
		fmt.Print(experiments.RenderTimings(results))
	}
	exitCancelled(results)
}

// writeTrace exports the finished trace as Chrome trace_event JSON.
func writeTrace(path string, tr *leaky.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("leakyfe: %v", err)
	}
	if err := leaky.WriteChromeTrace(f, tr); err != nil {
		f.Close()
		return fmt.Errorf("leakyfe: writing trace: %v", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("leakyfe: writing trace: %v", err)
	}
	return nil
}

// progressSink returns the stderr progress reporter, throttled so tight
// per-bit checkpoints do not flood the terminal; nil when disabled.
func progressSink(enabled bool) runctx.Sink {
	if !enabled {
		return nil
	}
	var mu sync.Mutex
	var last time.Time
	return func(ev runctx.Event) {
		mu.Lock()
		defer mu.Unlock()
		if time.Since(last) < 200*time.Millisecond {
			return
		}
		last = time.Now()
		if ev.Total > 0 {
			fmt.Fprintf(os.Stderr, "leakyfe: %s: %s (%d/%d)\n", ev.Artifact, ev.Stage, ev.Done, ev.Total)
			return
		}
		fmt.Fprintf(os.Stderr, "leakyfe: %s: %s (%d)\n", ev.Artifact, ev.Stage, ev.Done)
	}
}

// exitCancelled reports artifacts the run did not complete and exits
// non-zero if there were any.
func exitCancelled(results []leaky.ExperimentResult) {
	var cancelled []string
	for _, r := range results {
		if r.Err != "" {
			cancelled = append(cancelled, r.Name)
		}
	}
	if len(cancelled) == 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "leakyfe: run cancelled before completing: %s\n", strings.Join(cancelled, ", "))
	os.Exit(1)
}
