// Command leakyfe regenerates the paper's evaluation: every table and
// figure of "Leaky Frontends" (HPCA 2022) on the simulated frontend.
//
// Usage:
//
//	leakyfe -list
//	leakyfe -run all
//	leakyfe -run tableIII -bits 400
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	leaky "repro"
)

type experiment struct {
	name string
	desc string
	run  func(leaky.ExperimentOpts) string
}

func catalog() []experiment {
	return []experiment{
		{"tableI", "tested CPU models", func(leaky.ExperimentOpts) string { return leaky.TableI() }},
		{"figure2", "frontend path timing histogram", func(o leaky.ExperimentOpts) string { _, s := leaky.Figure2(o); return s }},
		{"figure4", "LCP mixed vs ordered issue", func(o leaky.ExperimentOpts) string { _, s := leaky.Figure4(o); return s }},
		{"tableII", "MT eviction channel by message pattern", func(o leaky.ExperimentOpts) string { _, s := leaky.TableII(o); return s }},
		{"tableIII", "covert-channel matrix", func(o leaky.ExperimentOpts) string { _, s := leaky.TableIII(o); return s }},
		{"tableIV", "slow-switch channel", func(o leaky.ExperimentOpts) string { _, s := leaky.TableIV(o); return s }},
		{"tableV", "power channels", func(o leaky.ExperimentOpts) string { _, s := leaky.TableV(o); return s }},
		{"tableVI", "SGX channels", func(o leaky.ExperimentOpts) string { _, s := leaky.TableVI(o); return s }},
		{"tableVII", "Spectre v1 L1 miss rates", func(o leaky.ExperimentOpts) string { _, s := leaky.TableVII(o); return s }},
		{"figure8", "MT eviction d sweep", func(o leaky.ExperimentOpts) string { _, s := leaky.Figure8(o); return s }},
		{"figure9", "per-path power histogram", func(o leaky.ExperimentOpts) string { _, s := leaky.Figure9(o); return s }},
		{"figure10", "microcode patch fingerprinting", func(o leaky.ExperimentOpts) string { _, s := leaky.Figure10(o); return s }},
		{"figure11", "CNN fingerprinting IPC traces", func(o leaky.ExperimentOpts) string { _, s := leaky.Figure11(o); return s }},
		{"figure12", "fingerprinting distances", func(o leaky.ExperimentOpts) string { _, _, s := leaky.Figure12(o); return s }},
	}
}

func main() {
	var (
		list = flag.Bool("list", false, "list experiments")
		run  = flag.String("run", "all", "experiment to run (or 'all')")
		bits = flag.Int("bits", 200, "covert-channel message length")
		seed = flag.Uint64("seed", 1, "deterministic seed")
	)
	flag.Parse()

	exps := catalog()
	if *list {
		for _, e := range exps {
			fmt.Printf("%-10s %s\n", e.name, e.desc)
		}
		return
	}
	o := leaky.ExperimentOpts{Bits: *bits, Seed: *seed}
	ran := 0
	for _, e := range exps {
		if *run != "all" && !strings.EqualFold(e.name, *run) {
			continue
		}
		fmt.Println(e.run(o))
		fmt.Println()
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *run)
		os.Exit(1)
	}
}
