// Command ucodescan demonstrates microcode patch fingerprinting
// (Section X): an unprivileged timing measurement reveals whether the
// machine runs the old (LSD-enabled) or new (LSD-disabled) microcode,
// and hence which CVEs remain unpatched.
package main

import (
	"flag"
	"fmt"

	leaky "repro"
	"repro/internal/cmdutil"
)

func main() {
	model := flag.String("model", "Gold 6226", "CPU model (Table I name)")
	seed := flag.Uint64("seed", 1, "measurement seed (0 means the default)")
	flag.Parse()

	m := cmdutil.MustModel(*model)
	for _, actual := range []leaky.MicrocodePatch{leaky.Patch1, leaky.Patch2} {
		detected := leaky.DetectMicrocode(m, actual, *seed)
		fmt.Printf("machine running %v\n", actual)
		fmt.Printf("  attacker detects: %v\n", detected)
		if detected == leaky.Patch1 {
			fmt.Println("  => VT-d escalation CVE-2021-24489 likely UNPATCHED on this host")
		} else {
			fmt.Println("  => newer microcode present; CVE-2021-24489 patched")
		}
	}
}
