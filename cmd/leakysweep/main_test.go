package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	leaky "repro"
)

// TestTraceOutputIsValidChromeTrace exercises the -trace path end to
// end: a real (small) sweep runs under a trace, writeTrace exports it,
// and the file on disk validates against the Chrome trace_event schema
// subset about:tracing and Perfetto require. It also pins the tracing
// discipline at the CLI level: the traced report is byte-identical to
// an untraced one.
func TestTraceOutputIsValidChromeTrace(t *testing.T) {
	f, err := leaky.ParseSweepFilter("mech=eviction,thread=nonmt,sink=timing,sgx=false,model=Xeon E-2174G")
	if err != nil {
		t.Fatal(err)
	}
	o := leaky.SweepOptions{Bits: 8, Seed: 1, MaxP: 2000, Workers: 2}

	plain, err := leaky.SweepCtx(context.Background(), f, o, nil)
	if err != nil {
		t.Fatal(err)
	}

	tr := leaky.NewTrace("leakysweep")
	report, err := leaky.SweepCtx(tr.Context(context.Background()), f, o, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr.Finish()
	if got, want := report.Render(), plain.Render(); got != want {
		t.Errorf("traced report differs from untraced:\n%s\nvs\n%s", got, want)
	}

	path := filepath.Join(t.TempDir(), "out.json")
	if err := writeTrace(path, tr); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if problems := leaky.ValidateChromeTrace(blob); len(problems) > 0 {
		t.Errorf("-trace output is not a valid Chrome trace: %v", problems)
	}
	// The profile must contain the simulation's own stages, not just a
	// root event. Calibration appears as the memo's cache-decision span
	// ("sweep.calibration", hit or miss); the nested "channel.calibrate"
	// stage only fires on misses, and the untraced sweep above has
	// already warmed the process-wide cache for these specs.
	for _, want := range []string{"sweep.spec", "channel.transmit", "sweep.calibration"} {
		if !strings.Contains(string(blob), want) {
			t.Errorf("-trace output missing %q span", want)
		}
	}
}

// TestStoreShareableAcrossRuns exercises -store at the API level the
// flag wires up: a first sweep populates the on-disk store, a second
// process (fresh store handle, same dir) sweeps the same shard entirely
// from disk — zero store misses, byte-identical report — and the store
// layout is the one leakyfed -cache-dir serves from.
func TestStoreShareableAcrossRuns(t *testing.T) {
	f, err := leaky.ParseSweepFilter("mech=eviction,thread=nonmt,sink=timing,sgx=false,model=Xeon E-2174G")
	if err != nil {
		t.Fatal(err)
	}
	o := leaky.SweepOptions{Bits: 8, Seed: 1, MaxP: 2000, Workers: 2}
	dir := t.TempDir()

	st1, err := leaky.OpenResultStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	first, err := leaky.SweepRunCtx(context.Background(), f, o, leaky.StoreSweepRunFunc(st1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if first.Completed != first.Specs || first.Specs == 0 {
		t.Fatalf("first sweep completed %d of %d specs", first.Completed, first.Specs)
	}
	if n := st1.Len(); n != first.Specs {
		t.Fatalf("store holds %d entries, want %d (one per spec)", n, first.Specs)
	}

	st2, err := leaky.OpenResultStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	second, err := leaky.SweepRunCtx(context.Background(), f, o, leaky.StoreSweepRunFunc(st2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := second.Render(), first.Render(); got != want {
		t.Errorf("second run differs from first:\n%s\nvs\n%s", got, want)
	}
	stats := st2.Stats()
	if stats.Misses != 0 || stats.Hits != uint64(first.Specs) {
		t.Errorf("second run hit/missed the store %d/%d times, want %d/0", stats.Hits, stats.Misses, first.Specs)
	}

	// And without the store the report is byte-identical too: -store is
	// a pure optimization, never a semantic change.
	plain, err := leaky.SweepCtx(context.Background(), f, o, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := plain.Render(), first.Render(); got != want {
		t.Errorf("store-backed report differs from plain sweep:\n%s\nvs\n%s", got, want)
	}
}
