package main

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	leaky "repro"
)

// TestTraceOutputIsValidChromeTrace exercises the -trace path end to
// end: a real (small) sweep runs under a trace, writeTrace exports it,
// and the file on disk validates against the Chrome trace_event schema
// subset about:tracing and Perfetto require. It also pins the tracing
// discipline at the CLI level: the traced report is byte-identical to
// an untraced one.
func TestTraceOutputIsValidChromeTrace(t *testing.T) {
	f, err := leaky.ParseSweepFilter("mech=eviction,thread=nonmt,sink=timing,sgx=false,model=Xeon E-2174G")
	if err != nil {
		t.Fatal(err)
	}
	o := leaky.SweepOptions{Bits: 8, Seed: 1, MaxP: 2000, Workers: 2}

	plain, err := leaky.SweepCtx(context.Background(), f, o, nil)
	if err != nil {
		t.Fatal(err)
	}

	tr := leaky.NewTrace("leakysweep")
	report, err := leaky.SweepCtx(tr.Context(context.Background()), f, o, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr.Finish()
	if got, want := report.Render(), plain.Render(); got != want {
		t.Errorf("traced report differs from untraced:\n%s\nvs\n%s", got, want)
	}

	path := filepath.Join(t.TempDir(), "out.json")
	if err := writeTrace(path, tr); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if problems := leaky.ValidateChromeTrace(blob); len(problems) > 0 {
		t.Errorf("-trace output is not a valid Chrome trace: %v", problems)
	}
	// The profile must contain the simulation's own stages, not just a
	// root event. Calibration appears as the memo's cache-decision span
	// ("sweep.calibration", hit or miss); the nested "channel.calibrate"
	// stage only fires on misses, and the untraced sweep above has
	// already warmed the process-wide cache for these specs.
	for _, want := range []string{"sweep.spec", "channel.transmit", "sweep.calibration"} {
		if !strings.Contains(string(blob), want) {
			t.Errorf("-trace output missing %q span", want)
		}
	}
}

// TestSIGINTPrintsOneReportAndExitsNonzero drives a real leakysweep
// process: it interrupts a running sweep (twice, back to back — the
// second signal lands while the first is being handled, exactly the
// render-time window the handler must survive) and requires the
// contract the package doc promises: exactly one report on stdout, a
// cancellation notice on stderr, and exit status 1. Before the fix, a
// SIGINT landing after the last spec completed exited 0, and a repeated
// SIGINT could kill the process mid-render.
func TestSIGINTPrintsOneReportAndExitsNonzero(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("POSIX signal semantics required")
	}
	bin := filepath.Join(t.TempDir(), "leakysweep")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building leakysweep: %v\n%s", err, out)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	// -progress reports each completed spec on stderr; the first line is
	// the deterministic "sweep is mid-flight" cue to interrupt on.
	cmd := exec.CommandContext(ctx, bin, "-progress", "-maxp", "2000", "-workers", "2")
	var stdout bytes.Buffer
	cmd.Stdout = &stdout
	stderrPipe, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(stderrPipe)
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatalf("no progress line before EOF: %v", err)
	}
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	rest, _ := io.ReadAll(br)
	err = cmd.Wait()

	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != 1 {
		t.Fatalf("exit = %v, want exit status 1\nstderr tail:\n%s", err, rest)
	}
	if got := strings.Count(stdout.String(), "sweep: filter="); got != 1 {
		t.Fatalf("%d reports printed, want exactly 1:\n%s", got, stdout.String())
	}
	stderrTail := string(rest)
	if !strings.Contains(stderrTail, "cancelled with") && !strings.Contains(stderrTail, "interrupted") {
		t.Errorf("stderr does not explain the failure status:\n%s", stderrTail)
	}
}

// TestStoreShareableAcrossRuns exercises -store at the API level the
// flag wires up: a first sweep populates the on-disk store, a second
// process (fresh store handle, same dir) sweeps the same shard entirely
// from disk — zero store misses, byte-identical report — and the store
// layout is the one leakyfed -cache-dir serves from.
func TestStoreShareableAcrossRuns(t *testing.T) {
	f, err := leaky.ParseSweepFilter("mech=eviction,thread=nonmt,sink=timing,sgx=false,model=Xeon E-2174G")
	if err != nil {
		t.Fatal(err)
	}
	o := leaky.SweepOptions{Bits: 8, Seed: 1, MaxP: 2000, Workers: 2}
	dir := t.TempDir()

	st1, err := leaky.OpenResultStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	first, err := leaky.SweepRunCtx(context.Background(), f, o, leaky.StoreSweepRunFunc(st1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if first.Completed != first.Specs || first.Specs == 0 {
		t.Fatalf("first sweep completed %d of %d specs", first.Completed, first.Specs)
	}
	if n := st1.Len(); n != first.Specs {
		t.Fatalf("store holds %d entries, want %d (one per spec)", n, first.Specs)
	}

	st2, err := leaky.OpenResultStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	second, err := leaky.SweepRunCtx(context.Background(), f, o, leaky.StoreSweepRunFunc(st2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := second.Render(), first.Render(); got != want {
		t.Errorf("second run differs from first:\n%s\nvs\n%s", got, want)
	}
	stats := st2.Stats()
	if stats.Misses != 0 || stats.Hits != uint64(first.Specs) {
		t.Errorf("second run hit/missed the store %d/%d times, want %d/0", stats.Hits, stats.Misses, first.Specs)
	}

	// And without the store the report is byte-identical too: -store is
	// a pure optimization, never a semantic change.
	plain, err := leaky.SweepCtx(context.Background(), f, o, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := plain.Render(), first.Render(); got != want {
		t.Errorf("store-backed report differs from plain sweep:\n%s\nvs\n%s", got, want)
	}
}
