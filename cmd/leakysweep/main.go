// Command leakysweep executes a whole shard of the covert-channel
// scenario space in one invocation: a filter query selects scenarios
// from the enumerated space, a bounded worker pool transmits them, and
// the aggregated report — per-spec rows plus per-variant min/mean/max
// matrices — prints as text or JSON. Per-spec seeds are split
// deterministically from -seed, so the report bytes are identical for
// every -workers value.
//
// Usage:
//
//	leakysweep                                    # the whole valid space
//	leakysweep -filter 'mech=eviction,thread=mt'  # one slice of it
//	leakysweep -filter 'model=xeon*,sgx=true' -bits 64 -workers 8
//	leakysweep -maxp 2000 -calib 6                # reduced-scale full space
//	leakysweep -list                              # print the shard, run nothing
//	leakysweep -json -progress                    # report JSON, progress on stderr
//	leakysweep -advisory "Gold 6226" -maxp 2000   # render the model's security advisory
//	leakysweep -trace sweep.json                  # also write a Chrome trace_event profile
//	leakysweep -store /var/lib/leakyfed           # share the daemon's on-disk result store
//
// -store layers the persistent result store leakyfed uses for
// -cache-dir under the sweep: specs already on disk are served without
// simulating, and every simulated spec is written through — so CLI
// sweeps warm (and are warmed by) the same store the daemon serves
// from. The report bytes are identical with or without -store.
//
// The filter grammar is comma-separated key=value clauses: globs for
// model/mech/thread/sink (case-insensitive), true|false for
// sgx/stealthy/contended, and single values or inclusive lo..hi ranges
// for d/m/p. An empty filter sweeps everything.
//
// Ctrl-C stops the sweep gracefully: in-flight transmissions unwind at
// their next checkpoint, the partial report (completed rows intact,
// the rest marked) still prints, and the exit status is 1. Exactly one
// report prints no matter when the signal lands: the handler stays
// registered through the render, so a late or repeated SIGINT cannot
// kill the process mid-report, and an interrupt that arrives after the
// last spec completed still exits 1.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	leaky "repro"
)

func main() {
	var (
		filter   = flag.String("filter", "", "sweep query (empty = the whole valid space)")
		workers  = flag.Int("workers", runtime.NumCPU(), "specs transmitting concurrently (never changes the report bytes)")
		bits     = flag.Int("bits", 0, "message bits per spec (0 = the default 200)")
		seed     = flag.Uint64("seed", 1, "base seed; per-spec seeds are split from it")
		calib    = flag.Int("calib", 0, "calibration-preamble override (0 = per-spec default)")
		maxp     = flag.Int("maxp", 0, "clamp every spec's p parameter (0 = spec defaults); e.g. 2000 makes a full-space sweep finish in seconds")
		jsonOut  = flag.Bool("json", false, "print the report as JSON instead of text")
		progress = flag.Bool("progress", false, "print per-spec completions on stderr as they land")
		list     = flag.Bool("list", false, "print the expanded shard and exit without running")
		advisory = flag.String("advisory", "", "sweep the named model across every defense and render its security advisory (overrides -filter)")
		traceOut = flag.String("trace", "", "write a Chrome trace_event profile of the sweep to this file (load in about:tracing or ui.perfetto.dev)")
		storeDir = flag.String("store", "", "read and warm the persistent result store at this directory (the same layout leakyfed -cache-dir uses)")
	)
	flag.Parse()

	f, err := leaky.ParseSweepFilter(*filter)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var advModel leaky.Model
	if *advisory != "" {
		m, ok := leaky.ModelByName(*advisory)
		if !ok {
			fmt.Fprintf(os.Stderr, "leakysweep: unknown model %q (Table I names)\n", *advisory)
			os.Exit(2)
		}
		advModel, f = m, leaky.AdvisorySweepFilter(m)
	}
	o := leaky.SweepOptions{Bits: *bits, Seed: *seed, CalibBits: *calib, MaxP: *maxp, Workers: *workers}
	if *list {
		specs, err := leaky.ExpandSweep(f, o)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Printf("%d specs in shard %q:\n", len(specs), f.String())
		for _, cs := range specs {
			fmt.Println(" ", cs)
		}
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// The trace records per-spec and per-stage wall-clock spans; it never
	// changes the report bytes (tracing is timing-only by design).
	var tr *leaky.Trace
	if *traceOut != "" {
		tr = leaky.NewTrace("leakysweep")
		ctx = tr.Context(ctx)
	}
	var emit func(leaky.SweepRow)
	done := 0
	if *progress {
		emit = func(row leaky.SweepRow) {
			done++
			status := fmt.Sprintf("rate=%.2f Kbps err=%.2f%%", row.RateKbps, 100*row.ErrorRate)
			if row.Err != "" {
				status = row.Err
			}
			fmt.Fprintf(os.Stderr, "[%d] %s  %s\n", done, row.Canonical, status)
		}
	}
	var run leaky.SweepRunFunc
	if *storeDir != "" {
		st, err := leaky.OpenResultStore(*storeDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		run = leaky.StoreSweepRunFunc(st)
	}
	report, err := leaky.SweepRunCtx(ctx, f, o, run, emit)
	// Latch the interrupt before rendering anything: a SIGINT that lands
	// after the last spec finishes (or during the render itself) must
	// still turn into exit status 1, and the NotifyContext registration
	// stays in place until exit so a second SIGINT cannot kill the
	// process halfway through the single report below.
	interrupted := ctx.Err() != nil
	if tr != nil {
		tr.Finish()
		if werr := writeTrace(*traceOut, tr); werr != nil {
			fmt.Fprintln(os.Stderr, werr)
			os.Exit(2)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *advisory != "" {
		if report.Completed < report.Specs {
			fmt.Fprintf(os.Stderr, "leakysweep: cancelled with %d of %d specs incomplete; no advisory\n",
				report.Specs-report.Completed, report.Specs)
			os.Exit(1)
		}
		adv, err := leaky.NewAdvisory(report, advModel)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if *jsonOut {
			blob, err := json.MarshalIndent(adv, "", "  ")
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			fmt.Printf("%s\n", blob)
		} else {
			fmt.Print(adv.Render())
		}
		if interrupted {
			exitInterrupted()
		}
		return
	}
	if *jsonOut {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Printf("%s\n", blob)
	} else {
		fmt.Print(report.Render())
	}
	if report.Completed < report.Specs {
		fmt.Fprintf(os.Stderr, "leakysweep: cancelled with %d of %d specs incomplete\n",
			report.Specs-report.Completed, report.Specs)
		os.Exit(1)
	}
	if interrupted {
		exitInterrupted()
	}
}

// exitInterrupted reports an interrupt that arrived too late to cancel
// any work — after the last spec completed, possibly mid-render. The
// report already printed is complete, but the run was still interrupted
// and scripts must see a failure status.
func exitInterrupted() {
	fmt.Fprintln(os.Stderr, "leakysweep: interrupted (report is complete)")
	os.Exit(1)
}

// writeTrace exports the finished trace as Chrome trace_event JSON.
func writeTrace(path string, tr *leaky.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("leakysweep: %v", err)
	}
	if err := leaky.WriteChromeTrace(f, tr); err != nil {
		f.Close()
		return fmt.Errorf("leakysweep: writing trace: %v", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("leakysweep: writing trace: %v", err)
	}
	return nil
}
