// Command leakfuzz runs one coverage-guided leakage-fuzzing campaign
// against the simulated frontend's leakage contract. It mutates
// secret-pair genomes, executes both arms on private simulator cores,
// and reports every contract divergence as a minimized, classified
// counterexample. Campaigns are deterministic: the same -model, -seed
// and -budget always produce the same report bytes.
//
// Usage:
//
//	leakfuzz                                       # default smoke campaign
//	leakfuzz -seed 1 -budget 2000 -expect eviction,misalignment,slowswitch
//	leakfuzz -json                                 # full report as JSON
//	leakfuzz -corpus ./corpus                      # persist/reload the corpus
//
// -expect names the mechanisms the campaign must rediscover,
// comma-separated. The exit status is 1 if any expected mechanism is
// missing from the findings, or if any finding is unclassified
// ("unknown") — an unknown counterexample on the default model is
// either a simulator regression or a new channel, and both deserve a
// red build. Without -expect only unclassified findings fail the run.
//
// -corpus points at a directory of genome JSON files: every *.json in
// it seeds the campaign, and the final coverage-increasing corpus is
// written back (content-addressed, so reruns are idempotent).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"

	leaky "repro"
	"repro/internal/cmdutil"
)

func main() {
	var (
		model   = flag.String("model", "Gold 6226", "simulated CPU (Table I name)")
		seed    = flag.Uint64("seed", 1, "campaign seed; same seed and budget reproduce the same report")
		budget  = flag.Int("budget", 2000, "candidate evaluations to spend (execution count, not wall time)")
		corpus  = flag.String("corpus", "", "directory of genome JSON files to seed from and write the final corpus to")
		jsonOut = flag.Bool("json", false, "print the report as JSON instead of text")
		expect  = flag.String("expect", "", "comma-separated mechanisms that must be rediscovered (exit 1 otherwise)")
	)
	flag.Parse()

	m, err := cmdutil.ResolveModel(*model)
	if err != nil {
		fmt.Fprintln(os.Stderr, "leakfuzz:", err)
		os.Exit(2)
	}

	opts := leaky.LeakFuzzOptions{Model: m, Seed: *seed, Budget: *budget}
	if *corpus != "" {
		opts.Extra, err = loadCorpus(*corpus)
		if err != nil {
			fmt.Fprintln(os.Stderr, "leakfuzz:", err)
			os.Exit(2)
		}
	}

	report := leaky.LeakFuzz(opts)

	if *corpus != "" {
		if err := saveCorpus(*corpus, report.Corpus); err != nil {
			fmt.Fprintln(os.Stderr, "leakfuzz:", err)
			os.Exit(2)
		}
	}

	if *jsonOut {
		b, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "leakfuzz:", err)
			os.Exit(2)
		}
		fmt.Println(string(b))
	} else {
		render(report)
	}

	if !verdict(report, *expect) {
		os.Exit(1)
	}
}

// verdict decides the exit status: every expected mechanism present,
// and no unclassified counterexamples. Problems print to stderr so the
// JSON report stays clean on stdout.
func verdict(r leaky.LeakFuzzReport, expect string) bool {
	found := map[string]bool{}
	ok := true
	for _, f := range r.Findings {
		found[string(f.Mechanism)] = true
		if f.Mechanism == leaky.LeakMechanism("unknown") {
			fmt.Fprintf(os.Stderr, "leakfuzz: unclassified counterexample at execution %d: %s\n",
				f.Executions, f.Divergence)
			ok = false
		}
	}
	if expect != "" {
		for _, want := range strings.Split(expect, ",") {
			want = strings.TrimSpace(want)
			if want == "" {
				continue
			}
			if !found[want] {
				fmt.Fprintf(os.Stderr, "leakfuzz: expected mechanism %q not rediscovered (found: %s)\n",
					want, strings.Join(r.Mechanisms(), ", "))
				ok = false
			}
		}
	}
	return ok
}

func render(r leaky.LeakFuzzReport) {
	fmt.Printf("leakfuzz: model %q seed %d budget %d\n", r.Model, r.Seed, r.Budget)
	fmt.Printf("  executions %d, corpus %d, coverage features %d\n",
		r.Executions, r.CorpusSize, r.Features)
	if len(r.Findings) == 0 {
		fmt.Println("  no leakage counterexamples")
		return
	}
	for _, f := range r.Findings {
		fmt.Printf("  [%s] at execution %d: %s\n", f.Mechanism, f.Executions, f.Divergence)
		g, err := json.Marshal(f.Genome)
		if err != nil {
			g = []byte(fmt.Sprintf("marshal: %v", err))
		}
		fmt.Printf("    genome %s\n", g)
		if f.Spec != nil {
			fmt.Printf("    spec   %s\n", f.Spec)
		}
	}
}

// loadCorpus reads every *.json genome in dir as extra campaign seeds,
// in sorted name order so the campaign stays deterministic.
func loadCorpus(dir string) ([]leaky.LeakGenome, error) {
	names, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	var out []leaky.LeakGenome
	for _, name := range names {
		b, err := os.ReadFile(name)
		if err != nil {
			return nil, err
		}
		var g leaky.LeakGenome
		if err := json.Unmarshal(b, &g); err != nil {
			return nil, fmt.Errorf("corpus %s: %w", name, err)
		}
		out = append(out, g)
	}
	return out, nil
}

// saveCorpus writes the final corpus back to dir, one content-addressed
// file per genome, creating the directory if needed.
func saveCorpus(dir string, corpus []leaky.LeakGenome) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, g := range corpus {
		b, err := json.Marshal(g)
		if err != nil {
			return err
		}
		h := fnv.New64a()
		h.Write(b)
		name := filepath.Join(dir, fmt.Sprintf("%016x.json", h.Sum64()))
		if err := os.WriteFile(name, b, 0o644); err != nil {
			return err
		}
	}
	return nil
}
