// Command fingerprint demonstrates the application-fingerprinting side
// channel (Section XI): it records reference IPC traces for the CNN
// victims, then classifies fresh observations.
package main

import (
	"flag"
	"fmt"

	leaky "repro"
	"repro/internal/cmdutil"
)

func main() {
	seed := flag.Uint64("seed", 42, "deterministic seed")
	model := flag.String("model", "Gold 6226", "CPU model (Table I name)")
	flag.Parse()

	m := cmdutil.MustModel(*model)
	suite := leaky.CNNWorkloads()

	fmt.Println("recording reference traces (attacker nop-loop IPC at 10 Hz)...")
	refs := make([][]float64, len(suite))
	for i, w := range suite {
		refs[i] = leaky.FingerprintTrace(m, w, *seed+uint64(i))
		fmt.Printf("  %-12s %d samples\n", w.Name, len(refs[i]))
	}

	fmt.Println("\nclassifying fresh victim runs:")
	correct := 0
	for i, w := range suite {
		obs := leaky.FingerprintTrace(m, w, *seed+1000+uint64(i))
		got := leaky.ClassifyTrace(obs, refs)
		status := "MISS"
		if got == i {
			status = "ok"
			correct++
		}
		fmt.Printf("  victim %-12s -> classified %-12s [%s]\n", w.Name, suite[got].Name, status)
	}
	fmt.Printf("\n%d/%d victims identified through the frontend side channel\n", correct, len(suite))
}
