// Command benchdiff compares two `go test -json -bench` result files
// and reports per-benchmark ns/op and allocs/op deltas, so CI can track
// the perf trajectory across runs. Time is warn-only by default — smoke
// benchmarks at -benchtime=1x are too noisy to gate on — and exits
// non-zero only when -fail-over (ns/op) or -fail-allocs-over (allocs/op,
// which is deterministic and therefore gateable at a tight threshold)
// is set and some regression exceeds it. Improvements are reported too:
// the table is sorted worst-regression-first, best-improvement-last, so
// both ends of the trajectory are visible at a glance.
//
// Usage:
//
//	benchdiff -old .github/bench/BENCH_baseline.json -new BENCH_ci.json
//	benchdiff -old old.json -new new.json -warn-over 50 -fail-over 300 -fail-allocs-over 10
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// event is the subset of the go-test-json stream benchdiff reads.
type event struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Test    string `json:"Test"`
	Output  string `json:"Output"`
}

// metrics is one benchmark's measurements. Allocs is -1 when the run
// lacked -benchmem, so "absent" never compares equal to "zero allocs".
type metrics struct {
	Ns     float64
	Allocs float64
}

var (
	nsPerOp     = regexp.MustCompile(`(?:^|\s)([0-9.]+) ns/op`)
	allocsPerOp = regexp.MustCompile(`(?:^|\s)([0-9]+) allocs/op`)
)

// load extracts pkg.benchmark -> metrics from one result file. A
// benchmark reported more than once keeps its last value.
func load(path string) (map[string]metrics, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]metrics{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			continue // tolerate non-JSON noise (build output, teed text)
		}
		if ev.Action != "output" || ev.Test == "" {
			continue
		}
		m := nsPerOp.FindStringSubmatch(ev.Output)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[1], 64)
		if err != nil {
			continue
		}
		cur := metrics{Ns: ns, Allocs: -1}
		if am := allocsPerOp.FindStringSubmatch(ev.Output); am != nil {
			if av, err := strconv.ParseFloat(am[1], 64); err == nil {
				cur.Allocs = av
			}
		}
		out[ev.Package+"."+ev.Test] = cur
	}
	return out, sc.Err()
}

// pctDelta is the percentage change from old to new; 0 when old is not
// positive (nothing meaningful to normalize by).
func pctDelta(oldV, newV float64) float64 {
	if oldV <= 0 {
		return 0
	}
	return (newV - oldV) / oldV * 100
}

// row is one comparable benchmark, carrying both metric deltas.
type row struct {
	name             string
	oldNs, newNs     float64
	nsDelta          float64
	oldAllocs        float64 // -1 when the baseline lacked -benchmem
	newAllocs        float64
	allocDelta       float64
	allocsComparable bool
}

func fmtAllocs(v float64) string {
	if v < 0 {
		return "-"
	}
	return strconv.FormatFloat(v, 'f', 0, 64)
}

func main() {
	var (
		oldPath        = flag.String("old", "", "baseline go-test-json bench results")
		newPath        = flag.String("new", "", "current go-test-json bench results")
		warnOver       = flag.Float64("warn-over", 50, "flag benchmarks whose ns/op moved more than this percentage")
		failOver       = flag.Float64("fail-over", 0, "exit 1 when a ns/op regression exceeds this percentage (0 = never fail)")
		failAllocsOver = flag.Float64("fail-allocs-over", 0, "exit 1 when an allocs/op regression exceeds this percentage (0 = never fail)")
	)
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -old and -new are required")
		os.Exit(2)
	}
	oldRes, err := load(*oldPath)
	if err != nil {
		// A missing baseline is the bootstrap state, not an error: report
		// and succeed so the job that archives the new results still runs.
		fmt.Printf("benchdiff: no usable baseline (%v); nothing to compare\n", err)
		return
	}
	newRes, err := load(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: reading new results: %v\n", err)
		os.Exit(2)
	}

	var rows []row
	var added []string
	for name, nv := range newRes {
		ov, ok := oldRes[name]
		if !ok {
			added = append(added, name)
			continue
		}
		r := row{
			name: name, oldNs: ov.Ns, newNs: nv.Ns,
			nsDelta:   pctDelta(ov.Ns, nv.Ns),
			oldAllocs: ov.Allocs, newAllocs: nv.Allocs,
		}
		if ov.Allocs >= 0 && nv.Allocs >= 0 {
			r.allocsComparable = true
			r.allocDelta = pctDelta(ov.Allocs, nv.Allocs)
		}
		rows = append(rows, r)
	}
	// Worst time regression first, best improvement last; ties (and the
	// all-zero case) fall back to name so the table stays deterministic.
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].nsDelta != rows[j].nsDelta {
			return rows[i].nsDelta > rows[j].nsDelta
		}
		return rows[i].name < rows[j].name
	})
	sort.Strings(added)

	fmt.Printf("%-64s %14s %14s %9s %12s %12s %9s\n",
		"benchmark", "old ns/op", "new ns/op", "ns Δ", "old allocs", "new allocs", "allocs Δ")
	regressed, improved := 0, 0
	failed := false
	for _, r := range rows {
		mark := ""
		switch {
		case *failOver > 0 && r.nsDelta >= *failOver:
			mark = "  <-- TIME REGRESSION"
			failed = true
			regressed++
		case r.nsDelta >= *warnOver:
			mark = "  <-- regressed"
			regressed++
		case -r.nsDelta >= *warnOver:
			mark = "  <-- improved"
			improved++
		}
		if r.allocsComparable && *failAllocsOver > 0 && r.allocDelta >= *failAllocsOver {
			mark += "  <-- ALLOC REGRESSION"
			failed = true
		}
		fmt.Printf("%-64s %14.0f %14.0f %+8.1f%% %12s %12s %+8.1f%%%s\n",
			r.name, r.oldNs, r.newNs, r.nsDelta,
			fmtAllocs(r.oldAllocs), fmtAllocs(r.newAllocs), r.allocDelta, mark)
	}
	for _, name := range added {
		nv := newRes[name]
		fmt.Printf("%-64s %14s %14.0f %9s %12s %12s %9s\n",
			name, "-", nv.Ns, "new", "-", fmtAllocs(nv.Allocs), "")
	}
	removed := 0
	for name, ov := range oldRes {
		if _, ok := newRes[name]; !ok {
			fmt.Printf("%-64s %14.0f %14s %9s %12s %12s %9s\n",
				name, ov.Ns, "-", "gone", fmtAllocs(ov.Allocs), "-", "")
			removed++
		}
	}
	best := 0.0
	for _, r := range rows {
		best = math.Min(best, r.nsDelta)
	}
	fmt.Printf("\n%d benchmarks compared: %d regressed beyond %.0f%%, %d improved beyond %.0f%% (best %+.1f%%), %d new, %d removed\n",
		len(rows), regressed, *warnOver, improved, *warnOver, best, len(added), removed)
	if failed {
		os.Exit(1)
	}
}
