// Command benchdiff compares two `go test -json -bench` result files
// and reports per-benchmark ns/op deltas, so CI can track the perf
// trajectory across runs. It is warn-only by default — smoke benchmarks
// at -benchtime=1x are too noisy to gate on — and exits non-zero only
// when -fail-over is set and some regression exceeds it.
//
// Usage:
//
//	benchdiff -old .github/bench/BENCH_baseline.json -new BENCH_ci.json
//	benchdiff -old old.json -new new.json -warn-over 50 -fail-over 300
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// event is the subset of the go-test-json stream benchdiff reads.
type event struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Test    string `json:"Test"`
	Output  string `json:"Output"`
}

var nsPerOp = regexp.MustCompile(`(?:^|\s)([0-9.]+) ns/op`)

// load extracts pkg.benchmark -> ns/op from one result file. A
// benchmark reported more than once keeps its last value.
func load(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]float64{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			continue // tolerate non-JSON noise (build output, teed text)
		}
		if ev.Action != "output" || ev.Test == "" {
			continue
		}
		m := nsPerOp.FindStringSubmatch(ev.Output)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[1], 64)
		if err != nil {
			continue
		}
		out[ev.Package+"."+ev.Test] = ns
	}
	return out, sc.Err()
}

func main() {
	var (
		oldPath  = flag.String("old", "", "baseline go-test-json bench results")
		newPath  = flag.String("new", "", "current go-test-json bench results")
		warnOver = flag.Float64("warn-over", 50, "flag benchmarks whose ns/op moved more than this percentage")
		failOver = flag.Float64("fail-over", 0, "exit 1 when a regression exceeds this percentage (0 = never fail)")
	)
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -old and -new are required")
		os.Exit(2)
	}
	oldRes, err := load(*oldPath)
	if err != nil {
		// A missing baseline is the bootstrap state, not an error: report
		// and succeed so the job that archives the new results still runs.
		fmt.Printf("benchdiff: no usable baseline (%v); nothing to compare\n", err)
		return
	}
	newRes, err := load(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: reading new results: %v\n", err)
		os.Exit(2)
	}

	names := make([]string, 0, len(newRes))
	for name := range newRes {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Printf("%-64s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	flagged, failed := 0, false
	for _, name := range names {
		nv := newRes[name]
		ov, ok := oldRes[name]
		if !ok {
			fmt.Printf("%-64s %14s %14.0f %9s\n", name, "-", nv, "new")
			continue
		}
		delta := 0.0
		if ov > 0 {
			delta = (nv - ov) / ov * 100
		}
		mark := ""
		if delta >= *warnOver || -delta >= *warnOver {
			mark = "  <-- moved"
			flagged++
		}
		if *failOver > 0 && delta >= *failOver {
			mark = "  <-- REGRESSION"
			failed = true
		}
		fmt.Printf("%-64s %14.0f %14.0f %+8.1f%%%s\n", name, ov, nv, delta, mark)
	}
	removed := 0
	for name := range oldRes {
		if _, ok := newRes[name]; !ok {
			fmt.Printf("%-64s %14.0f %14s %9s\n", name, oldRes[name], "-", "gone")
			removed++
		}
	}
	fmt.Printf("\n%d benchmarks compared, %d moved beyond %.0f%%, %d removed\n",
		len(names), flagged, *warnOver, removed)
	if failed {
		os.Exit(1)
	}
}
