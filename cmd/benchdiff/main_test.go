package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLoadExtractsMetrics(t *testing.T) {
	blob := `{"Action":"output","Package":"repro","Test":"BenchmarkA","Output":"BenchmarkA \t 1\t 67997 ns/op\n"}
{"Action":"output","Package":"repro","Test":"BenchmarkB","Output":"       1\t  49887180 ns/op\t       153.1 DSB-cycles\n"}
{"Action":"output","Package":"repro","Test":"BenchmarkB","Output":"no metric here\n"}
{"Action":"output","Package":"repro","Test":"BenchmarkC","Output":"BenchmarkC-8 \t 100\t 2150 ns/op\t 512 B/op\t 4 allocs/op\n"}
{"Action":"run","Package":"repro","Test":"BenchmarkD"}
not json at all
{"Action":"output","Package":"repro","Output":"PASS\n"}
`
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte(blob), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := load(path)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]metrics{
		"repro.BenchmarkA": {Ns: 67997, Allocs: -1},
		"repro.BenchmarkB": {Ns: 49887180, Allocs: -1},
		"repro.BenchmarkC": {Ns: 2150, Allocs: 4},
	}
	if len(got) != len(want) {
		t.Fatalf("loaded %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s = %+v, want %+v", k, got[k], v)
		}
	}
}

func TestPctDelta(t *testing.T) {
	if d := pctDelta(100, 150); d != 50 {
		t.Errorf("pctDelta(100,150) = %v, want 50", d)
	}
	if d := pctDelta(200, 100); d != -50 {
		t.Errorf("pctDelta(200,100) = %v, want -50", d)
	}
	if d := pctDelta(0, 100); d != 0 {
		t.Errorf("pctDelta(0,100) = %v, want 0 (no baseline to normalize by)", d)
	}
}

func TestLoadOfCommittedBaseline(t *testing.T) {
	res, err := load("../../BENCH_baseline.json")
	if err != nil {
		t.Fatalf("committed baseline unreadable: %v", err)
	}
	if len(res) == 0 {
		t.Fatal("committed baseline holds no benchmarks; the CI compare step would be vacuous")
	}
	withAllocs := 0
	for _, m := range res {
		if m.Allocs >= 0 {
			withAllocs++
		}
	}
	if withAllocs == 0 {
		t.Fatal("committed baseline has no allocs/op values; the CI alloc gate would be vacuous")
	}
}
