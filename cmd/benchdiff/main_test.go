package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLoadExtractsNsPerOp(t *testing.T) {
	blob := `{"Action":"output","Package":"repro","Test":"BenchmarkA","Output":"BenchmarkA \t 1\t 67997 ns/op\n"}
{"Action":"output","Package":"repro","Test":"BenchmarkB","Output":"       1\t  49887180 ns/op\t       153.1 DSB-cycles\n"}
{"Action":"output","Package":"repro","Test":"BenchmarkB","Output":"no metric here\n"}
{"Action":"run","Package":"repro","Test":"BenchmarkC"}
not json at all
{"Action":"output","Package":"repro","Output":"PASS\n"}
`
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte(blob), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := load(path)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"repro.BenchmarkA": 67997,
		"repro.BenchmarkB": 49887180,
	}
	if len(got) != len(want) {
		t.Fatalf("loaded %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s = %v, want %v", k, got[k], v)
		}
	}
}

func TestLoadOfCommittedBaseline(t *testing.T) {
	res, err := load("../../BENCH_baseline.json")
	if err != nil {
		t.Fatalf("committed baseline unreadable: %v", err)
	}
	if len(res) == 0 {
		t.Fatal("committed baseline holds no benchmarks; the CI compare step would be vacuous")
	}
}
