// Command leakyfed is the artifact-serving daemon: it serves every
// table and figure of the paper's evaluation over HTTP, with a
// deterministic result cache (runs are pure functions of artifact name
// and options, so results are cached forever), singleflight collapsing
// of concurrent identical requests, and a bounded job queue that pushes
// back with 429 under overload.
//
// Usage:
//
//	leakyfed -addr :8080 -workers 4 -cache-size 1024 -default-seed 1
//	leakyfed -cancel-abandoned   # free slots when the last waiter leaves
//	leakyfed -pprof localhost:6060 -log-format json
//	leakyfed -cache-dir /var/lib/leakyfed          # persist results across restarts
//	leakyfed -cache-dir d -precompute -filter 'mech=eviction' -maxp 2000
//	leakyfed -fleet http://w1:8080,http://w2:8080  # sweep coordinator over workers
//
// With -cache-dir every result also persists to disk (one file per
// canonical cache key, atomic writes, corrupt files quarantined), so a
// restarted daemon serves byte-identical responses with zero
// simulations. -precompute materializes the -filter shard of the
// scenario space into the store and exits instead of serving. -fleet
// turns the daemon into a sweep coordinator: POST /v1/sweeps
// consistent-hashes the shard's specs across the worker URLs, merges
// their rows, and degrades gracefully when workers die.
//
// Simulations are cancellable: shutdown (SIGINT/SIGTERM) cancels every
// in-flight run at its next cooperative checkpoint before draining
// connections, and with -cancel-abandoned an uncached run is also
// cancelled as soon as its last HTTP waiter disconnects, instead of
// finishing to warm the cache.
//
// Endpoints:
//
//	GET /v1/artifacts                 catalog
//	GET /v1/artifacts/{name}          one result (?format=json|text, ?seed=, ?bits=, ?samples=)
//	GET /v1/run?sel=table*            NDJSON stream in catalog order (?progress=1 interleaves progress events)
//	GET /v1/channels                  the valid covert-channel scenario space (?filter= narrows
//	                                  with the sweep grammar; ?model= remains as an alias)
//	POST /v1/channels/run             run one declared scenario: {"spec": {...}, "opts": {...}};
//	                                  invalid specs fail 400 before consuming a slot, results
//	                                  cache forever under the spec's canonical key
//	POST /v1/sweeps                   run a whole shard of the space: {"filter": "...", "opts":
//	                                  {...}, "calib": n, "maxp": n}; NDJSON per-spec rows in
//	                                  canonical order plus a final {"report": ...} aggregate,
//	                                  cache-shared and singleflight-deduped with /v1/channels/run
//	GET /v1/traces                    retained ?trace=1 request traces; /v1/traces/{id}
//	                                  serves one (?format=json|ndjson|chrome)
//	GET /healthz                      liveness; 503 when the job queue stays full
//	GET /metrics                      Prometheus text counters and latency histograms
//
// Observability: every request gets an X-Request-Id and one structured
// log line (-log-format text|json; WARN for 4xx/5xx); ?trace=1 on
// /v1/run and /v1/sweeps interleaves span lines into the NDJSON stream
// and retains the trace for /v1/traces/{id}; -pprof exposes
// net/http/pprof on a separate listener so profiling endpoints never
// share the public address.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	leaky "repro"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", runtime.NumCPU(), "max artifact simulations in flight")
		queue     = flag.Int("queue", 0, "max admitted jobs (waiting+running); 0 means 4x workers")
		cacheSize = flag.Int("cache-size", 1024, "max cached results (LRU eviction)")
		seed      = flag.Uint64("default-seed", 1, "seed used when a request does not pass ?seed=")
		bits      = flag.Int("default-bits", 200, "bits used when a request does not pass ?bits=")
		samples   = flag.Int("default-samples", 100, "samples used when a request does not pass ?samples=")
		timeout   = flag.Duration("timeout", 2*time.Minute, "per-request wait bound (timed-out runs still warm the cache unless -cancel-abandoned)")
		cancelAb  = flag.Bool("cancel-abandoned", false, "cancel an uncached run once its last HTTP waiter disconnects, freeing its worker slot immediately")
		logFormat = flag.String("log-format", "text", "request log format on stderr: text|json")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this separate address (e.g. localhost:6060); empty disables profiling")
		traceBuf  = flag.Int("trace-buffer", 32, "how many completed ?trace=1 request traces GET /v1/traces retains")
		cacheDir  = flag.String("cache-dir", "", "persist results to this directory (read-through/write-through under the LRU); empty disables persistence")
		fleetURLs = flag.String("fleet", "", "comma-separated worker base URLs (http://host:port); makes this daemon a sweep coordinator that scatters POST /v1/sweeps across them")
		precomp   = flag.Bool("precompute", false, "materialize the -filter shard of the scenario space into -cache-dir, then exit instead of serving")
		pcFilter  = flag.String("filter", "", "sweep filter for -precompute (empty = the whole valid space)")
		pcCalib   = flag.Int("calib", 0, "calibration-preamble override for -precompute (0 = per-spec default)")
		pcMaxP    = flag.Int("maxp", 0, "clamp every spec's p parameter for -precompute (0 = spec defaults)")
	)
	flag.Parse()

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "leakyfed: bad -log-format %q: want text|json\n", *logFormat)
		os.Exit(2)
	}
	logger := slog.New(handler)

	var st *leaky.ResultStore
	if *cacheDir != "" {
		var err error
		if st, err = leaky.OpenResultStore(*cacheDir); err != nil {
			fmt.Fprintf(os.Stderr, "leakyfed: %v\n", err)
			os.Exit(2)
		}
	}
	var coord *leaky.FleetCoordinator
	if *fleetURLs != "" {
		var err error
		if coord, err = leaky.NewFleetCoordinator(strings.Split(*fleetURLs, ","), nil); err != nil {
			fmt.Fprintf(os.Stderr, "leakyfed: %v\n", err)
			os.Exit(2)
		}
	}

	srv := leaky.NewServer(leaky.ServeConfig{
		Opts:            leaky.ExperimentOpts{Bits: *bits, Seed: *seed, Samples: *samples},
		Workers:         *workers,
		QueueDepth:      *queue,
		CacheSize:       *cacheSize,
		Timeout:         *timeout,
		CancelAbandoned: *cancelAb,
		Logger:          logger,
		TraceBuffer:     *traceBuf,
		Store:           st,
		Fleet:           coord,
	})

	if *precomp {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		report, err := srv.Precompute(ctx, *pcFilter, *pcCalib, *pcMaxP)
		srv.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "leakyfed: precompute: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("leakyfed: precomputed %d of %d specs into %s\n",
			report.Completed, report.Specs, *cacheDir)
		if report.Completed < report.Specs {
			os.Exit(1)
		}
		return
	}
	hs := &http.Server{
		Addr:    *addr,
		Handler: srv.Handler(),
		// Slow-header and idle connections must not pin goroutines/fds
		// forever on a public-facing daemon; response writes stay
		// unbounded because /v1/run streams for as long as it simulates.
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	// Profiling listens on its own mux and address: pprof endpoints are
	// operator-only and must never ride the public API listener.
	if *pprofAddr != "" {
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		ps := &http.Server{Addr: *pprofAddr, Handler: pmux, ReadHeaderTimeout: 5 * time.Second}
		defer ps.Close()
		go func() {
			if err := ps.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Warn("pprof listener failed", slog.String("addr", *pprofAddr), slog.String("err", err.Error()))
			}
		}()
		fmt.Printf("leakyfed pprof on %s\n", *pprofAddr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Printf("leakyfed listening on %s (%d workers, cache %d)\n", *addr, *workers, *cacheSize)

	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "leakyfed: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	// Cancel in-flight simulations first so draining is not stuck
	// behind runs nobody will be around to read, then drain connections.
	srv.Close()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "leakyfed: shutdown: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("leakyfed: drained, bye")
}
