// Command fesim drives the frontend simulator directly: it lays out a
// chain of instruction mix blocks with chosen count, DSB set, alignment,
// and LSD state, runs it, and reports which paths delivered the micro-ops
// and at what cost. It is the exploration tool behind the paper's
// Section IV reverse engineering — use it to see for yourself where the
// LSD stops locking or the DSB starts thrashing.
//
// Examples:
//
//	fesim -blocks 8                 # fits LSD and one DSB set
//	fesim -blocks 9                 # 9th way: DSB evictions, MITE fallback
//	fesim -blocks 8 -misaligned 3   # misalignment collapses the LSD
//	fesim -blocks 8 -lsd=false      # the DSB path alone
package main

import (
	"flag"
	"fmt"

	"repro/internal/cmdutil"
	"repro/internal/cpu"
	"repro/internal/isa"
)

func main() {
	var (
		model      = flag.String("model", "Gold 6226", "CPU model (Table I name)")
		set        = flag.Int("set", 3, "target DSB set (0-31)")
		blocks     = flag.Int("blocks", 8, "aligned instruction mix blocks in the chain")
		misaligned = flag.Int("misaligned", 0, "misaligned blocks appended to the chain")
		iters      = flag.Int("iters", 200, "loop iterations")
		lsd        = flag.Bool("lsd", true, "LSD enabled (microcode patch1)")
		seed       = flag.Uint64("seed", 1, "deterministic seed")
	)
	flag.Parse()

	m := cmdutil.MustModel(*model).WithLSD(*lsd)
	core := cpu.NewCore(m, *seed)

	chain := isa.MixChainMixed(*set, *blocks, *misaligned)
	total := *blocks + *misaligned
	fmt.Printf("chain: %d aligned + %d misaligned mix blocks -> DSB set %d (%d uops/iteration)\n",
		*blocks, *misaligned, *set, total*5)
	fmt.Printf("model: %s, LSD %v\n\n", m.Name, *lsd)

	start := core.Cycle()
	core.Enqueue(0, isa.NewLoopStream(chain, *iters), nil)
	core.RunUntilIdle(500_000_000)
	cycles := core.Cycle() - start

	c := core.Counters(0)
	uops := float64(c.UOps())
	fmt.Printf("cycles            %d  (%.2f cycles/block)\n", cycles, float64(cycles)/float64(total**iters))
	fmt.Printf("IPC               %.2f\n", uops/float64(cycles))
	fmt.Printf("uops via LSD      %8d  (%5.1f%%)\n", c.UOpsLSD, 100*float64(c.UOpsLSD)/uops)
	fmt.Printf("uops via DSB      %8d  (%5.1f%%)\n", c.UOpsDSB, 100*float64(c.UOpsDSB)/uops)
	fmt.Printf("uops via MITE     %8d  (%5.1f%%)\n", c.UOpsMITE, 100*float64(c.UOpsMITE)/uops)
	fmt.Printf("LSD locks/flushes %d/%d\n", c.LSDLocks, c.LSDFlushes)
	fmt.Printf("switch penalties  %.0f cycles over %d switches\n", c.SwitchCycles, c.SwitchCount)
	fmt.Printf("L1I misses        %d\n", c.L1IMisses)
	fmt.Printf("DSB hits/misses   %d/%d (evictions %d)\n",
		core.FE.DSB.Stats().Hits, core.FE.DSB.Stats().Misses, core.FE.DSB.Stats().Evictions)
	fmt.Printf("alignment tracker %d stale entries\n", core.FE.Align().Level())
}
