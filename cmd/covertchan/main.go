// Command covertchan transmits a message over a chosen frontend covert
// channel and reports the achieved transmission and error rates.
//
// Usage:
//
//	covertchan -model "Xeon E-2288G" -attack misalignment -variant fast -text HELLO
package main

import (
	"flag"
	"fmt"
	"strings"

	leaky "repro"
	"repro/internal/cmdutil"
)

// toBits encodes text as a bit string, MSB first.
func toBits(text string) string {
	var b strings.Builder
	for _, c := range []byte(text) {
		for i := 7; i >= 0; i-- {
			b.WriteByte('0' + (c>>uint(i))&1)
		}
	}
	return b.String()
}

// fromBits decodes a bit string back to text.
func fromBits(bits string) string {
	var b strings.Builder
	for i := 0; i+8 <= len(bits); i += 8 {
		var c byte
		for j := 0; j < 8; j++ {
			c = c<<1 | (bits[i+j] - '0')
		}
		b.WriteByte(c)
	}
	return b.String()
}

func main() {
	var (
		model   = flag.String("model", "Gold 6226", "CPU model (Table I name)")
		attack  = flag.String("attack", "eviction", "eviction | misalignment | slowswitch | power")
		variant = flag.String("variant", "fast", "fast | stealthy | mt | sgx")
		text    = flag.String("text", "LEAKY", "message to transmit")
	)
	flag.Parse()

	m := cmdutil.MustModel(*model)
	kind := leaky.Eviction
	if strings.HasPrefix(*attack, "mis") {
		kind = leaky.Misalignment
	}

	var ch leaky.Channel
	switch {
	case *attack == "slowswitch":
		ch = leaky.NewSlowSwitchChannel(m)
	case *attack == "power":
		ch = leaky.NewPowerChannel(m, kind)
	case *variant == "stealthy":
		ch = leaky.NewStealthyCovertChannel(m, kind)
	case *variant == "mt":
		ch = leaky.NewMTCovertChannel(m, kind)
	case *variant == "sgx":
		ch = leaky.NewSGXChannel(m, kind, false)
	default:
		ch = leaky.NewFastCovertChannel(m, kind)
	}

	bits := toBits(*text)
	fmt.Printf("channel : %s on %s\n", ch.Name(), m.Name)
	fmt.Printf("sending : %q (%d bits)\n", *text, len(bits))
	res := leaky.Transmit(ch, m.Name, bits)
	fmt.Printf("received: %q\n", fromBits(res.Received))
	fmt.Printf("rate    : %.2f Kbps\n", res.RateKbps)
	fmt.Printf("errors  : %.2f%%\n", 100*res.ErrorRate)
}
