// Command covertchan transmits a message over any covert-channel
// scenario in the paper's attack space, declared as a ChannelSpec
// through flags, and reports the achieved transmission and error rates.
//
// Usage:
//
//	covertchan -model "Xeon E-2288G" -mechanism misalignment -text HELLO
//	covertchan -mechanism eviction -threading mt -d 3 -text HI
//	covertchan -model "Xeon E-2174G" -sgx -stealthy -text SECRET
//	covertchan -threading mt -defense partition -text HI
//	covertchan -list          # print the valid scenario space for -model
//
// The historical -attack and -variant flags remain as deprecated
// aliases for the spec flags.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	leaky "repro"
)

// toBits encodes text as a bit string, MSB first.
func toBits(text string) string {
	var b strings.Builder
	for _, c := range []byte(text) {
		for i := 7; i >= 0; i-- {
			b.WriteByte('0' + (c>>uint(i))&1)
		}
	}
	return b.String()
}

// fromBits decodes a bit string back to text.
func fromBits(bits string) string {
	var b strings.Builder
	for i := 0; i+8 <= len(bits); i += 8 {
		var c byte
		for j := 0; j < 8; j++ {
			c = c<<1 | (bits[i+j] - '0')
		}
		b.WriteByte(c)
	}
	return b.String()
}

func main() {
	var (
		model     = flag.String("model", "Gold 6226", "CPU model (Table I name)")
		mechanism = flag.String("mechanism", "", "eviction | misalignment | slowswitch (default eviction)")
		threading = flag.String("threading", "", "nonmt | mt (default nonmt)")
		sink      = flag.String("sink", "", "timing | power (default timing)")
		sgxOn     = flag.Bool("sgx", false, "put the sender inside an SGX enclave")
		stealthy  = flag.Bool("stealthy", false, "bit 0 executes decoy blocks instead of nothing")
		def       = flag.String("defense", "", "run the channel against a defended model: none | nosmt | eqpaths | norapl | partition (default none)")
		d         = flag.Int("d", 0, "receiver way count d (0 means the mechanism default)")
		p         = flag.Int("p", 0, "per-bit repetition parameter (0 means the mechanism default)")
		calib     = flag.Int("calib", 0, "calibration-preamble bits (0 means the default 40)")
		seed      = flag.Uint64("seed", 0, "channel seed (0 means the default 1)")
		text      = flag.String("text", "LEAKY", "message to transmit")
		list      = flag.Bool("list", false, "print the valid scenario space for -model and exit")

		// Deprecated aliases, kept one release.
		attack  = flag.String("attack", "", "deprecated: eviction | misalignment | slowswitch | power (use -mechanism/-sink)")
		variant = flag.String("variant", "", "deprecated: fast | stealthy | mt | sgx (use -stealthy/-threading/-sgx)")
	)
	flag.Parse()

	cs := leaky.ChannelSpec{
		Model:     *model,
		Mechanism: leaky.Mechanism(*mechanism),
		Threading: leaky.Threading(*threading),
		Sink:      leaky.ChannelSink(*sink),
		SGX:       *sgxOn,
		Stealthy:  *stealthy,
		Defense:   *def,
		D:         *d,
		P:         *p,
		CalibBits: *calib,
		Seed:      *seed,
	}

	// Fold the deprecated flags into the spec with the old precedence:
	// "-attack power" meant the power sink over the eviction mechanism,
	// and -attack slowswitch/power always ignored -variant.
	variantApplies := true
	switch {
	case *attack == "":
	case strings.HasPrefix(*attack, "mis"):
		cs.Mechanism = leaky.MechanismMisalignment
	case *attack == "slowswitch":
		cs.Mechanism = leaky.MechanismSlowSwitch
		variantApplies = false
	case *attack == "power":
		cs.Sink = leaky.SinkPower
		variantApplies = false
	default:
		cs.Mechanism = leaky.MechanismEviction
	}
	if variantApplies {
		switch *variant {
		case "stealthy":
			cs.Stealthy = true
		case "mt":
			cs.Threading = leaky.ThreadingMT
		case "sgx":
			cs.SGX = true
		}
	}

	m, err := cs.ResolveModel()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *list {
		fmt.Printf("valid covert-channel scenarios on %s:\n", m.Name)
		for _, s := range leaky.EnumerateSpecs(m) {
			fmt.Printf("  %s\n", s)
		}
		return
	}

	if err := cs.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	bits := toBits(*text)
	fmt.Printf("spec    : %s\n", cs)
	fmt.Printf("sending : %q (%d bits)\n", *text, len(bits))
	res, err := cs.Transmit(bits)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("channel : %s on %s\n", res.Channel, res.Model)
	fmt.Printf("received: %q\n", fromBits(res.Received))
	fmt.Printf("rate    : %.2f Kbps\n", res.RateKbps)
	fmt.Printf("errors  : %.2f%%\n", 100*res.ErrorRate)
}
