package leaky_test

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"

	leaky "repro"
)

func TestFacadeModels(t *testing.T) {
	if len(leaky.Models()) != 4 {
		t.Fatal("want 4 models")
	}
	if _, ok := leaky.ModelByName("Gold 6226"); !ok {
		t.Error("Gold 6226 missing")
	}
	if !strings.Contains(leaky.TableI(), "Cascade Lake") {
		t.Error("TableI incomplete")
	}
}

func TestFacadeChannelRoundTrip(t *testing.T) {
	m := leaky.XeonE2288G()
	ch := leaky.NewFastCovertChannel(m, leaky.Eviction)
	res := leaky.Transmit(ch, m.Name, leaky.Alternating(80))
	if res.ErrorRate > 0.1 {
		t.Errorf("fast channel error %.1f%%", 100*res.ErrorRate)
	}
	if res.RateKbps < 100 {
		t.Errorf("rate %.1f Kbps too low", res.RateKbps)
	}
}

func TestFacadeSpectre(t *testing.T) {
	res := leaky.RunSpectre(leaky.SpectreFrontend, []byte{5, 19})
	if res.L1DMiss != 0 {
		t.Error("frontend Spectre must not touch L1D")
	}
}

func TestFacadeMicrocode(t *testing.T) {
	m := leaky.Gold6226()
	if leaky.DetectMicrocode(m, leaky.Patch1, 0) != leaky.Patch1 {
		t.Error("patch1 not detected")
	}
	if leaky.DetectMicrocode(m, leaky.Patch2, 4) != leaky.Patch2 {
		t.Error("patch2 not detected")
	}
}

// TestFacadeSpecEquivalence asserts the deprecated constructors and
// their ChannelSpec twins transmit byte-identically through the public
// API. The power constructor's twin is proven in internal/spec at
// reduced iteration scale (its default 120k iterations/bit are too slow
// for this tier); the complete per-config proof lives there too.
func TestFacadeSpecEquivalence(t *testing.T) {
	ht := leaky.XeonE2174G()
	plain := leaky.XeonE2288G()
	cases := []struct {
		name  string
		model leaky.Model
		ctor  func() leaky.Channel
		spec  leaky.ChannelSpec
	}{
		{"fast", plain,
			func() leaky.Channel { return leaky.NewFastCovertChannel(plain, leaky.Eviction) },
			leaky.ChannelSpec{Mechanism: leaky.MechanismEviction}},
		{"stealthy", plain,
			func() leaky.Channel { return leaky.NewStealthyCovertChannel(plain, leaky.Misalignment) },
			leaky.ChannelSpec{Mechanism: leaky.MechanismMisalignment, Stealthy: true}},
		{"mt", ht,
			func() leaky.Channel { return leaky.NewMTCovertChannel(ht, leaky.Eviction) },
			leaky.ChannelSpec{Mechanism: leaky.MechanismEviction, Threading: leaky.ThreadingMT}},
		{"slowswitch", plain,
			func() leaky.Channel { return leaky.NewSlowSwitchChannel(plain) },
			leaky.ChannelSpec{Mechanism: leaky.MechanismSlowSwitch}},
		{"sgx", ht,
			func() leaky.Channel { return leaky.NewSGXChannel(ht, leaky.Eviction, true) },
			leaky.ChannelSpec{Mechanism: leaky.MechanismEviction, SGX: true, Stealthy: true}},
		{"sgxmt", ht,
			func() leaky.Channel { return leaky.NewSGXMTChannel(ht, leaky.Misalignment) },
			leaky.ChannelSpec{Mechanism: leaky.MechanismMisalignment, Threading: leaky.ThreadingMT, SGX: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			msg := leaky.Alternating(24)
			want := leaky.Transmit(tc.ctor(), tc.model.Name, msg)
			got := leaky.Transmit(tc.spec.Build(tc.model), tc.model.Name, msg)
			if !reflect.DeepEqual(want, got) {
				t.Errorf("spec twin diverges:\nctor: %#v\nspec: %#v", want, got)
			}
		})
	}
}

func TestFacadeEnumerateSpecs(t *testing.T) {
	for _, m := range leaky.Models() {
		for _, s := range leaky.EnumerateSpecs(m) {
			if err := s.Validate(); err != nil {
				t.Errorf("%s: enumerated spec invalid: %v", m.Name, err)
			}
		}
	}
	if n := len(leaky.AllChannelSpecs()); n < 40 {
		t.Errorf("scenario space has %d specs, expected the full catalog's", n)
	}
}

// TestFacadeDefenseAblations exercises the Section XII countermeasures
// through the public API alone: each defense must close its channel
// (residual error near the 0.5 coin-flip) and EqualizePaths must cost
// throughput.
func TestFacadeDefenseAblations(t *testing.T) {
	bits := 100
	if testing.Short() {
		bits = 40
	}
	base := leaky.XeonE2288G() // cleanest machine: strongest baseline channel
	if baseErr := leaky.DefenseResidualError(base, bits, 1); baseErr > 0.1 {
		t.Fatalf("baseline stealthy eviction error %.2f; channel broken before any defense", baseErr)
	}

	cases := []struct {
		name     string
		residual func() float64
	}{
		{"EqualizePaths closes the timing channel", func() float64 {
			return leaky.DefenseResidualError(leaky.EqualizePaths(base), bits, 1)
		}},
		{"DisableRAPL closes the power channel", func() float64 {
			m := leaky.DisableRAPL(leaky.Gold6226())
			ch := leaky.ChannelSpec{Sink: leaky.SinkPower, P: 3000, Seed: 1}.Build(m)
			return leaky.Transmit(ch, m.Name, leaky.Alternating(16)).ErrorRate
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.residual(); err < 0.25 {
				t.Errorf("residual error %.2f; a closed channel should approach the 0.5 coin-flip", err)
			} else {
				t.Logf("residual error %.2f", err)
			}
		})
	}

	t.Run("DisableSMT forbids MT specs", func(t *testing.T) {
		m := leaky.DisableSMT(leaky.Gold6226())
		err := leaky.ChannelSpec{Threading: leaky.ThreadingMT}.ValidateFor(m)
		if err == nil {
			t.Error("MT spec validated against an SMT-disabled model")
		}
	})

	t.Run("EqualizePaths costs throughput", func(t *testing.T) {
		cost := leaky.DefenseCost(leaky.Gold6226(), leaky.EqualizePaths(leaky.Gold6226()), 2)
		if cost <= 1.0 {
			t.Errorf("defense cost %.2fx; equalizing paths should not be free", cost)
		} else {
			t.Logf("slowdown %.2fx", cost)
		}
	})
}

func TestServeCtxShutsDownGracefully(t *testing.T) {
	// Reserve a port, release it, and serve on it: small race, but the
	// retry loop below tolerates a slow start.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- leaky.ServeCtx(ctx, addr, leaky.ServeConfig{}) }()

	healthy := false
	for i := 0; i < 50 && !healthy; i++ {
		resp, err := http.Get(fmt.Sprintf("http://%s/healthz", addr))
		if err == nil {
			resp.Body.Close()
			healthy = resp.StatusCode == 200
		} else {
			time.Sleep(20 * time.Millisecond)
		}
	}
	if !healthy {
		cancel()
		t.Fatalf("daemon on %s never became healthy", addr)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("graceful shutdown returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("ServeCtx did not return after cancellation")
	}
}

func TestFacadeFingerprint(t *testing.T) {
	m := leaky.Gold6226()
	suite := leaky.CNNWorkloads()
	tr := leaky.FingerprintTrace(m, suite[0], 3)
	if len(tr) != 100 {
		t.Errorf("trace length %d", len(tr))
	}
	if len(leaky.GeekbenchWorkloads()) != 10 {
		t.Error("want 10 Geekbench workloads")
	}
}

func TestFacadeSweep(t *testing.T) {
	// A small shard through the public one-call path: the undefended
	// slow-switch channels, whose rows must match spec-level
	// transmissions. defense=none pins the pre-defense-axis shard, so
	// the shard stays one row per model.
	f, err := leaky.ParseSweepFilter("mech=slowswitch,defense=none")
	if err != nil {
		t.Fatal(err)
	}
	var streamed []leaky.SweepRow
	report, err := leaky.SweepCtx(context.Background(), f,
		leaky.SweepOptions{Bits: 8, CalibBits: 4, Workers: 2}, func(r leaky.SweepRow) {
			streamed = append(streamed, r)
		})
	if err != nil {
		t.Fatal(err)
	}
	if report.Specs != len(leaky.Models()) || report.Completed != report.Specs {
		t.Fatalf("sweep completed %d/%d, want one row per model", report.Completed, report.Specs)
	}
	if len(streamed) != report.Specs {
		t.Fatalf("emit saw %d rows, want %d", len(streamed), report.Specs)
	}
	for i, row := range report.Rows {
		if streamed[i] != row {
			t.Errorf("streamed row %d differs from the report's", i)
		}
		res, err := row.Spec.Transmit(leaky.Alternating(report.Bits))
		if err != nil {
			t.Fatal(err)
		}
		if row.RateKbps != res.RateKbps || row.ErrorRate != res.ErrorRate {
			t.Errorf("row %s diverges from a direct transmit", row.Canonical)
		}
	}
	// The shard the report ran is the one ExpandSweep names.
	specs, err := leaky.ExpandSweep(f, leaky.SweepOptions{Bits: 8, CalibBits: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, cs := range specs {
		if report.Rows[i].Spec != cs {
			t.Errorf("expanded spec %d differs from the report row: %s vs %s", i, cs, report.Rows[i].Spec)
		}
	}
	if _, err := leaky.ParseSweepFilter("color=red"); err == nil {
		t.Error("ParseSweepFilter accepted a malformed query")
	}
}
