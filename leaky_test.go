package leaky_test

import (
	"strings"
	"testing"

	leaky "repro"
)

func TestFacadeModels(t *testing.T) {
	if len(leaky.Models()) != 4 {
		t.Fatal("want 4 models")
	}
	if _, ok := leaky.ModelByName("Gold 6226"); !ok {
		t.Error("Gold 6226 missing")
	}
	if !strings.Contains(leaky.TableI(), "Cascade Lake") {
		t.Error("TableI incomplete")
	}
}

func TestFacadeChannelRoundTrip(t *testing.T) {
	m := leaky.XeonE2288G()
	ch := leaky.NewFastCovertChannel(m, leaky.Eviction)
	res := leaky.Transmit(ch, m.Name, leaky.Alternating(80))
	if res.ErrorRate > 0.1 {
		t.Errorf("fast channel error %.1f%%", 100*res.ErrorRate)
	}
	if res.RateKbps < 100 {
		t.Errorf("rate %.1f Kbps too low", res.RateKbps)
	}
}

func TestFacadeSpectre(t *testing.T) {
	res := leaky.RunSpectre(leaky.SpectreFrontend, []byte{5, 19})
	if res.L1DMiss != 0 {
		t.Error("frontend Spectre must not touch L1D")
	}
}

func TestFacadeMicrocode(t *testing.T) {
	m := leaky.Gold6226()
	if leaky.DetectMicrocode(m, leaky.Patch1) != leaky.Patch1 {
		t.Error("patch1 not detected")
	}
	if leaky.DetectMicrocode(m, leaky.Patch2) != leaky.Patch2 {
		t.Error("patch2 not detected")
	}
}

func TestFacadeFingerprint(t *testing.T) {
	m := leaky.Gold6226()
	suite := leaky.CNNWorkloads()
	tr := leaky.FingerprintTrace(m, suite[0], 3)
	if len(tr) != 100 {
		t.Errorf("trace length %d", len(tr))
	}
	if len(leaky.GeekbenchWorkloads()) != 10 {
		t.Error("want 10 Geekbench workloads")
	}
}
